// Tests for the fault-injection harness (src/fault) and the graceful
// degradation it exercises: plan parsing and replay, the deterministic
// injector, blob-corruption helpers, the circuit-breaker state
// machine, NPU-level injection sites, and the runtime surviving fault
// storms end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/batch_view.h"
#include "core/breaker.h"
#include "core/runtime.h"
#include "fault/corrupt.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "nn/mlp.h"
#include "npu/npu.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rumba {
namespace {

/** Disarm the process-wide injector when a test scope ends, so an
 *  armed plan never leaks into later tests. */
struct ArmGuard {
    ~ArmGuard() { fault::FaultInjector::Default().Disarm(); }
};

fault::FaultPlan
MustParse(const std::string& spec)
{
    fault::FaultPlan plan;
    std::string error;
    EXPECT_TRUE(fault::FaultPlan::Parse(spec, &plan, &error)) << error;
    return plan;
}

// ------------------------------------------------------------ FaultPlan

TEST(FaultPlanTest, ParsesSpecWithSeedRatesAndParams)
{
    const fault::FaultPlan plan = MustParse(
        "seed=42;npu.output_nan=0.01;npu.bitflip=0.002;"
        "npu.output_stuck=0.5:1.25;queue.stall=1");
    EXPECT_EQ(plan.seed, 42u);
    ASSERT_EQ(plan.rules.size(), 4u);
    EXPECT_FALSE(plan.Empty());

    double stuck_param = 0.0;
    for (const fault::FaultRule& rule : plan.rules)
        if (rule.fault == fault::FaultClass::kNpuOutputStuck)
            stuck_param = rule.param;
    EXPECT_DOUBLE_EQ(stuck_param, 1.25);
}

TEST(FaultPlanTest, SpecRoundTrips)
{
    const fault::FaultPlan plan =
        MustParse("seed=7;npu.output_nan=0.02;checker.mispredict=0.1");
    const fault::FaultPlan replay = MustParse(plan.ToSpec());
    EXPECT_EQ(replay.seed, plan.seed);
    ASSERT_EQ(replay.rules.size(), plan.rules.size());
    for (size_t i = 0; i < plan.rules.size(); ++i) {
        EXPECT_EQ(replay.rules[i].fault, plan.rules[i].fault);
        EXPECT_DOUBLE_EQ(replay.rules[i].rate, plan.rules[i].rate);
    }
}

TEST(FaultPlanTest, RejectsMalformedSpecs)
{
    fault::FaultPlan plan;
    std::string error;
    EXPECT_FALSE(
        fault::FaultPlan::Parse("martian.fault=0.1", &plan, &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        fault::FaultPlan::Parse("npu.output_nan=1.5", &plan, &error));
    EXPECT_FALSE(
        fault::FaultPlan::Parse("npu.output_nan=-0.1", &plan, &error));
    EXPECT_FALSE(
        fault::FaultPlan::Parse("npu.output_nan", &plan, &error));
    EXPECT_FALSE(fault::FaultPlan::Parse("seed=abc", &plan, &error));
    // A null error pointer is allowed.
    EXPECT_FALSE(fault::FaultPlan::Parse("junk", &plan, nullptr));
}

TEST(FaultPlanTest, EmptySpecParsesToEmptyPlan)
{
    const fault::FaultPlan plan = MustParse("");
    EXPECT_TRUE(plan.Empty());
    EXPECT_TRUE(plan.rules.empty());
}

// -------------------------------------------------------- FaultInjector

TEST(FaultInjectorTest, DisarmedInjectsNothing)
{
    fault::FaultInjector injector;
    EXPECT_FALSE(injector.Armed());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(
            injector.ShouldInject(fault::FaultClass::kNpuOutputNan));
    EXPECT_EQ(injector.TotalInjections(), 0u);
}

TEST(FaultInjectorTest, RateOneFiresEveryOpportunity)
{
    fault::FaultInjector injector;
    injector.Arm(MustParse("seed=5;queue.stall=1"));
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(
            injector.ShouldInject(fault::FaultClass::kQueueStall));
    EXPECT_EQ(injector.Injections(fault::FaultClass::kQueueStall), 50u);
    // A class the plan does not name never fires.
    EXPECT_FALSE(injector.Enabled(fault::FaultClass::kNpuBitFlip));
    EXPECT_FALSE(
        injector.ShouldInject(fault::FaultClass::kNpuBitFlip));
}

TEST(FaultInjectorTest, SamePlanReplaysIdenticalDecisions)
{
    const fault::FaultPlan plan =
        MustParse("seed=11;npu.output_nan=0.3;npu.bitflip=0.2");
    fault::FaultInjector a, b;
    a.Arm(plan);
    b.Arm(plan);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.ShouldInject(fault::FaultClass::kNpuOutputNan),
                  b.ShouldInject(fault::FaultClass::kNpuOutputNan));
        EXPECT_EQ(a.Draw(fault::FaultClass::kNpuBitFlip),
                  b.Draw(fault::FaultClass::kNpuBitFlip));
    }
    // Re-arming resets the streams to the top of the schedule.
    const uint64_t first = [&] {
        fault::FaultInjector c;
        c.Arm(plan);
        return c.Draw(fault::FaultClass::kNpuBitFlip);
    }();
    b.Arm(plan);
    EXPECT_EQ(b.Draw(fault::FaultClass::kNpuBitFlip), first);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge)
{
    fault::FaultInjector a, b;
    a.Arm(MustParse("seed=1;npu.bitflip=0.5"));
    b.Arm(MustParse("seed=2;npu.bitflip=0.5"));
    size_t disagreements = 0;
    for (int i = 0; i < 200; ++i)
        disagreements +=
            a.ShouldInject(fault::FaultClass::kNpuBitFlip) !=
            b.ShouldInject(fault::FaultClass::kNpuBitFlip);
    EXPECT_GT(disagreements, 0u);
}

TEST(FaultInjectorTest, ApproximatesTheArmedRate)
{
    fault::FaultInjector injector;
    injector.Arm(MustParse("seed=17;npu.output_nan=0.1"));
    const int kTrials = 20000;
    for (int i = 0; i < kTrials; ++i)
        (void)injector.ShouldInject(fault::FaultClass::kNpuOutputNan);
    const double observed =
        static_cast<double>(
            injector.Injections(fault::FaultClass::kNpuOutputNan)) /
        kTrials;
    EXPECT_NEAR(observed, 0.1, 0.02);
}

TEST(FaultInjectorTest, InjectionsCountedInRegistry)
{
    ArmGuard guard;
    fault::FaultInjector& injector = fault::FaultInjector::Default();
    obs::Counter* counter = obs::Registry::Default().GetCounter(
        "fault.injected.queue.stall");
    const uint64_t before = counter->Value();
    injector.Arm(MustParse("seed=3;queue.stall=1"));
    for (int i = 0; i < 10; ++i)
        (void)injector.ShouldInject(fault::FaultClass::kQueueStall);
    EXPECT_EQ(counter->Value(), before + 10);
}

// ------------------------------------------------------- blob corruption

TEST(CorruptTest, TruncateKeepsLeadingFraction)
{
    std::string blob(1000, 'x');
    const size_t removed = fault::TruncateBlob(&blob, 0.25);
    EXPECT_EQ(removed, 750u);
    EXPECT_EQ(blob.size(), 250u);
    // Clamped edges.
    std::string all(100, 'y');
    EXPECT_EQ(fault::TruncateBlob(&all, 2.0), 0u);
    EXPECT_EQ(all.size(), 100u);
    EXPECT_EQ(fault::TruncateBlob(&all, -1.0), 100u);
    EXPECT_TRUE(all.empty());
}

TEST(CorruptTest, BitrotIsSeededAndDeterministic)
{
    const std::string original(2000, 'a');
    std::string first = original;
    std::string second = original;
    const size_t flipped_first = fault::BitrotBlob(&first, 0.05, 42);
    const size_t flipped_second = fault::BitrotBlob(&second, 0.05, 42);
    EXPECT_GT(flipped_first, 0u);
    EXPECT_EQ(flipped_first, flipped_second);
    EXPECT_EQ(first, second);       // same seed, same damage.
    EXPECT_NE(first, original);

    std::string other = original;
    fault::BitrotBlob(&other, 0.05, 43);
    EXPECT_NE(other, first);        // different seed, different damage.
}

// -------------------------------------------------------- CircuitBreaker

core::BreakerHealth
HealthyRound()
{
    core::BreakerHealth h;
    h.approx_elements = 100;
    h.fires = 5;
    h.output_error_pct = 2.0;
    h.target_error_pct = 10.0;
    return h;
}

core::BreakerHealth
NanRound()
{
    core::BreakerHealth h = HealthyRound();
    h.non_finite = 3;
    return h;
}

TEST(BreakerTest, TripsOnlyAfterConsecutiveUnhealthyRounds)
{
    core::BreakerConfig cfg;
    cfg.trip_after = 3;
    core::CircuitBreaker breaker(cfg);
    breaker.OnInvocation(NanRound());
    breaker.OnInvocation(NanRound());
    EXPECT_EQ(breaker.State(), core::BreakerState::kClosed);
    breaker.OnInvocation(HealthyRound());  // streak broken.
    breaker.OnInvocation(NanRound());
    breaker.OnInvocation(NanRound());
    EXPECT_EQ(breaker.State(), core::BreakerState::kClosed);
    breaker.OnInvocation(NanRound());
    EXPECT_EQ(breaker.State(), core::BreakerState::kOpen);
    EXPECT_EQ(breaker.Trips(), 1u);
}

TEST(BreakerTest, FullCycleClosedOpenHalfOpenClosed)
{
    core::BreakerConfig cfg;
    cfg.trip_after = 2;
    cfg.open_invocations = 2;
    cfg.close_after = 2;
    core::CircuitBreaker breaker(cfg);

    breaker.OnInvocation(NanRound());
    breaker.OnInvocation(NanRound());
    ASSERT_EQ(breaker.State(), core::BreakerState::kOpen);
    EXPECT_EQ(breaker.ApproxBudget(250), 0u);

    core::BreakerHealth idle;  // nothing rides while open.
    breaker.OnInvocation(idle);
    EXPECT_EQ(breaker.State(), core::BreakerState::kOpen);
    breaker.OnInvocation(idle);
    ASSERT_EQ(breaker.State(), core::BreakerState::kHalfOpen);
    EXPECT_EQ(breaker.ApproxBudget(250), cfg.canary_elements);

    core::BreakerHealth canary = HealthyRound();
    canary.approx_elements = cfg.canary_elements;
    canary.fires = 1;
    breaker.OnInvocation(canary);
    EXPECT_EQ(breaker.State(), core::BreakerState::kHalfOpen);
    breaker.OnInvocation(canary);
    EXPECT_EQ(breaker.State(), core::BreakerState::kClosed);
    EXPECT_EQ(breaker.Closes(), 1u);
    EXPECT_EQ(breaker.Probes(), 2u);
    EXPECT_EQ(breaker.ApproxBudget(250), 250u);
}

TEST(BreakerTest, DirtyProbeReopens)
{
    core::BreakerConfig cfg;
    cfg.trip_after = 1;
    cfg.open_invocations = 1;
    core::CircuitBreaker breaker(cfg);
    breaker.OnInvocation(NanRound());
    ASSERT_EQ(breaker.State(), core::BreakerState::kOpen);
    breaker.OnInvocation(core::BreakerHealth{});
    ASSERT_EQ(breaker.State(), core::BreakerState::kHalfOpen);
    core::BreakerHealth dirty = NanRound();
    dirty.approx_elements = cfg.canary_elements;
    breaker.OnInvocation(dirty);
    EXPECT_EQ(breaker.State(), core::BreakerState::kOpen);
    EXPECT_EQ(breaker.Trips(), 2u);
    EXPECT_EQ(breaker.Closes(), 0u);
}

TEST(BreakerTest, UnhealthyCriteria)
{
    core::CircuitBreaker breaker((core::BreakerConfig()));
    EXPECT_FALSE(breaker.Unhealthy(HealthyRound()));
    EXPECT_TRUE(breaker.Unhealthy(NanRound()));

    core::BreakerHealth drops = HealthyRound();
    drops.queue_drops = 1;
    EXPECT_TRUE(breaker.Unhealthy(drops));

    core::BreakerHealth storm = HealthyRound();
    storm.fires = 70;  // 70% > fire_rate_trip (0.6)...
    EXPECT_FALSE(breaker.Unhealthy(storm));  // ...but no drift: the
                                             // tuner owns bare spikes.
    storm.drift = true;  // corroborated by the drift monitor: trip.
    EXPECT_TRUE(breaker.Unhealthy(storm));

    core::BreakerHealth blowout = HealthyRound();
    blowout.output_error_pct = 31.0;  // > 3x the 10% target.
    EXPECT_TRUE(breaker.Unhealthy(blowout));
}

TEST(BreakerTest, DisabledBreakerNeverDegrades)
{
    core::BreakerConfig cfg;
    cfg.enabled = false;
    core::CircuitBreaker breaker(cfg);
    for (int i = 0; i < 20; ++i)
        breaker.OnInvocation(NanRound());
    EXPECT_EQ(breaker.State(), core::BreakerState::kClosed);
    EXPECT_EQ(breaker.Trips(), 0u);
    EXPECT_EQ(breaker.ApproxBudget(100), 100u);
}

// ------------------------------------------------------- NPU injection

nn::Mlp
MakeTestMlp(uint64_t seed)
{
    Rng rng(seed);
    nn::Mlp mlp(nn::Topology::Parse("3->4->2"));
    mlp.RandomizeWeights(&rng, 1.0);
    return mlp;
}

std::vector<std::vector<double>>
InvokeBatch(npu::Npu* npu, size_t count)
{
    Rng rng(77);
    std::vector<std::vector<double>> outs;
    outs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        outs.push_back(npu->Invoke(
            {rng.Uniform(), rng.Uniform(), rng.Uniform()}));
    return outs;
}

size_t
CountNonFinite(const std::vector<std::vector<double>>& outs)
{
    size_t n = 0;
    for (const auto& out : outs)
        for (double v : out)
            n += !std::isfinite(v);
    return n;
}

TEST(NpuFaultTest, OutputNanInjection)
{
    ArmGuard guard;
    npu::Npu npu;
    npu.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Arm(
        MustParse("seed=9;npu.output_nan=1"));
    const auto faulty = InvokeBatch(&npu, 20);
    EXPECT_EQ(CountNonFinite(faulty), 20u * 2u);  // every output word.
    fault::FaultInjector::Default().Disarm();
    const auto clean = InvokeBatch(&npu, 20);
    EXPECT_EQ(CountNonFinite(clean), 0u);
}

TEST(NpuFaultTest, OutputInfInjectionIsInfinite)
{
    ArmGuard guard;
    npu::Npu npu;
    npu.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Arm(
        MustParse("seed=9;npu.output_inf=1"));
    const auto faulty = InvokeBatch(&npu, 10);
    for (const auto& out : faulty)
        for (double v : out)
            EXPECT_TRUE(std::isinf(v));
}

TEST(NpuFaultTest, StuckOutputUsesParam)
{
    ArmGuard guard;
    npu::Npu npu;
    npu.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Arm(
        MustParse("seed=9;npu.output_stuck=1:0.625"));
    const auto faulty = InvokeBatch(&npu, 10);
    for (const auto& out : faulty)
        for (double v : out)
            EXPECT_DOUBLE_EQ(v, 0.625);
}

TEST(NpuFaultTest, BitflipsReplayIdentically)
{
    ArmGuard guard;
    const fault::FaultPlan plan = MustParse("seed=21;npu.bitflip=0.5");

    npu::Npu first;
    first.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Arm(plan);
    const auto run_a = InvokeBatch(&first, 50);

    npu::Npu second;
    second.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Arm(plan);  // stream reset.
    const auto run_b = InvokeBatch(&second, 50);
    EXPECT_EQ(run_a, run_b);

    fault::FaultInjector::Default().Disarm();
    npu::Npu clean;
    clean.Configure(MakeTestMlp(7));
    const auto run_clean = InvokeBatch(&clean, 50);
    EXPECT_NE(run_a, run_clean);  // the upsets really landed.
}

TEST(NpuFaultTest, LutCorruptionPerturbsActivations)
{
    ArmGuard guard;
    npu::Npu clean;
    clean.Configure(MakeTestMlp(7));
    const auto base = InvokeBatch(&clean, 50);

    fault::FaultInjector::Default().Arm(
        MustParse("seed=33;npu.lut=0.05"));
    npu::Npu corrupted;  // corruption lands at Configure() time.
    corrupted.Configure(MakeTestMlp(7));
    fault::FaultInjector::Default().Disarm();
    const auto perturbed = InvokeBatch(&corrupted, 50);
    EXPECT_NE(base, perturbed);
}

// --------------------------------------------------- runtime end to end

core::RuntimeConfig
FastConfig()
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 800;
    return cfg;
}

/** Flat contiguous batch of @p size elements cycled from the test
 *  inputs (backs a BatchView of the runtime's input width). */
std::vector<double>
TestBatch(const core::RumbaRuntime& runtime, size_t index, size_t size)
{
    const auto& inputs = runtime.Bench().TestInputs();
    std::vector<double> flat;
    flat.reserve(size * runtime.Bench().NumInputs());
    for (size_t k = 0; k < size; ++k) {
        const auto& row = inputs[(index * size + k) % inputs.size()];
        flat.insert(flat.end(), row.begin(), row.end());
    }
    return flat;
}

/** Run @p count elements of @p flat through the BatchView hot path;
 *  @p out is sized to the merged result. */
core::InvocationReport
Invoke(core::RumbaRuntime& runtime, const std::vector<double>& flat,
       size_t count, std::vector<double>* out)
{
    out->resize(count * runtime.Bench().NumOutputs());
    return runtime.ProcessInvocation(
        core::BatchView(flat.data(), count,
                        runtime.Bench().NumInputs()),
        out->data());
}

TEST(RuntimeFaultTest, SurvivesNanStormAndCyclesBreaker)
{
    ArmGuard guard;
    core::RuntimeConfig cfg = FastConfig();
    cfg.breaker.trip_after = 2;
    cfg.breaker.open_invocations = 2;
    cfg.breaker.close_after = 2;
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);

    fault::FaultInjector::Default().Arm(
        MustParse("seed=3;npu.output_nan=0.05"));
    size_t non_finite_total = 0;
    std::vector<double> out;
    for (size_t i = 0;
         i < 12 &&
         runtime.Breaker().State() != core::BreakerState::kOpen;
         ++i) {
        const auto r =
            Invoke(runtime, TestBatch(runtime, i, 200), 200, &out);
        non_finite_total += r.non_finite_outputs;
        // Containment: no NaN/Inf ever reaches the delivered outputs.
        for (double v : out)
            EXPECT_TRUE(std::isfinite(v));
    }
    EXPECT_GT(non_finite_total, 0u);
    ASSERT_EQ(runtime.Breaker().State(), core::BreakerState::kOpen);
    EXPECT_GE(runtime.Breaker().Trips(), 1u);

    // The accelerator heals; canary probes close the breaker again.
    fault::FaultInjector::Default().Disarm();
    for (size_t i = 12; i < 24 && runtime.Breaker().Closes() == 0; ++i)
        Invoke(runtime, TestBatch(runtime, i, 200), 200, &out);
    EXPECT_GE(runtime.Breaker().Closes(), 1u);
    EXPECT_EQ(runtime.Breaker().State(), core::BreakerState::kClosed);

    // Delivered quality stayed within the TOQ target through the
    // whole episode (NaNs recovered, outage served exactly).
    EXPECT_LE(runtime.Summary().MeanOutputErrorPct(),
              cfg.tuner.target_error_pct);

    // The episode is visible in the trace ring: at least one event in
    // each breaker state.
    bool saw_open = false, saw_half_open = false, saw_closed = false;
    for (const auto& event : obs::TraceRing::Default().Dump()) {
        saw_open |= event.breaker_state == 1;
        saw_half_open |= event.breaker_state == 2;
        saw_closed |= event.breaker_state == 0;
    }
    EXPECT_TRUE(saw_open);
    EXPECT_TRUE(saw_half_open);
    EXPECT_TRUE(saw_closed);
}

TEST(RuntimeFaultTest, QueueStallDropsAreCountedAndContained)
{
    ArmGuard guard;
    core::RuntimeConfig cfg = FastConfig();
    cfg.initial_threshold = 1e-9;  // every check fires.
    cfg.recovery_queue_capacity = 8;
    cfg.breaker.trip_after = 1;    // drops trip immediately.
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);

    fault::FaultInjector::Default().Arm(
        MustParse("seed=5;queue.stall=1"));
    std::vector<double> out;
    const auto r =
        Invoke(runtime, TestBatch(runtime, 0, 200), 200, &out);
    fault::FaultInjector::Default().Disarm();

    // ~200 fires into an 8-deep queue with the drain stalled: the
    // queue fills once and every later push is dropped, not a panic.
    EXPECT_GE(r.queue_drops, 150u);
    EXPECT_EQ(runtime.Recovery().QueueDrops(), r.queue_drops);
    EXPECT_EQ(r.fixes, cfg.recovery_queue_capacity);
    // Dropped elements keep their approximate result — finite, and
    // the loss is loud: the breaker opens on the very next round.
    for (double v : out)
        EXPECT_TRUE(std::isfinite(v));
    EXPECT_EQ(runtime.Breaker().State(), core::BreakerState::kOpen);
}

TEST(RuntimeFaultTest, MispredictStormStaysCrashFree)
{
    ArmGuard guard;
    core::RuntimeConfig cfg = FastConfig();
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    obs::Counter* injected = obs::Registry::Default().GetCounter(
        "fault.injected.checker.mispredict");
    const uint64_t before = injected->Value();
    fault::FaultInjector::Default().Arm(
        MustParse("seed=13;checker.mispredict=0.3"));
    std::vector<double> out;
    for (size_t i = 0; i < 4; ++i)
        Invoke(runtime, TestBatch(runtime, i, 200), 200, &out);
    fault::FaultInjector::Default().Disarm();
    EXPECT_GT(injected->Value(), before);
    for (double v : out)
        EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace rumba
