// Unit tests for the neural-network library: topologies, forward
// pass, backprop training (including a numerical gradient check),
// serialization, and the topology search.

#include <gtest/gtest.h>

#include <cmath>

#include "common/dataset.h"
#include "common/random.h"
#include "nn/activation.h"
#include "nn/mlp.h"
#include "nn/topology.h"
#include "nn/topology_search.h"
#include "nn/trainer.h"

namespace rumba::nn {
namespace {

// -------------------------------------------------------------- Topology

TEST(TopologyTest, ParseAndPrintRoundTrip)
{
    const Topology t = Topology::Parse("6->8->4->1");
    EXPECT_EQ(t.ToString(), "6->8->4->1");
    EXPECT_EQ(t.NumInputs(), 6u);
    EXPECT_EQ(t.NumOutputs(), 1u);
    EXPECT_EQ(t.NumHiddenLayers(), 2u);
}

TEST(TopologyTest, NeuronAndMacCounts)
{
    const Topology t = Topology::Parse("6->8->4->1");
    EXPECT_EQ(t.NumNeurons(), 13u);
    // 8*(6+1) + 4*(8+1) + 1*(4+1) = 56 + 36 + 5.
    EXPECT_EQ(t.MacsPerInvocation(), 97u);
}

TEST(TopologyTest, TwoLayerMinimum)
{
    const Topology t = Topology::Parse("3->2");
    EXPECT_EQ(t.NumHiddenLayers(), 0u);
    EXPECT_EQ(t.MacsPerInvocation(), 2u * 4u);
}

// ------------------------------------------------------------ Activation

TEST(ActivationTest, SigmoidValues)
{
    EXPECT_DOUBLE_EQ(Evaluate(Activation::kSigmoid, 0.0), 0.5);
    EXPECT_NEAR(Evaluate(Activation::kSigmoid, 100.0), 1.0, 1e-12);
    EXPECT_NEAR(Evaluate(Activation::kSigmoid, -100.0), 0.0, 1e-12);
}

TEST(ActivationTest, DerivativesMatchNumeric)
{
    for (auto act : {Activation::kSigmoid, Activation::kTanh,
                     Activation::kLinear}) {
        for (double x : {-1.5, -0.2, 0.0, 0.7, 2.0}) {
            const double h = 1e-6;
            const double numeric =
                (Evaluate(act, x + h) - Evaluate(act, x - h)) / (2 * h);
            const double analytic =
                DerivativeFromOutput(act, Evaluate(act, x));
            EXPECT_NEAR(analytic, numeric, 1e-6)
                << Name(act) << " at " << x;
        }
    }
}

// ------------------------------------------------------------------- Mlp

TEST(MlpTest, ForwardOnHandWeights)
{
    // One sigmoid neuron: out = sigmoid(2*x + 1).
    Mlp mlp(Topology::Parse("1->1"));
    mlp.MutableLayers()[0].W(0, 0) = 2.0;
    mlp.MutableLayers()[0].Bias(0) = 1.0;
    const auto out = mlp.Forward({0.5});
    EXPECT_NEAR(out[0], 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
}

TEST(MlpTest, LinearOutputLayer)
{
    Mlp mlp(Topology::Parse("2->1"), Activation::kSigmoid,
            Activation::kLinear);
    mlp.MutableLayers()[0].W(0, 0) = 3.0;
    mlp.MutableLayers()[0].W(0, 1) = -1.0;
    mlp.MutableLayers()[0].Bias(0) = 0.5;
    const auto out = mlp.Forward({1.0, 2.0});
    EXPECT_DOUBLE_EQ(out[0], 3.0 - 2.0 + 0.5);
}

TEST(MlpTest, TraceMatchesForward)
{
    Rng rng(3);
    Mlp mlp(Topology::Parse("3->5->2"));
    mlp.RandomizeWeights(&rng);
    const std::vector<double> in{0.1, 0.7, 0.3};
    const auto direct = mlp.Forward(in);
    const auto trace = mlp.ForwardWithTrace(in);
    ASSERT_EQ(trace.activations.size(), 3u);
    ASSERT_EQ(trace.activations.back().size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_DOUBLE_EQ(trace.activations.back()[i], direct[i]);
}

TEST(MlpTest, NumParameters)
{
    Mlp mlp(Topology::Parse("6->8->4->1"));
    EXPECT_EQ(mlp.NumParameters(), 97u);
}

TEST(MlpTest, SerializeRoundTrip)
{
    Rng rng(11);
    Mlp mlp(Topology::Parse("4->6->2"), Activation::kTanh,
            Activation::kLinear);
    mlp.RandomizeWeights(&rng);
    const Mlp copy = Mlp::Deserialize(mlp.Serialize());
    const std::vector<double> in{0.2, 0.4, 0.6, 0.8};
    const auto a = mlp.Forward(in);
    const auto b = copy.Forward(in);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// ----------------------------------------------------- Gradient checking

/** MSE loss of the network on a single sample. */
double
SampleLoss(const Mlp& mlp, const std::vector<double>& in,
           const std::vector<double>& target)
{
    const auto out = mlp.Forward(in);
    double loss = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
        const double d = out[i] - target[i];
        loss += 0.5 * d * d;
    }
    return loss;
}

TEST(TrainerTest, BackpropMatchesNumericGradient)
{
    // Train exactly one plain-SGD step (no momentum, single sample)
    // and compare the resulting weights with w - lr * numeric_grad.
    // Train() seeds its own Rng and randomizes weights first; we
    // replicate that initialization to know the starting point.
    const uint64_t seed = 17;
    const std::vector<double> in{0.3, 0.8};
    const std::vector<double> target{0.2, 0.9};

    Mlp start(Topology::Parse("2->3->2"));
    {
        Rng rng(seed);
        start.RandomizeWeights(&rng);
    }

    // Numerical gradient of the 0.5*sum(d^2) loss at the start point.
    const double h = 1e-6;
    std::vector<std::vector<double>> numeric;
    for (size_t li = 0; li < start.Layers().size(); ++li) {
        numeric.emplace_back();
        for (size_t k = 0; k < start.Layers()[li].weights.size(); ++k) {
            Mlp plus = start, minus = start;
            plus.MutableLayers()[li].weights[k] += h;
            minus.MutableLayers()[li].weights[k] -= h;
            numeric.back().push_back(
                (SampleLoss(plus, in, target) -
                 SampleLoss(minus, in, target)) /
                (2 * h));
        }
    }

    Dataset d(2, 2);
    d.Add(in, target);
    Mlp trained(Topology::Parse("2->3->2"));
    TrainConfig tc;
    tc.epochs = 1;
    tc.learning_rate = 1e-3;
    tc.momentum = 0.0;
    tc.validation_fraction = 0.0;
    tc.seed = seed;
    Train(&trained, d, tc);

    for (size_t li = 0; li < start.Layers().size(); ++li) {
        for (size_t k = 0; k < start.Layers()[li].weights.size(); ++k) {
            const double expected = start.Layers()[li].weights[k] -
                                    tc.learning_rate * numeric[li][k];
            EXPECT_NEAR(trained.Layers()[li].weights[k], expected, 1e-8)
                << "layer " << li << " weight " << k;
        }
    }
}

TEST(TrainerTest, LearnsLinearFunction)
{
    Rng rng(23);
    Dataset d(2, 1);
    for (int i = 0; i < 600; ++i) {
        const double x = rng.Uniform();
        const double y = rng.Uniform();
        d.Add({x, y}, {0.3 * x + 0.5 * y + 0.1});
    }
    Mlp mlp(Topology::Parse("2->4->1"));
    TrainConfig tc;
    tc.epochs = 150;
    const TrainResult res = Train(&mlp, d, tc);
    EXPECT_LT(res.validation_mse, 1e-3);
}

TEST(TrainerTest, LearnsXor)
{
    Dataset d(2, 1);
    // Oversample the four XOR corners.
    for (int rep = 0; rep < 50; ++rep) {
        d.Add({0, 0}, {0});
        d.Add({0, 1}, {1});
        d.Add({1, 0}, {1});
        d.Add({1, 1}, {0});
    }
    Mlp mlp(Topology::Parse("2->4->1"));
    TrainConfig tc;
    tc.epochs = 400;
    tc.patience = 400;
    tc.seed = 5;
    const TrainResult res = Train(&mlp, d, tc);
    EXPECT_LT(res.train_mse, 0.05);
}

TEST(TrainerTest, DeterministicForSeed)
{
    Rng rng(29);
    Dataset d(1, 1);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.Uniform();
        d.Add({x}, {x * x});
    }
    TrainConfig tc;
    tc.epochs = 30;
    Mlp a(Topology::Parse("1->4->1"));
    Mlp b(Topology::Parse("1->4->1"));
    Train(&a, d, tc);
    Train(&b, d, tc);
    EXPECT_DOUBLE_EQ(a.Forward({0.4})[0], b.Forward({0.4})[0]);
}

TEST(TrainerTest, EarlyStopRespectsPatience)
{
    // Pure-noise targets: validation cannot keep improving, so the
    // patience counter must cut training short.
    Rng rng(31);
    Dataset d(1, 1);
    for (int i = 0; i < 300; ++i)
        d.Add({rng.Uniform()}, {rng.Uniform()});
    TrainConfig tc;
    tc.epochs = 500;
    tc.patience = 10;
    Mlp mlp(Topology::Parse("1->2->1"));
    const TrainResult res = Train(&mlp, d, tc);
    EXPECT_LT(res.epochs_run, 250u);
}

// -------------------------------------------------------- TopologySearch

TEST(TopologySearchTest, PicksSmallNetForEasyTarget)
{
    Rng rng(37);
    Dataset d(1, 1);
    for (int i = 0; i < 400; ++i) {
        const double x = rng.Uniform();
        d.Add({x}, {0.2 + 0.6 * x});
    }
    SearchConfig cfg;
    cfg.hidden_candidates = {{2}, {16}, {16, 8}};
    cfg.train.epochs = 200;
    cfg.slack = 1.5;
    const SearchResult res = SearchTopology(d, cfg);
    ASSERT_EQ(res.entries.size(), 3u);
    // A linear target is learnable by the smallest candidate, which
    // must win on MACs.
    EXPECT_EQ(res.best.GetTopology().ToString(), "1->2->1");
}

TEST(TopologySearchTest, EntriesCoverAllCandidates)
{
    Rng rng(41);
    Dataset d(2, 1);
    for (int i = 0; i < 300; ++i) {
        const double x = rng.Uniform(), y = rng.Uniform();
        d.Add({x, y}, {x * y});
    }
    SearchConfig cfg;
    cfg.hidden_candidates = {{2}, {4}, {4, 2}};
    cfg.train.epochs = 40;
    const SearchResult res = SearchTopology(d, cfg);
    EXPECT_EQ(res.entries.size(), 3u);
    for (const auto& e : res.entries)
        EXPECT_GT(e.macs, 0u);
}

TEST(TopologySearchTest, RespectsNeuronCap)
{
    Rng rng(43);
    Dataset d(1, 1);
    for (int i = 0; i < 100; ++i)
        d.Add({rng.Uniform()}, {0.5});
    SearchConfig cfg;
    cfg.hidden_candidates = {{33}};
    cfg.train.epochs = 1;
    EXPECT_DEATH(SearchTopology(d, cfg), "check failed");
}

}  // namespace
}  // namespace rumba::nn
