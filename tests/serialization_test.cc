// Tests for the deployable-configuration path (Figure 4's "embedded
// in the binary"): predictor/normalizer/network serialization, the
// Artifact container, and full runtime round trips.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "common/dataset.h"
#include "common/random.h"
#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "fault/corrupt.h"
#include "predict/ema.h"
#include "predict/evp.h"
#include "predict/hybrid.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba {
namespace {

Dataset
SampleErrorData(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Dataset d(2, 1);
    for (size_t i = 0; i < n; ++i) {
        const double x = rng.Uniform(), y = rng.Uniform();
        d.Add({x, y}, {0.3 * x + (y < 0.4 ? 0.2 : 0.0)});
    }
    return d;
}

// ------------------------------------------------------------ Normalizer

TEST(SerializationTest, NormalizerRoundTrip)
{
    Dataset d(3, 1);
    d.Add({1.0, -5.0, 100.0}, {0.0});
    d.Add({3.0, 5.0, 400.0}, {1.0});
    Normalizer n;
    n.FitInputs(d);
    const Normalizer copy = Normalizer::Deserialize(n.Serialize());
    const std::vector<double> probe{2.0, 0.0, 250.0};
    const auto a = n.Apply(probe);
    const auto b = copy.Apply(probe);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(SerializationTest, NormalizerBadBlobFatal)
{
    EXPECT_DEATH(Normalizer::Deserialize("bogus 3 1 2 3"), "");
}

// ------------------------------------------------------------ Predictors

TEST(SerializationTest, LinearRoundTripPredictsIdentically)
{
    predict::LinearErrorPredictor p;
    p.Train(SampleErrorData(500, 3));
    const auto copy =
        predict::LinearErrorPredictor::Deserialize(p.Serialize());
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        std::vector<double> x{rng.Uniform(), rng.Uniform()};
        auto mutable_copy = copy;
        EXPECT_DOUBLE_EQ(p.PredictError(x, {}),
                         mutable_copy.PredictError(x, {}));
    }
}

TEST(SerializationTest, TreeRoundTripPredictsIdentically)
{
    predict::TreeErrorPredictor p;
    p.Train(SampleErrorData(2000, 7));
    auto copy = predict::TreeErrorPredictor::Deserialize(p.Serialize());
    EXPECT_EQ(copy.NumNodes(), p.NumNodes());
    EXPECT_EQ(copy.Depth(), p.Depth());
    Rng rng(9);
    for (int i = 0; i < 200; ++i) {
        std::vector<double> x{rng.Uniform(), rng.Uniform()};
        EXPECT_DOUBLE_EQ(p.PredictError(x, {}),
                         copy.PredictError(x, {}));
    }
}

TEST(SerializationTest, EmaRoundTripKeepsAlpha)
{
    predict::EmaDetector ema(12);
    auto copy = predict::EmaDetector::Deserialize(ema.Serialize());
    EXPECT_DOUBLE_EQ(copy.Alpha(), ema.Alpha());
}

TEST(SerializationTest, EvpRoundTrip)
{
    Rng rng(11);
    Dataset d(1, 2);
    for (int i = 0; i < 300; ++i) {
        const double x = rng.Uniform();
        d.Add({x}, {x, 1.0 - x});
    }
    predict::ValuePredictionError p;
    p.Train(d);
    auto copy =
        predict::ValuePredictionError::Deserialize(p.Serialize());
    EXPECT_DOUBLE_EQ(p.PredictError({0.3}, {0.4, 0.6}),
                     copy.PredictError({0.3}, {0.4, 0.6}));
}

TEST(SerializationTest, FactoryDispatchesOnTag)
{
    predict::TreeErrorPredictor tree;
    tree.Train(SampleErrorData(500, 13));
    auto generic = predict::DeserializePredictor(tree.Serialize());
    EXPECT_EQ(generic->Name(), "treeErrors");

    predict::LinearErrorPredictor linear;
    linear.Train(SampleErrorData(500, 13));
    EXPECT_EQ(predict::DeserializePredictor(linear.Serialize())->Name(),
              "linearErrors");
    EXPECT_EQ(predict::DeserializePredictor("ema 0.25\n")->Name(),
              "EMA");
}

TEST(SerializationTest, FactoryRejectsUnknownTag)
{
    EXPECT_DEATH(predict::DeserializePredictor("martian 1 2 3"), "");
}

TEST(SerializationTest, HybridSerializesSelection)
{
    predict::HybridErrorPredictor hybrid;
    hybrid.Train(SampleErrorData(2000, 17));
    auto generic = predict::DeserializePredictor(hybrid.Serialize());
    EXPECT_EQ(generic->Name(), hybrid.SelectedName());
}

// -------------------------------------------------------------- Artifact

core::RuntimeConfig
FastConfig()
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 10.0;
    return cfg;
}

TEST(ArtifactTest, StringRoundTrip)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               FastConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    const auto parsed =
        core::Artifact::TryFromString(artifact.ToString());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const core::Artifact& copy = *parsed;
    EXPECT_EQ(copy.benchmark, "inversek2j");
    EXPECT_DOUBLE_EQ(copy.threshold, artifact.threshold);
    EXPECT_EQ(copy.rumba_mlp, artifact.rumba_mlp);
    EXPECT_EQ(copy.predictor, artifact.predictor);
}

TEST(ArtifactTest, FileRoundTrip)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("fft"),
                               FastConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    const std::string path = "/tmp/rumba_test_artifact.txt";
    ASSERT_TRUE(artifact.Save(path));
    const auto loaded = core::Artifact::TryLoad(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->benchmark, "fft");
    EXPECT_EQ(loaded->npu_mlp, artifact.npu_mlp);
    std::remove(path.c_str());
}

TEST(ArtifactTest, TryFromStringReportsInsteadOfDying)
{
    const auto bad_header =
        core::Artifact::TryFromString("not an artifact");
    ASSERT_FALSE(bad_header.ok());
    EXPECT_EQ(bad_header.status().code(), core::StatusCode::kDataLoss);
    EXPECT_NE(bad_header.status().message().find("bad header"),
              std::string::npos);

    // Missing sections must be detected, not silently defaulted.
    const auto partial = core::Artifact::TryFromString(
        "rumba-artifact v1\nbenchmark fft\nthreshold 0.1\n");
    ASSERT_FALSE(partial.ok());
    EXPECT_EQ(partial.status().code(), core::StatusCode::kDataLoss);
    EXPECT_NE(partial.status().message().find("missing section"),
              std::string::npos);
}

TEST(ArtifactTest, TryLoadReportsMissingFile)
{
    const auto missing =
        core::Artifact::TryLoad("/tmp/no_such_artifact_file");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), core::StatusCode::kNotFound);
    EXPECT_NE(missing.status().message().find("cannot open"),
              std::string::npos);
}

TEST(ArtifactTest, ChecksumCatchesTruncationAndBitrot)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               FastConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    const std::string good = artifact.ToString();
    EXPECT_EQ(good.compare(0, 17, "rumba-artifact v2"), 0);

    const auto parsed = core::Artifact::TryFromString(good);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

    std::string truncated = good;
    fault::TruncateBlob(&truncated, /*keep_fraction=*/0.7);
    EXPECT_FALSE(core::Artifact::TryFromString(truncated).ok());

    std::string rotted = good;
    const size_t flipped =
        fault::BitrotBlob(&rotted, /*rate=*/0.01, /*seed=*/99);
    ASSERT_GT(flipped, 0u);
    const auto rot_result = core::Artifact::TryFromString(rotted);
    ASSERT_FALSE(rot_result.ok());
    EXPECT_EQ(rot_result.status().code(),
              core::StatusCode::kDataLoss);
}

TEST(ArtifactTest, V1BlobWithoutChecksumStillAccepted)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               FastConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    std::string blob = artifact.ToString();
    // Strip the v2 header + checksum line, substitute the v1 header:
    // artifacts written before the checksum existed must keep loading.
    const size_t header_end = blob.find('\n');
    const size_t checksum_end = blob.find('\n', header_end + 1);
    ASSERT_NE(checksum_end, std::string::npos);
    blob = "rumba-artifact v1\n" + blob.substr(checksum_end + 1);

    const auto parsed = core::Artifact::TryFromString(blob);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->benchmark, artifact.benchmark);
    EXPECT_DOUBLE_EQ(parsed->threshold, artifact.threshold);
    EXPECT_EQ(parsed->predictor, artifact.predictor);
}

TEST(ArtifactTest, DeployedRuntimeMatchesTrainedRuntime)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               FastConfig());
    const core::Artifact artifact = trained.ExportArtifact();
    core::RumbaRuntime deployed(artifact, FastConfig());

    const auto inputs = trained.Bench().TestInputs();
    const std::vector<double> flat =
        core::FlattenBatch({inputs.begin(), inputs.begin() + 300});
    const core::BatchView view(flat.data(), 300,
                               trained.Bench().NumInputs());
    const size_t out_n = 300 * trained.Bench().NumOutputs();
    std::vector<double> out_a(out_n), out_b(out_n);
    const auto ra = trained.ProcessInvocation(view, out_a.data());
    const auto rb = deployed.ProcessInvocation(view, out_b.data());

    EXPECT_EQ(ra.fixes, rb.fixes);
    EXPECT_DOUBLE_EQ(ra.threshold_used, rb.threshold_used);
    for (size_t i = 0; i < out_n; ++i)
        EXPECT_DOUBLE_EQ(out_a[i], out_b[i]);
}

TEST(ArtifactTest, CompensatorSurvivesDeployment)
{
    core::RuntimeConfig cfg = FastConfig();
    cfg.recovery_policy.compensation = true;
    core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                               cfg);
    ASSERT_TRUE(trained.HasCompensator());
    const core::Artifact artifact = trained.ExportArtifact();
    EXPECT_FALSE(artifact.compensator.empty());

    // String round trip preserves the compensator blob byte-for-byte.
    const auto reparsed_or =
        core::Artifact::TryFromString(artifact.ToString());
    ASSERT_TRUE(reparsed_or.ok()) << reparsed_or.status().ToString();
    const core::Artifact& reparsed = *reparsed_or;
    EXPECT_EQ(reparsed.compensator, artifact.compensator);

    // The deployed runtime restores the model without training and
    // serves bit-identically, compensations included.
    core::RumbaRuntime deployed(reparsed, cfg);
    ASSERT_TRUE(deployed.HasCompensator());

    const auto inputs = trained.Bench().TestInputs();
    const std::vector<double> flat =
        core::FlattenBatch({inputs.begin(), inputs.begin() + 300});
    const core::BatchView view(flat.data(), 300,
                               trained.Bench().NumInputs());
    const size_t out_n = 300 * trained.Bench().NumOutputs();
    std::vector<double> out_a(out_n), out_b(out_n);
    const auto ra = trained.ProcessInvocation(view, out_a.data());
    const auto rb = deployed.ProcessInvocation(view, out_b.data());
    EXPECT_EQ(ra.tier_compensated, rb.tier_compensated);
    EXPECT_EQ(ra.tier_reexecuted, rb.tier_reexecuted);
    for (size_t i = 0; i < out_n; ++i)
        EXPECT_DOUBLE_EQ(out_a[i], out_b[i]);

    // An artifact trained without compensation carries no blob and
    // deploys without a compensator.
    core::RumbaRuntime plain(apps::MakeBenchmark("inversek2j"),
                             FastConfig());
    EXPECT_TRUE(plain.ExportArtifact().compensator.empty());
    EXPECT_FALSE(plain.HasCompensator());
}

TEST(ArtifactTest, WrongBenchmarkRejected)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("fft"),
                               FastConfig());
    core::Artifact artifact = trained.ExportArtifact();
    artifact.benchmark = "sobel";  // kernel mismatch.
    EXPECT_DEATH(core::RumbaRuntime(artifact, FastConfig()),
                 "check failed");
}

TEST(ArtifactTest, FromArtifactReportsEveryRejection)
{
    core::RumbaRuntime trained(apps::MakeBenchmark("fft"),
                               FastConfig());
    const core::Artifact good = trained.ExportArtifact();

    core::Artifact unknown = good;
    unknown.benchmark = "martian";
    const auto not_found =
        core::RumbaRuntime::FromArtifact(unknown, FastConfig());
    ASSERT_FALSE(not_found.ok());
    EXPECT_EQ(not_found.status().code(), core::StatusCode::kNotFound);

    core::Artifact bad_checker = good;
    bad_checker.predictor = "martian 1 2 3";
    const auto data_loss =
        core::RumbaRuntime::FromArtifact(bad_checker, FastConfig());
    ASSERT_FALSE(data_loss.ok());
    EXPECT_EQ(data_loss.status().code(), core::StatusCode::kDataLoss);

    core::Artifact mismatched = good;
    mismatched.benchmark = "sobel";  // different arity than fft's net.
    const auto precondition =
        core::RumbaRuntime::FromArtifact(mismatched, FastConfig());
    ASSERT_FALSE(precondition.ok());
    EXPECT_EQ(precondition.status().code(),
              core::StatusCode::kFailedPrecondition);

    // External config knobs are validated, not checked-fatal.
    core::RuntimeConfig bad_tuner = FastConfig();
    bad_tuner.tuner.target_error_pct = -1.0;
    EXPECT_EQ(core::RumbaRuntime::FromArtifact(good, bad_tuner)
                  .status()
                  .code(),
              core::StatusCode::kInvalidArgument);

    core::RuntimeConfig bad_policy = FastConfig();
    bad_policy.recovery_policy.adjust_factor = 0.5;
    EXPECT_EQ(core::RumbaRuntime::FromArtifact(good, bad_policy)
                  .status()
                  .code(),
              core::StatusCode::kInvalidArgument);

    // A corrupt compensator blob is caught before construction.
    core::Artifact bad_compensator = good;
    bad_compensator.compensator = "martian 1 2 3";
    const auto comp_loss = core::RumbaRuntime::FromArtifact(
        bad_compensator, FastConfig());
    ASSERT_FALSE(comp_loss.ok());
    EXPECT_EQ(comp_loss.status().code(),
              core::StatusCode::kDataLoss);

    const auto deployed =
        core::RumbaRuntime::FromArtifact(good, FastConfig());
    ASSERT_TRUE(deployed.ok()) << deployed.status().ToString();
    EXPECT_EQ((*deployed)->Bench().Info().name, "fft");
}

}  // namespace
}  // namespace rumba
