// Unit tests for the support library: RNG, statistics, matrix,
// dataset, images, generators, and the table printer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/dataset.h"
#include "common/logging.h"
#include "common/image.h"
#include "common/imagegen.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/statistics.h"
#include "common/table.h"

namespace rumba {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.Next() == b.Next();
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformMeanIsCentered)
{
    Rng rng(3);
    OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.Add(rng.Uniform());
    EXPECT_NEAR(stats.Mean(), 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelow)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues)
{
    Rng rng(11);
    std::set<uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.Below(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, RangeInclusive)
{
    Rng rng(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.Range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(17);
    OnlineStats stats;
    for (int i = 0; i < 200000; ++i)
        stats.Add(rng.Gaussian());
    EXPECT_NEAR(stats.Mean(), 0.0, 0.02);
    EXPECT_NEAR(stats.StdDev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled)
{
    Rng rng(19);
    OnlineStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.Add(rng.Gaussian(5.0, 2.0));
    EXPECT_NEAR(stats.Mean(), 5.0, 0.05);
    EXPECT_NEAR(stats.StdDev(), 2.0, 0.05);
}

TEST(RngTest, ChanceProbability)
{
    Rng rng(23);
    int hits = 0;
    for (int i = 0; i < 100000; ++i)
        hits += rng.Chance(0.3);
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(29);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto copy = v;
    rng.Shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.Split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.Next() == b.Next();
    EXPECT_LT(same, 2);
}

// ---------------------------------------------------------- OnlineStats

TEST(OnlineStatsTest, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.Count(), 0u);
    EXPECT_EQ(s.Mean(), 0.0);
    EXPECT_EQ(s.Variance(), 0.0);
}

TEST(OnlineStatsTest, KnownMoments)
{
    OnlineStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.Add(v);
    EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.Variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);
    EXPECT_EQ(s.Min(), 2.0);
    EXPECT_EQ(s.Max(), 9.0);
    EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesCombined)
{
    Rng rng(5);
    OnlineStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.Gaussian(3.0, 1.5);
        all.Add(v);
        (i % 2 ? left : right).Add(v);
    }
    left.Merge(right);
    EXPECT_EQ(left.Count(), all.Count());
    EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
    EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
}

TEST(OnlineStatsTest, MergeWithEmpty)
{
    OnlineStats a, b;
    a.Add(1.0);
    a.Add(3.0);
    a.Merge(b);
    EXPECT_EQ(a.Count(), 2u);
    b.Merge(a);
    EXPECT_EQ(b.Count(), 2u);
    EXPECT_DOUBLE_EQ(b.Mean(), 2.0);
}

// ------------------------------------------------------------ Percentile

TEST(PercentileTest, MedianOfOddSet)
{
    EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 50.0), 2.0);
}

TEST(PercentileTest, Extremes)
{
    std::vector<double> v{5, 1, 9, 3};
    EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, Interpolates)
{
    EXPECT_DOUBLE_EQ(Percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(CorrelationTest, PearsonPerfectLinear)
{
    const std::vector<double> a{1, 2, 3, 4, 5};
    const std::vector<double> b{2, 4, 6, 8, 10};
    EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-12);
    const std::vector<double> c{10, 8, 6, 4, 2};
    EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-12);
}

TEST(CorrelationTest, PearsonConstantSeriesIsZero)
{
    const std::vector<double> a{1, 2, 3};
    const std::vector<double> b{5, 5, 5};
    EXPECT_DOUBLE_EQ(PearsonCorrelation(a, b), 0.0);
}

TEST(CorrelationTest, PearsonIndependentNearZero)
{
    Rng rng(101);
    std::vector<double> a(20000), b(20000);
    for (size_t i = 0; i < a.size(); ++i) {
        a[i] = rng.Uniform();
        b[i] = rng.Uniform();
    }
    EXPECT_NEAR(PearsonCorrelation(a, b), 0.0, 0.03);
}

TEST(CorrelationTest, SpearmanMonotoneNonlinear)
{
    // y = exp(x) is monotone but nonlinear: Spearman = 1 exactly.
    std::vector<double> a, b;
    Rng rng(103);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.Uniform(-3, 3);
        a.push_back(x);
        b.push_back(std::exp(x));
    }
    EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
    EXPECT_LT(PearsonCorrelation(a, b), 0.95);
}

TEST(CorrelationTest, SpearmanHandlesTies)
{
    const std::vector<double> a{1, 1, 2, 2, 3, 3};
    const std::vector<double> b{1, 1, 2, 2, 3, 3};
    EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-12);
}

TEST(CdfTest, MonotoneAndComplete)
{
    Rng rng(37);
    std::vector<double> v;
    for (int i = 0; i < 500; ++i)
        v.push_back(rng.Uniform());
    const auto cdf = EmpiricalCdf(v, 20);
    ASSERT_EQ(cdf.size(), 20u);
    for (size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].value, cdf[i - 1].value);
        EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
    }
    EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, CountsAndCumulative)
{
    Histogram h(0.0, 1.0, 4);
    for (double v : {0.1, 0.3, 0.3, 0.6, 0.9})
        h.Add(v);
    EXPECT_EQ(h.Total(), 5u);
    EXPECT_EQ(h.CountAt(0), 1u);
    EXPECT_EQ(h.CountAt(1), 2u);
    EXPECT_EQ(h.CountAt(2), 1u);
    EXPECT_EQ(h.CountAt(3), 1u);
    EXPECT_NEAR(h.CumulativeFraction(1), 0.6, 1e-12);
    EXPECT_NEAR(h.CumulativeFraction(3), 1.0, 1e-12);
}

TEST(HistogramTest, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 2);
    h.Add(-5.0);
    h.Add(7.0);
    EXPECT_EQ(h.CountAt(0), 1u);
    EXPECT_EQ(h.CountAt(1), 1u);
}

TEST(HistogramTest, EdgeValues)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.EdgeAt(0), 0.0);
    EXPECT_DOUBLE_EQ(h.EdgeAt(5), 10.0);
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, IdentityMultiply)
{
    Matrix a{{1, 2}, {3, 4}};
    const Matrix r = a.Multiply(Matrix::Identity(2));
    EXPECT_DOUBLE_EQ(r.MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, KnownProduct)
{
    Matrix a{{1, 2, 3}, {4, 5, 6}};
    Matrix b{{7, 8}, {9, 10}, {11, 12}};
    const Matrix r = a.Multiply(b);
    EXPECT_DOUBLE_EQ(r.At(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(r.At(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(r.At(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(r.At(1, 1), 154.0);
}

TEST(MatrixTest, TransposeRoundTrip)
{
    Matrix a{{1, 2, 3}, {4, 5, 6}};
    const Matrix t = a.Transposed();
    EXPECT_EQ(t.Rows(), 3u);
    EXPECT_EQ(t.Cols(), 2u);
    EXPECT_DOUBLE_EQ(t.Transposed().MaxAbsDiff(a), 0.0);
}

TEST(MatrixTest, AddAndScale)
{
    Matrix a{{1, 2}, {3, 4}};
    const Matrix r = a.Add(a.Scaled(2.0));
    EXPECT_DOUBLE_EQ(r.At(1, 1), 12.0);
}

TEST(MatrixTest, SolveRecoversSolution)
{
    Matrix a{{2, 1, -1}, {-3, -1, 2}, {-2, 1, 2}};
    std::vector<double> x;
    ASSERT_TRUE(a.Solve({8, -11, -3}, &x));
    ASSERT_EQ(x.size(), 3u);
    EXPECT_NEAR(x[0], 2.0, 1e-9);
    EXPECT_NEAR(x[1], 3.0, 1e-9);
    EXPECT_NEAR(x[2], -1.0, 1e-9);
}

TEST(MatrixTest, SolveDetectsSingular)
{
    Matrix a{{1, 2}, {2, 4}};
    std::vector<double> x;
    EXPECT_FALSE(a.Solve({1, 2}, &x));
}

TEST(MatrixTest, SolveNeedsPivoting)
{
    // Zero on the initial diagonal forces a row swap.
    Matrix a{{0, 1}, {1, 0}};
    std::vector<double> x;
    ASSERT_TRUE(a.Solve({3, 5}, &x));
    EXPECT_NEAR(x[0], 5.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

// --------------------------------------------------------------- Dataset

TEST(DatasetTest, AddAndAccess)
{
    Dataset d(2, 1);
    d.Add({1.0, 2.0}, {3.0});
    ASSERT_EQ(d.Size(), 1u);
    EXPECT_EQ(d.Input(0)[1], 2.0);
    EXPECT_EQ(d.Target(0)[0], 3.0);
}

TEST(DatasetTest, TakeFrontSplits)
{
    Dataset d(1, 1);
    for (int i = 0; i < 10; ++i)
        d.Add({static_cast<double>(i)}, {0.0});
    Dataset front = d.TakeFront(0.3);
    EXPECT_EQ(front.Size(), 3u);
    EXPECT_EQ(d.Size(), 7u);
    EXPECT_EQ(front.Input(0)[0], 0.0);
    EXPECT_EQ(d.Input(0)[0], 3.0);
}

TEST(DatasetTest, ShuffleKeepsPairsAligned)
{
    Dataset d(1, 1);
    for (int i = 0; i < 50; ++i)
        d.Add({static_cast<double>(i)}, {static_cast<double>(i) * 2.0});
    Rng rng(41);
    d.Shuffle(&rng);
    for (size_t i = 0; i < d.Size(); ++i)
        EXPECT_DOUBLE_EQ(d.Target(i)[0], d.Input(i)[0] * 2.0);
}

TEST(NormalizerTest, MapsToUnitAndBack)
{
    Dataset d(2, 1);
    d.Add({0.0, 10.0}, {1.0});
    d.Add({4.0, 30.0}, {5.0});
    Normalizer n;
    n.FitInputs(d);
    const auto lo = n.Apply({0.0, 10.0});
    const auto hi = n.Apply({4.0, 30.0});
    EXPECT_DOUBLE_EQ(lo[0], 0.0);
    EXPECT_DOUBLE_EQ(hi[1], 1.0);
    const auto round = n.Invert(n.Apply({2.0, 20.0}));
    EXPECT_NEAR(round[0], 2.0, 1e-12);
    EXPECT_NEAR(round[1], 20.0, 1e-12);
}

TEST(NormalizerTest, ConstantFeatureMapsToHalf)
{
    Dataset d(1, 1);
    d.Add({3.0}, {0.0});
    d.Add({3.0}, {1.0});
    Normalizer n;
    n.FitInputs(d);
    EXPECT_DOUBLE_EQ(n.Apply({3.0})[0], 0.5);
}

// ----------------------------------------------------------------- Image

TEST(ImageTest, PixelAccessAndClamp)
{
    GrayImage img(4, 3, 0.5);
    img.At(1, 2) = 2.0;
    img.At(0, 0) = -1.0;
    img.Clamp();
    EXPECT_DOUBLE_EQ(img.At(1, 2), 1.0);
    EXPECT_DOUBLE_EQ(img.At(0, 0), 0.0);
}

TEST(ImageTest, AtClampedEdges)
{
    GrayImage img(2, 2);
    img.At(0, 0) = 0.25;
    EXPECT_DOUBLE_EQ(img.AtClamped(-5, -5), 0.25);
    img.At(1, 1) = 0.75;
    EXPECT_DOUBLE_EQ(img.AtClamped(10, 10), 0.75);
}

TEST(ImageTest, MeanIntensity)
{
    GrayImage img(2, 2);
    img.At(0, 0) = 1.0;
    EXPECT_DOUBLE_EQ(img.MeanIntensity(), 0.25);
}

TEST(ImageTest, MeanAbsDiff)
{
    GrayImage a(2, 1, 0.2), b(2, 1, 0.5);
    EXPECT_NEAR(a.MeanAbsDiff(b), 0.3, 1e-12);
}

TEST(ImageTest, PgmRoundTrip)
{
    GrayImage img = GenerateSceneImage(31, 17, 99);
    const std::string path = "/tmp/rumba_test_roundtrip.pgm";
    ASSERT_TRUE(img.WritePgm(path));
    GrayImage loaded;
    ASSERT_TRUE(loaded.ReadPgm(path));
    ASSERT_EQ(loaded.Width(), img.Width());
    ASSERT_EQ(loaded.Height(), img.Height());
    // 8-bit quantization bounds the round-trip error.
    EXPECT_LT(loaded.MeanAbsDiff(img), 1.0 / 255.0);
    std::remove(path.c_str());
}

TEST(ImageTest, ReadMissingFileFails)
{
    GrayImage img;
    EXPECT_FALSE(img.ReadPgm("/tmp/definitely_not_there.pgm"));
}

// -------------------------------------------------------------- Imagegen

TEST(ImagegenTest, DeterministicInSeed)
{
    const GrayImage a = GenerateSceneImage(32, 32, 5);
    const GrayImage b = GenerateSceneImage(32, 32, 5);
    EXPECT_DOUBLE_EQ(a.MeanAbsDiff(b), 0.0);
}

TEST(ImagegenTest, SeedsDiffer)
{
    const GrayImage a = GenerateSceneImage(32, 32, 5);
    const GrayImage b = GenerateSceneImage(32, 32, 6);
    EXPECT_GT(a.MeanAbsDiff(b), 0.01);
}

TEST(ImagegenTest, PixelsInRange)
{
    for (uint64_t seed : {1u, 2u, 3u}) {
        const GrayImage img = GenerateFlowerImage(48, 48, seed);
        for (double p : img.Data()) {
            EXPECT_GE(p, 0.0);
            EXPECT_LE(p, 1.0);
        }
    }
}

TEST(ImagegenTest, FlowerBrightnessVariesAcrossSeeds)
{
    OnlineStats means;
    for (uint64_t s = 0; s < 40; ++s)
        means.Add(GenerateFlowerImage(48, 48, s).MeanIntensity());
    // The population must span a wide brightness range for the
    // mosaic study to be input-dependent.
    EXPECT_GT(means.Max() - means.Min(), 0.2);
}

TEST(ImagegenTest, RampIsMonotone)
{
    const GrayImage img = GenerateRampImage(16, 2);
    for (size_t x = 1; x < img.Width(); ++x)
        EXPECT_GT(img.At(x, 0), img.At(x - 1, 0));
    EXPECT_DOUBLE_EQ(img.At(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(img.At(15, 0), 1.0);
}

TEST(ImagegenTest, CheckerAlternates)
{
    const GrayImage img = GenerateCheckerImage(8, 8, 2);
    EXPECT_DOUBLE_EQ(img.At(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(img.At(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(img.At(2, 2), 0.0);
}

TEST(ImagegenTest, NoiseCoversMidRange)
{
    const GrayImage img = GenerateNoiseImage(64, 64, 77, 3);
    const double mean = img.MeanIntensity();
    EXPECT_GT(mean, 0.3);
    EXPECT_LT(mean, 0.7);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, TextHasHeaderAndRows)
{
    Table t({"app", "value"});
    t.AddRow({"sobel", Table::Num(1.5)});
    const std::string text = t.ToText();
    EXPECT_NE(text.find("app"), std::string::npos);
    EXPECT_NE(text.find("sobel"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_EQ(t.Rows(), 1u);
}

TEST(TableTest, CsvQuotesCommas)
{
    Table t({"a"});
    t.AddRow({"x,y"});
    EXPECT_NE(t.ToCsv().find("\"x,y\""), std::string::npos);
}

TEST(TableTest, NumPrecision)
{
    EXPECT_EQ(Table::Num(3.14159, 3), "3.142");
    EXPECT_EQ(Table::Int(-7), "-7");
}

TEST(TableTest, CsvRoundTripFile)
{
    Table t({"a", "b"});
    t.AddRow({"1", "2"});
    const std::string path = "/tmp/rumba_test_table.csv";
    ASSERT_TRUE(t.WriteCsv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath)
{
    Table t({"a"});
    EXPECT_FALSE(t.WriteCsv("/nonexistent_dir_xyz/table.csv"));
}

TEST(TableTest, CsvQuotesEmbeddedQuotes)
{
    Table t({"a"});
    t.AddRow({"say \"hi\", ok"});
    EXPECT_NE(t.ToCsv().find("\"say \"\"hi\"\", ok\""),
              std::string::npos);
}

TEST(LoggingTest, ThresholdControlsVerbosity)
{
    const LogLevel original = LogThreshold();
    SetLogThreshold(LogLevel::kFatal);
    EXPECT_EQ(LogThreshold(), LogLevel::kFatal);
    // These must be no-ops (nothing observable to assert beyond not
    // crashing, but the threshold accessor round-trips).
    Inform("suppressed %d", 1);
    Warn("suppressed %d", 2);
    SetLogThreshold(original);
    EXPECT_EQ(LogThreshold(), original);
}

TEST(LoggingTest, CheckMacroPassesOnTrue)
{
    RUMBA_CHECK(1 + 1 == 2);  // must not abort.
    SUCCEED();
}

TEST(LoggingTest, CheckMacroAbortsOnFalse)
{
    EXPECT_DEATH(RUMBA_CHECK(1 + 1 == 3), "check failed");
}

}  // namespace
}  // namespace rumba
