// Unit tests for the seven Table 1 benchmark kernels and the mosaic
// study: functional correctness against independent references,
// dataset shapes, metrics and instruction-mix profiling.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "apps/benchmark.h"
#include "apps/blackscholes.h"
#include "apps/fft.h"
#include "apps/inversek2j.h"
#include "apps/jmeint.h"
#include "apps/jpeg.h"
#include "apps/kmeans.h"
#include "apps/mosaic.h"
#include "apps/sobel.h"
#include "common/imagegen.h"
#include "common/random.h"
#include "common/statistics.h"

namespace rumba::apps {
namespace {

// ------------------------------------------------------------- Registry

TEST(RegistryTest, SevenBenchmarksInPaperOrder)
{
    const auto names = BenchmarkNames();
    ASSERT_EQ(names.size(), 7u);
    EXPECT_EQ(names.front(), "blackscholes");
    EXPECT_EQ(names.back(), "sobel");
    const auto all = AllBenchmarks();
    ASSERT_EQ(all.size(), 7u);
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->Info().name, names[i]);
}

TEST(RegistryTest, UnknownNameIsFatal)
{
    EXPECT_DEATH(MakeBenchmark("nonesuch"), "unknown benchmark");
}

TEST(RegistryTest, AritiesMatchTopologies)
{
    for (const auto& bench : AllBenchmarks()) {
        const auto& info = bench->Info();
        EXPECT_EQ(info.rumba_topology.NumInputs(), bench->NumInputs())
            << info.name;
        EXPECT_EQ(info.rumba_topology.NumOutputs(), bench->NumOutputs())
            << info.name;
        EXPECT_EQ(info.npu_topology.NumInputs(), bench->NumInputs())
            << info.name;
        EXPECT_EQ(info.npu_topology.NumOutputs(), bench->NumOutputs())
            << info.name;
    }
}

TEST(RegistryTest, RumbaNetNeverLargerThanNpuNet)
{
    // Rumba's error correction lets it pick a smaller or equal
    // network (Section 4 of the paper).
    for (const auto& bench : AllBenchmarks()) {
        EXPECT_LE(bench->Info().rumba_topology.MacsPerInvocation(),
                  bench->Info().npu_topology.MacsPerInvocation())
            << bench->Info().name;
    }
}

TEST(RegistryTest, RegionFractionsAreSane)
{
    for (const auto& bench : AllBenchmarks()) {
        EXPECT_GT(bench->RegionFraction(), 0.0) << bench->Info().name;
        EXPECT_LE(bench->RegionFraction(), 1.0) << bench->Info().name;
    }
}

TEST(RegistryTest, DataSizesMatchTable1)
{
    const auto sizes = [](const char* name) {
        auto b = MakeBenchmark(name);
        return std::pair<size_t, size_t>(b->TrainInputs().size(),
                                         b->TestInputs().size());
    };
    EXPECT_EQ(sizes("blackscholes").first, 5000u);
    EXPECT_EQ(sizes("blackscholes").second, 5000u);
    EXPECT_EQ(sizes("fft").first, 5000u);
    EXPECT_EQ(sizes("inversek2j").first, 10000u);
    EXPECT_EQ(sizes("jmeint").first, 10000u);
    // jpeg: 220x200 train image -> 27x25 blocks; 512x512 test -> 4096.
    EXPECT_EQ(sizes("jpeg").first, 27u * 25u);
    EXPECT_EQ(sizes("jpeg").second, 64u * 64u);
}

TEST(RegistryTest, DeterministicInputs)
{
    for (const char* name : {"blackscholes", "fft", "jmeint"}) {
        auto bench = MakeBenchmark(name);
        const auto a = bench->TrainInputs();
        const auto b = bench->TrainInputs();
        ASSERT_EQ(a.size(), b.size()) << name;
        EXPECT_EQ(a[0], b[0]) << name;
        EXPECT_EQ(a.back(), b.back()) << name;
    }
}

TEST(RegistryTest, TrainAndTestDiffer)
{
    for (const auto& bench : AllBenchmarks()) {
        const auto train = bench->TrainInputs();
        const auto test = bench->TestInputs();
        EXPECT_NE(train[0], test[0]) << bench->Info().name;
    }
}

// --------------------------------------------------------- blackscholes

TEST(BlackScholesTest, KnownPrice)
{
    // S=100, K=100, r=5%, v=20%, T=1y call: ~10.45 (textbook value).
    const double in[6] = {100, 100, 0.05, 0.2, 1.0, 0.0};
    double out = 0.0;
    BlackScholes::Kernel(in, &out);
    EXPECT_NEAR(out, 10.45, 0.05);
}

TEST(BlackScholesTest, PutCallParity)
{
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        double in[6] = {rng.Uniform(20, 120), rng.Uniform(20, 120),
                        rng.Uniform(0.01, 0.1), rng.Uniform(0.05, 0.65),
                        rng.Uniform(0.1, 2.0), 0.0};
        double call = 0.0, put = 0.0;
        BlackScholes::Kernel(in, &call);
        in[5] = 1.0;
        BlackScholes::Kernel(in, &put);
        // C - P = S - K e^{-rT}.
        const double parity =
            in[0] - in[1] * std::exp(-in[2] * in[4]);
        EXPECT_NEAR(call - put, parity, 1e-9);
    }
}

TEST(BlackScholesTest, CallPriceMonotoneInSpot)
{
    double prev = -1.0;
    for (double s = 50; s <= 150; s += 10) {
        const double in[6] = {s, 100, 0.05, 0.3, 1.0, 0.0};
        double out = 0.0;
        BlackScholes::Kernel(in, &out);
        EXPECT_GT(out, prev);
        prev = out;
    }
}

TEST(BlackScholesTest, DeepInTheMoneyCall)
{
    const double in[6] = {200, 50, 0.05, 0.2, 0.5, 0.0};
    double out = 0.0;
    BlackScholes::Kernel(in, &out);
    // Close to intrinsic discounted value S - K e^{-rT}.
    EXPECT_NEAR(out, 200 - 50 * std::exp(-0.025), 0.2);
}

TEST(BlackScholesTest, PricesNonNegative)
{
    auto bench = MakeBenchmark("blackscholes");
    const auto inputs = bench->TestInputs();
    double out = 0.0;
    for (size_t i = 0; i < 500; ++i) {
        bench->RunExact(inputs[i].data(), &out);
        EXPECT_GE(out, -1e-6);
    }
}

// ------------------------------------------------------------------ fft

TEST(FftTest, TwiddleMatchesLibm)
{
    for (double x : {0.0, 0.1, 0.25, 0.5, 0.75, 0.99}) {
        double out[2];
        Fft::Kernel(&x, out);
        EXPECT_NEAR(out[0], std::cos(-2 * M_PI * x), 1e-12);
        EXPECT_NEAR(out[1], std::sin(-2 * M_PI * x), 1e-12);
    }
}

TEST(FftTest, UnitMagnitude)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.Uniform();
        double out[2];
        Fft::Kernel(&x, out);
        EXPECT_NEAR(out[0] * out[0] + out[1] * out[1], 1.0, 1e-12);
    }
}

TEST(FftTest, RadixTwoFftWithExactTwiddles)
{
    // An 8-point radix-2 FFT using the kernel for twiddles must match
    // a direct DFT: validates that the kernel is the right building
    // block for the full application.
    const size_t n = 8;
    std::vector<std::complex<double>> x(n);
    Rng rng(7);
    for (auto& v : x)
        v = {rng.Uniform(-1, 1), 0.0};

    // Direct DFT reference.
    std::vector<std::complex<double>> ref(n);
    for (size_t k = 0; k < n; ++k)
        for (size_t t = 0; t < n; ++t)
            ref[k] += x[t] * std::polar(1.0, -2 * M_PI *
                                                 static_cast<double>(k * t) /
                                                 static_cast<double>(n));

    // Cooley-Tukey with kernel twiddles.
    std::vector<std::complex<double>> a = x;
    // Bit reversal for n = 8.
    const size_t rev[8] = {0, 4, 2, 6, 1, 5, 3, 7};
    std::vector<std::complex<double>> b(n);
    for (size_t i = 0; i < n; ++i)
        b[i] = a[rev[i]];
    for (size_t len = 2; len <= n; len <<= 1) {
        for (size_t start = 0; start < n; start += len) {
            for (size_t j = 0; j < len / 2; ++j) {
                const double frac = static_cast<double>(j) /
                                    static_cast<double>(len);
                double tw[2];
                Fft::Kernel(&frac, tw);
                const std::complex<double> w{tw[0], tw[1]};
                const auto u = b[start + j];
                const auto v = b[start + j + len / 2] * w;
                b[start + j] = u + v;
                b[start + j + len / 2] = u - v;
            }
        }
    }
    for (size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(b[k].real(), ref[k].real(), 1e-9);
        EXPECT_NEAR(b[k].imag(), ref[k].imag(), 1e-9);
    }
}

// ------------------------------------------------------------ inversek2j

TEST(InverseK2jTest, InverseOfForward)
{
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        const double t1 = rng.Uniform(0.1, M_PI / 2 - 0.1);
        const double t2 = rng.Uniform(0.1, M_PI - 0.2);
        double x, y;
        InverseK2j::ForwardKinematics(t1, t2, &x, &y);
        const double in[2] = {x, y};
        double out[2];
        InverseK2j::Kernel(in, out);
        EXPECT_NEAR(out[0], t1, 1e-9);
        EXPECT_NEAR(out[1], t2, 1e-9);
    }
}

TEST(InverseK2jTest, SolutionReachesTarget)
{
    auto bench = MakeBenchmark("inversek2j");
    const auto inputs = bench->TestInputs();
    for (size_t i = 0; i < 200; ++i) {
        double out[2];
        InverseK2j::Kernel(inputs[i].data(), out);
        double x, y;
        InverseK2j::ForwardKinematics(out[0], out[1], &x, &y);
        EXPECT_NEAR(x, inputs[i][0], 1e-9);
        EXPECT_NEAR(y, inputs[i][1], 1e-9);
    }
}

TEST(InverseK2jTest, ClampHandlesBoundary)
{
    // Fully stretched arm: |target| == l1 + l2.
    const double in[2] = {1.0, 0.0};
    double out[2];
    InverseK2j::Kernel(in, out);
    EXPECT_NEAR(out[1], 0.0, 1e-6);  // theta2 = 0 when stretched.
}

// ---------------------------------------------------------------- jmeint

TEST(JmeintTest, KnownIntersecting)
{
    // Two triangles crossing at right angles through each other.
    const double in[18] = {
        0, 0, 0,  2, 0, 0,  0, 2, 0,   // V in z=0 plane
        0.5, 0.5, -1,  0.5, 0.5, 1,  1.5, 0.5, 0.5,  // U pierces it
    };
    EXPECT_TRUE(Jmeint::TriTriIntersect(in));
}

TEST(JmeintTest, KnownDisjoint)
{
    const double in[18] = {
        0, 0, 0,  1, 0, 0,  0, 1, 0,
        0, 0, 5,  1, 0, 5,  0, 1, 5,
    };
    EXPECT_FALSE(Jmeint::TriTriIntersect(in));
}

TEST(JmeintTest, SharedEdgeIntersects)
{
    const double in[18] = {
        0, 0, 0,  1, 0, 0,  0, 1, 0,
        0, 0, 0,  1, 0, 0,  0, 0, 1,
    };
    EXPECT_TRUE(Jmeint::TriTriIntersect(in));
}

TEST(JmeintTest, CoplanarOverlapping)
{
    const double in[18] = {
        0, 0, 0,  2, 0, 0,  0, 2, 0,
        0.5, 0.5, 0,  1.5, 0.5, 0,  0.5, 1.5, 0,
    };
    EXPECT_TRUE(Jmeint::TriTriIntersect(in));
}

TEST(JmeintTest, CoplanarDisjoint)
{
    const double in[18] = {
        0, 0, 0,  1, 0, 0,  0, 1, 0,
        5, 5, 0,  6, 5, 0,  5, 6, 0,
    };
    EXPECT_FALSE(Jmeint::TriTriIntersect(in));
}

TEST(JmeintTest, SymmetricInArguments)
{
    auto bench = MakeBenchmark("jmeint");
    const auto inputs = bench->TestInputs();
    for (size_t i = 0; i < 300; ++i) {
        double swapped[18];
        for (int k = 0; k < 9; ++k) {
            swapped[k] = inputs[i][static_cast<size_t>(k + 9)];
            swapped[k + 9] = inputs[i][static_cast<size_t>(k)];
        }
        EXPECT_EQ(Jmeint::TriTriIntersect(inputs[i].data()),
                  Jmeint::TriTriIntersect(swapped))
            << "pair " << i;
    }
}

TEST(JmeintTest, SegmentSamplingAgreesOnIntersectors)
{
    // Independent (sufficient, not necessary) witness: sample points
    // on segments between U's vertices crossing V's plane; whenever
    // the witness finds an intersection the kernel must agree.
    auto bench = MakeBenchmark("jmeint");
    const auto inputs = bench->TestInputs();
    auto inside = [](const double* tri, const double p[3]) {
        // Barycentric containment of p projected on tri's plane.
        const double* a = tri;
        const double* b = tri + 3;
        const double* c = tri + 6;
        double v0[3], v1[3], v2[3];
        for (int k = 0; k < 3; ++k) {
            v0[k] = c[k] - a[k];
            v1[k] = b[k] - a[k];
            v2[k] = p[k] - a[k];
        }
        auto dot = [](const double* u, const double* v) {
            return u[0] * v[0] + u[1] * v[1] + u[2] * v[2];
        };
        const double d00 = dot(v0, v0), d01 = dot(v0, v1),
                     d11 = dot(v1, v1), d20 = dot(v2, v0),
                     d21 = dot(v2, v1);
        const double denom = d00 * d11 - d01 * d01;
        if (std::fabs(denom) < 1e-15)
            return false;
        const double u = (d11 * d20 - d01 * d21) / denom;
        const double v = (d00 * d21 - d01 * d20) / denom;
        return u >= -1e-9 && v >= -1e-9 && u + v <= 1.0 + 1e-9;
    };
    auto witness = [&](const double* in) {
        // Edges of U against triangle V's plane.
        const double* v0 = in;
        const double* v1 = in + 3;
        const double* v2 = in + 6;
        double e1[3], e2[3], n[3];
        for (int k = 0; k < 3; ++k) {
            e1[k] = v1[k] - v0[k];
            e2[k] = v2[k] - v0[k];
        }
        n[0] = e1[1] * e2[2] - e1[2] * e2[1];
        n[1] = e1[2] * e2[0] - e1[0] * e2[2];
        n[2] = e1[0] * e2[1] - e1[1] * e2[0];
        for (int e = 0; e < 3; ++e) {
            const double* p = in + 9 + 3 * e;
            const double* q = in + 9 + 3 * ((e + 1) % 3);
            double dp = 0, dq = 0;
            for (int k = 0; k < 3; ++k) {
                dp += n[k] * (p[k] - v0[k]);
                dq += n[k] * (q[k] - v0[k]);
            }
            if (dp * dq > 0)
                continue;  // edge does not cross the plane.
            const double t = dp / (dp - dq);
            double hit[3];
            for (int k = 0; k < 3; ++k)
                hit[k] = p[k] + t * (q[k] - p[k]);
            if (inside(in, hit))
                return true;
        }
        return false;
    };
    size_t witnessed = 0;
    for (size_t i = 0; i < 500; ++i) {
        if (witness(inputs[i].data())) {
            ++witnessed;
            EXPECT_TRUE(Jmeint::TriTriIntersect(inputs[i].data()))
                << "pair " << i;
        }
    }
    EXPECT_GT(witnessed, 20u);  // the witness must actually trigger.
}

TEST(JmeintTest, ClassBalanceReasonable)
{
    auto bench = MakeBenchmark("jmeint");
    const auto inputs = bench->TestInputs();
    size_t hits = 0;
    for (const auto& in : inputs)
        hits += Jmeint::TriTriIntersect(in.data());
    const double rate =
        static_cast<double>(hits) / static_cast<double>(inputs.size());
    EXPECT_GT(rate, 0.10);
    EXPECT_LT(rate, 0.90);
}

TEST(JmeintTest, MismatchMetric)
{
    auto bench = MakeBenchmark("jmeint");
    EXPECT_DOUBLE_EQ(bench->ElementError({1, 0}, {0.8, 0.2}), 0.0);
    EXPECT_DOUBLE_EQ(bench->ElementError({1, 0}, {0.2, 0.8}), 1.0);
    EXPECT_DOUBLE_EQ(bench->AggregateError({0, 1, 0, 1}), 50.0);
}

// ------------------------------------------------------------------ jpeg

TEST(JpegTest, FlatBlockSurvives)
{
    std::vector<double> block(64, 0.5), out(64);
    Jpeg::Kernel(block.data(), out.data());
    for (double v : out)
        EXPECT_NEAR(v, 0.5, 0.01);
}

TEST(JpegTest, OutputInPixelRange)
{
    auto bench = MakeBenchmark("jpeg");
    const auto inputs = bench->TestInputs();
    std::vector<double> out(64);
    for (size_t i = 0; i < 200; ++i) {
        bench->RunExact(inputs[i].data(), out.data());
        for (double v : out) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

TEST(JpegTest, ReconstructionIsClose)
{
    // Quality-50 quantization keeps smooth blocks visually close.
    auto bench = MakeBenchmark("jpeg");
    const auto inputs = bench->TestInputs();
    std::vector<double> out(64);
    OnlineStats err;
    for (size_t i = 0; i < 200; ++i) {
        bench->RunExact(inputs[i].data(), out.data());
        for (size_t k = 0; k < 64; ++k)
            err.Add(std::fabs(out[k] - inputs[i][k]));
    }
    EXPECT_LT(err.Mean(), 0.15);
    EXPECT_GT(err.Mean(), 0.0);  // lossy: not the identity.
}

TEST(JpegTest, IdempotentOnRequantizedBlock)
{
    // Encoding an already-encoded block changes little: the DCT
    // coefficients are already on the quantization lattice.
    auto bench = MakeBenchmark("jpeg");
    const auto inputs = bench->TestInputs();
    std::vector<double> once(64), twice(64);
    OnlineStats drift;
    for (size_t i = 0; i < 100; ++i) {
        bench->RunExact(inputs[i].data(), once.data());
        bench->RunExact(once.data(), twice.data());
        for (size_t k = 0; k < 64; ++k)
            drift.Add(std::fabs(twice[k] - once[k]));
    }
    // Clamping at the pixel range breaks exact idempotence; the
    // drift must still be far below the first-pass loss.
    EXPECT_LT(drift.Mean(), 0.02);
}

TEST(JpegTest, MatchesDirectDctReference)
{
    // Independent O(n^4) reference: direct 2-D DCT-II, quantize with
    // the same table, direct inverse. Must agree with the separable
    // implementation to numerical precision.
    auto reference = [](const std::vector<double>& in,
                        std::vector<double>* out) {
        const size_t b = 8;
        auto alpha = [&](size_t u) {
            return u == 0 ? std::sqrt(1.0 / 8.0) : std::sqrt(2.0 / 8.0);
        };
        std::vector<double> shifted(64), coeff(64);
        for (size_t i = 0; i < 64; ++i)
            shifted[i] = in[i] * 255.0 - 128.0;
        for (size_t u = 0; u < b; ++u) {
            for (size_t v = 0; v < b; ++v) {
                double sum = 0.0;
                for (size_t x = 0; x < b; ++x)
                    for (size_t y = 0; y < b; ++y)
                        sum += shifted[y * b + x] *
                               std::cos((2 * x + 1) * u * M_PI / 16.0) *
                               std::cos((2 * y + 1) * v * M_PI / 16.0);
                coeff[v * b + u] = alpha(u) * alpha(v) * sum;
            }
        }
        for (size_t i = 0; i < 64; ++i) {
            const double q = Jpeg::kQuantTable[i];
            coeff[i] = std::floor(coeff[i] / q + 0.5) * q;
        }
        out->assign(64, 0.0);
        for (size_t x = 0; x < b; ++x) {
            for (size_t y = 0; y < b; ++y) {
                double sum = 0.0;
                for (size_t u = 0; u < b; ++u)
                    for (size_t v = 0; v < b; ++v)
                        sum += alpha(u) * alpha(v) * coeff[v * b + u] *
                               std::cos((2 * x + 1) * u * M_PI / 16.0) *
                               std::cos((2 * y + 1) * v * M_PI / 16.0);
                (*out)[y * b + x] =
                    std::clamp((sum + 128.0) / 255.0, 0.0, 1.0);
            }
        }
    };

    auto bench = MakeBenchmark("jpeg");
    const auto inputs = bench->TestInputs();
    std::vector<double> fast(64), ref(64);
    for (size_t i = 0; i < 25; ++i) {
        bench->RunExact(inputs[i].data(), fast.data());
        reference(inputs[i], &ref);
        for (size_t k = 0; k < 64; ++k)
            EXPECT_NEAR(fast[k], ref[k], 1e-9) << "block " << i;
    }
}

TEST(BlackScholesTest, CndfPolynomialTracksErf)
{
    // The kernel's Abramowitz-Stegun CNDF must track the erf-based
    // exact CNDF to the approximation's documented 7.5e-8 bound —
    // verified indirectly through option prices with zero volatility
    // spread: price(call) via kernel vs closed form on a dense grid.
    for (double s = 40; s <= 160; s += 7) {
        const double in[6] = {s, 100.0, 0.05, 0.25, 1.0, 0.0};
        double kernel_price = 0.0;
        apps::BlackScholes::Kernel(in, &kernel_price);
        // erf-based reference.
        auto cndf = [](double x) {
            return 0.5 * std::erfc(-x / std::sqrt(2.0));
        };
        const double d1 =
            (std::log(s / 100.0) + (0.05 + 0.5 * 0.25 * 0.25)) / 0.25;
        const double d2 = d1 - 0.25;
        const double exact = s * cndf(d1) -
                             100.0 * std::exp(-0.05) * cndf(d2);
        EXPECT_NEAR(kernel_price, exact, 1e-4) << "spot " << s;
    }
}

TEST(InverseK2jTest, ElbowDownBranchConsistent)
{
    // theta2 from Acos is always in [0, pi]: the elbow-down solution.
    auto bench = MakeBenchmark("inversek2j");
    const auto inputs = bench->TestInputs();
    double out[2];
    for (size_t i = 0; i < 500; ++i) {
        InverseK2j::Kernel(inputs[i].data(), out);
        EXPECT_GE(out[1], 0.0);
        EXPECT_LE(out[1], M_PI);
    }
}

TEST(JpegTest, BlocksFromImageShape)
{
    const GrayImage img = GenerateSceneImage(64, 40, 3);
    const auto blocks = Jpeg::BlocksFromImage(img);
    EXPECT_EQ(blocks.size(), 8u * 5u);
    for (const auto& b : blocks)
        EXPECT_EQ(b.size(), 64u);
    // First block's first pixel is the image's top-left pixel.
    EXPECT_DOUBLE_EQ(blocks[0][0], img.At(0, 0));
}

// ---------------------------------------------------------------- kmeans

TEST(KmeansTest, DistanceMatchesEuclid)
{
    const double in[6] = {0.1, 0.2, 0.3, 0.4, 0.8, 0.7};
    double out = 0.0;
    Kmeans::Kernel(in, &out);
    EXPECT_NEAR(out, std::sqrt(0.09 + 0.36 + 0.16), 1e-12);
}

TEST(KmeansTest, ZeroDistanceForIdenticalPoints)
{
    const double in[6] = {0.5, 0.5, 0.5, 0.5, 0.5, 0.5};
    double out = 1.0;
    Kmeans::Kernel(in, &out);
    EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(KmeansTest, InputsInColorCube)
{
    auto bench = MakeBenchmark("kmeans");
    for (const auto& in : bench->TrainInputs()) {
        for (double v : in) {
            EXPECT_GE(v, 0.0);
            EXPECT_LE(v, 1.0);
        }
    }
}

// ----------------------------------------------------------------- sobel

TEST(SobelTest, FlatWindowZeroGradient)
{
    std::vector<double> win(9, 0.7);
    double out = 1.0;
    Sobel::Kernel(win.data(), &out);
    EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(SobelTest, VerticalEdgeGradient)
{
    // Window 0 0 1 / 0 0 1 / 0 0 1: gx = 4, gy = 0 -> mag/2 = 2 -> clamp 1.
    const double win[9] = {0, 0, 1, 0, 0, 1, 0, 0, 1};
    double out = 0.0;
    Sobel::Kernel(win, &out);
    EXPECT_DOUBLE_EQ(out, 1.0);
}

TEST(SobelTest, RampHasUniformGradient)
{
    const GrayImage ramp = GenerateRampImage(32, 8);
    const auto windows = Sobel::WindowsFromImage(ramp);
    double first = -1.0;
    for (const auto& w : windows) {
        double out = 0.0;
        Sobel::Kernel(w.data(), &out);
        if (first < 0)
            first = out;
        EXPECT_NEAR(out, first, 1e-9);
    }
    // Ramp slope 1/31 per pixel -> gx = 8/31, gy = 0, mag/2 = 4/31.
    EXPECT_NEAR(first, 4.0 / 31.0, 1e-9);
}

TEST(SobelTest, RotationSwapsGxGy)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        double win[9];
        for (auto& v : win)
            v = rng.Uniform();
        // Transpose the window: swaps the roles of gx and gy, so the
        // magnitude is unchanged.
        const double t[9] = {win[0], win[3], win[6], win[1], win[4],
                             win[7], win[2], win[5], win[8]};
        double a = 0.0, b = 0.0;
        Sobel::Kernel(win, &a);
        Sobel::Kernel(t, &b);
        EXPECT_NEAR(a, b, 1e-12);
    }
}

TEST(SobelTest, WindowCountAndStride)
{
    const GrayImage img = GenerateSceneImage(34, 18, 5);
    EXPECT_EQ(Sobel::WindowsFromImage(img, 1).size(), 32u * 16u);
    EXPECT_EQ(Sobel::WindowsFromImage(img, 2).size(), 16u * 8u);
}

// ------------------------------------------------------------ Profiling

TEST(ProfileTest, AllKernelsProduceOps)
{
    for (const auto& bench : AllBenchmarks()) {
        const sim::OpCounts ops = bench->ProfileKernel(64);
        EXPECT_GT(ops.TotalFp(), 0.0) << bench->Info().name;
        EXPECT_GE(ops.load, static_cast<double>(bench->NumInputs()))
            << bench->Info().name;
        EXPECT_GE(ops.store, static_cast<double>(bench->NumOutputs()))
            << bench->Info().name;
    }
}

TEST(ProfileTest, JpegIsTheHeaviestKernel)
{
    const double jpeg_ops =
        MakeBenchmark("jpeg")->ProfileKernel(16).Total();
    const double kmeans_ops =
        MakeBenchmark("kmeans")->ProfileKernel(16).Total();
    EXPECT_GT(jpeg_ops, 50 * kmeans_ops);
}

TEST(ProfileTest, CountedMatchesExactValues)
{
    // The counting instantiation must compute the same values as the
    // double instantiation.
    for (const auto& bench : AllBenchmarks()) {
        const auto inputs = bench->TestInputs();
        std::vector<double> exact(bench->NumOutputs());
        bench->RunExact(inputs[0].data(), exact.data());
        std::vector<sim::CountingScalar> in(bench->NumInputs());
        std::vector<sim::CountingScalar> out(bench->NumOutputs());
        for (size_t i = 0; i < in.size(); ++i)
            in[i] = sim::CountingScalar(inputs[0][i]);
        bench->RunCounted(in.data(), out.data());
        for (size_t o = 0; o < exact.size(); ++o)
            EXPECT_DOUBLE_EQ(out[o].Value(), exact[o])
                << bench->Info().name;
    }
}

// --------------------------------------------------------------- mosaic

TEST(MosaicTest, ExactBrightnessIsMean)
{
    GrayImage img(4, 4, 0.25);
    img.At(0, 0) = 1.0;
    EXPECT_NEAR(MosaicStudy::ExactBrightness(img),
                (0.25 * 15 + 1.0) / 16.0, 1e-12);
}

TEST(MosaicTest, NoPerforationNoError)
{
    MosaicStudy::Options opt;
    opt.stride = 1;
    const GrayImage img = GenerateFlowerImage(64, 64, 9);
    EXPECT_NEAR(MosaicStudy::OutputErrorPercent(img, opt), 0.0, 1e-9);
}

TEST(MosaicTest, PerforationErrorIsInputDependent)
{
    MosaicStudy::Options opt;
    opt.images = 120;
    opt.width = 96;
    opt.height = 96;
    const auto errors = MosaicStudy::RunStudy(opt);
    ASSERT_EQ(errors.size(), 120u);
    OnlineStats stats;
    for (double e : errors)
        stats.Add(e);
    // The paper's Figure 3 shape: small average, long tail.
    EXPECT_GT(stats.Max(), 3.0 * stats.Mean());
    EXPECT_GT(stats.Max(), 5.0);
    EXPECT_LT(stats.Mean(), 15.0);
}

TEST(MosaicTest, RandomModeAlsoWorks)
{
    MosaicStudy::Options opt;
    opt.mode = MosaicStudy::Mode::kRandomPixels;
    const GrayImage img = GenerateFlowerImage(64, 64, 11);
    const double err = MosaicStudy::OutputErrorPercent(img, opt);
    EXPECT_GE(err, 0.0);
    EXPECT_LT(err, 100.0);
}

// -------------------------------------------------------------- Metrics

TEST(MetricsTest, DefaultRelativeErrorUsesFloor)
{
    auto bench = MakeBenchmark("fft");
    // exact (1, 0), approx (0.9, 0.1): errors 0.1/1 and 0.1/0.5.
    EXPECT_NEAR(bench->ElementError({1.0, 0.0}, {0.9, 0.1}),
                (0.1 + 0.2) / 2.0, 1e-12);
}

TEST(MetricsTest, AggregateIsPercentMean)
{
    auto bench = MakeBenchmark("fft");
    EXPECT_DOUBLE_EQ(bench->AggregateError({0.1, 0.3}), 20.0);
}

TEST(MetricsTest, JpegUsesAbsolutePixelDiff)
{
    auto bench = MakeBenchmark("jpeg");
    std::vector<double> exact(64, 0.5), approx(64, 0.6);
    EXPECT_NEAR(bench->ElementError(exact, approx), 0.1, 1e-12);
}

}  // namespace
}  // namespace rumba::apps
