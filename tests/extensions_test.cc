// Tests for the extension features (hybrid checker, runtime threshold
// calibration) and parameterized property sweeps across formats, PE
// counts, tuner modes and predictor schemes.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "common/dataset.h"
#include "common/random.h"
#include "core/batch_view.h"
#include "core/overlap_sim.h"
#include "core/pipeline.h"
#include "core/runtime.h"
#include "core/schemes.h"
#include "npu/fixed_point.h"
#include "npu/schedule.h"
#include "obs/span.h"
#include "predict/ema.h"
#include "predict/hybrid.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba {
namespace {

/** Flatten rows [lo, hi) of @p inputs and run them through the
 *  BatchView hot path; @p outputs is sized to the merged result. */
core::InvocationReport
Invoke(core::RumbaRuntime& runtime,
       const std::vector<std::vector<double>>& inputs, size_t lo,
       size_t hi, std::vector<double>* outputs)
{
    const std::vector<std::vector<double>> rows(
        inputs.begin() + static_cast<ptrdiff_t>(lo),
        inputs.begin() + static_cast<ptrdiff_t>(hi));
    const std::vector<double> flat = core::FlattenBatch(rows);
    outputs->resize((hi - lo) * runtime.Bench().NumOutputs());
    return runtime.ProcessInvocation(
        core::BatchView(flat.data(), hi - lo,
                        runtime.Bench().NumInputs()),
        outputs->data());
}

// ------------------------------------------------------ HybridPredictor

/** inputs -> scalar error dataset for a generator function. */
template <typename Fn>
Dataset
MakeErrorData(size_t n, size_t dims, uint64_t seed, Fn&& fn)
{
    Rng rng(seed);
    Dataset d(dims, 1);
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> x(dims);
        for (auto& v : x)
            v = rng.Uniform();
        d.Add(x, {fn(x)});
    }
    return d;
}

TEST(HybridPredictorTest, PicksTreeForStepTarget)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] < 0.4 ? 0.8 : 0.05;
    };
    predict::HybridErrorPredictor hybrid;
    hybrid.Train(MakeErrorData(2000, 1, 3, fn));
    EXPECT_EQ(hybrid.SelectedName(), "treeErrors");
    EXPECT_NEAR(hybrid.PredictError({0.1}, {}), 0.8, 0.1);
}

TEST(HybridPredictorTest, PicksLinearForLinearTarget)
{
    // A clean linear trend: the linear model fits it exactly while a
    // depth-7 tree staircases it.
    const auto fn = [](const std::vector<double>& x) {
        return 0.1 + 0.7 * x[0];
    };
    predict::HybridErrorPredictor hybrid;
    hybrid.Train(MakeErrorData(2000, 1, 5, fn));
    EXPECT_EQ(hybrid.SelectedName(), "linearErrors");
}

TEST(HybridPredictorTest, NeverWorseThanBothCandidates)
{
    const auto fn = [](const std::vector<double>& x) {
        return 0.2 * x[0] + (x[1] < 0.5 ? 0.3 : 0.0);
    };
    const Dataset train = MakeErrorData(3000, 2, 7, fn);
    const Dataset test = MakeErrorData(500, 2, 11, fn);

    predict::HybridErrorPredictor hybrid;
    predict::LinearErrorPredictor linear;
    predict::TreeErrorPredictor tree;
    hybrid.Train(train);
    linear.Train(train);
    tree.Train(train);

    auto mae = [&test](predict::ErrorPredictor* p) {
        double total = 0.0;
        for (size_t s = 0; s < test.Size(); ++s)
            total += std::fabs(p->PredictError(test.Input(s), {}) -
                               test.Target(s)[0]);
        return total / static_cast<double>(test.Size());
    };
    const double best = std::min(mae(&linear), mae(&tree));
    EXPECT_LE(mae(&hybrid), best * 1.2);  // validation-noise margin.
}

TEST(HybridPredictorTest, CostMatchesSelection)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] < 0.4 ? 0.8 : 0.05;
    };
    predict::HybridErrorPredictor hybrid;
    hybrid.Train(MakeErrorData(1000, 1, 13, fn));
    // Tree selected: the cost must be comparison-based (no MACs).
    EXPECT_DOUBLE_EQ(hybrid.CostPerCheck().macs, 0.0);
    EXPECT_GT(hybrid.CostPerCheck().compares, 0.0);
}

TEST(HybridPredictorTest, ReportsCandidateScores)
{
    predict::HybridErrorPredictor hybrid;
    hybrid.Train(MakeErrorData(500, 1, 17, [](const auto& x) {
        return x[0];
    }));
    ASSERT_EQ(hybrid.CandidateScores().size(), 2u);
    for (const auto& [name, mae] : hybrid.CandidateScores()) {
        EXPECT_FALSE(name.empty());
        EXPECT_GE(mae, 0.0);
    }
}

TEST(HybridPredictorTest, UntrainedPredictPanics)
{
    predict::HybridErrorPredictor hybrid;
    EXPECT_DEATH(hybrid.PredictError({0.5}, {}), "check failed");
}

// ------------------------------------------------------ Scheme plumbing

TEST(ExtendedSchemesTest, HybridAppended)
{
    const auto schemes = core::ExtendedSchemes();
    EXPECT_EQ(schemes.size(), 7u);
    EXPECT_EQ(schemes.back(), core::Scheme::kHybrid);
    EXPECT_STREQ(core::SchemeName(core::Scheme::kHybrid),
                 "hybridErrors");
    EXPECT_TRUE(core::IsPredictorScheme(core::Scheme::kHybrid));
}

TEST(ExtendedSchemesTest, PipelineBuildsHybrid)
{
    EXPECT_EQ(core::Pipeline::MakePredictor(core::Scheme::kHybrid)
                  ->Name(),
              "hybridErrors");
}

// ------------------------------------------------ Runtime calibration

TEST(RuntimeCalibrationTest, AutoThresholdLandsNearTarget)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 1000;
    cfg.pipeline.max_test_elements = 600;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.mode = core::TuningMode::kToq;
    cfg.tuner.target_error_pct = 10.0;
    cfg.initial_threshold = 0.0;  // auto-calibrate.
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);

    EXPECT_GT(runtime.Threshold(), cfg.tuner.min_threshold);

    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    const auto report = Invoke(runtime, inputs, 0, 600, &outputs);
    // First invocation already in the target's neighborhood (train ->
    // test generalization slack).
    EXPECT_LT(report.output_error_pct, 16.0);
    EXPECT_GT(report.fixes, 0u);
    EXPECT_LT(report.fixes, 600u);
}

TEST(RuntimeCalibrationTest, LooseTargetMeansFewFixes)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 90.0;  // nearly anything goes.
    cfg.initial_threshold = 0.0;
    core::RumbaRuntime runtime(apps::MakeBenchmark("fft"), cfg);
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    const auto report = Invoke(runtime, inputs, 0, 400, &outputs);
    EXPECT_LT(report.fixes, 40u);
}

TEST(RuntimeCalibrationTest, HybridCheckerWorksOnline)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kHybrid;
    cfg.tuner.target_error_pct = 10.0;
    cfg.initial_threshold = 0.0;
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    const auto report = Invoke(runtime, inputs, 0, 400, &outputs);
    EXPECT_EQ(outputs.size(), 400u * runtime.Bench().NumOutputs());
    EXPECT_LT(report.output_error_pct, 20.0);
}

// -------------------------------------------------------- TieredRecovery

TEST(TieredRecoveryTest, CompensationSplitsTheFixSet)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 10.0;
    cfg.initial_threshold = 0.05;
    cfg.recovery_queue_capacity = 512;

    core::RuntimeConfig tiered_cfg = cfg;
    tiered_cfg.recovery_policy.compensation = true;

    core::RumbaRuntime baseline(apps::MakeBenchmark("inversek2j"),
                                cfg);
    core::RumbaRuntime tiered(apps::MakeBenchmark("inversek2j"),
                              tiered_cfg);
    EXPECT_FALSE(baseline.HasCompensator());
    ASSERT_TRUE(tiered.HasCompensator());

    const auto inputs = tiered.Bench().TestInputs();
    std::vector<double> out_base, out_tiered;
    const auto report_base = Invoke(baseline, inputs, 0, 400,
                                    &out_base);
    const auto report = Invoke(tiered, inputs, 0, 400, &out_tiered);

    // Tier counts partition the batch.
    EXPECT_EQ(report.tier_accepted + report.tier_compensated +
                  report.tier_reexecuted,
              report.elements);
    EXPECT_EQ(report.fixes,
              report.tier_compensated + report.tier_reexecuted);
    // Same checker + threshold fires the same set; the policy splits
    // it so strictly fewer elements pay for exact re-execution.
    EXPECT_EQ(report.fixes, report_base.fixes);
    EXPECT_GT(report.tier_compensated, 0u);
    EXPECT_LT(report.tier_reexecuted, report_base.tier_reexecuted);
    EXPECT_EQ(tiered.TotalCompensations(), report.tier_compensated);
    // Compensation is a model, not magic — but quality must stay in
    // the target's neighborhood, not collapse.
    EXPECT_LT(report.output_error_pct, 25.0);
    for (double v : out_tiered)
        EXPECT_TRUE(std::isfinite(v));

    // The baseline (compensation off) never compensates: the paper's
    // two-tier behaviour is preserved bit-for-bit.
    EXPECT_EQ(report_base.tier_compensated, 0u);
    EXPECT_EQ(baseline.TotalCompensations(), 0u);
}

TEST(TieredRecoveryTest, VerifyPassTunesTheMultipleOnline)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 10.0;
    cfg.initial_threshold = 0.05;
    cfg.recovery_queue_capacity = 512;
    cfg.recovery_policy.compensation = true;

    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"),
                               cfg);
    const double initial_multiple = runtime.Policy().Multiple();
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    size_t compensated = 0;
    for (size_t round = 0; round < 8; ++round) {
        const auto report =
            Invoke(runtime, inputs, 0, inputs.size(), &outputs);
        compensated += report.tier_compensated;
    }
    ASSERT_GT(compensated, 0u);
    // The verify pass measured the compensated elements' true
    // residual every round; the policy acted on that ground truth.
    EXPECT_GT(runtime.Policy().Adjustments(), 0u);
    EXPECT_NE(runtime.Policy().Multiple(), initial_multiple);
    EXPECT_GE(runtime.Policy().Multiple(),
              cfg.recovery_policy.min_multiple);
    EXPECT_LE(runtime.Policy().Multiple(),
              cfg.recovery_policy.max_multiple);
}

// ---------------------------------------------------------- DriftMonitor

TEST(DriftMonitorTest, DisabledWithoutExpectedRate)
{
    core::DriftMonitor monitor;
    EXPECT_FALSE(monitor.Enabled());
    for (int i = 0; i < 20; ++i)
        monitor.Observe(100, 100);  // extreme rate, still no alarm.
    EXPECT_FALSE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, QuietWhileOnCalibration)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.2;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 20; ++i)
        monitor.Observe(20, 100);
    EXPECT_FALSE(monitor.DriftDetected());
    EXPECT_NEAR(monitor.SmoothedFireRate(), 0.2, 1e-9);
}

TEST(DriftMonitorTest, FiresOnPersistentRateJump)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.1;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 30; ++i)
        monitor.Observe(60, 100);  // 6x the calibrated rate.
    EXPECT_TRUE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, FiresOnPersistentRateCollapse)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.4;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 30; ++i)
        monitor.Observe(2, 100);
    EXPECT_TRUE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, SingleSpikeIsAbsorbed)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.2;
    opt.alpha = 0.1;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 10; ++i)
        monitor.Observe(20, 100);
    monitor.Observe(90, 100);  // one bad batch.
    EXPECT_FALSE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, WarmupSuppressesEarlyAlarms)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.1;
    opt.warmup = 5;
    opt.alpha = 1.0;  // no smoothing: the alarm condition is instant.
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 4; ++i) {
        monitor.Observe(90, 100);
        EXPECT_FALSE(monitor.DriftDetected()) << i;
    }
    monitor.Observe(90, 100);
    EXPECT_TRUE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, ZeroElementInvocationsIgnored)
{
    // A breaker-degraded invocation serves zero elements on the
    // accelerator: no fire-rate information, no state change.
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.2;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 10; ++i)
        monitor.Observe(20, 100);
    const double before = monitor.SmoothedFireRate();
    const size_t observed = monitor.Observations();
    monitor.Observe(0, 0);
    EXPECT_DOUBLE_EQ(monitor.SmoothedFireRate(), before);
    EXPECT_EQ(monitor.Observations(), observed);
    EXPECT_FALSE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, ZeroExpectedRateDisablesEvenWithObservations)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.0;
    core::DriftMonitor monitor(opt);
    EXPECT_FALSE(monitor.Enabled());
    for (int i = 0; i < 50; ++i)
        monitor.Observe(100, 100);
    EXPECT_FALSE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, MinDeltaGuardsTinyExpectedRates)
{
    // expected 1%, observed 2.5%: a 2.5x ratio (over tolerance) but
    // only a 1.5-point absolute departure — inside min_delta, never
    // drift.
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.01;
    opt.min_delta = 0.02;
    opt.alpha = 1.0;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 20; ++i)
        monitor.Observe(25, 1000);
    EXPECT_FALSE(monitor.DriftDetected());
    // Past the absolute slack the ratio test applies again.
    for (int i = 0; i < 20; ++i)
        monitor.Observe(100, 1000);
    EXPECT_TRUE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, ReArmClearsAlarmUntilFreshEvidence)
{
    core::DriftMonitor::Options opt;
    opt.expected_fire_rate = 0.1;
    opt.warmup = 3;
    opt.alpha = 1.0;
    core::DriftMonitor monitor(opt);
    for (int i = 0; i < 10; ++i)
        monitor.Observe(90, 100);
    ASSERT_TRUE(monitor.DriftDetected());

    // Recovery (e.g. the circuit breaker closed): re-arm resets the
    // smoothed rate to the calibrated expectation and restarts warmup.
    monitor.ReArm();
    EXPECT_FALSE(monitor.DriftDetected());
    EXPECT_EQ(monitor.Observations(), 0u);
    EXPECT_NEAR(monitor.SmoothedFireRate(), 0.1, 1e-12);

    // Healthy traffic keeps it quiet...
    for (int i = 0; i < 5; ++i)
        monitor.Observe(10, 100);
    EXPECT_FALSE(monitor.DriftDetected());
    // ...and a fresh persistent departure re-raises the alarm.
    for (int i = 0; i < 10; ++i)
        monitor.Observe(90, 100);
    EXPECT_TRUE(monitor.DriftDetected());
}

TEST(DriftMonitorTest, RuntimeRaisesDriftOnShiftedInputs)
{
    // Calibrate on inversek2j's training distribution, then feed
    // waypoints far outside it: the fire rate jumps and the report's
    // drift flag must come up.
    // A well-trained network keeps the calibrated fire rate low, so
    // an upward departure is detectable within the tolerance band.
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 80;
    cfg.pipeline.max_train_elements = 3000;
    cfg.pipeline.max_test_elements = 400;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 10.0;
    cfg.initial_threshold = 0.0;  // calibration enables the monitor.
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    EXPECT_TRUE(runtime.Drift().Enabled());
    ASSERT_LT(runtime.Drift().Config().expected_fire_rate, 0.4);

    // Out-of-distribution targets hugging the workspace boundary.
    std::vector<std::vector<double>> weird;
    for (int i = 0; i < 200; ++i) {
        const double angle = 0.5 + 0.4 * i / 200.0;
        weird.push_back(
            {0.99 * std::cos(angle), 0.99 * std::sin(angle)});
    }
    std::vector<double> outputs;
    bool drifted = false;
    for (int round = 0; round < 8; ++round) {
        drifted = Invoke(runtime, weird, 0, weird.size(), &outputs)
                      .drift_detected;
    }
    EXPECT_TRUE(drifted);
}

// ------------------------------------------------------------ RunSummary

TEST(RunSummaryTest, AccumulatesAcrossInvocations)
{
    core::RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 25;
    cfg.pipeline.max_train_elements = 600;
    cfg.pipeline.max_test_elements = 600;
    cfg.checker = core::Scheme::kTree;
    cfg.tuner.target_error_pct = 10.0;
    core::RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    const auto inputs = runtime.Bench().TestInputs();

    std::vector<double> outputs;
    size_t expected_fixes = 0;
    for (size_t r = 0; r < 3; ++r) {
        expected_fixes += Invoke(runtime, inputs, r * 150,
                                 (r + 1) * 150, &outputs)
                              .fixes;
    }
    const core::RunSummary& s = runtime.Summary();
    EXPECT_EQ(s.invocations, 3u);
    EXPECT_EQ(s.elements, 450u);
    EXPECT_EQ(s.fixes, expected_fixes);
    EXPECT_GE(s.MeanOutputErrorPct(), 0.0);
    EXPECT_GT(s.EnergySaving(), 0.0);
    EXPECT_GT(s.Speedup(), 0.0);
    EXPECT_NEAR(s.FixFraction(),
                static_cast<double>(expected_fixes) / 450.0, 1e-12);
}

TEST(RunSummaryTest, EmptySummaryIsZero)
{
    const core::RunSummary s;
    EXPECT_DOUBLE_EQ(s.MeanOutputErrorPct(), 0.0);
    EXPECT_DOUBLE_EQ(s.FixFraction(), 0.0);
    EXPECT_DOUBLE_EQ(s.EnergySaving(), 0.0);
    EXPECT_DOUBLE_EQ(s.Speedup(), 0.0);
}

// ----------------------------------------------------- Overlap simulator

TEST(OverlapSimTest, NoFiresMeansAcceleratorOnly)
{
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    const auto res = core::SimulateOverlap(std::vector<char>(100, 0),
                                           cfg);
    EXPECT_EQ(res.total_cycles, 1000u);
    EXPECT_EQ(res.fixes, 0u);
    EXPECT_EQ(res.accel_stall_cycles, 0u);
    EXPECT_EQ(res.cpu_busy_cycles, 0u);
}

TEST(OverlapSimTest, AllFiresCpuBound)
{
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 40;
    cfg.queue_capacity = 1000;
    const auto res = core::SimulateOverlap(std::vector<char>(100, 1),
                                           cfg);
    EXPECT_EQ(res.fixes, 100u);
    // CPU-bound: the last fix commits at first-arrival + 100 * 40.
    EXPECT_EQ(res.total_cycles, 10u + 100u * 40u);
    EXPECT_EQ(res.cpu_busy_cycles, 4000u);
}

TEST(OverlapSimTest, SustainableRateNeverStalls)
{
    // Accelerator 4x faster than a fix, 25% fire rate, perfectly
    // spaced: the CPU exactly keeps up (paper's Figure 8 example
    // shape).
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 40;
    cfg.queue_capacity = 4;
    std::vector<char> mask(1000, 0);
    for (size_t i = 0; i < mask.size(); i += 4)
        mask[i] = 1;
    const auto res = core::SimulateOverlap(mask, cfg);
    EXPECT_EQ(res.accel_stall_cycles, 0u);
    EXPECT_LE(res.total_cycles, 10u * 1000u + 40u);
}

TEST(OverlapSimTest, TinyQueuePlusBurstStalls)
{
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 40;
    cfg.queue_capacity = 2;
    // A burst of 20 consecutive fires at an otherwise idle start.
    std::vector<char> mask(200, 0);
    for (size_t i = 0; i < 20; ++i)
        mask[i] = 1;
    const auto res = core::SimulateOverlap(mask, cfg);
    EXPECT_GT(res.accel_stall_cycles, 0u);
    EXPECT_EQ(res.max_queue_depth, 2u);
}

TEST(OverlapSimTest, BiggerQueueNeverSlower)
{
    Rng rng(3);
    std::vector<char> mask(5000, 0);
    for (auto& m : mask)
        m = rng.Chance(0.3);
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 25;
    uint64_t prev = UINT64_MAX;
    for (size_t q : {1ul, 2ul, 8ul, 32ul, 256ul}) {
        cfg.queue_capacity = q;
        const auto res = core::SimulateOverlap(mask, cfg);
        EXPECT_LE(res.total_cycles, prev) << "queue " << q;
        prev = res.total_cycles;
    }
}

TEST(OverlapSimTest, TraceMatchesPaperFigure8)
{
    // Fires at 0, 2, 5, 6 with a 2x-faster accelerator: the paper's
    // worked example. Iteration 0's fix overlaps iterations 1-2 on
    // the accelerator; iteration 2's fix overlaps 3-4; and so on.
    std::vector<char> mask(8, 0);
    mask[0] = mask[2] = mask[5] = mask[6] = 1;
    core::OverlapConfig cfg;
    cfg.accel_cycles_per_element = 10;
    cfg.cpu_cycles_per_fix = 20;
    std::vector<core::ElementTrace> trace;
    const auto res = core::SimulateOverlap(mask, cfg, &trace);
    ASSERT_EQ(trace.size(), 8u);

    EXPECT_EQ(trace[0].accel_start, 0u);
    EXPECT_EQ(trace[0].accel_end, 10u);
    EXPECT_TRUE(trace[0].fired);
    EXPECT_EQ(trace[0].cpu_start, 10u);   // right after it's produced.
    EXPECT_EQ(trace[0].cpu_end, 30u);     // overlaps accel elems 1-2.

    EXPECT_EQ(trace[2].cpu_start, 30u);   // CPU freed by fix 0.
    EXPECT_EQ(trace[2].cpu_end, 50u);

    EXPECT_FALSE(trace[1].fired);
    EXPECT_EQ(trace[1].cpu_end, 0u);

    // Back-to-back fires at 5 and 6 serialize on the CPU.
    EXPECT_EQ(trace[5].cpu_start, 60u);
    EXPECT_EQ(trace[6].cpu_start, 80u);
    EXPECT_EQ(res.total_cycles, 100u);
    EXPECT_EQ(res.accel_stall_cycles, 0u);
}

TEST(OverlapSimTest, NeverBeatsFluidLimit)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<char> mask(2000, 0);
        const double rate = rng.Uniform(0.05, 0.9);
        size_t fires = 0;
        for (auto& m : mask) {
            m = rng.Chance(rate);
            fires += m;
        }
        core::OverlapConfig cfg;
        cfg.accel_cycles_per_element = 1 + rng.Below(30);
        cfg.cpu_cycles_per_fix = 1 + rng.Below(100);
        cfg.queue_capacity = 1 + rng.Below(128);
        const auto res = core::SimulateOverlap(mask, cfg);
        const uint64_t fluid = std::max(
            mask.size() * cfg.accel_cycles_per_element,
            fires * cfg.cpu_cycles_per_fix);
        EXPECT_GE(res.total_cycles + cfg.cpu_cycles_per_fix, fluid);
        EXPECT_EQ(res.fixes, fires);
    }
}

// ------------------------------------------- Parameterized: fixed point

class FixedFormatTest : public ::testing::TestWithParam<int> {
};

TEST_P(FixedFormatTest, RoundTripWithinHalfStep)
{
    npu::FixedFormat fmt;
    fmt.fractional_bits = GetParam();
    Rng rng(21);
    const double range = 32768.0 / fmt.Scale() * 0.95;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.Uniform(-range, range);
        EXPECT_NEAR(fmt.RoundTrip(v), v, fmt.Resolution() / 2 + 1e-12);
    }
}

TEST_P(FixedFormatTest, MacReduceMatchesProduct)
{
    npu::FixedFormat fmt;
    fmt.fractional_bits = GetParam();
    Rng rng(23);
    for (int i = 0; i < 500; ++i) {
        const double a = rng.Uniform(-2.0, 2.0);
        const double b = rng.Uniform(-2.0, 2.0);
        npu::MacAccumulator acc;
        acc.Mac(fmt.Quantize(a), fmt.Quantize(b));
        EXPECT_NEAR(fmt.Dequantize(acc.Reduce(fmt)), a * b,
                    3.0 * fmt.Resolution() + 8.0 * fmt.Resolution());
    }
}

INSTANTIATE_TEST_SUITE_P(Formats, FixedFormatTest,
                         ::testing::Values(4, 6, 8, 10, 12));

// ---------------------------------------------- Parameterized: schedule

class ScheduleSweepTest
    : public ::testing::TestWithParam<std::tuple<const char*, size_t>> {
};

TEST_P(ScheduleSweepTest, Invariants)
{
    const auto [topo_text, pes] = GetParam();
    const auto topo = nn::Topology::Parse(topo_text);
    const npu::Schedule sched = npu::BuildSchedule(topo, pes);

    EXPECT_EQ(sched.layers.size(), topo.layers.size() - 1);
    EXPECT_EQ(sched.input_cycles, topo.NumInputs());
    EXPECT_EQ(sched.output_cycles, topo.NumOutputs());
    size_t sum = sched.input_cycles + sched.output_cycles;
    for (size_t li = 0; li < sched.layers.size(); ++li) {
        const auto& layer = sched.layers[li];
        EXPECT_EQ(layer.neurons, topo.layers[li + 1]);
        EXPECT_EQ(layer.waves, (layer.neurons + pes - 1) / pes);
        EXPECT_EQ(layer.mac_cycles, layer.waves * (layer.inputs + 1));
        sum += layer.mac_cycles + layer.act_cycles;
    }
    EXPECT_EQ(sched.total_cycles, sum);

    // Monotone in PEs: doubling PEs never increases cycles.
    const npu::Schedule doubled = npu::BuildSchedule(topo, pes * 2);
    EXPECT_LE(doubled.total_cycles, sched.total_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ScheduleSweepTest,
    ::testing::Combine(::testing::Values("6->8->8->1", "1->4->4->2",
                                         "18->32->8->2", "64->16->64",
                                         "9->8->1", "2->2->2"),
                       ::testing::Values(size_t{1}, size_t{2},
                                         size_t{4}, size_t{8},
                                         size_t{16})));

// ----------------------------------------------- Parameterized: tuner

class TunerModeTest : public ::testing::TestWithParam<core::TuningMode> {
};

TEST_P(TunerModeTest, ThresholdStaysInRange)
{
    core::TunerConfig cfg;
    cfg.mode = GetParam();
    cfg.iteration_budget = 50;
    cfg.min_threshold = 0.01;
    cfg.max_threshold = 10.0;
    core::OnlineTuner tuner(cfg, 1.0);
    Rng rng(31);
    for (int i = 0; i < 200; ++i) {
        core::InvocationFeedback fb;
        fb.elements = 100;
        fb.fixes = static_cast<size_t>(rng.Below(101));
        fb.estimated_error_pct = rng.Uniform(0.0, 40.0);
        fb.cpu_busy_ratio = rng.Uniform(0.0, 2.0);
        tuner.EndInvocation(fb);
        EXPECT_GE(tuner.Threshold(), cfg.min_threshold);
        EXPECT_LE(tuner.Threshold(), cfg.max_threshold);
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, TunerModeTest,
                         ::testing::Values(core::TuningMode::kToq,
                                           core::TuningMode::kEnergy,
                                           core::TuningMode::kQuality));

// --------------------------------------- Parameterized: EMA windows

class EmaWindowTest : public ::testing::TestWithParam<size_t> {
};

TEST_P(EmaWindowTest, SpikeAlwaysExceedsSteadyState)
{
    predict::EmaDetector ema(GetParam());
    for (int i = 0; i < 100; ++i)
        ema.PredictError({}, {0.4});
    const double spike = ema.PredictError({}, {0.9});
    EXPECT_NEAR(spike, 0.5, 1e-9);
}

TEST_P(EmaWindowTest, LargerWindowsForgetSlower)
{
    predict::EmaDetector ema(GetParam());
    EXPECT_NEAR(ema.Alpha(),
                2.0 / (1.0 + static_cast<double>(GetParam())), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Windows, EmaWindowTest,
                         ::testing::Values(size_t{1}, size_t{4},
                                           size_t{8}, size_t{16},
                                           size_t{64}));

// --------------------------------------- Threaded overlap replay

TEST(OverlapReplayTest, RecoversExactlyTheFiredElements)
{
    const auto bench = apps::MakeBenchmark("inversek2j");
    const auto inputs = bench->TestInputs();
    const size_t n = 64;
    std::vector<std::vector<double>> batch(inputs.begin(),
                                           inputs.begin() + n);
    std::vector<char> mask(n, 0);
    for (size_t i = 0; i < n; i += 3)
        mask[i] = 1;  // every third element fires.

    std::vector<std::vector<double>> outputs;
    const auto res =
        core::ReplayOverlapThreaded(*bench, batch, mask, &outputs);

    EXPECT_EQ(res.elements, n);
    EXPECT_EQ(res.fixes, (n + 2) / 3);
    EXPECT_GT(res.wall_ns, 0u);
    ASSERT_EQ(outputs.size(), n);
    std::vector<double> exact(bench->NumOutputs());
    for (size_t i = 0; i < n; ++i) {
        if (!mask[i]) {
            EXPECT_TRUE(outputs[i].empty()) << "element " << i;
            continue;
        }
        // The recovery thread committed the exact kernel's result.
        ASSERT_EQ(outputs[i].size(), bench->NumOutputs())
            << "element " << i;
        bench->RunExact(batch[i].data(), exact.data());
        for (size_t o = 0; o < exact.size(); ++o)
            EXPECT_DOUBLE_EQ(outputs[i][o], exact[o]);
    }
}

TEST(OverlapReplayTest, TinyQueueBoundsDepthAndBackpressures)
{
    const auto bench = apps::MakeBenchmark("inversek2j");
    const auto inputs = bench->TestInputs();
    const size_t n = 96;
    std::vector<std::vector<double>> batch(inputs.begin(),
                                           inputs.begin() + n);
    std::vector<char> mask(n, 1);  // everything fires.

    core::OverlapReplayConfig cfg;
    cfg.queue_capacity = 2;
    std::vector<std::vector<double>> outputs;
    const auto res = core::ReplayOverlapThreaded(*bench, batch, mask,
                                                 &outputs, cfg);

    EXPECT_EQ(res.fixes, n);  // nothing lost under backpressure.
    EXPECT_LE(res.max_queue_depth, cfg.queue_capacity);
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(outputs[i].size(), bench->NumOutputs());
}

TEST(OverlapReplayTest, NoFiresMeansIdleRecoveryThread)
{
    const auto bench = apps::MakeBenchmark("fft");
    const auto inputs = bench->TestInputs();
    std::vector<std::vector<double>> batch(inputs.begin(),
                                           inputs.begin() + 32);
    std::vector<char> mask(32, 0);
    std::vector<std::vector<double>> outputs;
    const auto res =
        core::ReplayOverlapThreaded(*bench, batch, mask, &outputs);
    EXPECT_EQ(res.fixes, 0u);
    EXPECT_EQ(res.push_waits, 0u);
    for (const auto& out : outputs)
        EXPECT_TRUE(out.empty());
}

TEST(OverlapReplayTest, SpansCoverBothLanes)
{
    // The replay records into the *default* collector; enable it for
    // the duration and verify both lanes left attributed spans.
    auto& collector = obs::SpanCollector::Default();
    collector.Clear();
    collector.Enable();
    const auto bench = apps::MakeBenchmark("inversek2j");
    const auto inputs = bench->TestInputs();
    std::vector<std::vector<double>> batch(inputs.begin(),
                                           inputs.begin() + 16);
    std::vector<char> mask(16, 1);
    std::vector<std::vector<double>> outputs;
    core::ReplayOverlapThreaded(*bench, batch, mask, &outputs);
    collector.Disable();

    std::set<std::string> names;
    std::set<uint32_t> threads;
    for (const auto& s : collector.Dump()) {
        names.insert(s.name);
        threads.insert(s.thread_id);
    }
    collector.Clear();
    EXPECT_TRUE(names.count("overlap.accel_stream"));
    EXPECT_TRUE(names.count("overlap.accel_element"));
    EXPECT_TRUE(names.count("overlap.recovery_worker"));
    EXPECT_TRUE(names.count("overlap.cpu_reexecute"));
    EXPECT_GE(threads.size(), 2u);  // producer + recovery threads.
}

}  // namespace
}  // namespace rumba
