// Tests for the serving layer (src/serve): the sharded engine's
// async submit/future contract, backpressure, drain/shutdown
// semantics and shard determinism — plus unit tests for the
// Status/Result and ElementView/BatchView API types it is built on.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "core/status.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/reqtrace.h"
#include "obs/timer.h"
#include "serve/admission.h"
#include "serve/engine.h"
#include "serve/flight_recorder.h"
#include "serve/loadgen.h"
#include "serve/queue.h"

namespace rumba {
namespace {

// ------------------------------------------------------- Status/Result

TEST(StatusTest, DefaultIsOk)
{
    const core::Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), core::StatusCode::kOk);
    EXPECT_EQ(ok.ToString(), "ok");
    EXPECT_TRUE(core::Status::Ok().ok());
}

TEST(StatusTest, FailureCarriesCodeAndMessage)
{
    const core::Status s(core::StatusCode::kResourceExhausted,
                         "queue full");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), core::StatusCode::kResourceExhausted);
    EXPECT_EQ(s.message(), "queue full");
    EXPECT_EQ(s.ToString(), "resource-exhausted: queue full");
}

TEST(StatusTest, CodeNamesAreStable)
{
    EXPECT_STREQ(core::StatusCodeName(core::StatusCode::kOk), "ok");
    EXPECT_STREQ(core::StatusCodeName(core::StatusCode::kDataLoss),
                 "data-loss");
    EXPECT_STREQ(
        core::StatusCodeName(core::StatusCode::kFailedPrecondition),
        "failed-precondition");
    EXPECT_STREQ(
        core::StatusCodeName(core::StatusCode::kDeadlineExceeded),
        "deadline-exceeded");
    EXPECT_STREQ(core::StatusCodeName(core::StatusCode::kUnavailable),
                 "unavailable");
}

TEST(ResultTest, HoldsValueOrStatus)
{
    const core::Result<int> good(42);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 42);
    EXPECT_EQ(*good, 42);
    EXPECT_TRUE(good.status().ok());

    const core::Result<int> bad(
        core::Status(core::StatusCode::kNotFound, "nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), core::StatusCode::kNotFound);
}

TEST(ResultTest, MovesOutMoveOnlyPayloads)
{
    core::Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(**r, 7);
    std::unique_ptr<int> moved = std::move(r).value();
    EXPECT_EQ(*moved, 7);
}

TEST(ResultTest, WrongSideAccessDies)
{
    const core::Result<int> bad(
        core::Status(core::StatusCode::kInternal, "x"));
    EXPECT_DEATH(bad.value(), "check failed");
}

// --------------------------------------------------------- Batch views

TEST(BatchViewTest, ElementViewWrapsContiguousDoubles)
{
    const std::vector<double> row{1.0, 2.0, 3.0};
    const core::ElementView view(row);
    EXPECT_EQ(view.size(), 3u);
    EXPECT_DOUBLE_EQ(view[1], 2.0);
    EXPECT_EQ(view.data(), row.data());
}

TEST(BatchViewTest, BatchViewSlicesFlatBuffer)
{
    const std::vector<double> flat{1, 2, 3, 4, 5, 6};
    const core::BatchView batch(flat, /*width=*/2);
    EXPECT_EQ(batch.count(), 3u);
    EXPECT_EQ(batch.width(), 2u);
    EXPECT_DOUBLE_EQ(batch[0][0], 1.0);
    EXPECT_DOUBLE_EQ(batch[2][1], 6.0);
    EXPECT_EQ(batch[1].data(), flat.data() + 2);
}

TEST(BatchViewTest, FlattenBatchPacksRows)
{
    const std::vector<std::vector<double>> rows{{1, 2}, {3, 4}, {5, 6}};
    const std::vector<double> flat = core::FlattenBatch(rows);
    EXPECT_EQ(flat, (std::vector<double>{1, 2, 3, 4, 5, 6}));
}

TEST(BatchViewTest, RaggedRowsAreAProgrammingError)
{
    const std::vector<std::vector<double>> ragged{{1, 2}, {3}};
    EXPECT_DEATH(core::FlattenBatch(ragged), "check failed");
}

// -------------------------------------------------------- BoundedQueue

TEST(BoundedQueueTest, RejectsWhenFullAndDrainsFifo)
{
    serve::BoundedQueue<int> q(2);
    int a = 1, b = 2, c = 3;
    EXPECT_TRUE(q.TryPush(a));
    EXPECT_TRUE(q.TryPush(b));
    EXPECT_FALSE(q.TryPush(c));  // full: reject, don't block.
    int out = 0;
    EXPECT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, 1);
    EXPECT_TRUE(q.Pop(&out));
    EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseWakesConsumersAndReturnsLeftovers)
{
    serve::BoundedQueue<int> q(4);
    int a = 1, b = 2;
    ASSERT_TRUE(q.TryPush(a));
    ASSERT_TRUE(q.TryPush(b));
    std::deque<int> leftovers;
    q.Close(&leftovers);
    ASSERT_EQ(leftovers.size(), 2u);
    EXPECT_EQ(leftovers[0], 1);
    int out = 0;
    EXPECT_FALSE(q.Pop(&out));   // closed and empty.
    EXPECT_FALSE(q.TryPush(a));  // closed: no new work.
}

// ------------------------------------------------------ Engine fixture

core::RuntimeConfig
ServeRuntimeConfig()
{
    return core::RuntimeConfig::Builder()
        .WithChecker(core::Scheme::kTree)
        .WithTargetErrorPct(10.0)
        .WithTrainEpochs(30)
        .WithElementCaps(800, 400)
        .Build();
}

/** One trained artifact shared by every engine test (training is the
 *  expensive part; the engine only ever deploys from it). */
const core::Artifact&
SharedArtifact()
{
    static const core::Artifact artifact = [] {
        core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                                   ServeRuntimeConfig());
        return trained.ExportArtifact();
    }();
    return artifact;
}

/** Flat test inputs for the artifact's kernel. */
const std::vector<double>&
SharedInputs()
{
    static const std::vector<double> flat = [] {
        const auto bench = apps::MakeBenchmark("inversek2j");
        return core::FlattenBatch(bench->TestInputs());
    }();
    return flat;
}

serve::InvocationRequest
MakeRequest(size_t start_element, size_t count)
{
    serve::InvocationRequest request;
    request.width = 2;  // inversek2j input arity.
    request.count = count;
    const auto& flat = SharedInputs();
    request.inputs.assign(
        flat.begin() + static_cast<ptrdiff_t>(start_element * 2),
        flat.begin() +
            static_cast<ptrdiff_t>((start_element + count) * 2));
    return request;
}

std::unique_ptr<serve::ShardedEngine>
MakeEngine(const serve::ServeConfig& config)
{
    auto engine = serve::ShardedEngine::Create(
        SharedArtifact(), ServeRuntimeConfig(), config);
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    return std::move(engine).value();
}

// ------------------------------------------------------- Engine tests

TEST(ShardedEngineTest, CreateRejectsDegenerateShapes)
{
    serve::ServeConfig no_shards;
    no_shards.shards = 0;
    EXPECT_EQ(serve::ShardedEngine::Create(SharedArtifact(),
                                           ServeRuntimeConfig(),
                                           no_shards)
                  .status()
                  .code(),
              core::StatusCode::kInvalidArgument);

    core::Artifact unknown = SharedArtifact();
    unknown.benchmark = "martian";
    EXPECT_EQ(serve::ShardedEngine::Create(unknown,
                                           ServeRuntimeConfig(), {})
                  .status()
                  .code(),
              core::StatusCode::kNotFound);
}

TEST(ShardedEngineTest, SubmitValidatesRequestShape)
{
    serve::ServeConfig config;
    config.shards = 1;
    auto engine = MakeEngine(config);

    serve::InvocationRequest empty;
    EXPECT_EQ(engine->Submit(std::move(empty)).get().status.code(),
              core::StatusCode::kInvalidArgument);

    serve::InvocationRequest wrong_width = MakeRequest(0, 4);
    wrong_width.width = 3;
    EXPECT_EQ(
        engine->Submit(std::move(wrong_width)).get().status.code(),
        core::StatusCode::kInvalidArgument);

    serve::InvocationRequest short_buffer = MakeRequest(0, 4);
    short_buffer.inputs.pop_back();
    EXPECT_EQ(
        engine->Submit(std::move(short_buffer)).get().status.code(),
        core::StatusCode::kInvalidArgument);

    serve::InvocationRequest bad_shard = MakeRequest(0, 4);
    bad_shard.shard = 7;  // only shard 0 exists.
    EXPECT_EQ(engine->Submit(std::move(bad_shard)).get().status.code(),
              core::StatusCode::kInvalidArgument);

    engine->Shutdown();
    EXPECT_EQ(engine->Submit(MakeRequest(0, 4)).get().status.code(),
              core::StatusCode::kUnavailable);
}

TEST(ShardedEngineTest, ServesOneRequestCorrectly)
{
    serve::ServeConfig config;
    config.shards = 1;
    auto engine = MakeEngine(config);

    // Reference: a dedicated runtime deployed from the same artifact.
    auto reference = core::RumbaRuntime::FromArtifact(
        SharedArtifact(), ServeRuntimeConfig());
    ASSERT_TRUE(reference.ok());
    constexpr size_t kCount = 200;
    std::vector<double> expected(kCount * 2);
    (*reference)->ProcessInvocation(
        core::BatchView(SharedInputs().data(), kCount, 2),
        expected.data());

    auto future = engine->Submit(MakeRequest(0, kCount));
    const serve::InvocationResult result = future.get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(result.report.elements, kCount);
    ASSERT_EQ(result.outputs.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_DOUBLE_EQ(result.outputs[i], expected[i]) << "at " << i;
}

TEST(ShardedEngineTest, FourShardsMatchFourSequentialStreams)
{
    constexpr size_t kShards = 4;
    constexpr size_t kRequests = 16;
    constexpr size_t kCount = 100;

    serve::ServeConfig config;
    config.shards = kShards;
    config.queue_capacity = kRequests;
    config.max_coalesce_elements = 0;  // deterministic replay mode.
    auto engine = MakeEngine(config);

    // Round-robin submission from one thread: request r lands on
    // shard r % kShards, each shard serves its stream in FIFO order.
    std::vector<std::future<serve::InvocationResult>> futures;
    for (size_t r = 0; r < kRequests; ++r)
        futures.push_back(engine->Submit(MakeRequest(r * kCount,
                                                     kCount)));

    // Reference: four *sequential* single-runtime streams, stream k
    // processing requests k, k+4, k+8, ... in order.
    std::vector<std::vector<double>> expected(kRequests);
    for (size_t k = 0; k < kShards; ++k) {
        auto replica = core::RumbaRuntime::FromArtifact(
            SharedArtifact(), ServeRuntimeConfig());
        ASSERT_TRUE(replica.ok());
        for (size_t r = k; r < kRequests; r += kShards) {
            expected[r].resize(kCount * 2);
            (*replica)->ProcessInvocation(
                core::BatchView(SharedInputs().data() + r * kCount * 2,
                                kCount, 2),
                expected[r].data());
        }
    }

    for (size_t r = 0; r < kRequests; ++r) {
        const serve::InvocationResult result = futures[r].get();
        ASSERT_TRUE(result.status.ok()) << result.status.ToString();
        EXPECT_EQ(result.shard, r % kShards);
        ASSERT_EQ(result.outputs.size(), expected[r].size());
        for (size_t i = 0; i < expected[r].size(); ++i)
            EXPECT_DOUBLE_EQ(result.outputs[i], expected[r][i])
                << "request " << r << " element " << i;
    }
    engine->Shutdown();
}

TEST(ShardedEngineTest, CoalescedBatchMatchesOneBigInvocation)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.max_coalesce_elements = 4096;
    auto engine = MakeEngine(config);

    constexpr size_t kCount = 50;
    constexpr size_t kRequests = 4;
    engine->Pause();  // queue all four, then serve them as one batch.
    std::vector<std::future<serve::InvocationResult>> futures;
    for (size_t r = 0; r < kRequests; ++r)
        futures.push_back(engine->Submit(MakeRequest(r * kCount,
                                                     kCount)));
    engine->Resume();

    auto reference = core::RumbaRuntime::FromArtifact(
        SharedArtifact(), ServeRuntimeConfig());
    ASSERT_TRUE(reference.ok());
    std::vector<double> expected(kRequests * kCount * 2);
    (*reference)->ProcessInvocation(
        core::BatchView(SharedInputs().data(), kRequests * kCount, 2),
        expected.data());

    for (size_t r = 0; r < kRequests; ++r) {
        const serve::InvocationResult result = futures[r].get();
        ASSERT_TRUE(result.status.ok());
        EXPECT_EQ(result.report.elements, kCount);
        for (size_t i = 0; i < result.outputs.size(); ++i)
            EXPECT_DOUBLE_EQ(result.outputs[i],
                             expected[r * kCount * 2 + i])
                << "request " << r << " element " << i;
    }
}

TEST(ShardedEngineTest, FullQueueRejectsWithResourceExhausted)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.queue_capacity = 2;
    auto engine = MakeEngine(config);

    engine->Pause();  // workers stall: pushes accumulate.
    auto first = engine->Submit(MakeRequest(0, 10));
    auto second = engine->Submit(MakeRequest(10, 10));
    auto third = engine->Submit(MakeRequest(20, 10));

    const serve::InvocationResult rejected = third.get();
    EXPECT_EQ(rejected.status.code(),
              core::StatusCode::kResourceExhausted);
    EXPECT_TRUE(rejected.outputs.empty());

    engine->Resume();
    EXPECT_TRUE(first.get().status.ok());
    EXPECT_TRUE(second.get().status.ok());
}

TEST(ShardedEngineTest, DrainCompletesEveryAcceptedFuture)
{
    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 64;
    auto engine = MakeEngine(config);

    std::vector<std::future<serve::InvocationResult>> futures;
    for (size_t r = 0; r < 24; ++r)
        futures.push_back(engine->Submit(MakeRequest(r * 20, 20)));
    engine->Drain();

    for (auto& future : futures) {
        ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        EXPECT_TRUE(future.get().status.ok());
    }
}

TEST(ShardedEngineTest, ShutdownCancelsQueuedWork)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.queue_capacity = 8;
    auto engine = MakeEngine(config);

    engine->Pause();
    auto queued_a = engine->Submit(MakeRequest(0, 10));
    auto queued_b = engine->Submit(MakeRequest(10, 10));
    engine->Shutdown();

    EXPECT_EQ(queued_a.get().status.code(),
              core::StatusCode::kCancelled);
    EXPECT_EQ(queued_b.get().status.code(),
              core::StatusCode::kCancelled);
    // Post-shutdown submissions are turned away, not crashed.
    EXPECT_EQ(engine->Submit(MakeRequest(0, 4)).get().status.code(),
              core::StatusCode::kUnavailable);
}

TEST(ShardedEngineTest, ConcurrentSubmitStress)
{
    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 16;
    auto engine = MakeEngine(config);

    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 40;
    std::atomic<size_t> served{0};
    std::atomic<size_t> rejected{0};
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (size_t r = 0; r < kPerThread; ++r) {
                auto future = engine->Submit(
                    MakeRequest(((t * kPerThread + r) * 8) % 4000, 8));
                const serve::InvocationResult result = future.get();
                if (result.status.ok()) {
                    ASSERT_EQ(result.outputs.size(), 8u * 2u);
                    served.fetch_add(1);
                } else {
                    // Backpressure is the only acceptable failure.
                    ASSERT_EQ(result.status.code(),
                              core::StatusCode::kResourceExhausted);
                    rejected.fetch_add(1);
                }
            }
        });
    }
    for (auto& client : clients)
        client.join();
    engine->Drain();
    engine->Shutdown();
    EXPECT_EQ(served.load() + rejected.load(), kThreads * kPerThread);
    EXPECT_GT(served.load(), 0u);
}

// ------------------------------------------- Request-scoped tracing

TEST(ShardedEngineTest, TraceIdsAppearExactlyOnceInExportedTraces)
{
    auto& collector = obs::RequestTraceCollector::Default();
    collector.Clear();

    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 64;
    config.max_coalesce_elements = 4096;  // force coalesced batches.
    config.trace.sample_every = 1;        // tail policy keeps all.
    auto engine = MakeEngine(config);

    // Completed (and coalesced): queue twelve requests while paused so
    // each shard serves its whole backlog as one multi-request batch.
    engine->Pause();
    std::vector<std::future<serve::InvocationResult>> futures;
    for (size_t r = 0; r < 12; ++r)
        futures.push_back(engine->Submit(MakeRequest(r * 50, 50)));
    engine->Resume();
    engine->Drain();

    // Rejected: a malformed request fails at Submit, yet carries an id.
    serve::InvocationRequest bad = MakeRequest(0, 4);
    bad.width = 3;
    const serve::InvocationResult rejected =
        engine->Submit(std::move(bad)).get();
    EXPECT_EQ(rejected.status.code(),
              core::StatusCode::kInvalidArgument);

    // Cancelled: queued work killed by Shutdown.
    engine->Pause();
    auto queued_a = engine->Submit(MakeRequest(0, 10));
    auto queued_b = engine->Submit(MakeRequest(10, 10));
    engine->Shutdown();

    std::map<uint64_t, obs::RequestOutcome> expected;
    for (auto& future : futures) {
        const serve::InvocationResult result = future.get();
        ASSERT_TRUE(result.status.ok());
        ASSERT_NE(result.trace_id, 0u);
        EXPECT_TRUE(expected
                        .emplace(result.trace_id,
                                 obs::RequestOutcome::kCompleted)
                        .second)
            << "duplicate id " << result.trace_id;
    }
    ASSERT_NE(rejected.trace_id, 0u);
    expected.emplace(rejected.trace_id,
                     obs::RequestOutcome::kRejected);
    for (auto* queued : {&queued_a, &queued_b}) {
        const serve::InvocationResult result = queued->get();
        ASSERT_EQ(result.status.code(), core::StatusCode::kCancelled);
        ASSERT_NE(result.trace_id, 0u);
        expected.emplace(result.trace_id,
                         obs::RequestOutcome::kCancelled);
    }

    const auto traces = collector.Dump();
    EXPECT_EQ(traces.size(), expected.size());
    std::map<uint64_t, size_t> seen;
    bool saw_coalesced = false;
    for (const auto& trace : traces) {
        ++seen[trace.trace_id];
        const auto it = expected.find(trace.trace_id);
        ASSERT_NE(it, expected.end())
            << "unexpected trace " << trace.trace_id;
        EXPECT_EQ(trace.outcome, it->second);
        if (trace.outcome == obs::RequestOutcome::kCompleted) {
            saw_coalesced |= trace.batch_requests > 1;
            // Served traces carry the span tree.
            bool has_queue_wait = false, has_device = false;
            for (const auto& span : trace.spans) {
                has_queue_wait |=
                    std::string(span.name) == "queue_wait";
                has_device |= std::string(span.name) == "device";
            }
            EXPECT_TRUE(has_queue_wait && has_device)
                << "trace " << trace.trace_id << " missing spans";
        }
    }
    for (const auto& [id, outcome] : expected)
        EXPECT_EQ(seen[id], 1u) << "trace " << id;
    EXPECT_TRUE(saw_coalesced);
    collector.Clear();
}

// ------------------------------------------------ Flight recorder

size_t
CountFlightDumps(const std::string& dir)
{
    size_t n = 0;
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* entry = ::readdir(d))
            n += std::string(entry->d_name).rfind("flight-shard", 0) ==
                 0;
        ::closedir(d);
    }
    return n;
}

// TempDir() persists across test runs and dump sequence numbers
// restart per engine, so stale artifacts from a previous run would
// absorb a fresh dump into an unchanged file count. Start clean.
void
RemoveFlightDumps(const std::string& dir)
{
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.rfind("flight-shard", 0) == 0)
                std::remove((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
}

std::string
ReadWholeFile(const std::string& path)
{
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

TEST(FlightRecorderTest, RingEvictsOldestAndDumpsJsonl)
{
    serve::FlightRecorder recorder(4);
    for (uint64_t id = 1; id <= 6; ++id) {
        serve::FlightRecord record;
        record.trace_id = id;
        record.elements = id * 10;
        recorder.Append(record);
    }
    EXPECT_EQ(recorder.TotalAppended(), 6u);
    const auto snapshot = recorder.Snapshot();
    ASSERT_EQ(snapshot.size(), 4u);
    EXPECT_EQ(snapshot.front().trace_id, 3u);  // 1 and 2 evicted.
    EXPECT_EQ(snapshot.back().trace_id, 6u);

    const std::string path =
        recorder.Dump(::testing::TempDir(), 9, "unit_test");
    ASSERT_FALSE(path.empty());
    EXPECT_NE(path.find("flight-shard9-"), std::string::npos);
    const std::string contents = ReadWholeFile(path);
    EXPECT_NE(contents.find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(contents.find("\"type\":\"flight_dump\""),
              std::string::npos);
    EXPECT_NE(contents.find("\"reason\":\"unit_test\""),
              std::string::npos);
    EXPECT_NE(contents.find("\"records\":4"), std::string::npos);
    EXPECT_NE(contents.find("\"trace_id\":6"), std::string::npos);
    std::remove(path.c_str());

    // A second dump gets a fresh sequence number (never overwrites).
    const std::string second =
        recorder.Dump(::testing::TempDir(), 9, "unit_test");
    EXPECT_NE(second, path);
    std::remove(second.c_str());
}

TEST(FlightRecorderTest, DigestIsStableAndInputSensitive)
{
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> b = {1.0, 2.0, 3.5};
    EXPECT_EQ(serve::DigestInputs(a.data(), a.size()),
              serve::DigestInputs(a.data(), a.size()));
    EXPECT_NE(serve::DigestInputs(a.data(), a.size()),
              serve::DigestInputs(b.data(), b.size()));
    EXPECT_NE(serve::DigestInputs(a.data(), a.size()), 0u);
}

TEST(ShardedEngineTest, FlightRecorderCapturesServedRequests)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.flight.capacity = 8;
    config.flight.dump_dir = ::testing::TempDir() + "flight_manual";
    ::mkdir(config.flight.dump_dir.c_str(), 0755);
    RemoveFlightDumps(config.flight.dump_dir);
    auto engine = MakeEngine(config);

    std::vector<uint64_t> ids;
    for (size_t r = 0; r < 3; ++r) {
        const serve::InvocationResult result =
            engine->Submit(MakeRequest(r * 30, 30)).get();
        ASSERT_TRUE(result.status.ok());
        ids.push_back(result.trace_id);
    }
    engine->Drain();

    const auto records = engine->Flight(0).Snapshot();
    ASSERT_EQ(records.size(), 3u);
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].trace_id, ids[i]);
        EXPECT_EQ(records[i].elements, 30u);
        EXPECT_NE(records[i].inputs_digest, 0u);
        EXPECT_GE(records[i].threshold, 0.0);
        EXPECT_GE(records[i].complete_ns, records[i].enqueue_ns);
        EXPECT_EQ(records[i].status_code, 0u);
    }

    const auto paths = engine->DumpFlightRecords("operator");
    ASSERT_EQ(paths.size(), 1u);
    const std::string contents = ReadWholeFile(paths[0]);
    EXPECT_NE(contents.find("\"reason\":\"operator\""),
              std::string::npos);
    EXPECT_NE(contents.find("\"trace_id\""), std::string::npos);
    std::remove(paths[0].c_str());

    const std::string statusz = engine->StatuszJson();
    EXPECT_NE(statusz.find("\"healthy\":true"), std::string::npos);
    EXPECT_NE(statusz.find("\"tuner_mode\":\"toq\""),
              std::string::npos);
    EXPECT_NE(statusz.find("\"shards\":[{\"shard\":0"),
              std::string::npos);
    EXPECT_NE(statusz.find("\"queue_depth\":0"), std::string::npos);
    EXPECT_NE(statusz.find("\"breaker_state\":0"), std::string::npos);
    EXPECT_NE(statusz.find("\"flight_records\":3"), std::string::npos);
}

TEST(ShardedEngineTest, BreakerTripAutoDumpsFlightRecorder)
{
    struct DisarmGuard {
        ~DisarmGuard() { fault::FaultInjector::Default().Disarm(); }
    } guard;

    core::RuntimeConfig runtime_config = ServeRuntimeConfig();
    runtime_config.breaker.trip_after = 1;  // twitchy test breaker.

    serve::ServeConfig config;
    config.shards = 1;
    const std::string dir = ::testing::TempDir() + "flight_trip";
    ::mkdir(dir.c_str(), 0755);
    RemoveFlightDumps(dir);
    config.flight.dump_dir = dir;

    auto created = serve::ShardedEngine::Create(
        SharedArtifact(), runtime_config, config);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    auto engine = std::move(created).value();

    // Healthy round: breaker closed, nothing dumped.
    ASSERT_TRUE(engine->Submit(MakeRequest(0, 50)).get().status.ok());
    const size_t dumps_before = CountFlightDumps(dir);

    fault::FaultPlan plan;
    std::string error;
    ASSERT_TRUE(fault::FaultPlan::Parse("seed=9;npu.output_nan=1",
                                        &plan, &error))
        << error;
    fault::FaultInjector::Default().Arm(plan);
    const serve::InvocationResult faulty =
        engine->Submit(MakeRequest(0, 50)).get();
    fault::FaultInjector::Default().Disarm();
    ASSERT_TRUE(faulty.status.ok());  // salvaged, never failed.
    EXPECT_GT(faulty.report.non_finite_outputs, 0u);

    // Barrier: the dump happens after the faulty batch's futures
    // resolve, so wait for the *next* batch to clear the worker.
    ASSERT_TRUE(
        engine->Submit(MakeRequest(100, 50)).get().status.ok());
    engine->Drain();

    EXPECT_EQ(engine->Runtime(0).Breaker().State(),
              core::BreakerState::kOpen);
    ASSERT_GT(CountFlightDumps(dir), dumps_before);

    // The dump artifact names the trip and joins to request traces.
    std::string all;
    if (DIR* d = ::opendir(dir.c_str())) {
        while (const dirent* entry = ::readdir(d)) {
            const std::string name = entry->d_name;
            if (name.rfind("flight-shard", 0) == 0)
                all += ReadWholeFile(dir + "/" + name);
        }
        ::closedir(d);
    }
    EXPECT_NE(all.find("\"reason\":\"breaker_open\""),
              std::string::npos);
    EXPECT_NE(all.find("\"trace_id\""), std::string::npos);
    engine->Shutdown();
}

// --------------------------------------------- Legacy-overload adapter
//
// The only in-tree caller of the deprecated vector-of-vectors
// ProcessInvocation: it pins the adapter's copy-in/copy-out behavior
// against the BatchView hot path until the overload is removed.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(BatchViewTest, LegacyProcessInvocationMatchesViewForm)
{
    auto via_view = core::RumbaRuntime::FromArtifact(
        SharedArtifact(), ServeRuntimeConfig());
    auto via_vectors = core::RumbaRuntime::FromArtifact(
        SharedArtifact(), ServeRuntimeConfig());
    ASSERT_TRUE(via_view.ok() && via_vectors.ok());

    constexpr size_t kCount = 300;
    std::vector<double> flat_out(kCount * 2);
    const auto report_a = (*via_view)->ProcessInvocation(
        core::BatchView(SharedInputs().data(), kCount, 2),
        flat_out.data());

    const auto bench = apps::MakeBenchmark("inversek2j");
    const auto rows = bench->TestInputs();
    const std::vector<std::vector<double>> batch(
        rows.begin(), rows.begin() + kCount);
    std::vector<std::vector<double>> vec_out;
    const auto report_b =
        (*via_vectors)->ProcessInvocation(batch, &vec_out);

    EXPECT_EQ(report_a.fixes, report_b.fixes);
    EXPECT_DOUBLE_EQ(report_a.output_error_pct,
                     report_b.output_error_pct);
    ASSERT_EQ(vec_out.size(), kCount);
    for (size_t i = 0; i < kCount; ++i)
        for (size_t o = 0; o < 2; ++o)
            EXPECT_DOUBLE_EQ(vec_out[i][o], flat_out[i * 2 + o]);
}

#pragma GCC diagnostic pop

// ------------------------------------------- Admission state machine

TEST(AdmissionControllerTest, SheddingLadderOrdersByClass)
{
    serve::AdmissionController adm(serve::AdmissionConfig{});
    // One high-fill observation escalates immediately.
    EXPECT_EQ(adm.Decide(serve::QualityClass::kGold, 0.80, false),
              serve::AdmissionAction::kAdmit);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kShedding);
    // While shedding: gold untouched, silver keeps its checker but
    // drops to compensate-only recovery, best-effort sheds at/above
    // best_effort_shed_fill and degrades below it.
    EXPECT_EQ(adm.Decide(serve::QualityClass::kSilver, 0.80, false),
              serve::AdmissionAction::kCompensateOnly);
    EXPECT_EQ(
        adm.Decide(serve::QualityClass::kBestEffort, 0.80, false),
        serve::AdmissionAction::kShed);
    EXPECT_EQ(
        adm.Decide(serve::QualityClass::kBestEffort, 0.30, false),
        serve::AdmissionAction::kDegrade);
}

TEST(AdmissionControllerTest, EmergencyNeverShedsGold)
{
    serve::AdmissionController adm(serve::AdmissionConfig{});
    EXPECT_EQ(adm.Decide(serve::QualityClass::kGold, 0.96, false),
              serve::AdmissionAction::kCompensateOnly);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kEmergency);
    EXPECT_EQ(adm.Decide(serve::QualityClass::kSilver, 0.96, false),
              serve::AdmissionAction::kShed);
    EXPECT_EQ(
        adm.Decide(serve::QualityClass::kBestEffort, 0.96, false),
        serve::AdmissionAction::kShed);
    // Below the emergency shed fill the lower tiers ride the cheaper
    // rungs (0.80 is still pressure, so the state holds).
    EXPECT_EQ(adm.Decide(serve::QualityClass::kSilver, 0.80, false),
              serve::AdmissionAction::kDegrade);
    EXPECT_EQ(
        adm.Decide(serve::QualityClass::kBestEffort, 0.80, false),
        serve::AdmissionAction::kBypassCheck);
    // Gold rides the compensate rung, never refused, no matter the
    // pressure.
    EXPECT_EQ(adm.Decide(serve::QualityClass::kGold, 1.0, true),
              serve::AdmissionAction::kCompensateOnly);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kEmergency);
}

TEST(AdmissionControllerTest, LatencySloEscalatesAtAnyFill)
{
    serve::AdmissionController adm(serve::AdmissionConfig{});
    EXPECT_EQ(adm.Decide(serve::QualityClass::kGold, 0.05, true),
              serve::AdmissionAction::kAdmit);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kShedding);
}

TEST(AdmissionControllerTest, HysteresisRequiresUnbrokenCalmRun)
{
    serve::AdmissionConfig config;
    serve::AdmissionController adm(config);
    ASSERT_EQ(adm.Decide(serve::QualityClass::kGold, 0.80, false),
              serve::AdmissionAction::kAdmit);
    ASSERT_EQ(adm.state(), serve::AdmissionState::kShedding);

    // calm_steps - 1 calm observations are not enough...
    for (uint32_t i = 0; i + 1 < config.calm_steps; ++i) {
        adm.Decide(serve::QualityClass::kGold, 0.10, false);
        EXPECT_EQ(adm.state(), serve::AdmissionState::kShedding);
    }
    // ...one more de-escalates.
    adm.Decide(serve::QualityClass::kGold, 0.10, false);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kClosed);

    // A single pressure observation mid-run resets the calm counter:
    // the full run must be consecutive.
    adm.Decide(serve::QualityClass::kGold, 0.80, false);
    ASSERT_EQ(adm.state(), serve::AdmissionState::kShedding);
    for (uint32_t i = 0; i + 1 < config.calm_steps; ++i)
        adm.Decide(serve::QualityClass::kGold, 0.10, false);
    adm.Decide(serve::QualityClass::kGold, 0.80, false);  // reset.
    for (uint32_t i = 0; i + 1 < config.calm_steps; ++i) {
        adm.Decide(serve::QualityClass::kGold, 0.10, false);
        EXPECT_EQ(adm.state(), serve::AdmissionState::kShedding);
    }
    adm.Decide(serve::QualityClass::kGold, 0.10, false);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kClosed);
    EXPECT_EQ(adm.Transitions(), 4u);
}

TEST(AdmissionControllerTest, DisabledAlwaysAdmits)
{
    serve::AdmissionConfig off;
    off.enabled = false;
    serve::AdmissionController adm(off);
    EXPECT_EQ(adm.Decide(serve::QualityClass::kBestEffort, 1.0, true),
              serve::AdmissionAction::kAdmit);
    EXPECT_EQ(adm.state(), serve::AdmissionState::kClosed);
    EXPECT_EQ(adm.Transitions(), 0u);
}

// ----------------------------------- Admission + deadlines in engine

TEST(ShardedEngineTest, BestEffortShedsBeforeQueueFullRejectsGold)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.queue_capacity = 8;
    auto engine = MakeEngine(config);

    // Park the worker and stack the queue to 7/8 with gold.
    engine->Pause();
    std::vector<std::future<serve::InvocationResult>> gold;
    for (int r = 0; r < 7; ++r)
        gold.push_back(engine->Submit(MakeRequest(r * 4, 4)));

    // Best-effort is shed by admission (kUnavailable) while the queue
    // still has room — shedding fires BEFORE queue-full backpressure.
    serve::InvocationRequest best_effort = MakeRequest(0, 4);
    best_effort.quality = serve::QualityClass::kBestEffort;
    auto shed = engine->Submit(std::move(best_effort));
    EXPECT_EQ(engine->Admission()->state(),
              serve::AdmissionState::kShedding);

    // The slot the shed request did not take still serves gold.
    gold.push_back(engine->Submit(MakeRequest(28, 4)));

    engine->Resume();
    engine->Drain();

    const auto shed_result = shed.get();
    EXPECT_EQ(shed_result.status.code(),
              core::StatusCode::kUnavailable);
    EXPECT_TRUE(shed_result.outputs.empty());
    for (auto& f : gold) {
        const auto result = f.get();
        EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    }
    engine->Shutdown();
}

TEST(ShardedEngineTest, ExpiredQueuedWorkNeverReachesTheDevice)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.queue_capacity = 8;
    config.admission.enabled = false;  // isolate the deadline path.
    auto engine = MakeEngine(config);

    engine->Pause();
    auto healthy = engine->Submit(MakeRequest(0, 4));
    serve::InvocationRequest doomed = MakeRequest(4, 4);
    doomed.deadline_ns = obs::NowNs() + 2'000'000ull;  // +2 ms.
    auto expired = engine->Submit(std::move(doomed));
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    engine->Resume();
    engine->Drain();

    const auto expired_result = expired.get();
    EXPECT_EQ(expired_result.status.code(),
              core::StatusCode::kDeadlineExceeded);
    // The promise the scenario matrix asserts fleet-wide: expired
    // work resolves without ever executing, so it carries no outputs.
    EXPECT_TRUE(expired_result.outputs.empty());
    EXPECT_TRUE(healthy.get().status.ok());
    engine->Shutdown();
}

TEST(ShardedEngineTest, DeadArrivalExpiresWithoutQueueSlot)
{
    serve::ServeConfig config;
    config.shards = 1;
    auto engine = MakeEngine(config);
    serve::InvocationRequest dead = MakeRequest(0, 4);
    dead.deadline_ns = 1;  // long past.
    const auto result = engine->Submit(std::move(dead)).get();
    EXPECT_EQ(result.status.code(),
              core::StatusCode::kDeadlineExceeded);
    EXPECT_TRUE(result.outputs.empty());
    engine->Shutdown();
}

// ------------------------------------------------------ Loadgen smoke

TEST(LoadGeneratorTest, ArrivalProcessNamesRoundTrip)
{
    for (const auto arrival : {serve::ArrivalProcess::kPoisson,
                               serve::ArrivalProcess::kBursty,
                               serve::ArrivalProcess::kDiurnal}) {
        serve::ArrivalProcess parsed;
        ASSERT_TRUE(serve::ParseArrivalProcess(
            serve::ArrivalProcessName(arrival), &parsed));
        EXPECT_EQ(parsed, arrival);
    }
    serve::ArrivalProcess unused;
    EXPECT_FALSE(serve::ParseArrivalProcess("lunar", &unused));
}

TEST(LoadGeneratorTest, OpenLoopRunAccountsForEveryArrival)
{
    serve::ServeConfig config;
    config.shards = 2;
    config.queue_capacity = 8;
    auto engine = MakeEngine(config);

    serve::LoadGenConfig load;
    load.arrival = serve::ArrivalProcess::kPoisson;
    load.rate_hz = 2000.0;
    load.duration_ns = 100'000'000ull;  // 100 ms schedule.
    load.elements = 4;
    load.seed = 1234;
    load.input_pool = SharedInputs();
    load.best_effort_deadline_ns = 5'000'000ull;  // 5 ms.

    serve::LoadGenerator generator(*engine, load);
    const serve::LoadReport report = generator.Run();
    engine->Shutdown();

    EXPECT_GT(report.offered, 0u);
    // Every arrival lands in exactly one outcome bucket — nothing is
    // lost silently, under any interleaving.
    uint64_t submitted_sum = 0;
    for (const auto& cls : report.per_class) {
        submitted_sum += cls.submitted;
        EXPECT_EQ(cls.submitted,
                  cls.ok + cls.degraded + cls.compensated +
                      cls.bypassed + cls.shed + cls.expired +
                      cls.rejected + cls.cancelled + cls.failed);
    }
    EXPECT_EQ(report.offered, submitted_sum);
    EXPECT_EQ(report.expired_with_output, 0u);
    EXPECT_EQ(report.Total().failed, 0u);

    // The schedule is frozen by the seed: a second run offers exactly
    // the same arrivals no matter how the first engine coped.
    auto engine2 = MakeEngine(config);
    serve::LoadGenerator generator2(*engine2, load);
    const serve::LoadReport report2 = generator2.Run();
    engine2->Shutdown();
    EXPECT_EQ(report2.offered, report.offered);
}

}  // namespace
}  // namespace rumba
