// Tests for the ground-truth quality auditor (src/obs/audit.h): the
// shadow exact re-execution sampler, checker-calibration labeling
// (TP / FP / FN / TN over accelerator-served elements), the audited
// TOQ-violation SLO, queue overflow/drop accounting, the labeled
// JSONL export, and the serving engine's end-to-end wiring
// (sampling, trace joins, /statusz quality section).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "apps/benchmark.h"
#include "core/artifact.h"
#include "core/recovery.h"
#include "core/runtime.h"
#include "obs/audit.h"
#include "obs/reqtrace.h"
#include "serve/engine.h"

namespace rumba {
namespace {

using obs::AuditConfig;
using obs::AuditHooks;
using obs::AuditResult;
using obs::AuditSample;
using obs::QualityAuditor;

// ------------------------------------------------- Synthetic fixture

/** Identity kernel (1 -> 1): exact output equals the input, element
 *  error is the absolute served/exact gap, aggregate is the mean —
 *  every "error percent" in these tests is therefore chosen exactly. */
AuditHooks
IdentityHooks()
{
    AuditHooks hooks;
    hooks.run_exact = [](const double* in, double* out) {
        out[0] = in[0];
    };
    hooks.element_error = [](const std::vector<double>& exact,
                             const std::vector<double>& approx) {
        return std::fabs(exact[0] - approx[0]);
    };
    hooks.aggregate_error = [](const std::vector<double>& errors) {
        double sum = 0.0;
        for (double e : errors)
            sum += e;
        return errors.empty() ? 0.0
                              : sum / static_cast<double>(errors.size());
    };
    return hooks;
}

AuditConfig
UnitConfig()
{
    AuditConfig config;
    config.sample_every = 1;
    config.queue_capacity = 64;
    config.threads = 1;
    config.toq_bound_pct = 10.0;
    config.slo_enabled = false;
    return config;
}

/** A sample whose per-element approximate error is
 *  approx_errors[i]; served output equals the exact value for fixed
 *  elements and the approximate one otherwise (what the runtime's
 *  merge step produces). */
AuditSample
MakeSample(uint64_t trace_id, const std::vector<double>& approx_errors,
           const std::vector<char>& fired, const std::vector<char>& fixed,
           double threshold)
{
    const size_t n = approx_errors.size();
    AuditSample s;
    s.trace_id = trace_id;
    s.count = n;
    s.in_width = 1;
    s.out_width = 1;
    s.threshold_used = threshold;
    s.inputs.resize(n);
    s.approx_outputs.resize(n);
    s.served_outputs.resize(n);
    s.predicted_error.resize(n, 0.0);
    s.fired = fired;
    s.fixed = fixed;
    s.exact_path.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        s.inputs[i] = static_cast<double>(i) + 1.0;
        s.approx_outputs[i] = s.inputs[i] + approx_errors[i];
        s.served_outputs[i] =
            fixed[i] != 0 ? s.inputs[i] : s.approx_outputs[i];
        s.predicted_error[i] = fired[i] != 0 ? threshold + 1.0 : 0.0;
    }
    return s;
}

// ------------------------------------------------------ Unit: policy

TEST(QualityAuditorTest, SampleHealthyIsOneInN)
{
    AuditConfig config = UnitConfig();
    config.sample_every = 4;
    QualityAuditor auditor(config, IdentityHooks());
    int taken = 0;
    for (int i = 0; i < 8; ++i)
        taken += auditor.SampleHealthy() ? 1 : 0;
    EXPECT_EQ(taken, 2);  // calls 0 and 4.
}

TEST(QualityAuditorTest, SampleEveryZeroMeansForcedOnly)
{
    AuditConfig config = UnitConfig();
    config.sample_every = 0;
    QualityAuditor auditor(config, IdentityHooks());
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(auditor.SampleHealthy());
}

TEST(QualityAuditorTest, ForcedRecoveredRidesItsOwnOneInMGate)
{
    AuditConfig config = UnitConfig();
    config.forced_sample_every = 4;
    QualityAuditor auditor(config, IdentityHooks());
    int taken = 0;
    for (int i = 0; i < 8; ++i)
        taken += auditor.SampleForcedRecovered() ? 1 : 0;
    EXPECT_EQ(taken, 2);  // candidates 0 and 4.

    // The two gates draw from independent streams: losing the forced
    // gate never consumes a healthy-sampler slot.
    EXPECT_TRUE(auditor.SampleHealthy());  // first healthy call.

    AuditConfig never = UnitConfig();
    never.forced_sample_every = 0;
    QualityAuditor off(never, IdentityHooks());
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(off.SampleForcedRecovered());
}

TEST(QualityAuditorTest, ElementBudgetStridesLargeInvocations)
{
    AuditConfig config = UnitConfig();
    config.max_elements_per_sample = 3;
    QualityAuditor auditor(config, IdentityHooks());

    // 8 elements, budget 3 -> stride 3 -> original indices 0, 3, 6.
    std::vector<double> errors(8, 0.0);
    errors[3] = 20.0;
    AuditSample s = MakeSample(31, errors, std::vector<char>(8, 0),
                               std::vector<char>(8, 0), 10.0);
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].elements, 8u);
    EXPECT_EQ(results[0].audited_elements, 3u);
    ASSERT_EQ(results[0].labeled.size(), 3u);
    EXPECT_EQ(results[0].labeled[0].index, 0u);
    EXPECT_EQ(results[0].labeled[1].index, 3u);
    EXPECT_EQ(results[0].labeled[2].index, 6u);
    // The audited subset still carries ground truth: index 3 is the
    // one false-negative accept, and the subset mean is 20/3.
    EXPECT_EQ(results[0].false_negatives, 1u);
    EXPECT_NEAR(results[0].true_error_pct, 20.0 / 3.0, 1e-9);
    EXPECT_EQ(auditor.Stats().audited_elements, 3u);

    // The export indexes elements by their original position.
    const std::string body = auditor.ExportJsonl();
    EXPECT_NE(body.find("\"index\":6"), std::string::npos);
    EXPECT_NE(body.find("\"audited_elements\":3"), std::string::npos);
}

TEST(QualityAuditorTest, RuntimeExactElementsAreNotReexecuted)
{
    // Recovery and the breaker tail already ran the exact kernel;
    // the auditor must only re-execute approximately-served elements.
    std::atomic<int> exact_runs{0};
    AuditHooks hooks = IdentityHooks();
    const auto base_exact = hooks.run_exact;
    hooks.run_exact = [&exact_runs, base_exact](const double* in,
                                                double* out) {
        exact_runs.fetch_add(1, std::memory_order_relaxed);
        base_exact(in, out);
    };
    QualityAuditor auditor(UnitConfig(), hooks);

    // Elements: fixed (no re-exec), breaker exact tail (no re-exec),
    // approximately served (one re-exec).
    AuditSample s = MakeSample(21, {20.0, 0.0, 3.0}, {1, 0, 0},
                               {1, 0, 0}, 10.0);
    s.exact_path[1] = 1;
    s.served_outputs[1] = s.inputs[1];
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    EXPECT_EQ(exact_runs.load(), 1);
    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    // The skipped elements still carry ground-truth labels: the fixed
    // one keeps its approximate error (served == exact reference) and
    // a served error of zero.
    EXPECT_DOUBLE_EQ(results[0].labeled[0].approx_error, 20.0);
    EXPECT_DOUBLE_EQ(results[0].labeled[0].served_error, 0.0);
    EXPECT_TRUE(results[0].labeled[0].needs_fix);
    EXPECT_DOUBLE_EQ(results[0].labeled[2].served_error, 3.0);
}

TEST(QualityAuditorTest, CompensatedElementsAuditedWithTrueResidual)
{
    // Compensated elements (fixed mask 2) must NOT take the
    // served-is-ground-truth shortcut: the compensator is a model,
    // and the auditor's job is to measure the residual it left.
    std::atomic<int> exact_runs{0};
    std::atomic<int> hook_calls{0};
    double hook_residual_pct = 0.0;
    size_t hook_elements = 0;
    uint32_t hook_shard = 99;
    AuditHooks hooks = IdentityHooks();
    const auto base_exact = hooks.run_exact;
    hooks.run_exact = [&exact_runs, base_exact](const double* in,
                                                double* out) {
        exact_runs.fetch_add(1, std::memory_order_relaxed);
        base_exact(in, out);
    };
    hooks.on_compensated = [&](uint32_t shard, double residual_pct,
                               size_t elements) {
        hook_calls.fetch_add(1, std::memory_order_relaxed);
        hook_shard = shard;
        hook_residual_pct = residual_pct;
        hook_elements = elements;
    };
    QualityAuditor auditor(UnitConfig(), hooks);

    // Element 0: approx error 0.5, compensated down to a 0.04
    // residual. Element 1: re-executed exactly. Element 2: accepted.
    AuditSample s = MakeSample(11, {0.5, 20.0, 0.0}, {1, 1, 0},
                               {2, 1, 0}, 10.0);
    s.shard = 3;
    s.served_outputs[0] = s.inputs[0] + 0.04;
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    // The compensated element and the accepted one re-execute; the
    // exactly-fixed one is already ground truth.
    EXPECT_EQ(exact_runs.load(), 2);

    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    const AuditResult& r = results[0];
    EXPECT_EQ(r.compensated_elements, 1u);
    // Unit-fraction residual 0.04 -> 4% in AggregateError units.
    EXPECT_NEAR(r.mean_compensated_residual_pct, 4.0, 1e-9);
    ASSERT_EQ(r.labeled.size(), 3u);
    EXPECT_TRUE(r.labeled[0].compensated);
    EXPECT_FALSE(r.labeled[0].fixed);
    EXPECT_NEAR(r.labeled[0].served_error, 0.04, 1e-12);
    EXPECT_FALSE(r.labeled[1].compensated);
    EXPECT_TRUE(r.labeled[1].fixed);
    EXPECT_DOUBLE_EQ(r.labeled[1].served_error, 0.0);

    // Ground-truth feedback flowed to the hook, tagged by shard.
    EXPECT_EQ(hook_calls.load(), 1);
    EXPECT_EQ(hook_shard, 3u);
    EXPECT_EQ(hook_elements, 1u);
    EXPECT_NEAR(hook_residual_pct, 4.0, 1e-9);

    // Lifetime stats and export carry the compensated view.
    EXPECT_EQ(auditor.Stats().compensated_elements, 1u);
    EXPECT_NEAR(auditor.Stats().mean_compensated_residual_pct, 4.0,
                1e-9);
    const std::string body = auditor.ExportJsonl();
    EXPECT_NE(body.find("\"compensated_elements\":1"),
              std::string::npos);
    EXPECT_NE(body.find("\"compensated\":true"), std::string::npos);
}

// ------------------------------------------- Unit: calibration labels

TEST(QualityAuditorTest, LabelsConfusionMatrixPerElement)
{
    QualityAuditor auditor(UnitConfig(), IdentityHooks());
    // threshold 10: element 0 TP (err 20, fired+fixed), 1 FP (err 0,
    // fired+fixed), 2 FN (err 20, silent), 3 TN (err 0, silent).
    AuditSample s = MakeSample(7, {20.0, 0.0, 20.0, 0.0},
                               {1, 1, 0, 0}, {1, 1, 0, 0}, 10.0);
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.audited, 1u);
    EXPECT_EQ(stats.audited_elements, 4u);
    EXPECT_EQ(stats.true_positives, 1u);
    EXPECT_EQ(stats.false_positives, 1u);
    EXPECT_EQ(stats.false_negatives, 1u);
    EXPECT_EQ(stats.true_negatives, 1u);
    EXPECT_DOUBLE_EQ(stats.precision, 0.5);
    EXPECT_DOUBLE_EQ(stats.recall, 0.5);
    // Served errors: fixed elements exact (0), the FN keeps its 20.
    EXPECT_DOUBLE_EQ(stats.mean_true_error_pct, 5.0);
    EXPECT_EQ(stats.toq_violations, 0u);  // 5 <= bound 10.

    const std::vector<AuditResult> results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    const AuditResult& r = results[0];
    EXPECT_EQ(r.trace_id, 7u);
    ASSERT_EQ(r.labeled.size(), 4u);
    EXPECT_TRUE(r.labeled[0].needs_fix);
    EXPECT_FALSE(r.labeled[1].needs_fix);
    EXPECT_TRUE(r.labeled[2].needs_fix);
    EXPECT_FALSE(r.labeled[2].fired);  // the false-negative accept.
    EXPECT_DOUBLE_EQ(r.labeled[2].approx_error, 20.0);
    EXPECT_DOUBLE_EQ(r.labeled[2].served_error, 20.0);
    EXPECT_DOUBLE_EQ(r.labeled[0].served_error, 0.0);  // recovered.
}

TEST(QualityAuditorTest, ExactPathElementsAreExcludedFromCalibration)
{
    QualityAuditor auditor(UnitConfig(), IdentityHooks());
    AuditSample s =
        MakeSample(9, {20.0, 0.0}, {0, 0}, {0, 0}, 10.0);
    // Element 1 was served by the breaker's exact tail: its "approx"
    // slot holds the exact output and carries no checker verdict.
    s.exact_path[1] = 1;
    s.approx_outputs[1] = s.inputs[1];
    s.served_outputs[1] = s.inputs[1];
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.audited_elements, 2u);
    // Only element 0 is calibrated: a false-negative accept.
    EXPECT_EQ(stats.true_positives + stats.false_positives +
                  stats.false_negatives + stats.true_negatives,
              1u);
    EXPECT_EQ(stats.false_negatives, 1u);

    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].labeled[1].exact_path);
    EXPECT_DOUBLE_EQ(results[0].labeled[1].approx_error, 0.0);
    EXPECT_FALSE(results[0].labeled[1].needs_fix);
}

TEST(QualityAuditorTest, TrueToqViolationsDriveRateAndSlo)
{
    AuditConfig config = UnitConfig();
    config.toq_bound_pct = 1.0;
    config.slo_enabled = true;
    config.slo.objective = 0.99;
    config.slo.min_events = 10;
    QualityAuditor auditor(config, IdentityHooks());
    // Every sample's served error is 20 > bound 1: all violations.
    for (uint64_t id = 1; id <= 20; ++id) {
        auditor.Enqueue(
            MakeSample(id, {20.0}, {0}, {0}, /*threshold=*/100.0));
    }
    auditor.Flush();

    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.audited, 20u);
    EXPECT_EQ(stats.toq_violations, 20u);
    EXPECT_DOUBLE_EQ(stats.toq_violation_rate, 1.0);
    // An all-bad stream must trip the audited-truth burn-rate SLO.
    EXPECT_TRUE(stats.slo_alerting);
    ASSERT_NE(auditor.Slo(), nullptr);
    EXPECT_EQ(auditor.Slo()->Config().name, "audited_quality");
}

// --------------------------------------------- Unit: queue mechanics

TEST(QualityAuditorTest, QueueOverflowDropsAndCounts)
{
    AuditConfig config = UnitConfig();
    config.queue_capacity = 2;
    config.threads = 1;

    // Gate the exact path so the single worker blocks inside the
    // first audit while the producer overfills the queue.
    auto entered = std::make_shared<std::promise<void>>();
    auto gate = std::make_shared<std::promise<void>>();
    std::shared_future<void> gate_future = gate->get_future().share();
    std::atomic<int> calls{0};
    AuditHooks hooks = IdentityHooks();
    hooks.run_exact = [entered, gate_future, &calls](const double* in,
                                                     double* out) {
        if (calls.fetch_add(1) == 0)
            entered->set_value();
        gate_future.wait();
        out[0] = in[0];
    };

    QualityAuditor auditor(config, hooks);
    ASSERT_TRUE(
        auditor.Enqueue(MakeSample(1, {0.0}, {0}, {0}, 10.0)));
    entered->get_future().wait();  // worker is inside sample 1.
    ASSERT_TRUE(
        auditor.Enqueue(MakeSample(2, {0.0}, {0}, {0}, 10.0)));
    ASSERT_TRUE(
        auditor.Enqueue(MakeSample(3, {0.0}, {0}, {0}, 10.0)));
    // Queue full (capacity 2): dropped, counted, never blocks.
    EXPECT_FALSE(
        auditor.Enqueue(MakeSample(4, {0.0}, {0}, {0}, 10.0)));

    gate->set_value();
    auditor.Flush();
    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.enqueued, 3u);
    EXPECT_EQ(stats.queue_drops, 1u);
    EXPECT_EQ(stats.audited, 3u);
}

TEST(QualityAuditorTest, ForcedSamplesAreCountedAndKeepReason)
{
    AuditConfig config = UnitConfig();
    config.sample_every = 0;  // forced-only regime.
    QualityAuditor auditor(config, IdentityHooks());
    AuditSample s = MakeSample(5, {20.0}, {1}, {1}, 10.0);
    s.forced = true;
    s.forced_reason = "recovered";
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();

    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.forced, 1u);
    EXPECT_EQ(stats.audited, 1u);
    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].forced);
    EXPECT_EQ(results[0].forced_reason, "recovered");
}

TEST(QualityAuditorTest, MalformedSampleIsDroppedNotAudited)
{
    QualityAuditor auditor(UnitConfig(), IdentityHooks());
    AuditSample s = MakeSample(3, {0.0, 0.0}, {0, 0}, {0, 0}, 10.0);
    s.inputs.resize(1);  // count x in_width no longer fits.
    ASSERT_TRUE(auditor.Enqueue(std::move(s)));
    auditor.Flush();
    EXPECT_EQ(auditor.Stats().audited, 0u);
}

TEST(QualityAuditorTest, ResultRingKeepsNewestOldestFirst)
{
    AuditConfig config = UnitConfig();
    config.result_capacity = 2;
    QualityAuditor auditor(config, IdentityHooks());
    for (uint64_t id = 1; id <= 5; ++id)
        auditor.Enqueue(MakeSample(id, {0.0}, {0}, {0}, 10.0));
    auditor.Flush();
    const auto results = auditor.RecentResults();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].trace_id, 4u);
    EXPECT_EQ(results[1].trace_id, 5u);
    EXPECT_EQ(auditor.Stats().audited, 5u);  // totals keep counting.
}

TEST(QualityAuditorTest, ShutdownDrainsRejectsAndDeregisters)
{
    auto auditor = std::make_unique<QualityAuditor>(UnitConfig(),
                                                    IdentityHooks());
    EXPECT_EQ(QualityAuditor::Live(), auditor.get());
    for (uint64_t id = 1; id <= 8; ++id)
        auditor->Enqueue(MakeSample(id, {0.0}, {0}, {0}, 10.0));
    auditor->Shutdown();
    // The backlog was audited, not abandoned.
    EXPECT_EQ(auditor->Stats().audited, 8u);
    EXPECT_EQ(QualityAuditor::Live(), nullptr);
    // Post-shutdown submissions drop (and count) instead of crashing.
    EXPECT_FALSE(
        auditor->Enqueue(MakeSample(9, {0.0}, {0}, {0}, 10.0)));
    auditor->Shutdown();  // idempotent.
}

TEST(QualityAuditorTest, ExportJsonlCarriesLabeledElementLines)
{
    QualityAuditor auditor(UnitConfig(), IdentityHooks());
    auditor.Enqueue(MakeSample(11, {20.0, 0.0}, {0, 0}, {0, 0}, 10.0));
    auditor.Flush();
    const std::string body = auditor.ExportJsonl();
    EXPECT_NE(body.find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(body.find("\"type\":\"audit\""), std::string::npos);
    EXPECT_NE(body.find("\"trace_id\":11"), std::string::npos);
    EXPECT_NE(body.find("\"fn\":1"), std::string::npos);
    EXPECT_NE(body.find("\"type\":\"audit_element\""),
              std::string::npos);
    EXPECT_NE(body.find("\"needs_fix\":true"), std::string::npos);
    // Inputs land as flat input_<j> keys (array-free JSONL).
    EXPECT_NE(body.find("\"input_0\":"), std::string::npos);
    EXPECT_EQ(body.find("["), std::string::npos);
}

// The TSan target: producers race Flush and Shutdown.
TEST(QualityAuditorTest, ConcurrentEnqueueFlushShutdownIsSafe)
{
    AuditConfig config = UnitConfig();
    config.threads = 2;
    config.queue_capacity = 8;  // force the overflow path too.
    QualityAuditor auditor(config, IdentityHooks());
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
        producers.emplace_back([&auditor, t] {
            for (uint64_t i = 0; i < 64; ++i) {
                AuditSample s = MakeSample(
                    static_cast<uint64_t>(t) * 1000 + i, {1.0},
                    {0}, {0}, 10.0);
                s.forced = (i % 3 == 0);
                auditor.Enqueue(std::move(s));
                auditor.SampleHealthy();
            }
        });
    }
    auditor.Flush();
    for (auto& t : producers)
        t.join();
    auditor.Shutdown();
    const auto stats = auditor.Stats();
    EXPECT_EQ(stats.audited + stats.queue_drops, 4u * 64u);
}

// -------------------------------------------- Engine integration

core::RuntimeConfig
AuditRuntimeConfig()
{
    return core::RuntimeConfig::Builder()
        .WithChecker(core::Scheme::kTree)
        .WithTargetErrorPct(10.0)
        .WithTrainEpochs(30)
        .WithElementCaps(800, 400)
        .Build();
}

const core::Artifact&
AuditArtifact()
{
    static const core::Artifact artifact = [] {
        core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                                   AuditRuntimeConfig());
        return trained.ExportArtifact();
    }();
    return artifact;
}

serve::InvocationRequest
AuditRequest(size_t start_element, size_t count)
{
    static const std::vector<double> flat = [] {
        const auto bench = apps::MakeBenchmark("inversek2j");
        return core::FlattenBatch(bench->TestInputs());
    }();
    serve::InvocationRequest request;
    request.width = 2;
    request.count = count;
    request.inputs.assign(
        flat.begin() + static_cast<ptrdiff_t>(start_element * 2),
        flat.begin() +
            static_cast<ptrdiff_t>((start_element + count) * 2));
    return request;
}

TEST(EngineAuditTest, ExactReexecutorMatchesBenchmark)
{
    auto exact = core::ExactReexecutor::Create("inversek2j");
    ASSERT_NE(exact, nullptr);
    EXPECT_EQ(exact->InputWidth(), 2u);
    const auto bench = apps::MakeBenchmark("inversek2j");
    const std::vector<double> in =
        core::FlattenBatch(bench->TestInputs());
    std::vector<double> out(exact->OutputWidth(), 0.0);
    exact->RunElement(in.data(), out.data());
    std::vector<double> expected(bench->NumOutputs(), 0.0);
    bench->RunExact(in.data(), expected.data());
    ASSERT_EQ(out.size(), expected.size());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_DOUBLE_EQ(out[i], expected[i]);
    // Self-comparison is a zero-error audit.
    EXPECT_DOUBLE_EQ(exact->ElementError(out, out), 0.0);
    EXPECT_EQ(core::ExactReexecutor::Create("no-such-kernel"),
              nullptr);
}

TEST(EngineAuditTest, AuditsEveryRequestAndJoinsTraces)
{
    unsetenv("RUMBA_AUDIT_SAMPLE_N");
    unsetenv("RUMBA_AUDIT_OUT");
    obs::RequestTraceCollector::Default().Clear();

    serve::ServeConfig config;
    config.shards = 1;
    config.queue_capacity = 64;
    config.audit.sample_every = 1;  // audit everything.
    config.audit.queue_capacity = 256;
    auto engine = serve::ShardedEngine::Create(
        AuditArtifact(), AuditRuntimeConfig(), config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    constexpr size_t kRequests = 6;
    constexpr size_t kCount = 16;
    std::vector<std::future<serve::InvocationResult>> futures;
    for (size_t r = 0; r < kRequests; ++r)
        futures.push_back(
            (*engine)->Submit(AuditRequest(r * kCount, kCount)));
    std::set<uint64_t> trace_ids;
    for (auto& f : futures) {
        const auto result = f.get();
        ASSERT_TRUE(result.status.ok());
        trace_ids.insert(result.trace_id);
    }
    (*engine)->Drain();

    obs::QualityAuditor* auditor = (*engine)->Auditor();
    ASSERT_NE(auditor, nullptr);
    auditor->Flush();

    const auto stats = auditor->Stats();
    EXPECT_EQ(stats.audited, kRequests);
    EXPECT_EQ(stats.audited_elements, kRequests * kCount);
    EXPECT_GE(stats.mean_true_error_pct, 0.0);

    // Every audit joins a request trace id handed to the client.
    for (const AuditResult& r : auditor->RecentResults())
        EXPECT_TRUE(trace_ids.count(r.trace_id) > 0)
            << "audit for unknown trace " << r.trace_id;

    // Audited traces are tail-kept and flagged in the collector.
    size_t audited_traces = 0;
    for (const auto& trace :
         obs::RequestTraceCollector::Default().Dump()) {
        if (trace_ids.count(trace.trace_id) > 0 && trace.audited)
            ++audited_traces;
    }
    EXPECT_EQ(audited_traces, kRequests);

    // The /statusz body grows a quality section fed by the auditor.
    const std::string statusz = (*engine)->StatuszJson();
    EXPECT_NE(statusz.find("\"quality\""), std::string::npos);
    EXPECT_NE(statusz.find("\"checker_precision\""),
              std::string::npos);
    EXPECT_NE(statusz.find("\"false_negative_accepts\""),
              std::string::npos);

    (*engine)->Shutdown();
    EXPECT_EQ(obs::QualityAuditor::Live(), nullptr);
}

TEST(EngineAuditTest, AuditDisabledByConfigAndByEnv)
{
    serve::ServeConfig config;
    config.shards = 1;
    config.audit.enabled = false;
    auto engine = serve::ShardedEngine::Create(
        AuditArtifact(), AuditRuntimeConfig(), config);
    ASSERT_TRUE(engine.ok());
    EXPECT_EQ((*engine)->Auditor(), nullptr);
    (*engine)->Shutdown();

    // RUMBA_AUDIT_SAMPLE_N=0 disables even an enabled config.
    setenv("RUMBA_AUDIT_SAMPLE_N", "0", 1);
    serve::ServeConfig enabled;
    enabled.shards = 1;
    auto engine2 = serve::ShardedEngine::Create(
        AuditArtifact(), AuditRuntimeConfig(), enabled);
    ASSERT_TRUE(engine2.ok());
    EXPECT_EQ((*engine2)->Auditor(), nullptr);
    (*engine2)->Shutdown();
    unsetenv("RUMBA_AUDIT_SAMPLE_N");
}

}  // namespace
}  // namespace rumba
