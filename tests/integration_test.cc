// Integration and property tests across the whole stack: the
// experiment harness invariants the paper's figures rely on, and the
// online runtime end to end.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/batch_view.h"
#include "core/experiment.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rumba::core {
namespace {

/** Capped configuration so the suite stays fast. */
ExperimentConfig
FastConfig()
{
    ExperimentConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 800;
    return cfg;
}

/** Shared experiments (expensive to prepare) keyed by benchmark. */
const Experiment&
SharedExperiment(const std::string& name)
{
    static std::map<std::string, std::unique_ptr<Experiment>> cache;
    auto it = cache.find(name);
    if (it == cache.end()) {
        it = cache
                 .emplace(name, std::make_unique<Experiment>(
                                    apps::MakeBenchmark(name),
                                    FastConfig()))
                 .first;
    }
    return *it->second;
}

// ------------------------------------------------- Experiment invariants

TEST(ExperimentTest, PreparesAllArtifacts)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    EXPECT_EQ(exp.NumElements(), 800u);
    EXPECT_EQ(exp.TrueErrors().size(), 800u);
    EXPECT_GT(exp.UncheckedErrorPct(), 0.0);
    EXPECT_GT(exp.KernelOps().TotalFp(), 0.0);
    EXPECT_GT(exp.RumbaNpuCycles(), 0u);
}

TEST(ExperimentTest, FixSetSizesMatchFractions)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (double f : {0.0, 0.1, 0.5, 1.0}) {
        const auto fixes = exp.FixSetForFraction(Scheme::kIdeal, f);
        const size_t count = static_cast<size_t>(
            std::count(fixes.begin(), fixes.end(), char{1}));
        EXPECT_EQ(count, static_cast<size_t>(std::lround(f * 800)));
    }
}

TEST(ExperimentTest, ErrorMonotoneInFixFraction)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : FixingSchemes()) {
        double prev = 1e9;
        for (double f : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
            const double err =
                exp.ErrorWithFixes(exp.FixSetForFraction(s, f));
            EXPECT_LE(err, prev + 1e-9) << SchemeName(s) << " @" << f;
            prev = err;
        }
        EXPECT_NEAR(prev, 0.0, 1e-9);  // fixing everything -> exact.
    }
}

TEST(ExperimentTest, IdealDominatesAllSchemes)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : FixingSchemes()) {
        for (double f : {0.1, 0.3, 0.5}) {
            const double ideal = exp.ErrorWithFixes(
                exp.FixSetForFraction(Scheme::kIdeal, f));
            const double other =
                exp.ErrorWithFixes(exp.FixSetForFraction(s, f));
            EXPECT_LE(ideal, other + 1e-9)
                << SchemeName(s) << " @" << f;
        }
    }
}

TEST(ExperimentTest, FixSetsAreNested)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : FixingSchemes()) {
        const auto small = exp.FixSetForFraction(s, 0.2);
        const auto large = exp.FixSetForFraction(s, 0.5);
        for (size_t i = 0; i < small.size(); ++i) {
            if (small[i])
                EXPECT_TRUE(large[i]) << SchemeName(s) << " idx " << i;
        }
    }
}

TEST(ExperimentTest, ThresholdAndFractionAgree)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : {Scheme::kIdeal, Scheme::kLinear, Scheme::kTree}) {
        const double t = exp.ThresholdForFraction(s, 0.25);
        const auto by_threshold = exp.FixSetForThreshold(s, t);
        const size_t count = static_cast<size_t>(std::count(
            by_threshold.begin(), by_threshold.end(), char{1}));
        // Ties can make the threshold set slightly larger.
        EXPECT_GE(count, 200u) << SchemeName(s);
        EXPECT_LE(count, 240u) << SchemeName(s);
    }
}

TEST(ExperimentTest, TargetErrorIsMet)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : FixingSchemes()) {
        const auto fixes = exp.FixSetForTargetError(s, 10.0);
        EXPECT_LE(exp.ErrorWithFixes(fixes), 10.0) << SchemeName(s);
    }
}

TEST(ExperimentTest, TargetFixSetIsMinimal)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto fixes = exp.FixSetForTargetError(Scheme::kIdeal, 10.0);
    const size_t k = static_cast<size_t>(
        std::count(fixes.begin(), fixes.end(), char{1}));
    if (k > 0) {
        const double f_less = static_cast<double>(k - 1) / 800.0;
        EXPECT_GT(exp.ErrorWithFixes(
                      exp.FixSetForFraction(Scheme::kIdeal, f_less)),
                  10.0);
    }
}

TEST(ExperimentTest, IdealHasNoFalsePositivesFullCoverage)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto report = exp.ReportAtTargetError(Scheme::kIdeal, 10.0);
    EXPECT_DOUBLE_EQ(report.false_positive_pct, 0.0);
    EXPECT_NEAR(report.relative_coverage_pct, 100.0, 1e-9);
}

TEST(ExperimentTest, PredictorsBeatRandomOnFixes)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto random = exp.ReportAtTargetError(Scheme::kRandom, 10.0);
    const auto tree = exp.ReportAtTargetError(Scheme::kTree, 10.0);
    const auto linear = exp.ReportAtTargetError(Scheme::kLinear, 10.0);
    EXPECT_LT(tree.fixes, random.fixes);
    EXPECT_LT(linear.fixes, random.fixes);
    EXPECT_LT(tree.false_positive_pct, random.false_positive_pct);
}

TEST(ExperimentTest, ReportsAreConsistent)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : FixingSchemes()) {
        const auto r = exp.ReportAtTargetError(s, 10.0);
        EXPECT_EQ(r.scheme, s);
        EXPECT_NEAR(r.fix_fraction,
                    static_cast<double>(r.fixes) / 800.0, 1e-12);
        EXPECT_GE(r.false_positive_pct, 0.0);
        EXPECT_LE(r.false_positive_pct, 100.0);
        EXPECT_GE(r.relative_coverage_pct, 0.0);
        EXPECT_LE(r.relative_coverage_pct, 100.0 + 1e-9);
        EXPECT_GT(r.costs.scheme_app_nj, 0.0);
        EXPECT_GT(r.costs.scheme_app_ns, 0.0);
    }
}

TEST(ExperimentTest, MoreFixesMoreEnergy)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto few = exp.Report(
        Scheme::kIdeal, exp.FixSetForFraction(Scheme::kIdeal, 0.1));
    const auto many = exp.Report(
        Scheme::kIdeal, exp.FixSetForFraction(Scheme::kIdeal, 0.6));
    EXPECT_LT(few.costs.scheme_app_nj, many.costs.scheme_app_nj);
}

TEST(ExperimentTest, CheckerSchemesPayCheckerEnergy)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto fixes = exp.FixSetForFraction(Scheme::kIdeal, 0.0);
    const auto without = exp.Report(Scheme::kIdeal, fixes);
    const auto with = exp.Report(Scheme::kLinear, fixes);
    EXPECT_GT(with.costs.scheme_app_nj, without.costs.scheme_app_nj);
}

TEST(ExperimentTest, NpuReportHasNoFixes)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto npu = exp.NpuReport();
    EXPECT_EQ(npu.scheme, Scheme::kNpu);
    EXPECT_EQ(npu.fixes, 0u);
    EXPECT_GT(npu.costs.Speedup(), 0.0);
    EXPECT_NEAR(npu.output_error_pct, exp.NpuUncheckedErrorPct(),
                1e-12);
}

TEST(ExperimentTest, BaselineMatchesReportBaseline)
{
    const Experiment& exp = SharedExperiment("inversek2j");
    const auto base = exp.BaselineCosts();
    const auto npu = exp.NpuReport();
    EXPECT_DOUBLE_EQ(base.baseline_app_ns, npu.costs.baseline_app_ns);
    EXPECT_DOUBLE_EQ(base.baseline_app_nj, npu.costs.baseline_app_nj);
}

TEST(ExperimentTest, CheckerFasterThanAccelerator)
{
    // The Figure 17 property: error prediction never stalls the NPU.
    const Experiment& exp = SharedExperiment("inversek2j");
    for (Scheme s : {Scheme::kEma, Scheme::kLinear, Scheme::kTree}) {
        const auto cost = exp.CheckerCost(s);
        EXPECT_LT(cost.cycles,
                  static_cast<double>(exp.RumbaNpuCycles()))
            << SchemeName(s);
    }
}

TEST(ExperimentTest, DeterministicAcrossConstructions)
{
    Experiment a(apps::MakeBenchmark("fft"), FastConfig());
    Experiment b(apps::MakeBenchmark("fft"), FastConfig());
    EXPECT_DOUBLE_EQ(a.UncheckedErrorPct(), b.UncheckedErrorPct());
    const auto ra = a.ReportAtTargetError(Scheme::kTree, 10.0);
    const auto rb = b.ReportAtTargetError(Scheme::kTree, 10.0);
    EXPECT_EQ(ra.fixes, rb.fixes);
    EXPECT_DOUBLE_EQ(ra.output_error_pct, rb.output_error_pct);
}

// ---------------------------------------------- Parameterized properties

class AllBenchmarksTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(AllBenchmarksTest, PipelineEndToEnd)
{
    const Experiment& exp = SharedExperiment(GetParam());
    // Sanity: some elements, errors bounded, cycle counts present.
    EXPECT_GT(exp.NumElements(), 0u);
    for (double e : exp.TrueErrors()) {
        EXPECT_GE(e, 0.0);
        EXPECT_LT(e, 100.0);
    }
    EXPECT_GT(exp.PlainNpuCycles(), 0u);
}

TEST_P(AllBenchmarksTest, IdealReachesTargetWithFewestFixes)
{
    const Experiment& exp = SharedExperiment(GetParam());
    const auto ideal = exp.ReportAtTargetError(Scheme::kIdeal, 10.0);
    for (Scheme s : DetectorSchemes()) {
        const auto other = exp.ReportAtTargetError(s, 10.0);
        EXPECT_GE(other.fixes, ideal.fixes)
            << GetParam() << " " << SchemeName(s);
    }
}

TEST_P(AllBenchmarksTest, RumbaReducesError)
{
    const Experiment& exp = SharedExperiment(GetParam());
    const auto tree = exp.ReportAtTargetError(Scheme::kTree, 10.0);
    EXPECT_LE(tree.output_error_pct,
              std::max(10.0, exp.UncheckedErrorPct()) + 1e-9);
}

TEST_P(AllBenchmarksTest, EnergyOrderingNpuCheapestScheme)
{
    // The unchecked NPU (no checker, no fixes) must consume no more
    // energy than any Rumba configuration over the same network...
    // evaluated on the Rumba-topology accelerator via a zero-fix
    // Ideal report (Ideal carries no checker hardware).
    const Experiment& exp = SharedExperiment(GetParam());
    const auto none = exp.Report(
        Scheme::kIdeal, exp.FixSetForFraction(Scheme::kIdeal, 0.0));
    const auto tree = exp.ReportAtTargetError(Scheme::kTree, 10.0);
    EXPECT_LE(none.costs.scheme_app_nj,
              tree.costs.scheme_app_nj + 1e-9)
        << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Rumba, AllBenchmarksTest,
                         ::testing::Values("blackscholes", "fft",
                                           "inversek2j", "jmeint", "jpeg",
                                           "kmeans", "sobel"),
                         [](const auto& info) { return info.param; });

// ----------------------------------------------------------- RumbaRuntime

RuntimeConfig
FastRuntime(Scheme checker, TuningMode mode)
{
    RuntimeConfig cfg;
    cfg.pipeline.train_epochs = 30;
    cfg.pipeline.max_train_elements = 800;
    cfg.pipeline.max_test_elements = 800;
    cfg.checker = checker;
    cfg.tuner.mode = mode;
    cfg.tuner.target_error_pct = 10.0;
    cfg.tuner.iteration_budget = 40;
    cfg.initial_threshold = 0.05;
    return cfg;
}

/** Flatten rows [lo, hi) of @p inputs and run them through the
 *  BatchView hot path; @p outputs is sized to the merged result. */
InvocationReport
Invoke(RumbaRuntime& runtime,
       const std::vector<std::vector<double>>& inputs, size_t lo,
       size_t hi, std::vector<double>* outputs)
{
    const std::vector<std::vector<double>> rows(
        inputs.begin() + static_cast<ptrdiff_t>(lo),
        inputs.begin() + static_cast<ptrdiff_t>(hi));
    const std::vector<double> flat = FlattenBatch(rows);
    outputs->resize((hi - lo) * runtime.Bench().NumOutputs());
    return runtime.ProcessInvocation(
        BatchView(flat.data(), hi - lo, runtime.Bench().NumInputs()),
        outputs->data());
}

TEST(RuntimeTest, ProcessesInvocationsAndMergesOutputs)
{
    RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"),
                         FastRuntime(Scheme::kTree, TuningMode::kToq));
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    const InvocationReport report =
        Invoke(runtime, inputs, 0, 200, &outputs);
    EXPECT_EQ(outputs.size(), 200u * runtime.Bench().NumOutputs());
    EXPECT_EQ(report.elements, 200u);
    EXPECT_LE(report.fixes, 200u);
    EXPECT_EQ(runtime.Invocations(), 1u);
}

TEST(RuntimeTest, FixedElementsAreExact)
{
    RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"),
                         FastRuntime(Scheme::kTree, TuningMode::kToq));
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    Invoke(runtime, inputs, 0, 300, &outputs);
    // Every output must be either the accelerator's approximation or
    // the exact kernel result; verify fixes count > 0 given the low
    // threshold, and residual error below the unchecked level.
    EXPECT_GT(runtime.TotalFixes(), 0u);
}

TEST(RuntimeTest, ToqModeConvergesTowardTarget)
{
    RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"),
                         FastRuntime(Scheme::kTree, TuningMode::kToq));
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    double final_error = 1e9;
    for (size_t round = 0; round < 8; ++round) {
        const auto report = Invoke(runtime, inputs, round * 100,
                                   (round + 1) * 100, &outputs);
        final_error = report.output_error_pct;
    }
    // Converged runs keep the residual error in the target's
    // neighborhood (generous band: small batches are noisy).
    EXPECT_LT(final_error, 25.0);
}

TEST(RuntimeTest, EnergyModeRespectsBudgetEventually)
{
    auto cfg = FastRuntime(Scheme::kTree, TuningMode::kEnergy);
    cfg.tuner.iteration_budget = 10;
    cfg.tuner.adjust_factor = 2.0;
    cfg.initial_threshold = 1e-4;  // starts by fixing nearly all.
    RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    size_t last_fixes = 1000;
    for (int round = 0; round < 20; ++round)
        last_fixes = Invoke(runtime, inputs, 0, 100, &outputs).fixes;
    EXPECT_LE(last_fixes, 40u);  // pulled down toward the budget.
}

TEST(RuntimeTest, RequiresPredictorScheme)
{
    EXPECT_DEATH(RumbaRuntime(apps::MakeBenchmark("fft"),
                              FastRuntime(Scheme::kIdeal,
                                          TuningMode::kToq)),
                 "");
}

// ------------------------------------------------------------- Telemetry

TEST(RuntimeTest, PopulatesTelemetry)
{
    // Small offline phase: this test is about the online telemetry.
    auto cfg = FastRuntime(Scheme::kTree, TuningMode::kToq);
    cfg.pipeline.train_epochs = 10;
    cfg.pipeline.max_train_elements = 300;
    RumbaRuntime runtime(apps::MakeBenchmark("inversek2j"), cfg);
    obs::Registry::Default().Reset();
    obs::TraceRing::Default().Clear();

    const auto inputs = runtime.Bench().TestInputs();
    std::vector<double> outputs;
    const InvocationReport report =
        Invoke(runtime, inputs, 0, 250, &outputs);

    // A full online run populates every expected metric name.
    const obs::RegistrySnapshot snap =
        obs::Registry::Default().Snapshot();
    std::map<std::string, uint64_t> counters;
    for (const auto& c : snap.counters)
        counters[c.name] = c.value;
    std::map<std::string, obs::HistogramSnapshot> histograms;
    for (const auto& h : snap.histograms)
        histograms[h.name] = h;
    std::map<std::string, double> gauges;
    for (const auto& g : snap.gauges)
        gauges[g.name] = g.value;

    EXPECT_EQ(counters.at("runtime.invocations"), 1u);
    EXPECT_EQ(counters.at("runtime.elements"), 250u);
    EXPECT_EQ(counters.at("runtime.fixes"), report.fixes);
    EXPECT_EQ(counters.at("detector.checks"), 250u);
    EXPECT_EQ(counters.at("detector.fires"), report.fixes);
    EXPECT_EQ(counters.at("recovery.reexecutions"), report.fixes);
    EXPECT_EQ(counters.count("recovery.queue_full_stalls"), 1u);
    EXPECT_EQ(counters.at("drift.observations"), 1u);
    ASSERT_EQ(gauges.count("tuner.threshold"), 1u);
    EXPECT_DOUBLE_EQ(gauges.at("runtime.output_error_pct"),
                     report.output_error_pct);

    // Latency histograms carry sane per-element counts and quantiles.
    const auto& invoke = histograms.at("npu.invoke_ns");
    EXPECT_EQ(invoke.count, 250u);
    EXPECT_GT(invoke.p50, 0.0);
    EXPECT_LE(invoke.p50, invoke.p99);
    const auto& drain = histograms.at("recovery.drain_ns");
    EXPECT_GE(drain.count, 1u);
    EXPECT_LE(drain.p50, drain.p99);
    EXPECT_EQ(histograms.at("detector.check_ns").count, 250u);
    EXPECT_EQ(histograms.at("runtime.invocation_ns").count, 1u);
    EXPECT_EQ(histograms.at("runtime.verify_ns").count, 1u);

    // The trace ring recorded exactly this invocation, with fields
    // matching the returned report.
    const auto events = obs::TraceRing::Default().Dump();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].elements, 250u);
    EXPECT_DOUBLE_EQ(events[0].threshold, report.threshold_used);
    EXPECT_EQ(events[0].fires, report.fixes);
    EXPECT_EQ(events[0].fixes, report.fixes);
    EXPECT_DOUBLE_EQ(events[0].output_error_pct,
                     report.output_error_pct);
    EXPECT_EQ(events[0].drift, report.drift_detected);

    // A second invocation appends a second event and doubles the
    // element counters.
    Invoke(runtime, inputs, 0, 250, &outputs);
    EXPECT_EQ(obs::TraceRing::Default().Dump().size(), 2u);
    EXPECT_EQ(obs::Registry::Default()
                  .GetCounter("runtime.elements")
                  ->Value(),
              500u);

    // Stopping the ring suppresses runtime events; restarting resumes.
    obs::TraceRing::Default().Stop();
    Invoke(runtime, inputs, 0, 250, &outputs);
    EXPECT_EQ(obs::TraceRing::Default().Dump().size(), 2u);
    obs::TraceRing::Default().Start();
    Invoke(runtime, inputs, 0, 250, &outputs);
    EXPECT_EQ(obs::TraceRing::Default().Dump().size(), 3u);
}

}  // namespace
}  // namespace rumba::core
