// Unit tests for the accelerator model: queues, fixed point,
// activation LUT, the static schedule, and datapath fidelity against
// the float software network.

#include <gtest/gtest.h>

#include <cmath>

#include "common/dataset.h"
#include "common/random.h"
#include "nn/mlp.h"
#include "npu/fifo.h"
#include "npu/fixed_point.h"
#include "npu/npu.h"
#include "npu/schedule.h"
#include "npu/sigmoid_lut.h"

namespace rumba::npu {
namespace {

// ------------------------------------------------------------------ Fifo

TEST(FifoTest, FifoOrdering)
{
    Fifo<int> q(4);
    ASSERT_TRUE(q.Push(1));
    ASSERT_TRUE(q.Push(2));
    ASSERT_TRUE(q.Push(3));
    EXPECT_EQ(q.Pop(), 1);
    EXPECT_EQ(q.Pop(), 2);
    EXPECT_EQ(q.Pop(), 3);
    EXPECT_TRUE(q.Empty());
}

TEST(FifoTest, FullAndCapacity)
{
    Fifo<int> q(2);
    EXPECT_FALSE(q.Full());
    ASSERT_TRUE(q.Push(1));
    ASSERT_TRUE(q.Push(2));
    EXPECT_TRUE(q.Full());
    EXPECT_EQ(q.Capacity(), 2u);
}

TEST(FifoTest, TracksTrafficAndHighWater)
{
    Fifo<int> q(8);
    ASSERT_TRUE(q.Push(1));
    ASSERT_TRUE(q.Push(2));
    q.Pop();
    ASSERT_TRUE(q.Push(3));
    ASSERT_TRUE(q.Push(4));
    EXPECT_EQ(q.TotalPushes(), 4u);
    EXPECT_EQ(q.HighWater(), 3u);
}

TEST(FifoTest, OverflowRejectsAndCounts)
{
    // Push-on-full is rejected and counted, never a panic: a fault or
    // stall upstream must not crash the whole runtime.
    Fifo<int> q(1);
    ASSERT_TRUE(q.Push(1));
    EXPECT_FALSE(q.Push(2));
    EXPECT_FALSE(q.Push(3));
    EXPECT_EQ(q.RejectedPushes(), 2u);
    EXPECT_EQ(q.Size(), 1u);
    EXPECT_EQ(q.Pop(), 1);        // the stored element is intact.
    EXPECT_EQ(q.TotalPushes(), 1u);  // rejections aren't traffic.
    ASSERT_TRUE(q.Push(4));       // space freed: pushes work again.
    EXPECT_EQ(q.Pop(), 4);
}

TEST(FifoTest, UnderflowPanics)
{
    Fifo<int> q(1);
    EXPECT_DEATH(q.Pop(), "check failed");
}

TEST(FifoTest, ClearEmpties)
{
    Fifo<int> q(4);
    ASSERT_TRUE(q.Push(1));
    q.Clear();
    EXPECT_TRUE(q.Empty());
    EXPECT_EQ(q.TotalPushes(), 1u);  // traffic history survives.
}

// ------------------------------------------------------------ FixedPoint

TEST(FixedPointTest, QuantizeRoundTripAccuracy)
{
    FixedFormat fmt;
    for (double v : {-3.2, -1.0, -0.125, 0.0, 0.3, 0.999, 7.5}) {
        EXPECT_NEAR(fmt.RoundTrip(v), v, fmt.Resolution() / 2 + 1e-12)
            << v;
    }
}

TEST(FixedPointTest, Saturates)
{
    FixedFormat fmt;  // Q5.10: max ~31.999
    EXPECT_EQ(fmt.Quantize(1e9), INT16_MAX);
    EXPECT_EQ(fmt.Quantize(-1e9), INT16_MIN);
}

TEST(FixedPointTest, MacAccumulatesExactly)
{
    FixedFormat fmt;
    MacAccumulator acc;
    const int16_t a = fmt.Quantize(1.5);
    const int16_t b = fmt.Quantize(2.0);
    acc.Mac(a, b);
    acc.Mac(a, b);
    // 2 * 1.5 * 2.0 = 6.0 in single-precision fixed point.
    EXPECT_NEAR(fmt.Dequantize(acc.Reduce(fmt)), 6.0, 0.01);
}

TEST(FixedPointTest, ReduceSaturates)
{
    FixedFormat fmt;
    MacAccumulator acc;
    const int16_t big = fmt.Quantize(30.0);
    for (int i = 0; i < 100; ++i)
        acc.Mac(big, big);
    EXPECT_EQ(acc.Reduce(fmt), INT16_MAX);
}

// ------------------------------------------------------------ SigmoidLut

TEST(SigmoidLutTest, AccurateWithinRange)
{
    FixedFormat fmt;
    SigmoidLut lut(nn::Activation::kSigmoid, 2048, 8.0, fmt);
    // Table + quantization error stays small.
    EXPECT_LT(lut.MaxError(), 0.01);
}

TEST(SigmoidLutTest, ClampsOutsideRange)
{
    FixedFormat fmt;
    SigmoidLut lut(nn::Activation::kSigmoid, 512, 4.0, fmt);
    const int16_t lo = lut.Lookup(fmt.Quantize(-20.0));
    const int16_t hi = lut.Lookup(fmt.Quantize(20.0));
    EXPECT_NEAR(fmt.Dequantize(lo), 0.0, 0.02);
    EXPECT_NEAR(fmt.Dequantize(hi), 1.0, 0.02);
}

TEST(SigmoidLutTest, MidpointIsHalf)
{
    FixedFormat fmt;
    SigmoidLut lut(nn::Activation::kSigmoid, 2049, 8.0, fmt);
    EXPECT_NEAR(fmt.Dequantize(lut.Lookup(0)), 0.5, 0.005);
}

TEST(SigmoidLutTest, TanhTableIsOdd)
{
    FixedFormat fmt;
    SigmoidLut lut(nn::Activation::kTanh, 2049, 8.0, fmt);
    const double pos = fmt.Dequantize(lut.Lookup(fmt.Quantize(1.0)));
    const double neg = fmt.Dequantize(lut.Lookup(fmt.Quantize(-1.0)));
    EXPECT_NEAR(pos, -neg, 0.01);
    EXPECT_NEAR(pos, std::tanh(1.0), 0.01);
}

// -------------------------------------------------------------- Schedule

TEST(ScheduleTest, SingleWaveLayer)
{
    const Schedule s = BuildSchedule(nn::Topology::Parse("9->8->1"), 8);
    ASSERT_EQ(s.layers.size(), 2u);
    EXPECT_EQ(s.layers[0].waves, 1u);
    EXPECT_EQ(s.layers[0].mac_cycles, 10u);  // 9 inputs + bias.
    EXPECT_EQ(s.layers[0].act_cycles, 1u);
    EXPECT_EQ(s.layers[1].waves, 1u);
    EXPECT_EQ(s.layers[1].mac_cycles, 9u);
    EXPECT_EQ(s.input_cycles, 9u);
    EXPECT_EQ(s.output_cycles, 1u);
    EXPECT_EQ(s.total_cycles, 9 + 10 + 1 + 9 + 1 + 1u);
}

TEST(ScheduleTest, MultiWaveLayer)
{
    // 32 neurons on 8 PEs -> 4 waves.
    const Schedule s =
        BuildSchedule(nn::Topology::Parse("18->32->2"), 8);
    EXPECT_EQ(s.layers[0].waves, 4u);
    EXPECT_EQ(s.layers[0].mac_cycles, 4u * 19u);
}

TEST(ScheduleTest, MorePesShortenSchedule)
{
    const auto topo = nn::Topology::Parse("16->32->16->4");
    const Schedule s8 = BuildSchedule(topo, 8);
    const Schedule s16 = BuildSchedule(topo, 16);
    EXPECT_LT(s16.total_cycles, s8.total_cycles);
}

TEST(ScheduleTest, PeAssignmentRoundRobin)
{
    EXPECT_EQ(Schedule::PeForNeuron(0, 8), 0u);
    EXPECT_EQ(Schedule::PeForNeuron(7, 8), 7u);
    EXPECT_EQ(Schedule::PeForNeuron(8, 8), 0u);
}

// ------------------------------------------------------------------- Npu

/** A small trained-looking network with bounded weights. */
nn::Mlp
MakeTestMlp(uint64_t seed, const char* topo = "3->4->2")
{
    Rng rng(seed);
    nn::Mlp mlp(nn::Topology::Parse(topo));
    mlp.RandomizeWeights(&rng, 1.0);
    return mlp;
}

TEST(NpuTest, RequiresConfiguration)
{
    Npu npu;
    EXPECT_FALSE(npu.Configured());
    EXPECT_DEATH(npu.Invoke({0.1, 0.2, 0.3}), "check failed");
}

TEST(NpuTest, MatchesFloatNetworkClosely)
{
    const nn::Mlp mlp = MakeTestMlp(7);
    Npu npu;
    npu.Configure(mlp);
    Rng rng(13);
    double worst = 0.0;
    for (int i = 0; i < 500; ++i) {
        const std::vector<double> in{rng.Uniform(), rng.Uniform(),
                                     rng.Uniform()};
        const auto exact = mlp.Forward(in);
        const auto approx = npu.Invoke(in);
        ASSERT_EQ(approx.size(), exact.size());
        for (size_t o = 0; o < exact.size(); ++o)
            worst = std::max(worst, std::fabs(exact[o] - approx[o]));
    }
    // Fixed-point + LUT noise is small but nonzero.
    EXPECT_LT(worst, 0.03);
}

TEST(NpuTest, QuantizationIsNotExact)
{
    const nn::Mlp mlp = MakeTestMlp(19);
    Npu npu;
    npu.Configure(mlp);
    Rng rng(23);
    double total = 0.0;
    for (int i = 0; i < 200; ++i) {
        const std::vector<double> in{rng.Uniform(), rng.Uniform(),
                                     rng.Uniform()};
        const auto exact = mlp.Forward(in);
        const auto approx = npu.Invoke(in);
        for (size_t o = 0; o < exact.size(); ++o)
            total += std::fabs(exact[o] - approx[o]);
    }
    // The accelerator is an *approximate* unit: deviation exists.
    EXPECT_GT(total, 0.0);
}

TEST(NpuTest, StatsCountEvents)
{
    const nn::Mlp mlp = MakeTestMlp(29);
    Npu npu;
    npu.Configure(mlp);
    npu.ResetStats();
    npu.Invoke({0.1, 0.2, 0.3});
    npu.Invoke({0.4, 0.5, 0.6});
    const NpuStats& s = npu.Stats();
    EXPECT_EQ(s.invocations, 2u);
    // 4*(3+1) + 2*(4+1) = 26 MACs per invocation.
    EXPECT_EQ(s.macs, 52u);
    EXPECT_EQ(s.lut_lookups, 12u);  // 6 neurons x 2.
    EXPECT_EQ(s.input_words, 6u);
    EXPECT_EQ(s.output_words, 4u);
    EXPECT_EQ(s.cycles, 2 * npu.CyclesPerInvocation());
}

TEST(NpuTest, ConfigCountsWeights)
{
    const nn::Mlp mlp = MakeTestMlp(31);
    Npu npu;
    npu.Configure(mlp);
    EXPECT_EQ(npu.Stats().config_words, mlp.NumParameters());
}

TEST(NpuTest, ReconfigureSwitchesNetwork)
{
    Npu npu;
    npu.Configure(MakeTestMlp(37));
    const auto a = npu.Invoke({0.5, 0.5, 0.5});
    npu.Configure(MakeTestMlp(41));
    const auto b = npu.Invoke({0.5, 0.5, 0.5});
    bool differs = false;
    for (size_t o = 0; o < a.size(); ++o)
        differs |= std::fabs(a[o] - b[o]) > 1e-6;
    EXPECT_TRUE(differs);
}

TEST(NpuTest, LatencyMatchesSchedule)
{
    const nn::Mlp mlp = MakeTestMlp(43);
    NpuConfig cfg;
    cfg.frequency_ghz = 2.0;
    Npu npu(cfg);
    npu.Configure(mlp);
    EXPECT_DOUBLE_EQ(
        npu.InvocationLatencyNs(),
        static_cast<double>(npu.CyclesPerInvocation()) / 2.0);
}

TEST(NpuTest, DeterministicInvocations)
{
    const nn::Mlp mlp = MakeTestMlp(47);
    Npu npu;
    npu.Configure(mlp);
    const auto a = npu.Invoke({0.2, 0.4, 0.8});
    const auto b = npu.Invoke({0.2, 0.4, 0.8});
    for (size_t o = 0; o < a.size(); ++o)
        EXPECT_DOUBLE_EQ(a[o], b[o]);
}

TEST(NpuTest, LinearOutputLayerSkipsLut)
{
    Rng rng(53);
    nn::Mlp mlp(nn::Topology::Parse("2->3->1"), nn::Activation::kSigmoid,
                nn::Activation::kLinear);
    mlp.RandomizeWeights(&rng, 1.0);
    Npu npu;
    npu.Configure(mlp);
    npu.ResetStats();
    npu.Invoke({0.3, 0.7});
    // Only the 3 hidden sigmoids hit the LUT.
    EXPECT_EQ(npu.Stats().lut_lookups, 3u);
}

}  // namespace
}  // namespace rumba::npu
