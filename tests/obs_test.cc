// Unit tests for the telemetry subsystem (src/obs): counter / gauge /
// histogram semantics, quantile accuracy on known distributions,
// trace-ring wraparound, snapshot idempotence, and exporter
// round-trips.

#include <gtest/gtest.h>

#include <signal.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/reqtrace.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace rumba::obs {
namespace {

// ------------------------------------------------------------ Counters

TEST(CounterTest, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.Value(), 0u);
    c.Increment();
    c.Increment(41);
    EXPECT_EQ(c.Value(), 42u);
    c.Reset();
    EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless)
{
    Counter c;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&c] {
            for (int i = 0; i < 10000; ++i)
                c.Increment();
        });
    }
    for (auto& t : threads)
        t.join();
    EXPECT_EQ(c.Value(), 40000u);
}

// -------------------------------------------------------------- Gauges

TEST(GaugeTest, LastValueWins)
{
    Gauge g;
    EXPECT_DOUBLE_EQ(g.Value(), 0.0);
    g.Set(0.25);
    g.Set(1.5);
    EXPECT_DOUBLE_EQ(g.Value(), 1.5);
}

// ---------------------------------------------------------- Histograms

TEST(HistogramTest, CountsSumMinMax)
{
    Histogram h(Histogram::LinearBuckets(10.0, 10.0, 10));
    for (double v : {5.0, 15.0, 95.0, 250.0})
        h.Observe(v);
    EXPECT_EQ(h.Count(), 4u);
    EXPECT_DOUBLE_EQ(h.Sum(), 365.0);
    EXPECT_DOUBLE_EQ(h.Min(), 5.0);
    EXPECT_DOUBLE_EQ(h.Max(), 250.0);  // overflow bucket keeps max.
}

TEST(HistogramTest, QuantilesOnUniformDistribution)
{
    // 1..1000 into width-10 buckets: quantiles should land within one
    // bucket of the exact order statistic.
    Histogram h(Histogram::LinearBuckets(10.0, 10.0, 100));
    for (int v = 1; v <= 1000; ++v)
        h.Observe(static_cast<double>(v));
    EXPECT_NEAR(h.Quantile(0.50), 500.0, 10.0);
    EXPECT_NEAR(h.Quantile(0.90), 900.0, 10.0);
    EXPECT_NEAR(h.Quantile(0.99), 990.0, 10.0);
    EXPECT_NEAR(h.Quantile(1.00), 1000.0, 1e-9);
}

TEST(HistogramTest, QuantilesAreMonotoneAndClamped)
{
    Histogram h(Histogram::ExponentialBuckets(1.0, 2.0, 16));
    for (double v : {3.0, 3.0, 3.0, 7.0, 20000.0, 70000.0})
        h.Observe(v);
    double prev = h.Min();
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
        const double value = h.Quantile(q);
        EXPECT_GE(value, prev) << "q=" << q;
        EXPECT_GE(value, h.Min());
        EXPECT_LE(value, h.Max());
        prev = value;
    }
}

TEST(HistogramTest, EmptyHistogramIsAllZero)
{
    Histogram h(Histogram::DefaultLatencyBounds());
    EXPECT_EQ(h.Count(), 0u);
    EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
    const HistogramSnapshot snap = h.Snapshot("x");
    EXPECT_DOUBLE_EQ(snap.min, 0.0);
    EXPECT_DOUBLE_EQ(snap.max, 0.0);
    EXPECT_DOUBLE_EQ(snap.p99, 0.0);
}

TEST(HistogramTest, BucketCountsIncludeOverflow)
{
    Histogram h(Histogram::LinearBuckets(1.0, 1.0, 3));  // 1, 2, 3.
    for (double v : {0.5, 1.5, 2.5, 99.0})
        h.Observe(v);
    const auto counts = h.BucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 1u);  // <= 1
    EXPECT_EQ(counts[1], 1u);  // (1, 2]
    EXPECT_EQ(counts[2], 1u);  // (2, 3]
    EXPECT_EQ(counts[3], 1u);  // overflow
}

// ------------------------------------------------------------ Registry

TEST(RegistryTest, SameNameSameInstrument)
{
    Registry registry;
    Counter* a = registry.GetCounter("x.count");
    Counter* b = registry.GetCounter("x.count");
    EXPECT_EQ(a, b);
    EXPECT_NE(registry.GetGauge("x.gauge"), nullptr);
    Histogram* h1 = registry.GetHistogram("x.lat");
    Histogram* h2 =
        registry.GetHistogram("x.lat", Histogram::LinearBuckets(1, 1, 2));
    EXPECT_EQ(h1, h2);  // bounds only apply on first registration.
    EXPECT_EQ(h1->Bounds(), Histogram::DefaultLatencyBounds());
}

TEST(RegistryTest, SnapshotIsIdempotentAndSorted)
{
    Registry registry;
    registry.GetCounter("b.count")->Increment(2);
    registry.GetCounter("a.count")->Increment(1);
    registry.GetGauge("g")->Set(3.5);
    registry.GetHistogram("h")->Observe(100.0);

    const RegistrySnapshot s1 = registry.Snapshot();
    const RegistrySnapshot s2 = registry.Snapshot();

    ASSERT_EQ(s1.counters.size(), 2u);
    EXPECT_EQ(s1.counters[0].name, "a.count");  // sorted by name.
    EXPECT_EQ(s1.counters[1].name, "b.count");
    EXPECT_EQ(s1.counters[1].value, 2u);

    // Snapshotting must not disturb state: s2 is identical.
    ASSERT_EQ(s2.counters.size(), s1.counters.size());
    for (size_t i = 0; i < s1.counters.size(); ++i) {
        EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
        EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
    }
    ASSERT_EQ(s1.histograms.size(), 1u);
    ASSERT_EQ(s2.histograms.size(), 1u);
    EXPECT_EQ(s1.histograms[0].count, s2.histograms[0].count);
    EXPECT_DOUBLE_EQ(s1.histograms[0].p50, s2.histograms[0].p50);
}

TEST(RegistryTest, ResetZeroesButKeepsNames)
{
    Registry registry;
    registry.GetCounter("c")->Increment(7);
    registry.GetHistogram("h")->Observe(42.0);
    registry.Reset();
    const RegistrySnapshot snap = registry.Snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 0u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 0u);
}

// --------------------------------------------------------- ScopedTimer

TEST(ScopedTimerTest, RecordsPositiveDuration)
{
    Histogram h(Histogram::DefaultLatencyBounds());
    {
        ScopedTimer timer(&h);
        volatile double sink = 0.0;
        for (int i = 0; i < 1000; ++i)
            sink += static_cast<double>(i);
        (void)sink;
    }
    EXPECT_EQ(h.Count(), 1u);
    EXPECT_GT(h.Sum(), 0.0);
}

TEST(ScopedTimerTest, NullHistogramIsNoop)
{
    ScopedTimer timer(nullptr);  // must not crash on destruction.
}

// ----------------------------------------------------------- TraceRing

TraceEvent
EventWithFixes(uint64_t fixes)
{
    TraceEvent e;
    e.fixes = fixes;
    return e;
}

TEST(TraceRingTest, KeepsMostRecentOnWraparound)
{
    TraceRing ring(4);
    for (uint64_t i = 0; i < 10; ++i)
        ring.Record(EventWithFixes(i));
    EXPECT_EQ(ring.TotalRecorded(), 10u);
    EXPECT_EQ(ring.Dropped(), 6u);
    const auto events = ring.Dump();
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].sequence, 6 + i);  // oldest first.
        EXPECT_EQ(events[i].fixes, 6 + i);
    }
}

TEST(TraceRingTest, StartStopGatesRecording)
{
    TraceRing ring(8);
    EXPECT_TRUE(ring.Enabled());
    ring.Record(EventWithFixes(1));
    ring.Stop();
    EXPECT_FALSE(ring.Enabled());
    ring.Record(EventWithFixes(2));  // dropped.
    ring.Start();
    ring.Record(EventWithFixes(3));
    const auto events = ring.Dump();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].fixes, 1u);
    EXPECT_EQ(events[1].fixes, 3u);
}

TEST(TraceRingTest, ClearResetsSequence)
{
    TraceRing ring(2);
    ring.Record(EventWithFixes(1));
    ring.Clear();
    EXPECT_EQ(ring.Size(), 0u);
    EXPECT_EQ(ring.TotalRecorded(), 0u);
    ring.Record(EventWithFixes(9));
    EXPECT_EQ(ring.Dump().front().sequence, 0u);
}

// ----------------------------------------------------------- Exporters

RegistrySnapshot
KnownSnapshot()
{
    Registry registry;
    registry.GetCounter("runtime.invocations")->Increment(3);
    registry.GetGauge("tuner.threshold")->Set(0.125);
    Histogram* h = registry.GetHistogram(
        "npu.invoke_ns", Histogram::LinearBuckets(100.0, 100.0, 10));
    for (double v : {150.0, 250.0, 350.0})
        h->Observe(v);
    return registry.Snapshot();
}

TEST(ExportTest, JsonlRoundTrip)
{
    TraceEvent event;
    event.invocation = 7;
    event.elements = 100;
    event.threshold = 0.5;
    event.fires = 9;
    event.fixes = 9;
    const std::string jsonl = ToJsonl(KnownSnapshot(), {event});

    // Every line is a braced object.
    std::istringstream lines(jsonl);
    std::string line;
    size_t count = 0;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        ++count;
    }
    EXPECT_EQ(count, 4u);  // counter + gauge + histogram + trace.

    // The values survive the trip.
    EXPECT_NE(jsonl.find("{\"type\":\"counter\",\"name\":"
                         "\"runtime.invocations\",\"value\":3}"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"name\":\"tuner.threshold\",\"value\":0.125"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"name\":\"npu.invoke_ns\",\"count\":3"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"trace\",\"seq\":0,"
                         "\"invocation\":7,\"elements\":100"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"fires\":9,\"fixes\":9"), std::string::npos);
}

TEST(ExportTest, CsvRoundTrip)
{
    const std::string csv = ToCsv(KnownSnapshot());
    std::istringstream lines(csv);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    EXPECT_EQ(header,
              "type,name,value,sum,min,max,p50,p90,p99,notes");

    std::map<std::string, std::vector<std::string>> by_name;
    std::string line;
    while (std::getline(lines, line)) {
        std::vector<std::string> cells;
        std::istringstream fields(line);
        std::string cell;
        while (std::getline(fields, cell, ','))
            cells.push_back(cell);
        ASSERT_GE(cells.size(), 3u);
        by_name[cells[1]] = cells;
    }
    ASSERT_EQ(by_name.count("runtime.invocations"), 1u);
    EXPECT_EQ(by_name["runtime.invocations"][0], "counter");
    EXPECT_EQ(by_name["runtime.invocations"][2], "3");
    ASSERT_EQ(by_name.count("npu.invoke_ns"), 1u);
    EXPECT_EQ(by_name["npu.invoke_ns"][0], "histogram");
    EXPECT_EQ(by_name["npu.invoke_ns"][2], "3");
    EXPECT_EQ(std::stod(by_name["npu.invoke_ns"][4]), 150.0);  // min.
    EXPECT_EQ(std::stod(by_name["npu.invoke_ns"][5]), 350.0);  // max.
}

TEST(ExportTest, TableHasOneRowPerInstrument)
{
    const Table table = ToTable(KnownSnapshot());
    EXPECT_EQ(table.Rows(), 3u);
}

TEST(ExportTest, WriteMetricsFileProducesParseableJsonl)
{
    Registry::Default().GetCounter("export_test.marker")->Increment();
    const std::string path = ::testing::TempDir() + "obs_export.jsonl";
    ASSERT_TRUE(WriteMetricsFile(path));

    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string body;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0)
        body.append(buf, got);
    std::fclose(f);
    std::remove(path.c_str());

    EXPECT_NE(body.find("\"name\":\"export_test.marker\",\"value\":1"),
              std::string::npos);
    std::istringstream lines(body);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
    }
}

// ---------------------------------------------------------- EscapeJson

TEST(EscapeJsonTest, EscapesStructuralAndControlCharacters)
{
    EXPECT_EQ(EscapeJson("plain.name_42"), "plain.name_42");
    EXPECT_EQ(EscapeJson("a\"b"), "a\\\"b");
    EXPECT_EQ(EscapeJson("a\\b"), "a\\\\b");
    EXPECT_EQ(EscapeJson("a\nb\tc"), "a\\nb\\tc");
    EXPECT_EQ(EscapeJson(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(JsonQuote("say \"hi\""), "\"say \\\"hi\\\"\"");
}

TEST(EscapeJsonTest, HostileMetricNameSurvivesJsonlExport)
{
    Registry registry;
    registry.GetCounter("evil\"name\nwith\\stuff")->Increment();
    const std::string jsonl = ToJsonl(registry.Snapshot(), {});
    EXPECT_NE(jsonl.find("\"evil\\\"name\\nwith\\\\stuff\""),
              std::string::npos);
}

// ---------------------------------------------------- Env-knob parsing

TEST(ParseTraceRingCapacityTest, DefaultsAndClamps)
{
    EXPECT_EQ(ParseTraceRingCapacity(nullptr),
              TraceRing::kDefaultRingCapacity);
    EXPECT_EQ(ParseTraceRingCapacity(""),
              TraceRing::kDefaultRingCapacity);
    EXPECT_EQ(ParseTraceRingCapacity("bogus"),
              TraceRing::kDefaultRingCapacity);
    EXPECT_EQ(ParseTraceRingCapacity("1024"), 1024u);
    EXPECT_EQ(ParseTraceRingCapacity("1"), TraceRing::kMinRingCapacity);
    EXPECT_EQ(ParseTraceRingCapacity("999999999"),
              TraceRing::kMaxRingCapacity);
}

TEST(ParseStreamPeriodMsTest, DefaultsAndClamps)
{
    EXPECT_EQ(ParseStreamPeriodMs(nullptr), kDefaultStreamPeriodMs);
    EXPECT_EQ(ParseStreamPeriodMs(""), kDefaultStreamPeriodMs);
    EXPECT_EQ(ParseStreamPeriodMs("junk"), kDefaultStreamPeriodMs);
    EXPECT_EQ(ParseStreamPeriodMs("250"), 250);
    EXPECT_EQ(ParseStreamPeriodMs("0"), kMinStreamPeriodMs);
    EXPECT_EQ(ParseStreamPeriodMs("9999999"), kMaxStreamPeriodMs);
}

// ------------------------------------------------------- Run metadata

TEST(RunMetadataTest, LineCarriesVersionedIdentity)
{
    const std::string line = MetadataJsonLine();
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(line.find("\"schema_version\":" +
                        std::to_string(kMetricsSchemaVersion)),
              std::string::npos);
    EXPECT_NE(line.find("\"wall_time\":"), std::string::npos);
    EXPECT_NE(line.find("\"hostname\":"), std::string::npos);
    EXPECT_NE(line.find("\"build_type\":"), std::string::npos);
    EXPECT_NE(line.find("\"sanitizers\":"), std::string::npos);

    const RunMetadata meta = CollectRunMetadata();
    EXPECT_EQ(meta.schema_version, kMetricsSchemaVersion);
    // ISO-8601 UTC: "2026-08-07T09:00:00Z" is 20 characters.
    EXPECT_EQ(meta.wall_time_iso8601.size(), 20u);
    EXPECT_EQ(meta.wall_time_iso8601.back(), 'Z');
    // Compile-time identity: the project version and git describe
    // always resolve to something (fallbacks, never empty).
    EXPECT_FALSE(meta.version.empty());
    EXPECT_FALSE(meta.git_describe.empty());
    EXPECT_NE(line.find("\"version\":"), std::string::npos);
    EXPECT_NE(line.find("\"git_describe\":"), std::string::npos);
}

TEST(RunMetadataTest, BuildInfoJsonReportsSetEnvKnobs)
{
    setenv("RUMBA_AUDIT_SAMPLE_N", "7", 1);
    unsetenv("RUMBA_FAULT_PLAN");
    const std::string info = BuildInfoJson();
    EXPECT_EQ(info.front(), '{');
    EXPECT_EQ(info.back(), '}');
    EXPECT_NE(info.find("\"version\":"), std::string::npos);
    EXPECT_NE(info.find("\"git_describe\":"), std::string::npos);
    EXPECT_NE(info.find("\"sanitizers\":"), std::string::npos);
    EXPECT_NE(info.find("\"env\":{"), std::string::npos);
    // Set knobs appear with their values; unset ones are absent.
    EXPECT_NE(info.find("\"RUMBA_AUDIT_SAMPLE_N\":\"7\""),
              std::string::npos);
    EXPECT_EQ(info.find("\"RUMBA_FAULT_PLAN\""), std::string::npos);
    unsetenv("RUMBA_AUDIT_SAMPLE_N");
}

namespace {
void
UserSigtermHandler(int)
{
}
}  // namespace

TEST(SignalFlushTest, NeverDisplacesAnApplicationHandler)
{
    // An application that installed its own SIGTERM handler must keep
    // it; the flush only ever claims SIG_DFL dispositions.
    struct sigaction user {};
    user.sa_handler = UserSigtermHandler;
    sigemptyset(&user.sa_mask);
    ASSERT_EQ(sigaction(SIGTERM, &user, nullptr), 0);

    InstallSignalFlush();

    struct sigaction after {};
    ASSERT_EQ(sigaction(SIGTERM, nullptr, &after), 0);
    EXPECT_EQ(after.sa_handler, &UserSigtermHandler);

    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    sigemptyset(&dfl.sa_mask);
    sigaction(SIGTERM, &dfl, nullptr);
}

TEST(RunMetadataTest, MetricsFileLeadsWithMetaHeader)
{
    const std::string path = ::testing::TempDir() + "obs_meta.jsonl";
    ASSERT_TRUE(WriteMetricsFile(path));
    std::ifstream in(path);
    std::string first;
    ASSERT_TRUE(std::getline(in, first));
    std::remove(path.c_str());
    EXPECT_EQ(first.find("{\"type\":\"meta\",\"schema_version\":"), 0u);
}

// --------------------------------------------------------------- Spans

TEST(SpanTest, DisabledCollectorRecordsNothing)
{
    SpanCollector collector(8);
    {
        const Span span("ignored", &collector);
    }
    EXPECT_EQ(collector.TotalRecorded(), 0u);
    EXPECT_EQ(collector.ThreadCount(), 0u);
    EXPECT_TRUE(collector.Dump().empty());
}

TEST(SpanTest, RecordsNestingDepthAndContainment)
{
    SpanCollector collector(16);
    collector.Enable();
    {
        const Span outer("outer", &collector);
        {
            const Span inner("inner", &collector);
        }
        {
            const Span sibling("sibling", &collector);
        }
    }
    collector.Disable();

    const auto spans = collector.Dump();
    ASSERT_EQ(spans.size(), 3u);
    // Dump() is start-sorted: outer opened first.
    EXPECT_EQ(spans[0].name, "outer");
    EXPECT_EQ(spans[0].depth, 0u);
    EXPECT_EQ(spans[1].name, "inner");
    EXPECT_EQ(spans[1].depth, 1u);
    EXPECT_EQ(spans[2].name, "sibling");
    EXPECT_EQ(spans[2].depth, 1u);
    // The children nest inside the parent's interval.
    const uint64_t outer_end =
        spans[0].start_ns + spans[0].duration_ns;
    for (size_t i = 1; i < spans.size(); ++i) {
        EXPECT_GE(spans[i].start_ns, spans[0].start_ns);
        EXPECT_LE(spans[i].start_ns + spans[i].duration_ns, outer_end);
    }
    // Siblings do not overlap: "sibling" opens after "inner" closes.
    EXPECT_GE(spans[2].start_ns,
              spans[1].start_ns + spans[1].duration_ns);
    EXPECT_EQ(collector.ThreadCount(), 1u);
}

TEST(SpanTest, AttributesSpansToRecordingThreads)
{
    SpanCollector collector(16);
    collector.Enable();
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
        threads.emplace_back([&collector] {
            const Span span("worker", &collector);
        });
    }
    for (auto& t : threads)
        t.join();
    collector.Disable();

    EXPECT_EQ(collector.ThreadCount(), 3u);
    const auto spans = collector.Dump();
    ASSERT_EQ(spans.size(), 3u);
    std::set<uint32_t> ids;
    for (const auto& s : spans) {
        EXPECT_GE(s.thread_id, 1u);  // ids are 1-based.
        ids.insert(s.thread_id);
    }
    EXPECT_EQ(ids.size(), 3u);  // one distinct id per thread.
}

TEST(SpanTest, DropsNewestAtCapacityAndCounts)
{
    SpanCollector collector(4);
    collector.Enable();
    for (int i = 0; i < 10; ++i) {
        const Span span("burst", &collector);
    }
    collector.Disable();
    EXPECT_EQ(collector.TotalRecorded(), 4u);  // trace keeps its start.
    EXPECT_EQ(collector.Dropped(), 6u);
    EXPECT_EQ(collector.Dump().size(), 4u);
}

TEST(SpanTest, ClearDropsSpansButKeepsRegistrations)
{
    SpanCollector collector(8);
    collector.Enable();
    {
        const Span span("once", &collector);
    }
    ASSERT_EQ(collector.TotalRecorded(), 1u);
    collector.Clear();
    EXPECT_EQ(collector.TotalRecorded(), 0u);
    EXPECT_EQ(collector.Dropped(), 0u);
    EXPECT_EQ(collector.ThreadCount(), 1u);
    {
        const Span span("again", &collector);
    }
    EXPECT_EQ(collector.TotalRecorded(), 1u);
}

TEST(ChromeTraceTest, EmitsCompleteEventsWithMetadata)
{
    SpanCollector collector(16);
    collector.Enable();
    {
        const Span outer("stage.outer", &collector);
        const Span inner("stage.inner", &collector);
    }
    collector.Disable();

    const std::string json = ToChromeTrace(
        collector.Dump(), collector.Dropped(),
        collector.PerThreadCapacity());
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stage.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"stage.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"depth\":1}"), std::string::npos);
    // The run metadata rides along under otherData.
    EXPECT_NE(json.find("\"otherData\":{\"type\":\"meta\""),
              std::string::npos);
    EXPECT_NE(json.find("\"span_per_thread_capacity\":16"),
              std::string::npos);
    EXPECT_NE(json.find("\"span_dropped\":0"), std::string::npos);
}

TEST(ChromeTraceTest, EmptyDumpIsStillAValidDocument)
{
    const std::string json = ToChromeTrace({}, 0, 8);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

// ------------------------------------------------------------ Streamer

TEST(SnapshotStreamerTest, WritesHeaderThenWholeLineSamples)
{
    Registry::Default().GetCounter("stream_test.marker")->Increment(5);
    const std::string path = ::testing::TempDir() + "obs_stream.jsonl";
    SnapshotStreamer streamer;
    ASSERT_TRUE(streamer.Start(path, 1));
    EXPECT_TRUE(streamer.Running());
    EXPECT_FALSE(streamer.Start(path, 1));  // refuses a double start.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    streamer.Stop();
    EXPECT_FALSE(streamer.Running());
    EXPECT_GE(streamer.Samples(), 1u);  // final sample at minimum.

    std::ifstream in(path);
    std::string line;
    size_t lineno = 0, samples = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // No torn records: every line is one complete JSON object.
        ASSERT_FALSE(line.empty());
        EXPECT_EQ(line.front(), '{') << "line " << lineno;
        EXPECT_EQ(line.back(), '}') << "line " << lineno;
        if (lineno == 1) {
            EXPECT_NE(line.find("\"type\":\"meta\""),
                      std::string::npos);
        } else {
            EXPECT_NE(line.find("\"type\":\"sample\""),
                      std::string::npos);
            EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
            EXPECT_NE(line.find("\"stream_test.marker\""),
                      std::string::npos);
            ++samples;
        }
    }
    std::remove(path.c_str());
    EXPECT_EQ(samples, streamer.Samples());
}

TEST(SnapshotStreamerTest, StopIsIdempotentAndStartReusable)
{
    const std::string path = ::testing::TempDir() + "obs_stream2.jsonl";
    SnapshotStreamer streamer;
    streamer.Stop();  // never started: no-op.
    ASSERT_TRUE(streamer.Start(path, 1));
    streamer.Stop();
    streamer.Stop();  // second stop: no-op.
    const uint64_t first_run = streamer.Samples();
    EXPECT_GE(first_run, 1u);
    // The same object can stream again after a stop.
    ASSERT_TRUE(streamer.Start(path, 1));
    EXPECT_TRUE(streamer.Running());
    streamer.Stop();
    std::remove(path.c_str());
}

TEST(SnapshotStreamerTest, StartFailsOnUnwritablePath)
{
    SnapshotStreamer streamer;
    EXPECT_FALSE(streamer.Start("/nonexistent-dir/x/y/z.jsonl", 10));
    EXPECT_FALSE(streamer.Running());
}

// --------------------------------------------- Quantile interpolation

TEST(HistogramTest, QuantileInterpolatesWithinOccupiedSlice)
{
    // Values uniform in [15, 20] land entirely inside the wide
    // (10, 100] bucket. Interpolating over the raw bucket edges would
    // report a median of ~55; tightening to the observed range reads
    // the true ~17.5 (see the estimator note in obs/metrics.h).
    Histogram h({10.0, 100.0});
    for (int i = 0; i <= 10; ++i)
        h.Observe(15.0 + 0.5 * i);  // 15, 15.5, ..., 20.
    EXPECT_NEAR(h.Quantile(0.5), 17.5, 1.0);
    EXPECT_LE(h.Quantile(0.99), 20.0);
    EXPECT_GE(h.Quantile(0.01), 15.0);
    // Ordering survives the tightening.
    EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
    EXPECT_LE(h.Quantile(0.9), h.Quantile(0.99));
}

TEST(HistogramTest, SnapshotCarriesBucketCounts)
{
    Histogram h({1.0, 10.0, 100.0});
    h.Observe(0.5);    // bucket 0.
    h.Observe(5.0);    // bucket 1.
    h.Observe(50.0);   // bucket 2.
    h.Observe(500.0);  // overflow.
    h.Observe(5.0);    // bucket 1 again.
    const HistogramSnapshot snap = h.Snapshot("t");
    ASSERT_EQ(snap.bounds.size(), 3u);
    ASSERT_EQ(snap.buckets.size(), 4u);
    EXPECT_EQ(snap.buckets[0], 1u);
    EXPECT_EQ(snap.buckets[1], 2u);
    EXPECT_EQ(snap.buckets[2], 1u);
    EXPECT_EQ(snap.buckets[3], 1u);
    uint64_t total = 0;
    for (uint64_t b : snap.buckets)
        total += b;
    EXPECT_EQ(total, snap.count);
}

// ------------------------------------------------ Prometheus rendering

TEST(PrometheusTextTest, RendersCountersGaugesAndHistograms)
{
    Registry registry;
    registry.GetCounter("prom.requests")->Increment(3);
    registry.GetGauge("prom.depth")->Set(2.5);
    Histogram* h = registry.GetHistogram("prom.lat_ns", {10.0, 100.0});
    h->Observe(5.0);
    h->Observe(50.0);
    h->Observe(500.0);

    const std::string text = ToPrometheusText(registry.Snapshot());

    // Counter: mangled name, _total suffix, dotted original as label.
    EXPECT_NE(text.find("# TYPE rumba_prom_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("rumba_prom_requests_total{"
                        "name=\"prom.requests\"} 3"),
              std::string::npos);
    // Gauge.
    EXPECT_NE(text.find("# TYPE rumba_prom_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("rumba_prom_depth{name=\"prom.depth\"} 2.5"),
              std::string::npos);
    // Histogram: cumulative le buckets, +Inf == _count, sum/count.
    EXPECT_NE(text.find("# TYPE rumba_prom_lat_ns histogram"),
              std::string::npos);
    EXPECT_NE(text.find("le=\"10\"} 1"), std::string::npos);
    EXPECT_NE(text.find("le=\"100\"} 2"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("rumba_prom_lat_ns_count{"
                        "name=\"prom.lat_ns\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("rumba_prom_lat_ns_sum{"), std::string::npos);
    // Companion min/max gauges.
    EXPECT_NE(text.find("rumba_prom_lat_ns_min{"), std::string::npos);
    EXPECT_NE(text.find("rumba_prom_lat_ns_max{"), std::string::npos);
    // Exposition ends with a newline (required by the format).
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), '\n');
}

// ---------------------------------------------- Observability server

TEST(ObservabilityServerTest, ServesMetricsHealthzAndStatusz)
{
    Registry::Default().GetCounter("server_test.pings")->Increment();

    ObservabilityServer server;
    ASSERT_TRUE(server.Start(0));  // ephemeral port.
    ASSERT_TRUE(server.Running());
    const uint16_t port = server.Port();
    ASSERT_NE(port, 0);

    std::string body;
    int status = 0;
    ASSERT_TRUE(HttpGet(port, "/healthz", &body, &status));
    EXPECT_EQ(status, 200);
    EXPECT_EQ(body, "ok\n");

    ASSERT_TRUE(HttpGet(port, "/metrics", &body, &status));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("# TYPE"), std::string::npos);
    EXPECT_NE(body.find("rumba_server_test_pings_total"),
              std::string::npos);

    ASSERT_TRUE(HttpGet(port, "/statusz", &body, &status));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);

    server.SetStatusProvider(
        [] { return std::string("{\"custom\":42}\n"); });
    ASSERT_TRUE(HttpGet(port, "/statusz", &body, &status));
    EXPECT_NE(body.find("\"custom\":42"), std::string::npos);
    server.SetStatusProvider(nullptr);  // default restored.
    ASSERT_TRUE(HttpGet(port, "/statusz", &body, &status));
    EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);

    ASSERT_TRUE(HttpGet(port, "/buildz", &body, &status));
    EXPECT_EQ(status, 200);
    EXPECT_NE(body.find("\"version\":"), std::string::npos);
    EXPECT_NE(body.find("\"git_describe\":"), std::string::npos);
    EXPECT_NE(body.find("\"build_type\":"), std::string::npos);

    ASSERT_TRUE(HttpGet(port, "/nope", &body, &status));
    EXPECT_EQ(status, 404);

    EXPECT_GE(server.RequestsServed(), 6u);
    server.Stop();
    EXPECT_FALSE(server.Running());
    server.Stop();  // idempotent.
}

TEST(ObservabilityServerTest, StopDoesNotDeadlockWithInFlightStatusz)
{
    // Regression: Stop() used to hold the server mutex across
    // thread_.join() while the serve thread's /statusz handler locked
    // the same mutex — a scrape racing shutdown hung both forever.
    ObservabilityServer server;
    ASSERT_TRUE(server.Start(0));
    const uint16_t port = server.Port();

    std::atomic<bool> in_provider{false};
    server.SetStatusProvider([&in_provider] {
        in_provider.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        return std::string("{\"slow\":true}\n");
    });

    std::thread scraper([port] {
        std::string body;
        int status = 0;
        HttpGet(port, "/statusz", &body, &status);
    });
    // Wait until the serve thread is inside the provider, then race
    // Stop() against it.
    while (!in_provider.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    server.Stop();
    EXPECT_FALSE(server.Running());
    scraper.join();
}

TEST(ObservabilityServerTest, StatusProviderClearIsOwnerChecked)
{
    ObservabilityServer server;
    ASSERT_TRUE(server.Start(0));
    const uint16_t port = server.Port();
    int owner_a = 0;
    int owner_b = 0;

    server.SetStatusProvider(
        [] { return std::string("{\"owner\":\"a\"}\n"); }, &owner_a);
    // A second installer takes over the route...
    server.SetStatusProvider(
        [] { return std::string("{\"owner\":\"b\"}\n"); }, &owner_b);
    // ...so the first owner's teardown must NOT clear it.
    server.ClearStatusProvider(&owner_a);

    std::string body;
    int status = 0;
    ASSERT_TRUE(HttpGet(port, "/statusz", &body, &status));
    EXPECT_NE(body.find("\"owner\":\"b\""), std::string::npos);

    // The actual owner's clear restores the default body.
    server.ClearStatusProvider(&owner_b);
    ASSERT_TRUE(HttpGet(port, "/statusz", &body, &status));
    EXPECT_NE(body.find("\"healthy\":true"), std::string::npos);
    server.Stop();
}

// --------------------------------------------------- SLO burn rates

TEST(SloMonitorTest, MultiWindowAlertFiresAndClearsWithHysteresis)
{
    SloConfig cfg;
    cfg.name = "slo_test";
    cfg.objective = 0.9;  // error budget 0.1: all-bad burns at 10x.
    cfg.fast_window_ns = 1000;
    cfg.slow_window_ns = 10000;
    cfg.buckets = 10;  // one bucket per fast window.
    cfg.fast_burn_alert = 5.0;
    cfg.slow_burn_alert = 2.0;
    cfg.min_events = 5;
    SloMonitor monitor(cfg);

    std::vector<SloAlert> edges;
    monitor.SetAlertSink(
        [&edges](const SloAlert& a) { edges.push_back(a); });

    // Below min_events nothing fires, however bad the stream.
    for (int i = 0; i < 4; ++i)
        monitor.Record(false, 10000 + i * 100);
    EXPECT_FALSE(monitor.Alerting());
    EXPECT_TRUE(edges.empty());

    // Crossing min_events with both windows saturated fires once.
    for (int i = 4; i < 10; ++i)
        monitor.Record(false, 10000 + i * 100);
    EXPECT_TRUE(monitor.Alerting());
    EXPECT_EQ(monitor.AlertCount(), 1u);
    EXPECT_NEAR(monitor.FastBurnRate(10900), 10.0, 1e-9);
    EXPECT_NEAR(monitor.SlowBurnRate(10900), 10.0, 1e-9);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_TRUE(edges[0].firing);
    EXPECT_EQ(edges[0].name, "slo_test");

    // A healthy fast window clears the alert (hysteresis: the slow
    // window still carries the bad events).
    monitor.Record(true, 12500);
    EXPECT_FALSE(monitor.Alerting());
    EXPECT_EQ(monitor.AlertCount(), 1u);  // fires counted, not clears.
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_FALSE(edges[1].firing);
    EXPECT_GT(monitor.SlowBurnRate(12500), 2.0);
    EXPECT_DOUBLE_EQ(monitor.FastBurnRate(12500), 0.0);
}

TEST(SloMonitorTest, AlertSinkMayReenterTheMonitor)
{
    // Regression: edges used to be delivered under the monitor's
    // non-recursive mutex, so a sink touching any accessor
    // self-deadlocked. Edges now arrive post-unlock.
    SloConfig cfg;
    cfg.name = "slo_reenter";
    cfg.objective = 0.9;
    cfg.fast_window_ns = 1000;
    cfg.slow_window_ns = 10000;
    cfg.buckets = 10;
    cfg.fast_burn_alert = 5.0;
    cfg.slow_burn_alert = 2.0;
    cfg.min_events = 5;
    SloMonitor monitor(cfg);

    bool alerting_inside_sink = false;
    double fast_inside_sink = 0.0;
    monitor.SetAlertSink([&](const SloAlert& a) {
        alerting_inside_sink = monitor.Alerting();
        fast_inside_sink = monitor.FastBurnRate(a.now_ns);
    });
    for (int i = 0; i < 6; ++i)
        monitor.Record(false, 10000 + i * 100);
    EXPECT_TRUE(monitor.Alerting());
    EXPECT_TRUE(alerting_inside_sink);
    EXPECT_NEAR(fast_inside_sink, 10.0, 1e-9);
}

TEST(SloMonitorTest, BurnRateTracksBadFraction)
{
    SloConfig cfg;
    cfg.name = "slo_frac";
    cfg.objective = 0.99;  // budget 0.01.
    cfg.fast_window_ns = 1000;
    cfg.slow_window_ns = 10000;
    cfg.buckets = 10;
    SloMonitor monitor(cfg);

    // 1 bad in 100 == exactly the provisioned budget: burn == 1.
    for (int i = 0; i < 99; ++i)
        monitor.Record(true, 5000);
    monitor.Record(false, 5000);
    EXPECT_NEAR(monitor.FastBurnRate(5000), 1.0, 1e-9);
    EXPECT_NEAR(monitor.SlowBurnRate(5000), 1.0, 1e-9);
    // Events outside the slow window stop counting.
    EXPECT_DOUBLE_EQ(monitor.SlowBurnRate(50000), 0.0);
}

// ------------------------------------------- Request-trace collector

RequestTrace
HealthyTrace(uint64_t id)
{
    RequestTrace trace;
    trace.trace_id = id;
    trace.outcome = RequestOutcome::kCompleted;
    trace.total_ns = 10;
    trace.spans.push_back({"device", 0, 10});
    return trace;
}

TEST(RequestTraceCollectorTest, TailPolicyKeepsFlaggedOutcomes)
{
    RequestTraceCollector collector(16);
    TailSamplingPolicy policy;
    policy.sample_every = 0;  // drop every unflagged trace.
    policy.latency_keep_ns = 1000;
    collector.Configure(policy);

    collector.Record(HealthyTrace(1));  // unflagged: sampled out.

    RequestTrace recovered = HealthyTrace(2);
    recovered.fixes = 3;
    collector.Record(recovered);

    RequestTrace breaker = HealthyTrace(3);
    breaker.breaker_state = 1;
    collector.Record(breaker);

    RequestTrace rejected = HealthyTrace(4);
    rejected.outcome = RequestOutcome::kRejected;
    collector.Record(rejected);

    RequestTrace slow = HealthyTrace(5);
    slow.total_ns = 5000;  // >= latency_keep_ns.
    collector.Record(slow);

    const auto kept = collector.Dump();
    ASSERT_EQ(kept.size(), 4u);
    EXPECT_EQ(kept[0].trace_id, 2u);
    EXPECT_EQ(kept[1].trace_id, 3u);
    EXPECT_EQ(kept[2].trace_id, 4u);
    EXPECT_EQ(kept[3].trace_id, 5u);
    EXPECT_EQ(collector.TotalRecorded(), 5u);
    EXPECT_EQ(collector.Sampled(), 1u);
}

TEST(RequestTraceCollectorTest, SamplesOneInNAndEvictsOldest)
{
    RequestTraceCollector collector(3);
    TailSamplingPolicy policy;
    policy.sample_every = 2;  // keep every second unflagged trace.
    collector.Configure(policy);

    for (uint64_t id = 1; id <= 10; ++id)
        collector.Record(HealthyTrace(id));
    // Ids 2, 4, 6, 8, 10 were kept; capacity 3 retains 6, 8, 10.
    const auto kept = collector.Dump();
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].trace_id, 6u);
    EXPECT_EQ(kept[1].trace_id, 8u);
    EXPECT_EQ(kept[2].trace_id, 10u);
    EXPECT_EQ(collector.Sampled(), 5u);
    EXPECT_EQ(collector.Evicted(), 2u);

    collector.Clear();
    EXPECT_EQ(collector.Size(), 0u);
    EXPECT_EQ(collector.TotalRecorded(), 0u);
}

TEST(RequestTraceCollectorTest, DisableCountsButKeepsNothing)
{
    RequestTraceCollector collector(4);
    TailSamplingPolicy keep_all;
    keep_all.sample_every = 1;
    collector.Configure(keep_all);
    collector.Disable();
    collector.Record(HealthyTrace(1));
    EXPECT_EQ(collector.Size(), 0u);
    EXPECT_EQ(collector.TotalRecorded(), 1u);
    collector.Enable();
    collector.Record(HealthyTrace(2));
    EXPECT_EQ(collector.Size(), 1u);
}

TEST(RequestTraceCollectorTest, ExactCapacityFillsWithoutEviction)
{
    RequestTraceCollector collector(4);
    TailSamplingPolicy keep_all;
    keep_all.sample_every = 1;
    collector.Configure(keep_all);
    for (uint64_t id = 1; id <= 4; ++id)
        collector.Record(HealthyTrace(id));
    // Exactly full: everything retained, nothing evicted yet.
    EXPECT_EQ(collector.Size(), 4u);
    EXPECT_EQ(collector.Evicted(), 0u);
    const auto kept = collector.Dump();
    ASSERT_EQ(kept.size(), 4u);
    for (uint64_t id = 1; id <= 4; ++id)
        EXPECT_EQ(kept[id - 1].trace_id, id);
    // The very next record crosses the boundary: one eviction.
    collector.Record(HealthyTrace(5));
    EXPECT_EQ(collector.Size(), 4u);
    EXPECT_EQ(collector.Evicted(), 1u);
    EXPECT_EQ(collector.Dump().front().trace_id, 2u);
}

TEST(RequestTraceCollectorTest, ForcedKeepEvictsHealthyWhenFull)
{
    RequestTraceCollector collector(3);
    TailSamplingPolicy keep_all;
    keep_all.sample_every = 1;
    collector.Configure(keep_all);
    for (uint64_t id = 1; id <= 3; ++id)
        collector.Record(HealthyTrace(id));  // ring now full.

    RequestTrace recovered = HealthyTrace(99);
    recovered.fixes = 2;
    collector.Record(recovered);
    // The flagged trace still lands; the oldest healthy one paid.
    const auto kept = collector.Dump();
    ASSERT_EQ(kept.size(), 3u);
    EXPECT_EQ(kept[0].trace_id, 2u);
    EXPECT_EQ(kept[2].trace_id, 99u);
    EXPECT_EQ(collector.Evicted(), 1u);
}

TEST(RequestTraceCollectorTest, WrappedRingExportsEachTraceOnce)
{
    RequestTraceCollector collector(4);
    TailSamplingPolicy keep_all;
    keep_all.sample_every = 1;
    collector.Configure(keep_all);
    for (uint64_t id = 1; id <= 10; ++id)
        collector.Record(HealthyTrace(id));  // wraps twice.

    const std::string jsonl =
        RequestTracesToJsonl(collector.Dump());
    // Exactly the last four ids, each exported exactly once.
    for (uint64_t id = 7; id <= 10; ++id) {
        const std::string key =
            "\"trace_id\":" + std::to_string(id) + ",";
        const size_t first = jsonl.find(key);
        EXPECT_NE(first, std::string::npos) << "missing id " << id;
        EXPECT_EQ(jsonl.find(key, first + 1), std::string::npos)
            << "duplicate id " << id;
    }
    EXPECT_EQ(jsonl.find("\"trace_id\":6,"), std::string::npos);
    size_t lines = 0;
    for (char c : jsonl)
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 5u);  // meta header + four traces.
}

TEST(RequestTraceCollectorTest, KeepsAuditedTracesUnlessDisabled)
{
    RequestTraceCollector collector(8);
    TailSamplingPolicy policy;
    policy.sample_every = 0;  // drop every unflagged trace.
    collector.Configure(policy);

    RequestTrace audited = HealthyTrace(1);
    audited.audited = true;
    collector.Record(audited);
    collector.Record(HealthyTrace(2));  // healthy, unaudited: dropped.
    ASSERT_EQ(collector.Size(), 1u);
    EXPECT_EQ(collector.Dump()[0].trace_id, 1u);
    EXPECT_NE(RequestTraceJson(collector.Dump()[0])
                  .find("\"audited\":true"),
              std::string::npos);

    policy.keep_audited = false;
    collector.Configure(policy);
    RequestTrace dropped = HealthyTrace(3);
    dropped.audited = true;
    collector.Record(dropped);
    EXPECT_EQ(collector.Size(), 1u);  // rule off: sampled away.
}

TEST(RequestTraceCollectorTest, TraceIdsAreUniqueAcrossClear)
{
    RequestTraceCollector collector(4);
    const uint64_t a = collector.NextTraceId();
    collector.Clear();
    const uint64_t b = collector.NextTraceId();
    EXPECT_GT(b, a);  // the sequence never restarts.
}

TEST(RequestTraceJsonTest, RendersOutcomeAndSpans)
{
    RequestTrace trace = HealthyTrace(77);
    trace.shard = 2;
    trace.batch_requests = 3;
    trace.spans.push_back({"queue_wait", 5, 7});
    const std::string json = RequestTraceJson(trace);
    EXPECT_NE(json.find("\"type\":\"reqtrace\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\":77"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"completed\""),
              std::string::npos);
    EXPECT_NE(json.find("\"batch_requests\":3"), std::string::npos);
    EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);

    const std::string jsonl = RequestTracesToJsonl({trace});
    EXPECT_NE(jsonl.find("\"type\":\"meta\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"type\":\"reqtrace\""), std::string::npos);
}

}  // namespace
}  // namespace rumba::obs
