// Unit tests for the error predictors: linear (EEP), decision tree
// (EEP), EMA (output-based) and the EVP value-prediction variant.

#include <gtest/gtest.h>

#include <cmath>

#include "common/dataset.h"
#include "common/random.h"
#include "predict/ema.h"
#include "predict/evp.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba::predict {
namespace {

/** inputs -> scalar error dataset for a given generator function. */
template <typename Fn>
Dataset
MakeErrorData(size_t n, size_t dims, uint64_t seed, Fn&& fn)
{
    Rng rng(seed);
    Dataset d(dims, 1);
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> x(dims);
        for (auto& v : x)
            v = rng.Uniform();
        d.Add(x, {fn(x)});
    }
    return d;
}

// -------------------------------------------------------------- Linear

TEST(LinearPredictorTest, RecoversLinearFunctionExactly)
{
    const auto fn = [](const std::vector<double>& x) {
        return 0.4 * x[0] - 0.2 * x[1] + 0.05;
    };
    const Dataset d = MakeErrorData(500, 2, 3, fn);
    LinearErrorPredictor p;
    p.Train(d);
    ASSERT_EQ(p.Weights().size(), 3u);
    EXPECT_NEAR(p.Weights()[0], 0.4, 1e-6);
    EXPECT_NEAR(p.Weights()[1], -0.2, 1e-6);
    EXPECT_NEAR(p.Weights()[2], 0.05, 1e-6);
    EXPECT_NEAR(p.PredictError({0.5, 0.5}, {}), 0.4 * 0.5 - 0.2 * 0.5 +
                                                    0.05,
                1e-6);
}

TEST(LinearPredictorTest, BestLinearFitOfNonlinear)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] * x[0];
    };
    const Dataset d = MakeErrorData(2000, 1, 7, fn);
    LinearErrorPredictor p;
    p.Train(d);
    // Least squares fit of x^2 on U[0,1] is ~ x - 1/6.
    EXPECT_NEAR(p.Weights()[0], 1.0, 0.05);
    EXPECT_NEAR(p.Weights()[1], -1.0 / 6.0, 0.03);
}

TEST(LinearPredictorTest, HandlesConstantFeature)
{
    Rng rng(9);
    Dataset d(2, 1);
    for (int i = 0; i < 200; ++i) {
        const double x = rng.Uniform();
        d.Add({x, 0.5}, {2.0 * x});  // second feature constant.
    }
    LinearErrorPredictor p;
    p.Train(d);
    EXPECT_NEAR(p.PredictError({0.25, 0.5}, {}), 0.5, 1e-3);
}

TEST(LinearPredictorTest, CostScalesWithInputs)
{
    const Dataset d = MakeErrorData(100, 6, 11, [](const auto& x) {
        return x[0];
    });
    LinearErrorPredictor p;
    p.Train(d);
    const sim::CheckerCost cost = p.CostPerCheck();
    EXPECT_DOUBLE_EQ(cost.macs, 7.0);  // 6 weights + bias.
    EXPECT_DOUBLE_EQ(cost.compares, 1.0);
    EXPECT_GT(cost.cycles, 0.0);
}

TEST(LinearPredictorTest, IsInputBased)
{
    LinearErrorPredictor p;
    EXPECT_TRUE(p.IsInputBased());
    EXPECT_EQ(p.Name(), "linearErrors");
}

// ----------------------------------------------------------------- Tree

TEST(TreePredictorTest, LearnsStepFunction)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] < 0.5 ? 0.1 : 0.9;
    };
    const Dataset d = MakeErrorData(1000, 1, 13, fn);
    TreeErrorPredictor p;
    p.Train(d);
    EXPECT_NEAR(p.PredictError({0.1}, {}), 0.1, 0.05);
    EXPECT_NEAR(p.PredictError({0.9}, {}), 0.9, 0.05);
}

TEST(TreePredictorTest, Learns2dQuadrants)
{
    const auto fn = [](const std::vector<double>& x) {
        return (x[0] < 0.5) == (x[1] < 0.5) ? 0.0 : 1.0;
    };
    const Dataset d = MakeErrorData(4000, 2, 17, fn);
    TreeErrorPredictor p;
    p.Train(d);
    EXPECT_LT(p.PredictError({0.2, 0.2}, {}), 0.25);
    EXPECT_GT(p.PredictError({0.2, 0.8}, {}), 0.75);
    EXPECT_GT(p.PredictError({0.8, 0.2}, {}), 0.75);
    EXPECT_LT(p.PredictError({0.8, 0.8}, {}), 0.25);
}

TEST(TreePredictorTest, RespectsDepthCap)
{
    // A hard target forces deep growth; depth must stay at the
    // paper's cap of 7.
    const auto fn = [](const std::vector<double>& x) {
        return std::sin(40.0 * x[0]);
    };
    const Dataset d = MakeErrorData(5000, 1, 19, fn);
    TreeErrorPredictor p;
    p.Train(d);
    EXPECT_LE(p.Depth(), 7u);
    EXPECT_GT(p.NumNodes(), 1u);
}

TEST(TreePredictorTest, ConfigurableDepth)
{
    const auto fn = [](const std::vector<double>& x) {
        return std::sin(40.0 * x[0]);
    };
    const Dataset d = MakeErrorData(5000, 1, 19, fn);
    TreeErrorPredictor::Options opt;
    opt.max_depth = 3;
    TreeErrorPredictor p(opt);
    p.Train(d);
    EXPECT_LE(p.Depth(), 3u);
}

TEST(TreePredictorTest, ConstantTargetStaysLeaf)
{
    const Dataset d = MakeErrorData(200, 2, 23, [](const auto&) {
        return 0.25;
    });
    TreeErrorPredictor p;
    p.Train(d);
    EXPECT_EQ(p.NumNodes(), 1u);
    EXPECT_NEAR(p.PredictError({0.5, 0.5}, {}), 0.25, 1e-9);
}

TEST(TreePredictorTest, MinLeafSamplesRespected)
{
    const auto fn = [](const std::vector<double>& x) { return x[0]; };
    const Dataset d = MakeErrorData(64, 1, 29, fn);
    TreeErrorPredictor::Options opt;
    opt.min_leaf_samples = 32;
    TreeErrorPredictor p(opt);
    p.Train(d);
    // 64 samples with a 32-sample floor allows at most one split.
    EXPECT_LE(p.NumNodes(), 3u);
}

TEST(TreePredictorTest, CostTracksDepth)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] < 0.5 ? 0.0 : 1.0;
    };
    const Dataset d = MakeErrorData(1000, 1, 31, fn);
    TreeErrorPredictor p;
    p.Train(d);
    const sim::CheckerCost cost = p.CostPerCheck();
    EXPECT_DOUBLE_EQ(cost.compares,
                     static_cast<double>(p.Depth()) + 1.0);
    EXPECT_DOUBLE_EQ(cost.macs, 0.0);  // comparisons only (Fig 7b).
}

TEST(TreePredictorTest, BeatsLinearOnStep)
{
    const auto fn = [](const std::vector<double>& x) {
        return x[0] < 0.3 ? 0.9 : 0.05;
    };
    const Dataset train = MakeErrorData(2000, 1, 37, fn);
    TreeErrorPredictor tree;
    LinearErrorPredictor linear;
    tree.Train(train);
    linear.Train(train);
    double tree_sse = 0.0, linear_sse = 0.0;
    Rng rng(41);
    for (int i = 0; i < 500; ++i) {
        const std::vector<double> x{rng.Uniform()};
        const double y = fn(x);
        tree_sse += std::pow(tree.PredictError(x, {}) - y, 2);
        linear_sse += std::pow(linear.PredictError(x, {}) - y, 2);
    }
    EXPECT_LT(tree_sse, linear_sse * 0.5);
}

// ------------------------------------------------------------------ EMA

TEST(EmaTest, FirstElementPrimesWithoutFiring)
{
    EmaDetector ema(8);
    EXPECT_DOUBLE_EQ(ema.PredictError({}, {0.7}), 0.0);
}

TEST(EmaTest, DetectsOutlierInSmoothStream)
{
    EmaDetector ema(8);
    for (int i = 0; i < 50; ++i)
        ema.PredictError({}, {0.5});
    const double spike = ema.PredictError({}, {0.9});
    EXPECT_NEAR(spike, 0.4, 1e-9);
    // Back to normal: deviation shrinks again.
    double after = 0.0;
    for (int i = 0; i < 20; ++i)
        after = ema.PredictError({}, {0.5});
    EXPECT_LT(after, 0.02);
}

TEST(EmaTest, AlphaFromHistory)
{
    EmaDetector ema(9);
    EXPECT_DOUBLE_EQ(ema.Alpha(), 0.2);
}

TEST(EmaTest, ResetClearsState)
{
    EmaDetector ema(4);
    ema.PredictError({}, {0.9});
    ema.PredictError({}, {0.9});
    ema.Reset();
    EXPECT_DOUBLE_EQ(ema.PredictError({}, {0.1}), 0.0);
}

TEST(EmaTest, MultiDimensionalDeviation)
{
    EmaDetector ema(8);
    ema.PredictError({}, {0.5, 0.5});
    const double dev = ema.PredictError({}, {0.7, 0.9});
    // Mean of |0.2| and |0.4|.
    EXPECT_NEAR(dev, 0.3, 1e-9);
}

TEST(EmaTest, TracksSlowDrift)
{
    EmaDetector ema(4);
    double worst = 0.0;
    double level = 0.2;
    ema.PredictError({}, {level});
    for (int i = 0; i < 100; ++i) {
        level += 0.002;  // slow drift stays under the radar.
        worst = std::max(worst, ema.PredictError({}, {level}));
    }
    EXPECT_LT(worst, 0.02);
}

TEST(EmaTest, IsOutputBasedAndUntrained)
{
    EmaDetector ema;
    EXPECT_FALSE(ema.IsInputBased());
    Dataset dummy(1, 1);
    dummy.Add({0.0}, {0.0});
    ema.Train(dummy);  // must be a harmless no-op.
    EXPECT_EQ(ema.Name(), "EMA");
}

// ------------------------------------------------------------------ EVP

TEST(EvpTest, PredictsOutputsAndDerivesError)
{
    Rng rng(43);
    Dataset d(1, 1);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.Uniform();
        d.Add({x}, {2.0 * x + 0.1});  // exact outputs.
    }
    ValuePredictionError evp;
    evp.Train(d);
    // Accelerator output equal to the exact value -> ~zero error.
    EXPECT_NEAR(evp.PredictError({0.4}, {0.9}), 0.0, 1e-6);
    // Accelerator output off by 0.3 -> ~0.3 predicted error.
    EXPECT_NEAR(evp.PredictError({0.4}, {1.2}), 0.3, 1e-6);
}

TEST(EvpTest, MultiOutput)
{
    Rng rng(47);
    Dataset d(1, 2);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.Uniform();
        d.Add({x}, {x, 1.0 - x});
    }
    ValuePredictionError evp;
    evp.Train(d);
    EXPECT_NEAR(evp.PredictError({0.3}, {0.3, 0.7}), 0.0, 1e-6);
    EXPECT_NEAR(evp.PredictError({0.3}, {0.5, 0.7}), 0.1, 1e-6);
}

TEST(EvpTest, EepBeatsEvpOnValueIndependentError)
{
    // Errors depend on the input but not via the output's linear
    // trend: EEP regresses them directly; EVP must first predict a
    // *nonlinear* output with a linear model and fails.
    Rng rng(53);
    Dataset exact(1, 1);   // for EVP: x -> exact output (nonlinear).
    Dataset errors(1, 1);  // for EEP: x -> |approx - exact|.
    std::vector<std::vector<double>> inputs;
    std::vector<std::vector<double>> approx;
    std::vector<double> true_err;
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.Uniform();
        const double out = std::sin(6.0 * x);  // nonlinear output.
        const double err = 0.3 * x;            // simple error trend.
        exact.Add({x}, {out});
        errors.Add({x}, {err});
        inputs.push_back({x});
        approx.push_back({out + err});
        true_err.push_back(err);
    }
    ValuePredictionError evp;
    evp.Train(exact);
    LinearErrorPredictor eep;
    eep.Train(errors);
    double evp_dist = 0.0, eep_dist = 0.0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        evp_dist +=
            std::fabs(evp.PredictError(inputs[i], approx[i]) -
                      true_err[i]);
        eep_dist +=
            std::fabs(eep.PredictError(inputs[i], approx[i]) -
                      true_err[i]);
    }
    // The paper's Section 3.2 observation: EEP is markedly closer.
    EXPECT_LT(eep_dist * 2.0, evp_dist);
}

}  // namespace
}  // namespace rumba::predict
