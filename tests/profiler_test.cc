// Tests for the live cost & efficiency profiler (obs/profiler.h):
// StageScope thread-CPU attribution summing to the wall thread-CPU
// bracket, CpuProfiler counter/histogram/efficiency semantics against
// a private registry, the sampling profiler's folded-stack output
// (shard frames, same-tag dedup, RUMBA_PROFILE_HZ=0 as a true no-op),
// the /profilez JSON body, the snapshot streamer's changed-only gauge
// suppression, and an engine-level race of the env sampler against
// ShardedEngine::Shutdown (exercised under TSan in ci.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "apps/benchmark.h"
#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/runtime.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/stream.h"
#include "serve/engine.h"
#include "sim/system_model.h"

namespace rumba {
namespace {

// ------------------------------------------------------------ helpers

/** Burn CPU long enough for CLOCK_THREAD_CPUTIME_ID to see it. */
double
Burn(int iters = 400000)
{
    volatile double acc = 0.0;
    for (int i = 0; i < iters; ++i)
        acc = acc + static_cast<double>(i) * 1e-9;
    return acc;
}

/** Number of "t_ms" sample lines, and lines containing @p needle. */
struct LineStats {
    int samples = 0;
    int matches = 0;
};

LineStats
CountSampleLines(const std::string& path, const std::string& needle)
{
    LineStats stats;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"type\":\"sample\"") == std::string::npos)
            continue;
        ++stats.samples;
        if (line.find(needle) != std::string::npos)
            ++stats.matches;
    }
    return stats;
}

// --------------------------------------------------------- stage names

TEST(ProfileStageTest, NamesAreStable)
{
    EXPECT_STREQ(obs::ProfileStageName(obs::ProfileStage::kQueueWait),
                 "queue_wait");
    EXPECT_STREQ(obs::ProfileStageName(obs::ProfileStage::kDevice),
                 "device");
    EXPECT_STREQ(
        obs::ProfileStageName(obs::ProfileStage::kPredictCheck),
        "predict_check");
    EXPECT_STREQ(obs::ProfileStageName(obs::ProfileStage::kRecover),
                 "recover");
    EXPECT_STREQ(obs::ProfileStageName(obs::ProfileStage::kAudit),
                 "audit");
}

TEST(ProfileStageTest, ThreadCpuClockAdvancesUnderWork)
{
    const int64_t before = obs::ThreadCpuNowNs();
    Burn();
    const int64_t after = obs::ThreadCpuNowNs();
    EXPECT_GT(after, before);
}

// --------------------------------------------------------- StageScope

TEST(StageScopeTest, AttributionSumsToThreadCpuBracket)
{
    int64_t device_ns = 0;
    int64_t check_ns = 0;
    int64_t recover_ns = 0;

    const int64_t bracket_start = obs::ThreadCpuNowNs();
    {
        const obs::StageScope scope(obs::ProfileStage::kDevice,
                                    /*account=*/true, &device_ns);
        Burn();
    }
    {
        const obs::StageScope scope(obs::ProfileStage::kPredictCheck,
                                    /*account=*/true, &check_ns);
        Burn();
    }
    {
        const obs::StageScope scope(obs::ProfileStage::kRecover,
                                    /*account=*/true, &recover_ns);
        Burn();
    }
    const int64_t bracket_ns = obs::ThreadCpuNowNs() - bracket_start;

    EXPECT_GT(device_ns, 0);
    EXPECT_GT(check_ns, 0);
    EXPECT_GT(recover_ns, 0);

    // The three scopes cover everything inside the bracket except a
    // few clock reads, so their sum tracks the bracket's thread-CPU
    // delta: never above it (plus scheduler-noise slack), and at
    // least half of it even on a badly preempted CI machine.
    const int64_t sum = device_ns + check_ns + recover_ns;
    EXPECT_LE(sum, bracket_ns + 1000000);
    EXPECT_GE(sum, bracket_ns / 2);
}

TEST(StageScopeTest, UnaccountedScopeLeavesSinkUntouched)
{
    int64_t sink_ns = 0;
    {
        const obs::StageScope scope(obs::ProfileStage::kDevice,
                                    /*account=*/false, &sink_ns);
        Burn(50000);
    }
    EXPECT_EQ(sink_ns, 0);
}

// -------------------------------------------------------- CpuProfiler

TEST(CpuProfilerTest, RecordInvocationAccumulatesStageCounters)
{
    obs::Registry registry;
    obs::CpuProfiler profiler(&registry);

    obs::CpuProfiler::InvocationCpu cpu;
    cpu.device_ns = 2000000;         // 2 ms
    cpu.predict_check_ns = 1000000;  // 1 ms
    cpu.recover_ns = 1000000;        // 1 ms
    profiler.RecordInvocation(/*shard=*/1, cpu);

    EXPECT_NEAR(profiler.StageSeconds(obs::ProfileStage::kDevice),
                0.002, 1e-12);
    EXPECT_NEAR(
        profiler.StageSeconds(obs::ProfileStage::kPredictCheck), 0.001,
        1e-12);
    EXPECT_NEAR(profiler.StageSeconds(obs::ProfileStage::kRecover),
                0.001, 1e-12);
    EXPECT_DOUBLE_EQ(profiler.StageSeconds(obs::ProfileStage::kMerge),
                     0.0);
    EXPECT_EQ(profiler.Invocations(), 1u);

    // The per-shard series registers lazily under shard1.
    const obs::RegistrySnapshot snapshot = registry.Snapshot();
    bool total_found = false;
    bool shard_found = false;
    for (const obs::DoubleCounterSnapshot& c : snapshot.dcounters) {
        if (c.name == "cpu_stage_seconds.device") {
            total_found = true;
            EXPECT_NEAR(c.value, 0.002, 1e-12);
        }
        if (c.name == "cpu_stage_seconds.shard1.device") {
            shard_found = true;
            EXPECT_NEAR(c.value, 0.002, 1e-12);
        }
    }
    EXPECT_TRUE(total_found);
    EXPECT_TRUE(shard_found);

    // Stage shares: device was 2 of 4 attributed ms -> share 0.5.
    bool share_found = false;
    for (const obs::HistogramSnapshot& h : snapshot.histograms) {
        if (h.name != "profile.stage_share.device")
            continue;
        share_found = true;
        EXPECT_EQ(h.count, 1u);
        EXPECT_NEAR(h.sum, 0.5, 1e-9);
    }
    EXPECT_TRUE(share_found);
}

TEST(CpuProfilerTest, AddStageCpuNsFeedsTotals)
{
    obs::Registry registry;
    obs::CpuProfiler profiler(&registry);
    profiler.AddStageCpuNs(obs::ProfileStage::kAudit, /*shard=*/-1,
                           5000000);
    profiler.AddStageCpuNs(obs::ProfileStage::kAudit, /*shard=*/-1,
                           5000000);
    EXPECT_NEAR(profiler.StageSeconds(obs::ProfileStage::kAudit), 0.01,
                1e-12);
    // shard < 0: no per-shard series appears.
    for (const obs::DoubleCounterSnapshot& c :
         registry.Snapshot().dcounters)
        EXPECT_EQ(c.name.find("shard"), std::string::npos) << c.name;
}

TEST(CpuProfilerTest, RecordCostsDrivesEfficiencyGauges)
{
    obs::Registry registry;
    obs::CpuProfiler profiler(&registry);

    EXPECT_FALSE(profiler.Efficiency().Valid());

    sim::SystemCosts costs;
    costs.baseline_app_ns = 100.0;
    costs.scheme_app_ns = 25.0;   // 4x speedup.
    costs.baseline_app_nj = 100.0;
    costs.scheme_app_nj = 50.0;   // energy ratio 0.5.
    profiler.RecordCosts(costs);
    profiler.RecordCosts(costs);

    const sim::EfficiencyEstimate estimate = profiler.Efficiency();
    ASSERT_TRUE(estimate.Valid());
    EXPECT_EQ(estimate.window, 2u);
    EXPECT_EQ(estimate.invocations, 2u);
    EXPECT_NEAR(estimate.speedup, 4.0, 1e-9);
    EXPECT_NEAR(estimate.energy_ratio, 0.5, 1e-9);

    bool speedup_found = false;
    bool energy_found = false;
    for (const obs::GaugeSnapshot& g : registry.Snapshot().gauges) {
        if (g.name == "efficiency.speedup_estimate") {
            speedup_found = true;
            EXPECT_NEAR(g.value, 4.0, 1e-9);
        }
        if (g.name == "efficiency.energy_ratio") {
            energy_found = true;
            EXPECT_NEAR(g.value, 0.5, 1e-9);
        }
    }
    EXPECT_TRUE(speedup_found);
    EXPECT_TRUE(energy_found);
}

// -------------------------------------------------- sampling profiler

TEST(SamplingProfilerTest, FoldedOutputParsesAndCarriesShardFrames)
{
    const std::string path =
        ::testing::TempDir() + "profiler_test.folded";
    std::remove(path.c_str());

    std::atomic<bool> stop{false};
    std::atomic<bool> staged{false};
    // Worker holds a stable shard3 -> device -> predict_check stack,
    // with a redundant nested device scope the dedup must elide.
    std::thread worker([&] {
        obs::BindThreadShard(3);
        const obs::StageScope device(obs::ProfileStage::kDevice);
        const obs::StageScope dup(obs::ProfileStage::kDevice);
        const obs::StageScope check(obs::ProfileStage::kPredictCheck);
        staged.store(true);
        while (!stop.load())
            Burn(20000);
    });
    while (!staged.load())
        std::this_thread::yield();

    obs::SamplingProfiler sampler;
    sampler.Start(/*hz=*/2000.0, path);
    EXPECT_TRUE(sampler.Running());
    EXPECT_NEAR(sampler.Hz(), 2000.0, 1e-9);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    sampler.Stop();
    EXPECT_FALSE(sampler.Running());
    EXPECT_GT(sampler.Samples(), 0u);

    stop.store(true);
    worker.join();

    // The in-memory fold saw the worker's full stack, deduped.
    bool tagged = false;
    for (const obs::FoldedStack& f : sampler.Folded()) {
        EXPECT_GT(f.count, 0u);
        EXPECT_EQ(f.stack.find("device;device"), std::string::npos)
            << f.stack;
        if (f.stack.find("shard3;device;predict_check") !=
            std::string::npos)
            tagged = true;
    }
    EXPECT_TRUE(tagged);

    // The dump parses as flamegraph "stack count" lines and matches.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    int lines = 0;
    bool file_tagged = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        const size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        ASSERT_GT(space, 0u) << line;
        const std::string count = line.substr(space + 1);
        ASSERT_FALSE(count.empty()) << line;
        EXPECT_GT(std::strtoull(count.c_str(), nullptr, 10), 0u)
            << line;
        if (line.find("shard3;device;predict_check") !=
            std::string::npos)
            file_tagged = true;
    }
    EXPECT_GT(lines, 0);
    EXPECT_TRUE(file_tagged);
    std::remove(path.c_str());
}

TEST(SamplingProfilerTest, ZeroHzIsATrueNoop)
{
    const std::string path =
        ::testing::TempDir() + "profiler_test_zero.folded";
    std::remove(path.c_str());
    obs::SamplingProfiler sampler;
    sampler.Start(/*hz=*/0.0, path);
    EXPECT_FALSE(sampler.Running());
    EXPECT_EQ(sampler.Samples(), 0u);
    sampler.Stop();  // safe when never started; writes no dump.
    std::ifstream in(path);
    EXPECT_FALSE(in.good());
}

TEST(SamplingProfilerTest, EnvZeroHzDisablesTheSharedSampler)
{
    setenv("RUMBA_PROFILE_HZ", "0", 1);
    obs::SamplingProfiler* sampler = obs::SamplingProfiler::AcquireFromEnv();
    ASSERT_NE(sampler, nullptr);
    EXPECT_FALSE(sampler->Running());
    obs::SamplingProfiler::Release();
    unsetenv("RUMBA_PROFILE_HZ");
}

TEST(SamplingProfilerTest, EnvUnsetSpawnsNoThread)
{
    // Opt-in contract: with neither RUMBA_PROFILE_HZ nor
    // RUMBA_PROFILE_OUT set, acquiring the shared sampler must not
    // start one (thread wakeups cost real scheduler CPU).
    unsetenv("RUMBA_PROFILE_HZ");
    unsetenv("RUMBA_PROFILE_OUT");
    obs::SamplingProfiler* sampler = obs::SamplingProfiler::AcquireFromEnv();
    ASSERT_NE(sampler, nullptr);
    EXPECT_FALSE(sampler->Running());
    obs::SamplingProfiler::Release();
}

// ----------------------------------------------------- /profilez JSON

TEST(ProfilezJsonTest, CarriesSchemaStagesSamplerAndEfficiency)
{
    const std::string body = obs::ProfilezJson();
    EXPECT_NE(body.find("\"schema_version\":1"), std::string::npos);
    EXPECT_NE(body.find("\"cpu_seconds\""), std::string::npos);
    EXPECT_NE(body.find("\"device\""), std::string::npos);
    EXPECT_NE(body.find("\"predict_check\""), std::string::npos);
    EXPECT_NE(body.find("\"total\""), std::string::npos);
    EXPECT_NE(body.find("\"stage_share\""), std::string::npos);
    EXPECT_NE(body.find("\"sampler\""), std::string::npos);
    EXPECT_NE(body.find("\"hz\""), std::string::npos);
    EXPECT_NE(body.find("\"efficiency\""), std::string::npos);
    EXPECT_NE(body.find("\"speedup_estimate\""), std::string::npos);
    EXPECT_NE(body.find("\"energy_ratio\""), std::string::npos);
    // rumba-stat's mini JSON parser has no array support; /profilez
    // must stay array-free.
    EXPECT_EQ(body.find('['), std::string::npos);
}

// ------------------------------------------- streamer changed-only

TEST(SnapshotStreamerTest, ChangedOnlySuppressesStableGauges)
{
    const std::string gauge_name = "test.profiler.changed_only";
    obs::Gauge* gauge =
        obs::Registry::Default().GetGauge(gauge_name);
    gauge->Set(1.25);

    const std::string path =
        ::testing::TempDir() + "profiler_changed_only.jsonl";
    obs::SnapshotStreamer streamer;
    streamer.SetChangedOnly(true);
    EXPECT_TRUE(streamer.ChangedOnly());
    ASSERT_TRUE(streamer.Start(path, /*period_ms=*/1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gauge->Set(2.5);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    streamer.Stop();

    // The gauge changed value once, so it appears in exactly two
    // samples (its first observation and the change); every other
    // sample suppresses it. Stop()'s guaranteed final sample makes
    // the post-change appearance deterministic.
    const LineStats stats =
        CountSampleLines(path, "\"" + gauge_name + "\"");
    EXPECT_GE(stats.samples, 3);
    EXPECT_EQ(stats.matches, 2);
    std::remove(path.c_str());
}

TEST(SnapshotStreamerTest, DefaultModeRepeatsGaugesEverySample)
{
    const std::string gauge_name = "test.profiler.always_on";
    obs::Registry::Default().GetGauge(gauge_name)->Set(3.75);

    const std::string path =
        ::testing::TempDir() + "profiler_always_on.jsonl";
    obs::SnapshotStreamer streamer;
    EXPECT_FALSE(streamer.ChangedOnly());
    ASSERT_TRUE(streamer.Start(path, /*period_ms=*/1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    streamer.Stop();

    const LineStats stats =
        CountSampleLines(path, "\"" + gauge_name + "\"");
    EXPECT_GE(stats.samples, 2);
    EXPECT_EQ(stats.matches, stats.samples);
    std::remove(path.c_str());
}

// ------------------------------------------------ engine integration

core::RuntimeConfig
ServeRuntimeConfig()
{
    return core::RuntimeConfig::Builder()
        .WithChecker(core::Scheme::kTree)
        .WithTargetErrorPct(10.0)
        .WithTrainEpochs(30)
        .WithElementCaps(800, 400)
        .Build();
}

const core::Artifact&
SharedArtifact()
{
    static const core::Artifact artifact = [] {
        core::RumbaRuntime trained(apps::MakeBenchmark("inversek2j"),
                                   ServeRuntimeConfig());
        return trained.ExportArtifact();
    }();
    return artifact;
}

serve::InvocationRequest
MakeRequest(size_t start_element, size_t count)
{
    static const std::vector<double> flat = [] {
        const auto bench = apps::MakeBenchmark("inversek2j");
        return core::FlattenBatch(bench->TestInputs());
    }();
    serve::InvocationRequest request;
    request.width = 2;  // inversek2j input arity.
    request.count = count;
    request.inputs.assign(
        flat.begin() + static_cast<ptrdiff_t>(start_element * 2),
        flat.begin() +
            static_cast<ptrdiff_t>((start_element + count) * 2));
    return request;
}

/** The engine races the env sampler against Shutdown (TSan target)
 *  and must leave device/check CPU and an efficiency estimate behind
 *  in the process-wide profiler. */
TEST(ProfilerEngineTest, EngineFeedsProfilerAndRacesSamplerShutdown)
{
    const std::string folded =
        ::testing::TempDir() + "profiler_engine.folded";
    std::remove(folded.c_str());
    setenv("RUMBA_PROFILE_HZ", "1499", 1);  // fast prime: many ticks.
    setenv("RUMBA_PROFILE_OUT", folded.c_str(), 1);

    obs::CpuProfiler& profiler = obs::CpuProfiler::Default();
    const double device_before =
        profiler.StageSeconds(obs::ProfileStage::kDevice);
    const double check_before =
        profiler.StageSeconds(obs::ProfileStage::kPredictCheck);
    const uint64_t invocations_before = profiler.Invocations();

    serve::ServeConfig config;
    config.shards = 2;
    ASSERT_TRUE(config.profile.enabled);  // on by default.
    auto engine = serve::ShardedEngine::Create(
        SharedArtifact(), ServeRuntimeConfig(), config);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    std::vector<std::future<serve::InvocationResult>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(
            (*engine)->Submit(MakeRequest(i * 16, 16)));
    for (auto& f : futures)
        EXPECT_TRUE(f.get().status.ok());

    EXPECT_GT(profiler.StageSeconds(obs::ProfileStage::kDevice),
              device_before);
    EXPECT_GT(profiler.StageSeconds(obs::ProfileStage::kPredictCheck),
              check_before);
    EXPECT_GT(profiler.Invocations(), invocations_before);
    const sim::EfficiencyEstimate estimate = profiler.Efficiency();
    ASSERT_TRUE(estimate.Valid());
    EXPECT_GT(estimate.speedup, 0.0);
    EXPECT_GT(estimate.energy_ratio, 0.0);

    // Shutdown while the 1499 Hz env sampler is mid-flight: the
    // worker-thread slots die as the sampler walks them (the race
    // TSan checks), and the last release writes the folded dump.
    (*engine)->Shutdown();

    std::ifstream in(folded);
    EXPECT_TRUE(in.good());
    std::remove(folded.c_str());
    unsetenv("RUMBA_PROFILE_HZ");
    unsetenv("RUMBA_PROFILE_OUT");
}

}  // namespace
}  // namespace rumba
