// Unit tests for the timing/energy substrate: operation counting,
// the CPU cycle model, the event energy model and the whole-system
// composition.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/cpu_model.h"
#include "sim/energy_model.h"
#include "sim/opcount.h"
#include "sim/system_model.h"

namespace rumba::sim {
namespace {

// --------------------------------------------------------------- OpCounts

TEST(OpCountsTest, AccumulateAndScale)
{
    OpCounts a;
    a.fp_add = 2;
    a.load = 4;
    OpCounts b;
    b.fp_add = 1;
    b.branch = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.fp_add, 3.0);
    EXPECT_DOUBLE_EQ(a.branch, 3.0);
    const OpCounts half = a.Scaled(0.5);
    EXPECT_DOUBLE_EQ(half.load, 2.0);
    EXPECT_DOUBLE_EQ(half.Total(), a.Total() / 2.0);
}

TEST(CountingScalarTest, CountsArithmetic)
{
    CountingScalar::ResetCounts();
    CountingScalar a(2.0), b(3.0);
    CountingScalar c = a * b + a - b;
    c /= a;
    const OpCounts& ops = CountingScalar::Counts();
    EXPECT_DOUBLE_EQ(ops.fp_mul, 1.0);
    EXPECT_DOUBLE_EQ(ops.fp_add, 2.0);
    EXPECT_DOUBLE_EQ(ops.fp_div, 1.0);
    EXPECT_DOUBLE_EQ(c.Value(), (2.0 * 3.0 + 2.0 - 3.0) / 2.0);
}

TEST(CountingScalarTest, CountsComparisonsAsBranches)
{
    CountingScalar::ResetCounts();
    CountingScalar a(1.0), b(2.0);
    (void)(a < b);
    (void)(a >= b);
    EXPECT_DOUBLE_EQ(CountingScalar::Counts().branch, 2.0);
}

TEST(CountingScalarTest, ValuesMatchPlainDoubles)
{
    CountingScalar::ResetCounts();
    const CountingScalar x(0.7);
    EXPECT_DOUBLE_EQ(Sqrt(x).Value(), std::sqrt(0.7));
    EXPECT_DOUBLE_EQ(Exp(x).Value(), std::exp(0.7));
    EXPECT_DOUBLE_EQ(Sin(x).Value(), std::sin(0.7));
    EXPECT_DOUBLE_EQ(Cos(x).Value(), std::cos(0.7));
    EXPECT_DOUBLE_EQ(Log(x).Value(), std::log(0.7));
    EXPECT_DOUBLE_EQ(Fabs(CountingScalar(-0.7)).Value(), 0.7);
    EXPECT_DOUBLE_EQ(Atan2(x, x).Value(), std::atan2(0.7, 0.7));
}

TEST(CountingScalarTest, TranscendentalsCostMoreThanAdds)
{
    CountingScalar::ResetCounts();
    (void)Sin(CountingScalar(0.3));
    const double sin_ops = CountingScalar::Counts().Total();
    CountingScalar::ResetCounts();
    (void)(CountingScalar(0.3) + CountingScalar(0.4));
    const double add_ops = CountingScalar::Counts().Total();
    EXPECT_GT(sin_ops, 10 * add_ops);
}

TEST(CountingScalarTest, SqrtIsHardwareOp)
{
    CountingScalar::ResetCounts();
    (void)Sqrt(CountingScalar(2.0));
    EXPECT_DOUBLE_EQ(CountingScalar::Counts().fp_sqrt, 1.0);
    EXPECT_DOUBLE_EQ(CountingScalar::Counts().fp_add, 0.0);
}

TEST(CountingScalarTest, RecordMemory)
{
    CountingScalar::ResetCounts();
    CountingScalar::RecordMemory(5, 2);
    EXPECT_DOUBLE_EQ(CountingScalar::Counts().load, 5.0);
    EXPECT_DOUBLE_EQ(CountingScalar::Counts().store, 2.0);
}

// --------------------------------------------------------------- CpuModel

TEST(CpuModelTest, IssueWidthBound)
{
    CoreParams params;
    CpuModel cpu(params);
    OpCounts ops;
    // Balanced mix that stresses issue width, not one FU class.
    ops.int_op = 60;
    ops.fp_add = 60;
    ops.load = 50;
    const CycleBreakdown b = cpu.Cycles(ops);
    EXPECT_GT(b.total, 0.0);
    EXPECT_GE(b.total,
              ops.Total() / static_cast<double>(params.issue_width));
}

TEST(CpuModelTest, FpDivOccupancyDominates)
{
    CpuModel cpu;
    OpCounts divs;
    divs.fp_div = 10;
    OpCounts adds;
    adds.fp_add = 10;
    EXPECT_GT(cpu.Cycles(divs).total, 5.0 * cpu.Cycles(adds).total);
}

TEST(CpuModelTest, MoreWorkMoreCycles)
{
    CpuModel cpu;
    OpCounts small;
    small.fp_add = 10;
    OpCounts big = small.Scaled(10.0);
    EXPECT_NEAR(cpu.Cycles(big).total, 10.0 * cpu.Cycles(small).total,
                1e-9);
}

TEST(CpuModelTest, BranchMispredictionPenalty)
{
    CpuModel cpu;
    OpCounts ops;
    ops.branch = 100;
    const CycleBreakdown b = cpu.Cycles(ops);
    const CoreParams& p = cpu.Params();
    EXPECT_NEAR(b.branch_penalty,
                100.0 * p.branch_misp_rate *
                    static_cast<double>(p.branch_misp_penalty),
                1e-9);
}

TEST(CpuModelTest, NanosecondsUsesFrequency)
{
    CoreParams params;
    params.frequency_ghz = 4.0;
    CpuModel cpu(params);
    OpCounts ops;
    ops.fp_add = 8;
    EXPECT_NEAR(cpu.Nanoseconds(ops), cpu.Cycles(ops).total / 4.0, 1e-12);
}

TEST(CpuModelTest, Table2Defaults)
{
    const CoreParams p;
    EXPECT_EQ(p.fetch_width, 4u);
    EXPECT_EQ(p.issue_width, 6u);
    EXPECT_EQ(p.int_alus, 2u);
    EXPECT_EQ(p.fpus, 2u);
    EXPECT_EQ(p.rob_entries, 96u);
    EXPECT_EQ(p.issue_queue_entries, 32u);
    EXPECT_EQ(p.l1_dcache_kb, 32u);
    EXPECT_EQ(p.l2_size_mb, 2u);
    EXPECT_EQ(p.l1_hit_cycles, 3u);
    EXPECT_EQ(p.l2_hit_cycles, 12u);
    EXPECT_EQ(p.btb_entries, 2048u);
    EXPECT_EQ(p.ras_entries, 16u);
    EXPECT_STREQ(p.branch_predictor, "Tournament");
}

// ------------------------------------------------------------ EnergyModel

TEST(EnergyModelTest, DynamicEnergyScalesWithOps)
{
    EnergyModel em;
    OpCounts ops;
    ops.fp_add = 100;
    const double e1 = em.CpuDynamicNj(ops);
    const double e2 = em.CpuDynamicNj(ops.Scaled(3.0));
    EXPECT_NEAR(e2, 3.0 * e1, 1e-9);
    EXPECT_GT(e1, 0.0);
}

TEST(EnergyModelTest, StaticEnergyIsPowerTimesTime)
{
    EnergyParams params;
    params.cpu_busy_static_w = 2.0;
    EnergyModel em(params);
    EXPECT_DOUBLE_EQ(em.CpuBusyStaticNj(100.0), 200.0);
}

TEST(EnergyModelTest, IdleCheaperThanBusy)
{
    EnergyModel em;
    EXPECT_LT(em.CpuIdleStaticNj(50.0), em.CpuBusyStaticNj(50.0));
}

TEST(EnergyModelTest, NpuMacsAreCheap)
{
    EnergyModel em;
    // One CPU FP add (incl. pipeline overhead) costs far more than
    // one NPU fixed-point MAC — the core premise of the accelerator.
    OpCounts one_add;
    one_add.fp_add = 1;
    EXPECT_GT(em.CpuDynamicNj(one_add), 10 * em.NpuDynamicNj(1, 0, 0));
}

TEST(EnergyModelTest, BreakdownSumsToTotal)
{
    EnergyModel em;
    OpCounts ops;
    ops.int_op = 10;
    ops.int_mul = 2;
    ops.fp_add = 30;
    ops.fp_mul = 25;
    ops.fp_div = 3;
    ops.fp_sqrt = 1;
    ops.load = 12;
    ops.store = 4;
    ops.branch = 8;
    const CpuEnergyBreakdown b = em.CpuBreakdown(ops);
    EXPECT_NEAR(b.total_nj,
                b.frontend_nj + b.int_exec_nj + b.fp_exec_nj + b.lsu_nj +
                    b.branch_nj,
                1e-12);
    EXPECT_NEAR(b.total_nj, em.CpuDynamicNj(ops), 1e-12);
    EXPECT_GT(b.frontend_nj, 0.0);
    EXPECT_GT(b.fp_exec_nj, b.int_exec_nj);
}

TEST(EnergyModelTest, FrontendDominatesTypicalMixes)
{
    // The accelerator's premise: pipeline overhead per uop dwarfs the
    // useful arithmetic on a general-purpose core.
    EnergyModel em;
    OpCounts ops;
    ops.fp_add = 50;
    ops.fp_mul = 50;
    ops.load = 10;
    const CpuEnergyBreakdown b = em.CpuBreakdown(ops);
    EXPECT_GT(b.frontend_nj, 0.5 * b.total_nj);
}

TEST(EnergyModelTest, CheckerEnergyComposition)
{
    EnergyModel em;
    CheckerCost cost;
    cost.macs = 7;
    cost.compares = 1;
    cost.table_reads = 7;
    const double one = em.CheckerDynamicNj(cost, 1.0);
    const double many = em.CheckerDynamicNj(cost, 1000.0);
    EXPECT_NEAR(many, 1000.0 * one, 1e-9);
    const EnergyParams& p = em.Params();
    EXPECT_NEAR(one,
                (7 * p.chk_mac_pj + p.chk_compare_pj + 7 * p.chk_table_pj) *
                    1e-3,
                1e-12);
}

// ------------------------------------------------------------ SystemModel

SystemModel
MakeSystem()
{
    return SystemModel(CoreParams(), EnergyParams());
}

RegionProfile
MakeRegion(double flops = 100, size_t iters = 1000, double fraction = 0.9)
{
    RegionProfile region;
    region.cpu_ops_per_iter.fp_add = flops / 2;
    region.cpu_ops_per_iter.fp_mul = flops / 2;
    region.cpu_ops_per_iter.load = 4;
    region.cpu_ops_per_iter.store = 1;
    region.iterations = iters;
    region.region_fraction = fraction;
    return region;
}

AcceleratorProfile
MakeAccel(size_t cycles = 20)
{
    AcceleratorProfile accel;
    accel.cycles_per_invocation = cycles;
    accel.frequency_ghz = 2.0;
    accel.macs_per_invocation = 50;
    accel.luts_per_invocation = 8;
    accel.queue_words_per_invocation = 5;
    return accel;
}

TEST(SystemModelTest, BaselineAmdahl)
{
    const SystemModel sys = MakeSystem();
    const SystemCosts costs = sys.Baseline(MakeRegion(100, 1000, 0.5));
    EXPECT_NEAR(costs.baseline_app_ns, 2.0 * costs.baseline_region_ns,
                1e-9);
    EXPECT_NEAR(costs.baseline_app_nj, 2.0 * costs.baseline_region_nj,
                1e-9);
}

TEST(SystemModelTest, UncheckedAcceleratorWins)
{
    const SystemModel sys = MakeSystem();
    const SystemCosts costs =
        sys.Evaluate(MakeRegion(), MakeAccel(), nullptr, 0);
    EXPECT_GT(costs.Speedup(), 1.0);
    EXPECT_GT(costs.EnergySaving(), 1.0);
}

TEST(SystemModelTest, FixesCostEnergy)
{
    const SystemModel sys = MakeSystem();
    const RegionProfile region = MakeRegion();
    const AcceleratorProfile accel = MakeAccel();
    const SystemCosts none = sys.Evaluate(region, accel, nullptr, 0);
    const SystemCosts some = sys.Evaluate(region, accel, nullptr, 200);
    EXPECT_GT(some.scheme_app_nj, none.scheme_app_nj);
}

TEST(SystemModelTest, OverlappedRecoveryPreservesTime)
{
    const SystemModel sys = MakeSystem();
    const RegionProfile region = MakeRegion(100, 1000, 0.9);
    const AcceleratorProfile accel = MakeAccel();
    const SystemCosts none = sys.Evaluate(region, accel, nullptr, 0);
    // A few fixes fit entirely under the accelerator's execution
    // (pipelined recovery): region time must not grow.
    const SystemCosts few = sys.Evaluate(region, accel, nullptr, 50);
    EXPECT_DOUBLE_EQ(few.scheme_region_ns, none.scheme_region_ns);
}

TEST(SystemModelTest, CpuBoundRecoverySlowsDown)
{
    const SystemModel sys = MakeSystem();
    const RegionProfile region = MakeRegion(200, 1000, 0.9);
    const AcceleratorProfile accel = MakeAccel(10);  // fast accelerator
    const SystemCosts none = sys.Evaluate(region, accel, nullptr, 0);
    const SystemCosts all = sys.Evaluate(region, accel, nullptr, 1000);
    EXPECT_GT(all.scheme_region_ns, none.scheme_region_ns);
    EXPECT_LT(all.Speedup(), none.Speedup());
}

TEST(SystemModelTest, CheckerAddsEnergyNotTime)
{
    const SystemModel sys = MakeSystem();
    const RegionProfile region = MakeRegion();
    const AcceleratorProfile accel = MakeAccel();
    CheckerCost checker;
    checker.macs = 7;
    checker.compares = 1;
    checker.table_reads = 7;
    checker.cycles = 8;
    const SystemCosts without = sys.Evaluate(region, accel, nullptr, 0);
    const SystemCosts with = sys.Evaluate(region, accel, &checker, 0);
    EXPECT_GT(with.scheme_app_nj, without.scheme_app_nj);
    EXPECT_DOUBLE_EQ(with.scheme_app_ns, without.scheme_app_ns);
    EXPECT_GT(with.checker_ns, 0.0);
}

TEST(SystemModelTest, FixingEverythingIsWorseThanBaselineTime)
{
    // Re-executing all iterations means the CPU does all the original
    // work *plus* the accelerator ran: never faster than baseline.
    const SystemModel sys = MakeSystem();
    const RegionProfile region = MakeRegion();
    const SystemCosts all =
        sys.Evaluate(region, MakeAccel(), nullptr, region.iterations);
    EXPECT_LE(all.Speedup(), 1.0 + 1e-9);
}

TEST(SystemModelTest, EnergySavingDefinitionConsistent)
{
    const SystemModel sys = MakeSystem();
    const SystemCosts costs =
        sys.Evaluate(MakeRegion(), MakeAccel(), nullptr, 10);
    EXPECT_NEAR(costs.EnergySaving() * costs.NormalizedEnergy(), 1.0,
                1e-9);
}

}  // namespace
}  // namespace rumba::sim
