#!/usr/bin/env bash
# End-to-end checks for the rumba-stat CLI against synthetic dumps:
# identical runs pass, an out-of-tolerance metric fails with exit 1,
# and a schema-version mismatch is refused with exit 2.
# Usage: rumba_stat_test.sh <path-to-rumba-stat>
set -u
STAT="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$DIR/base.jsonl" <<'EOF'
{"type":"meta","schema_version":2,"wall_time":"2026-01-01T00:00:00Z","hostname":"ci","build_type":"Release","sanitizers":""}
{"type":"counter","name":"runtime.fixes","value":120}
{"type":"counter","name":"runtime.invocations","value":8}
{"type":"gauge","name":"tuner.threshold","value":0.25}
{"type":"histogram","name":"npu.invoke_ns","count":8,"sum":800,"min":90,"max":110,"p50":100,"p90":108,"p99":110}
{"type":"histogram","name":"detector.score","count":8,"sum":4,"min":0.1,"max":0.9,"p50":0.5,"p90":0.8,"p99":0.9}
{"type":"trace","seq":0,"invocation":1,"elements":100,"threshold":0.25,"fires":15,"fixes":15,"queue_full_stalls":0,"tuner_adjustments":0,"output_error_pct":9.5,"estimated_error_pct":9.1,"drift":false}
EOF

# 1. A dump diffs clean against itself.
"$STAT" diff "$DIR/base.jsonl" "$DIR/base.jsonl" > /dev/null ||
    fail "identical dumps should pass (got $?)"

# 2. Latency distributions are machine noise: a shifted p50 on an _ns
#    histogram passes by default but fails under --include-latency.
sed 's/"p50":100/"p50":400/' "$DIR/base.jsonl" > "$DIR/slow.jsonl"
"$STAT" diff "$DIR/base.jsonl" "$DIR/slow.jsonl" > /dev/null ||
    fail "latency-only shift should pass by default (got $?)"
"$STAT" diff "$DIR/base.jsonl" "$DIR/slow.jsonl" --include-latency \
    > /dev/null
[[ $? -eq 1 ]] || fail "--include-latency should flag the p50 shift"

# 3. A counter outside tolerance is a regression (exit 1)...
sed 's/"name":"runtime.fixes","value":120/"name":"runtime.fixes","value":150/' \
    "$DIR/base.jsonl" > "$DIR/worse.jsonl"
"$STAT" diff "$DIR/base.jsonl" "$DIR/worse.jsonl" > /dev/null
[[ $? -eq 1 ]] || fail "25% counter jump should fail exact diff"

# 4. ...but passes inside an explicit relative tolerance.
"$STAT" diff "$DIR/base.jsonl" "$DIR/worse.jsonl" --tol 0.30 \
    > /dev/null || fail "25% jump should pass --tol 0.30 (got $?)"
"$STAT" diff "$DIR/base.jsonl" "$DIR/worse.jsonl" \
    --tol-metric runtime.fixes=0.30 > /dev/null ||
    fail "per-metric tolerance should absorb the jump (got $?)"

# 5. A metric missing from the candidate is a regression.
grep -v 'runtime.invocations' "$DIR/base.jsonl" > "$DIR/missing.jsonl"
"$STAT" diff "$DIR/base.jsonl" "$DIR/missing.jsonl" > /dev/null
[[ $? -eq 1 ]] || fail "missing metric should fail the diff"

# 6. Incompatible schema versions are refused (exit 2).
sed 's/"schema_version":2/"schema_version":1/' "$DIR/base.jsonl" \
    > "$DIR/old.jsonl"
"$STAT" diff "$DIR/base.jsonl" "$DIR/old.jsonl" > /dev/null 2>&1
[[ $? -eq 2 ]] || fail "schema mismatch should be refused with exit 2"

# 7. summary renders both metric dumps and stream dumps.
"$STAT" summary "$DIR/base.jsonl" | grep -q "threshold trajectory" ||
    fail "summary should report the threshold trajectory"
cat > "$DIR/stream.jsonl" <<'EOF'
{"type":"meta","schema_version":2,"wall_time":"2026-01-01T00:00:00Z","hostname":"ci","build_type":"Release","sanitizers":""}
{"type":"sample","t_ms":1.5,"counters":{"runtime.fixes":10},"gauges":{"tuner.threshold":0.5}}
{"type":"sample","t_ms":3.0,"counters":{"runtime.fixes":7},"gauges":{"tuner.threshold":0.4}}
EOF
"$STAT" summary "$DIR/stream.jsonl" | grep -q "2 distinct" ||
    fail "stream summary should see 2 distinct thresholds"
# Stream counter deltas accumulate into run totals.
"$STAT" summary "$DIR/stream.jsonl" | grep -q "runtime.fixes.*17" ||
    fail "stream summary should total the counter deltas"

# 8. scrape --check validates a saved Prometheus text exposition.
cat > "$DIR/expo.prom" <<'EOF'
# HELP rumba_runtime_fixes_total rumba metric
# TYPE rumba_runtime_fixes_total counter
rumba_runtime_fixes_total{name="runtime.fixes"} 120
# TYPE rumba_runtime_invocations_total counter
rumba_runtime_invocations_total{name="runtime.invocations"} 8
# TYPE rumba_tuner_threshold gauge
rumba_tuner_threshold{name="tuner.threshold"} 0.25
# TYPE rumba_npu_invoke_ns histogram
rumba_npu_invoke_ns_bucket{name="npu.invoke_ns",le="100"} 4
rumba_npu_invoke_ns_bucket{name="npu.invoke_ns",le="+Inf"} 8
rumba_npu_invoke_ns_sum{name="npu.invoke_ns"} 800
rumba_npu_invoke_ns_count{name="npu.invoke_ns"} 8
# TYPE rumba_npu_invoke_ns_min gauge
rumba_npu_invoke_ns_min{name="npu.invoke_ns"} 90
# TYPE rumba_npu_invoke_ns_max gauge
rumba_npu_invoke_ns_max{name="npu.invoke_ns"} 110
# TYPE rumba_detector_score histogram
rumba_detector_score_bucket{name="detector.score",le="+Inf"} 8
rumba_detector_score_sum{name="detector.score"} 4
rumba_detector_score_count{name="detector.score"} 8
EOF
"$STAT" scrape "$DIR/expo.prom" --check > /dev/null ||
    fail "valid exposition should pass scrape --check (got $?)"

# 9. Buckets that disagree with _count are refused (exit 2).
sed 's/le="+Inf"} 8/le="+Inf"} 5/' "$DIR/expo.prom" > "$DIR/bad.prom"
"$STAT" scrape "$DIR/bad.prom" --check > /dev/null 2>&1
[[ $? -eq 2 ]] || fail "+Inf != _count should fail scrape --check"

# 10. An undeclared sample (no # TYPE) is a format violation.
echo 'rumba_mystery{name="mystery"} 1' >> "$DIR/bad2.prom"
cat "$DIR/expo.prom" >> "$DIR/bad2.prom"
"$STAT" scrape "$DIR/bad2.prom" --check > /dev/null 2>&1
[[ $? -eq 2 ]] || fail "TYPE-less sample should fail scrape --check"

# 11. scrape --baseline gates a live exposition against a JSONL dump.
"$STAT" scrape "$DIR/expo.prom" --baseline "$DIR/base.jsonl" \
    > /dev/null ||
    fail "matching scrape should pass the baseline gate (got $?)"
sed 's/"runtime.fixes"} 120/"runtime.fixes"} 200/' \
    "$DIR/expo.prom" > "$DIR/drift.prom"
"$STAT" scrape "$DIR/drift.prom" --baseline "$DIR/base.jsonl" \
    > /dev/null
[[ $? -eq 1 ]] || fail "66% counter jump should fail the scrape gate"
"$STAT" scrape "$DIR/drift.prom" --baseline "$DIR/base.jsonl" \
    --tol-metric runtime.fixes=0.70 > /dev/null ||
    fail "per-metric tolerance should absorb the scrape jump (got $?)"

# 12. Default scrape mode summarizes with dotted names recovered.
"$STAT" scrape "$DIR/expo.prom" | grep -q "runtime.fixes" ||
    fail "scrape summary should recover dotted metric names"

# 13. audit summarizes a RUMBA_AUDIT_OUT labeled dump.
cat > "$DIR/audit_base.jsonl" <<'EOF'
{"type":"meta","schema_version":2,"wall_time":"2026-01-01T00:00:00Z","hostname":"ci","build_type":"Release","sanitizers":""}
{"type":"audit","trace_id":11,"shard":0,"forced":false,"forced_reason":"","elements":2,"threshold":0.3,"estimated_error_pct":4.0,"reported_error_pct":4.2,"true_error_pct":5.0,"toq_violation":false,"toq_bound_pct":12,"tp":1,"fp":0,"fn":0,"tn":1,"breaker_state":0,"fixes":1}
{"type":"audit","trace_id":12,"shard":1,"forced":true,"forced_reason":"recovered","elements":2,"threshold":0.3,"estimated_error_pct":9.0,"reported_error_pct":9.5,"true_error_pct":15.0,"toq_violation":true,"toq_bound_pct":12,"tp":1,"fp":0,"fn":1,"tn":0,"breaker_state":0,"fixes":1}
{"type":"audit_element","trace_id":11,"shard":0,"index":0,"predicted_error":0.4,"approx_error":0.5,"served_error":0.0,"fired":true,"fixed":true,"exact_path":false,"needs_fix":true,"input_0":0.25,"input_1":0.5}
{"type":"audit_element","trace_id":11,"shard":0,"index":1,"predicted_error":0.1,"approx_error":0.1,"served_error":0.1,"fired":false,"fixed":false,"exact_path":false,"needs_fix":false,"input_0":0.75,"input_1":0.5}
EOF
"$STAT" audit "$DIR/audit_base.jsonl" > "$DIR/audit_out.txt" ||
    fail "audit summary should succeed (got $?)"
grep -q "true TOQ violations: 1 / 2" "$DIR/audit_out.txt" ||
    fail "audit summary should count the violation"
grep -q "fn(acc)" "$DIR/audit_out.txt" ||
    fail "audit summary should print the calibration table"
grep -q "recovered" "$DIR/audit_out.txt" ||
    fail "audit worst-K should carry the forced reason"

# 14. audit --baseline passes against itself, fails on a calibration
#     regression (recall collapse), and respects --tol.
"$STAT" audit "$DIR/audit_base.jsonl" \
    --baseline "$DIR/audit_base.jsonl" > /dev/null ||
    fail "audit should pass against itself (got $?)"
sed 's/"tp":1,"fp":0,"fn":1/"tp":0,"fp":1,"fn":2/' \
    "$DIR/audit_base.jsonl" > "$DIR/audit_worse.jsonl"
"$STAT" audit "$DIR/audit_worse.jsonl" \
    --baseline "$DIR/audit_base.jsonl" > /dev/null
[[ $? -eq 1 ]] || fail "calibration collapse should fail the gate"
"$STAT" audit "$DIR/audit_worse.jsonl" \
    --baseline "$DIR/audit_base.jsonl" --tol 1.0 > /dev/null ||
    fail "--tol 1.0 should absorb any calibration move (got $?)"

# 15. Schema mismatches between audit dumps are refused.
sed 's/"schema_version":2/"schema_version":1/' \
    "$DIR/audit_base.jsonl" > "$DIR/audit_old.jsonl"
"$STAT" audit "$DIR/audit_base.jsonl" \
    --baseline "$DIR/audit_old.jsonl" > /dev/null 2>&1
[[ $? -eq 2 ]] || fail "audit schema mismatch should exit 2"

# 16. scenarios summarizes a RUMBA_SCENARIO_OUT matrix dump; any
#     fail/error row makes the standalone summary exit 1.
cat > "$DIR/scen_base.jsonl" <<'EOF'
{"type":"meta","schema_version":2,"wall_time":"2026-01-01T00:00:00Z","hostname":"ci","build_type":"Release","sanitizers":""}
{"type":"scenario","name":"steady","status":"pass","workload":"inversek2j","arrival":"poisson","fault":"","admission":true,"offered":900,"served":900,"shed":0,"expired":0,"rejected":0,"gold_p99_ms":2.5,"loss_fraction":0.0,"violations":""}
{"type":"scenario","name":"burst","status":"pass","workload":"fft","arrival":"bursty","fault":"seed=7;npu.output_nan=0.3","admission":true,"offered":3000,"served":2000,"shed":950,"expired":0,"rejected":50,"gold_p99_ms":12.0,"loss_fraction":0.33,"violations":""}
{"type":"scenario","name":"skipper","status":"skip","workload":"fft","arrival":"diurnal","fault":"","admission":true,"offered":0,"served":0,"shed":0,"expired":0,"rejected":0,"gold_p99_ms":0,"loss_fraction":0.0,"violations":"external RUMBA_FAULT_PLAN armed; not overriding"}
EOF
"$STAT" scenarios "$DIR/scen_base.jsonl" > "$DIR/scen_out.txt" ||
    fail "scenario summary should succeed (got $?)"
grep -q "3 scenarios: 2 pass, 0 fail/error, 1 skip" "$DIR/scen_out.txt" ||
    fail "scenario summary should count statuses"
sed 's/"name":"burst","status":"pass"/"name":"burst","status":"fail"/' \
    "$DIR/scen_base.jsonl" > "$DIR/scen_fail.jsonl"
"$STAT" scenarios "$DIR/scen_fail.jsonl" > /dev/null
[[ $? -eq 1 ]] || fail "a failing scenario should exit 1 standalone"

# 17. scenarios --baseline: pass stays pass (exit 0), a
#     baseline-passing scenario failing or going missing is a
#     regression (exit 1), and a skip is neutral.
"$STAT" scenarios "$DIR/scen_base.jsonl" \
    --baseline "$DIR/scen_base.jsonl" > /dev/null ||
    fail "scenarios should pass against themselves (got $?)"
"$STAT" scenarios "$DIR/scen_fail.jsonl" \
    --baseline "$DIR/scen_base.jsonl" > "$DIR/scen_gate.txt"
[[ $? -eq 1 ]] || fail "pass -> fail should gate (exit 1)"
grep -q "REGRESSION.*burst" "$DIR/scen_gate.txt" ||
    fail "the gate should name the regressed scenario"
grep -v '"name":"burst"' "$DIR/scen_base.jsonl" \
    > "$DIR/scen_missing.jsonl"
"$STAT" scenarios "$DIR/scen_missing.jsonl" \
    --baseline "$DIR/scen_base.jsonl" > /dev/null
[[ $? -eq 1 ]] || fail "a missing baseline-pass scenario should gate"
sed 's/"name":"burst","status":"pass"/"name":"burst","status":"skip"/' \
    "$DIR/scen_base.jsonl" > "$DIR/scen_skip.jsonl"
"$STAT" scenarios "$DIR/scen_skip.jsonl" \
    --baseline "$DIR/scen_base.jsonl" > /dev/null ||
    fail "pass -> skip is neutral, not a regression (got $?)"

# 18. Schema mismatches between scenario dumps are refused.
sed 's/"schema_version":2/"schema_version":1/' \
    "$DIR/scen_base.jsonl" > "$DIR/scen_old.jsonl"
"$STAT" scenarios "$DIR/scen_base.jsonl" \
    --baseline "$DIR/scen_old.jsonl" > /dev/null 2>&1
[[ $? -eq 2 ]] || fail "scenario schema mismatch should exit 2"

echo "PASS: rumba-stat behaves"
