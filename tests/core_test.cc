// Unit tests for the Rumba core: schemes, detector, recovery queue
// and module, online tuner, and the offline pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "apps/benchmark.h"
#include "core/batch_view.h"
#include "core/detector.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "core/recovery_policy.h"
#include "core/schemes.h"
#include "core/tuner.h"
#include "predict/compensator.h"
#include "predict/linear.h"

namespace rumba::core {
namespace {

/** Fast pipeline configuration for tests. */
PipelineConfig
FastPipeline()
{
    PipelineConfig cfg;
    cfg.train_epochs = 25;
    cfg.max_train_elements = 600;
    cfg.max_test_elements = 600;
    return cfg;
}

// --------------------------------------------------------------- Schemes

TEST(SchemesTest, NamesMatchPaper)
{
    EXPECT_STREQ(SchemeName(Scheme::kNpu), "NPU");
    EXPECT_STREQ(SchemeName(Scheme::kIdeal), "Ideal");
    EXPECT_STREQ(SchemeName(Scheme::kLinear), "linearErrors");
    EXPECT_STREQ(SchemeName(Scheme::kTree), "treeErrors");
    EXPECT_STREQ(SchemeName(Scheme::kEma), "EMA");
}

TEST(SchemesTest, FixingSchemesExcludeNpu)
{
    const auto schemes = FixingSchemes();
    EXPECT_EQ(schemes.size(), 6u);
    for (auto s : schemes)
        EXPECT_NE(s, Scheme::kNpu);
}

TEST(SchemesTest, PredictorClassification)
{
    EXPECT_TRUE(IsPredictorScheme(Scheme::kEma));
    EXPECT_TRUE(IsPredictorScheme(Scheme::kLinear));
    EXPECT_TRUE(IsPredictorScheme(Scheme::kTree));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kIdeal));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kRandom));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kUniform));
}

// -------------------------------------------------------------- Detector

/** Predictor stub returning a fixed value. */
class FixedPredictor : public predict::ErrorPredictor {
  public:
    explicit FixedPredictor(double value) : value_(value) {}
    std::string Name() const override { return "fixed"; }
    bool IsInputBased() const override { return true; }
    void Train(const Dataset&) override {}
    double
    PredictError(const std::vector<double>&,
                 const std::vector<double>&) override
    {
        return value_;
    }
    sim::CheckerCost CostPerCheck() const override { return {}; }
    std::string Serialize() const override { return "fixed\n"; }

  private:
    double value_;
};

TEST(DetectorTest, FiresAboveThreshold)
{
    Detector det(std::make_unique<FixedPredictor>(0.4), 0.3);
    const CheckResult r = det.Check({}, {});
    EXPECT_TRUE(r.fired);
    EXPECT_DOUBLE_EQ(r.predicted_error, 0.4);
}

TEST(DetectorTest, SilentBelowThreshold)
{
    Detector det(std::make_unique<FixedPredictor>(0.2), 0.3);
    EXPECT_FALSE(det.Check({}, {}).fired);
}

TEST(DetectorTest, ThresholdAdjustable)
{
    Detector det(std::make_unique<FixedPredictor>(0.2), 0.3);
    det.SetThreshold(0.1);
    EXPECT_TRUE(det.Check({}, {}).fired);
    EXPECT_EQ(det.ChecksPerformed(), 1u);
    EXPECT_EQ(det.ChecksFired(), 1u);
}

TEST(DetectorTest, CountsChecks)
{
    Detector det(std::make_unique<FixedPredictor>(0.5), 0.3);
    for (int i = 0; i < 5; ++i)
        det.Check({}, {});
    det.SetThreshold(0.9);
    for (int i = 0; i < 3; ++i)
        det.Check({}, {});
    EXPECT_EQ(det.ChecksPerformed(), 8u);
    EXPECT_EQ(det.ChecksFired(), 5u);
}

// -------------------------------------------------------------- Recovery

TEST(RecoveryTest, DrainsQueueAndMerges)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);

    const std::vector<double> flat = {
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6,  //
        0.9, 0.8, 0.7, 0.6, 0.5, 0.4,  //
        0.2, 0.2, 0.2, 0.8, 0.8, 0.8,
    };
    const BatchView inputs(flat, 6);
    // Corrupt all outputs; flag elements 0 and 2.
    std::vector<double> outputs(3, 99.0);
    std::vector<char> fixed(3, 0);
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{0, RecoveryTier::kReexecute, 1.0}));
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{2, RecoveryTier::kReexecute, 1.0}));
    DrainStats stats;
    const size_t drained =
        recovery.Drain(inputs, outputs.data(), 1, &fixed, &stats);
    EXPECT_EQ(drained, 2u);
    EXPECT_EQ(recovery.TotalReexecutions(), 2u);
    EXPECT_EQ(recovery.TotalCompensations(), 0u);
    EXPECT_EQ(stats.reexecuted, 2u);
    EXPECT_EQ(stats.compensated, 0u);
    EXPECT_EQ(fixed[0], kFixedExact);
    EXPECT_EQ(fixed[1], kFixedNone);
    EXPECT_EQ(fixed[2], kFixedExact);

    double expected = 0.0;
    bench->RunExact(flat.data(), &expected);
    EXPECT_DOUBLE_EQ(outputs[0], expected);
    EXPECT_DOUBLE_EQ(outputs[1], 99.0);  // untouched approximate.
}

TEST(RecoveryTest, EmptyQueueDrainsNothing)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);
    const std::vector<double> flat = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    std::vector<double> outputs = {1.0};
    EXPECT_EQ(
        recovery.Drain(BatchView(flat, 6), outputs.data(), 1, nullptr),
        0u);
    EXPECT_DOUBLE_EQ(outputs[0], 1.0);
}

TEST(RecoveryTest, OutOfRangeIterationPanics)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);
    const std::vector<double> flat = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    std::vector<double> outputs = {1.0};
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{5, RecoveryTier::kReexecute, 1.0}));
    EXPECT_DEATH(
        recovery.Drain(BatchView(flat, 6), outputs.data(), 1, nullptr),
        "check failed");
}

TEST(RecoveryTest, CompensateTierUsesInstalledExecutor)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);
    recovery.SetCompensator([](const double*, double* out) {
        out[0] += 1.0;
        return true;
    });
    ASSERT_TRUE(recovery.HasCompensator());

    const std::vector<double> flat = {
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6,  //
        0.9, 0.8, 0.7, 0.6, 0.5, 0.4,
    };
    std::vector<double> outputs = {10.0, 20.0};
    std::vector<char> fixed(2, 0);
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{0, RecoveryTier::kCompensate, 0.1}));
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{1, RecoveryTier::kReexecute, 0.9}));
    DrainStats stats;
    EXPECT_EQ(recovery.Drain(BatchView(flat, 6), outputs.data(), 1,
                             &fixed, &stats),
              2u);
    EXPECT_EQ(stats.compensated, 1u);
    EXPECT_EQ(stats.reexecuted, 1u);
    EXPECT_EQ(recovery.TotalCompensations(), 1u);
    EXPECT_EQ(fixed[0], kFixedCompensated);
    EXPECT_EQ(fixed[1], kFixedExact);
    EXPECT_DOUBLE_EQ(outputs[0], 11.0);  // corrected in place.
}

TEST(RecoveryTest, RefusedCompensationDemotesToReexecution)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);
    recovery.SetCompensator(
        [](const double*, double*) { return false; });

    const std::vector<double> flat = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    std::vector<double> outputs = {99.0};
    std::vector<char> fixed(1, 0);
    ASSERT_TRUE(recovery.Queue().Push(
        RecoveryDecision{0, RecoveryTier::kCompensate, 0.1}));
    DrainStats stats;
    EXPECT_EQ(recovery.Drain(BatchView(flat, 6), outputs.data(), 1,
                             &fixed, &stats),
              1u);
    EXPECT_EQ(stats.compensated, 0u);
    EXPECT_EQ(stats.reexecuted, 1u);
    EXPECT_EQ(fixed[0], kFixedExact);
    double expected = 0.0;
    bench->RunExact(flat.data(), &expected);
    EXPECT_DOUBLE_EQ(outputs[0], expected);
}

// -------------------------------------------------------- RecoveryPolicy

TEST(RecoveryPolicyTest, DisabledAlwaysReexecutes)
{
    RecoveryPolicyConfig cfg;  // compensation off by default.
    RecoveryPolicy policy(cfg, 10.0);
    EXPECT_FALSE(policy.CompensationEnabled());
    for (double err : {0.0, 0.01, 0.5, 100.0}) {
        EXPECT_EQ(policy.Decide(3, err, false, 0.1).tier,
                  RecoveryTier::kReexecute);
    }
}

TEST(RecoveryPolicyTest, TiersByPredictedError)
{
    RecoveryPolicyConfig cfg;
    cfg.compensation = true;
    cfg.reexec_multiple = 4.0;
    RecoveryPolicy policy(cfg, 10.0);
    const double check = 0.1;
    // Mid-band (>= check, < 4x check) compensates.
    EXPECT_EQ(policy.Decide(0, 0.2, false, check).tier,
              RecoveryTier::kCompensate);
    // Tail (>= 4x check) re-executes.
    EXPECT_EQ(policy.Decide(1, 0.9, false, check).tier,
              RecoveryTier::kReexecute);
    // Inverted verdict (fired yet below check) compensates.
    EXPECT_EQ(policy.Decide(2, 0.05, false, check).tier,
              RecoveryTier::kCompensate);
    // The decision carries its evidence and identity.
    const RecoveryDecision decision =
        policy.Decide(7, 0.2, false, check);
    EXPECT_EQ(decision.iteration, 7u);
    EXPECT_DOUBLE_EQ(decision.predicted_error, 0.2);
}

TEST(RecoveryPolicyTest, NonFiniteAlwaysReexecutes)
{
    RecoveryPolicyConfig cfg;
    cfg.compensation = true;
    RecoveryPolicy policy(cfg, 10.0);
    // Non-finite *output* re-executes no matter the prediction.
    EXPECT_EQ(policy.Decide(0, 0.0, true, 0.1).tier,
              RecoveryTier::kReexecute);
    // Non-finite *prediction* is no evidence: re-execute.
    const double nan = std::nan("");
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(policy.Decide(1, nan, false, 0.1).tier,
              RecoveryTier::kReexecute);
    EXPECT_EQ(policy.Decide(2, inf, false, 0.1).tier,
              RecoveryTier::kReexecute);
    EXPECT_EQ(policy.Decide(3, -inf, false, 0.1).tier,
              RecoveryTier::kReexecute);
}

TEST(RecoveryPolicyTest, BoundaryIsDeterministic)
{
    RecoveryPolicyConfig cfg;
    cfg.compensation = true;
    cfg.reexec_multiple = 4.0;
    RecoveryPolicy policy(cfg, 10.0);
    const double check = 0.25;
    const double boundary = policy.ReexecThreshold(check);
    EXPECT_DOUBLE_EQ(boundary, 1.0);
    // Exactly at the re-execute boundary: >= semantics, stable
    // across repeated calls (the serving path relies on this).
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(policy.Decide(0, boundary, false, check).tier,
                  RecoveryTier::kReexecute);
        EXPECT_EQ(policy
                      .Decide(0, std::nextafter(boundary, 0.0), false,
                              check)
                      .tier,
                  RecoveryTier::kCompensate);
        // Exactly at the check threshold: fired verdict is taken at
        // its word, the element sits in the compensation band.
        EXPECT_EQ(policy.Decide(0, check, false, check).tier,
                  RecoveryTier::kCompensate);
    }
}

TEST(RecoveryPolicyTest, GroundTruthWalksTheMultiple)
{
    RecoveryPolicyConfig cfg;
    cfg.compensation = true;
    cfg.reexec_multiple = 4.0;
    cfg.adjust_factor = 2.0;
    cfg.min_multiple = 1.0;
    cfg.max_multiple = 16.0;
    cfg.dead_band = 0.1;
    cfg.residual_budget_frac = 0.5;
    RecoveryPolicy policy(cfg, 10.0);  // budget = 5% residual.
    EXPECT_DOUBLE_EQ(policy.ResidualBudgetPct(), 5.0);

    // Residual over budget: narrow the band (multiple halves).
    policy.OnCompensatedGroundTruth(8.0, 100);
    EXPECT_DOUBLE_EQ(policy.Multiple(), 2.0);
    EXPECT_EQ(policy.Adjustments(), 1u);
    // Inside the dead band: hold.
    policy.OnCompensatedGroundTruth(5.2, 100);
    EXPECT_DOUBLE_EQ(policy.Multiple(), 2.0);
    EXPECT_EQ(policy.Adjustments(), 1u);
    // Comfortably under budget: widen again.
    policy.OnCompensatedGroundTruth(1.0, 100);
    EXPECT_DOUBLE_EQ(policy.Multiple(), 4.0);
    // Clamped at max after repeated widening.
    for (int i = 0; i < 10; ++i)
        policy.OnCompensatedGroundTruth(0.5, 10);
    EXPECT_DOUBLE_EQ(policy.Multiple(), 16.0);
    // Clamped at min after repeated narrowing; 1.0 degenerates to
    // the two-tier policy.
    for (int i = 0; i < 10; ++i)
        policy.OnCompensatedGroundTruth(50.0, 10);
    EXPECT_DOUBLE_EQ(policy.Multiple(), 1.0);
    // Zero elements or non-finite residuals are ignored entirely.
    const size_t adjustments = policy.Adjustments();
    policy.OnCompensatedGroundTruth(50.0, 0);
    policy.OnCompensatedGroundTruth(std::nan(""), 100);
    EXPECT_EQ(policy.Adjustments(), adjustments);
}

TEST(RecoveryPolicyTest, ValidateRejectsBadConfigs)
{
    RecoveryPolicyConfig good;
    EXPECT_TRUE(ValidateRecoveryPolicyConfig(good).ok());

    RecoveryPolicyConfig cfg = good;
    cfg.min_multiple = 0.5;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
    cfg = good;
    cfg.max_multiple = cfg.min_multiple - 0.5;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
    cfg = good;
    cfg.reexec_multiple = cfg.max_multiple * 2.0;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
    cfg = good;
    cfg.adjust_factor = 1.0;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
    cfg = good;
    cfg.dead_band = 1.0;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
    cfg = good;
    cfg.residual_budget_frac = 0.0;
    EXPECT_EQ(ValidateRecoveryPolicyConfig(cfg).code(),
              StatusCode::kInvalidArgument);
}

// ----------------------------------------------------------------- Tuner

TEST(TunerTest, ToqLowersThresholdWhenQualityPoor)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 20.0;  // far above target.
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5);
}

TEST(TunerTest, ToqRaisesThresholdWhenComfortable)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 2.0;  // far below target.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
}

TEST(TunerTest, ToqDeadBandHolds)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 10.0;  // on target: hold.
    tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 0.5);
    EXPECT_EQ(tuner.Adjustments(), 0u);
}

TEST(TunerTest, EnergyModeEnforcesBudget)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 100;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.fixes = 200;  // over budget -> fix fewer next time.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
    fb.fixes = 10;  // way under -> spend the budget on quality.
    tuner.EndInvocation(fb);
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5 * 1.25);
}

TEST(TunerTest, QualityModeTracksCpuSaturation)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kQuality;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.cpu_busy_ratio = 1.5;  // CPU cannot keep up.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
    fb.cpu_busy_ratio = 0.2;  // lots of headroom.
    tuner.EndInvocation(fb);
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5 * 1.25 + 1e-12);
}

TEST(TunerTest, ClampsToRange)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 10;
    cfg.min_threshold = 0.1;
    cfg.max_threshold = 1.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.fixes = 1000;
    for (int i = 0; i < 50; ++i)
        tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 1.0);
    fb.fixes = 0;
    for (int i = 0; i < 50; ++i)
        tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 0.1);
}

TEST(TunerTest, ConvergesToStableFixRate)
{
    // Simulated plant: fixes = elements * (1 - threshold) for
    // threshold in [0,1]. Energy mode must settle near the budget.
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 300;
    cfg.adjust_factor = 1.1;
    OnlineTuner tuner(cfg, 0.2);
    size_t fixes = 0;
    for (int round = 0; round < 60; ++round) {
        const double t = std::min(1.0, tuner.Threshold());
        fixes = static_cast<size_t>(1000.0 * (1.0 - t));
        InvocationFeedback fb;
        fb.elements = 1000;
        fb.fixes = fixes;
        tuner.EndInvocation(fb);
    }
    EXPECT_LT(fixes, 400u);
    EXPECT_GT(fixes, 150u);
}

// -------------------------------------------------------------- Pipeline

TEST(PipelineTest, BuildsAndNormalizes)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    EXPECT_EQ(pipe.TrainInputs().size(), 600u);
    EXPECT_EQ(pipe.TestInputs().size(), 600u);
    const auto norm = pipe.NormalizeInput(pipe.TrainInputs()[0]);
    for (double v : norm) {
        EXPECT_GE(v, -0.01);
        EXPECT_LE(v, 1.01);
    }
}

TEST(PipelineTest, TrainedNetworkBeatsUntrained)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    // The trained accelerator must track the exact kernel far better
    // than chance: mean element error < 0.2 on a [0,1.7] range.
    npu::Npu accel = pipe.MakeAccelerator(true);
    const auto approx =
        pipe.RunAccelerator(&accel, pipe.TestInputs());
    const auto& bench = pipe.Bench();
    double total = 0.0;
    std::vector<double> exact(1);
    for (size_t i = 0; i < pipe.TestInputs().size(); ++i) {
        bench.RunExact(pipe.TestInputs()[i].data(), exact.data());
        total += std::fabs(exact[0] - approx[i][0]);
    }
    EXPECT_LT(total / 600.0, 0.2);
}

TEST(PipelineTest, TrainErrorsPopulated)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    ASSERT_EQ(pipe.TrainErrors().size(), 600u);
    for (double e : pipe.TrainErrors())
        EXPECT_GE(e, 0.0);
}

TEST(PipelineTest, SharesNetworkWhenTopologiesEqual)
{
    // sobel's Rumba and NPU topologies are identical (Table 1): both
    // accelerators must produce identical outputs.
    PipelineConfig cfg = FastPipeline();
    cfg.max_train_elements = 300;
    cfg.max_test_elements = 100;
    Pipeline pipe(apps::MakeBenchmark("sobel"), cfg);
    npu::Npu a = pipe.MakeAccelerator(true);
    npu::Npu b = pipe.MakeAccelerator(false);
    const auto outs_a = pipe.RunAccelerator(&a, pipe.TestInputs());
    const auto outs_b = pipe.RunAccelerator(&b, pipe.TestInputs());
    for (size_t i = 0; i < outs_a.size(); ++i)
        EXPECT_DOUBLE_EQ(outs_a[i][0], outs_b[i][0]);
}

TEST(PipelineTest, PredictorFactoryCoversSchemes)
{
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kEma)->Name(), "EMA");
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kLinear)->Name(),
              "linearErrors");
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kTree)->Name(),
              "treeErrors");
}

TEST(PipelineTest, TrainedPredictorTracksTrainErrors)
{
    Pipeline pipe(apps::MakeBenchmark("inversek2j"), FastPipeline());
    auto tree = pipe.TrainPredictor(Scheme::kTree);
    // On the training inputs themselves, predictions must correlate
    // with the true errors (mean absolute residual well below the
    // error spread).
    double resid = 0.0, spread = 0.0, mean = 0.0;
    const auto& errors = pipe.TrainErrors();
    for (double e : errors)
        mean += e;
    mean /= static_cast<double>(errors.size());
    for (size_t i = 0; i < errors.size(); ++i) {
        const auto norm = pipe.NormalizeInput(pipe.TrainInputs()[i]);
        resid += std::fabs(tree->PredictError(norm, {}) - errors[i]);
        spread += std::fabs(errors[i] - mean);
    }
    EXPECT_LT(resid, spread);
}

}  // namespace
}  // namespace rumba::core
