// Unit tests for the Rumba core: schemes, detector, recovery queue
// and module, online tuner, and the offline pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/benchmark.h"
#include "core/detector.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "core/schemes.h"
#include "core/tuner.h"
#include "predict/linear.h"

namespace rumba::core {
namespace {

/** Fast pipeline configuration for tests. */
PipelineConfig
FastPipeline()
{
    PipelineConfig cfg;
    cfg.train_epochs = 25;
    cfg.max_train_elements = 600;
    cfg.max_test_elements = 600;
    return cfg;
}

// --------------------------------------------------------------- Schemes

TEST(SchemesTest, NamesMatchPaper)
{
    EXPECT_STREQ(SchemeName(Scheme::kNpu), "NPU");
    EXPECT_STREQ(SchemeName(Scheme::kIdeal), "Ideal");
    EXPECT_STREQ(SchemeName(Scheme::kLinear), "linearErrors");
    EXPECT_STREQ(SchemeName(Scheme::kTree), "treeErrors");
    EXPECT_STREQ(SchemeName(Scheme::kEma), "EMA");
}

TEST(SchemesTest, FixingSchemesExcludeNpu)
{
    const auto schemes = FixingSchemes();
    EXPECT_EQ(schemes.size(), 6u);
    for (auto s : schemes)
        EXPECT_NE(s, Scheme::kNpu);
}

TEST(SchemesTest, PredictorClassification)
{
    EXPECT_TRUE(IsPredictorScheme(Scheme::kEma));
    EXPECT_TRUE(IsPredictorScheme(Scheme::kLinear));
    EXPECT_TRUE(IsPredictorScheme(Scheme::kTree));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kIdeal));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kRandom));
    EXPECT_FALSE(IsPredictorScheme(Scheme::kUniform));
}

// -------------------------------------------------------------- Detector

/** Predictor stub returning a fixed value. */
class FixedPredictor : public predict::ErrorPredictor {
  public:
    explicit FixedPredictor(double value) : value_(value) {}
    std::string Name() const override { return "fixed"; }
    bool IsInputBased() const override { return true; }
    void Train(const Dataset&) override {}
    double
    PredictError(const std::vector<double>&,
                 const std::vector<double>&) override
    {
        return value_;
    }
    sim::CheckerCost CostPerCheck() const override { return {}; }
    std::string Serialize() const override { return "fixed\n"; }

  private:
    double value_;
};

TEST(DetectorTest, FiresAboveThreshold)
{
    Detector det(std::make_unique<FixedPredictor>(0.4), 0.3);
    const CheckResult r = det.Check({}, {});
    EXPECT_TRUE(r.fired);
    EXPECT_DOUBLE_EQ(r.predicted_error, 0.4);
}

TEST(DetectorTest, SilentBelowThreshold)
{
    Detector det(std::make_unique<FixedPredictor>(0.2), 0.3);
    EXPECT_FALSE(det.Check({}, {}).fired);
}

TEST(DetectorTest, ThresholdAdjustable)
{
    Detector det(std::make_unique<FixedPredictor>(0.2), 0.3);
    det.SetThreshold(0.1);
    EXPECT_TRUE(det.Check({}, {}).fired);
    EXPECT_EQ(det.ChecksPerformed(), 1u);
    EXPECT_EQ(det.ChecksFired(), 1u);
}

TEST(DetectorTest, CountsChecks)
{
    Detector det(std::make_unique<FixedPredictor>(0.5), 0.3);
    for (int i = 0; i < 5; ++i)
        det.Check({}, {});
    det.SetThreshold(0.9);
    for (int i = 0; i < 3; ++i)
        det.Check({}, {});
    EXPECT_EQ(det.ChecksPerformed(), 8u);
    EXPECT_EQ(det.ChecksFired(), 5u);
}

// -------------------------------------------------------------- Recovery

TEST(RecoveryTest, DrainsQueueAndMerges)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get(), 16);

    std::vector<std::vector<double>> inputs = {
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
        {0.9, 0.8, 0.7, 0.6, 0.5, 0.4},
        {0.2, 0.2, 0.2, 0.8, 0.8, 0.8},
    };
    // Corrupt all outputs; flag elements 0 and 2.
    std::vector<std::vector<double>> outputs(3, {99.0});
    std::vector<char> fixed(3, 0);
    ASSERT_TRUE(recovery.Queue().Push(RecoveryEntry{0}));
    ASSERT_TRUE(recovery.Queue().Push(RecoveryEntry{2}));
    const size_t drained = recovery.Drain(inputs, &outputs, &fixed);
    EXPECT_EQ(drained, 2u);
    EXPECT_EQ(recovery.TotalReexecutions(), 2u);
    EXPECT_EQ(fixed[0], 1);
    EXPECT_EQ(fixed[1], 0);
    EXPECT_EQ(fixed[2], 1);

    double expected = 0.0;
    bench->RunExact(inputs[0].data(), &expected);
    EXPECT_DOUBLE_EQ(outputs[0][0], expected);
    EXPECT_DOUBLE_EQ(outputs[1][0], 99.0);  // untouched approximate.
}

TEST(RecoveryTest, EmptyQueueDrainsNothing)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get());
    std::vector<std::vector<double>> inputs = {
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}};
    std::vector<std::vector<double>> outputs = {{1.0}};
    EXPECT_EQ(recovery.Drain(inputs, &outputs, nullptr), 0u);
    EXPECT_DOUBLE_EQ(outputs[0][0], 1.0);
}

TEST(RecoveryTest, OutOfRangeIterationPanics)
{
    auto bench = apps::MakeBenchmark("kmeans");
    RecoveryModule recovery(bench.get());
    std::vector<std::vector<double>> inputs = {
        {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}};
    std::vector<std::vector<double>> outputs = {{1.0}};
    ASSERT_TRUE(recovery.Queue().Push(RecoveryEntry{5}));
    EXPECT_DEATH(recovery.Drain(inputs, &outputs, nullptr),
                 "check failed");
}

// ----------------------------------------------------------------- Tuner

TEST(TunerTest, ToqLowersThresholdWhenQualityPoor)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 20.0;  // far above target.
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5);
}

TEST(TunerTest, ToqRaisesThresholdWhenComfortable)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 2.0;  // far below target.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
}

TEST(TunerTest, ToqDeadBandHolds)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kToq;
    cfg.target_error_pct = 10.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.estimated_error_pct = 10.0;  // on target: hold.
    tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 0.5);
    EXPECT_EQ(tuner.Adjustments(), 0u);
}

TEST(TunerTest, EnergyModeEnforcesBudget)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 100;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.fixes = 200;  // over budget -> fix fewer next time.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
    fb.fixes = 10;  // way under -> spend the budget on quality.
    tuner.EndInvocation(fb);
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5 * 1.25);
}

TEST(TunerTest, QualityModeTracksCpuSaturation)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kQuality;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.cpu_busy_ratio = 1.5;  // CPU cannot keep up.
    tuner.EndInvocation(fb);
    EXPECT_GT(tuner.Threshold(), 0.5);
    fb.cpu_busy_ratio = 0.2;  // lots of headroom.
    tuner.EndInvocation(fb);
    tuner.EndInvocation(fb);
    EXPECT_LT(tuner.Threshold(), 0.5 * 1.25 + 1e-12);
}

TEST(TunerTest, ClampsToRange)
{
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 10;
    cfg.min_threshold = 0.1;
    cfg.max_threshold = 1.0;
    OnlineTuner tuner(cfg, 0.5);
    InvocationFeedback fb;
    fb.fixes = 1000;
    for (int i = 0; i < 50; ++i)
        tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 1.0);
    fb.fixes = 0;
    for (int i = 0; i < 50; ++i)
        tuner.EndInvocation(fb);
    EXPECT_DOUBLE_EQ(tuner.Threshold(), 0.1);
}

TEST(TunerTest, ConvergesToStableFixRate)
{
    // Simulated plant: fixes = elements * (1 - threshold) for
    // threshold in [0,1]. Energy mode must settle near the budget.
    TunerConfig cfg;
    cfg.mode = TuningMode::kEnergy;
    cfg.iteration_budget = 300;
    cfg.adjust_factor = 1.1;
    OnlineTuner tuner(cfg, 0.2);
    size_t fixes = 0;
    for (int round = 0; round < 60; ++round) {
        const double t = std::min(1.0, tuner.Threshold());
        fixes = static_cast<size_t>(1000.0 * (1.0 - t));
        InvocationFeedback fb;
        fb.elements = 1000;
        fb.fixes = fixes;
        tuner.EndInvocation(fb);
    }
    EXPECT_LT(fixes, 400u);
    EXPECT_GT(fixes, 150u);
}

// -------------------------------------------------------------- Pipeline

TEST(PipelineTest, BuildsAndNormalizes)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    EXPECT_EQ(pipe.TrainInputs().size(), 600u);
    EXPECT_EQ(pipe.TestInputs().size(), 600u);
    const auto norm = pipe.NormalizeInput(pipe.TrainInputs()[0]);
    for (double v : norm) {
        EXPECT_GE(v, -0.01);
        EXPECT_LE(v, 1.01);
    }
}

TEST(PipelineTest, TrainedNetworkBeatsUntrained)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    // The trained accelerator must track the exact kernel far better
    // than chance: mean element error < 0.2 on a [0,1.7] range.
    npu::Npu accel = pipe.MakeAccelerator(true);
    const auto approx =
        pipe.RunAccelerator(&accel, pipe.TestInputs());
    const auto& bench = pipe.Bench();
    double total = 0.0;
    std::vector<double> exact(1);
    for (size_t i = 0; i < pipe.TestInputs().size(); ++i) {
        bench.RunExact(pipe.TestInputs()[i].data(), exact.data());
        total += std::fabs(exact[0] - approx[i][0]);
    }
    EXPECT_LT(total / 600.0, 0.2);
}

TEST(PipelineTest, TrainErrorsPopulated)
{
    Pipeline pipe(apps::MakeBenchmark("kmeans"), FastPipeline());
    ASSERT_EQ(pipe.TrainErrors().size(), 600u);
    for (double e : pipe.TrainErrors())
        EXPECT_GE(e, 0.0);
}

TEST(PipelineTest, SharesNetworkWhenTopologiesEqual)
{
    // sobel's Rumba and NPU topologies are identical (Table 1): both
    // accelerators must produce identical outputs.
    PipelineConfig cfg = FastPipeline();
    cfg.max_train_elements = 300;
    cfg.max_test_elements = 100;
    Pipeline pipe(apps::MakeBenchmark("sobel"), cfg);
    npu::Npu a = pipe.MakeAccelerator(true);
    npu::Npu b = pipe.MakeAccelerator(false);
    const auto outs_a = pipe.RunAccelerator(&a, pipe.TestInputs());
    const auto outs_b = pipe.RunAccelerator(&b, pipe.TestInputs());
    for (size_t i = 0; i < outs_a.size(); ++i)
        EXPECT_DOUBLE_EQ(outs_a[i][0], outs_b[i][0]);
}

TEST(PipelineTest, PredictorFactoryCoversSchemes)
{
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kEma)->Name(), "EMA");
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kLinear)->Name(),
              "linearErrors");
    EXPECT_EQ(Pipeline::MakePredictor(Scheme::kTree)->Name(),
              "treeErrors");
}

TEST(PipelineTest, TrainedPredictorTracksTrainErrors)
{
    Pipeline pipe(apps::MakeBenchmark("inversek2j"), FastPipeline());
    auto tree = pipe.TrainPredictor(Scheme::kTree);
    // On the training inputs themselves, predictions must correlate
    // with the true errors (mean absolute residual well below the
    // error spread).
    double resid = 0.0, spread = 0.0, mean = 0.0;
    const auto& errors = pipe.TrainErrors();
    for (double e : errors)
        mean += e;
    mean /= static_cast<double>(errors.size());
    for (size_t i = 0; i < errors.size(); ++i) {
        const auto norm = pipe.NormalizeInput(pipe.TrainInputs()[i]);
        resid += std::fabs(tree->PredictError(norm, {}) - errors[i]);
        spread += std::fabs(errors[i] - mean);
    }
    EXPECT_LT(resid, spread);
}

}  // namespace
}  // namespace rumba::core
