#include "serve/flight_recorder.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace rumba::serve {

uint64_t
DigestInputs(const double* data, size_t count)
{
    // FNV-1a 64-bit over the raw bytes: cheap, stable across runs, and
    // collision-resistant enough to answer "was this the same batch?"
    uint64_t hash = 14695981039346656037ull;
    const unsigned char* bytes =
        reinterpret_cast<const unsigned char*>(data);
    const size_t len = count * sizeof(double);
    for (size_t i = 0; i < len; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(capacity_);
}

void
FlightRecorder::Append(const FlightRecord& record)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++appended_;
    if (ring_.size() < capacity_) {
        ring_.push_back(record);
        return;
    }
    ring_[head_] = record;
    head_ = (head_ + 1) % capacity_;
}

std::vector<FlightRecord>
FlightRecorder::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<FlightRecord> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

uint64_t
FlightRecorder::TotalAppended() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return appended_;
}

void
FlightRecorder::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
}

std::string
FlightRecordJson(const FlightRecord& r)
{
    std::string out = "{\"type\":\"flight\",\"trace_id\":" +
                      std::to_string(r.trace_id) +
                      ",\"shard\":" + std::to_string(r.shard) +
                      ",\"enqueue_ns\":" + std::to_string(r.enqueue_ns) +
                      ",\"complete_ns\":" +
                      std::to_string(r.complete_ns) +
                      ",\"queue_wait_ns\":" +
                      std::to_string(r.queue_wait_ns) +
                      ",\"device_ns\":" + std::to_string(r.device_ns) +
                      ",\"elements\":" + std::to_string(r.elements) +
                      ",\"inputs_digest\":" +
                      std::to_string(r.inputs_digest) +
                      ",\"threshold\":" + obs::JsonNum(r.threshold) +
                      ",\"predicted_error_pct\":" +
                      obs::JsonNum(r.predicted_error_pct) +
                      ",\"actual_error_pct\":" +
                      obs::JsonNum(r.actual_error_pct) +
                      ",\"fixes\":" + std::to_string(r.fixes) +
                      ",\"breaker_state\":" +
                      std::to_string(r.breaker_state) +
                      ",\"status_code\":" +
                      std::to_string(r.status_code) +
                      ",\"audited\":" + (r.audited ? "true" : "false") +
                      "}";
    return out;
}

std::string
FlightRecorder::Dump(const std::string& dir, uint32_t shard,
                     const std::string& reason)
{
    std::vector<FlightRecord> records;
    uint32_t seq;
    {
        std::lock_guard<std::mutex> lock(mu_);
        records.reserve(ring_.size());
        for (size_t i = 0; i < ring_.size(); ++i)
            records.push_back(ring_[(head_ + i) % ring_.size()]);
        seq = dump_seq_++;
    }
    std::string path = dir.empty() ? "." : dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    path += "flight-shard" + std::to_string(shard) + "-" +
            std::to_string(seq) + ".jsonl";

    std::string body = obs::MetadataJsonLine() + "\n";
    body += "{\"type\":\"flight_dump\",\"reason\":" +
            obs::JsonQuote(reason) +
            ",\"shard\":" + std::to_string(shard) +
            ",\"records\":" + std::to_string(records.size()) + "}\n";
    for (const FlightRecord& r : records)
        body += FlightRecordJson(r) + "\n";

    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        Warn("flight recorder: cannot open %s: %s", path.c_str(),
             std::strerror(errno));
        return "";
    }
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = std::fclose(f) == 0 && written == body.size();
    if (!ok) {
        Warn("flight recorder: short write to %s", path.c_str());
        return "";
    }
    obs::Registry::Default()
        .GetCounter("serve.flight_dumps")
        ->Increment();
    Inform("flight recorder: shard %u dumped %zu records to %s (%s)",
           static_cast<unsigned>(shard), records.size(), path.c_str(),
           reason.c_str());
    return path;
}

}  // namespace rumba::serve
