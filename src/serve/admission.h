#ifndef RUMBA_SERVE_ADMISSION_H_
#define RUMBA_SERVE_ADMISSION_H_

/**
 * @file
 * Deadline-aware admission control for the sharded serving engine.
 *
 * Reject-on-full backpressure (PR 4) only fires once a queue is
 * already saturated — by then every queued request is eating the
 * latency SLO. The AdmissionController acts earlier and more
 * gradually: it watches queue fill and the latency SLO burn-rate
 * monitors (obs/slo.h) and walks a three-state machine
 *
 *     closed  ->  shedding  ->  emergency
 *
 * escalating immediately under pressure and de-escalating only after
 * a run of consecutive calm observations (count-based hysteresis, so
 * one lucky dequeue cannot flap the state back and forth).
 *
 * The response is Rumba's quality dial, not a binary gate. Per
 * request the controller answers with an AdmissionAction:
 *
 *   - kAdmit           full service (check + recovery).
 *   - kCompensateOnly  accept with cheap recovery only: the checker
 *                      runs and fired elements are compensated in
 *                      place, but nothing is re-executed exactly.
 *                      First rung of the ladder — most of the
 *                      recovery CPU back, quality held near target by
 *                      the compensator. Without a deployed
 *                      compensator it behaves like kDegrade.
 *   - kDegrade         accept without recovery: the checker still
 *                      runs and records what it would have fixed, but
 *                      recovery is skipped entirely.
 *   - kBypassCheck     accept without check: raw approximate outputs,
 *                      detector bypassed entirely. Emergency-only,
 *                      and only for best-effort traffic.
 *   - kShed            refuse at Submit (kUnavailable) before the
 *                      request costs the device anything.
 *
 * Quality classes order the ladder: best-effort sheds first, silver
 * degrades before gold feels anything, and gold is never shed by
 * admission — only genuine queue-full backpressure can refuse it.
 */

#include <cstdint>
#include <mutex>

namespace rumba::obs {
class Gauge;
}  // namespace rumba::obs

namespace rumba::serve {

/** Per-request service tier (shed order: best-effort first). */
enum class QualityClass : uint32_t {
    kGold = 0,        ///< full service for as long as possible.
    kSilver = 1,      ///< degrades under shedding, sheds in emergency.
    kBestEffort = 2,  ///< first to degrade, first to shed.
};

inline constexpr size_t kNumQualityClasses = 3;

/** Stable lowercase name ("gold", "silver", "best-effort"). */
const char* QualityClassName(QualityClass quality);

/** Where the admission state machine currently sits. */
enum class AdmissionState : uint32_t {
    kClosed = 0,     ///< normal operation: admit everything.
    kShedding = 1,   ///< pressure: degrade low tiers, shed best-effort.
    kEmergency = 2,  ///< saturation: only gold keeps its checker.
};

/** Stable lowercase name ("closed", "shedding", "emergency"). */
const char* AdmissionStateName(AdmissionState state);

/** What to do with one request, per the ladder above (ordered from
 *  full service to refusal). */
enum class AdmissionAction : uint32_t {
    kAdmit = 0,
    kCompensateOnly = 1,
    kDegrade = 2,
    kBypassCheck = 3,
    kShed = 4,
};

/** Stable lowercase name ("admit", "degrade", ...). */
const char* AdmissionActionName(AdmissionAction action);

/** Admission state-machine knobs (fills are fractions of queue
 *  capacity in [0, 1]). */
struct AdmissionConfig {
    /** Master switch: disabled, every Decide() answers kAdmit and the
     *  state stays closed (pure reject-on-full backpressure). */
    bool enabled = true;
    /** Fill at/above which closed escalates to shedding. A firing
     *  latency SLO escalates to shedding at any fill. */
    double shedding_fill = 0.75;
    /** Fill at/above which any state escalates to emergency. */
    double emergency_fill = 0.95;
    /** Consecutive calm observations (fill below shedding_fill and
     *  SLO quiet) required to de-escalate one level. */
    uint32_t calm_steps = 16;
    /** While shedding: best-effort requests shed at/above this fill
     *  (below it they ride the degrade rung instead). */
    double best_effort_shed_fill = 0.50;
    /** While in emergency: silver sheds and best-effort sheds (even
     *  past the bypass rung) at/above this fill. Gold never sheds. */
    double emergency_shed_fill = 0.90;
};

/**
 * The admission state machine. Thread-safe: Submit() calls Decide()
 * concurrently from every client thread; observation, state update
 * and the ladder lookup happen under one short lock.
 */
class AdmissionController {
  public:
    explicit AdmissionController(const AdmissionConfig& config);

    /**
     * Observe one submission attempt and answer for it. @p fill is
     * the target shard's queue fill fraction (depth / capacity) and
     * @p slo_alerting the latency SLO's burn-rate alert state. The
     * observation first steps the state machine (escalate
     * immediately, de-escalate after calm_steps calm observations),
     * then the ladder maps (state, class, fill) to an action.
     */
    AdmissionAction Decide(QualityClass quality, double fill,
                           bool slo_alerting);

    /** Current state (for /statusz and tests). */
    AdmissionState state() const;

    /** State transitions since construction (flap detector). */
    uint64_t Transitions() const;

    const AdmissionConfig& config() const { return config_; }

  private:
    /** Step the state machine for one observation (holds mu_). */
    void Observe(double fill, bool slo_alerting);

    const AdmissionConfig config_;
    mutable std::mutex mu_;
    AdmissionState state_ = AdmissionState::kClosed;
    uint32_t calm_run_ = 0;       ///< consecutive calm observations.
    uint64_t transitions_ = 0;
    obs::Gauge* obs_state_;       ///< serve.admission.state gauge.
};

}  // namespace rumba::serve

#endif  // RUMBA_SERVE_ADMISSION_H_
