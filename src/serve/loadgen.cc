#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <thread>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/timer.h"

namespace rumba::serve {
namespace {

constexpr double kPi = 3.14159265358979323846;

/** Live generators, for the best-effort signal flush. Registration
 *  happens on construction (normal context); the flush hook only
 *  try-locks and iterates, never allocates. */
std::mutex g_loadgen_registry_mu;
std::vector<LoadGenerator*>& LoadgenRegistry()
{
    static std::vector<LoadGenerator*> registry;
    return registry;
}

std::string
ClassStatsJson(const char* cls, const ClassStats& stats)
{
    return std::string("{\"type\":\"loadgen\",\"class\":") +
           obs::JsonQuote(cls) +
           ",\"submitted\":" + std::to_string(stats.submitted) +
           ",\"ok\":" + std::to_string(stats.ok) +
           ",\"degraded\":" + std::to_string(stats.degraded) +
           ",\"compensated\":" + std::to_string(stats.compensated) +
           ",\"bypassed\":" + std::to_string(stats.bypassed) +
           ",\"shed\":" + std::to_string(stats.shed) +
           ",\"expired\":" + std::to_string(stats.expired) +
           ",\"rejected\":" + std::to_string(stats.rejected) +
           ",\"cancelled\":" + std::to_string(stats.cancelled) +
           ",\"failed\":" + std::to_string(stats.failed) +
           ",\"deadline_misses\":" +
           std::to_string(stats.deadline_misses) +
           ",\"served\":" + std::to_string(stats.Served()) +
           ",\"p50_ns\":" + obs::JsonNum(stats.LatencyQuantileNs(0.50)) +
           ",\"p99_ns\":" + obs::JsonNum(stats.LatencyQuantileNs(0.99)) +
           "}";
}

}  // namespace

const char*
ArrivalProcessName(ArrivalProcess arrival)
{
    switch (arrival) {
      case ArrivalProcess::kPoisson: return "poisson";
      case ArrivalProcess::kBursty: return "bursty";
      case ArrivalProcess::kDiurnal: return "diurnal";
    }
    return "unknown";
}

bool
ParseArrivalProcess(const std::string& name, ArrivalProcess* out)
{
    if (name == "poisson")
        *out = ArrivalProcess::kPoisson;
    else if (name == "bursty")
        *out = ArrivalProcess::kBursty;
    else if (name == "diurnal")
        *out = ArrivalProcess::kDiurnal;
    else
        return false;
    return true;
}

double
ClassStats::LatencyQuantileNs(double q) const
{
    if (latencies_ns.empty())
        return 0.0;
    std::vector<double> sorted = latencies_ns;
    const double clamped = std::min(std::max(q, 0.0), 1.0);
    size_t k = static_cast<size_t>(clamped *
                                   static_cast<double>(sorted.size() - 1));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<ptrdiff_t>(k),
                     sorted.end());
    return sorted[k];
}

ClassStats
LoadReport::Total() const
{
    ClassStats total;
    for (const ClassStats& stats : per_class) {
        total.submitted += stats.submitted;
        total.ok += stats.ok;
        total.degraded += stats.degraded;
        total.compensated += stats.compensated;
        total.bypassed += stats.bypassed;
        total.shed += stats.shed;
        total.expired += stats.expired;
        total.rejected += stats.rejected;
        total.cancelled += stats.cancelled;
        total.failed += stats.failed;
        total.deadline_misses += stats.deadline_misses;
        total.latencies_ns.insert(total.latencies_ns.end(),
                                  stats.latencies_ns.begin(),
                                  stats.latencies_ns.end());
    }
    return total;
}

/** One submitted request awaiting its future. */
struct LoadGenerator::InFlight {
    std::future<InvocationResult> future;
    QualityClass quality = QualityClass::kGold;
    uint64_t deadline_ns = 0;  ///< absolute (0 = none).
    uint64_t submit_ns = 0;
};

LoadGenerator::LoadGenerator(ShardedEngine& engine,
                             const LoadGenConfig& config)
    : engine_(engine), config_(config)
{
    {
        std::lock_guard<std::mutex> lock(g_loadgen_registry_mu);
        LoadgenRegistry().push_back(this);
    }
    // A generator with a JSONL sink is itself a flush sink: arm the
    // process-wide best-effort flush so a mid-run SIGINT/SIGTERM
    // still writes the partial report.
    obs::RegisterFlushHook(&LoadGenerator::FlushAll);
    if (!config_.jsonl_out.empty())
        obs::InstallSignalFlush();
}

LoadGenerator::~LoadGenerator()
{
    std::lock_guard<std::mutex> lock(g_loadgen_registry_mu);
    std::vector<LoadGenerator*>& registry = LoadgenRegistry();
    registry.erase(std::remove(registry.begin(), registry.end(), this),
                   registry.end());
}

uint64_t
LoadGenerator::NextGapNs(uint64_t schedule_ns, Rng& rng) const
{
    double rate_hz = config_.rate_hz;
    switch (config_.arrival) {
      case ArrivalProcess::kPoisson:
        break;
      case ArrivalProcess::kBursty: {
        const uint64_t period =
            config_.burst_on_ns + config_.burst_off_ns;
        const uint64_t phase = period == 0 ? 0 : schedule_ns % period;
        rate_hz *= phase < config_.burst_on_ns ? config_.burst_factor
                                               : config_.idle_factor;
        break;
      }
      case ArrivalProcess::kDiurnal: {
        uint64_t period = config_.diurnal_period_ns;
        if (period == 0)
            period = config_.duration_ns == 0 ? 1 : config_.duration_ns;
        const double swing =
            std::sin(kPi * static_cast<double>(schedule_ns % period) /
                     static_cast<double>(period));
        rate_hz *= 1.0 +
                   (config_.diurnal_peak_factor - 1.0) * swing * swing;
        break;
      }
    }
    if (!(rate_hz > 0.0))
        rate_hz = 1.0;
    // Exponential gap at the instantaneous rate (Uniform() < 1, so
    // the log argument stays in (0, 1]).
    const double gap_s = -std::log(1.0 - rng.Uniform()) / rate_hz;
    const double gap_ns = gap_s * 1e9;
    if (!(gap_ns >= 1.0))
        return 1;
    return static_cast<uint64_t>(gap_ns);
}

void
LoadGenerator::AbsorbLocked(const InFlight& flight,
                            const InvocationResult& result,
                            uint64_t resolve_ns)
{
    ClassStats& stats =
        report_.per_class[static_cast<size_t>(flight.quality)];
    switch (result.status.code()) {
      case core::StatusCode::kOk: {
        switch (result.report.degrade) {
          case core::DegradeMode::kNone: ++stats.ok; break;
          case core::DegradeMode::kCompensateOnly:
            ++stats.compensated;
            break;
          case core::DegradeMode::kSkipRecovery: ++stats.degraded; break;
          case core::DegradeMode::kSkipCheck: ++stats.bypassed; break;
        }
        const uint64_t latency_ns = resolve_ns > flight.submit_ns
                                        ? resolve_ns - flight.submit_ns
                                        : 0;
        stats.latencies_ns.push_back(static_cast<double>(latency_ns));
        if (flight.deadline_ns != 0 && resolve_ns > flight.deadline_ns)
            ++stats.deadline_misses;
        break;
      }
      case core::StatusCode::kDeadlineExceeded:
        ++stats.expired;
        if (!result.outputs.empty())
            ++report_.expired_with_output;
        break;
      case core::StatusCode::kUnavailable: ++stats.shed; break;
      case core::StatusCode::kResourceExhausted: ++stats.rejected; break;
      case core::StatusCode::kCancelled: ++stats.cancelled; break;
      default: ++stats.failed; break;
    }
}

LoadReport
LoadGenerator::Run()
{
    Rng arrival_rng =
        Rng::ForStream(config_.seed, LoadGenConfig::kStreamArrival);
    Rng tenant_rng =
        Rng::ForStream(config_.seed, LoadGenConfig::kStreamTenant);
    Rng inputs_rng =
        Rng::ForStream(config_.seed, LoadGenConfig::kStreamInputs);
    Rng jitter_rng =
        Rng::ForStream(config_.seed, LoadGenConfig::kStreamJitter);

    // Normalized tenant-mix CDF (all-zero weights mean all-gold).
    double gold_w = std::max(config_.mix.gold, 0.0);
    double silver_w = std::max(config_.mix.silver, 0.0);
    double best_w = std::max(config_.mix.best_effort, 0.0);
    double weight_sum = gold_w + silver_w + best_w;
    if (weight_sum <= 0.0) {
        gold_w = 1.0;
        weight_sum = 1.0;
    }
    const double gold_cut = gold_w / weight_sum;
    const double silver_cut = (gold_w + silver_w) / weight_sum;

    const size_t width = engine_.InputWidth();
    const uint64_t start_ns = obs::NowNs();
    std::deque<InFlight> live;
    uint64_t schedule_ns = 0;
    uint64_t late_submits = 0;

    for (;;) {
        schedule_ns += NextGapNs(schedule_ns, arrival_rng);
        if (schedule_ns >= config_.duration_ns)
            break;

        // Draw every request decision up front so the streams advance
        // in schedule order regardless of wall-clock jitter.
        const double tenant_draw = tenant_rng.Uniform();
        QualityClass quality = QualityClass::kBestEffort;
        uint64_t relative_deadline_ns = config_.best_effort_deadline_ns;
        if (tenant_draw < gold_cut) {
            quality = QualityClass::kGold;
            relative_deadline_ns = config_.gold_deadline_ns;
        } else if (tenant_draw < silver_cut) {
            quality = QualityClass::kSilver;
            relative_deadline_ns = config_.silver_deadline_ns;
        }
        size_t count = config_.elements == 0 ? 1 : config_.elements;
        if (config_.element_jitter > 0) {
            const int64_t jitter = jitter_rng.Range(
                -static_cast<int64_t>(config_.element_jitter),
                static_cast<int64_t>(config_.element_jitter));
            const int64_t jittered =
                static_cast<int64_t>(count) + jitter;
            count = jittered < 1 ? 1 : static_cast<size_t>(jittered);
        }
        InvocationRequest request;
        request.count = count;
        request.width = width;
        request.inputs.resize(count * width);
        const size_t pool_elements =
            width == 0 ? 0 : config_.input_pool.size() / width;
        if (pool_elements > 0) {
            for (size_t e = 0; e < count; ++e) {
                const size_t pick = static_cast<size_t>(
                    inputs_rng.Below(pool_elements));
                std::copy_n(
                    config_.input_pool.begin() +
                        static_cast<ptrdiff_t>(pick * width),
                    width,
                    request.inputs.begin() +
                        static_cast<ptrdiff_t>(e * width));
            }
        } else {
            for (double& v : request.inputs)
                v = inputs_rng.Uniform(config_.input_lo,
                                       config_.input_hi);
        }
        request.quality = quality;

        // Open loop: wait for the scheduled arrival when ahead,
        // submit immediately (and count the slip) when behind.
        const uint64_t target_ns = start_ns + schedule_ns;
        uint64_t now_ns = obs::NowNs();
        if (now_ns < target_ns) {
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(target_ns - now_ns));
            now_ns = obs::NowNs();
        } else if (now_ns > target_ns + 1'000'000) {
            ++late_submits;
        }
        if (relative_deadline_ns != 0)
            request.deadline_ns = now_ns + relative_deadline_ns;

        InFlight flight;
        flight.quality = quality;
        flight.deadline_ns = request.deadline_ns;
        flight.submit_ns = now_ns;
        flight.future = engine_.Submit(std::move(request));
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++report_.offered;
            ++report_.per_class[static_cast<size_t>(quality)].submitted;
            report_.late_submits = late_submits;
            report_.wall_ns = obs::NowNs() - start_ns;
        }
        live.push_back(std::move(flight));

        // Opportunistic FIFO harvest keeps the in-flight window (and
        // the latency-measurement slack) small without ever blocking
        // the schedule.
        while (!live.empty() &&
               live.front().future.wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready) {
            InFlight done = std::move(live.front());
            live.pop_front();
            const InvocationResult result = done.future.get();
            std::lock_guard<std::mutex> lock(mu_);
            AbsorbLocked(done, result, obs::NowNs());
        }
    }

    // Schedule exhausted: let the engine finish, then harvest the
    // tail (every accepted future resolves by Drain()).
    engine_.Drain();
    while (!live.empty()) {
        InFlight done = std::move(live.front());
        live.pop_front();
        const InvocationResult result = done.future.get();
        std::lock_guard<std::mutex> lock(mu_);
        AbsorbLocked(done, result, obs::NowNs());
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        report_.wall_ns = obs::NowNs() - start_ns;
    }

    if (!config_.jsonl_out.empty() &&
        !WriteLoadReportFile(config_.jsonl_out, Snapshot(), config_))
        Warn("loadgen: could not write %s", config_.jsonl_out.c_str());
    return Snapshot();
}

LoadReport
LoadGenerator::Snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return report_;
}

void
LoadGenerator::FlushAll()
{
    // Called from a signal handler: only try-lock, never block.
    if (!g_loadgen_registry_mu.try_lock())
        return;
    for (LoadGenerator* generator : LoadgenRegistry()) {
        if (generator->config_.jsonl_out.empty())
            continue;
        if (!generator->mu_.try_lock())
            continue;
        const LoadReport report = generator->report_;
        generator->mu_.unlock();
        WriteLoadReportFile(generator->config_.jsonl_out, report,
                            generator->config_);
    }
    g_loadgen_registry_mu.unlock();
}

std::string
LoadReportToJsonl(const LoadReport& report, const LoadGenConfig& config)
{
    std::string out = obs::MetadataJsonLine() + "\n";
    for (size_t i = 0; i < kNumQualityClasses; ++i)
        out += ClassStatsJson(
                   QualityClassName(static_cast<QualityClass>(i)),
                   report.per_class[i]) +
               "\n";
    const ClassStats total = report.Total();
    std::string line = ClassStatsJson("total", total);
    line.pop_back();  // reopen the object for the run-wide fields.
    line += ",\"offered\":" + std::to_string(report.offered) +
            ",\"wall_ns\":" + std::to_string(report.wall_ns) +
            ",\"late_submits\":" + std::to_string(report.late_submits) +
            ",\"expired_with_output\":" +
            std::to_string(report.expired_with_output) +
            ",\"arrival\":" +
            obs::JsonQuote(ArrivalProcessName(config.arrival)) +
            ",\"rate_hz\":" + obs::JsonNum(config.rate_hz) +
            ",\"duration_ns\":" + std::to_string(config.duration_ns) +
            ",\"seed\":" + std::to_string(config.seed) + "}";
    out += line + "\n";
    return out;
}

bool
WriteLoadReportFile(const std::string& path, const LoadReport& report,
                    const LoadGenConfig& config)
{
    const std::string body = LoadReportToJsonl(report, config);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    return std::fclose(f) == 0 && written == body.size();
}

}  // namespace rumba::serve
