#ifndef RUMBA_SERVE_LOADGEN_H_
#define RUMBA_SERVE_LOADGEN_H_

/**
 * @file
 * Chaos load generator: seeded open-loop arrival processes over the
 * sharded serving engine. Closed-loop drivers (submit, wait, repeat)
 * can never overload anything — the moment the engine slows down the
 * driver slows down with it — so every overload claim in this repo is
 * made with an *open-loop* generator: arrivals follow a precomputed
 * schedule and are submitted on time (or as fast as possible when the
 * driver falls behind) regardless of how the engine is coping. That
 * is what makes a 2x-capacity burst actually deliver 2x capacity.
 *
 * Three arrival processes cover the overload shapes the admission
 * ladder (serve/admission.h) must survive: Poisson (steady memoryless
 * traffic), bursty on/off (square-wave flash crowds), and a diurnal
 * ramp (slow sinusoidal swell). All randomness — interarrival gaps,
 * tenant class, input values, element-count jitter — draws from
 * Rng::ForStream(seed, stream) with one frozen stream per decision,
 * the same discipline the fault injector uses, so a scenario replays
 * bit-identically next to an armed RUMBA_FAULT_PLAN and adding a
 * decision never perturbs the others' schedules.
 *
 * The generator tracks every submitted future to resolution and
 * aggregates per-quality-class outcome counts and client-observed
 * latency quantiles into a LoadReport. Reports export as JSONL
 * (jsonl_out), and live generators register a best-effort flush hook
 * (obs/export.h) so a SIGINT/SIGTERM mid-run still writes the partial
 * report — the same no-silent-loss policy the serving exports follow.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "serve/engine.h"

namespace rumba::serve {

/** Arrival-process family for the open-loop schedule. */
enum class ArrivalProcess : uint32_t {
    kPoisson,  ///< memoryless: exponential interarrival gaps.
    kBursty,   ///< on/off square wave: flash crowd, then near-idle.
    kDiurnal,  ///< sinusoidal swell between trough and peak rate.
};

/** Stable name ("poisson" / "bursty" / "diurnal"). */
const char* ArrivalProcessName(ArrivalProcess arrival);

/** Parse a name back to the enum; false on unknown names. */
bool ParseArrivalProcess(const std::string& name, ArrivalProcess* out);

/** Tenant mix: relative weights of each quality class in the offered
 *  traffic (normalized internally; all-zero means all-gold). */
struct TenantMix {
    double gold = 0.25;
    double silver = 0.25;
    double best_effort = 0.50;
};

/** Load-generator knobs. */
struct LoadGenConfig {
    ArrivalProcess arrival = ArrivalProcess::kPoisson;
    /** Mean offered rate over the run, in requests per second. */
    double rate_hz = 500.0;
    /** Schedule horizon: arrivals are generated until this much
     *  schedule time has elapsed. */
    uint64_t duration_ns = 1'000'000'000ull;

    /** Bursty: on-phase rate = rate_hz x burst_factor, off-phase rate
     *  = rate_hz x idle_factor. @{ */
    double burst_factor = 4.0;
    double idle_factor = 0.10;
    uint64_t burst_on_ns = 50'000'000ull;
    uint64_t burst_off_ns = 150'000'000ull;
    /** @} */

    /** Diurnal: instantaneous rate swings sinusoidally from rate_hz
     *  up to rate_hz x peak_factor over each period (0 period spans
     *  the whole run: one trough-peak-trough swell). @{ */
    double diurnal_peak_factor = 3.0;
    uint64_t diurnal_period_ns = 0;
    /** @} */

    /** Seed for every decision stream (see kStream* below). */
    uint64_t seed = 42;

    /** Elements per request: `elements` +/- uniform jitter of at most
     *  `element_jitter` (never below 1). @{ */
    size_t elements = 8;
    size_t element_jitter = 0;
    /** @} */

    /** Element input values: uniform in [input_lo, input_hi). @{ */
    double input_lo = 0.05;
    double input_hi = 1.0;
    /** @} */

    /** Optional element pool, flattened N x engine-input-width
     *  doubles: when non-empty, request elements are drawn from it
     *  with replacement instead of the uniform range — keeps the
     *  offered traffic inside the distribution the deployed checker
     *  was trained on (scenario runs feed it the workload's test
     *  set). */
    std::vector<double> input_pool;

    TenantMix mix;

    /** Relative deadline per class, in nanoseconds from Submit
     *  (0 = that class carries no deadline). @{ */
    uint64_t gold_deadline_ns = 0;
    uint64_t silver_deadline_ns = 0;
    uint64_t best_effort_deadline_ns = 0;
    /** @} */

    /** When non-empty, Run() (and the signal flush hook, mid-run)
     *  writes the JSONL report here. */
    std::string jsonl_out;

    /** Frozen decision-stream keys (Rng::ForStream). @{ */
    static constexpr uint64_t kStreamArrival = 0;
    static constexpr uint64_t kStreamTenant = 1;
    static constexpr uint64_t kStreamInputs = 2;
    static constexpr uint64_t kStreamJitter = 3;
    /** @} */
};

/** Outcome counts and latency samples for one quality class. */
struct ClassStats {
    uint64_t submitted = 0;
    uint64_t ok = 0;         ///< served at full quality (no degrade).
    uint64_t degraded = 0;   ///< served, recovery skipped.
    uint64_t compensated = 0;  ///< served, compensate-only recovery.
    uint64_t bypassed = 0;   ///< served, checker bypassed.
    uint64_t shed = 0;       ///< refused by admission (kUnavailable).
    uint64_t expired = 0;    ///< kDeadlineExceeded (Submit or queue).
    uint64_t rejected = 0;   ///< queue-full backpressure.
    uint64_t cancelled = 0;  ///< engine shut down underneath it.
    uint64_t failed = 0;     ///< any other non-ok status.
    /** Served requests whose client-observed latency exceeded their
     *  deadline (the work still completed — it expired in flight
     *  from the client's point of view, not the queue's). */
    uint64_t deadline_misses = 0;
    /** Client-observed submit -> resolution latency of served
     *  requests (includes harvest-polling granularity). */
    std::vector<double> latencies_ns;

    /** Served requests (ok + degraded + compensated + bypassed). */
    uint64_t Served() const
    {
        return ok + degraded + compensated + bypassed;
    }

    /** Latency quantile in ns over served requests (0 when none). */
    double LatencyQuantileNs(double q) const;
};

/** Everything one Run() observed. */
struct LoadReport {
    /** Stats by quality class, indexed by QualityClass. */
    ClassStats per_class[kNumQualityClasses];
    /** Arrivals the schedule offered (== sum of class submitted). */
    uint64_t offered = 0;
    /** Wall time the run actually took (>= duration_ns when the
     *  driver fell behind the schedule). */
    uint64_t wall_ns = 0;
    /** Submissions made after their scheduled arrival by more than
     *  1 ms — how far the open loop fell behind. */
    uint64_t late_submits = 0;
    /** kDeadlineExceeded results that nonetheless carried outputs —
     *  expired work that reached the device. The engine promises this
     *  never happens; the scenario runner asserts it stays zero. */
    uint64_t expired_with_output = 0;

    ClassStats Total() const;
};

/**
 * One open-loop run against an engine. Construction registers the
 * generator with the process-wide flush registry; destruction
 * unregisters it. Run() is single-shot and blocking.
 */
class LoadGenerator {
  public:
    LoadGenerator(ShardedEngine& engine, const LoadGenConfig& config);
    ~LoadGenerator();

    LoadGenerator(const LoadGenerator&) = delete;
    LoadGenerator& operator=(const LoadGenerator&) = delete;

    /**
     * Generate and submit the whole schedule, harvest every future,
     * and return the report. Also writes config.jsonl_out when set.
     */
    LoadReport Run();

    /** The report so far (thread-safe; partial while Run() is live). */
    LoadReport Snapshot() const;

    const LoadGenConfig& Config() const { return config_; }

    /**
     * Best-effort flush of every live generator's partial report to
     * its jsonl_out (skipping any whose lock is held — called from a
     * signal handler, so it must never block). Registered with
     * obs::RegisterFlushHook on first generator construction.
     */
    static void FlushAll();

  private:
    struct InFlight;

    /** Interarrival gap from the current schedule time. */
    uint64_t NextGapNs(uint64_t schedule_ns, Rng& rng) const;

    /** Fold one resolved future into the report (mu_ held). */
    void AbsorbLocked(const InFlight& flight,
                      const InvocationResult& result,
                      uint64_t resolve_ns);

    ShardedEngine& engine_;
    const LoadGenConfig config_;
    mutable std::mutex mu_;
    LoadReport report_;
};

/**
 * Render a report as JSONL: the run-metadata header of obs/export.h,
 * one {"type":"loadgen","class":...} line per quality class, and one
 * "total" line carrying offered / wall_ns / late_submits.
 */
std::string LoadReportToJsonl(const LoadReport& report,
                              const LoadGenConfig& config);

/** Write the JSONL rendering to @p path. False on I/O error. */
bool WriteLoadReportFile(const std::string& path,
                         const LoadReport& report,
                         const LoadGenConfig& config);

}  // namespace rumba::serve

#endif  // RUMBA_SERVE_LOADGEN_H_
