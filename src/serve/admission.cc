#include "serve/admission.h"

#include "obs/metrics.h"

namespace rumba::serve {

const char*
QualityClassName(QualityClass quality)
{
    switch (quality) {
      case QualityClass::kGold:
        return "gold";
      case QualityClass::kSilver:
        return "silver";
      case QualityClass::kBestEffort:
        return "best-effort";
    }
    return "unknown";
}

const char*
AdmissionStateName(AdmissionState state)
{
    switch (state) {
      case AdmissionState::kClosed:
        return "closed";
      case AdmissionState::kShedding:
        return "shedding";
      case AdmissionState::kEmergency:
        return "emergency";
    }
    return "unknown";
}

const char*
AdmissionActionName(AdmissionAction action)
{
    switch (action) {
      case AdmissionAction::kAdmit:
        return "admit";
      case AdmissionAction::kCompensateOnly:
        return "compensate-only";
      case AdmissionAction::kDegrade:
        return "degrade";
      case AdmissionAction::kBypassCheck:
        return "bypass-check";
      case AdmissionAction::kShed:
        return "shed";
    }
    return "unknown";
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      obs_state_(
          obs::Registry::Default().GetGauge("serve.admission.state"))
{
    obs_state_->Set(0.0);
}

void
AdmissionController::Observe(double fill, bool slo_alerting)
{
    // Pressure level this observation argues for. A firing latency
    // SLO is at least shedding pressure even with shallow queues
    // (burn is about served latency, not just depth); emergency needs
    // the queues themselves to be nearly full.
    AdmissionState level = AdmissionState::kClosed;
    if (fill >= config_.emergency_fill)
        level = AdmissionState::kEmergency;
    else if (fill >= config_.shedding_fill || slo_alerting)
        level = AdmissionState::kShedding;

    if (level > state_) {
        // Escalate immediately: overload compounds, hysteresis on the
        // way up would just queue more doomed work.
        state_ = level;
        calm_run_ = 0;
        ++transitions_;
        obs_state_->Set(static_cast<double>(state_));
        return;
    }
    if (level < state_) {
        // De-escalate one level only after a full calm run: a single
        // lucky dequeue must not flap shedding -> closed -> shedding.
        if (++calm_run_ >= config_.calm_steps) {
            state_ = static_cast<AdmissionState>(
                static_cast<uint32_t>(state_) - 1);
            calm_run_ = 0;
            ++transitions_;
            obs_state_->Set(static_cast<double>(state_));
        }
        return;
    }
    calm_run_ = 0;  // holding level: a calm run must be consecutive.
}

AdmissionAction
AdmissionController::Decide(QualityClass quality, double fill,
                            bool slo_alerting)
{
    if (!config_.enabled)
        return AdmissionAction::kAdmit;
    std::lock_guard<std::mutex> lock(mu_);
    Observe(fill, slo_alerting);

    switch (state_) {
      case AdmissionState::kClosed:
        return AdmissionAction::kAdmit;

      case AdmissionState::kShedding:
        switch (quality) {
          case QualityClass::kGold:
            return AdmissionAction::kAdmit;
          case QualityClass::kSilver:
            // The cheapest real rung: keep the checker and the
            // in-place compensator, drop only exact re-execution.
            return AdmissionAction::kCompensateOnly;
          case QualityClass::kBestEffort:
            return fill >= config_.best_effort_shed_fill
                       ? AdmissionAction::kShed
                       : AdmissionAction::kDegrade;
        }
        return AdmissionAction::kAdmit;

      case AdmissionState::kEmergency:
        switch (quality) {
          case QualityClass::kGold:
            // Gold keeps its checker and the cheap compensate tier
            // but gives up exact re-execution; it is never shed by
            // admission (queue-full backpressure is the only thing
            // that can refuse gold).
            return AdmissionAction::kCompensateOnly;
          case QualityClass::kSilver:
            return fill >= config_.emergency_shed_fill
                       ? AdmissionAction::kShed
                       : AdmissionAction::kDegrade;
          case QualityClass::kBestEffort:
            return fill >= config_.emergency_shed_fill
                       ? AdmissionAction::kShed
                       : AdmissionAction::kBypassCheck;
        }
        return AdmissionAction::kAdmit;
    }
    return AdmissionAction::kAdmit;
}

AdmissionState
AdmissionController::state() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
}

uint64_t
AdmissionController::Transitions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return transitions_;
}

}  // namespace rumba::serve
