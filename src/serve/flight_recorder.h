#ifndef RUMBA_SERVE_FLIGHT_RECORDER_H_
#define RUMBA_SERVE_FLIGHT_RECORDER_H_

/**
 * @file
 * Per-shard flight recorder: a bounded ring of the last N completed
 * request records — inputs digest, threshold, predicted vs actual
 * error, stage timings, breaker position — that the serving engine
 * dumps to a JSONL artifact the moment something goes wrong (breaker
 * opens, a fault-plan fault fires) or an operator asks
 * (ShardedEngine::DumpFlightRecords). Unlike request traces
 * (obs/reqtrace.h), which are sampled and process-global, the flight
 * recorder keeps *every* recent request per shard precisely so the
 * moments before an incident are never sampled away: PR 3's fault
 * drills become diagnosable incidents.
 *
 * Appending is a mutex-guarded struct copy into preallocated storage;
 * rendering/writing happens only on dump.
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rumba::serve {

/** One completed request as the flight recorder saw it. */
struct FlightRecord {
    uint64_t trace_id = 0;        ///< obs/reqtrace.h id (joins dumps
                                  ///< with exported traces).
    uint32_t shard = 0;
    uint64_t enqueue_ns = 0;      ///< steady clock at accept.
    uint64_t complete_ns = 0;     ///< steady clock at future resolve.
    uint64_t queue_wait_ns = 0;   ///< enqueue -> worker pickup.
    uint64_t device_ns = 0;       ///< accelerator streaming time.
    uint64_t elements = 0;
    uint64_t inputs_digest = 0;   ///< FNV-1a over the raw input bytes.
    double threshold = 0.0;       ///< detector threshold that round.
    double predicted_error_pct = 0.0;  ///< checker's estimate.
    double actual_error_pct = 0.0;     ///< verified residual error.
    uint64_t fixes = 0;           ///< re-executed iterations.
    uint32_t breaker_state = 0;   ///< 0 closed / 1 open / 2 half-open.
    uint32_t status_code = 0;     ///< StatusCode of the result (0 = ok).
    /** Sampled by the quality auditor (obs/audit.h): the audit
     *  verdict joins this record through trace_id. */
    bool audited = false;
};

/** FNV-1a 64-bit over @p count doubles (stable input fingerprint). */
uint64_t DigestInputs(const double* data, size_t count);

/**
 * Bounded ring of FlightRecords. Thread-safe; one instance per shard
 * (plus Dump callers from other threads).
 */
class FlightRecorder {
  public:
    static constexpr size_t kDefaultCapacity = 256;

    explicit FlightRecorder(size_t capacity = kDefaultCapacity);

    /** Append one record, evicting the oldest when full. */
    void Append(const FlightRecord& record);

    /** Retained records, oldest first. */
    std::vector<FlightRecord> Snapshot() const;

    /** Records appended since construction. */
    uint64_t TotalAppended() const;

    size_t Capacity() const { return capacity_; }

    /** Drop all retained records (counters keep counting). */
    void Clear();

    /**
     * Write the retained records to
     * @p dir/flight-shard<shard>-<seq>.jsonl: the obs run-metadata
     * header, one {"type":"flight_dump","reason":...} line, then one
     * {"type":"flight",...} line per record, oldest first. @p seq is
     * maintained internally so repeated dumps never overwrite.
     * Returns the path written, or "" on I/O failure (after a
     * warning).
     */
    std::string Dump(const std::string& dir, uint32_t shard,
                     const std::string& reason);

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::vector<FlightRecord> ring_;
    size_t head_ = 0;        ///< next write slot when full.
    uint64_t appended_ = 0;
    uint32_t dump_seq_ = 0;
};

/** One record as a single JSON object line (no trailing newline). */
std::string FlightRecordJson(const FlightRecord& record);

}  // namespace rumba::serve

#endif  // RUMBA_SERVE_FLIGHT_RECORDER_H_
