#include "serve/engine.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "core/batch_view.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::serve {

namespace {

/** Immediately-resolved future for requests that never enqueue. */
std::future<InvocationResult>
Resolved(InvocationResult result)
{
    std::promise<InvocationResult> promise;
    std::future<InvocationResult> future = promise.get_future();
    promise.set_value(std::move(result));
    return future;
}

}  // namespace

ShardedEngine::ShardedEngine(const ServeConfig& config,
                             size_t input_width, size_t output_width)
    : config_(config),
      input_width_(input_width),
      output_width_(output_width)
{
    auto& registry = obs::Registry::Default();
    obs_submitted_ = registry.GetCounter("serve.submitted");
    obs_rejected_ = registry.GetCounter("serve.rejected");
    obs_completed_ = registry.GetCounter("serve.completed");
    obs_cancelled_ = registry.GetCounter("serve.cancelled");
    obs_coalesced_batches_ =
        registry.GetCounter("serve.coalesced_batches");
    obs_enqueue_to_complete_ns_ =
        registry.GetHistogram("serve.enqueue_to_complete_ns");
    obs_batch_elements_ = registry.GetHistogram("serve.batch_elements");
}

core::Result<std::unique_ptr<ShardedEngine>>
ShardedEngine::Create(const core::Artifact& artifact,
                      const core::RuntimeConfig& runtime_config,
                      const ServeConfig& serve_config)
{
    if (serve_config.shards == 0) {
        return core::Status(core::StatusCode::kInvalidArgument,
                            "a serving engine needs at least one shard");
    }
    if (serve_config.queue_capacity == 0) {
        return core::Status(
            core::StatusCode::kInvalidArgument,
            "queue_capacity 0 would reject every submission");
    }

    // Validate the artifact once, then replicate: every shard is
    // instantiated from the same deployment blob (train-once,
    // replicate-everywhere), so one failure mode covers all shards.
    std::vector<std::unique_ptr<core::RumbaRuntime>> replicas;
    replicas.reserve(serve_config.shards);
    for (size_t i = 0; i < serve_config.shards; ++i) {
        auto replica =
            core::RumbaRuntime::FromArtifact(artifact, runtime_config);
        if (!replica.ok())
            return replica.status();
        replicas.push_back(std::move(replica).value());
    }

    const size_t in_w = replicas.front()->Bench().NumInputs();
    const size_t out_w = replicas.front()->Bench().NumOutputs();
    std::unique_ptr<ShardedEngine> engine(
        new ShardedEngine(serve_config, in_w, out_w));

    auto& registry = obs::Registry::Default();
    engine->shards_.reserve(serve_config.shards);
    for (size_t i = 0; i < serve_config.shards; ++i) {
        auto shard = std::make_unique<Shard>(serve_config.queue_capacity);
        shard->runtime = std::move(replicas[i]);
        const std::string prefix =
            "serve.shard" + std::to_string(i) + ".";
        shard->obs_queue_depth =
            registry.GetGauge(prefix + "queue_depth");
        shard->obs_breaker_state =
            registry.GetGauge(prefix + "breaker_state");
        shard->obs_served = registry.GetCounter(prefix + "served");
        engine->shards_.push_back(std::move(shard));
    }
    for (size_t i = 0; i < serve_config.shards; ++i) {
        engine->shards_[i]->worker =
            std::thread([raw = engine.get(), i] { raw->WorkerLoop(i); });
    }
    return engine;
}

ShardedEngine::~ShardedEngine()
{
    Shutdown();
}

const core::RumbaRuntime&
ShardedEngine::Runtime(size_t i) const
{
    RUMBA_CHECK(i < shards_.size());
    return *shards_[i]->runtime;
}

std::future<InvocationResult>
ShardedEngine::Submit(InvocationRequest request)
{
    obs_submitted_->Increment();

    InvocationResult reject;
    if (shutdown_.load(std::memory_order_acquire)) {
        reject.status =
            core::Status(core::StatusCode::kUnavailable,
                         "engine is shut down");
        obs_rejected_->Increment();
        return Resolved(std::move(reject));
    }
    if (request.count == 0 || request.width != input_width_ ||
        request.inputs.size() != request.count * request.width) {
        reject.status = core::Status(
            core::StatusCode::kInvalidArgument,
            "request shape must be count x " +
                std::to_string(input_width_) + " contiguous doubles");
        obs_rejected_->Increment();
        return Resolved(std::move(reject));
    }
    if (request.shard != InvocationRequest::kAnyShard &&
        (request.shard < 0 ||
         static_cast<size_t>(request.shard) >= shards_.size())) {
        reject.status =
            core::Status(core::StatusCode::kInvalidArgument,
                         "no such shard " +
                             std::to_string(request.shard));
        obs_rejected_->Increment();
        return Resolved(std::move(reject));
    }

    const size_t shard_index =
        request.shard == InvocationRequest::kAnyShard
            ? next_shard_.fetch_add(1, std::memory_order_relaxed) %
                  shards_.size()
            : static_cast<size_t>(request.shard);
    Shard& shard = *shards_[shard_index];

    Pending pending;
    pending.request = std::move(request);
    pending.enqueue_ns = obs::NowNs();
    std::future<InvocationResult> future =
        pending.promise.get_future();

    // Count the request in-flight *before* the push: the worker may
    // complete it (and decrement) the instant it lands.
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        ++in_flight_;
    }
    if (!shard.queue.TryPush(pending)) {
        {
            std::lock_guard<std::mutex> lock(drain_mu_);
            --in_flight_;
        }
        drain_cv_.notify_all();
        reject.status = core::Status(
            core::StatusCode::kResourceExhausted,
            "shard " + std::to_string(shard_index) +
                " queue is full (backpressure; retry later)");
        reject.shard = shard_index;
        obs_rejected_->Increment();
        // The promise in `pending` dies unused; the caller holds the
        // resolved future below instead.
        return Resolved(std::move(reject));
    }
    shard.obs_queue_depth->Set(
        static_cast<double>(shard.queue.Size()));
    return future;
}

void
ShardedEngine::Drain()
{
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ShardedEngine::Shutdown()
{
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
        return;  // idempotent: someone already shut us down.

    // Cancel everything still queued; workers finish their in-flight
    // batch (its futures resolve kOk), then see the closed queue and
    // exit.
    for (auto& shard : shards_) {
        std::deque<Pending> leftovers;
        shard->queue.Close(&leftovers);
        for (auto& pending : leftovers) {
            InvocationResult cancelled;
            cancelled.status =
                core::Status(core::StatusCode::kCancelled,
                             "engine shut down before the request ran");
            obs_cancelled_->Increment();
            FinishOne(&pending, std::move(cancelled));
        }
    }
    for (auto& shard : shards_) {
        if (shard->worker.joinable())
            shard->worker.join();
    }
}

void
ShardedEngine::Pause()
{
    for (auto& shard : shards_)
        shard->queue.SetPaused(true);
}

void
ShardedEngine::Resume()
{
    for (auto& shard : shards_)
        shard->queue.SetPaused(false);
}

void
ShardedEngine::FinishOne(Pending* pending, InvocationResult result)
{
    pending->promise.set_value(std::move(result));
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        --in_flight_;
    }
    drain_cv_.notify_all();
}

void
ShardedEngine::WorkerLoop(size_t shard_index)
{
    Shard& shard = *shards_[shard_index];
    Pending first;
    while (shard.queue.Pop(&first)) {
        std::vector<Pending> batch;
        size_t total = first.request.count;
        batch.push_back(std::move(first));
        if (config_.max_coalesce_elements > 0) {
            Pending extra;
            while (total < config_.max_coalesce_elements &&
                   shard.queue.TryPop(&extra)) {
                total += extra.request.count;
                batch.push_back(std::move(extra));
            }
        }
        shard.obs_queue_depth->Set(
            static_cast<double>(shard.queue.Size()));
        ProcessBatch(shard, shard_index, &batch);
    }
}

void
ShardedEngine::ProcessBatch(Shard& shard, size_t shard_index,
                            std::vector<Pending>* batch)
{
    const obs::Span batch_span("serve.batch");
    size_t total = 0;
    for (const Pending& pending : *batch)
        total += pending.request.count;
    obs_batch_elements_->Observe(static_cast<double>(total));
    if (batch->size() > 1)
        obs_coalesced_batches_->Increment();

    // One contiguous invocation over the whole batch. A lone request
    // is served straight out of its own buffer (zero copy); a
    // coalesced batch concatenates into shard-local scratch.
    const double* in_data;
    if (batch->size() == 1) {
        in_data = (*batch)[0].request.inputs.data();
    } else {
        shard.scratch_in.clear();
        shard.scratch_in.reserve(total * input_width_);
        for (const Pending& pending : *batch) {
            shard.scratch_in.insert(shard.scratch_in.end(),
                                    pending.request.inputs.begin(),
                                    pending.request.inputs.end());
        }
        in_data = shard.scratch_in.data();
    }
    shard.scratch_out.resize(total * output_width_);

    const core::BatchView view(in_data, total, input_width_);
    const core::InvocationReport report =
        shard.runtime->ProcessInvocation(view,
                                         shard.scratch_out.data());

    // Modeled accelerator occupancy (see ServeConfig): the shard's
    // virtual device stays busy for the invocation's element count;
    // other shards' devices run during the wait, which is exactly the
    // overlap a multi-accelerator deployment gets.
    if (config_.emulated_device_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            config_.emulated_device_ns * total));
    }

    shard.obs_breaker_state->Set(
        static_cast<double>(static_cast<int>(report.breaker_state)));
    shard.obs_served->Increment(total);

    const uint64_t done_ns = obs::NowNs();
    size_t offset = 0;
    for (Pending& pending : *batch) {
        const size_t count = pending.request.count;
        InvocationResult result;
        result.status = core::Status::Ok();
        result.shard = shard_index;
        result.report = report;
        result.report.elements = count;
        result.outputs.assign(
            shard.scratch_out.begin() +
                static_cast<ptrdiff_t>(offset * output_width_),
            shard.scratch_out.begin() + static_cast<ptrdiff_t>(
                                            (offset + count) *
                                            output_width_));
        offset += count;
        obs_enqueue_to_complete_ns_->Observe(
            static_cast<double>(done_ns - pending.enqueue_ns));
        obs_completed_->Increment();
        FinishOne(&pending, std::move(result));
    }
}

}  // namespace rumba::serve
