#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string_view>

#include "common/logging.h"
#include "core/batch_view.h"
#include "obs/audit.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::serve {

namespace {

/** Immediately-resolved future for requests that never enqueue. */
std::future<InvocationResult>
Resolved(InvocationResult result)
{
    std::promise<InvocationResult> promise;
    std::future<InvocationResult> future = promise.get_future();
    promise.set_value(std::move(result));
    return future;
}

const char*
TuningModeName(core::TuningMode mode)
{
    switch (mode) {
      case core::TuningMode::kToq: return "toq";
      case core::TuningMode::kEnergy: return "energy";
      case core::TuningMode::kQuality: return "quality";
    }
    return "unknown";
}

}  // namespace

ShardedEngine::ShardedEngine(const ServeConfig& config,
                             size_t input_width, size_t output_width)
    : config_(config),
      input_width_(input_width),
      output_width_(output_width)
{
    auto& registry = obs::Registry::Default();
    obs_submitted_ = registry.GetCounter("serve.submitted");
    obs_rejected_ = registry.GetCounter("serve.rejected");
    obs_completed_ = registry.GetCounter("serve.completed");
    obs_cancelled_ = registry.GetCounter("serve.cancelled");
    obs_coalesced_batches_ =
        registry.GetCounter("serve.coalesced_batches");
    obs_enqueue_to_complete_ns_ =
        registry.GetHistogram("serve.enqueue_to_complete_ns");
    obs_batch_elements_ = registry.GetHistogram("serve.batch_elements");
    obs_adm_admitted_ = registry.GetCounter("serve.admission.admitted");
    obs_adm_compensated_ =
        registry.GetCounter("serve.admission.compensated");
    obs_adm_degraded_ = registry.GetCounter("serve.admission.degraded");
    obs_adm_bypassed_ = registry.GetCounter("serve.admission.bypassed");
    obs_adm_shed_ = registry.GetCounter("serve.admission.shed");
    obs_adm_expired_ = registry.GetCounter("serve.admission.expired");
    obs_adm_rejected_ = registry.GetCounter("serve.admission.rejected");
}

core::Result<std::unique_ptr<ShardedEngine>>
ShardedEngine::Create(const core::Artifact& artifact,
                      const core::RuntimeConfig& runtime_config,
                      const ServeConfig& serve_config)
{
    if (serve_config.shards == 0) {
        return core::Status(core::StatusCode::kInvalidArgument,
                            "a serving engine needs at least one shard");
    }
    if (serve_config.queue_capacity == 0) {
        return core::Status(
            core::StatusCode::kInvalidArgument,
            "queue_capacity 0 would reject every submission");
    }

    // Request tracing needs per-stage wall clock from every replica;
    // everything else in the runtime config passes through untouched.
    core::RuntimeConfig shard_runtime_config = runtime_config;
    if (serve_config.trace.enabled)
        shard_runtime_config.stage_timings = true;
    // Cost profiling needs per-stage thread CPU from every replica.
    if (serve_config.profile.enabled)
        shard_runtime_config.cpu_attribution = true;

    // Validate the artifact once, then replicate: every shard is
    // instantiated from the same deployment blob (train-once,
    // replicate-everywhere), so one failure mode covers all shards.
    std::vector<std::unique_ptr<core::RumbaRuntime>> replicas;
    replicas.reserve(serve_config.shards);
    for (size_t i = 0; i < serve_config.shards; ++i) {
        auto replica = core::RumbaRuntime::FromArtifact(
            artifact, shard_runtime_config);
        if (!replica.ok())
            return replica.status();
        replicas.push_back(std::move(replica).value());
    }

    const size_t in_w = replicas.front()->Bench().NumInputs();
    const size_t out_w = replicas.front()->Bench().NumOutputs();
    std::unique_ptr<ShardedEngine> engine(
        new ShardedEngine(serve_config, in_w, out_w));

    auto& registry = obs::Registry::Default();
    engine->shards_.reserve(serve_config.shards);
    for (size_t i = 0; i < serve_config.shards; ++i) {
        auto shard = std::make_unique<Shard>(serve_config.queue_capacity);
        shard->runtime = std::move(replicas[i]);
        const std::string prefix =
            "serve.shard" + std::to_string(i) + ".";
        shard->obs_queue_depth =
            registry.GetGauge(prefix + "queue_depth");
        shard->obs_breaker_state =
            registry.GetGauge(prefix + "breaker_state");
        shard->obs_threshold = registry.GetGauge(prefix + "threshold");
        shard->obs_served = registry.GetCounter(prefix + "served");
        shard->obs_threshold->Set(shard->runtime->Threshold());
        if (serve_config.flight.capacity > 0) {
            shard->flight = std::make_unique<FlightRecorder>(
                serve_config.flight.capacity);
        }
        engine->shards_.push_back(std::move(shard));
    }

    // RUMBA_ADMISSION=off reverts to pure reject-on-full backpressure
    // without a rebuild — the overload drills use it to demonstrate
    // what the admission ladder is buying.
    AdmissionConfig admission_config = serve_config.admission;
    if (const char* knob = std::getenv("RUMBA_ADMISSION");
        knob != nullptr && std::string_view(knob) == "off")
        admission_config.enabled = false;
    engine->admission_ =
        std::make_unique<AdmissionController>(admission_config);

    engine->tuner_mode_ = TuningModeName(runtime_config.tuner.mode);
    if (serve_config.trace.enabled) {
        obs::TailSamplingPolicy policy;
        policy.sample_every = serve_config.trace.sample_every;
        policy.latency_keep_ns = serve_config.trace.latency_keep_ns;
        obs::RequestTraceCollector::Default().Configure(policy);
    }
    if (serve_config.slo.enabled) {
        if (serve_config.slo.latency_bound_ns > 0) {
            obs::SloConfig slo;
            slo.name = "serve_latency";
            slo.objective = serve_config.slo.latency_objective;
            slo.fast_window_ns = serve_config.slo.fast_window_ns;
            slo.slow_window_ns = serve_config.slo.slow_window_ns;
            engine->latency_slo_ =
                std::make_unique<obs::SloMonitor>(slo);
        }
        if (serve_config.slo.quality_margin_pct >= 0.0) {
            obs::SloConfig slo;
            slo.name = "serve_quality";
            slo.objective = serve_config.slo.quality_objective;
            slo.fast_window_ns = serve_config.slo.fast_window_ns;
            slo.slow_window_ns = serve_config.slo.slow_window_ns;
            engine->quality_slo_ =
                std::make_unique<obs::SloMonitor>(slo);
            engine->quality_bound_pct_ =
                runtime_config.tuner.target_error_pct +
                serve_config.slo.quality_margin_pct;
        }
    }

    // Ground-truth auditor: background exact re-execution of sampled
    // invocations. RUMBA_AUDIT_SAMPLE_N overrides the configured
    // sampling rate; 0 disables the auditor entirely.
    ServeConfig::AuditOptions audit_opts = serve_config.audit;
    if (const char* env = std::getenv("RUMBA_AUDIT_SAMPLE_N");
        env != nullptr && env[0] != '\0') {
        audit_opts.sample_every = static_cast<size_t>(
            std::strtoull(env, nullptr, 10));
        if (audit_opts.sample_every == 0)
            audit_opts.enabled = false;
    }
    if (audit_opts.enabled) {
        auto exact =
            core::ExactReexecutor::Create(artifact.benchmark);
        if (exact == nullptr) {
            // FromArtifact() validated the name above; stay defensive
            // anyway — serving works without auditing.
            Warn("audit: no exact kernel for '%s'; auditing disabled",
                 artifact.benchmark.c_str());
        } else {
            obs::AuditConfig audit_config;
            audit_config.sample_every = audit_opts.sample_every;
            audit_config.forced_sample_every =
                audit_opts.forced_sample_every;
            audit_config.max_elements_per_sample =
                audit_opts.max_audit_elements;
            audit_config.queue_capacity = audit_opts.queue_capacity;
            audit_config.threads = audit_opts.threads;
            const double margin =
                audit_opts.margin_pct >= 0.0
                    ? audit_opts.margin_pct
                    : std::max(0.0,
                               serve_config.slo.quality_margin_pct);
            audit_config.toq_bound_pct =
                runtime_config.tuner.target_error_pct + margin;
            audit_config.result_capacity = audit_opts.result_capacity;
            audit_config.shards =
                static_cast<uint32_t>(serve_config.shards);
            audit_config.slo_enabled = true;
            audit_config.slo.name = "audited_quality";
            audit_config.slo.objective = audit_opts.objective;
            audit_config.slo.fast_window_ns = audit_opts.fast_window_ns;
            audit_config.slo.slow_window_ns = audit_opts.slow_window_ns;
            audit_config.slo.min_events = audit_opts.min_events;
            obs::AuditHooks hooks;
            std::shared_ptr<core::ExactReexecutor> shared(
                std::move(exact));
            hooks.run_exact = [shared](const double* in, double* out) {
                shared->RunElement(in, out);
            };
            hooks.element_error =
                [shared](const std::vector<double>& exact_out,
                         const std::vector<double>& approx_out) {
                    return shared->ElementError(exact_out, approx_out);
                };
            hooks.aggregate_error =
                [shared](const std::vector<double>& element_errors) {
                    return shared->AggregateError(element_errors);
                };
            // Close the tiered-recovery feedback loop: measured
            // compensator residuals flow back into the serving
            // shard's RecoveryPolicy, which tunes the compensate/
            // re-execute boundary on audited truth. Safe across
            // shutdown: auditor_ is declared after shards_, so its
            // pool joins before any shard runtime dies.
            hooks.on_compensated =
                [raw = engine.get()](uint32_t shard,
                                     double mean_residual_pct,
                                     size_t elements) {
                    if (shard < raw->shards_.size()) {
                        raw->shards_[shard]
                            ->runtime->OnAuditedCompensation(
                                mean_residual_pct, elements);
                    }
                };
            engine->auditor_ = std::make_unique<obs::QualityAuditor>(
                audit_config, std::move(hooks));
        }
    }

    // Live observability surface: honor RUMBA_METRICS_PORT and serve
    // this engine's status at /statusz. The engine pointer doubles as
    // the owner token: a second engine takes over the route, and each
    // engine's Shutdown clears the provider only if it still owns it.
    // The server invokes the provider under its provider lock, so the
    // owner-checked clear in Shutdown waits out in-flight scrapes
    // before the engine is torn down.
    obs::ObservabilityServer::StartFromEnv();
    obs::ObservabilityServer::Default().SetStatusProvider(
        [raw = engine.get()] { return raw->StatuszJson(); },
        engine.get());
    engine->statusz_installed_ = true;

    // Cost profiling: this engine's shards feed the process-wide
    // CpuProfiler, and the engine holds one ref on the env-configured
    // sampling profiler (released in Shutdown, which writes the
    // folded dump on the last release).
    engine->profiling_ = serve_config.profile.enabled;
    if (engine->profiling_)
        obs::SamplingProfiler::AcquireFromEnv();

    for (size_t i = 0; i < serve_config.shards; ++i) {
        engine->shards_[i]->worker =
            std::thread([raw = engine.get(), i] { raw->WorkerLoop(i); });
    }
    return engine;
}

ShardedEngine::~ShardedEngine()
{
    Shutdown();
}

const core::RumbaRuntime&
ShardedEngine::Runtime(size_t i) const
{
    RUMBA_CHECK(i < shards_.size());
    return *shards_[i]->runtime;
}

std::future<InvocationResult>
ShardedEngine::Submit(InvocationRequest request)
{
    obs_submitted_->Increment();
    const uint64_t trace_id =
        obs::RequestTraceCollector::Default().NextTraceId();
    const uint64_t submit_ns = obs::NowNs();

    InvocationResult reject;
    reject.trace_id = trace_id;
    if (shutdown_.load(std::memory_order_acquire)) {
        reject.status =
            core::Status(core::StatusCode::kUnavailable,
                         "engine is shut down");
        obs_rejected_->Increment();
        RecordTerminalTrace(trace_id, 0, submit_ns,
                            obs::RequestOutcome::kRejected);
        return Resolved(std::move(reject));
    }
    if (request.count == 0 || request.width != input_width_ ||
        request.inputs.size() != request.count * request.width) {
        reject.status = core::Status(
            core::StatusCode::kInvalidArgument,
            "request shape must be count x " +
                std::to_string(input_width_) + " contiguous doubles");
        obs_rejected_->Increment();
        RecordTerminalTrace(trace_id, 0, submit_ns,
                            obs::RequestOutcome::kRejected);
        return Resolved(std::move(reject));
    }
    if (request.shard != InvocationRequest::kAnyShard &&
        (request.shard < 0 ||
         static_cast<size_t>(request.shard) >= shards_.size())) {
        reject.status =
            core::Status(core::StatusCode::kInvalidArgument,
                         "no such shard " +
                             std::to_string(request.shard));
        obs_rejected_->Increment();
        RecordTerminalTrace(trace_id, 0, submit_ns,
                            obs::RequestOutcome::kRejected);
        return Resolved(std::move(reject));
    }

    const size_t shard_index =
        request.shard == InvocationRequest::kAnyShard
            ? next_shard_.fetch_add(1, std::memory_order_relaxed) %
                  shards_.size()
            : static_cast<size_t>(request.shard);
    Shard& shard = *shards_[shard_index];

    // A dead-on-arrival deadline never costs the queue a slot.
    if (request.deadline_ns != 0 && submit_ns > request.deadline_ns) {
        reject.status = core::Status(
            core::StatusCode::kDeadlineExceeded,
            "deadline already expired at submit (shard " +
                std::to_string(shard_index) + ")");
        reject.shard = shard_index;
        obs_rejected_->Increment();
        obs_adm_expired_->Increment();
        RecordRefusalFlight(shard_index, trace_id, submit_ns,
                            request.count,
                            core::StatusCode::kDeadlineExceeded);
        RecordTerminalTrace(trace_id, shard_index, submit_ns,
                            obs::RequestOutcome::kExpired);
        return Resolved(std::move(reject));
    }

    // Admission: one observation of this shard's pressure steps the
    // state machine, then the shedding ladder maps (state, class) to
    // full service, a degrade rung, or a shed.
    const size_t queue_depth = shard.queue.Size();
    const double fill =
        static_cast<double>(queue_depth) /
        static_cast<double>(config_.queue_capacity);
    const bool slo_alerting =
        latency_slo_ != nullptr && latency_slo_->Alerting();
    const AdmissionAction action =
        admission_->Decide(request.quality, fill, slo_alerting);
    if (action == AdmissionAction::kShed) {
        reject.status = core::Status(
            core::StatusCode::kUnavailable,
            std::string("admission ") +
                AdmissionStateName(admission_->state()) + ": " +
                QualityClassName(request.quality) +
                " request shed (shard " +
                std::to_string(shard_index) + " queue " +
                std::to_string(queue_depth) + "/" +
                std::to_string(config_.queue_capacity) +
                "; retry later)");
        reject.shard = shard_index;
        obs_rejected_->Increment();
        obs_adm_shed_->Increment();
        RecordRefusalFlight(shard_index, trace_id, submit_ns,
                            request.count,
                            core::StatusCode::kUnavailable);
        RecordTerminalTrace(trace_id, shard_index, submit_ns,
                            obs::RequestOutcome::kShed);
        return Resolved(std::move(reject));
    }

    Pending pending;
    pending.request = std::move(request);
    pending.enqueue_ns = submit_ns;
    pending.trace_id = trace_id;
    switch (action) {
      case AdmissionAction::kAdmit:
        obs_adm_admitted_->Increment();
        break;
      case AdmissionAction::kCompensateOnly:
        pending.degrade = core::DegradeMode::kCompensateOnly;
        obs_adm_compensated_->Increment();
        break;
      case AdmissionAction::kDegrade:
        pending.degrade = core::DegradeMode::kSkipRecovery;
        obs_adm_degraded_->Increment();
        break;
      case AdmissionAction::kBypassCheck:
        pending.degrade = core::DegradeMode::kSkipCheck;
        obs_adm_bypassed_->Increment();
        break;
      case AdmissionAction::kShed:
        break;  // handled above.
    }
    std::future<InvocationResult> future =
        pending.promise.get_future();

    // Count the request in-flight *before* the push: the worker may
    // complete it (and decrement) the instant it lands.
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        ++in_flight_;
    }
    if (!shard.queue.TryPush(pending)) {
        {
            std::lock_guard<std::mutex> lock(drain_mu_);
            --in_flight_;
        }
        drain_cv_.notify_all();
        reject.status = core::Status(
            core::StatusCode::kResourceExhausted,
            "shard " + std::to_string(shard_index) +
                " queue is full at " +
                std::to_string(shard.queue.Size()) + "/" +
                std::to_string(config_.queue_capacity) +
                " (backpressure; retry later)");
        reject.shard = shard_index;
        obs_rejected_->Increment();
        obs_adm_rejected_->Increment();
        RecordRefusalFlight(shard_index, trace_id, submit_ns,
                            pending.request.count,
                            core::StatusCode::kResourceExhausted);
        RecordTerminalTrace(trace_id, shard_index, submit_ns,
                            obs::RequestOutcome::kRejected);
        // The promise in `pending` dies unused; the caller holds the
        // resolved future below instead.
        return Resolved(std::move(reject));
    }
    shard.obs_queue_depth->Set(
        static_cast<double>(shard.queue.Size()));
    return future;
}

void
ShardedEngine::Drain()
{
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ShardedEngine::Shutdown()
{
    bool expected = false;
    if (!shutdown_.compare_exchange_strong(expected, true,
                                           std::memory_order_acq_rel))
        return;  // idempotent: someone already shut us down.

    // This engine's status must not outlive it on the scrape surface.
    // Owner-checked (a newer engine may have taken over /statusz) and
    // blocking: on return no scrape thread can still be inside this
    // engine's StatuszJson().
    if (statusz_installed_) {
        obs::ObservabilityServer::Default().ClearStatusProvider(this);
        statusz_installed_ = false;
    }

    // Cancel everything still queued; workers finish their in-flight
    // batch (its futures resolve kOk), then see the closed queue and
    // exit.
    size_t shard_index = 0;
    for (auto& shard : shards_) {
        std::deque<Pending> leftovers;
        shard->queue.Close(&leftovers);
        for (auto& pending : leftovers) {
            InvocationResult cancelled;
            cancelled.status =
                core::Status(core::StatusCode::kCancelled,
                             "engine shut down before the request ran");
            cancelled.trace_id = pending.trace_id;
            cancelled.shard = shard_index;
            obs_cancelled_->Increment();
            RecordTerminalTrace(pending.trace_id, shard_index,
                                pending.enqueue_ns,
                                obs::RequestOutcome::kCancelled);
            FinishOne(&pending, std::move(cancelled));
        }
        ++shard_index;
    }
    for (auto& shard : shards_) {
        if (shard->worker.joinable())
            shard->worker.join();
    }
    // With the workers gone no new samples can arrive; drain the
    // audit backlog, stop the pool, and write RUMBA_AUDIT_OUT while
    // the results are still alive.
    if (auditor_ != nullptr)
        auditor_->Shutdown();
    // Drop our ref on the shared sampler after the workers are gone
    // so their slots stop getting sampled mid-teardown; the last
    // engine out writes RUMBA_PROFILE_OUT.
    if (profiling_)
        obs::SamplingProfiler::Release();
}

void
ShardedEngine::Pause()
{
    for (auto& shard : shards_)
        shard->queue.SetPaused(true);
}

void
ShardedEngine::Resume()
{
    for (auto& shard : shards_)
        shard->queue.SetPaused(false);
}

void
ShardedEngine::FinishOne(Pending* pending, InvocationResult result)
{
    pending->promise.set_value(std::move(result));
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        --in_flight_;
    }
    drain_cv_.notify_all();
}

void
ShardedEngine::RecordRefusalFlight(size_t shard_index,
                                   uint64_t trace_id,
                                   uint64_t submit_ns,
                                   uint64_t elements,
                                   core::StatusCode code)
{
    Shard& shard = *shards_[shard_index];
    if (shard.flight == nullptr)
        return;
    FlightRecord record;
    record.trace_id = trace_id;
    record.shard = static_cast<uint32_t>(shard_index);
    record.enqueue_ns = submit_ns;
    record.complete_ns = obs::NowNs();
    record.elements = elements;
    record.status_code = static_cast<uint32_t>(code);
    shard.flight->Append(record);
}

void
ShardedEngine::RecordTerminalTrace(uint64_t trace_id,
                                   size_t shard_index,
                                   uint64_t submit_ns,
                                   obs::RequestOutcome outcome)
{
    if (!config_.trace.enabled)
        return;
    obs::RequestTrace trace;
    trace.trace_id = trace_id;
    trace.shard = static_cast<uint32_t>(shard_index);
    trace.outcome = outcome;
    trace.submit_ns = submit_ns;
    trace.total_ns = obs::NowNs() - submit_ns;
    obs::RequestTraceCollector::Default().Record(std::move(trace));
}

std::vector<std::string>
ShardedEngine::DumpFlightRecords(const std::string& reason)
{
    std::vector<std::string> paths;
    for (size_t i = 0; i < shards_.size(); ++i) {
        if (shards_[i]->flight == nullptr)
            continue;
        std::string path = shards_[i]->flight->Dump(
            config_.flight.dump_dir, static_cast<uint32_t>(i), reason);
        if (!path.empty())
            paths.push_back(std::move(path));
    }
    return paths;
}

const FlightRecorder&
ShardedEngine::Flight(size_t i) const
{
    RUMBA_CHECK(i < shards_.size() && shards_[i]->flight != nullptr);
    return *shards_[i]->flight;
}

std::string
ShardedEngine::StatuszJson() const
{
    size_t in_flight;
    {
        std::lock_guard<std::mutex> lock(drain_mu_);
        in_flight = in_flight_;
    }
    std::string out = "{\"healthy\":";
    out += shutdown_.load(std::memory_order_acquire) ? "false" : "true";
    out += ",\"tuner_mode\":\"";
    out += tuner_mode_;
    out += "\",\"in_flight\":" + std::to_string(in_flight);
    out += ",\"submitted\":" + std::to_string(obs_submitted_->Value());
    out += ",\"completed\":" + std::to_string(obs_completed_->Value());
    out += ",\"rejected\":" + std::to_string(obs_rejected_->Value());
    out += ",\"cancelled\":" + std::to_string(obs_cancelled_->Value());
    out += ",\"admission\":{\"state\":\"";
    out += AdmissionStateName(admission_->state());
    out += "\",\"enabled\":";
    out += admission_->config().enabled ? "true" : "false";
    out += ",\"transitions\":" +
           std::to_string(admission_->Transitions());
    out += ",\"admitted\":" + std::to_string(obs_adm_admitted_->Value());
    out += ",\"compensated\":" +
           std::to_string(obs_adm_compensated_->Value());
    out += ",\"degraded\":" + std::to_string(obs_adm_degraded_->Value());
    out += ",\"bypassed\":" + std::to_string(obs_adm_bypassed_->Value());
    out += ",\"shed\":" + std::to_string(obs_adm_shed_->Value());
    out += ",\"expired\":" + std::to_string(obs_adm_expired_->Value());
    out += ",\"backpressure_rejected\":" +
           std::to_string(obs_adm_rejected_->Value());
    out += "}";
    if (latency_slo_ != nullptr) {
        out += ",\"latency_slo_alerting\":";
        out += latency_slo_->Alerting() ? "true" : "false";
    }
    if (quality_slo_ != nullptr) {
        out += ",\"quality_slo_alerting\":";
        out += quality_slo_->Alerting() ? "true" : "false";
    }
    if (auditor_ != nullptr) {
        const obs::AuditorStats audit = auditor_->Stats();
        out += ",\"quality\":{\"audited\":" +
               std::to_string(audit.audited);
        out += ",\"enqueued\":" + std::to_string(audit.enqueued);
        out += ",\"forced\":" + std::to_string(audit.forced);
        out += ",\"queue_drops\":" +
               std::to_string(audit.queue_drops);
        out += ",\"queue_depth\":" +
               std::to_string(audit.queue_depth);
        out += ",\"true_toq_violations\":" +
               std::to_string(audit.toq_violations);
        out += ",\"true_toq_violation_rate\":" +
               obs::JsonNum(audit.toq_violation_rate);
        out += ",\"toq_bound_pct\":" +
               obs::JsonNum(audit.toq_bound_pct);
        out += ",\"mean_true_error_pct\":" +
               obs::JsonNum(audit.mean_true_error_pct);
        out += ",\"checker_precision\":" +
               obs::JsonNum(audit.precision);
        out += ",\"checker_recall\":" + obs::JsonNum(audit.recall);
        out += ",\"false_positive_recoveries\":" +
               std::to_string(audit.false_positives);
        out += ",\"false_negative_accepts\":" +
               std::to_string(audit.false_negatives);
        out += ",\"audited_slo_alerting\":";
        out += audit.slo_alerting ? "true" : "false";
        out += "}";
    }
    out += ",\"shards\":[";
    for (size_t i = 0; i < shards_.size(); ++i) {
        const Shard& shard = *shards_[i];
        if (i > 0)
            out += ",";
        out += "{\"shard\":" + std::to_string(i);
        out += ",\"queue_depth\":" +
               std::to_string(static_cast<uint64_t>(
                   shard.obs_queue_depth->Value()));
        out += ",\"breaker_state\":" +
               std::to_string(static_cast<uint64_t>(
                   shard.obs_breaker_state->Value()));
        out += ",\"threshold\":" +
               obs::JsonNum(shard.obs_threshold->Value());
        out += ",\"served\":" +
               std::to_string(shard.obs_served->Value());
        if (shard.flight != nullptr) {
            out += ",\"flight_records\":" +
                   std::to_string(shard.flight->TotalAppended());
        }
        out += "}";
    }
    out += "]}";
    return out;
}

void
ShardedEngine::WorkerLoop(size_t shard_index)
{
    Shard& shard = *shards_[shard_index];
    obs::BindThreadShard(static_cast<int>(shard_index));
    Pending first;
    for (;;) {
        bool popped;
        {
            // Blocked-on-queue time is a stage of its own: it shows
            // as "queue_wait" in sampled stacks, and its (tiny) CPU
            // cost folds into the next invocation's attribution.
            const obs::StageScope wait_scope(
                obs::ProfileStage::kQueueWait, profiling_,
                &shard.queue_wait_cpu_ns);
            popped = shard.queue.Pop(&first);
        }
        if (!popped)
            break;
        std::vector<Pending> batch;
        size_t total = first.request.count;
        batch.push_back(std::move(first));
        if (config_.max_coalesce_elements > 0) {
            Pending extra;
            while (total < config_.max_coalesce_elements &&
                   shard.queue.TryPop(&extra)) {
                total += extra.request.count;
                batch.push_back(std::move(extra));
            }
        }
        shard.obs_queue_depth->Set(
            static_cast<double>(shard.queue.Size()));
        ProcessBatch(shard, shard_index, &batch);
    }
}

void
ShardedEngine::ProcessBatch(Shard& shard, size_t shard_index,
                            std::vector<Pending>* batch)
{
    const obs::Span batch_span("serve.batch");
    const uint64_t pickup_ns = obs::NowNs();

    // Deadline-expired queued work never reaches the device: resolve
    // it kDeadlineExceeded here, before the invocation is built, and
    // leave the same counter/flight/trace trail a Submit-side expiry
    // would.
    size_t kept = 0;
    for (Pending& pending : *batch) {
        const uint64_t deadline = pending.request.deadline_ns;
        if (deadline == 0 || pickup_ns <= deadline) {
            if (kept != static_cast<size_t>(&pending - batch->data()))
                (*batch)[kept] = std::move(pending);
            ++kept;
            continue;
        }
        InvocationResult expired;
        expired.status = core::Status(
            core::StatusCode::kDeadlineExceeded,
            "deadline expired while queued (shard " +
                std::to_string(shard_index) + ")");
        expired.trace_id = pending.trace_id;
        expired.shard = shard_index;
        obs_adm_expired_->Increment();
        RecordRefusalFlight(shard_index, pending.trace_id,
                            pending.enqueue_ns, pending.request.count,
                            core::StatusCode::kDeadlineExceeded);
        RecordTerminalTrace(pending.trace_id, shard_index,
                            pending.enqueue_ns,
                            obs::RequestOutcome::kExpired);
        FinishOne(&pending, std::move(expired));
    }
    batch->resize(kept);
    if (batch->empty())
        return;

    // A coalesced batch runs at the *least* degraded rung any of its
    // members was admitted at: requests share one invocation, and an
    // admitted (or gold) member must not lose its checker because a
    // best-effort neighbor rode along.
    core::DegradeMode degrade = core::DegradeMode::kSkipCheck;
    for (const Pending& pending : *batch) {
        if (pending.degrade < degrade)
            degrade = pending.degrade;
    }

    size_t total = 0;
    for (const Pending& pending : *batch)
        total += pending.request.count;
    obs_batch_elements_->Observe(static_cast<double>(total));
    if (batch->size() > 1)
        obs_coalesced_batches_->Increment();

    // One contiguous invocation over the whole batch. A lone request
    // is served straight out of its own buffer (zero copy); a
    // coalesced batch concatenates into shard-local scratch.
    const double* in_data;
    if (batch->size() == 1) {
        in_data = (*batch)[0].request.inputs.data();
    } else {
        shard.scratch_in.clear();
        shard.scratch_in.reserve(total * input_width_);
        for (const Pending& pending : *batch) {
            shard.scratch_in.insert(shard.scratch_in.end(),
                                    pending.request.inputs.begin(),
                                    pending.request.inputs.end());
        }
        in_data = shard.scratch_in.data();
    }
    shard.scratch_out.resize(total * output_width_);

    const core::BatchView view(in_data, total, input_width_);
    core::AuditCapture* capture =
        auditor_ != nullptr ? &shard.audit_capture : nullptr;
    const core::InvocationReport report =
        shard.runtime->ProcessInvocation(view, shard.scratch_out.data(),
                                         capture, degrade);

    // Modeled accelerator occupancy (see ServeConfig): the shard's
    // virtual device stays busy for the invocation's element count;
    // other shards' devices run during the wait, which is exactly the
    // overlap a multi-accelerator deployment gets.
    if (config_.emulated_device_ns > 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            config_.emulated_device_ns * total));
    }

    shard.obs_breaker_state->Set(
        static_cast<double>(static_cast<int>(report.breaker_state)));
    shard.obs_threshold->Set(report.threshold_used);
    shard.obs_served->Increment(total);

    const uint32_t breaker_state =
        static_cast<uint32_t>(report.breaker_state);
    const uint64_t device_only_ns =
        report.timings.accel_stream_ns - report.timings.check_ns +
        config_.emulated_device_ns * total;
    const uint64_t recover_ns =
        report.timings.recover_ns + report.timings.exact_ns;
    // Per-invocation quality SLO event: one verified error per batch.
    // Degraded invocations skip the verify pass, so they have no
    // proxy error to judge — their quality is protected by the
    // audited SLO instead (every degraded request is force-sampled).
    if (quality_slo_ != nullptr &&
        report.degrade == core::DegradeMode::kNone) {
        quality_slo_->Record(report.output_error_pct <=
                             quality_bound_pct_);
    }

    obs::RequestTraceCollector& collector =
        obs::RequestTraceCollector::Default();
    const bool tracing = config_.trace.enabled && collector.Enabled();

    const uint64_t done_ns = obs::NowNs();
    int64_t merge_cpu_ns = 0;
    int64_t audit_cpu_ns = 0;
    size_t offset = 0;
    for (Pending& pending : *batch) {
        const size_t count = pending.request.count;
        InvocationResult result;
        result.status = core::Status::Ok();
        result.trace_id = pending.trace_id;
        result.shard = shard_index;
        result.report = report;
        result.report.elements = count;
        const uint64_t merge_start_ns = obs::NowNs();
        {
            const obs::StageScope merge_scope(
                obs::ProfileStage::kMerge, profiling_, &merge_cpu_ns);
            result.outputs.assign(
                shard.scratch_out.begin() +
                    static_cast<ptrdiff_t>(offset * output_width_),
                shard.scratch_out.begin() + static_cast<ptrdiff_t>(
                                                (offset + count) *
                                                output_width_));
        }
        const uint64_t merge_end_ns = obs::NowNs();

        // Ground-truth audit sampling: a tail decision per request,
        // made once the outcome is known. Breaker-degraded and
        // fault-touched requests are always offered; recovered ones
        // ride a boosted 1-in-M gate (recovery is routine here, not
        // an anomaly); of the remainder one in N. The digest is
        // computed before the sample steals the request's input
        // buffer.
        uint64_t inputs_digest = 0;
        if (shard.flight != nullptr) {
            inputs_digest =
                DigestInputs(pending.request.inputs.data(),
                             pending.request.inputs.size());
        }
        bool audited = false;
        if (capture != nullptr) {
            // Sample-assembly cost lands on "audit" (the shadow
            // re-execution itself is tagged in the audit pool).
            const obs::StageScope audit_scope(
                obs::ProfileStage::kAudit, profiling_, &audit_cpu_ns);
            size_t req_fixes = 0;
            size_t req_exact = 0;
            for (size_t i = offset; i < offset + count; ++i) {
                req_fixes += capture->fixed[i] != 0 ? 1 : 0;
                req_exact += capture->exact_path[i] != 0 ? 1 : 0;
            }
            const obs::AuditConfig& audit_config = auditor_->Config();
            bool forced = false;
            const char* reason = "sampled";
            if (report.degrade != core::DegradeMode::kNone) {
                // Degraded service is exactly the traffic whose
                // quality nothing else measures (verify skipped,
                // proxy SLO silent): audit every one.
                forced = true;
                reason = "degraded";
            } else if (audit_config.force_recovered && req_fixes > 0 &&
                       auditor_->SampleForcedRecovered()) {
                forced = true;
                reason = "recovered";
            } else if (audit_config.force_breaker &&
                       (breaker_state != 0 || req_exact > 0)) {
                forced = true;
                reason = "breaker";
            } else if (report.non_finite_outputs > 0 ||
                       report.queue_drops > 0) {
                forced = true;
                reason = "fault";
            }
            if (forced || auditor_->SampleHealthy()) {
                obs::AuditSample sample;
                sample.trace_id = pending.trace_id;
                sample.shard = static_cast<uint32_t>(shard_index);
                sample.forced = forced;
                sample.forced_reason = reason;
                sample.count = count;
                sample.in_width = input_width_;
                sample.out_width = output_width_;
                sample.served_outputs = result.outputs;
                const ptrdiff_t out_lo =
                    static_cast<ptrdiff_t>(offset * output_width_);
                const ptrdiff_t out_hi = static_cast<ptrdiff_t>(
                    (offset + count) * output_width_);
                sample.approx_outputs.assign(
                    capture->approx_outputs.begin() + out_lo,
                    capture->approx_outputs.begin() + out_hi);
                const ptrdiff_t lo = static_cast<ptrdiff_t>(offset);
                const ptrdiff_t hi =
                    static_cast<ptrdiff_t>(offset + count);
                sample.predicted_error.assign(
                    capture->predicted_error.begin() + lo,
                    capture->predicted_error.begin() + hi);
                sample.fired.assign(capture->fired.begin() + lo,
                                    capture->fired.begin() + hi);
                sample.fixed.assign(capture->fixed.begin() + lo,
                                    capture->fixed.begin() + hi);
                sample.exact_path.assign(
                    capture->exact_path.begin() + lo,
                    capture->exact_path.begin() + hi);
                sample.threshold_used = report.threshold_used;
                sample.reported_error_pct = report.output_error_pct;
                sample.estimated_error_pct =
                    report.estimated_error_pct;
                sample.breaker_state = breaker_state;
                sample.fixes = req_fixes;
                // The invocation is done and the digest is taken;
                // the request's input buffer moves into the sample.
                sample.inputs = std::move(pending.request.inputs);
                audited = auditor_->Enqueue(std::move(sample));
            }
        }
        offset += count;
        const uint64_t latency_ns = done_ns - pending.enqueue_ns;
        obs_enqueue_to_complete_ns_->Observe(
            static_cast<double>(latency_ns));
        obs_completed_->Increment();
        if (latency_slo_ != nullptr) {
            latency_slo_->Record(latency_ns <=
                                 config_.slo.latency_bound_ns);
        }
        if (shard.flight != nullptr) {
            FlightRecord record;
            record.trace_id = pending.trace_id;
            record.shard = static_cast<uint32_t>(shard_index);
            record.enqueue_ns = pending.enqueue_ns;
            record.complete_ns = done_ns;
            record.queue_wait_ns = pickup_ns - pending.enqueue_ns;
            record.device_ns = device_only_ns;
            record.elements = count;
            record.inputs_digest = inputs_digest;
            record.threshold = report.threshold_used;
            record.predicted_error_pct = report.estimated_error_pct;
            record.actual_error_pct = report.output_error_pct;
            record.fixes = report.fixes;
            record.breaker_state = breaker_state;
            record.audited = audited;
            shard.flight->Append(record);
        }
        if (tracing) {
            obs::RequestTrace trace;
            trace.trace_id = pending.trace_id;
            trace.shard = static_cast<uint32_t>(shard_index);
            trace.outcome = obs::RequestOutcome::kCompleted;
            trace.submit_ns = pending.enqueue_ns;
            trace.total_ns = merge_end_ns - pending.enqueue_ns;
            trace.elements = count;
            trace.batch_requests =
                static_cast<uint32_t>(batch->size());
            trace.fixes = report.fixes;
            trace.breaker_state = breaker_state;
            trace.audited = audited;
            trace.spans = {
                {"queue_wait", pending.enqueue_ns,
                 pickup_ns - pending.enqueue_ns},
                {"device", pickup_ns, device_only_ns},
                {"check", pickup_ns + device_only_ns,
                 report.timings.check_ns},
                {"recover",
                 pickup_ns + device_only_ns +
                     report.timings.check_ns,
                 recover_ns},
                {"merge", merge_start_ns,
                 merge_end_ns - merge_start_ns},
            };
            collector.Record(std::move(trace));
        }
        FinishOne(&pending, std::move(result));
    }

    // Fold this invocation's stage CPU into the live profiler: the
    // runtime's attribution (device/check/recover/verify) plus the
    // engine-side stages (queue wait since the last batch, merge,
    // audit assembly), and feed the modeled costs to the rolling
    // efficiency estimator.
    if (profiling_) {
        obs::CpuProfiler::InvocationCpu cpu;
        cpu.queue_wait_ns = shard.queue_wait_cpu_ns;
        shard.queue_wait_cpu_ns = 0;
        cpu.device_ns = std::max<int64_t>(
            0, report.cpu.stream_cpu_ns - report.cpu.check_cpu_ns);
        cpu.predict_check_ns = report.cpu.check_cpu_ns;
        cpu.recover_ns =
            report.cpu.recover_cpu_ns + report.cpu.exact_cpu_ns;
        cpu.compensate_ns = report.cpu.compensate_cpu_ns;
        cpu.merge_ns = merge_cpu_ns;
        cpu.audit_ns = audit_cpu_ns;
        cpu.verify_ns = report.cpu.verify_cpu_ns;
        obs::CpuProfiler::Default().RecordInvocation(
            static_cast<int>(shard_index), cpu);
        obs::CpuProfiler::Default().RecordCosts(report.costs);
    }

    // Incident hooks: dump the shard's flight recorder the moment its
    // breaker transitions to open, and once per fault episode when a
    // fault first surfaces (non-finite outputs or recovery-queue
    // drops) — the ring then still holds the requests leading in.
    if (shard.flight != nullptr) {
        const bool opened =
            breaker_state ==
                static_cast<uint32_t>(core::BreakerState::kOpen) &&
            shard.last_breaker_state != breaker_state;
        const bool fault = report.non_finite_outputs > 0 ||
                           report.queue_drops > 0;
        if (opened) {
            shard.flight->Dump(config_.flight.dump_dir,
                               static_cast<uint32_t>(shard_index),
                               "breaker_open");
        } else if (fault && !shard.fault_dump_latched) {
            // Latch stays set for the shard's lifetime: the dump
            // captures the first fault's lead-in; a fault storm must
            // not turn into a dump storm.
            shard.flight->Dump(config_.flight.dump_dir,
                               static_cast<uint32_t>(shard_index),
                               "fault");
            shard.fault_dump_latched = true;
        }
    }
    shard.last_breaker_state = breaker_state;
}

}  // namespace rumba::serve
