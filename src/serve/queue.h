#ifndef RUMBA_SERVE_QUEUE_H_
#define RUMBA_SERVE_QUEUE_H_

/**
 * @file
 * Bounded multi-producer/multi-consumer queue backing each serving
 * shard. The policy mirrors the accelerator's recovery queue
 * (core/recovery.h): a full queue *rejects* the push instead of
 * blocking the producer, so backpressure surfaces to the client as a
 * kResourceExhausted status, never as an unbounded stall. Consumers
 * block on a condition variable; Close() wakes them for shutdown.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace rumba::serve {

/** Bounded MPMC queue with reject-on-full backpressure. */
template <typename T>
class BoundedQueue {
  public:
    explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /**
     * Enqueue @p item. @return false — leaving @p item untouched —
     * when the queue is full or closed; the caller converts that into
     * a rejection status.
     */
    bool
    TryPush(T& item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        cv_.notify_one();
        return true;
    }

    /**
     * Blocking pop: waits for an item (or for Close()). While paused,
     * consumers wait even if items are available — a test hook that
     * lets a producer fill the queue deterministically.
     * @return false when the queue is closed and empty (consumer
     * shutdown signal).
     */
    bool
    Pop(T* out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] {
            return (!paused_ && !items_.empty()) || closed_;
        });
        if (items_.empty())
            return false;
        *out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /** Non-blocking pop (batch coalescing). Honors the pause flag. */
    bool
    TryPop(T* out)
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (paused_ || items_.empty())
            return false;
        *out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    /**
     * Close the queue and move every undelivered item into @p
     * leftovers (may be nullptr to discard). Pushes fail from here
     * on; blocked consumers wake and exit.
     */
    void
    Close(std::deque<T>* leftovers)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
            if (leftovers != nullptr) {
                for (auto& item : items_)
                    leftovers->push_back(std::move(item));
            }
            items_.clear();
        }
        cv_.notify_all();
    }

    /** Pause/resume consumer pops (see Pop()). */
    void
    SetPaused(bool paused)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            paused_ = paused;
        }
        cv_.notify_all();
    }

    /** Items currently queued (racy by nature; telemetry only). */
    size_t
    Size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    size_t Capacity() const { return capacity_; }

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<T> items_;
    const size_t capacity_;
    bool closed_ = false;
    bool paused_ = false;
};

}  // namespace rumba::serve

#endif  // RUMBA_SERVE_QUEUE_H_
