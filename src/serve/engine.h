#ifndef RUMBA_SERVE_ENGINE_H_
#define RUMBA_SERVE_ENGINE_H_

/**
 * @file
 * The sharded serving engine: Rumba as an online service. The paper's
 * runtime manages one accelerator; a deployment serves many
 * concurrent clients, so the engine owns N worker shards, each
 * holding a full RumbaRuntime replica (accelerator + checker + tuner
 * + breaker) instantiated from one shared deployment Artifact —
 * train once, replicate everywhere.
 *
 * Clients Submit() asynchronously and receive a
 * std::future<InvocationResult>. Requests flow through a bounded
 * per-shard queue with reject-on-full backpressure (the same
 * drop-visible policy as the recovery queue: overload is reported,
 * never silently absorbed as latency). Each shard worker drains its
 * queue in FIFO order, optionally coalescing adjacent small requests
 * into one accelerator invocation, and completes the futures.
 *
 * Determinism: with explicit or round-robin shard assignment and
 * coalescing disabled, shard k's runtime sees exactly the same
 * request stream a dedicated single-runtime deployment would, so the
 * merged outputs are element-wise identical to N sequential streams
 * (tested). Coalescing trades that replayability for throughput:
 * batch boundaries then depend on arrival timing, which perturbs the
 * per-invocation tuner walk (never output correctness).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/artifact.h"
#include "core/runtime.h"
#include "core/status.h"
#include "obs/reqtrace.h"
#include "serve/admission.h"
#include "serve/flight_recorder.h"
#include "serve/queue.h"

namespace rumba::obs {
class Counter;
class Gauge;
class Histogram;
class QualityAuditor;
class SloMonitor;
}  // namespace rumba::obs

namespace rumba::serve {

/** Serving-engine knobs. */
struct ServeConfig {
    /** Worker shards; each holds one RumbaRuntime replica. */
    size_t shards = 4;
    /** Pending requests each shard's queue admits before rejecting
     *  with kResourceExhausted (reject-on-full backpressure). */
    size_t queue_capacity = 64;
    /**
     * Coalescing budget, in elements: a worker that pops a request
     * keeps greedily popping until the combined element count would
     * exceed this, then runs the whole batch as one accelerator
     * invocation. 0 disables coalescing (deterministic replay — see
     * file comment).
     */
    size_t max_coalesce_elements = 0;
    /**
     * Modeled accelerator occupancy per element, in nanoseconds: the
     * worker holds its (virtual) device busy for count x this after
     * each invocation. On hosts with fewer cores than shards this is
     * what the paper's CPU/accelerator overlap looks like from the
     * serving layer: shards overlap device wait time, not CPU time.
     * 0 disables the emulation (pure CPU-bound serving).
     */
    uint64_t emulated_device_ns = 0;

    /** Request-scoped tracing (obs/reqtrace.h). */
    struct TraceOptions {
        /** Record per-request traces into the default collector (and
         *  enable per-stage runtime timings on every shard). */
        bool enabled = true;
        /** Head-sampling rate for unflagged (healthy) traces. */
        uint32_t sample_every = 16;
        /** Always keep traces at least this slow (0 disables). */
        uint64_t latency_keep_ns = 0;
    };
    TraceOptions trace;

    /** Per-shard flight recorder (serve/flight_recorder.h). */
    struct FlightOptions {
        /** Recent requests retained per shard (0 disables). */
        size_t capacity = FlightRecorder::kDefaultCapacity;
        /** Directory dump artifacts are written into. */
        std::string dump_dir = ".";
    };
    FlightOptions flight;

    /** SLO burn-rate monitoring (obs/slo.h). */
    struct SloOptions {
        bool enabled = true;
        /** Latency objective: enqueue-to-complete under this bound.
         *  0 disables the latency SLO. */
        uint64_t latency_bound_ns = 100ull * 1000 * 1000;
        double latency_objective = 0.99;
        /** Quality objective: verified invocation error within
         *  tuner target + this margin (percentage points; negative
         *  disables the quality SLO). */
        double quality_margin_pct = 2.0;
        double quality_objective = 0.99;
        uint64_t fast_window_ns = 10ull * 1000 * 1000 * 1000;
        uint64_t slow_window_ns = 60ull * 1000 * 1000 * 1000;
    };
    SloOptions slo;

    /** Live cost & efficiency profiling (obs/profiler.h). */
    struct ProfileOptions {
        /** Per-stage thread-CPU attribution on every shard (feeds the
         *  rumba_cpu_stage_seconds_* counters and stage-share
         *  histograms), the rolling speedup/energy estimator, and the
         *  env-configured sampling profiler (RUMBA_PROFILE_HZ /
         *  RUMBA_PROFILE_OUT — acquired on Create, released on
         *  Shutdown). Rides the <5% instrumentation-overhead gate in
         *  bench/serve_throughput. */
        bool enabled = true;
    };
    ProfileOptions profile;

    /** Ground-truth quality auditing (obs/audit.h): shadow exact
     *  re-execution of sampled invocations on a background pool. */
    struct AuditOptions {
        bool enabled = true;
        /** Healthy invocations audited 1-in-N (0 = forced samples
         *  only). The RUMBA_AUDIT_SAMPLE_N environment variable
         *  overrides this; "0" there disables auditing entirely. */
        size_t sample_every = 16;
        /** Recovered requests are routine under Rumba's 10-25% fix
         *  rates, so forcing every one would audit nearly all
         *  traffic; forced "recovered" candidates ride their own
         *  1-in-M gate (1 = every one, 0 = never; losers still enter
         *  the healthy draw). Breaker/fault forcing is unconditional.
         *  The default holds auditing inside the <5%
         *  instrumentation-overhead gate. */
        size_t forced_sample_every = 4;
        /** Element budget per audited invocation: larger invocations
         *  are strided down to at most this many audited elements, so
         *  one audit's exact re-execution cost is bounded no matter
         *  what batch sizes clients submit (0 = audit every element).
         *  Together with the forced gate this keeps default-rate
         *  auditing inside the <5% instrumentation-overhead gate. */
        size_t max_audit_elements = 128;
        /** Bounded sample queue (overflow drops and counts). */
        size_t queue_capacity = 64;
        /** Background audit threads. */
        size_t threads = 1;
        /** Audited-TOQ bound margin over the tuner target
         *  (percentage points); negative reuses
         *  SloOptions::quality_margin_pct so the proxy and audited
         *  SLOs judge the same objective. */
        double margin_pct = -1.0;
        /** Completed audits retained for /statusz + RUMBA_AUDIT_OUT. */
        size_t result_capacity = 256;
        /** Audited-truth SLO (slo.audited_quality.*). */
        double objective = 0.99;
        uint64_t fast_window_ns = 10ull * 1000 * 1000 * 1000;
        uint64_t slow_window_ns = 60ull * 1000 * 1000 * 1000;
        uint64_t min_events = 10;
    };
    AuditOptions audit;

    /** Deadline-aware admission control (serve/admission.h): the
     *  closed/shedding/emergency state machine that degrades and
     *  sheds by quality class before queue-full backpressure hits.
     *  admission.enabled = false reverts to pure reject-on-full. */
    AdmissionConfig admission;
};

/** One asynchronous invocation request. */
struct InvocationRequest {
    /** Flat element inputs, count x width contiguous doubles. */
    std::vector<double> inputs;
    size_t count = 0;  ///< elements in @c inputs.
    size_t width = 0;  ///< doubles per element (kernel input arity).
    /**
     * Target shard, or kAnyShard for round-robin assignment. Explicit
     * pinning gives a client session a stable runtime (stable tuner
     * state); round-robin spreads load and is deterministic in
     * submission order.
     */
    int shard = kAnyShard;
    /**
     * Absolute deadline on the obs::NowNs() steady clock (0 = none).
     * A request whose deadline has passed resolves kDeadlineExceeded
     * — immediately at Submit, or at worker pickup without ever
     * touching the device.
     */
    uint64_t deadline_ns = 0;
    /** Service tier for admission control (serve/admission.h):
     *  best-effort sheds first, gold is never shed by admission. */
    QualityClass quality = QualityClass::kGold;

    static constexpr int kAnyShard = -1;
};

/** What the future resolves to. */
struct InvocationResult {
    /** kOk, or why the request never ran (rejected / cancelled). */
    core::Status status;
    /** Request trace id (obs/reqtrace.h), assigned at Submit even for
     *  rejected requests — joins results with exported traces and
     *  flight-recorder dumps. */
    uint64_t trace_id = 0;
    /** Merged element outputs, count x NumOutputs() doubles. */
    std::vector<double> outputs;
    /** The runtime's quality report for the invocation that served
     *  this request (elements reflects this request's count). */
    core::InvocationReport report;
    size_t shard = 0;  ///< shard that served (or rejected) it.
};

/** N RumbaRuntime replicas behind bounded queues. */
class ShardedEngine {
  public:
    /**
     * Bring up @p config.shards replicas from one deployment
     * artifact. Fails (never dies) when the artifact is rejected by
     * RumbaRuntime::FromArtifact() or the shard/queue shape is
     * degenerate (kInvalidArgument).
     */
    static core::Result<std::unique_ptr<ShardedEngine>> Create(
        const core::Artifact& artifact,
        const core::RuntimeConfig& runtime_config,
        const ServeConfig& serve_config);

    /** Shutdown() if the caller has not already. */
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine&) = delete;
    ShardedEngine& operator=(const ShardedEngine&) = delete;

    /**
     * Submit one request. Always returns a valid future; it resolves
     * to:
     *  - kInvalidArgument  — malformed request (empty, wrong width,
     *                        inputs.size() != count x width, bad
     *                        shard index); resolved immediately.
     *  - kResourceExhausted — the target shard's queue is full
     *                        (backpressure); resolved immediately.
     *  - kUnavailable      — engine already shut down, or admission
     *                        control shed the request (the message
     *                        names the admission state).
     *  - kDeadlineExceeded — the request's deadline passed (at
     *                        Submit, or while queued — expired work
     *                        never reaches the device).
     *  - kCancelled        — accepted, then Shutdown() before a
     *                        worker reached it.
     *  - kOk               — served; outputs and report are valid
     *                        (report.degrade records the overload
     *                        rung it was served at).
     */
    std::future<InvocationResult> Submit(InvocationRequest request);

    /**
     * Block until every accepted request has completed (all futures
     * resolved). New submissions keep being accepted; Drain() returns
     * once the in-flight count touches zero.
     */
    void Drain();

    /**
     * Stop the engine: reject new submissions (kUnavailable), cancel
     * every queued-but-unstarted request (kCancelled), finish the
     * in-flight invocations, join the workers. Idempotent.
     */
    void Shutdown();

    /** Test hook: stall/resume all shard workers so a producer can
     *  fill a queue deterministically. @{ */
    void Pause();
    void Resume();
    /** @} */

    size_t Shards() const { return shards_.size(); }

    /** Kernel input arity every request's width must match. */
    size_t InputWidth() const { return input_width_; }

    /** Kernel output arity (outputs are count x this). */
    size_t OutputWidth() const { return output_width_; }

    /** Shard @p i's runtime replica (inspection; the engine owns it
     *  and its worker mutates it — read between Drain()s). */
    const core::RumbaRuntime& Runtime(size_t i) const;

    /**
     * Dump every shard's flight recorder to
     * ServeConfig::flight.dump_dir now (operator's SIGUSR1
     * equivalent). Returns the paths written. The engine also dumps a
     * shard automatically when its breaker transitions to open or a
     * fault (non-finite outputs, recovery-queue drops) first appears.
     */
    std::vector<std::string> DumpFlightRecords(
        const std::string& reason = "manual");

    /** Shard @p i's flight recorder (inspection / tests). */
    const FlightRecorder& Flight(size_t i) const;

    /**
     * Live engine status as a JSON object — per-shard queue depth,
     * breaker state, current threshold, served count, plus engine
     * totals and the tuner mode. Reads only atomics and gauges, so it
     * is safe to call from the scrape server while workers run; the
     * engine installs it as the /statusz provider
     * (obs/http_exporter.h) on Create.
     */
    std::string StatuszJson() const;

    /** The latency SLO monitor (null when disabled). */
    obs::SloMonitor* LatencySlo() { return latency_slo_.get(); }

    /** The quality SLO monitor (null when disabled). */
    obs::SloMonitor* QualitySlo() { return quality_slo_.get(); }

    /** The ground-truth quality auditor (null when disabled). */
    obs::QualityAuditor* Auditor() { return auditor_.get(); }

    /** The admission controller (never null; inert when
     *  ServeConfig::admission.enabled is false). */
    AdmissionController* Admission() { return admission_.get(); }

  private:
    /** One queued request awaiting its shard worker. */
    struct Pending {
        InvocationRequest request;
        std::promise<InvocationResult> promise;
        uint64_t enqueue_ns = 0;
        uint64_t trace_id = 0;  ///< assigned at Submit (obs/reqtrace.h).
        /** Overload rung admission assigned (serve/admission.h). */
        core::DegradeMode degrade = core::DegradeMode::kNone;
    };

    /** One worker shard: a runtime replica behind a bounded queue. */
    struct Shard {
        explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

        std::unique_ptr<core::RumbaRuntime> runtime;
        BoundedQueue<Pending> queue;
        std::thread worker;
        /** Coalescing scratch, reused across batches. */
        std::vector<double> scratch_in;
        std::vector<double> scratch_out;
        /** Per-shard telemetry. */
        obs::Gauge* obs_queue_depth = nullptr;
        obs::Gauge* obs_breaker_state = nullptr;
        obs::Gauge* obs_threshold = nullptr;
        obs::Counter* obs_served = nullptr;
        /** Flight recorder (constructed with flight.capacity). */
        std::unique_ptr<FlightRecorder> flight;
        /** Auto-dump bookkeeping (worker thread only). */
        uint32_t last_breaker_state = 0;
        bool fault_dump_latched = false;
        /** Thread CPU spent blocked on the queue since the last
         *  invocation (worker thread only; folded into the next
         *  invocation's profiler record). */
        int64_t queue_wait_cpu_ns = 0;
        /** Per-element audit capture of the worker's last invocation
         *  (worker thread only; filled when auditing is enabled). */
        core::AuditCapture audit_capture;
    };

    ShardedEngine(const ServeConfig& config, size_t input_width,
                  size_t output_width);

    void WorkerLoop(size_t shard_index);
    void ProcessBatch(Shard& shard, size_t shard_index,
                      std::vector<Pending>* batch);
    void FinishOne(Pending* pending, InvocationResult result);
    /** Record a never-ran (rejected / cancelled) request's trace. */
    void RecordTerminalTrace(uint64_t trace_id, size_t shard_index,
                             uint64_t submit_ns,
                             obs::RequestOutcome outcome);
    /** Flight-recorder entry for a request that never ran (rejected /
     *  shed / expired): the refusal leaves the same incident trail a
     *  served request would. */
    void RecordRefusalFlight(size_t shard_index, uint64_t trace_id,
                             uint64_t submit_ns, uint64_t elements,
                             core::StatusCode code);

    ServeConfig config_;
    const size_t input_width_;
    const size_t output_width_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::atomic<size_t> next_shard_{0};   ///< round-robin cursor.
    std::atomic<bool> shutdown_{false};

    mutable std::mutex drain_mu_;
    std::condition_variable drain_cv_;
    size_t in_flight_ = 0;  ///< accepted, future not yet resolved.

    /** Aggregated telemetry (process-wide obs registry). */
    obs::Counter* obs_submitted_;
    obs::Counter* obs_rejected_;
    obs::Counter* obs_completed_;
    obs::Counter* obs_cancelled_;
    obs::Counter* obs_coalesced_batches_;
    obs::Histogram* obs_enqueue_to_complete_ns_;
    obs::Histogram* obs_batch_elements_;
    /** Admission outcomes (serve.admission.*): every Submit lands in
     *  exactly one of admitted/compensated/degraded/bypassed/shed/
     *  expired/rejected, so the sum reconciles with serve.submitted. */
    obs::Counter* obs_adm_admitted_;
    obs::Counter* obs_adm_compensated_;
    obs::Counter* obs_adm_degraded_;
    obs::Counter* obs_adm_bypassed_;
    obs::Counter* obs_adm_shed_;
    obs::Counter* obs_adm_expired_;
    obs::Counter* obs_adm_rejected_;

    /** SLO monitors (null when ServeConfig::slo disables them). */
    std::unique_ptr<obs::SloMonitor> latency_slo_;
    std::unique_ptr<obs::SloMonitor> quality_slo_;
    /** Ground-truth auditor (null when ServeConfig::audit or
     *  RUMBA_AUDIT_SAMPLE_N=0 disables it). */
    std::unique_ptr<obs::QualityAuditor> auditor_;
    /** Admission state machine (always constructed; inert when
     *  ServeConfig::admission.enabled is false). */
    std::unique_ptr<AdmissionController> admission_;
    /** Quality-SLO pass bound: tuner target + margin (percent). */
    double quality_bound_pct_ = 0.0;
    /** Tuner mode name for /statusz (config constant). */
    const char* tuner_mode_ = "toq";
    /** True while this engine owns the /statusz provider. */
    bool statusz_installed_ = false;
    /** Cost profiling on (ServeConfig::profile): shards attribute
     *  stage CPU, invocations feed the efficiency estimator, and the
     *  engine holds a ref on the env-configured sampling profiler. */
    bool profiling_ = false;
};

}  // namespace rumba::serve

#endif  // RUMBA_SERVE_ENGINE_H_
