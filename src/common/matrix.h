#ifndef RUMBA_COMMON_MATRIX_H_
#define RUMBA_COMMON_MATRIX_H_

/**
 * @file
 * A small dense row-major matrix of doubles with the linear algebra
 * the predictors need: products, transpose and a linear solver.
 * Deliberately minimal: no expression templates, no views.
 */

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace rumba {

/** Dense row-major matrix of doubles. */
class Matrix {
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** @p rows x @p cols matrix filled with @p fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Build from nested initializer lists; rows must be equal length. */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** Identity matrix of size @p n. */
    static Matrix Identity(size_t n);

    size_t Rows() const { return rows_; }
    size_t Cols() const { return cols_; }

    /** Mutable element access (bounds-checked in debug via RUMBA_CHECK). */
    double& At(size_t r, size_t c);

    /** Const element access. */
    double At(size_t r, size_t c) const;

    /** Matrix product; inner dimensions must agree. */
    Matrix Multiply(const Matrix& rhs) const;

    /** Transposed copy. */
    Matrix Transposed() const;

    /** Element-wise sum; shapes must match. */
    Matrix Add(const Matrix& rhs) const;

    /** Scale every element by @p s. */
    Matrix Scaled(double s) const;

    /**
     * Solve this * x = b via Gaussian elimination with partial
     * pivoting. The matrix must be square and non-singular.
     * @param b right-hand side with Rows() entries.
     * @param x output solution; resized to Cols().
     * @return false when the matrix is (numerically) singular.
     */
    bool Solve(const std::vector<double>& b, std::vector<double>* x) const;

    /** Maximum absolute element difference to @p rhs. */
    double MaxAbsDiff(const Matrix& rhs) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_MATRIX_H_
