#ifndef RUMBA_COMMON_TABLE_H_
#define RUMBA_COMMON_TABLE_H_

/**
 * @file
 * Console table / CSV emitter used by every bench binary so the
 * regenerated paper tables and figure series share one format.
 */

#include <string>
#include <vector>

namespace rumba {

/** A simple column-aligned text table that can also dump CSV. */
class Table {
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row of pre-formatted cells (must match column count). */
    void AddRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string Num(double v, int precision = 2);

    /** Format an integer cell. */
    static std::string Int(long v);

    /** Render as an aligned text table. */
    std::string ToText() const;

    /** Render as CSV (RFC-4180-ish, quoting cells with commas). */
    std::string ToCsv() const;

    /** Print the text form to stdout with a title banner. */
    void Print(const std::string& title) const;

    /** Write the CSV form to @p path; returns false on I/O error. */
    bool WriteCsv(const std::string& path) const;

    /** Number of data rows. */
    size_t Rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_TABLE_H_
