#include "common/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rumba {

void
OnlineStats::Add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::Merge(const OnlineStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::Variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::StdDev() const
{
    return std::sqrt(Variance());
}

double
Percentile(std::vector<double> values, double p)
{
    RUMBA_CHECK(!values.empty());
    RUMBA_CHECK(p >= 0.0 && p <= 100.0);
    std::sort(values.begin(), values.end());
    if (values.size() == 1)
        return values[0];
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
PearsonCorrelation(const std::vector<double>& a,
                   const std::vector<double>& b)
{
    RUMBA_CHECK(a.size() == b.size());
    RUMBA_CHECK(!a.empty());
    const double n = static_cast<double>(a.size());
    double mean_a = 0.0, mean_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    mean_a /= n;
    mean_b /= n;
    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - mean_a;
        const double db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if (var_a <= 0.0 || var_b <= 0.0)
        return 0.0;
    return cov / std::sqrt(var_a * var_b);
}

namespace {

/** Average ranks (1-based; ties share the mean of their positions). */
std::vector<double>
Ranks(const std::vector<double>& values)
{
    std::vector<size_t> order(values.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return values[x] < values[y];
    });
    std::vector<double> ranks(values.size(), 0.0);
    size_t i = 0;
    while (i < order.size()) {
        size_t j = i;
        while (j + 1 < order.size() &&
               values[order[j + 1]] == values[order[i]]) {
            ++j;
        }
        const double avg_rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
            1.0;
        for (size_t k = i; k <= j; ++k)
            ranks[order[k]] = avg_rank;
        i = j + 1;
    }
    return ranks;
}

}  // namespace

double
SpearmanCorrelation(const std::vector<double>& a,
                    const std::vector<double>& b)
{
    RUMBA_CHECK(a.size() == b.size());
    RUMBA_CHECK(!a.empty());
    return PearsonCorrelation(Ranks(a), Ranks(b));
}

std::vector<CdfPoint>
EmpiricalCdf(std::vector<double> values, size_t points)
{
    RUMBA_CHECK(!values.empty());
    RUMBA_CHECK(points >= 2);
    std::sort(values.begin(), values.end());
    std::vector<CdfPoint> cdf;
    cdf.reserve(points);
    for (size_t i = 0; i < points; ++i) {
        const double frac =
            static_cast<double>(i + 1) / static_cast<double>(points);
        const size_t idx = std::min(
            values.size() - 1,
            static_cast<size_t>(frac * static_cast<double>(values.size())));
        cdf.push_back({values[idx], frac});
    }
    cdf.back() = {values.back(), 1.0};
    return cdf;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    RUMBA_CHECK(hi > lo);
    RUMBA_CHECK(bins > 0);
}

void
Histogram::Add(double x)
{
    const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    size_t idx = static_cast<size_t>((clamped - lo_) / width);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
    ++total_;
}

double
Histogram::EdgeAt(size_t i) const
{
    RUMBA_CHECK(i <= counts_.size());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + width * static_cast<double>(i);
}

double
Histogram::CumulativeFraction(size_t i) const
{
    RUMBA_CHECK(i < counts_.size());
    if (total_ == 0)
        return 0.0;
    size_t sum = 0;
    for (size_t b = 0; b <= i; ++b)
        sum += counts_[b];
    return static_cast<double>(sum) / static_cast<double>(total_);
}

}  // namespace rumba
