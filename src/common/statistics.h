#ifndef RUMBA_COMMON_STATISTICS_H_
#define RUMBA_COMMON_STATISTICS_H_

/**
 * @file
 * Descriptive statistics used throughout the evaluation harness:
 * streaming moments, percentiles, CDFs and histograms.
 */

#include <cstddef>
#include <vector>

namespace rumba {

/**
 * Streaming mean / variance / extrema accumulator (Welford's
 * algorithm), usable without retaining samples.
 */
class OnlineStats {
  public:
    /** Add one observation. */
    void Add(double x);

    /** Merge another accumulator into this one. */
    void Merge(const OnlineStats& other);

    /** Number of observations so far. */
    size_t Count() const { return n_; }

    /** Arithmetic mean; 0 when empty. */
    double Mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance; 0 for fewer than two samples. */
    double Variance() const;

    /** Population standard deviation. */
    double StdDev() const;

    /** Smallest observation; +inf when empty. */
    double Min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double Max() const { return max_; }

    /** Sum of all observations. */
    double Sum() const { return mean_ * static_cast<double>(n_); }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1.0 / 0.0;
    double max_ = -1.0 / 0.0;
};

/**
 * Percentile of a sample set with linear interpolation.
 * @param values sample values (copied and sorted internally).
 * @param p percentile in [0, 100].
 */
double Percentile(std::vector<double> values, double p);

/**
 * Pearson correlation coefficient of two equal-length series;
 * 0 when either series is constant.
 */
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/**
 * Spearman rank correlation: Pearson on the rank transforms (average
 * ranks for ties). Measures monotone association — the right notion
 * for "does a higher predicted error mean a higher true error".
 */
double SpearmanCorrelation(const std::vector<double>& a,
                           const std::vector<double>& b);

/** One point of an empirical CDF. */
struct CdfPoint {
    double value;     ///< sample value.
    double fraction;  ///< fraction of samples <= value, in (0, 1].
};

/**
 * Empirical CDF of @p values evaluated at @p points equally spaced
 * quantiles (inclusive of the maximum).
 */
std::vector<CdfPoint> EmpiricalCdf(std::vector<double> values,
                                   size_t points);

/** Fixed-width histogram over [lo, hi); values outside are clamped. */
class Histogram {
  public:
    /** Create @p bins buckets covering [lo, hi). */
    Histogram(double lo, double hi, size_t bins);

    /** Count one sample. */
    void Add(double x);

    /** Number of buckets. */
    size_t Bins() const { return counts_.size(); }

    /** Count in bucket @p i. */
    size_t CountAt(size_t i) const { return counts_[i]; }

    /** Inclusive lower edge of bucket @p i. */
    double EdgeAt(size_t i) const;

    /** Total samples counted. */
    size_t Total() const { return total_; }

    /** Fraction of samples in buckets [0, i] (cumulative). */
    double CumulativeFraction(size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_STATISTICS_H_
