#ifndef RUMBA_COMMON_IMAGE_H_
#define RUMBA_COMMON_IMAGE_H_

/**
 * @file
 * Grayscale image container with PGM I/O. The image-processing
 * benchmarks (sobel, jpeg, kmeans, mosaic) and the Figure 2
 * demonstration operate on these.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace rumba {

/** A dense grayscale image with pixel intensities in [0, 1]. */
class GrayImage {
  public:
    /** Empty 0x0 image. */
    GrayImage() = default;

    /** @p width x @p height image filled with @p fill. */
    GrayImage(size_t width, size_t height, double fill = 0.0);

    size_t Width() const { return width_; }
    size_t Height() const { return height_; }

    /** Number of pixels. */
    size_t Pixels() const { return data_.size(); }

    /** Mutable pixel access. */
    double& At(size_t x, size_t y);

    /** Const pixel access. */
    double At(size_t x, size_t y) const;

    /**
     * Pixel access with edge clamping; safe for any integer
     * coordinates (used by stencil kernels at the borders).
     */
    double AtClamped(long x, long y) const;

    /** Flat pixel buffer (row-major). */
    const std::vector<double>& Data() const { return data_; }

    /** Mutable flat pixel buffer (row-major). */
    std::vector<double>& MutableData() { return data_; }

    /** Clamp all pixels into [0, 1]. */
    void Clamp();

    /** Mean intensity over all pixels; 0 when empty. */
    double MeanIntensity() const;

    /** Mean absolute per-pixel difference with @p other (same shape). */
    double MeanAbsDiff(const GrayImage& other) const;

    /**
     * Write as a binary 8-bit PGM file.
     * @return false on I/O failure.
     */
    bool WritePgm(const std::string& path) const;

    /**
     * Read a binary 8-bit PGM file.
     * @return false when the file is missing or malformed.
     */
    bool ReadPgm(const std::string& path);

  private:
    size_t width_ = 0;
    size_t height_ = 0;
    std::vector<double> data_;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_IMAGE_H_
