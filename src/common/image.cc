#include "common/image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace rumba {

GrayImage::GrayImage(size_t width, size_t height, double fill)
    : width_(width), height_(height), data_(width * height, fill)
{
}

double&
GrayImage::At(size_t x, size_t y)
{
    RUMBA_CHECK(x < width_ && y < height_);
    return data_[y * width_ + x];
}

double
GrayImage::At(size_t x, size_t y) const
{
    RUMBA_CHECK(x < width_ && y < height_);
    return data_[y * width_ + x];
}

double
GrayImage::AtClamped(long x, long y) const
{
    const long cx = std::clamp(x, 0l, static_cast<long>(width_) - 1);
    const long cy = std::clamp(y, 0l, static_cast<long>(height_) - 1);
    return data_[static_cast<size_t>(cy) * width_ +
                 static_cast<size_t>(cx)];
}

void
GrayImage::Clamp()
{
    for (auto& p : data_)
        p = std::clamp(p, 0.0, 1.0);
}

double
GrayImage::MeanIntensity() const
{
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (double p : data_)
        sum += p;
    return sum / static_cast<double>(data_.size());
}

double
GrayImage::MeanAbsDiff(const GrayImage& other) const
{
    RUMBA_CHECK(width_ == other.width_ && height_ == other.height_);
    if (data_.empty())
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        sum += std::fabs(data_[i] - other.data_[i]);
    return sum / static_cast<double>(data_.size());
}

bool
GrayImage::WritePgm(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out << "P5\n" << width_ << " " << height_ << "\n255\n";
    std::vector<unsigned char> bytes(data_.size());
    for (size_t i = 0; i < data_.size(); ++i) {
        const double v = std::clamp(data_[i], 0.0, 1.0);
        bytes[i] = static_cast<unsigned char>(std::lround(v * 255.0));
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

bool
GrayImage::ReadPgm(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::string magic;
    in >> magic;
    if (magic != "P5")
        return false;
    // Skip comments.
    auto next_token = [&in]() -> long {
        for (;;) {
            int c = in.peek();
            if (c == '#') {
                std::string line;
                std::getline(in, line);
            } else if (std::isspace(c)) {
                in.get();
            } else {
                break;
            }
        }
        long v = -1;
        in >> v;
        return v;
    };
    const long w = next_token();
    const long h = next_token();
    const long maxval = next_token();
    if (w <= 0 || h <= 0 || maxval != 255)
        return false;
    in.get();  // single whitespace after the header
    std::vector<unsigned char> bytes(static_cast<size_t>(w * h));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!in)
        return false;
    width_ = static_cast<size_t>(w);
    height_ = static_cast<size_t>(h);
    data_.resize(bytes.size());
    for (size_t i = 0; i < bytes.size(); ++i)
        data_[i] = static_cast<double>(bytes[i]) / 255.0;
    return true;
}

}  // namespace rumba
