#ifndef RUMBA_COMMON_IMAGEGEN_H_
#define RUMBA_COMMON_IMAGEGEN_H_

/**
 * @file
 * Procedural image generators.
 *
 * The paper's image benchmarks use photographic inputs (a 512x512
 * test image, 800 flower photos for the mosaic study). Those assets
 * are not redistributable, so the harness synthesizes images with the
 * properties the experiments rely on: broad intensity ranges, smooth
 * regions, edges, and texture. The flower generator additionally
 * varies mean brightness and spatial concentration across images so
 * loop perforation shows the paper's input-dependent error (Fig. 3).
 */

#include <cstdint>

#include "common/image.h"

namespace rumba {

class Rng;

/**
 * A natural-looking test image: value-noise "plasma" background with
 * a few geometric objects (disks, bars) layered on top. Deterministic
 * in @p seed.
 */
GrayImage GenerateSceneImage(size_t width, size_t height, uint64_t seed);

/**
 * A smooth low-frequency value-noise field in [0, 1]; the building
 * block of the other generators. @p octaves >= 1 adds detail.
 */
GrayImage GenerateNoiseImage(size_t width, size_t height, uint64_t seed,
                             int octaves);

/**
 * A synthetic flower photograph for the mosaic study: dark or light
 * background, a cluster of bright petal-like blobs whose count,
 * position spread and brightness vary strongly with @p seed.
 */
GrayImage GenerateFlowerImage(size_t width, size_t height, uint64_t seed);

/**
 * Horizontal linear ramp from 0 at x=0 to 1 at x=width-1; handy for
 * validating gradient kernels.
 */
GrayImage GenerateRampImage(size_t width, size_t height);

/** Checkerboard of @p cell-sized squares alternating 0 and 1. */
GrayImage GenerateCheckerImage(size_t width, size_t height, size_t cell);

}  // namespace rumba

#endif  // RUMBA_COMMON_IMAGEGEN_H_
