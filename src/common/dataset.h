#ifndef RUMBA_COMMON_DATASET_H_
#define RUMBA_COMMON_DATASET_H_

/**
 * @file
 * Supervised-learning dataset container shared by the neural-network
 * trainer (the accelerator's offline trainer) and the error-predictor
 * trainer (Rumba's offline trainer).
 */

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace rumba {

class Rng;

/** A supervised dataset: rows of inputs with matching target rows. */
class Dataset {
  public:
    /** Empty dataset with the given arities. */
    Dataset(size_t num_inputs, size_t num_targets);

    /** Input arity (features per sample). */
    size_t NumInputs() const { return num_inputs_; }

    /** Target arity (values per sample). */
    size_t NumTargets() const { return num_targets_; }

    /** Number of samples. */
    size_t Size() const { return inputs_.size(); }

    bool Empty() const { return inputs_.empty(); }

    /** Append one sample; vector sizes must match the arities. */
    void Add(std::vector<double> input, std::vector<double> target);

    /** Input row @p i. */
    const std::vector<double>& Input(size_t i) const { return inputs_[i]; }

    /** Target row @p i. */
    const std::vector<double>& Target(size_t i) const { return targets_[i]; }

    /** Replace target row @p i (used when deriving error datasets). */
    void SetTarget(size_t i, std::vector<double> target);

    /** Deterministically shuffle samples in place. */
    void Shuffle(Rng* rng);

    /**
     * Split off the first @p fraction of samples into a new dataset,
     * leaving the remainder in this one (caller shuffles first if
     * randomization is wanted).
     */
    Dataset TakeFront(double fraction);

  private:
    friend class Normalizer;

    size_t num_inputs_;
    size_t num_targets_;
    std::vector<std::vector<double>> inputs_;
    std::vector<std::vector<double>> targets_;
};

/**
 * Per-feature affine normalizer mapping observed [min, max] to [0, 1].
 * Constant features map to 0.5. Used so NPU fixed-point ranges and NN
 * training see well-scaled values.
 */
class Normalizer {
  public:
    /** Identity normalizer of arity 0; call Fit() before use. */
    Normalizer() = default;

    /** Learn per-feature ranges from the dataset's inputs. */
    void FitInputs(const Dataset& data);

    /** Learn per-feature ranges from the dataset's targets. */
    void FitTargets(const Dataset& data);

    /** Number of features this normalizer was fit on. */
    size_t Arity() const { return lo_.size(); }

    /** Map a raw vector into [0, 1] per feature. */
    std::vector<double> Apply(const std::vector<double>& raw) const;

    /** Apply() over a borrowed buffer into a reusable scratch vector
     *  (hot-path form: no per-element allocation once @p out has
     *  capacity). */
    void Apply(const double* raw, size_t n,
               std::vector<double>* out) const;

    /** Inverse of Apply(). */
    std::vector<double> Invert(const std::vector<double>& norm) const;

    /** Invert() over a borrowed buffer into a reusable scratch. */
    void Invert(const double* norm, size_t n,
                std::vector<double>* out) const;

    /** Serialize ranges to a one-line text record. */
    std::string Serialize() const;

    /** Rebuild from Serialize() output; fatal on malformed input. */
    static Normalizer Deserialize(const std::string& blob);

  private:
    void Fit(const std::vector<std::vector<double>>& rows);

    std::vector<double> lo_;
    std::vector<double> hi_;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_DATASET_H_
