#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace rumba {

namespace {

uint64_t
SplitMix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
Rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& s : s_)
        s = SplitMix64(sm);
}

Rng
Rng::ForStream(uint64_t seed, uint64_t stream)
{
    return Rng(seed ^ (0xC2B2AE3D27D4EB4Full * (stream + 1)));
}

uint64_t
Rng::Next()
{
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
}

double
Rng::Uniform()
{
    // 53 high bits -> [0, 1).
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double
Rng::Uniform(double lo, double hi)
{
    return lo + (hi - lo) * Uniform();
}

uint64_t
Rng::Below(uint64_t n)
{
    RUMBA_CHECK(n > 0);
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
        uint64_t r = Next();
        if (r >= threshold)
            return r % n;
    }
}

int64_t
Rng::Range(int64_t lo, int64_t hi)
{
    RUMBA_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::Gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1 = 0.0;
    do {
        u1 = Uniform();
    } while (u1 <= 0.0);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::Gaussian(double mean, double stddev)
{
    return mean + stddev * Gaussian();
}

bool
Rng::Chance(double p)
{
    return Uniform() < p;
}

Rng
Rng::Split()
{
    return Rng(Next() ^ 0xD1B54A32D192ED03ull);
}

}  // namespace rumba
