#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace rumba {

namespace {

LogLevel g_threshold = LogLevel::kInform;

void VPrint(const char* tag, const char* fmt, va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

}  // namespace

void
SetLogThreshold(LogLevel level)
{
    g_threshold = level;
}

LogLevel
LogThreshold()
{
    return g_threshold;
}

void
Inform(const char* fmt, ...)
{
    if (g_threshold > LogLevel::kInform)
        return;
    va_list args;
    va_start(args, fmt);
    VPrint("info", fmt, args);
    va_end(args);
}

void
Warn(const char* fmt, ...)
{
    if (g_threshold > LogLevel::kWarn)
        return;
    va_list args;
    va_start(args, fmt);
    VPrint("warn", fmt, args);
    va_end(args);
}

void
Fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VPrint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
Panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VPrint("panic", fmt, args);
    va_end(args);
    std::abort();
}

}  // namespace rumba
