#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace rumba {

namespace {

/** Serializes emission so concurrent logs do not interleave lines. */
std::mutex g_emit_mu;

/** RUMBA_LOG value -> threshold; unknown values keep the default. */
LogLevel
ParseEnvThreshold()
{
    const char* env = std::getenv("RUMBA_LOG");
    if (env == nullptr || env[0] == '\0')
        return LogLevel::kInform;
    std::string value;
    for (const char* p = env; *p != '\0'; ++p)
        value += static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p)));
    if (value == "debug")
        return LogLevel::kDebug;
    if (value == "inform" || value == "info")
        return LogLevel::kInform;
    if (value == "warn" || value == "warning")
        return LogLevel::kWarn;
    if (value == "fatal" || value == "quiet")
        return LogLevel::kFatal;
    std::fprintf(stderr,
                 "warn: RUMBA_LOG=%s not recognized (want debug, "
                 "inform, warn, or fatal); keeping inform\n",
                 env);
    return LogLevel::kInform;
}

/** Threshold storage, initialized from RUMBA_LOG at first use. */
std::atomic<LogLevel>&
Threshold()
{
    static std::atomic<LogLevel> threshold{ParseEnvThreshold()};
    return threshold;
}

void VPrint(const char* tag, const char* fmt, va_list args)
{
    std::lock_guard<std::mutex> lock(g_emit_mu);
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fprintf(stderr, "\n");
}

}  // namespace

void
SetLogThreshold(LogLevel level)
{
    Threshold().store(level, std::memory_order_relaxed);
}

LogLevel
LogThreshold()
{
    return Threshold().load(std::memory_order_relaxed);
}

void
Debug(const char* fmt, ...)
{
    if (LogThreshold() > LogLevel::kDebug)
        return;
    va_list args;
    va_start(args, fmt);
    VPrint("debug", fmt, args);
    va_end(args);
}

void
Inform(const char* fmt, ...)
{
    if (LogThreshold() > LogLevel::kInform)
        return;
    va_list args;
    va_start(args, fmt);
    VPrint("info", fmt, args);
    va_end(args);
}

void
Warn(const char* fmt, ...)
{
    if (LogThreshold() > LogLevel::kWarn)
        return;
    va_list args;
    va_start(args, fmt);
    VPrint("warn", fmt, args);
    va_end(args);
}

void
Fatal(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VPrint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
Panic(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    VPrint("panic", fmt, args);
    va_end(args);
    std::abort();
}

}  // namespace rumba
