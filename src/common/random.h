#ifndef RUMBA_COMMON_RANDOM_H_
#define RUMBA_COMMON_RANDOM_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All experiments in the repository are seeded so every table and
 * figure regenerates bit-identically. The generator is xoshiro256**,
 * seeded via SplitMix64 so that small human-friendly seeds give
 * well-mixed state.
 */

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rumba {

/** xoshiro256** PRNG with distribution helpers. */
class Rng {
  public:
    /** Construct from a 64-bit seed; any value (including 0) is fine. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /**
     * A generator for stream @p stream of the family seeded by
     * @p seed. Streams never perturb each other's schedules: the
     * fault injector keys one per fault class so adding a rule
     * replays the rest, and the load generator keys per arrival /
     * workload / class-mix decision so scenarios stay reproducible
     * next to an armed fault plan. The derivation is frozen — the
     * fault-plan replay format depends on it.
     */
    static Rng ForStream(uint64_t seed, uint64_t stream);

    /** Next raw 64-bit value. */
    uint64_t Next();

    /** Uniform double in [0, 1). */
    double Uniform();

    /** Uniform double in [lo, hi). */
    double Uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t Below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t Range(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double Gaussian();

    /** Normal with the given mean and standard deviation. */
    double Gaussian(double mean, double stddev);

    /** Bernoulli draw with probability @p p of true. */
    bool Chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    Shuffle(std::vector<T>& v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(Below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** A distinct generator derived from this one's stream. */
    Rng Split();

  private:
    uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

}  // namespace rumba

#endif  // RUMBA_COMMON_RANDOM_H_
