#include "common/imagegen.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"

namespace rumba {

namespace {

/** Smoothstep interpolation weight. */
double
Fade(double t)
{
    return t * t * (3.0 - 2.0 * t);
}

/** Deterministic lattice hash -> [0, 1). */
double
LatticeValue(uint64_t seed, long gx, long gy)
{
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(gx) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint64_t>(gy) * 0xC2B2AE3D27D4EB4Full;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 32;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** One octave of 2-D value noise at frequency @p freq. */
double
ValueNoise(uint64_t seed, double x, double y, double freq)
{
    const double fx = x * freq;
    const double fy = y * freq;
    const long gx = static_cast<long>(std::floor(fx));
    const long gy = static_cast<long>(std::floor(fy));
    const double tx = Fade(fx - static_cast<double>(gx));
    const double ty = Fade(fy - static_cast<double>(gy));
    const double v00 = LatticeValue(seed, gx, gy);
    const double v10 = LatticeValue(seed, gx + 1, gy);
    const double v01 = LatticeValue(seed, gx, gy + 1);
    const double v11 = LatticeValue(seed, gx + 1, gy + 1);
    const double a = v00 + (v10 - v00) * tx;
    const double b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

}  // namespace

GrayImage
GenerateNoiseImage(size_t width, size_t height, uint64_t seed, int octaves)
{
    RUMBA_CHECK(octaves >= 1);
    GrayImage img(width, height);
    const double base_freq = 4.0 / static_cast<double>(width);
    for (size_t y = 0; y < height; ++y) {
        for (size_t x = 0; x < width; ++x) {
            double v = 0.0;
            double amp = 1.0;
            double total = 0.0;
            double freq = base_freq;
            for (int o = 0; o < octaves; ++o) {
                v += amp * ValueNoise(seed + static_cast<uint64_t>(o),
                                      static_cast<double>(x),
                                      static_cast<double>(y), freq);
                total += amp;
                amp *= 0.5;
                freq *= 2.0;
            }
            img.At(x, y) = v / total;
        }
    }
    return img;
}

GrayImage
GenerateSceneImage(size_t width, size_t height, uint64_t seed)
{
    GrayImage img = GenerateNoiseImage(width, height, seed, 6);
    Rng rng(seed ^ 0xABCDEF0123456789ull);

    // Layer disks of varying brightness.
    const int disks = 8 + static_cast<int>(rng.Below(6));
    for (int d = 0; d < disks; ++d) {
        const double cx = rng.Uniform(0.1, 0.9) * static_cast<double>(width);
        const double cy =
            rng.Uniform(0.1, 0.9) * static_cast<double>(height);
        const double r =
            rng.Uniform(0.05, 0.2) * static_cast<double>(width);
        const double level = rng.Uniform(0.0, 1.0);
        for (size_t y = 0; y < height; ++y) {
            for (size_t x = 0; x < width; ++x) {
                const double dx = static_cast<double>(x) - cx;
                const double dy = static_cast<double>(y) - cy;
                if (dx * dx + dy * dy <= r * r)
                    img.At(x, y) = 0.3 * img.At(x, y) + 0.7 * level;
            }
        }
    }

    // Hard-edged bars for strong gradients.
    const int bars = 4;
    for (int b = 0; b < bars; ++b) {
        const size_t x0 = static_cast<size_t>(rng.Below(width - 4));
        const size_t bw = 4 + static_cast<size_t>(rng.Below(width / 8));
        const double level = rng.Chance(0.5) ? 0.95 : 0.05;
        for (size_t y = 0; y < height; ++y)
            for (size_t x = x0; x < std::min(width, x0 + bw); ++x)
                img.At(x, y) = level;
    }

    // Photographic speckle: high-frequency detail that keeps the
    // scene from being trivially compressible.
    for (auto& p : img.MutableData()) {
        if (rng.Chance(0.5))
            p += rng.Uniform(-0.5, 0.5);
    }
    img.Clamp();
    return img;
}

GrayImage
GenerateFlowerImage(size_t width, size_t height, uint64_t seed)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + 1);

    // Background: dark foliage or light sky, with texture.
    const double bg_level = rng.Chance(0.7) ? rng.Uniform(0.05, 0.35)
                                            : rng.Uniform(0.5, 0.85);
    GrayImage img = GenerateNoiseImage(width, height, seed ^ 0x5151, 3);
    for (auto& p : img.MutableData())
        p = bg_level + 0.25 * (p - 0.5);

    // Petal blobs: their number and spatial spread drive how uneven
    // the brightness distribution is across the frame, which is what
    // makes perforated brightness averaging input-dependent.
    const int blobs = 1 + static_cast<int>(rng.Below(12));
    const double spread = rng.Uniform(0.05, 0.45);
    const double cluster_x = rng.Uniform(0.25, 0.75);
    const double cluster_y = rng.Uniform(0.25, 0.75);
    for (int bidx = 0; bidx < blobs; ++bidx) {
        const double cx = (cluster_x + rng.Gaussian(0.0, spread)) *
                          static_cast<double>(width);
        const double cy = (cluster_y + rng.Gaussian(0.0, spread)) *
                          static_cast<double>(height);
        const double r = rng.Uniform(0.04, 0.14) * static_cast<double>(width);
        const double level = rng.Uniform(0.6, 1.0);
        for (size_t y = 0; y < height; ++y) {
            for (size_t x = 0; x < width; ++x) {
                const double dx = static_cast<double>(x) - cx;
                const double dy = static_cast<double>(y) - cy;
                const double dist2 = dx * dx + dy * dy;
                if (dist2 <= r * r) {
                    const double w = 1.0 - std::sqrt(dist2) / r;
                    img.At(x, y) =
                        std::max(img.At(x, y), level * (0.5 + 0.5 * w));
                }
            }
        }
    }
    img.Clamp();
    return img;
}

GrayImage
GenerateRampImage(size_t width, size_t height)
{
    RUMBA_CHECK(width >= 2);
    GrayImage img(width, height);
    for (size_t y = 0; y < height; ++y)
        for (size_t x = 0; x < width; ++x)
            img.At(x, y) = static_cast<double>(x) /
                           static_cast<double>(width - 1);
    return img;
}

GrayImage
GenerateCheckerImage(size_t width, size_t height, size_t cell)
{
    RUMBA_CHECK(cell > 0);
    GrayImage img(width, height);
    for (size_t y = 0; y < height; ++y)
        for (size_t x = 0; x < width; ++x)
            img.At(x, y) = ((x / cell + y / cell) % 2 == 0) ? 0.0 : 1.0;
    return img;
}

}  // namespace rumba
