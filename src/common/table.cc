#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace rumba {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    RUMBA_CHECK(!headers_.empty());
}

void
Table::AddRow(std::vector<std::string> cells)
{
    RUMBA_CHECK(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::Num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::Int(long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%ld", v);
    return buf;
}

std::string
Table::ToText() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit_row(headers_);
    size_t total = headers_.size() * 2 - 2;
    for (size_t w : widths)
        total += w;
    out << std::string(total, '-') << "\n";
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

std::string
Table::ToCsv() const
{
    auto quote = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string q = "\"";
        for (char ch : cell) {
            if (ch == '"')
                q += '"';
            q += ch;
        }
        q += '"';
        return q;
    };
    std::ostringstream out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            out << quote(row[c]);
            if (c + 1 < row.size())
                out << ",";
        }
        out << "\n";
    };
    emit_row(headers_);
    for (const auto& row : rows_)
        emit_row(row);
    return out.str();
}

void
Table::Print(const std::string& title) const
{
    std::printf("\n== %s ==\n%s", title.c_str(), ToText().c_str());
    std::fflush(stdout);
}

bool
Table::WriteCsv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << ToCsv();
    return static_cast<bool>(out);
}

}  // namespace rumba
