#ifndef RUMBA_COMMON_LOGGING_H_
#define RUMBA_COMMON_LOGGING_H_

/**
 * @file
 * Minimal logging and error-reporting helpers, modeled after gem5's
 * logging split: fatal() for user errors, panic() for internal bugs,
 * warn()/inform() for status messages.
 */

#include <cstdarg>
#include <string>

namespace rumba {

/** Severity of a log message. */
enum class LogLevel {
    kDebug,
    kInform,
    kWarn,
    kFatal,
    kPanic,
};

/**
 * Global log verbosity control. Messages below the threshold are
 * suppressed; fatal/panic are never suppressed.
 *
 * The initial threshold comes from the RUMBA_LOG environment variable
 * (debug / inform / warn / fatal, case-insensitive), parsed on first
 * use; it defaults to inform. SetLogThreshold() overrides it.
 * Emission is serialized by a mutex so concurrent threads (or benches
 * sharing a terminal) do not interleave lines.
 */
void SetLogThreshold(LogLevel level);

/** Current verbosity threshold. */
LogLevel LogThreshold();

/** Print a debug message (suppressed unless RUMBA_LOG=debug). */
void Debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message (printf-style). */
void Inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning about suspicious but non-fatal conditions. */
void Warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable *user* error (bad configuration, bad
 * arguments) and exit(1).
 */
[[noreturn]] void Fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort().
 */
[[noreturn]] void Panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Panic unless @p cond holds. Cheap enough to keep in release builds. */
#define RUMBA_CHECK(cond)                                                  \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::rumba::Panic("check failed at %s:%d: %s", __FILE__,          \
                           __LINE__, #cond);                               \
        }                                                                  \
    } while (0)

}  // namespace rumba

#endif  // RUMBA_COMMON_LOGGING_H_
