#include "common/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace rumba {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : rows) {
        RUMBA_CHECK(row.size() == cols_);
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::Identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.At(i, i) = 1.0;
    return m;
}

double&
Matrix::At(size_t r, size_t c)
{
    RUMBA_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

double
Matrix::At(size_t r, size_t c) const
{
    RUMBA_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
}

Matrix
Matrix::Multiply(const Matrix& rhs) const
{
    RUMBA_CHECK(cols_ == rhs.rows_);
    Matrix out(rows_, rhs.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            const double a = data_[i * cols_ + k];
            if (a == 0.0)
                continue;
            for (size_t j = 0; j < rhs.cols_; ++j)
                out.data_[i * rhs.cols_ + j] +=
                    a * rhs.data_[k * rhs.cols_ + j];
        }
    }
    return out;
}

Matrix
Matrix::Transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.data_[j * rows_ + i] = data_[i * cols_ + j];
    return out;
}

Matrix
Matrix::Add(const Matrix& rhs) const
{
    RUMBA_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    Matrix out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += rhs.data_[i];
    return out;
}

Matrix
Matrix::Scaled(double s) const
{
    Matrix out = *this;
    for (auto& v : out.data_)
        v *= s;
    return out;
}

bool
Matrix::Solve(const std::vector<double>& b, std::vector<double>* x) const
{
    RUMBA_CHECK(rows_ == cols_);
    RUMBA_CHECK(b.size() == rows_);
    RUMBA_CHECK(x != nullptr);

    const size_t n = rows_;
    // Augmented working copy.
    std::vector<double> a(data_);
    std::vector<double> rhs(b);

    for (size_t col = 0; col < n; ++col) {
        // Partial pivot.
        size_t pivot = col;
        double best = std::fabs(a[col * n + col]);
        for (size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a[r * n + col]);
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        if (best < 1e-12)
            return false;
        if (pivot != col) {
            for (size_t c = col; c < n; ++c)
                std::swap(a[pivot * n + c], a[col * n + c]);
            std::swap(rhs[pivot], rhs[col]);
        }
        const double inv = 1.0 / a[col * n + col];
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a[r * n + col] * inv;
            if (factor == 0.0)
                continue;
            for (size_t c = col; c < n; ++c)
                a[r * n + c] -= factor * a[col * n + c];
            rhs[r] -= factor * rhs[col];
        }
    }

    x->assign(n, 0.0);
    for (size_t ri = n; ri-- > 0;) {
        double sum = rhs[ri];
        for (size_t c = ri + 1; c < n; ++c)
            sum -= a[ri * n + c] * (*x)[c];
        (*x)[ri] = sum / a[ri * n + ri];
    }
    return true;
}

double
Matrix::MaxAbsDiff(const Matrix& rhs) const
{
    RUMBA_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
    double worst = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        worst = std::max(worst, std::fabs(data_[i] - rhs.data_[i]));
    return worst;
}

}  // namespace rumba
