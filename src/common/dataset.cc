#include "common/dataset.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/random.h"

namespace rumba {

Dataset::Dataset(size_t num_inputs, size_t num_targets)
    : num_inputs_(num_inputs), num_targets_(num_targets)
{
    RUMBA_CHECK(num_inputs > 0);
    RUMBA_CHECK(num_targets > 0);
}

void
Dataset::Add(std::vector<double> input, std::vector<double> target)
{
    RUMBA_CHECK(input.size() == num_inputs_);
    RUMBA_CHECK(target.size() == num_targets_);
    inputs_.push_back(std::move(input));
    targets_.push_back(std::move(target));
}

void
Dataset::SetTarget(size_t i, std::vector<double> target)
{
    RUMBA_CHECK(i < targets_.size());
    RUMBA_CHECK(target.size() == num_targets_);
    targets_[i] = std::move(target);
}

void
Dataset::Shuffle(Rng* rng)
{
    RUMBA_CHECK(rng != nullptr);
    for (size_t i = inputs_.size(); i > 1; --i) {
        const size_t j = static_cast<size_t>(rng->Below(i));
        std::swap(inputs_[i - 1], inputs_[j]);
        std::swap(targets_[i - 1], targets_[j]);
    }
}

Dataset
Dataset::TakeFront(double fraction)
{
    RUMBA_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const size_t take = static_cast<size_t>(
        fraction * static_cast<double>(inputs_.size()));
    Dataset front(num_inputs_, num_targets_);
    for (size_t i = 0; i < take; ++i) {
        front.inputs_.push_back(std::move(inputs_[i]));
        front.targets_.push_back(std::move(targets_[i]));
    }
    inputs_.erase(inputs_.begin(),
                  inputs_.begin() + static_cast<ptrdiff_t>(take));
    targets_.erase(targets_.begin(),
                   targets_.begin() + static_cast<ptrdiff_t>(take));
    return front;
}

void
Normalizer::Fit(const std::vector<std::vector<double>>& rows)
{
    RUMBA_CHECK(!rows.empty());
    const size_t arity = rows[0].size();
    lo_.assign(arity, 1.0 / 0.0);
    hi_.assign(arity, -1.0 / 0.0);
    for (const auto& row : rows) {
        for (size_t f = 0; f < arity; ++f) {
            lo_[f] = std::min(lo_[f], row[f]);
            hi_[f] = std::max(hi_[f], row[f]);
        }
    }
}

void
Normalizer::FitInputs(const Dataset& data)
{
    Fit(data.inputs_);
}

void
Normalizer::FitTargets(const Dataset& data)
{
    Fit(data.targets_);
}

std::vector<double>
Normalizer::Apply(const std::vector<double>& raw) const
{
    RUMBA_CHECK(raw.size() == lo_.size());
    std::vector<double> out;
    Apply(raw.data(), raw.size(), &out);
    return out;
}

void
Normalizer::Apply(const double* raw, size_t n,
                  std::vector<double>* out) const
{
    RUMBA_CHECK(n == lo_.size());
    out->resize(n);
    for (size_t f = 0; f < n; ++f) {
        const double span = hi_[f] - lo_[f];
        (*out)[f] = span > 0.0 ? (raw[f] - lo_[f]) / span : 0.5;
    }
}

std::string
Normalizer::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "norm " << lo_.size();
    for (double v : lo_)
        out << " " << v;
    for (double v : hi_)
        out << " " << v;
    out << "\n";
    return out.str();
}

Normalizer
Normalizer::Deserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    size_t arity = 0;
    in >> tag >> arity;
    if (tag != "norm")
        Fatal("normalizer blob missing 'norm' header");
    Normalizer n;
    n.lo_.resize(arity);
    n.hi_.resize(arity);
    for (auto& v : n.lo_) {
        if (!(in >> v))
            Fatal("normalizer blob truncated");
    }
    for (auto& v : n.hi_) {
        if (!(in >> v))
            Fatal("normalizer blob truncated");
    }
    return n;
}

std::vector<double>
Normalizer::Invert(const std::vector<double>& norm) const
{
    RUMBA_CHECK(norm.size() == lo_.size());
    std::vector<double> out;
    Invert(norm.data(), norm.size(), &out);
    return out;
}

void
Normalizer::Invert(const double* norm, size_t n,
                   std::vector<double>* out) const
{
    RUMBA_CHECK(n == lo_.size());
    out->resize(n);
    for (size_t f = 0; f < n; ++f) {
        const double span = hi_[f] - lo_[f];
        (*out)[f] = span > 0.0 ? lo_[f] + norm[f] * span : lo_[f];
    }
}

}  // namespace rumba
