#include "core/schemes.h"

#include "common/logging.h"

namespace rumba::core {

const char*
SchemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kNpu:
        return "NPU";
      case Scheme::kIdeal:
        return "Ideal";
      case Scheme::kRandom:
        return "Random";
      case Scheme::kUniform:
        return "Uniform";
      case Scheme::kEma:
        return "EMA";
      case Scheme::kLinear:
        return "linearErrors";
      case Scheme::kTree:
        return "treeErrors";
      case Scheme::kHybrid:
        return "hybridErrors";
    }
    Panic("unknown scheme");
}

std::vector<Scheme>
FixingSchemes()
{
    return {Scheme::kIdeal, Scheme::kRandom, Scheme::kUniform,
            Scheme::kEma,   Scheme::kLinear, Scheme::kTree};
}

std::vector<Scheme>
DetectorSchemes()
{
    return {Scheme::kRandom, Scheme::kUniform, Scheme::kEma,
            Scheme::kLinear, Scheme::kTree};
}

std::vector<Scheme>
ExtendedSchemes()
{
    auto schemes = FixingSchemes();
    schemes.push_back(Scheme::kHybrid);
    return schemes;
}

bool
IsPredictorScheme(Scheme scheme)
{
    return scheme == Scheme::kEma || scheme == Scheme::kLinear ||
           scheme == Scheme::kTree || scheme == Scheme::kHybrid;
}

}  // namespace rumba::core
