#ifndef RUMBA_CORE_BREAKER_H_
#define RUMBA_CORE_BREAKER_H_

/**
 * @file
 * Circuit breaker over the approximate path. The paper's recovery
 * module contains *per-element* errors; this layer contains
 * *persistent* accelerator failure (NaN storms, datapath upsets,
 * fire-rate blowout) by degrading the whole invocation path:
 *
 *   closed    — normal operation: every element rides the accelerator
 *               under the detector's per-element checks.
 *   open      — the accelerator is distrusted: every element is
 *               executed exactly on the CPU (paper-faithful recovery
 *               of everything; quality is exact, speedup is gone).
 *   half-open — after a hold-off, a small canary slice of each batch
 *               probes the accelerator while the rest stays exact;
 *               clean probes close the breaker, a dirty probe reopens
 *               it.
 *
 * Transitions are driven by per-invocation health summaries from the
 * runtime and exported through obs (`breaker.state` gauge; trip/
 * probe/close counters), so degradation episodes are visible in any
 * stream or trace capture.
 */

#include <cstddef>

namespace rumba::obs {
class Counter;
class Gauge;
}  // namespace rumba::obs

namespace rumba::core {

/** Breaker position. Gauge encoding: closed 0, open 1, half-open 2. */
enum class BreakerState {
    kClosed,
    kOpen,
    kHalfOpen,
};

/** Human-readable state name ("closed" / "open" / "half-open"). */
const char* BreakerStateName(BreakerState state);

/** Trip/recovery policy. */
struct BreakerConfig {
    bool enabled = true;
    /** An invocation is unhealthy when its delivered output error
     *  exceeds `error_trip_factor x` the tuner's target. */
    double error_trip_factor = 3.0;
    /** ... or its detector fire rate exceeds this fraction *while the
     *  drift alarm is raised*. A bare fire-rate spike is the online
     *  tuner's job (it walks the threshold); fire-rate blowout
     *  corroborated by drift means the calibration no longer fits. */
    double fire_rate_trip = 0.6;
    /** ... or it saw at least this many non-finite accelerator
     *  outputs (0 disables the non-finite criterion). */
    size_t non_finite_trip = 1;
    /** ... or any recovery-queue entries were dropped. */
    bool trip_on_queue_drops = true;
    /** Consecutive unhealthy invocations before the breaker opens. */
    size_t trip_after = 3;
    /** Invocations served exact-only before probing (hold-off). */
    size_t open_invocations = 4;
    /** Elements routed through the accelerator per half-open probe. */
    size_t canary_elements = 32;
    /** Consecutive clean probes before the breaker closes again. */
    size_t close_after = 2;
};

/** One invocation's health as the breaker sees it. */
struct BreakerHealth {
    /** Elements that rode the accelerator (the canary slice while
     *  half-open; zero while open). */
    size_t approx_elements = 0;
    size_t fires = 0;           ///< detector fires among those.
    size_t non_finite = 0;      ///< non-finite accelerator outputs.
    size_t queue_drops = 0;     ///< recovery entries dropped.
    /** Drift alarm raised this round (enables the fire-rate trip). */
    bool drift = false;
    /** Delivered error over the accelerator-served slice (percent). */
    double output_error_pct = 0.0;
    /** The quality target the error is judged against (percent). */
    double target_error_pct = 10.0;
};

/** The closed -> open -> half-open state machine. */
class CircuitBreaker {
  public:
    CircuitBreaker() : CircuitBreaker(BreakerConfig()) {}
    explicit CircuitBreaker(const BreakerConfig& config);

    /** Current position. */
    BreakerState State() const { return state_; }

    /** The active policy. */
    const BreakerConfig& Config() const { return config_; }

    /**
     * How many of the next invocation's @p batch_elements may ride
     * the accelerator: all of them while closed, a canary slice while
     * half-open, none while open.
     */
    size_t ApproxBudget(size_t batch_elements) const;

    /**
     * Feed one invocation's health summary; may move the state
     * machine. @p health covers only the accelerator-served slice.
     */
    void OnInvocation(const BreakerHealth& health);

    /** True when @p health alone would count as unhealthy. */
    bool Unhealthy(const BreakerHealth& health) const;

    /** closed -> open transitions (half-open reopens included). */
    size_t Trips() const { return trips_; }

    /** Half-open canary probes evaluated. */
    size_t Probes() const { return probes_; }

    /** half-open -> closed transitions. */
    size_t Closes() const { return closes_; }

    /** Force the breaker back to closed (tests). */
    void Reset();

  private:
    void SetState(BreakerState next);

    BreakerConfig config_;
    BreakerState state_ = BreakerState::kClosed;
    size_t unhealthy_streak_ = 0;  ///< closed: consecutive bad rounds.
    size_t open_remaining_ = 0;    ///< open: hold-off countdown.
    size_t clean_probes_ = 0;      ///< half-open: consecutive good.
    size_t trips_ = 0;
    size_t probes_ = 0;
    size_t closes_ = 0;
    /** Process-wide telemetry: position and transition counts. */
    obs::Gauge* obs_state_;
    obs::Counter* obs_trips_;
    obs::Counter* obs_probes_;
    obs::Counter* obs_closes_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_BREAKER_H_
