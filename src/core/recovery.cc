#include "core/recovery.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::core {

RecoveryModule::RecoveryModule(const apps::Benchmark* bench,
                               size_t queue_capacity)
    : bench_(bench),
      queue_(queue_capacity),
      obs_reexecutions_(
          obs::Registry::Default().GetCounter("recovery.reexecutions")),
      obs_compensations_(obs::Registry::Default().GetCounter(
          "recovery.compensations")),
      obs_queue_full_stalls_(obs::Registry::Default().GetCounter(
          "recovery.queue_full_stalls")),
      obs_queue_drops_(obs::Registry::Default().GetCounter(
          "recovery.queue_drops")),
      obs_drain_ns_(
          obs::Registry::Default().GetHistogram("recovery.drain_ns"))
{
    RUMBA_CHECK(bench != nullptr);
    RUMBA_CHECK(queue_capacity > 0);
    // The configured depth is deploy-time identity, surfaced in
    // /buildz next to the build metadata.
    obs::Registry::Default()
        .GetGauge("recovery.queue_capacity")
        ->Set(static_cast<double>(queue_capacity));
}

size_t
RecoveryModule::Drain(const BatchView& inputs, double* outputs,
                      size_t out_width, std::vector<char>* fixed,
                      DrainStats* stats)
{
    RUMBA_CHECK(outputs != nullptr);
    RUMBA_CHECK(out_width == bench_->NumOutputs());
    const obs::ScopedTimer timer(obs_drain_ns_);
    const obs::Span drain_span("recovery.drain");
    size_t drained = 0;
    size_t reexecuted = 0;
    size_t compensated = 0;
    uint64_t reexec_ns = 0;
    uint64_t compensate_ns = 0;
    while (!queue_.Empty()) {
        const RecoveryDecision decision = queue_.Pop();
        RUMBA_CHECK(decision.iteration < inputs.count());
        const double* in = inputs[decision.iteration].data();
        double* out = outputs + decision.iteration * out_width;
        bool did_compensate = false;
        if (decision.tier == RecoveryTier::kCompensate &&
            compensate_ != nullptr) {
            const obs::Span fix_span("recovery.compensate");
            const uint64_t start = obs::NowNs();
            did_compensate = compensate_(in, out);
            compensate_ns += obs::NowNs() - start;
        }
        if (!did_compensate) {
            // Re-execute tier, or a compensation the executor refused
            // (no compensator installed, non-finite element): the
            // merger writes straight into the element's output slot;
            // re-execution of a pure kernel is idempotent.
            const obs::Span fix_span("recovery.reexecute");
            const uint64_t start = obs::NowNs();
            bench_->RunExact(in, out);
            reexec_ns += obs::NowNs() - start;
        }
        if (fixed != nullptr) {
            RUMBA_CHECK(decision.iteration < fixed->size());
            (*fixed)[decision.iteration] =
                did_compensate ? kFixedCompensated : kFixedExact;
        }
        ++drained;
        if (did_compensate)
            ++compensated;
        else
            ++reexecuted;
    }
    reexecutions_ += reexecuted;
    compensations_ += compensated;
    obs_reexecutions_->Increment(reexecuted);
    obs_compensations_->Increment(compensated);
    if (stats != nullptr) {
        stats->reexecuted += reexecuted;
        stats->compensated += compensated;
        stats->reexec_ns += reexec_ns;
        stats->compensate_ns += compensate_ns;
    }
    return drained;
}

std::unique_ptr<ExactReexecutor>
ExactReexecutor::Create(const std::string& benchmark)
{
    std::unique_ptr<apps::Benchmark> bench =
        apps::TryMakeBenchmark(benchmark);
    if (bench == nullptr)
        return nullptr;
    return std::unique_ptr<ExactReexecutor>(
        new ExactReexecutor(std::move(bench)));
}

ExactReexecutor::ExactReexecutor(std::unique_ptr<apps::Benchmark> bench)
    : bench_(std::move(bench))
{
}

void
ExactReexecutor::RunElement(const double* in, double* out) const
{
    bench_->RunExact(in, out);
}

void
ExactReexecutor::RunBatch(const double* in, double* out,
                          size_t count) const
{
    const size_t in_w = bench_->NumInputs();
    const size_t out_w = bench_->NumOutputs();
    for (size_t i = 0; i < count; ++i)
        bench_->RunExact(in + i * in_w, out + i * out_w);
}

double
ExactReexecutor::ElementError(const std::vector<double>& exact,
                              const std::vector<double>& approx) const
{
    return bench_->ElementError(exact, approx);
}

double
ExactReexecutor::AggregateError(
    const std::vector<double>& element_errors) const
{
    return bench_->AggregateError(element_errors);
}

void
RecoveryModule::RecordQueueFullStall()
{
    obs_queue_full_stalls_->Increment();
}

void
RecoveryModule::RecordQueueDrop()
{
    ++queue_drops_;
    obs_queue_drops_->Increment();
}

}  // namespace rumba::core
