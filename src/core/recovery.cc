#include "core/recovery.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::core {

RecoveryModule::RecoveryModule(const apps::Benchmark* bench,
                               size_t queue_capacity)
    : bench_(bench),
      queue_(queue_capacity),
      obs_reexecutions_(
          obs::Registry::Default().GetCounter("recovery.reexecutions")),
      obs_queue_full_stalls_(obs::Registry::Default().GetCounter(
          "recovery.queue_full_stalls")),
      obs_queue_drops_(obs::Registry::Default().GetCounter(
          "recovery.queue_drops")),
      obs_drain_ns_(
          obs::Registry::Default().GetHistogram("recovery.drain_ns"))
{
    RUMBA_CHECK(bench != nullptr);
}

size_t
RecoveryModule::Drain(const BatchView& inputs, double* outputs,
                      size_t out_width, std::vector<char>* fixed)
{
    RUMBA_CHECK(outputs != nullptr);
    RUMBA_CHECK(out_width == bench_->NumOutputs());
    const obs::ScopedTimer timer(obs_drain_ns_);
    const obs::Span drain_span("recovery.drain");
    size_t drained = 0;
    while (!queue_.Empty()) {
        const RecoveryEntry entry = queue_.Pop();
        RUMBA_CHECK(entry.iteration < inputs.count());
        {
            const obs::Span fix_span("recovery.reexecute");
            // The merger writes straight into the element's output
            // slot; re-execution of a pure kernel is idempotent.
            bench_->RunExact(inputs[entry.iteration].data(),
                             outputs + entry.iteration * out_width);
        }
        if (fixed != nullptr) {
            RUMBA_CHECK(entry.iteration < fixed->size());
            (*fixed)[entry.iteration] = 1;
        }
        ++drained;
        ++reexecutions_;
    }
    obs_reexecutions_->Increment(drained);
    return drained;
}

size_t
RecoveryModule::Drain(const std::vector<std::vector<double>>& inputs,
                      std::vector<std::vector<double>>* outputs,
                      std::vector<char>* fixed)
{
    RUMBA_CHECK(outputs != nullptr);
    RUMBA_CHECK(outputs->size() == inputs.size());
    const obs::ScopedTimer timer(obs_drain_ns_);
    const obs::Span drain_span("recovery.drain");
    size_t drained = 0;
    std::vector<double> exact(bench_->NumOutputs());
    while (!queue_.Empty()) {
        const RecoveryEntry entry = queue_.Pop();
        RUMBA_CHECK(entry.iteration < inputs.size());
        {
            const obs::Span fix_span("recovery.reexecute");
            bench_->RunExact(inputs[entry.iteration].data(),
                             exact.data());
        }
        (*outputs)[entry.iteration] = exact;
        if (fixed != nullptr) {
            RUMBA_CHECK(entry.iteration < fixed->size());
            (*fixed)[entry.iteration] = 1;
        }
        ++drained;
        ++reexecutions_;
    }
    obs_reexecutions_->Increment(drained);
    return drained;
}

std::unique_ptr<ExactReexecutor>
ExactReexecutor::Create(const std::string& benchmark)
{
    std::unique_ptr<apps::Benchmark> bench =
        apps::TryMakeBenchmark(benchmark);
    if (bench == nullptr)
        return nullptr;
    return std::unique_ptr<ExactReexecutor>(
        new ExactReexecutor(std::move(bench)));
}

ExactReexecutor::ExactReexecutor(std::unique_ptr<apps::Benchmark> bench)
    : bench_(std::move(bench))
{
}

void
ExactReexecutor::RunElement(const double* in, double* out) const
{
    bench_->RunExact(in, out);
}

void
ExactReexecutor::RunBatch(const double* in, double* out,
                          size_t count) const
{
    const size_t in_w = bench_->NumInputs();
    const size_t out_w = bench_->NumOutputs();
    for (size_t i = 0; i < count; ++i)
        bench_->RunExact(in + i * in_w, out + i * out_w);
}

double
ExactReexecutor::ElementError(const std::vector<double>& exact,
                              const std::vector<double>& approx) const
{
    return bench_->ElementError(exact, approx);
}

double
ExactReexecutor::AggregateError(
    const std::vector<double>& element_errors) const
{
    return bench_->AggregateError(element_errors);
}

void
RecoveryModule::RecordQueueFullStall()
{
    obs_queue_full_stalls_->Increment();
}

void
RecoveryModule::RecordQueueDrop()
{
    ++queue_drops_;
    obs_queue_drops_->Increment();
}

}  // namespace rumba::core
