#ifndef RUMBA_CORE_TUNER_H_
#define RUMBA_CORE_TUNER_H_

/**
 * @file
 * Rumba's online tuner (Section 3.4). Between accelerator
 * invocations it moves the detection threshold to honor the user's
 * goal: a target output quality (TOQ mode), a re-execution budget
 * (Energy mode), or maximum quality while the CPU keeps up with the
 * accelerator (Quality mode).
 */

#include <cstddef>

#include "core/status.h"

namespace rumba::obs {
class Counter;
class Gauge;
}  // namespace rumba::obs

namespace rumba::core {

/** The tuner's programming modes (Section 3.4). */
enum class TuningMode {
    kToq,      ///< meet a target output quality.
    kEnergy,   ///< stay within a re-execution (energy) budget.
    kQuality,  ///< maximize quality while the CPU keeps up.
};

/** Tuner policy parameters. */
struct TunerConfig {
    TuningMode mode = TuningMode::kToq;
    /** TOQ mode: target output error in percent (10 = 90% quality). */
    double target_error_pct = 10.0;
    /** Energy mode: re-executions allowed per invocation. */
    size_t iteration_budget = 0;
    /** Multiplicative threshold step per adjustment. */
    double adjust_factor = 1.25;
    /** Threshold clamp range (predictor-scale units). */
    double min_threshold = 1e-5;
    double max_threshold = 1e3;
    /** Dead band: no adjustment while within this relative margin. */
    double dead_band = 0.1;
};

/**
 * kInvalidArgument when @p config cannot drive a tuner (adjust factor
 * <= 1, non-positive or inverted threshold clamp range, negative
 * target/dead band). Entry points taking external configuration
 * (RumbaRuntime::FromArtifact, the serving engine) validate with this
 * and return the Status instead of dying; the OnlineTuner constructor
 * keeps its checked-fatal contract for in-process programmer error.
 */
Status ValidateTunerConfig(const TunerConfig& config);

/** Per-invocation feedback the tuner consumes. */
struct InvocationFeedback {
    size_t elements = 0;  ///< accelerator invocations this round.
    size_t fixes = 0;     ///< iterations re-executed this round.
    /** TOQ mode: estimated residual output error (percent) — the mean
     *  predicted error of the elements that were *not* fixed. */
    double estimated_error_pct = 0.0;
    /** Quality mode: CPU recovery time / accelerator time. >1 means
     *  the CPU could not keep up. */
    double cpu_busy_ratio = 0.0;
};

/** Adjusts the detection threshold between invocations. */
class OnlineTuner {
  public:
    OnlineTuner(const TunerConfig& config, double initial_threshold);

    /** The threshold the detector should use for the next invocation. */
    double Threshold() const { return threshold_; }

    /** Feed one invocation's outcome; may move the threshold. */
    void EndInvocation(const InvocationFeedback& feedback);

    /** Number of threshold adjustments made so far. */
    size_t Adjustments() const { return adjustments_; }

    /** The active configuration. */
    const TunerConfig& Config() const { return config_; }

  private:
    void Raise();
    void Lower();

    TunerConfig config_;
    double threshold_;
    size_t adjustments_ = 0;
    /** Process-wide telemetry: current threshold and move count. */
    obs::Gauge* obs_threshold_;
    obs::Counter* obs_adjustments_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_TUNER_H_
