#ifndef RUMBA_CORE_DETECTOR_H_
#define RUMBA_CORE_DETECTOR_H_

/**
 * @file
 * Rumba's detection module (Section 3.2): an error predictor attached
 * to the accelerator plus a tuning threshold. Each accelerator
 * invocation is checked; when the predicted error exceeds the
 * threshold the check "fires" and the element's recovery bit is set.
 */

#include <memory>

#include "predict/predictor.h"

namespace rumba::obs {
class Counter;
class Histogram;
}  // namespace rumba::obs

namespace rumba::core {

/** Outcome of one dynamic check. */
struct CheckResult {
    double predicted_error = 0.0;  ///< the checker's error estimate.
    bool fired = false;            ///< predicted_error >= threshold.
    /** The approximate output (or the input) contained NaN/Inf. Such
     *  elements fire unconditionally — a non-finite word can never be
     *  delivered — and bypass the predictor so sequential checker
     *  state (the EMA history) is not poisoned by it. */
    bool non_finite = false;
};

/** The detection module: predictor + threshold. */
class Detector {
  public:
    /**
     * @param predictor the trained checker; the detector takes
     *        ownership.
     * @param threshold initial tuning threshold (the online tuner may
     *        move it between invocations).
     */
    Detector(std::unique_ptr<predict::ErrorPredictor> predictor,
             double threshold);

    /** Run one check over an element's inputs/approximate outputs. */
    CheckResult Check(const std::vector<double>& inputs,
                      const std::vector<double>& approx_outputs);

    /** Current tuning threshold. */
    double Threshold() const { return threshold_; }

    /** Move the tuning threshold (online tuner, Section 3.4). */
    void SetThreshold(double threshold) { threshold_ = threshold; }

    /** The wrapped predictor. */
    const predict::ErrorPredictor& Predictor() const { return *predictor_; }

    /** Clear sequential predictor state between runs. */
    void Reset() { predictor_->Reset(); }

    /** Hardware cost of one check. */
    sim::CheckerCost CostPerCheck() const
    {
        return predictor_->CostPerCheck();
    }

    /** Checks performed since construction. */
    size_t ChecksPerformed() const { return checks_; }

    /** Checks that fired since construction. */
    size_t ChecksFired() const { return fired_; }

    /** Checks that fired on a non-finite value since construction. */
    size_t NonFiniteChecks() const { return non_finite_; }

  private:
    std::unique_ptr<predict::ErrorPredictor> predictor_;
    double threshold_;
    size_t checks_ = 0;
    size_t fired_ = 0;
    size_t non_finite_ = 0;
    /** Process-wide telemetry: check/fire counts and check latency. */
    obs::Counter* obs_checks_;
    obs::Counter* obs_fires_;
    obs::Counter* obs_non_finite_;
    obs::Histogram* obs_check_ns_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_DETECTOR_H_
