#include "core/overlap_sim.h"

#include <algorithm>
#include <deque>

#include "common/logging.h"

namespace rumba::core {

OverlapResult
SimulateOverlap(const std::vector<char>& fire_mask,
                const OverlapConfig& config,
                std::vector<ElementTrace>* trace)
{
    RUMBA_CHECK(config.accel_cycles_per_element > 0);
    RUMBA_CHECK(config.cpu_cycles_per_fix > 0);
    RUMBA_CHECK(config.queue_capacity > 0);

    OverlapResult result;
    if (trace != nullptr)
        trace->assign(fire_mask.size(), ElementTrace{});
    // Completion time of each queued entry's CPU service, FIFO.
    std::deque<uint64_t> in_service;
    uint64_t accel_time = 0;   // accelerator's clock.
    uint64_t cpu_free_at = 0;  // when the CPU can accept more work.
    uint64_t last_commit = 0;  // latest completion on either side.

    for (size_t idx = 0; idx < fire_mask.size(); ++idx) {
        const char fired = fire_mask[idx];
        ElementTrace* record =
            trace != nullptr ? &(*trace)[idx] : nullptr;
        // The accelerator computes the element.
        if (record != nullptr)
            record->accel_start = accel_time;
        accel_time += config.accel_cycles_per_element;
        result.accel_busy_cycles += config.accel_cycles_per_element;
        last_commit = std::max(last_commit, accel_time);
        if (record != nullptr) {
            record->accel_end = accel_time;
            record->fired = fired != 0;
        }
        if (!fired)
            continue;

        // Retire queue entries whose CPU service finished by now.
        while (!in_service.empty() && in_service.front() <= accel_time)
            in_service.pop_front();

        // Back-pressure: a full queue stalls the accelerator until
        // the oldest entry's service completes.
        if (in_service.size() >= config.queue_capacity) {
            const uint64_t resume = in_service.front();
            RUMBA_CHECK(resume > accel_time);
            result.accel_stall_cycles += resume - accel_time;
            accel_time = resume;
            while (!in_service.empty() &&
                   in_service.front() <= accel_time) {
                in_service.pop_front();
            }
        }

        // Enqueue: CPU serves it as soon as it is free.
        const uint64_t start = std::max(cpu_free_at, accel_time);
        const uint64_t done = start + config.cpu_cycles_per_fix;
        if (record != nullptr) {
            record->cpu_start = start;
            record->cpu_end = done;
        }
        cpu_free_at = done;
        in_service.push_back(done);
        result.max_queue_depth =
            std::max(result.max_queue_depth, in_service.size());
        result.cpu_busy_cycles += config.cpu_cycles_per_fix;
        ++result.fixes;
        last_commit = std::max(last_commit, done);
    }

    result.total_cycles = last_commit;
    result.cpu_idle_cycles =
        result.total_cycles >= result.cpu_busy_cycles
            ? result.total_cycles - result.cpu_busy_cycles
            : 0;
    return result;
}

}  // namespace rumba::core
