#include "core/overlap_sim.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "apps/benchmark.h"
#include "common/logging.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::core {

OverlapResult
SimulateOverlap(const std::vector<char>& fire_mask,
                const OverlapConfig& config,
                std::vector<ElementTrace>* trace)
{
    RUMBA_CHECK(config.accel_cycles_per_element > 0);
    RUMBA_CHECK(config.cpu_cycles_per_fix > 0);
    RUMBA_CHECK(config.queue_capacity > 0);

    OverlapResult result;
    if (trace != nullptr)
        trace->assign(fire_mask.size(), ElementTrace{});
    // Completion time of each queued entry's CPU service, FIFO.
    std::deque<uint64_t> in_service;
    uint64_t accel_time = 0;   // accelerator's clock.
    uint64_t cpu_free_at = 0;  // when the CPU can accept more work.
    uint64_t last_commit = 0;  // latest completion on either side.

    for (size_t idx = 0; idx < fire_mask.size(); ++idx) {
        const char fired = fire_mask[idx];
        ElementTrace* record =
            trace != nullptr ? &(*trace)[idx] : nullptr;
        // The accelerator computes the element.
        if (record != nullptr)
            record->accel_start = accel_time;
        accel_time += config.accel_cycles_per_element;
        result.accel_busy_cycles += config.accel_cycles_per_element;
        last_commit = std::max(last_commit, accel_time);
        if (record != nullptr) {
            record->accel_end = accel_time;
            record->fired = fired != 0;
        }
        if (!fired)
            continue;

        // Retire queue entries whose CPU service finished by now.
        while (!in_service.empty() && in_service.front() <= accel_time)
            in_service.pop_front();

        // Back-pressure: a full queue stalls the accelerator until
        // the oldest entry's service completes.
        if (in_service.size() >= config.queue_capacity) {
            const uint64_t resume = in_service.front();
            RUMBA_CHECK(resume > accel_time);
            result.accel_stall_cycles += resume - accel_time;
            accel_time = resume;
            while (!in_service.empty() &&
                   in_service.front() <= accel_time) {
                in_service.pop_front();
            }
        }

        // Enqueue: CPU serves it as soon as it is free.
        const uint64_t start = std::max(cpu_free_at, accel_time);
        const uint64_t done = start + config.cpu_cycles_per_fix;
        if (record != nullptr) {
            record->cpu_start = start;
            record->cpu_end = done;
        }
        cpu_free_at = done;
        in_service.push_back(done);
        result.max_queue_depth =
            std::max(result.max_queue_depth, in_service.size());
        result.cpu_busy_cycles += config.cpu_cycles_per_fix;
        ++result.fixes;
        last_commit = std::max(last_commit, done);
    }

    result.total_cycles = last_commit;
    result.cpu_idle_cycles =
        result.total_cycles >= result.cpu_busy_cycles
            ? result.total_cycles - result.cpu_busy_cycles
            : 0;
    return result;
}

namespace {

/**
 * Bounded blocking index queue: the recovery-bit FIFO of Figure 4
 * with real blocking semantics. The producer (accelerator lane)
 * blocks on a full queue — backpressure — and the consumer (recovery
 * lane) blocks on an empty one until the stream closes.
 */
class BoundedIndexQueue {
  public:
    explicit BoundedIndexQueue(size_t capacity) : capacity_(capacity)
    {
        RUMBA_CHECK(capacity > 0);
    }

    /** Enqueue, blocking while full; counts backpressure waits. */
    void
    Push(size_t index)
    {
        std::unique_lock<std::mutex> lock(mu_);
        if (queue_.size() >= capacity_) {
            ++push_waits_;
            const obs::Span wait_span("overlap.queue_push_wait");
            not_full_.wait(lock,
                           [this] { return queue_.size() < capacity_; });
        }
        queue_.push_back(index);
        max_depth_ = std::max(max_depth_, queue_.size());
        not_empty_.notify_one();
    }

    /** Dequeue; false once the queue is closed and drained. */
    bool
    Pop(size_t* index)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock,
                        [this] { return !queue_.empty() || closed_; });
        if (queue_.empty())
            return false;
        *index = queue_.front();
        queue_.pop_front();
        not_full_.notify_one();
        return true;
    }

    /** No more pushes; wakes a consumer blocked on empty. */
    void
    Close()
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
        not_empty_.notify_all();
    }

    size_t
    MaxDepth() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return max_depth_;
    }

    size_t
    PushWaits() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return push_waits_;
    }

  private:
    const size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<size_t> queue_;
    bool closed_ = false;
    size_t max_depth_ = 0;
    size_t push_waits_ = 0;
};

/** Busy-wait until @p until_ns on the steady clock (trace pacing). */
void
SpinUntil(uint64_t until_ns)
{
    while (obs::NowNs() < until_ns) {
        // Pacing only; nothing to do.
    }
}

}  // namespace

OverlapReplayResult
ReplayOverlapThreaded(const apps::Benchmark& bench,
                      const std::vector<std::vector<double>>& inputs,
                      const std::vector<char>& fire_mask,
                      std::vector<std::vector<double>>* outputs,
                      const OverlapReplayConfig& config)
{
    RUMBA_CHECK(outputs != nullptr);
    RUMBA_CHECK(inputs.size() == fire_mask.size());
    outputs->assign(inputs.size(), {});

    OverlapReplayResult result;
    result.elements = inputs.size();
    const uint64_t start_ns = obs::NowNs();

    BoundedIndexQueue queue(config.queue_capacity);
    size_t fixes = 0;
    std::thread recovery([&] {
        const obs::Span worker_span("overlap.recovery_worker");
        std::vector<double> exact(bench.NumOutputs());
        for (;;) {
            size_t index = 0;
            {
                const obs::Span wait_span("overlap.queue_wait");
                if (!queue.Pop(&index))
                    break;
            }
            const obs::Span fix_span("overlap.cpu_reexecute");
            bench.RunExact(inputs[index].data(), exact.data());
            (*outputs)[index] = exact;  // output-merger commit.
            ++fixes;
        }
    });

    {
        const obs::Span stream_span("overlap.accel_stream");
        for (size_t i = 0; i < inputs.size(); ++i) {
            const obs::Span element_span("overlap.accel_element");
            if (config.accel_ns_per_element > 0)
                SpinUntil(obs::NowNs() + config.accel_ns_per_element);
            if (fire_mask[i])
                queue.Push(i);
        }
    }
    queue.Close();
    recovery.join();

    result.fixes = fixes;
    result.max_queue_depth = queue.MaxDepth();
    result.push_waits = queue.PushWaits();
    result.wall_ns = obs::NowNs() - start_ns;
    return result;
}

}  // namespace rumba::core
