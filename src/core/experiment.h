#ifndef RUMBA_CORE_EXPERIMENT_H_
#define RUMBA_CORE_EXPERIMENT_H_

/**
 * @file
 * The evaluation harness behind the paper's Figures 10-18: for one
 * benchmark it prepares the whole pipeline (networks, accelerators,
 * predictors), runs the test elements through the accelerator, and
 * answers the questions the plots ask — output error for a given fix
 * budget, the threshold/fix-set reaching a target quality, false
 * positives, large-error coverage, and whole-app energy/speedup per
 * scheme.
 */

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "core/schemes.h"
#include "sim/system_model.h"

namespace rumba::core {

/** Harness configuration. */
struct ExperimentConfig {
    PipelineConfig pipeline;     ///< offline-training knobs.
    sim::CoreParams core;        ///< Table 2 CPU parameters.
    sim::EnergyParams energy;    ///< McPAT-style event energies.
    /** Element true-error above which an error counts as "large"
     *  (the paper's >20% cutoff for Figure 13). */
    double large_error_cutoff = 0.20;
};

/** Everything the figures report about one scheme configuration. */
struct SchemeReport {
    Scheme scheme = Scheme::kNpu;
    size_t fixes = 0;                  ///< re-executed iterations.
    double fix_fraction = 0.0;         ///< fixes / elements.
    double output_error_pct = 0.0;     ///< app metric after fixing.
    double false_positive_pct = 0.0;   ///< Fig 11 (percent of elements).
    double relative_coverage_pct = 0.0;  ///< Fig 13 (Ideal = 100).
    double threshold = 0.0;            ///< score threshold used.
    sim::SystemCosts costs;            ///< Fig 14/15 energy & time.
};

/** Per-benchmark evaluation harness. */
class Experiment {
  public:
    /** Prepares the full pipeline; heavy (trains networks). */
    Experiment(std::unique_ptr<apps::Benchmark> bench,
               const ExperimentConfig& config);

    /** The application under test. */
    const apps::Benchmark& Bench() const { return pipeline_.Bench(); }

    /** The prepared offline pipeline. */
    const Pipeline& GetPipeline() const { return pipeline_; }

    /** Number of test elements. */
    size_t NumElements() const { return true_errors_.size(); }

    /** True per-element errors of the Rumba-topology accelerator. */
    const std::vector<double>& TrueErrors() const { return true_errors_; }

    /**
     * Per-element selection scores for a scheme: true error for
     * Ideal, checker-predicted error for EMA/linear/tree, a seeded
     * random priority for Random, a low-discrepancy priority for
     * Uniform. Fix sets are "score >= threshold" / "top-k by score".
     */
    const std::vector<double>& Scores(Scheme scheme) const;

    /** Output error (%) of the unchecked Rumba-topology accelerator. */
    double UncheckedErrorPct() const;

    /** Output error (%) of the unchecked NPU-topology accelerator. */
    double NpuUncheckedErrorPct() const;

    /** Fix set selecting the top-@p fraction of elements by score. */
    std::vector<char> FixSetForFraction(Scheme scheme,
                                        double fraction) const;

    /** Fix set selecting elements whose score >= @p threshold. */
    std::vector<char> FixSetForThreshold(Scheme scheme,
                                         double threshold) const;

    /** Score threshold whose fix set is the top-@p fraction. */
    double ThresholdForFraction(Scheme scheme, double fraction) const;

    /** Output error (%) after recomputing the flagged elements. */
    double ErrorWithFixes(const std::vector<char>& fixes) const;

    /**
     * Smallest fix set (by scheme score order) whose output error
     * meets @p target_error_pct; all elements fixed when even that is
     * not enough.
     */
    std::vector<char> FixSetForTargetError(Scheme scheme,
                                           double target_error_pct) const;

    /** Full per-scheme report for an explicit fix set. */
    SchemeReport Report(Scheme scheme,
                        const std::vector<char>& fixes) const;

    /** Report at the fix set meeting @p target_error_pct (Figs 11-15). */
    SchemeReport ReportAtTargetError(Scheme scheme,
                                     double target_error_pct) const;

    /** Report for the unchecked NPU-topology accelerator. */
    SchemeReport NpuReport() const;

    /** CPU-only baseline costs. */
    sim::SystemCosts BaselineCosts() const;

    /** Per-check cost of a predictor scheme's checker hardware. */
    sim::CheckerCost CheckerCost(Scheme scheme) const;

    /** Kernel instruction mix per element (profiled). */
    const sim::OpCounts& KernelOps() const { return kernel_ops_; }

    /** Accelerator cycles per invocation (Rumba topology). */
    size_t RumbaNpuCycles() const;

    /** Accelerator cycles per invocation (NPU topology). */
    size_t PlainNpuCycles() const;

    /** The configuration in use. */
    const ExperimentConfig& Config() const { return config_; }

  private:
    sim::RegionProfile MakeRegion() const;
    sim::AcceleratorProfile MakeAccelProfile(bool rumba_topology) const;

    ExperimentConfig config_;
    Pipeline pipeline_;
    sim::SystemModel system_;
    sim::OpCounts kernel_ops_;

    std::vector<std::vector<double>> exact_outputs_;
    std::vector<std::vector<double>> approx_outputs_;      ///< rumba net.
    std::vector<std::vector<double>> npu_approx_outputs_;  ///< npu net.
    std::vector<double> true_errors_;      ///< rumba-topology errors.
    std::vector<double> npu_true_errors_;  ///< npu-topology errors.

    /** Selection scores, indexed by Scheme enum value. */
    std::vector<std::vector<double>> scores_;
    /** Trained checkers for the predictor schemes (cost queries). */
    std::unique_ptr<predict::ErrorPredictor> ema_;
    std::unique_ptr<predict::ErrorPredictor> linear_;
    std::unique_ptr<predict::ErrorPredictor> tree_;
    std::unique_ptr<predict::ErrorPredictor> hybrid_;

    size_t rumba_npu_cycles_ = 0;
    size_t plain_npu_cycles_ = 0;
    double rumba_macs_ = 0.0;
    double rumba_luts_ = 0.0;
    double rumba_queue_words_ = 0.0;
    double plain_macs_ = 0.0;
    double plain_luts_ = 0.0;
    double plain_queue_words_ = 0.0;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_EXPERIMENT_H_
