#include "core/status.h"

namespace rumba::core {

const char*
StatusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk:
        return "ok";
      case StatusCode::kCancelled:
        return "cancelled";
      case StatusCode::kInvalidArgument:
        return "invalid-argument";
      case StatusCode::kNotFound:
        return "not-found";
      case StatusCode::kDataLoss:
        return "data-loss";
      case StatusCode::kResourceExhausted:
        return "resource-exhausted";
      case StatusCode::kFailedPrecondition:
        return "failed-precondition";
      case StatusCode::kUnavailable:
        return "unavailable";
      case StatusCode::kInternal:
        return "internal";
      case StatusCode::kDeadlineExceeded:
        return "deadline-exceeded";
    }
    return "unknown";
}

std::string
Status::ToString() const
{
    if (ok())
        return "ok";
    return std::string(StatusCodeName(code_)) + ": " + message_;
}

}  // namespace rumba::core
