#include "core/detector.h"

#include "common/logging.h"

namespace rumba::core {

Detector::Detector(std::unique_ptr<predict::ErrorPredictor> predictor,
                   double threshold)
    : predictor_(std::move(predictor)), threshold_(threshold)
{
    RUMBA_CHECK(predictor_ != nullptr);
}

CheckResult
Detector::Check(const std::vector<double>& inputs,
                const std::vector<double>& approx_outputs)
{
    CheckResult result;
    result.predicted_error =
        predictor_->PredictError(inputs, approx_outputs);
    result.fired = result.predicted_error >= threshold_;
    ++checks_;
    if (result.fired)
        ++fired_;
    return result;
}

}  // namespace rumba::core
