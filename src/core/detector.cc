#include "core/detector.h"

#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::core {

Detector::Detector(std::unique_ptr<predict::ErrorPredictor> predictor,
                   double threshold)
    : predictor_(std::move(predictor)),
      threshold_(threshold),
      obs_checks_(obs::Registry::Default().GetCounter("detector.checks")),
      obs_fires_(obs::Registry::Default().GetCounter("detector.fires")),
      obs_non_finite_(
          obs::Registry::Default().GetCounter("detector.non_finite")),
      obs_check_ns_(
          obs::Registry::Default().GetHistogram("detector.check_ns"))
{
    RUMBA_CHECK(predictor_ != nullptr);
}

CheckResult
Detector::Check(const std::vector<double>& inputs,
                const std::vector<double>& approx_outputs)
{
    const obs::ScopedTimer timer(obs_check_ns_);
    const obs::Span span("detector.check");
    CheckResult result;

    // Non-finite guard: a NaN/Inf anywhere in the element means the
    // accelerator (or the data feeding it) misbehaved outright. Fire
    // unconditionally and skip the predictor — running it would both
    // waste the check and, for sequential checkers like the EMA,
    // poison their running state with the garbage value.
    auto any_non_finite = [](const std::vector<double>& values) {
        for (double v : values) {
            if (!std::isfinite(v))
                return true;
        }
        return false;
    };
    if (any_non_finite(approx_outputs) || any_non_finite(inputs)) {
        result.predicted_error = threshold_;
        result.fired = true;
        result.non_finite = true;
        ++checks_;
        ++fired_;
        ++non_finite_;
        obs_checks_->Increment();
        obs_fires_->Increment();
        obs_non_finite_->Increment();
        return result;
    }

    result.predicted_error =
        predictor_->PredictError(inputs, approx_outputs);
    result.fired = result.predicted_error >= threshold_;
    ++checks_;
    obs_checks_->Increment();
    if (result.fired) {
        ++fired_;
        obs_fires_->Increment();
    }
    return result;
}

}  // namespace rumba::core
