#include "core/detector.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::core {

Detector::Detector(std::unique_ptr<predict::ErrorPredictor> predictor,
                   double threshold)
    : predictor_(std::move(predictor)),
      threshold_(threshold),
      obs_checks_(obs::Registry::Default().GetCounter("detector.checks")),
      obs_fires_(obs::Registry::Default().GetCounter("detector.fires")),
      obs_check_ns_(
          obs::Registry::Default().GetHistogram("detector.check_ns"))
{
    RUMBA_CHECK(predictor_ != nullptr);
}

CheckResult
Detector::Check(const std::vector<double>& inputs,
                const std::vector<double>& approx_outputs)
{
    const obs::ScopedTimer timer(obs_check_ns_);
    const obs::Span span("detector.check");
    CheckResult result;
    result.predicted_error =
        predictor_->PredictError(inputs, approx_outputs);
    result.fired = result.predicted_error >= threshold_;
    ++checks_;
    obs_checks_->Increment();
    if (result.fired) {
        ++fired_;
        obs_fires_->Increment();
    }
    return result;
}

}  // namespace rumba::core
