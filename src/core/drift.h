#ifndef RUMBA_CORE_DRIFT_H_
#define RUMBA_CORE_DRIFT_H_

/**
 * @file
 * Input-drift detection — an extension addressing the paper's
 * Challenge II from the deployment side. The offline trainers see one
 * input distribution; if the deployed inputs drift away from it, the
 * checker's calibration silently degrades. The one drift signal that
 * is free at runtime is the *check fire-rate*: it was measured during
 * threshold calibration, so a persistent departure from that expected
 * rate means the input distribution (or the accelerator's behavior)
 * has changed and the offline artifacts deserve retraining.
 */

#include <cstddef>

namespace rumba::obs {
class Counter;
class Gauge;
}  // namespace rumba::obs

namespace rumba::core {

/** Flags persistent fire-rate departures from the calibrated rate. */
class DriftMonitor {
  public:
    /** Detection policy. */
    struct Options {
        /** Fire rate observed during offline calibration, in [0, 1].
         *  Zero disables the monitor (nothing to compare against). */
        double expected_fire_rate = 0.0;
        /** EMA smoothing factor over invocations. */
        double alpha = 0.2;
        /** Drift fires when the smoothed rate leaves
         *  [expected / tolerance, expected * tolerance]. */
        double tolerance = 2.0;
        /** Invocations observed before drift may fire (EMA warmup). */
        size_t warmup = 3;
        /** Absolute rate slack: departures smaller than this never
         *  count as drift (guards tiny expected rates). */
        double min_delta = 0.02;
    };

    DriftMonitor();
    explicit DriftMonitor(const Options& options);

    /**
     * Record one invocation's outcome. A zero-element invocation
     * (e.g. one the circuit breaker served entirely on the CPU) is
     * ignored: it carries no fire-rate information.
     */
    void Observe(size_t fired, size_t elements);

    /**
     * Re-arm after a recovery episode: reset the smoothed rate to the
     * calibrated expectation and restart the warmup window, so a
     * cleared alarm needs fresh persistent evidence to fire again.
     */
    void ReArm();

    /** Smoothed fire rate over recent invocations. */
    double SmoothedFireRate() const { return smoothed_; }

    /** True when the smoothed rate sits outside the tolerance band. */
    bool DriftDetected() const;

    /** Monitoring enabled (an expected rate was provided). */
    bool Enabled() const { return options_.expected_fire_rate > 0.0; }

    /** Invocations observed since construction/ReArm(). */
    size_t Observations() const { return observations_; }

    /** The active policy. */
    const Options& Config() const { return options_; }

  private:
    Options options_;
    double smoothed_ = 0.0;
    size_t observations_ = 0;
    /** Process-wide telemetry: observation count and smoothed rate. */
    obs::Counter* obs_observations_;
    obs::Gauge* obs_fire_rate_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_DRIFT_H_
