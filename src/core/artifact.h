#ifndef RUMBA_CORE_ARTIFACT_H_
#define RUMBA_CORE_ARTIFACT_H_

/**
 * @file
 * The deployable configuration of Figure 4: "The configuration
 * parameters for both the approximate accelerator and the error
 * predictor are embedded in the binary." An Artifact captures
 * everything the online system needs — the trained networks, the
 * input/output normalizers, the trained checker and the calibrated
 * detection threshold — as a single text blob, so a shipped
 * application can bring up Rumba without rerunning the offline
 * trainers.
 */

#include <string>

#include "core/status.h"

namespace rumba::core {

class Pipeline;

/** A serialized offline-training result. */
struct Artifact {
    std::string benchmark;   ///< application name (kernel identity).
    std::string rumba_mlp;   ///< Rumba-topology network blob.
    std::string npu_mlp;     ///< unchecked-NPU network blob.
    std::string in_norm;     ///< input normalizer blob.
    std::string out_norm;    ///< output normalizer blob.
    std::string predictor;   ///< trained checker blob.
    /** Trained self-compensation model blob (predict/compensator.h),
     *  empty when the artifact was exported without one. The section
     *  is optional on the wire: v1/v2 blobs without it still load,
     *  so pre-compensation artifacts stay deployable. */
    std::string compensator;
    double threshold = 0.0;  ///< calibrated detection threshold.

    /**
     * Render as a single self-describing text blob (v2 format: the
     * header line is followed by an FNV-1a checksum over the payload,
     * so truncation and bitrot are caught at load time).
     */
    std::string ToString() const;

    /**
     * Parse a ToString() blob without dying: kDataLoss (with a
     * message saying what is wrong) on malformed input. v1 blobs (no
     * checksum line) are still accepted; v2 blobs must pass their
     * checksum.
     */
    static Result<Artifact> TryFromString(const std::string& text);

    /** Write the blob to a file. @return false on I/O error. */
    bool Save(const std::string& path) const;

    /**
     * Load a blob from a file without dying: kNotFound when the file
     * cannot be opened, kDataLoss when it is truncated, bit-rotted or
     * otherwise malformed. The caller can fall back to exact-only
     * execution instead of crashing.
     */
    static Result<Artifact> TryLoad(const std::string& path);
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_ARTIFACT_H_
