#include "core/experiment.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "common/statistics.h"

namespace rumba::core {

namespace {

/** Scores index for a scheme (kNpu has no scores). */
size_t
ScoreIndex(Scheme scheme)
{
    const auto idx = static_cast<size_t>(scheme);
    RUMBA_CHECK(scheme != Scheme::kNpu);
    return idx;
}

}  // namespace

Experiment::Experiment(std::unique_ptr<apps::Benchmark> bench,
                       const ExperimentConfig& config)
    : config_(config),
      pipeline_(std::move(bench), config.pipeline),
      system_(config.core, config.energy)
{
    const apps::Benchmark& app = pipeline_.Bench();
    const auto& test_inputs = pipeline_.TestInputs();
    const size_t n = test_inputs.size();

    kernel_ops_ = app.ProfileKernel();

    exact_outputs_ = app.RunExactBatch(test_inputs);

    // Run both accelerators over the test elements, keeping the event
    // counters for the energy model.
    npu::Npu rumba_accel = pipeline_.MakeAccelerator(true);
    rumba_accel.ResetStats();
    approx_outputs_ = pipeline_.RunAccelerator(&rumba_accel, test_inputs);
    rumba_npu_cycles_ = rumba_accel.CyclesPerInvocation();
    {
        const auto& s = rumba_accel.Stats();
        const double inv = static_cast<double>(s.invocations);
        rumba_macs_ = static_cast<double>(s.macs) / inv;
        rumba_luts_ = static_cast<double>(s.lut_lookups) / inv;
        // Input + output words plus the per-iteration recovery bit.
        rumba_queue_words_ =
            (static_cast<double>(s.input_words + s.output_words)) / inv +
            1.0;
    }

    npu::Npu plain_accel = pipeline_.MakeAccelerator(false);
    plain_accel.ResetStats();
    npu_approx_outputs_ =
        pipeline_.RunAccelerator(&plain_accel, test_inputs);
    plain_npu_cycles_ = plain_accel.CyclesPerInvocation();
    {
        const auto& s = plain_accel.Stats();
        const double inv = static_cast<double>(s.invocations);
        plain_macs_ = static_cast<double>(s.macs) / inv;
        plain_luts_ = static_cast<double>(s.lut_lookups) / inv;
        plain_queue_words_ =
            (static_cast<double>(s.input_words + s.output_words)) / inv;
    }

    true_errors_.reserve(n);
    npu_true_errors_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        true_errors_.push_back(
            app.ElementError(exact_outputs_[i], approx_outputs_[i]));
        npu_true_errors_.push_back(
            app.ElementError(exact_outputs_[i], npu_approx_outputs_[i]));
    }

    // ---- Selection scores per scheme --------------------------------
    scores_.resize(static_cast<size_t>(Scheme::kHybrid) + 1);

    scores_[ScoreIndex(Scheme::kIdeal)] = true_errors_;

    // Random: a fixed random priority per element makes fix sets
    // nested across budgets (deterministic via the pipeline seed).
    {
        Rng rng(config_.pipeline.seed ^ 0x9A9D0Cull);
        auto& s = scores_[ScoreIndex(Scheme::kRandom)];
        s.resize(n);
        for (auto& v : s)
            v = rng.Uniform();
    }

    // Uniform: golden-ratio low-discrepancy priorities — the top-f
    // subset is evenly spread over the index space for every f.
    {
        auto& s = scores_[ScoreIndex(Scheme::kUniform)];
        s.resize(n);
        constexpr double kGolden = 0.6180339887498949;
        for (size_t i = 0; i < n; ++i) {
            const double frac =
                std::fmod(static_cast<double>(i + 1) * kGolden, 1.0);
            s[i] = 1.0 - frac;
        }
    }

    // Predictor schemes: train offline, then score every test element
    // the way the online detector would.
    ema_ = pipeline_.TrainPredictor(Scheme::kEma);
    linear_ = pipeline_.TrainPredictor(Scheme::kLinear);
    tree_ = pipeline_.TrainPredictor(Scheme::kTree);
    hybrid_ = pipeline_.TrainPredictor(Scheme::kHybrid);

    auto score_with = [&](predict::ErrorPredictor* p) {
        p->Reset();
        std::vector<double> s(n);
        for (size_t i = 0; i < n; ++i) {
            const auto norm_in =
                pipeline_.NormalizeInput(test_inputs[i]);
            s[i] = p->PredictError(norm_in, approx_outputs_[i]);
        }
        return s;
    };
    scores_[ScoreIndex(Scheme::kEma)] = score_with(ema_.get());
    scores_[ScoreIndex(Scheme::kLinear)] = score_with(linear_.get());
    scores_[ScoreIndex(Scheme::kTree)] = score_with(tree_.get());
    scores_[ScoreIndex(Scheme::kHybrid)] = score_with(hybrid_.get());
}

const std::vector<double>&
Experiment::Scores(Scheme scheme) const
{
    return scores_[ScoreIndex(scheme)];
}

double
Experiment::UncheckedErrorPct() const
{
    return pipeline_.Bench().AggregateError(true_errors_);
}

double
Experiment::NpuUncheckedErrorPct() const
{
    return pipeline_.Bench().AggregateError(npu_true_errors_);
}

std::vector<char>
Experiment::FixSetForFraction(Scheme scheme, double fraction) const
{
    RUMBA_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const auto& scores = Scores(scheme);
    const size_t n = scores.size();
    const size_t k = static_cast<size_t>(
        std::lround(fraction * static_cast<double>(n)));
    std::vector<char> fixes(n, 0);
    if (k == 0)
        return fixes;
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](size_t a, size_t b) {
                         return scores[a] > scores[b];
                     });
    for (size_t i = 0; i < k; ++i)
        fixes[order[i]] = 1;
    return fixes;
}

std::vector<char>
Experiment::FixSetForThreshold(Scheme scheme, double threshold) const
{
    const auto& scores = Scores(scheme);
    std::vector<char> fixes(scores.size(), 0);
    for (size_t i = 0; i < scores.size(); ++i)
        fixes[i] = scores[i] >= threshold ? 1 : 0;
    return fixes;
}

double
Experiment::ThresholdForFraction(Scheme scheme, double fraction) const
{
    RUMBA_CHECK(fraction >= 0.0 && fraction <= 1.0);
    const auto& scores = Scores(scheme);
    const size_t n = scores.size();
    const size_t k = static_cast<size_t>(
        std::lround(fraction * static_cast<double>(n)));
    if (k == 0)
        return std::numeric_limits<double>::infinity();
    std::vector<double> sorted = scores;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1),
                     sorted.end(), std::greater<double>());
    return sorted[k - 1];
}

double
Experiment::ErrorWithFixes(const std::vector<char>& fixes) const
{
    RUMBA_CHECK(fixes.size() == true_errors_.size());
    std::vector<double> errors = true_errors_;
    for (size_t i = 0; i < errors.size(); ++i) {
        if (fixes[i])
            errors[i] = 0.0;  // exact re-execution.
    }
    return pipeline_.Bench().AggregateError(errors);
}

std::vector<char>
Experiment::FixSetForTargetError(Scheme scheme,
                                 double target_error_pct) const
{
    // Fix sets are nested in the fraction (top-k by score), and the
    // output error is non-increasing in k, so binary-search k.
    const size_t n = true_errors_.size();
    size_t lo = 0;        // known insufficient (unless already fine).
    size_t hi = n;        // known sufficient (everything exact).
    if (ErrorWithFixes(std::vector<char>(n, 0)) <= target_error_pct)
        return std::vector<char>(n, 0);
    while (lo + 1 < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        const auto fixes = FixSetForFraction(
            scheme, static_cast<double>(mid) / static_cast<double>(n));
        if (ErrorWithFixes(fixes) <= target_error_pct)
            hi = mid;
        else
            lo = mid;
    }
    return FixSetForFraction(
        scheme, static_cast<double>(hi) / static_cast<double>(n));
}

sim::RegionProfile
Experiment::MakeRegion() const
{
    sim::RegionProfile region;
    region.cpu_ops_per_iter = kernel_ops_;
    region.iterations = true_errors_.size();
    region.region_fraction = pipeline_.Bench().RegionFraction();
    return region;
}

sim::AcceleratorProfile
Experiment::MakeAccelProfile(bool rumba_topology) const
{
    sim::AcceleratorProfile accel;
    accel.frequency_ghz = config_.pipeline.npu.frequency_ghz;
    if (rumba_topology) {
        accel.cycles_per_invocation = rumba_npu_cycles_;
        accel.macs_per_invocation = rumba_macs_;
        accel.luts_per_invocation = rumba_luts_;
        accel.queue_words_per_invocation = rumba_queue_words_;
    } else {
        accel.cycles_per_invocation = plain_npu_cycles_;
        accel.macs_per_invocation = plain_macs_;
        accel.luts_per_invocation = plain_luts_;
        accel.queue_words_per_invocation = plain_queue_words_;
    }
    return accel;
}

sim::CheckerCost
Experiment::CheckerCost(Scheme scheme) const
{
    switch (scheme) {
      case Scheme::kEma:
        return ema_->CostPerCheck();
      case Scheme::kLinear:
        return linear_->CostPerCheck();
      case Scheme::kTree:
        return tree_->CostPerCheck();
      case Scheme::kHybrid:
        return hybrid_->CostPerCheck();
      default:
        Fatal("scheme %s has no checker hardware", SchemeName(scheme));
    }
}

SchemeReport
Experiment::Report(Scheme scheme, const std::vector<char>& fixes) const
{
    RUMBA_CHECK(scheme != Scheme::kNpu);
    RUMBA_CHECK(fixes.size() == true_errors_.size());
    const size_t n = true_errors_.size();

    SchemeReport report;
    report.scheme = scheme;
    report.fixes = static_cast<size_t>(
        std::count(fixes.begin(), fixes.end(), char{1}));
    report.fix_fraction =
        static_cast<double>(report.fixes) / static_cast<double>(n);
    report.output_error_pct = ErrorWithFixes(fixes);

    // ---- False positives ---------------------------------------------
    // A false positive is a fired check whose element is *not* among
    // the top-k true errors, where k is the scheme's own fix count —
    // i.e. the oracle would have spent that fix on a larger error.
    // Ideal is zero by construction, matching the paper.
    if (report.fixes > 0) {
        std::vector<double> sorted = true_errors_;
        std::nth_element(sorted.begin(),
                         sorted.begin() + (report.fixes - 1), sorted.end(),
                         std::greater<double>());
        const double rank_cutoff = sorted[report.fixes - 1];
        // Elements strictly above the cutoff are always worth fixing;
        // of the elements tied *at* the cutoff only as many as the
        // oracle would take count as justified (handles the heavy
        // ties of 0/1 mismatch metrics).
        size_t above = 0;
        size_t fixed_below = 0;
        size_t fixed_at = 0;
        for (size_t i = 0; i < n; ++i) {
            if (true_errors_[i] > rank_cutoff)
                ++above;
            if (!fixes[i])
                continue;
            if (true_errors_[i] < rank_cutoff)
                ++fixed_below;
            else if (true_errors_[i] == rank_cutoff)
                ++fixed_at;
        }
        const size_t needed_at_cutoff =
            report.fixes > above ? report.fixes - above : 0;
        const size_t excess_at =
            fixed_at > needed_at_cutoff ? fixed_at - needed_at_cutoff : 0;
        report.false_positive_pct =
            100.0 * static_cast<double>(fixed_below + excess_at) /
            static_cast<double>(n);
    }

    // ---- Large-error coverage (Fig 13) --------------------------------
    // "Large" errors are those above the paper's 20% cutoff; when an
    // application's error distribution never reaches 20%, fall back
    // to its 90th percentile so the statistic stays meaningful.
    double cutoff = config_.large_error_cutoff;
    {
        std::vector<double> copy = true_errors_;
        const double p90 = Percentile(std::move(copy), 90.0);
        cutoff = std::min(cutoff, p90);
    }
    size_t large_fixed = 0;
    for (size_t i = 0; i < n; ++i) {
        if (fixes[i] && true_errors_[i] > cutoff)
            ++large_fixed;
    }
    const size_t total_large = static_cast<size_t>(std::count_if(
        true_errors_.begin(), true_errors_.end(),
        [cutoff](double e) { return e > cutoff; }));
    if (report.fixes > 0 && total_large > 0) {
        const double mine = static_cast<double>(large_fixed) /
                            static_cast<double>(report.fixes);
        const double ideal_large = static_cast<double>(
            std::min(report.fixes, total_large));
        const double ideal = ideal_large /
                             static_cast<double>(report.fixes);
        report.relative_coverage_pct = 100.0 * mine / ideal;
    } else {
        report.relative_coverage_pct = report.fixes == 0 ? 0.0 : 100.0;
    }

    // ---- Energy / timing ---------------------------------------------
    const sim::CheckerCost checker =
        IsPredictorScheme(scheme) ? CheckerCost(scheme)
                                  : sim::CheckerCost{};
    const bool has_checker = IsPredictorScheme(scheme);
    report.costs = system_.Evaluate(MakeRegion(), MakeAccelProfile(true),
                                    has_checker ? &checker : nullptr,
                                    report.fixes);
    return report;
}

SchemeReport
Experiment::ReportAtTargetError(Scheme scheme,
                                double target_error_pct) const
{
    const auto fixes = FixSetForTargetError(scheme, target_error_pct);
    SchemeReport report = Report(scheme, fixes);
    report.threshold = ThresholdForFraction(scheme, report.fix_fraction);
    return report;
}

SchemeReport
Experiment::NpuReport() const
{
    SchemeReport report;
    report.scheme = Scheme::kNpu;
    report.output_error_pct = NpuUncheckedErrorPct();
    report.costs = system_.Evaluate(MakeRegion(), MakeAccelProfile(false),
                                    nullptr, 0);
    return report;
}

sim::SystemCosts
Experiment::BaselineCosts() const
{
    return system_.Baseline(MakeRegion());
}

size_t
Experiment::RumbaNpuCycles() const
{
    return rumba_npu_cycles_;
}

size_t
Experiment::PlainNpuCycles() const
{
    return plain_npu_cycles_;
}

}  // namespace rumba::core
