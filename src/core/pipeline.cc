#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "core/artifact.h"
#include "nn/trainer.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "predict/ema.h"
#include "predict/hybrid.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba::core {

namespace {

/** Keep at most @p cap elements (0 = no cap). */
void
Cap(std::vector<std::vector<double>>* v, size_t cap)
{
    if (cap > 0 && v->size() > cap)
        v->resize(cap);
}

}  // namespace

Pipeline::Pipeline(std::unique_ptr<apps::Benchmark> bench,
                   const PipelineConfig& config)
    : bench_(std::move(bench)), config_(config)
{
    RUMBA_CHECK(bench_ != nullptr);

    train_inputs_ = bench_->TrainInputs();
    test_inputs_ = bench_->TestInputs();
    Cap(&train_inputs_, config_.max_train_elements);
    Cap(&test_inputs_, config_.max_test_elements);
    RUMBA_CHECK(!train_inputs_.empty());
    RUMBA_CHECK(!test_inputs_.empty());

    // Normalizers from the raw training distribution.
    Dataset raw_train = bench_->MakeDataset(train_inputs_);
    in_norm_.FitInputs(raw_train);
    out_norm_.FitTargets(raw_train);

    // NN-domain training set.
    Dataset norm_train(bench_->NumInputs(), bench_->NumOutputs());
    for (size_t s = 0; s < raw_train.Size(); ++s) {
        norm_train.Add(in_norm_.Apply(raw_train.Input(s)),
                       out_norm_.Apply(raw_train.Target(s)));
    }

    nn::TrainConfig tc;
    tc.epochs = config_.train_epochs;
    tc.seed = config_.seed;

    auto& registry = obs::Registry::Default();
    registry.GetCounter("pipeline.train_elements")
        ->Increment(train_inputs_.size());
    obs::Histogram* train_ns =
        registry.GetHistogram("pipeline.train_ns");
    obs::Counter* trainings =
        registry.GetCounter("pipeline.trainings");

    const auto& info = bench_->Info();
    rumba_mlp_.emplace(info.rumba_topology);
    {
        const obs::ScopedTimer timer(train_ns);
        nn::Train(&*rumba_mlp_, norm_train, tc);
        trainings->Increment();
    }
    if (info.npu_topology == info.rumba_topology) {
        npu_mlp_ = rumba_mlp_;
    } else {
        npu_mlp_.emplace(info.npu_topology);
        const obs::ScopedTimer timer(train_ns);
        nn::Train(&*npu_mlp_, norm_train, tc);
        trainings->Increment();
    }

    // True accelerator errors on the training elements (predictor
    // targets): run the Rumba-topology accelerator over them.
    npu::Npu accel = MakeAccelerator(/*use_rumba_topology=*/true);
    const auto approx = RunAccelerator(&accel, train_inputs_);
    train_errors_.reserve(train_inputs_.size());
    for (size_t s = 0; s < train_inputs_.size(); ++s) {
        train_errors_.push_back(
            bench_->ElementError(raw_train.Target(s), approx[s]));
    }
}

Pipeline::Pipeline(std::unique_ptr<apps::Benchmark> bench,
                   const PipelineConfig& config, const Artifact& artifact)
    : bench_(std::move(bench)), config_(config)
{
    RUMBA_CHECK(bench_ != nullptr);
    RUMBA_CHECK(artifact.benchmark == bench_->Info().name);

    train_inputs_ = bench_->TrainInputs();
    test_inputs_ = bench_->TestInputs();
    Cap(&train_inputs_, config_.max_train_elements);
    Cap(&test_inputs_, config_.max_test_elements);

    in_norm_ = Normalizer::Deserialize(artifact.in_norm);
    out_norm_ = Normalizer::Deserialize(artifact.out_norm);
    rumba_mlp_ = nn::Mlp::Deserialize(artifact.rumba_mlp);
    npu_mlp_ = nn::Mlp::Deserialize(artifact.npu_mlp);
    RUMBA_CHECK(rumba_mlp_->GetTopology().NumInputs() ==
                bench_->NumInputs());
    RUMBA_CHECK(rumba_mlp_->GetTopology().NumOutputs() ==
                bench_->NumOutputs());
    // train_errors_ intentionally left empty: no offline run happened.
}

Artifact
Pipeline::ExportArtifact(const predict::ErrorPredictor& predictor,
                         double threshold,
                         const predict::Compensator* compensator) const
{
    Artifact artifact;
    artifact.benchmark = bench_->Info().name;
    artifact.rumba_mlp = rumba_mlp_->Serialize();
    artifact.npu_mlp = npu_mlp_->Serialize();
    artifact.in_norm = in_norm_.Serialize();
    artifact.out_norm = out_norm_.Serialize();
    artifact.predictor = predictor.Serialize();
    if (compensator != nullptr && compensator->Trained())
        artifact.compensator = compensator->Serialize();
    artifact.threshold = threshold;
    return artifact;
}

std::vector<double>
Pipeline::NormalizeInput(const std::vector<double>& raw) const
{
    return in_norm_.Apply(raw);
}

void
Pipeline::NormalizeInput(const double* raw,
                         std::vector<double>* out) const
{
    in_norm_.Apply(raw, in_norm_.Arity(), out);
}

void
Pipeline::NormalizeOutput(const double* raw,
                          std::vector<double>* out) const
{
    out_norm_.Apply(raw, out_norm_.Arity(), out);
}

std::vector<double>
Pipeline::DenormalizeOutput(const std::vector<double>& norm) const
{
    return out_norm_.Invert(norm);
}

void
Pipeline::DenormalizeOutput(const std::vector<double>& norm,
                            std::vector<double>* out) const
{
    out_norm_.Invert(norm.data(), norm.size(), out);
}

npu::Npu
Pipeline::MakeAccelerator(bool use_rumba_topology) const
{
    npu::Npu accel(config_.npu);
    accel.Configure(use_rumba_topology ? *rumba_mlp_ : *npu_mlp_);
    return accel;
}

std::vector<std::vector<double>>
Pipeline::RunAccelerator(
    npu::Npu* accel,
    const std::vector<std::vector<double>>& raw_inputs) const
{
    RUMBA_CHECK(accel != nullptr && accel->Configured());
    std::vector<std::vector<double>> outputs;
    outputs.reserve(raw_inputs.size());
    for (const auto& raw : raw_inputs) {
        const auto norm_out = accel->Invoke(in_norm_.Apply(raw));
        outputs.push_back(out_norm_.Invert(norm_out));
    }
    return outputs;
}

std::unique_ptr<predict::ErrorPredictor>
Pipeline::MakePredictor(Scheme scheme)
{
    switch (scheme) {
      case Scheme::kEma:
        return std::make_unique<predict::EmaDetector>();
      case Scheme::kLinear:
        return std::make_unique<predict::LinearErrorPredictor>();
      case Scheme::kTree:
        return std::make_unique<predict::TreeErrorPredictor>();
      case Scheme::kHybrid:
        return std::make_unique<predict::HybridErrorPredictor>();
      default:
        Fatal("scheme %s has no checker hardware", SchemeName(scheme));
    }
}

std::unique_ptr<predict::ErrorPredictor>
Pipeline::TrainPredictor(Scheme scheme) const
{
    auto predictor = MakePredictor(scheme);
    if (scheme == Scheme::kEma)
        return predictor;  // output-based: no offline fitting.

    const obs::ScopedTimer timer(obs::Registry::Default().GetHistogram(
        "pipeline.predictor_train_ns"));
    Dataset error_data(bench_->NumInputs(), 1);
    for (size_t s = 0; s < train_inputs_.size(); ++s) {
        error_data.Add(in_norm_.Apply(train_inputs_[s]),
                       {train_errors_[s]});
    }
    predictor->Train(error_data);
    obs::Registry::Default()
        .GetCounter("pipeline.predictor_trainings")
        ->Increment();
    return predictor;
}

predict::Compensator
Pipeline::TrainCompensator() const
{
    RUMBA_CHECK(!train_inputs_.empty());
    const obs::ScopedTimer timer(obs::Registry::Default().GetHistogram(
        "pipeline.compensator_train_ns"));
    npu::Npu accel = MakeAccelerator(/*use_rumba_topology=*/true);
    const auto approx = RunAccelerator(&accel, train_inputs_);
    const Dataset raw_train = bench_->MakeDataset(train_inputs_);
    // Features are [normalized inputs | normalized approximate
    // outputs]: the checker only ever sees the inputs, so on the
    // elements it misjudges the inputs carry no signal — where the
    // accelerator actually landed is the evidence the residual
    // network needs. Targets are the signed NN-domain residuals
    // exact − approximate.
    //
    // Train on the hard tail, not the whole distribution: the
    // compensator is only ever applied to elements the checker
    // fired on, and an MSE fit over all elements is dominated by the
    // easy mass it will never see. Keep every element whose true
    // error reaches the tail quantile (plus a quarter of the easy
    // mass as a stabilizer so the fit does not forget what "nearly
    // right" looks like).
    RUMBA_CHECK(train_errors_.size() == train_inputs_.size());
    std::vector<double> sorted(train_errors_);
    std::sort(sorted.begin(), sorted.end());
    const double tail_cut = sorted[sorted.size() * 6 / 10];
    const size_t out_w = bench_->NumOutputs();
    Dataset refine(bench_->NumInputs() + out_w, out_w);
    std::vector<double> features, norm_out, norm_exact, target(out_w);
    for (size_t s = 0; s < train_inputs_.size(); ++s) {
        if (train_errors_[s] < tail_cut && (s & 3u) != 0)
            continue;
        features = in_norm_.Apply(train_inputs_[s]);
        out_norm_.Apply(approx[s].data(), out_w, &norm_out);
        norm_exact = out_norm_.Apply(raw_train.Target(s));
        for (size_t o = 0; o < out_w; ++o)
            target[o] = norm_exact[o] - norm_out[o];
        features.insert(features.end(), norm_out.begin(),
                        norm_out.end());
        refine.Add(features, target);
    }
    obs::Registry::Default()
        .GetCounter("pipeline.compensator_trainings")
        ->Increment();
    nn::TrainConfig tc;
    tc.epochs = config_.train_epochs;
    tc.seed = config_.seed;
    return predict::Compensator::Train(refine, tc);
}

}  // namespace rumba::core
