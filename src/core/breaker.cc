#include "core/breaker.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rumba::core {

const char*
BreakerStateName(BreakerState state)
{
    switch (state) {
      case BreakerState::kClosed: return "closed";
      case BreakerState::kOpen: return "open";
      case BreakerState::kHalfOpen: return "half-open";
    }
    return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : config_(config),
      obs_state_(obs::Registry::Default().GetGauge("breaker.state")),
      obs_trips_(obs::Registry::Default().GetCounter("breaker.trips")),
      obs_probes_(obs::Registry::Default().GetCounter("breaker.probes")),
      obs_closes_(obs::Registry::Default().GetCounter("breaker.closes"))
{
    RUMBA_CHECK(config.trip_after > 0);
    RUMBA_CHECK(config.close_after > 0);
    RUMBA_CHECK(config.canary_elements > 0);
    obs_state_->Set(0.0);
}

size_t
CircuitBreaker::ApproxBudget(size_t batch_elements) const
{
    if (!config_.enabled)
        return batch_elements;
    switch (state_) {
      case BreakerState::kClosed:
        return batch_elements;
      case BreakerState::kOpen:
        return 0;
      case BreakerState::kHalfOpen:
        return std::min(config_.canary_elements, batch_elements);
    }
    return batch_elements;
}

bool
CircuitBreaker::Unhealthy(const BreakerHealth& health) const
{
    if (config_.non_finite_trip > 0 &&
        health.non_finite >= config_.non_finite_trip)
        return true;
    if (config_.trip_on_queue_drops && health.queue_drops > 0)
        return true;
    if (health.drift && health.approx_elements > 0) {
        const double fire_rate =
            static_cast<double>(health.fires) /
            static_cast<double>(health.approx_elements);
        if (fire_rate > config_.fire_rate_trip)
            return true;
    }
    return health.output_error_pct >
           config_.error_trip_factor * health.target_error_pct;
}

void
CircuitBreaker::SetState(BreakerState next)
{
    state_ = next;
    obs_state_->Set(static_cast<double>(next));
}

void
CircuitBreaker::OnInvocation(const BreakerHealth& health)
{
    if (!config_.enabled)
        return;
    switch (state_) {
      case BreakerState::kClosed: {
        if (Unhealthy(health)) {
            if (++unhealthy_streak_ >= config_.trip_after) {
                ++trips_;
                obs_trips_->Increment();
                unhealthy_streak_ = 0;
                open_remaining_ = config_.open_invocations;
                SetState(BreakerState::kOpen);
                Warn("circuit breaker OPEN: %zu consecutive unhealthy "
                     "invocations (err %.2f%%, fires %zu/%zu, "
                     "non-finite %zu, drops %zu) — degrading to "
                     "exact-only execution",
                     config_.trip_after, health.output_error_pct,
                     health.fires, health.approx_elements,
                     health.non_finite, health.queue_drops);
            }
        } else {
            unhealthy_streak_ = 0;
        }
        break;
      }
      case BreakerState::kOpen: {
        // Nothing rode the accelerator; just serve out the hold-off.
        if (open_remaining_ > 0)
            --open_remaining_;
        if (open_remaining_ == 0) {
            clean_probes_ = 0;
            SetState(BreakerState::kHalfOpen);
            Inform("circuit breaker HALF-OPEN: probing the accelerator "
                   "with %zu-element canaries",
                   config_.canary_elements);
        }
        break;
      }
      case BreakerState::kHalfOpen: {
        ++probes_;
        obs_probes_->Increment();
        if (Unhealthy(health)) {
            ++trips_;
            obs_trips_->Increment();
            open_remaining_ = config_.open_invocations;
            SetState(BreakerState::kOpen);
            Warn("circuit breaker RE-OPEN: canary probe unhealthy "
                 "(err %.2f%%, fires %zu/%zu, non-finite %zu)",
                 health.output_error_pct, health.fires,
                 health.approx_elements, health.non_finite);
        } else if (++clean_probes_ >= config_.close_after) {
            ++closes_;
            obs_closes_->Increment();
            clean_probes_ = 0;
            SetState(BreakerState::kClosed);
            Inform("circuit breaker CLOSED: %zu consecutive clean "
                   "canary probes — accelerator restored",
                   config_.close_after);
        }
        break;
      }
    }
}

void
CircuitBreaker::Reset()
{
    unhealthy_streak_ = 0;
    open_remaining_ = 0;
    clean_probes_ = 0;
    SetState(BreakerState::kClosed);
}

}  // namespace rumba::core
