#ifndef RUMBA_CORE_STATUS_H_
#define RUMBA_CORE_STATUS_H_

/**
 * @file
 * Fallible-result types for the public API. Library entry points that
 * can fail at runtime on external input — artifact loading, runtime
 * construction from a deployed artifact, request submission to the
 * serving engine — return a Status (code + message) or a Result<T>
 * (Status or value) instead of dying in Fatal() or collapsing the
 * failure into a bare bool. Fatal() remains for programming errors
 * and for the tools/benches, where dying with a message is the right
 * behaviour.
 */

#include <optional>
#include <string>
#include <utility>

#include "common/logging.h"

namespace rumba::core {

/** Why an operation failed (kOk means it did not). */
enum class StatusCode {
    kOk = 0,
    kCancelled,           ///< shut down before the work ran.
    kInvalidArgument,     ///< malformed request (caller bug).
    kNotFound,            ///< named thing does not exist.
    kDataLoss,            ///< blob truncated, bit-rotted, unparsable.
    kResourceExhausted,   ///< queue full — backpressure, retry later.
    kFailedPrecondition,  ///< state does not admit the operation.
    kUnavailable,         ///< temporarily not accepting work.
    kInternal,            ///< invariant violation inside the library.
    kDeadlineExceeded,    ///< request deadline passed before service.
};

/** Stable lowercase name ("ok", "data-loss", ...). */
const char* StatusCodeName(StatusCode code);

/** The outcome of a fallible operation: a code plus, on failure, a
 *  human-readable message saying what went wrong. */
class [[nodiscard]] Status {
  public:
    /** Success. */
    Status() = default;

    /** Failure with a message; @p code must not be kOk. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
        RUMBA_CHECK(code != StatusCode::kOk);
    }

    /** Explicit success value (reads better than `{}` at call sites). */
    static Status Ok() { return Status(); }

    bool ok() const { return code_ == StatusCode::kOk; }
    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "ok" or "<code-name>: <message>". */
    std::string ToString() const;

  private:
    StatusCode code_ = StatusCode::kOk;
    std::string message_;
};

/**
 * A value or the Status explaining why there is none. Construction is
 * implicit from either side, so `return Status(...)` and
 * `return value` both work; access to the wrong side is a checked
 * programming error.
 */
template <typename T>
class [[nodiscard]] Result {
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        RUMBA_CHECK(!status_.ok());
    }

    bool ok() const { return value_.has_value(); }

    /** The failure (Status::Ok() when ok()). */
    const Status& status() const { return status_; }

    /** The value; checked against access on failure. */
    const T&
    value() const&
    {
        RUMBA_CHECK(value_.has_value());
        return *value_;
    }

    T&
    value() &
    {
        RUMBA_CHECK(value_.has_value());
        return *value_;
    }

    /** Move the value out (for move-only payloads like futures). */
    T&&
    value() &&
    {
        RUMBA_CHECK(value_.has_value());
        return *std::move(value_);
    }

    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_STATUS_H_
