#include "core/drift.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rumba::core {

DriftMonitor::DriftMonitor() : DriftMonitor(Options()) {}

DriftMonitor::DriftMonitor(const Options& options)
    : options_(options),
      obs_observations_(
          obs::Registry::Default().GetCounter("drift.observations")),
      obs_fire_rate_(
          obs::Registry::Default().GetGauge("drift.smoothed_fire_rate"))
{
    RUMBA_CHECK(options.expected_fire_rate >= 0.0 &&
                options.expected_fire_rate <= 1.0);
    RUMBA_CHECK(options.alpha > 0.0 && options.alpha <= 1.0);
    RUMBA_CHECK(options.tolerance > 1.0);
    smoothed_ = options.expected_fire_rate;
}

void
DriftMonitor::Observe(size_t fired, size_t elements)
{
    if (elements == 0)
        return;
    RUMBA_CHECK(fired <= elements);
    const double rate =
        static_cast<double>(fired) / static_cast<double>(elements);
    smoothed_ = options_.alpha * rate +
                (1.0 - options_.alpha) * smoothed_;
    ++observations_;
    obs_observations_->Increment();
    obs_fire_rate_->Set(smoothed_);
}

void
DriftMonitor::ReArm()
{
    smoothed_ = options_.expected_fire_rate;
    observations_ = 0;
    obs_fire_rate_->Set(smoothed_);
}

bool
DriftMonitor::DriftDetected() const
{
    if (!Enabled() || observations_ < options_.warmup)
        return false;
    const double expected = options_.expected_fire_rate;
    if (std::fabs(smoothed_ - expected) < options_.min_delta)
        return false;
    return smoothed_ > expected * options_.tolerance ||
           smoothed_ < expected / options_.tolerance;
}

}  // namespace rumba::core
