#ifndef RUMBA_CORE_RECOVERY_H_
#define RUMBA_CORE_RECOVERY_H_

/**
 * @file
 * Rumba's recovery module (Section 3.3). When a check fires, the
 * accelerator sets the iteration's recovery bit in the recovery
 * queue. The CPU-side recovery module pops those bits, re-executes
 * the flagged iterations exactly (legal because the mapped regions
 * are pure), and the output merger commits the exact result over the
 * approximate one.
 */

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark.h"
#include "core/batch_view.h"
#include "npu/fifo.h"

namespace rumba::obs {
class Counter;
class Histogram;
}  // namespace rumba::obs

namespace rumba::core {

/** One recovery-queue entry: the flagged iteration's identity. */
struct RecoveryEntry {
    size_t iteration = 0;  ///< index of the element to re-execute.
};

/** The CPU<->accelerator recovery queue of Figure 4. */
using RecoveryQueue = npu::Fifo<RecoveryEntry>;

/** Re-executes flagged iterations on the host and merges outputs. */
class RecoveryModule {
  public:
    /**
     * @param bench the application whose pure kernel is re-executed.
     * @param queue_capacity recovery-queue depth; the runtime drains
     *        it continuously so a small queue suffices.
     */
    explicit RecoveryModule(const apps::Benchmark* bench,
                            size_t queue_capacity = 64);

    /** The recovery queue the detector side pushes into. */
    RecoveryQueue& Queue() { return queue_; }

    /** Read-only queue inspection. */
    const RecoveryQueue& Queue() const { return queue_; }

    /**
     * Drain the queue: re-execute every flagged iteration exactly and
     * merge the exact outputs into @p outputs (the output-merger step).
     *
     * @param inputs all element inputs of the invocation (raw domain).
     * @param outputs in/out: flat approximate outputs
     *        (inputs.count() x out_width), overwritten with exact
     *        results for flagged iterations.
     * @param out_width doubles per element in @p outputs.
     * @param fixed optional per-element flags updated to record which
     *        elements were recovered (may be nullptr).
     * @return iterations re-executed during this drain.
     */
    size_t Drain(const BatchView& inputs, double* outputs,
                 size_t out_width, std::vector<char>* fixed);

    /** Drain() over the legacy vector-of-vectors batch form. */
    size_t Drain(const std::vector<std::vector<double>>& inputs,
                 std::vector<std::vector<double>>* outputs,
                 std::vector<char>* fixed);

    /** Total iterations re-executed since construction. */
    size_t TotalReexecutions() const { return reexecutions_; }

    /**
     * Record one queue-full backpressure stall (the detector side had
     * to force a drain before it could push). Feeds the
     * recovery.queue_full_stalls telemetry counter.
     */
    void RecordQueueFullStall();

    /**
     * Record one dropped recovery entry: the queue was full and the
     * CPU-side drain was unavailable, so the flagged iteration keeps
     * its approximate result. Drop-and-count is the defined overflow
     * policy — the loss is visible in the rumba.recovery.queue_drops
     * counter (registered as "recovery.queue_drops") and in the
     * invocation trace, never silent.
     */
    void RecordQueueDrop();

    /** Entries dropped on overflow since construction. */
    size_t QueueDrops() const { return queue_drops_; }

  private:
    const apps::Benchmark* bench_;
    RecoveryQueue queue_;
    size_t reexecutions_ = 0;
    size_t queue_drops_ = 0;
    /** Process-wide telemetry: re-executions, backpressure stalls,
     *  overflow drops, and drain latency. */
    obs::Counter* obs_reexecutions_;
    obs::Counter* obs_queue_full_stalls_;
    obs::Counter* obs_queue_drops_;
    obs::Histogram* obs_drain_ns_;
};

/**
 * Standalone exact CPU re-execution of one application's kernel,
 * reusable outside the recovery path (the quality auditor's shadow
 * re-execution, offline label generation). Owns its Benchmark
 * instance, so callers holding a reference can re-execute elements
 * without touching the serving runtime's RecoveryModule or its
 * telemetry. All methods are const and thread-safe: the Table 1
 * kernels are pure.
 */
class ExactReexecutor {
  public:
    /** @return nullptr when @p benchmark is not a known application. */
    static std::unique_ptr<ExactReexecutor> Create(
        const std::string& benchmark);

    size_t InputWidth() const { return bench_->NumInputs(); }
    size_t OutputWidth() const { return bench_->NumOutputs(); }

    /** Exact kernel for one element (@p in InputWidth() doubles,
     *  @p out OutputWidth() doubles). */
    void RunElement(const double* in, double* out) const;

    /** Exact kernel for @p count contiguous elements. */
    void RunBatch(const double* in, double* out, size_t count) const;

    /** Benchmark-defined scalar error of one element. */
    double ElementError(const std::vector<double>& exact,
                        const std::vector<double>& approx) const;

    /** Benchmark-defined whole-run output error (percent). */
    double AggregateError(
        const std::vector<double>& element_errors) const;

  private:
    explicit ExactReexecutor(std::unique_ptr<apps::Benchmark> bench);

    std::unique_ptr<apps::Benchmark> bench_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_RECOVERY_H_
