#ifndef RUMBA_CORE_RECOVERY_H_
#define RUMBA_CORE_RECOVERY_H_

/**
 * @file
 * Rumba's recovery module (Section 3.3), redesigned around the typed
 * RecoveryPolicy seam (core/recovery_policy.h). When a check fires,
 * the detector side pushes a RecoveryDecision — element identity,
 * tier, and the predicted error it was tiered on — into the recovery
 * queue. The CPU-side drain executes each decision: re-execute tier
 * entries run the exact kernel and the output merger commits exact
 * over approximate; compensate tier entries apply the trained signed
 * residual correction in place (predict/compensator.h), orders of
 * magnitude cheaper. The per-element `fixed` mask records which:
 * 0 = untouched, 1 = exact re-execution, 2 = compensated.
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark.h"
#include "core/batch_view.h"
#include "core/recovery_policy.h"
#include "npu/fifo.h"

namespace rumba::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace rumba::obs

namespace rumba::core {

/** Per-element `fixed`-mask values the recovery layer writes. */
inline constexpr char kFixedNone = 0;
inline constexpr char kFixedExact = 1;
inline constexpr char kFixedCompensated = 2;

/** The CPU<->accelerator recovery queue of Figure 4, now carrying
 *  typed decisions instead of raw iteration bits. */
using RecoveryQueue = npu::Fifo<RecoveryDecision>;

/** What one drain (or several, accumulated) actually did. */
struct DrainStats {
    size_t reexecuted = 0;      ///< exact CPU re-executions.
    size_t compensated = 0;     ///< in-place residual corrections.
    uint64_t reexec_ns = 0;     ///< wall time in the exact kernel.
    uint64_t compensate_ns = 0; ///< wall time applying corrections.

    size_t Total() const { return reexecuted + compensated; }
};

/** Executes queued recovery decisions and merges outputs. */
class RecoveryModule {
  public:
    /**
     * In-place correction of one element: given its raw inputs,
     * adjust its raw outputs. @return true when a correction was
     * applied; false demotes the entry to exact re-execution (e.g.
     * non-finite inputs the compensator refuses to touch).
     */
    using CompensateFn =
        std::function<bool(const double* raw_in, double* raw_out)>;

    /**
     * @param bench the application whose pure kernel is re-executed.
     * @param queue_capacity recovery-queue depth (from
     *        RuntimeConfig::recovery_queue_capacity; the runtime
     *        drains continuously so a small queue suffices). The
     *        configured value is exported as the
     *        `recovery.queue_capacity` gauge so /buildz can report
     *        it.
     */
    RecoveryModule(const apps::Benchmark* bench, size_t queue_capacity);

    /** The recovery queue the detector side pushes into. */
    RecoveryQueue& Queue() { return queue_; }

    /** Read-only queue inspection. */
    const RecoveryQueue& Queue() const { return queue_; }

    /**
     * Install the compensate-tier executor. Without one (the
     * default), compensate-tier entries are demoted to exact
     * re-execution — the queue contract stays safe when no trained
     * compensator is deployed.
     */
    void
    SetCompensator(CompensateFn compensate)
    {
        compensate_ = std::move(compensate);
    }

    /** True when a compensate-tier executor is installed. */
    bool HasCompensator() const { return compensate_ != nullptr; }

    /**
     * Drain the queue: execute every queued decision by tier and
     * merge the results into @p outputs (the output-merger step).
     *
     * @param inputs all element inputs of the invocation (raw domain).
     * @param outputs in/out: flat approximate outputs
     *        (inputs.count() x out_width), corrected in place.
     * @param out_width doubles per element in @p outputs.
     * @param fixed optional per-element mask updated with
     *        kFixedExact / kFixedCompensated (may be nullptr).
     * @param stats optional accumulator for what this drain did (may
     *        be nullptr); *added to*, not reset, so one invocation's
     *        backpressure drains and merge drain sum naturally.
     * @return decisions executed during this drain.
     */
    size_t Drain(const BatchView& inputs, double* outputs,
                 size_t out_width, std::vector<char>* fixed,
                 DrainStats* stats = nullptr);

    /** Total exact re-executions since construction. */
    size_t TotalReexecutions() const { return reexecutions_; }

    /** Total in-place compensations since construction. */
    size_t TotalCompensations() const { return compensations_; }

    /**
     * Record one queue-full backpressure stall (the detector side had
     * to force a drain before it could push). Feeds the
     * recovery.queue_full_stalls telemetry counter.
     */
    void RecordQueueFullStall();

    /**
     * Record one dropped recovery entry: the queue was full and the
     * CPU-side drain was unavailable, so the flagged iteration keeps
     * its approximate result. Drop-and-count is the defined overflow
     * policy — the loss is visible in the rumba.recovery.queue_drops
     * counter (registered as "recovery.queue_drops") and in the
     * invocation trace, never silent.
     */
    void RecordQueueDrop();

    /** Entries dropped on overflow since construction. */
    size_t QueueDrops() const { return queue_drops_; }

  private:
    const apps::Benchmark* bench_;
    RecoveryQueue queue_;
    CompensateFn compensate_;
    size_t reexecutions_ = 0;
    size_t compensations_ = 0;
    size_t queue_drops_ = 0;
    /** Process-wide telemetry: per-tier executions, backpressure
     *  stalls, overflow drops, and drain latency. */
    obs::Counter* obs_reexecutions_;
    obs::Counter* obs_compensations_;
    obs::Counter* obs_queue_full_stalls_;
    obs::Counter* obs_queue_drops_;
    obs::Histogram* obs_drain_ns_;
};

/**
 * Standalone exact CPU re-execution of one application's kernel,
 * reusable outside the recovery path (the quality auditor's shadow
 * re-execution, offline label generation). Owns its Benchmark
 * instance, so callers holding a reference can re-execute elements
 * without touching the serving runtime's RecoveryModule or its
 * telemetry. All methods are const and thread-safe: the Table 1
 * kernels are pure.
 */
class ExactReexecutor {
  public:
    /** @return nullptr when @p benchmark is not a known application. */
    static std::unique_ptr<ExactReexecutor> Create(
        const std::string& benchmark);

    size_t InputWidth() const { return bench_->NumInputs(); }
    size_t OutputWidth() const { return bench_->NumOutputs(); }

    /** Exact kernel for one element (@p in InputWidth() doubles,
     *  @p out OutputWidth() doubles). */
    void RunElement(const double* in, double* out) const;

    /** Exact kernel for @p count contiguous elements. */
    void RunBatch(const double* in, double* out, size_t count) const;

    /** Benchmark-defined scalar error of one element. */
    double ElementError(const std::vector<double>& exact,
                        const std::vector<double>& approx) const;

    /** Benchmark-defined whole-run output error (percent). */
    double AggregateError(
        const std::vector<double>& element_errors) const;

  private:
    explicit ExactReexecutor(std::unique_ptr<apps::Benchmark> bench);

    std::unique_ptr<apps::Benchmark> bench_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_RECOVERY_H_
