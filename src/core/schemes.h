#ifndef RUMBA_CORE_SCHEMES_H_
#define RUMBA_CORE_SCHEMES_H_

/**
 * @file
 * The selection schemes compared throughout the paper's evaluation:
 * the unchecked NPU, the oracle (Ideal), the two detector-free
 * baselines (Random, Uniform) and Rumba's three checkers (EMA,
 * linearErrors, treeErrors).
 */

#include <string>
#include <vector>

namespace rumba::core {

/** Which mechanism decides the elements to re-execute. */
enum class Scheme {
    kNpu,      ///< unchecked accelerator, no fixes (baseline).
    kIdeal,    ///< oracle knowledge of true errors.
    kRandom,   ///< fix a random subset.
    kUniform,  ///< fix an evenly spaced subset.
    kEma,      ///< output-based EMA checker.
    kLinear,   ///< input-based linear error model.
    kTree,     ///< input-based decision-tree error model.
    kHybrid,   ///< extension: offline best-of(linear, tree) selection.
};

/** Paper-style display name ("treeErrors", "NPU", ...). */
const char* SchemeName(Scheme scheme);

/** The six fixing schemes of Figures 10-13 (everything but NPU). */
std::vector<Scheme> FixingSchemes();

/** The five detector-style schemes of Figures 11/13 (no Ideal/NPU). */
std::vector<Scheme> DetectorSchemes();

/** The fixing schemes plus the hybrid extension (ablation benches). */
std::vector<Scheme> ExtendedSchemes();

/** True for schemes whose fix decision comes from a trained/online
 *  checker (EMA, linear, tree). */
bool IsPredictorScheme(Scheme scheme);

}  // namespace rumba::core

#endif  // RUMBA_CORE_SCHEMES_H_
