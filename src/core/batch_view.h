#ifndef RUMBA_CORE_BATCH_VIEW_H_
#define RUMBA_CORE_BATCH_VIEW_H_

/**
 * @file
 * Non-owning span views over invocation batches. The hot-path entry
 * point takes a BatchView — `count` elements of `width` doubles laid
 * out contiguously — so a host application (or the serving engine's
 * request buffers) can stream work through the runtime without
 * building a vector<vector<double>> per batch. The legacy
 * vector-of-vectors overload packs into this form and forwards.
 */

#include <cstddef>
#include <vector>

#include "common/logging.h"

namespace rumba::core {

/** One element's inputs (or outputs): a borrowed [data, data+size). */
class ElementView {
  public:
    ElementView(const double* data, size_t size)
        : data_(data), size_(size)
    {
    }

    /** View over a vector (lifetime stays with the vector). */
    ElementView(const std::vector<double>& values)
        : data_(values.data()), size_(values.size())
    {
    }

    const double* data() const { return data_; }
    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    double
    operator[](size_t i) const
    {
        RUMBA_CHECK(i < size_);
        return data_[i];
    }

    const double* begin() const { return data_; }
    const double* end() const { return data_ + size_; }

  private:
    const double* data_;
    size_t size_;
};

/** A borrowed batch: @p count elements of @p width contiguous
 *  doubles (element i starts at data + i * width). */
class BatchView {
  public:
    BatchView(const double* data, size_t count, size_t width)
        : data_(data), count_(count), width_(width)
    {
        RUMBA_CHECK(width > 0);
        RUMBA_CHECK(count == 0 || data != nullptr);
    }

    /** View over a flat vector holding count x width values. */
    BatchView(const std::vector<double>& flat, size_t width)
        : BatchView(flat.data(), width == 0 ? 0 : flat.size() / width,
                    width)
    {
        RUMBA_CHECK(width > 0 && flat.size() % width == 0);
    }

    const double* data() const { return data_; }
    size_t count() const { return count_; }
    size_t width() const { return width_; }
    bool empty() const { return count_ == 0; }

    /** Element @p i's inputs. */
    ElementView
    operator[](size_t i) const
    {
        RUMBA_CHECK(i < count_);
        return ElementView(data_ + i * width_, width_);
    }

  private:
    const double* data_;
    size_t count_;
    size_t width_;
};

/**
 * Pack ragged rows into one contiguous buffer (every row must share
 * the same width; checked). The returned buffer backs a
 * BatchView(flat, rows[0].size()) — the adapter path from the legacy
 * vector-of-vectors API onto the span API.
 */
inline std::vector<double>
FlattenBatch(const std::vector<std::vector<double>>& rows)
{
    RUMBA_CHECK(!rows.empty());
    const size_t width = rows.front().size();
    std::vector<double> flat;
    flat.reserve(rows.size() * width);
    for (const auto& row : rows) {
        RUMBA_CHECK(row.size() == width);
        flat.insert(flat.end(), row.begin(), row.end());
    }
    return flat;
}

}  // namespace rumba::core

#endif  // RUMBA_CORE_BATCH_VIEW_H_
