#ifndef RUMBA_CORE_PIPELINE_H_
#define RUMBA_CORE_PIPELINE_H_

/**
 * @file
 * The offline half of Figure 4: for a benchmark, train the
 * accelerator networks (Rumba's and the unchecked NPU's topologies),
 * fit the input/output normalizers, configure accelerators, and train
 * the error predictors against the accelerator's observed training
 * errors. Both the evaluation harness (experiment.h) and the online
 * runtime (runtime.h) build on this.
 */

#include <memory>
#include <optional>
#include <vector>

#include "apps/benchmark.h"
#include "common/dataset.h"
#include "core/schemes.h"
#include "npu/npu.h"
#include "predict/compensator.h"
#include "predict/predictor.h"

namespace rumba::core {

/** Offline-training knobs. */
struct PipelineConfig {
    size_t train_epochs = 120;     ///< NN trainer epochs.
    uint64_t seed = 7;             ///< weight init / shuffling seed.
    /** Subsample caps for quick runs (0 = use everything). */
    size_t max_train_elements = 0;
    size_t max_test_elements = 0;
    npu::NpuConfig npu;            ///< accelerator configuration.
};

struct Artifact;

/** Trained artifacts for one benchmark. */
class Pipeline {
  public:
    /** Run the full offline flow for @p bench. Takes ownership. */
    Pipeline(std::unique_ptr<apps::Benchmark> bench,
             const PipelineConfig& config);

    /**
     * Restore a previously exported configuration: loads networks and
     * normalizers from @p artifact instead of training. TrainErrors()
     * is empty on such a pipeline (no offline run happened), so
     * TrainPredictor()/threshold calibration are unavailable — the
     * artifact carries the trained checker and threshold instead.
     */
    Pipeline(std::unique_ptr<apps::Benchmark> bench,
             const PipelineConfig& config, const Artifact& artifact);

    /**
     * Export the trained configuration (networks + normalizers) plus
     * the given checker and threshold as a deployable artifact.
     * @p compensator, when non-null and trained, rides along as the
     * artifact's optional compensator section.
     */
    Artifact ExportArtifact(
        const predict::ErrorPredictor& predictor, double threshold,
        const predict::Compensator* compensator = nullptr) const;

    /** The application. */
    const apps::Benchmark& Bench() const { return *bench_; }

    /** The offline configuration used. */
    const PipelineConfig& Config() const { return config_; }

    /** Raw (unnormalized) training element inputs, after capping. */
    const std::vector<std::vector<double>>& TrainInputs() const
    {
        return train_inputs_;
    }

    /** Raw test element inputs, after capping. */
    const std::vector<std::vector<double>>& TestInputs() const
    {
        return test_inputs_;
    }

    /** Trained network with the Rumba topology. */
    const nn::Mlp& RumbaMlp() const { return *rumba_mlp_; }

    /** Trained network with the unchecked-NPU topology. */
    const nn::Mlp& NpuMlp() const { return *npu_mlp_; }

    /** Normalize one element's raw inputs into the NN domain. */
    std::vector<double> NormalizeInput(
        const std::vector<double>& raw) const;

    /** NormalizeInput() over a borrowed element buffer into a
     *  reusable scratch vector (hot-path form, no allocation once
     *  @p out has capacity). */
    void NormalizeInput(const double* raw, std::vector<double>* out)
        const;

    /** Map one element's raw outputs into the NN domain (the forward
     *  direction of the output normalizer; hot-path borrowed-buffer
     *  form). The compensator's feature builder uses this to fold the
     *  approximate outputs into its feature vector. */
    void NormalizeOutput(const double* raw, std::vector<double>* out)
        const;

    /** Map NN-domain outputs back into the raw output domain. */
    std::vector<double> DenormalizeOutput(
        const std::vector<double>& norm) const;

    /** DenormalizeOutput() into a reusable scratch vector. */
    void DenormalizeOutput(const std::vector<double>& norm,
                           std::vector<double>* out) const;

    /**
     * Build an accelerator configured with the requested network.
     * @param use_rumba_topology true for Rumba's (smaller) network.
     */
    npu::Npu MakeAccelerator(bool use_rumba_topology) const;

    /**
     * Run @p accel over raw element inputs, returning raw-domain
     * approximate outputs (normalize -> invoke -> denormalize).
     */
    std::vector<std::vector<double>> RunAccelerator(
        npu::Npu* accel,
        const std::vector<std::vector<double>>& raw_inputs) const;

    /**
     * Instantiate an untrained checker for a predictor scheme
     * (kEma / kLinear / kTree); fatal otherwise.
     */
    static std::unique_ptr<predict::ErrorPredictor> MakePredictor(
        Scheme scheme);

    /**
     * Offline-train a checker (Figure 4's "error predictor trainer"):
     * runs the Rumba-topology accelerator over the training elements,
     * computes each element's true error, and fits the predictor to
     * map normalized inputs -> error. EMA needs no fitting but is
     * returned for uniformity.
     */
    std::unique_ptr<predict::ErrorPredictor> TrainPredictor(
        Scheme scheme) const;

    /**
     * Offline-train the self-compensation model (the recovery middle
     * tier's executor): runs the Rumba-topology accelerator over the
     * training elements and fits normalized inputs -> raw-domain
     * signed residuals (exact − approximate). Requires an offline
     * training run — unavailable (checked-fatal) on an
     * artifact-restored pipeline, whose artifact carries the trained
     * compensator instead.
     */
    predict::Compensator TrainCompensator() const;

    /**
     * True per-element errors of the Rumba-topology accelerator on
     * the *training* elements (predictor targets; also useful for
     * threshold calibration).
     */
    const std::vector<double>& TrainErrors() const
    {
        return train_errors_;
    }

  private:
    std::unique_ptr<apps::Benchmark> bench_;
    PipelineConfig config_;
    std::vector<std::vector<double>> train_inputs_;
    std::vector<std::vector<double>> test_inputs_;
    Normalizer in_norm_;
    Normalizer out_norm_;
    std::optional<nn::Mlp> rumba_mlp_;
    std::optional<nn::Mlp> npu_mlp_;
    std::vector<double> train_errors_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_PIPELINE_H_
