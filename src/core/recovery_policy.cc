#include "core/recovery_policy.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rumba::core {

const char*
RecoveryTierName(RecoveryTier tier)
{
    switch (tier) {
      case RecoveryTier::kAccept:
        return "accept";
      case RecoveryTier::kCompensate:
        return "compensate";
      case RecoveryTier::kReexecute:
        return "reexecute";
    }
    return "unknown";
}

Status
ValidateRecoveryPolicyConfig(const RecoveryPolicyConfig& config)
{
    const auto invalid = [](std::string message) {
        return Status(StatusCode::kInvalidArgument,
                      std::move(message));
    };
    if (!(config.min_multiple >= 1.0))
        return invalid("recovery policy: min_multiple must be >= 1");
    if (!(config.max_multiple >= config.min_multiple))
        return invalid(
            "recovery policy: max_multiple must be >= min_multiple");
    if (!(config.reexec_multiple >= config.min_multiple &&
          config.reexec_multiple <= config.max_multiple))
        return invalid("recovery policy: reexec_multiple outside "
                       "[min_multiple, max_multiple]");
    if (!(config.adjust_factor > 1.0))
        return invalid("recovery policy: adjust_factor must be > 1");
    if (!(config.dead_band >= 0.0 && config.dead_band < 1.0))
        return invalid("recovery policy: dead_band must be in [0, 1)");
    if (!(config.residual_budget_frac > 0.0 &&
          config.residual_budget_frac <= 1.0))
        return invalid(
            "recovery policy: residual_budget_frac must be in (0, 1]");
    return Status::Ok();
}

RecoveryPolicy::RecoveryPolicy(const RecoveryPolicyConfig& config,
                               double target_error_pct)
    : config_(config),
      target_error_pct_(target_error_pct),
      multiple_(config.reexec_multiple),
      obs_multiple_(obs::Registry::Default().GetGauge(
          "recovery.policy.reexec_multiple")),
      obs_adjustments_(obs::Registry::Default().GetCounter(
          "recovery.policy.adjustments")),
      obs_feedback_elements_(obs::Registry::Default().GetCounter(
          "recovery.policy.feedback_elements"))
{
    const Status status = ValidateRecoveryPolicyConfig(config);
    if (!status.ok())
        Fatal("%s", status.ToString().c_str());
    RUMBA_CHECK(target_error_pct > 0.0);
    obs_multiple_->Set(multiple_.load(std::memory_order_relaxed));
}

RecoveryDecision
RecoveryPolicy::Decide(size_t iteration, double predicted_error,
                       bool non_finite, double check_threshold) const
{
    RecoveryDecision decision;
    decision.iteration = iteration;
    decision.predicted_error = predicted_error;
    // Garbage re-executes, always: a non-finite output cannot be
    // corrected by adding a residual to it, and a non-finite
    // *prediction* is no evidence at all.
    if (non_finite || !std::isfinite(predicted_error) ||
        !config_.compensation) {
        decision.tier = RecoveryTier::kReexecute;
        return decision;
    }
    // A fired check whose predicted error sits below the check
    // threshold is an inverted verdict (checker.mispredict): the
    // evidence says the element is nearly right, so the cheap
    // correction is the proportionate response.
    if (predicted_error < check_threshold) {
        decision.tier = RecoveryTier::kCompensate;
        return decision;
    }
    decision.tier = predicted_error >= ReexecThreshold(check_threshold)
                        ? RecoveryTier::kReexecute
                        : RecoveryTier::kCompensate;
    return decision;
}

void
RecoveryPolicy::OnCompensatedGroundTruth(double mean_residual_pct,
                                         size_t elements)
{
    if (elements == 0 || !std::isfinite(mean_residual_pct))
        return;
    const std::lock_guard<std::mutex> lock(feedback_mu_);
    obs_feedback_elements_->Increment(elements);
    const double budget = ResidualBudgetPct();
    const double band = config_.dead_band;
    const double current = multiple_.load(std::memory_order_relaxed);
    double next = current;
    if (mean_residual_pct > budget * (1.0 + band)) {
        // Compensation is leaving too much residual error behind:
        // narrow the band so more of the tail re-executes exactly.
        next = std::max(current / config_.adjust_factor,
                        config_.min_multiple);
    } else if (mean_residual_pct < budget * (1.0 - band)) {
        next = std::min(current * config_.adjust_factor,
                        config_.max_multiple);
    }
    if (next != current) {
        multiple_.store(next, std::memory_order_relaxed);
        adjustments_.fetch_add(1, std::memory_order_relaxed);
        obs_adjustments_->Increment();
        obs_multiple_->Set(next);
    }
}

}  // namespace rumba::core
