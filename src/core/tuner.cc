#include "core/tuner.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace rumba::core {

Status
ValidateTunerConfig(const TunerConfig& config)
{
    const auto invalid = [](std::string message) {
        return Status(StatusCode::kInvalidArgument,
                      std::move(message));
    };
    if (!(config.adjust_factor > 1.0))
        return invalid("tuner: adjust_factor must be > 1");
    if (!(config.min_threshold > 0.0))
        return invalid("tuner: min_threshold must be > 0");
    if (!(config.max_threshold > config.min_threshold))
        return invalid(
            "tuner: max_threshold must be > min_threshold");
    if (!(config.target_error_pct > 0.0))
        return invalid("tuner: target_error_pct must be > 0");
    if (!(config.dead_band >= 0.0 && config.dead_band < 1.0))
        return invalid("tuner: dead_band must be in [0, 1)");
    return Status::Ok();
}

OnlineTuner::OnlineTuner(const TunerConfig& config,
                         double initial_threshold)
    : config_(config),
      threshold_(initial_threshold),
      obs_threshold_(obs::Registry::Default().GetGauge("tuner.threshold")),
      obs_adjustments_(
          obs::Registry::Default().GetCounter("tuner.adjustments"))
{
    const Status status = ValidateTunerConfig(config);
    if (!status.ok())
        Fatal("%s", status.ToString().c_str());
    threshold_ = std::clamp(threshold_, config.min_threshold,
                            config.max_threshold);
    obs_threshold_->Set(threshold_);
}

void
OnlineTuner::Raise()
{
    const double next = std::min(threshold_ * config_.adjust_factor,
                                 config_.max_threshold);
    if (next != threshold_) {
        threshold_ = next;
        ++adjustments_;
        obs_adjustments_->Increment();
    }
}

void
OnlineTuner::Lower()
{
    const double next = std::max(threshold_ / config_.adjust_factor,
                                 config_.min_threshold);
    if (next != threshold_) {
        threshold_ = next;
        ++adjustments_;
        obs_adjustments_->Increment();
    }
}

void
OnlineTuner::EndInvocation(const InvocationFeedback& feedback)
{
    const obs::Span span("tuner.adjust");
    const double band = config_.dead_band;
    switch (config_.mode) {
      case TuningMode::kToq: {
        // Too much residual error -> check more aggressively;
        // comfortably under target -> back off to save energy.
        const double target = config_.target_error_pct;
        if (feedback.estimated_error_pct > target * (1.0 + band))
            Lower();
        else if (feedback.estimated_error_pct < target * (1.0 - band))
            Raise();
        break;
      }
      case TuningMode::kEnergy: {
        const double budget =
            static_cast<double>(config_.iteration_budget);
        const double fixes = static_cast<double>(feedback.fixes);
        if (fixes > budget)
            Raise();
        else if (fixes < budget * (1.0 - band))
            Lower();
        break;
      }
      case TuningMode::kQuality: {
        // CPU saturated -> fix fewer; CPU idle headroom -> fix more.
        if (feedback.cpu_busy_ratio > 1.0)
            Raise();
        else if (feedback.cpu_busy_ratio < 1.0 - band)
            Lower();
        break;
      }
    }
    obs_threshold_->Set(threshold_);
}

}  // namespace rumba::core
