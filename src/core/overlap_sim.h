#ifndef RUMBA_CORE_OVERLAP_SIM_H_
#define RUMBA_CORE_OVERLAP_SIM_H_

/**
 * @file
 * Discrete-event simulation of the pipelined CPU/accelerator recovery
 * arrangement of Figure 8. The accelerator emits one element every
 * `accel_cycles_per_element`; elements whose check fired enter the
 * bounded recovery queue; the CPU drains the queue FIFO at
 * `cpu_cycles_per_fix` per entry. A full queue back-pressures the
 * accelerator (it stalls until the CPU frees a slot).
 *
 * The analytical model in sim/system_model.h uses the fluid limit
 * max(accelerator time, recovery time); this simulator computes the
 * exact schedule for a concrete fire pattern, exposing the effect the
 * paper's Section 3.3 caveat describes: the CPU only keeps up
 * "provided the elements to recompute are uniformly distributed" —
 * clustered fixes overflow a small queue and stall the accelerator
 * even when the average rate is sustainable.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rumba::core {

/** Timing parameters of the pipelined arrangement. */
struct OverlapConfig {
    uint64_t accel_cycles_per_element = 20;  ///< NPU invocation latency.
    uint64_t cpu_cycles_per_fix = 60;        ///< exact re-execution cost.
    size_t queue_capacity = 64;              ///< recovery-queue depth.
};

/** Outcome of one simulated invocation. */
struct OverlapResult {
    uint64_t total_cycles = 0;        ///< start of first element to
                                      ///< last commit (either side).
    uint64_t accel_busy_cycles = 0;   ///< accelerator compute cycles.
    uint64_t accel_stall_cycles = 0;  ///< back-pressure stalls.
    uint64_t cpu_busy_cycles = 0;     ///< re-execution cycles.
    uint64_t cpu_idle_cycles = 0;     ///< CPU waiting for work.
    size_t fixes = 0;                 ///< entries the CPU processed.
    size_t max_queue_depth = 0;       ///< high-water mark observed.

    /** Fraction of the run the CPU spent re-executing. */
    double
    CpuUtilization() const
    {
        return total_cycles == 0
                   ? 0.0
                   : static_cast<double>(cpu_busy_cycles) /
                         static_cast<double>(total_cycles);
    }

    /** Fraction of accelerator time lost to back-pressure. */
    double
    StallFraction() const
    {
        const uint64_t active = accel_busy_cycles + accel_stall_cycles;
        return active == 0 ? 0.0
                           : static_cast<double>(accel_stall_cycles) /
                                 static_cast<double>(active);
    }
};

/** Per-element schedule record (traced simulation). */
struct ElementTrace {
    uint64_t accel_start = 0;  ///< accelerator begins the element.
    uint64_t accel_end = 0;    ///< approximate result available.
    bool fired = false;        ///< check fired -> CPU re-executes.
    uint64_t cpu_start = 0;    ///< CPU begins the fix (fired only).
    uint64_t cpu_end = 0;      ///< exact result committed (fired only).
};

/**
 * Simulate one invocation.
 * @param fire_mask one flag per element: true = the check fired and
 *        the element must be re-executed on the CPU.
 * @param config timing/queue parameters.
 * @param trace optional per-element schedule (for Figure 8-style
 *        renderings); pass nullptr when not needed.
 */
OverlapResult SimulateOverlap(const std::vector<char>& fire_mask,
                              const OverlapConfig& config,
                              std::vector<ElementTrace>* trace = nullptr);

/** Parameters of the real-threads replay. */
struct OverlapReplayConfig {
    size_t queue_capacity = 64;  ///< recovery-queue depth.
    /** Busy-wait pacing per accelerator element (0 = run free). Makes
     *  the two lanes visible at trace scale without changing what is
     *  computed. */
    uint64_t accel_ns_per_element = 0;
};

/** What the real-threads replay measured. */
struct OverlapReplayResult {
    size_t elements = 0;         ///< elements streamed.
    size_t fixes = 0;            ///< entries the recovery thread served.
    size_t max_queue_depth = 0;  ///< high-water mark observed.
    size_t push_waits = 0;       ///< producer blocks on a full queue.
    uint64_t wall_ns = 0;        ///< steady-clock start-to-join time.
};

}  // namespace rumba::core

namespace rumba::apps {
class Benchmark;
}  // namespace rumba::apps

namespace rumba::core {

/**
 * Replay one invocation's fire pattern with *real* concurrency: the
 * calling thread plays the accelerator lane (one element at a time,
 * pushing fired elements into a bounded blocking queue and stalling
 * on backpressure exactly like Figure 8's arrangement), while a
 * spawned recovery thread drains the queue, re-executes each flagged
 * element via @p bench's exact kernel, and commits the result into
 * @p outputs (the output-merger step). Both lanes are instrumented
 * with obs/span.h spans ("overlap.accel_element",
 * "overlap.queue_push_wait", "overlap.queue_wait",
 * "overlap.cpu_reexecute"), so a RUMBA_TRACE_OUT dump shows the
 * overlapped pipeline as two thread tracks.
 *
 * @param bench the application whose exact kernel re-executes fixes.
 * @param inputs one raw input vector per element.
 * @param fire_mask one flag per element (size must match inputs).
 * @param outputs resized to inputs.size(); fired elements receive the
 *        exact outputs, unfired ones stay empty.
 */
OverlapReplayResult ReplayOverlapThreaded(
    const apps::Benchmark& bench,
    const std::vector<std::vector<double>>& inputs,
    const std::vector<char>& fire_mask,
    std::vector<std::vector<double>>* outputs,
    const OverlapReplayConfig& config = OverlapReplayConfig());

}  // namespace rumba::core

#endif  // RUMBA_CORE_OVERLAP_SIM_H_
