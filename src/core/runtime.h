#ifndef RUMBA_CORE_RUNTIME_H_
#define RUMBA_CORE_RUNTIME_H_

/**
 * @file
 * The online Rumba system (Figure 4's execution subsystem): the
 * public API a host application uses. Each ProcessInvocation() call
 * plays one accelerator invocation — a batch of data-parallel
 * elements streamed through the accelerator while the detector checks
 * every element, flagged iterations flow through the recovery queue,
 * the CPU re-executes them, and the output merger commits exact over
 * approximate results. Between invocations the online tuner moves the
 * detection threshold toward the user's goal.
 */

#include <memory>
#include <vector>

#include "core/artifact.h"
#include "core/batch_view.h"
#include "core/breaker.h"
#include "core/detector.h"
#include "core/drift.h"
#include "core/pipeline.h"
#include "core/recovery.h"
#include "core/recovery_policy.h"
#include "core/schemes.h"
#include "core/status.h"
#include "core/tuner.h"
#include "sim/system_model.h"

namespace rumba::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace rumba::obs

namespace rumba::core {

/** Online-system configuration. */
struct RuntimeConfig {
    PipelineConfig pipeline;          ///< offline-training knobs.
    Scheme checker = Scheme::kTree;   ///< kEma / kLinear / kTree.
    TunerConfig tuner;                ///< online-tuning policy.
    /** Starting detection threshold. Values <= 0 request offline
     *  calibration: the trainer replays the training elements through
     *  the accelerator + checker and picks the smallest threshold
     *  whose fix set meets tuner.target_error_pct on them. */
    double initial_threshold = 0.0;
    size_t recovery_queue_capacity = 64;
    /** Tiered-recovery policy (core/recovery_policy.h). Off by
     *  default: the paper's two-tier accept/re-execute behaviour.
     *  With compensation on, the runtime trains (or restores from the
     *  artifact) a self-compensation model and mid-range predicted
     *  errors are corrected in place instead of re-executed. */
    RecoveryPolicyConfig recovery_policy;
    /** Circuit-breaker policy over the approximate path (see
     *  core/breaker.h). Enabled by default; in healthy operation it
     *  never trips and costs one branch per invocation. */
    BreakerConfig breaker;
    /** Measure wall-clock per pipeline stage into
     *  InvocationReport::timings. Off by default: it adds two clock
     *  reads per eighth element on the check path (the check slice is
     *  a scaled 1-in-8 sample), which request-scoped tracing
     *  (obs/reqtrace.h) needs but batch experiments do not. */
    bool stage_timings = false;
    /** Attribute per-stage *thread CPU time* (CLOCK_THREAD_CPUTIME_ID)
     *  into InvocationReport::cpu for the live cost profiler
     *  (obs/profiler.h). Reads the thread clock only at stage
     *  boundaries (~8 syscalls per invocation, never per element);
     *  implies the wall-clock stage timings, whose check/stream ratio
     *  apportions the stream's CPU between device and checker. */
    bool cpu_attribution = false;
    sim::CoreParams core;             ///< host-core model (Table 2).
    sim::EnergyParams energy;         ///< event energies.

    class Builder;
};

/**
 * Fluent construction of a RuntimeConfig, so applications state their
 * intent in one expression instead of mutating nested structs
 * field-by-field:
 *
 *   const auto config = core::RuntimeConfig::Builder()
 *                           .WithChecker(core::Scheme::kTree)
 *                           .WithTunerMode(core::TuningMode::kToq)
 *                           .WithTargetErrorPct(10.0)
 *                           .Build();
 *
 * Seed an existing config into the constructor to derive variants
 * (e.g. the same runtime with a twitchier breaker).
 */
class RuntimeConfig::Builder {
  public:
    Builder() = default;

    /** Start from @p base instead of the defaults. */
    explicit Builder(const RuntimeConfig& base) : config_(base) {}

    Builder&
    WithChecker(Scheme checker)
    {
        config_.checker = checker;
        return *this;
    }

    Builder&
    WithTunerMode(TuningMode mode)
    {
        config_.tuner.mode = mode;
        return *this;
    }

    /** TOQ-mode goal: target output error in percent. */
    Builder&
    WithTargetErrorPct(double pct)
    {
        config_.tuner.target_error_pct = pct;
        return *this;
    }

    /** Energy-mode goal: re-executions allowed per invocation. */
    Builder&
    WithIterationBudget(size_t budget)
    {
        config_.tuner.iteration_budget = budget;
        return *this;
    }

    /** Fixed starting threshold (skips offline calibration). */
    Builder&
    WithInitialThreshold(double threshold)
    {
        config_.initial_threshold = threshold;
        return *this;
    }

    /** Clamp the tuner's threshold walk to [min, max]. Pinning the
     *  whole range above any reachable score makes an "unchecked"
     *  runtime whose checks never fire (a common baseline). */
    Builder&
    WithThresholdRange(double min_threshold, double max_threshold)
    {
        config_.tuner.min_threshold = min_threshold;
        config_.tuner.max_threshold = max_threshold;
        return *this;
    }

    Builder&
    WithTrainEpochs(size_t epochs)
    {
        config_.pipeline.train_epochs = epochs;
        return *this;
    }

    Builder&
    WithSeed(uint64_t seed)
    {
        config_.pipeline.seed = seed;
        return *this;
    }

    /** Subsample caps for quick runs (0 = use everything). */
    Builder&
    WithElementCaps(size_t max_train, size_t max_test)
    {
        config_.pipeline.max_train_elements = max_train;
        config_.pipeline.max_test_elements = max_test;
        return *this;
    }

    Builder&
    WithRecoveryQueueCapacity(size_t capacity)
    {
        config_.recovery_queue_capacity = capacity;
        return *this;
    }

    /** Enable the compensate tier (trains/restores the compensation
     *  model; see RuntimeConfig::recovery_policy). */
    Builder&
    WithCompensation(bool enabled = true)
    {
        config_.recovery_policy.compensation = enabled;
        return *this;
    }

    /** Full tiered-recovery policy control. */
    Builder&
    WithRecoveryPolicy(const RecoveryPolicyConfig& policy)
    {
        config_.recovery_policy = policy;
        return *this;
    }

    Builder&
    WithBreaker(const BreakerConfig& breaker)
    {
        config_.breaker = breaker;
        return *this;
    }

    /** Measure per-stage wall clock into InvocationReport::timings. */
    Builder&
    WithStageTimings(bool enabled = true)
    {
        config_.stage_timings = enabled;
        return *this;
    }

    /** Attribute per-stage thread CPU into InvocationReport::cpu. */
    Builder&
    WithCpuAttribution(bool enabled = true)
    {
        config_.cpu_attribution = enabled;
        return *this;
    }

    RuntimeConfig Build() const { return config_; }

  private:
    RuntimeConfig config_;
};

/** Per-stage wall clock of one invocation (all zero unless
 *  RuntimeConfig::stage_timings). accel_stream_ns covers the whole
 *  normalize/invoke/denormalize/check loop and *includes* check_ns,
 *  so device-only time is the difference. */
struct InvocationTimings {
    uint64_t accel_stream_ns = 0;  ///< accelerator streaming loop.
    uint64_t check_ns = 0;         ///< detector checks (within stream).
    uint64_t exact_ns = 0;         ///< breaker-degraded exact tail.
    uint64_t recover_ns = 0;       ///< recovery-queue drain + merge.
    /** Compensate-tier slice of this invocation's drains (measured
     *  per entry inside the drain, so it overlaps recover_ns /
     *  accel_stream_ns rather than adding to them). */
    uint64_t compensate_ns = 0;
    uint64_t verify_ns = 0;        ///< true-error verification pass.
};

/** Per-stage *thread CPU time* of one invocation (all zero unless
 *  RuntimeConfig::cpu_attribution). stream_cpu_ns covers the whole
 *  accelerator streaming loop and *includes* check_cpu_ns, which is
 *  the checker's estimated slice of it (apportioned by the wall-clock
 *  check/stream ratio — the thread clock is too expensive to read per
 *  element). */
struct InvocationCpuTimings {
    int64_t stream_cpu_ns = 0;   ///< accel streaming loop (checks incl.).
    int64_t check_cpu_ns = 0;    ///< checker slice of stream_cpu_ns.
    int64_t exact_cpu_ns = 0;    ///< breaker-degraded exact tail.
    int64_t recover_cpu_ns = 0;  ///< exact re-execution drain + merge.
    /** Compensate-tier slice, apportioned out of the drains' CPU by
     *  the per-tier wall ratio (disjoint from recover_cpu_ns). */
    int64_t compensate_cpu_ns = 0;
    int64_t verify_cpu_ns = 0;   ///< true-error verification pass.
};

/**
 * How much of the quality machinery one invocation keeps under
 * overload (serve/admission.h picks the mode per request). Degraded
 * invocations give intentionally reduced service, so they feed
 * neither the tuner, the drift monitor nor the circuit breaker —
 * deliberate degradation must not read as accelerator sickness or
 * drag the threshold walk — and they skip the true-error
 * verification pass (their ground truth comes from the quality
 * auditor, which force-samples them). Non-finite salvage always
 * runs: no mode may deliver NaN/Inf outputs.
 */
enum class DegradeMode : uint32_t {
    kNone = 0,            ///< full service: check + recovery.
    kCompensateOnly = 1,  ///< checker consulted; fired elements are
                          ///< compensated in place (cheap) but never
                          ///< re-executed. Without a deployed
                          ///< compensator this rung behaves like
                          ///< kSkipRecovery.
    kSkipRecovery = 2,    ///< checker consulted (verdicts recorded),
                          ///< recovery skipped entirely.
    kSkipCheck = 3,       ///< detector bypassed entirely: raw
                          ///< approximate outputs.
};

/** Stable lowercase name ("none", "compensate-only", "skip-recovery",
 *  "skip-check"). */
const char* DegradeModeName(DegradeMode mode);

/** What one invocation reported back. */
struct InvocationReport {
    size_t elements = 0;            ///< elements processed.
    /** Iterations the recovery layer touched (re-executed or
     *  compensated); equals tier_compensated + tier_reexecuted. With
     *  compensation off this is exactly the paper's re-execution
     *  count. */
    size_t fixes = 0;
    double threshold_used = 0.0;    ///< detector threshold this round.
    double output_error_pct = 0.0;  ///< true residual error (verified
                                    ///< against the exact kernel).
    double estimated_error_pct = 0.0;  ///< detector's own estimate.
    /** Input-drift alarm: the fire rate has departed persistently
     *  from its calibration-time value (see core/drift.h). Only
     *  raised when the threshold was auto-calibrated. */
    bool drift_detected = false;
    /** Recovery entries dropped on a stalled, full queue this round
     *  (the drop-and-count overflow policy; see core/recovery.h). */
    size_t queue_drops = 0;
    /** Non-finite accelerator outputs contained this round — every
     *  one was recovered unconditionally, none was delivered. */
    size_t non_finite_outputs = 0;
    /** Elements the circuit breaker served exactly on the CPU
     *  (everything while open, the non-canary rest while half-open). */
    size_t exact_elements = 0;
    /** Breaker position after this invocation. */
    BreakerState breaker_state = BreakerState::kClosed;
    /** Overload rung this invocation ran at (kNone = full service).
     *  Degraded invocations report output_error_pct 0 — the verify
     *  pass is skipped; audited truth is the only quality signal. */
    DegradeMode degrade = DegradeMode::kNone;
    /** Per-tier outcome counts (sum == elements). Accepted covers
     *  everything delivered approximately — unfired checks plus any
     *  dropped/shed recovery entries. Re-executed covers the exact
     *  path wherever it ran: queue drain, breaker tail, non-finite
     *  salvage. */
    size_t tier_accepted = 0;
    size_t tier_compensated = 0;
    size_t tier_reexecuted = 0;
    /** Per-stage wall clock (RuntimeConfig::stage_timings only). */
    InvocationTimings timings;
    /** Per-stage thread CPU (RuntimeConfig::cpu_attribution only). */
    InvocationCpuTimings cpu;
    sim::SystemCosts costs;         ///< modeled energy/time.
};

/** Aggregate statistics across a runtime's whole life. */
struct RunSummary {
    size_t invocations = 0;  ///< ProcessInvocation() calls.
    size_t elements = 0;     ///< elements processed in total.
    size_t fixes = 0;        ///< iterations re-executed in total.
    double error_weighted_sum = 0.0;  ///< sum(err% x elements).
    double baseline_app_ns = 0.0;     ///< accumulated baseline time.
    double baseline_app_nj = 0.0;     ///< accumulated baseline energy.
    double scheme_app_ns = 0.0;       ///< accumulated Rumba time.
    double scheme_app_nj = 0.0;       ///< accumulated Rumba energy.

    /** Element-weighted mean output error (percent). */
    double
    MeanOutputErrorPct() const
    {
        return elements == 0
                   ? 0.0
                   : error_weighted_sum / static_cast<double>(elements);
    }

    /** Fraction of all elements that were re-executed. */
    double
    FixFraction() const
    {
        return elements == 0 ? 0.0
                             : static_cast<double>(fixes) /
                                   static_cast<double>(elements);
    }

    /** Whole-run energy-saving factor vs the CPU baseline. */
    double
    EnergySaving() const
    {
        return scheme_app_nj == 0.0 ? 0.0
                                    : baseline_app_nj / scheme_app_nj;
    }

    /** Whole-run speedup vs the CPU baseline. */
    double
    Speedup() const
    {
        return scheme_app_ns == 0.0 ? 0.0
                                    : baseline_app_ns / scheme_app_ns;
    }
};

/**
 * Optional per-element capture of one invocation, filled by
 * ProcessInvocation when a caller passes it in. This is the raw
 * material for ground-truth auditing (obs/audit.h): the *pre-merge*
 * accelerator outputs and the checker's per-element verdicts, which
 * the aggregate InvocationReport cannot reconstruct (after the merger
 * runs, a recovered element's approximate output is gone). The
 * capture owns its storage — the runtime's scratch vectors are reused
 * by the verify pass — and is overwritten (not appended) every call.
 */
struct AuditCapture {
    size_t count = 0;      ///< elements in the captured invocation.
    size_t out_width = 0;  ///< doubles per element output.
    /** Pre-merge accelerator outputs, count x out_width. Elements the
     *  breaker served exactly hold the exact outputs (their
     *  approximate result never existed). */
    std::vector<double> approx_outputs;
    /** Checker error estimate per element (0 on the exact path). */
    std::vector<double> predicted_error;
    /** Checker verdict per element, after fault injection — what the
     *  system *acted on*, which is what calibration must score. */
    std::vector<char> fired;
    /** Final recovered mask (queue drain + non-finite salvage +
     *  breaker tail), matching what the caller's outputs hold:
     *  kFixedNone / kFixedExact / kFixedCompensated. */
    std::vector<char> fixed;
    /** 1 when the breaker routed the element to the exact CPU tail. */
    std::vector<char> exact_path;
};

/** The online quality-management system. */
class RumbaRuntime {
  public:
    /** Builds the offline pipeline and the online modules. */
    RumbaRuntime(std::unique_ptr<apps::Benchmark> bench,
                 const RuntimeConfig& config);

    /**
     * Bring the system up from a deployed artifact (Figure 4's
     * "embedded in the binary" configuration): no training happens;
     * the networks, normalizers, checker and threshold all come from
     * @p artifact. config.checker and config.initial_threshold are
     * ignored. Checked-fatal on an artifact that names an unknown
     * kernel or carries an unrecognized checker blob — use
     * FromArtifact() where the artifact is external input.
     */
    RumbaRuntime(const struct Artifact& artifact,
                 const RuntimeConfig& config);

    /**
     * Fallible artifact construction: validates that the artifact
     * names a known kernel (kNotFound), carries a recognizable
     * checker blob (kDataLoss) and a network matching the kernel's
     * arity (kFailedPrecondition) before bringing the system up. The
     * artifact is only read — a serving engine instantiates every
     * shard's replica from one shared Artifact.
     */
    static Result<std::unique_ptr<RumbaRuntime>> FromArtifact(
        const struct Artifact& artifact, const RuntimeConfig& config);

    /** Releases the env-configured snapshot streamer (obs/stream.h). */
    ~RumbaRuntime();

    /**
     * Export this runtime's trained configuration (networks,
     * normalizers, checker, current threshold) for deployment.
     */
    struct Artifact ExportArtifact() const;

    /**
     * Run one accelerator invocation over a batch of raw element
     * inputs — the hot-path form. @p raw_inputs views one contiguous
     * buffer of count x NumInputs() doubles; @p outputs receives the
     * merged (approximate + recovered exact) element outputs as
     * count x NumOutputs() contiguous doubles into caller-owned
     * storage. Steady-state invocations perform no per-element heap
     * allocation. @p capture, when non-null, receives the per-element
     * audit capture (see AuditCapture); passing it re-enables bounded
     * per-element allocation for the capture's own storage.
     * @p degrade selects the overload rung (see DegradeMode); the
     * default runs the full check + recovery service.
     */
    InvocationReport ProcessInvocation(
        const BatchView& raw_inputs, double* outputs,
        AuditCapture* capture = nullptr,
        DegradeMode degrade = DegradeMode::kNone);

    /**
     * Legacy batch form: packs the ragged rows into the contiguous
     * layout and forwards to the BatchView overload (thin adapter —
     * identical results, extra copies). Deprecated: new callers
     * should flatten once (core::FlattenBatch) and use the BatchView
     * overload, which is allocation-free in steady state and exposes
     * capture/degrade.
     */
    [[deprecated(
        "use the BatchView overload; this adapter copies every batch "
        "and hides the capture/degrade parameters")]]
    InvocationReport ProcessInvocation(
        const std::vector<std::vector<double>>& raw_inputs,
        std::vector<std::vector<double>>* outputs);

    /** The detection threshold the next invocation will use. */
    double Threshold() const { return tuner_.Threshold(); }

    /** The online tuner (inspection). */
    const OnlineTuner& Tuner() const { return tuner_; }

    /** The application the runtime serves. */
    const apps::Benchmark& Bench() const { return pipeline_.Bench(); }

    /** Total re-executions since construction. */
    size_t TotalFixes() const { return recovery_.TotalReexecutions(); }

    /** Total in-place compensations since construction. */
    size_t
    TotalCompensations() const
    {
        return recovery_.TotalCompensations();
    }

    /** Invocations processed since construction. */
    size_t Invocations() const { return invocations_; }

    /** Aggregates across every invocation so far. */
    const RunSummary& Summary() const { return summary_; }

    /** The input-drift monitor (enabled by threshold calibration). */
    const DriftMonitor& Drift() const { return drift_; }

    /** The circuit breaker over the approximate path. */
    const CircuitBreaker& Breaker() const { return breaker_; }

    /** The recovery module (queue drop/backpressure inspection). */
    const RecoveryModule& Recovery() const { return recovery_; }

    /** The tiered-recovery policy (tuned multiple inspection). */
    const RecoveryPolicy& Policy() const { return policy_; }

    /** True when a trained compensator is deployed on this runtime. */
    bool HasCompensator() const { return recovery_.HasCompensator(); }

    /**
     * Audited ground truth for compensated elements (obs/audit.h):
     * the shadow re-execution sampler measured a mean true residual
     * of @p mean_residual_pct over @p elements compensated elements.
     * Feeds the policy's re-execute-boundary tuning; thread-safe.
     */
    void
    OnAuditedCompensation(double mean_residual_pct, size_t elements)
    {
        policy_.OnCompensatedGroundTruth(mean_residual_pct, elements);
    }

  private:
    /** Offline threshold calibration (see RuntimeConfig); fails with
     *  kFailedPrecondition when the pipeline has no training set. */
    Result<double> CalibrateThreshold(double target_error_pct);

    /** Train (offline ctor) or restore (artifact ctor) the
     *  compensation model and install it as the recovery module's
     *  compensate-tier executor. */
    void InstallCompensator(predict::Compensator compensator);

    /** Register this runtime's instruments with the default registry. */
    void RegisterMetrics();

    RuntimeConfig config_;
    Pipeline pipeline_;
    npu::Npu accel_;
    Detector detector_;
    RecoveryModule recovery_;
    RecoveryPolicy policy_;
    /** Trained self-compensation model (only with compensation
     *  enabled, or restored from an artifact that carries one). */
    std::optional<predict::Compensator> compensator_;
    OnlineTuner tuner_;
    sim::SystemModel system_;
    sim::OpCounts kernel_ops_;
    /** Checker scores observed on the training elements during
     *  threshold calibration (drift baseline). */
    std::vector<double> calibration_scores_;
    /** Hot-path scratch reused across invocations so steady-state
     *  ProcessInvocation() stays allocation-free. */
    std::vector<double> scratch_norm_in_;
    std::vector<double> scratch_norm_out_;
    std::vector<double> scratch_raw_out_;
    std::vector<double> scratch_residual_;
    std::vector<char> scratch_fixed_;
    /** Compensator-hook scratch: the feature vector under assembly
     *  (normalized inputs + normalized approximate outputs), the
     *  normalized-output staging half, and the predicted exact
     *  outputs. */
    std::vector<double> scratch_comp_in_;
    std::vector<double> scratch_comp_out_;
    std::vector<double> scratch_comp_pred_;
    size_t invocations_ = 0;
    RunSummary summary_;
    DriftMonitor drift_;
    CircuitBreaker breaker_;
    /** Process-wide telemetry (obs/): per-invocation counters, hot-path
     *  latency histograms, and the invocation trace ring feed. */
    obs::Counter* obs_invocations_;
    obs::Counter* obs_elements_;
    obs::Counter* obs_fixes_;
    obs::Counter* obs_drift_alarms_;
    obs::Counter* obs_non_finite_salvaged_;
    obs::Counter* obs_breaker_exact_elements_;
    obs::Counter* obs_tier_accept_;
    obs::Counter* obs_tier_compensate_;
    obs::Counter* obs_tier_reexecute_;
    obs::Gauge* obs_output_error_;
    obs::Histogram* obs_invocation_ns_;
    obs::Histogram* obs_verify_ns_;
    obs::Histogram* obs_calibrate_ns_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_RUNTIME_H_
