#ifndef RUMBA_CORE_RECOVERY_POLICY_H_
#define RUMBA_CORE_RECOVERY_POLICY_H_

/**
 * @file
 * The typed recovery-policy seam: three tiers instead of a queue of
 * bits. The paper's recovery path re-executes *every* flagged
 * iteration exactly on the CPU — the dominant cost of online quality
 * management (Figure 18). Since the EEP checkers estimate the error
 * itself, a mid-range predicted error can instead be *compensated* in
 * place (approximate output + predicted signed residual, see
 * predict/compensator.h), reserving exact re-execution for the worst
 * tail and for anything non-finite.
 *
 * The policy maps one element's predicted error into a tier via two
 * thresholds:
 *
 *       accept        compensate           re-execute
 *   ──────────────┬────────────────────┬────────────────▶ error
 *          check threshold      reexec threshold
 *          (TOQ tuner)      (= multiple × check threshold)
 *
 * The lower threshold IS the existing TOQ check threshold — the
 * online tuner keeps moving it. The upper one rides on it as a
 * multiple, and the multiple is itself tuned online from *audited
 * ground truth* (the PR 6 shadow re-execution samples and the
 * runtime's own verify pass): when the measured mean residual of
 * compensated elements exceeds its budget the policy narrows the
 * compensation band, so compensation can never silently violate TOQ.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "core/status.h"

namespace rumba::obs {
class Counter;
class Gauge;
}  // namespace rumba::obs

namespace rumba::core {

/** What the recovery layer does with one flagged element. */
enum class RecoveryTier : uint8_t {
    kAccept = 0,      ///< below the check threshold: deliver as-is.
    kCompensate = 1,  ///< mid-range: add the predicted residual.
    kReexecute = 2,   ///< tail / non-finite: exact CPU re-execution.
};

/** Stable lowercase name ("accept", "compensate", "reexecute"). */
const char* RecoveryTierName(RecoveryTier tier);

/**
 * One typed recovery-queue entry: which element, what to do with it,
 * and the evidence (predicted error) the decision was made on. This
 * replaces the raw RecoveryEntry{iteration} bit the accelerator used
 * to set — the queue now carries decisions, not hints.
 */
struct RecoveryDecision {
    size_t iteration = 0;  ///< element identity within the invocation.
    RecoveryTier tier = RecoveryTier::kReexecute;
    double predicted_error = 0.0;  ///< checker estimate acted on.
};

/** Tiering policy parameters. */
struct RecoveryPolicyConfig {
    /** Master switch. Off (the default) keeps the paper's two-tier
     *  accept/re-execute behaviour bit-for-bit. */
    bool compensation = false;
    /** Initial re-execute threshold as a multiple of the check
     *  threshold (the compensation band's width). */
    double reexec_multiple = 4.0;
    /** Clamp range of the tuned multiple. 1.0 degenerates to the
     *  two-tier policy (every fired check re-executes). */
    double min_multiple = 1.0;
    double max_multiple = 64.0;
    /** Multiplicative step per ground-truth adjustment. */
    double adjust_factor = 1.25;
    /** Dead band: no adjustment within this relative margin. */
    double dead_band = 0.1;
    /** Compensated elements' residual budget as a fraction of the
     *  TOQ target error: their audited mean residual must stay below
     *  residual_budget_frac × target_error_pct, which keeps the
     *  whole-run error under target with margin to spare. */
    double residual_budget_frac = 0.5;
};

/** kInvalidArgument when @p config cannot drive a policy (bad clamp
 *  range, non-positive budget, adjust factor <= 1). */
Status ValidateRecoveryPolicyConfig(const RecoveryPolicyConfig& config);

/**
 * Maps predicted error magnitudes into recovery tiers and tunes the
 * compensate/re-execute boundary from audited ground truth.
 *
 * Thread safety: Decide() is lock-free (one atomic load of the tuned
 * multiple) so the serving hot path pays nothing extra; the
 * ground-truth feedback side (the audit pool's threads and the
 * runtime's verify pass) serializes on an internal mutex.
 */
class RecoveryPolicy {
  public:
    /**
     * @param config the tiering policy (checked-fatal when invalid —
     *        validate first where the config is external input).
     * @param target_error_pct the TOQ target the budget rides on.
     */
    RecoveryPolicy(const RecoveryPolicyConfig& config,
                   double target_error_pct);

    /** True when the compensate tier may be used at all. */
    bool
    CompensationEnabled() const
    {
        return config_.compensation;
    }

    /**
     * Tier one fired check. @p non_finite elements always re-execute
     * (garbage cannot be compensated), as does a non-finite
     * @p predicted_error. A fired element whose predicted error sits
     * *below* the check threshold (an inverted checker verdict — the
     * checker.mispredict fault) lands in the compensate tier: the
     * predicted error is small, so compensation is the cheapest safe
     * response. Boundary semantics are deterministic and match the
     * detector's: predicted_error >= reexec threshold re-executes.
     */
    RecoveryDecision Decide(size_t iteration, double predicted_error,
                            bool non_finite,
                            double check_threshold) const;

    /** The compensate/re-execute boundary for @p check_threshold. */
    double
    ReexecThreshold(double check_threshold) const
    {
        return check_threshold *
               multiple_.load(std::memory_order_relaxed);
    }

    /** The current tuned multiple. */
    double
    Multiple() const
    {
        return multiple_.load(std::memory_order_relaxed);
    }

    /**
     * Feed measured ground truth for @p elements compensated
     * elements whose mean true residual error was
     * @p mean_residual_pct (percent, benchmark AggregateError
     * units). Over budget narrows the compensation band (more
     * re-execution); comfortably under widens it. Thread-safe —
     * called from the audit pool and the runtime's verify pass.
     */
    void OnCompensatedGroundTruth(double mean_residual_pct,
                                  size_t elements);

    /** The compensated-residual budget in percent. */
    double
    ResidualBudgetPct() const
    {
        return config_.residual_budget_frac * target_error_pct_;
    }

    /** Boundary adjustments made so far. */
    size_t
    Adjustments() const
    {
        return adjustments_.load(std::memory_order_relaxed);
    }

    /** The active configuration. */
    const RecoveryPolicyConfig& Config() const { return config_; }

  private:
    RecoveryPolicyConfig config_;
    double target_error_pct_;
    std::atomic<double> multiple_;
    std::atomic<size_t> adjustments_{0};
    std::mutex feedback_mu_;  ///< serializes ground-truth updates.
    /** Process-wide telemetry: the tuned multiple and its moves. */
    obs::Gauge* obs_multiple_;
    obs::Counter* obs_adjustments_;
    obs::Counter* obs_feedback_elements_;
};

}  // namespace rumba::core

#endif  // RUMBA_CORE_RECOVERY_POLICY_H_
