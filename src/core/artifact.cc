#include "core/artifact.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace rumba::core {

namespace {

constexpr char kHeader[] = "rumba-artifact v1";

/** Emit one marker-delimited section. */
void
EmitSection(std::ostream& out, const char* name,
            const std::string& body)
{
    out << "BEGIN " << name << "\n" << body;
    if (!body.empty() && body.back() != '\n')
        out << "\n";
    out << "END " << name << "\n";
}

/** Read the section @p name from the blob; fatal when absent. */
std::string
ReadSection(const std::string& text, const std::string& name)
{
    const std::string begin = "BEGIN " + name + "\n";
    const std::string end = "END " + name + "\n";
    const size_t start = text.find(begin);
    if (start == std::string::npos)
        Fatal("artifact missing section '%s'", name.c_str());
    const size_t body = start + begin.size();
    const size_t stop = text.find(end, body);
    if (stop == std::string::npos)
        Fatal("artifact section '%s' not terminated", name.c_str());
    return text.substr(body, stop - body);
}

}  // namespace

std::string
Artifact::ToString() const
{
    std::ostringstream out;
    out.precision(17);
    out << kHeader << "\n";
    out << "benchmark " << benchmark << "\n";
    out << "threshold " << threshold << "\n";
    EmitSection(out, "rumba_mlp", rumba_mlp);
    EmitSection(out, "npu_mlp", npu_mlp);
    EmitSection(out, "in_norm", in_norm);
    EmitSection(out, "out_norm", out_norm);
    EmitSection(out, "predictor", predictor);
    return out.str();
}

Artifact
Artifact::FromString(const std::string& text)
{
    std::istringstream in(text);
    std::string line;
    std::getline(in, line);
    if (line != kHeader)
        Fatal("not a rumba artifact (bad header)");

    Artifact artifact;
    std::string tag;
    in >> tag >> artifact.benchmark;
    if (tag != "benchmark")
        Fatal("artifact missing benchmark record");
    in >> tag >> artifact.threshold;
    if (tag != "threshold")
        Fatal("artifact missing threshold record");

    artifact.rumba_mlp = ReadSection(text, "rumba_mlp");
    artifact.npu_mlp = ReadSection(text, "npu_mlp");
    artifact.in_norm = ReadSection(text, "in_norm");
    artifact.out_norm = ReadSection(text, "out_norm");
    artifact.predictor = ReadSection(text, "predictor");
    return artifact;
}

bool
Artifact::Save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << ToString();
    return static_cast<bool>(out);
}

Artifact
Artifact::Load(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        Fatal("cannot open artifact '%s'", path.c_str());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return FromString(buffer.str());
}

}  // namespace rumba::core
