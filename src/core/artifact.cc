#include "core/artifact.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace rumba::core {

namespace {

constexpr char kHeaderV1[] = "rumba-artifact v1";
constexpr char kHeaderV2[] = "rumba-artifact v2";
constexpr char kChecksumTag[] = "checksum ";

/** FNV-1a 64-bit over the blob payload (everything after the
 *  checksum line). Not cryptographic — it catches truncation and
 *  bitrot, the storage faults a deployed artifact actually meets. */
uint64_t
Fnv1a64(const char* data, size_t size)
{
    uint64_t hash = 14695981039346656037ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string
HexU64(uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Emit one marker-delimited section. */
void
EmitSection(std::ostream& out, const char* name,
            const std::string& body)
{
    out << "BEGIN " << name << "\n" << body;
    if (!body.empty() && body.back() != '\n')
        out << "\n";
    out << "END " << name << "\n";
}

/** Read the section @p name from @p text into @p body; on failure
 *  fills @p error and returns false. */
bool
TryReadSection(const std::string& text, const std::string& name,
               std::string* body, std::string* error)
{
    const std::string begin = "BEGIN " + name + "\n";
    const std::string end = "END " + name + "\n";
    const size_t start = text.find(begin);
    if (start == std::string::npos) {
        *error = "artifact missing section '" + name + "'";
        return false;
    }
    const size_t body_at = start + begin.size();
    const size_t stop = text.find(end, body_at);
    if (stop == std::string::npos) {
        *error = "artifact section '" + name + "' not terminated";
        return false;
    }
    *body = text.substr(body_at, stop - body_at);
    return true;
}

}  // namespace

std::string
Artifact::ToString() const
{
    std::ostringstream payload;
    payload.precision(17);
    payload << "benchmark " << benchmark << "\n";
    payload << "threshold " << threshold << "\n";
    EmitSection(payload, "rumba_mlp", rumba_mlp);
    EmitSection(payload, "npu_mlp", npu_mlp);
    EmitSection(payload, "in_norm", in_norm);
    EmitSection(payload, "out_norm", out_norm);
    EmitSection(payload, "predictor", predictor);
    if (!compensator.empty())
        EmitSection(payload, "compensator", compensator);
    const std::string body = payload.str();
    return std::string(kHeaderV2) + "\n" + kChecksumTag +
           HexU64(Fnv1a64(body.data(), body.size())) + "\n" + body;
}

Result<Artifact>
Artifact::TryFromString(const std::string& text)
{
    const auto data_loss = [](std::string message) {
        return Status(StatusCode::kDataLoss, std::move(message));
    };

    size_t line_end = text.find('\n');
    if (line_end == std::string::npos)
        return data_loss("not a rumba artifact (bad header)");
    const std::string header = text.substr(0, line_end);
    size_t payload_at = line_end + 1;
    if (header == kHeaderV2) {
        // v2 carries a checksum line over everything below it.
        const size_t sum_end = text.find('\n', payload_at);
        if (sum_end == std::string::npos)
            return data_loss("artifact missing checksum record");
        const std::string sum_line =
            text.substr(payload_at, sum_end - payload_at);
        if (sum_line.compare(0, sizeof(kChecksumTag) - 1,
                             kChecksumTag) != 0) {
            return data_loss("artifact missing checksum record");
        }
        const std::string expected =
            sum_line.substr(sizeof(kChecksumTag) - 1);
        payload_at = sum_end + 1;
        const std::string computed =
            HexU64(Fnv1a64(text.data() + payload_at,
                           text.size() - payload_at));
        if (expected != computed) {
            return data_loss(
                "artifact checksum mismatch (stored " + expected +
                ", computed " + computed +
                "): blob truncated or bit-rotted");
        }
    } else if (header != kHeaderV1) {
        return data_loss("not a rumba artifact (bad header)");
    }
    const std::string payload = text.substr(payload_at);

    Artifact parsed;
    std::istringstream in(payload);
    std::string tag;
    in >> tag >> parsed.benchmark;
    if (tag != "benchmark")
        return data_loss("artifact missing benchmark record");
    in >> tag >> parsed.threshold;
    if (tag != "threshold" || in.fail())
        return data_loss("artifact missing threshold record");

    std::string error;
    if (!TryReadSection(payload, "rumba_mlp", &parsed.rumba_mlp,
                        &error) ||
        !TryReadSection(payload, "npu_mlp", &parsed.npu_mlp, &error) ||
        !TryReadSection(payload, "in_norm", &parsed.in_norm, &error) ||
        !TryReadSection(payload, "out_norm", &parsed.out_norm,
                        &error) ||
        !TryReadSection(payload, "predictor", &parsed.predictor,
                        &error)) {
        return data_loss(std::move(error));
    }
    // Optional section: artifacts exported without a compensator (and
    // every pre-compensation blob) simply lack it.
    if (payload.find("BEGIN compensator\n") != std::string::npos &&
        !TryReadSection(payload, "compensator", &parsed.compensator,
                        &error)) {
        return data_loss(std::move(error));
    }
    return parsed;
}

bool
Artifact::Save(const std::string& path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << ToString();
    return static_cast<bool>(out);
}

Result<Artifact>
Artifact::TryLoad(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return Status(StatusCode::kNotFound,
                      "cannot open artifact '" + path + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return TryFromString(buffer.str());
}

}  // namespace rumba::core
