#include "core/runtime.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "fault/injector.h"
#include "nn/mlp.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/stream.h"
#include "obs/timer.h"
#include "obs/trace.h"

namespace rumba::core {

void
RumbaRuntime::RegisterMetrics()
{
    auto& registry = obs::Registry::Default();
    obs_invocations_ = registry.GetCounter("runtime.invocations");
    obs_elements_ = registry.GetCounter("runtime.elements");
    obs_fixes_ = registry.GetCounter("runtime.fixes");
    obs_drift_alarms_ = registry.GetCounter("drift.alarms");
    obs_non_finite_salvaged_ =
        registry.GetCounter("runtime.non_finite_salvaged");
    obs_breaker_exact_elements_ =
        registry.GetCounter("breaker.exact_elements");
    obs_tier_accept_ = registry.GetCounter("recovery.tier.accept");
    obs_tier_compensate_ =
        registry.GetCounter("recovery.tier.compensate");
    obs_tier_reexecute_ =
        registry.GetCounter("recovery.tier.reexecute");
    obs_output_error_ = registry.GetGauge("runtime.output_error_pct");
    obs_invocation_ns_ = registry.GetHistogram("runtime.invocation_ns");
    obs_verify_ns_ = registry.GetHistogram("runtime.verify_ns");
    obs_calibrate_ns_ = registry.GetHistogram("runtime.calibrate_ns");
}

RumbaRuntime::RumbaRuntime(std::unique_ptr<apps::Benchmark> bench,
                           const RuntimeConfig& config)
    : config_(config),
      pipeline_(std::move(bench), config.pipeline),
      accel_(pipeline_.MakeAccelerator(/*use_rumba_topology=*/true)),
      detector_(pipeline_.TrainPredictor(config.checker),
                config.initial_threshold),
      recovery_(&pipeline_.Bench(), config.recovery_queue_capacity),
      policy_(config.recovery_policy, config.tuner.target_error_pct),
      tuner_(config.tuner, config.initial_threshold),
      system_(config.core, config.energy),
      breaker_(config.breaker)
{
    RUMBA_CHECK(IsPredictorScheme(config.checker));
    RegisterMetrics();
    kernel_ops_ = pipeline_.Bench().ProfileKernel();
    if (config.recovery_policy.compensation)
        InstallCompensator(pipeline_.TrainCompensator());
    if (config.initial_threshold <= 0.0) {
        const Result<double> result =
            CalibrateThreshold(config.tuner.target_error_pct);
        if (!result.ok())
            Fatal("%s", result.status().ToString().c_str());
        const double calibrated = *result;
        detector_.SetThreshold(calibrated);
        tuner_ = OnlineTuner(config.tuner, calibrated);
        // The calibration pass measured the expected fire rate on the
        // training distribution; monitor for departures from it.
        size_t fired = 0;
        for (double e : calibration_scores_)
            fired += e >= calibrated ? 1 : 0;
        DriftMonitor::Options drift_options;
        drift_options.expected_fire_rate =
            static_cast<double>(fired) /
            static_cast<double>(std::max<size_t>(
                1, calibration_scores_.size()));
        drift_ = DriftMonitor(drift_options);
    }
    obs::SnapshotStreamer::AcquireFromEnv();
}

RumbaRuntime::RumbaRuntime(const Artifact& artifact,
                           const RuntimeConfig& config)
    : config_(config),
      pipeline_(apps::MakeBenchmark(artifact.benchmark), config.pipeline,
                artifact),
      accel_(pipeline_.MakeAccelerator(/*use_rumba_topology=*/true)),
      detector_(predict::DeserializePredictor(artifact.predictor),
                artifact.threshold),
      recovery_(&pipeline_.Bench(), config.recovery_queue_capacity),
      policy_(config.recovery_policy, config.tuner.target_error_pct),
      tuner_(config.tuner, artifact.threshold),
      system_(config.core, config.energy),
      breaker_(config.breaker)
{
    RegisterMetrics();
    kernel_ops_ = pipeline_.Bench().ProfileKernel();
    // Restore the compensation model whenever the artifact carries
    // one (not just when the compensate tier is on): the serving
    // engine's compensate-only shedding rung needs it regardless.
    if (!artifact.compensator.empty()) {
        Result<predict::Compensator> compensator =
            predict::Compensator::TryDeserialize(artifact.compensator);
        if (!compensator.ok())
            Fatal("%s", compensator.status().ToString().c_str());
        InstallCompensator(*std::move(compensator));
    }
    obs::SnapshotStreamer::AcquireFromEnv();
}

void
RumbaRuntime::InstallCompensator(predict::Compensator compensator)
{
    RUMBA_CHECK(compensator.Trained());
    RUMBA_CHECK(compensator.InputArity() ==
                pipeline_.Bench().NumInputs() +
                    pipeline_.Bench().NumOutputs());
    RUMBA_CHECK(compensator.OutputArity() ==
                pipeline_.Bench().NumOutputs());
    compensator_.emplace(std::move(compensator));
    recovery_.SetCompensator(
        [this](const double* raw_in, double* raw_out) {
            // Feature vector: normalized inputs, then the element's
            // normalized approximate outputs (see
            // predict/compensator.h). The predicted signed residual
            // comes back in the NN domain; add it to the normalized
            // approximate outputs, denormalize, and overwrite the
            // element only once everything is finite.
            pipeline_.NormalizeInput(raw_in, &scratch_comp_in_);
            pipeline_.NormalizeOutput(raw_out, &scratch_comp_out_);
            scratch_comp_in_.insert(scratch_comp_in_.end(),
                                    scratch_comp_out_.begin(),
                                    scratch_comp_out_.end());
            if (!compensator_->Predict(scratch_comp_in_,
                                       &scratch_comp_pred_))
                return false;
            for (size_t o = 0; o < scratch_comp_pred_.size(); ++o)
                scratch_comp_pred_[o] += scratch_comp_out_[o];
            pipeline_.DenormalizeOutput(scratch_comp_pred_,
                                        &scratch_comp_out_);
            for (double v : scratch_comp_out_) {
                if (!std::isfinite(v))
                    return false;
            }
            std::copy(scratch_comp_out_.begin(),
                      scratch_comp_out_.end(), raw_out);
            return true;
        });
}

RumbaRuntime::~RumbaRuntime()
{
    obs::SnapshotStreamer::Release();
}

Artifact
RumbaRuntime::ExportArtifact() const
{
    return pipeline_.ExportArtifact(
        detector_.Predictor(), tuner_.Threshold(),
        compensator_.has_value() ? &*compensator_ : nullptr);
}

Result<double>
RumbaRuntime::CalibrateThreshold(double target_error_pct)
{
    // Replay the training elements through the accelerator and the
    // checker, exactly as the online system would see them, then pick
    // the smallest fix set (largest threshold) whose residual error
    // meets the target on the training data.
    const apps::Benchmark& app = pipeline_.Bench();
    const auto& train = pipeline_.TrainInputs();
    const auto& true_errors = pipeline_.TrainErrors();
    if (train.empty() || true_errors.size() != train.size()) {
        return Status(
            StatusCode::kFailedPrecondition,
            "threshold calibration needs a non-empty training set "
            "with per-element errors (" +
                std::to_string(train.size()) + " inputs, " +
                std::to_string(true_errors.size()) +
                " errors); set initial_threshold > 0 to skip "
                "calibration");
    }

    const obs::ScopedTimer timer(obs_calibrate_ns_);
    const obs::Span span("runtime.calibrate");
    obs::Registry::Default()
        .GetCounter("runtime.calibrations")
        ->Increment();
    detector_.Reset();
    std::vector<double> scores(train.size());
    for (size_t i = 0; i < train.size(); ++i) {
        const auto norm_in = pipeline_.NormalizeInput(train[i]);
        const auto norm_out = accel_.Invoke(norm_in);
        const auto raw_out = pipeline_.DenormalizeOutput(norm_out);
        scores[i] = detector_.Check(norm_in, raw_out).predicted_error;
    }
    detector_.Reset();
    calibration_scores_ = scores;

    // Candidate thresholds: the observed scores, descending.
    std::vector<size_t> order(scores.size());
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return scores[a] > scores[b];
    });

    // Residual error is monotone in the number of fixes along this
    // order, so binary-search the smallest sufficient fix count.
    auto error_at = [&](size_t k) {
        std::vector<double> residual = true_errors;
        for (size_t i = 0; i < k; ++i)
            residual[order[i]] = 0.0;
        return app.AggregateError(residual);
    };
    if (error_at(0) <= target_error_pct) {
        return std::max(scores[order.front()] * 2.0,
                        config_.tuner.min_threshold);
    }
    if (error_at(order.size()) > target_error_pct)
        return config_.tuner.min_threshold;  // even fixing all is short.
    size_t lo = 0, hi = order.size();  // lo insufficient, hi sufficient.
    while (lo + 1 < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (error_at(mid) <= target_error_pct)
            hi = mid;
        else
            lo = mid;
    }
    return std::max(scores[order[hi - 1]], config_.tuner.min_threshold);
}

Result<std::unique_ptr<RumbaRuntime>>
RumbaRuntime::FromArtifact(const Artifact& artifact,
                           const RuntimeConfig& config)
{
    auto bench = apps::TryMakeBenchmark(artifact.benchmark);
    if (bench == nullptr) {
        return Status(StatusCode::kNotFound,
                      "artifact names unknown benchmark '" +
                          artifact.benchmark + "'");
    }
    if (predict::TryDeserializePredictor(artifact.predictor) ==
        nullptr) {
        return Status(StatusCode::kDataLoss,
                      "artifact carries an unrecognized checker blob");
    }
    const nn::Mlp probe = nn::Mlp::Deserialize(artifact.rumba_mlp);
    if (probe.GetTopology().NumInputs() != bench->NumInputs() ||
        probe.GetTopology().NumOutputs() != bench->NumOutputs()) {
        return Status(
            StatusCode::kFailedPrecondition,
            "artifact network arity does not match kernel '" +
                artifact.benchmark + "'");
    }
    if (!std::isfinite(artifact.threshold)) {
        return Status(StatusCode::kFailedPrecondition,
                      "artifact threshold is not finite");
    }
    // External configuration: report bad knobs instead of dying in
    // the constructors' checked-fatal paths.
    if (Status status = ValidateTunerConfig(config.tuner); !status.ok())
        return status;
    if (Status status =
            ValidateRecoveryPolicyConfig(config.recovery_policy);
        !status.ok()) {
        return status;
    }
    if (!artifact.compensator.empty()) {
        const Result<predict::Compensator> compensator =
            predict::Compensator::TryDeserialize(artifact.compensator);
        if (!compensator.ok())
            return compensator.status();
        if (compensator->InputArity() !=
                bench->NumInputs() + bench->NumOutputs() ||
            compensator->OutputArity() != bench->NumOutputs()) {
            return Status(
                StatusCode::kFailedPrecondition,
                "artifact compensator arity does not match kernel '" +
                    artifact.benchmark + "'");
        }
    }
    return std::unique_ptr<RumbaRuntime>(
        new RumbaRuntime(artifact, config));
}

const char*
DegradeModeName(DegradeMode mode)
{
    switch (mode) {
      case DegradeMode::kNone:
        return "none";
      case DegradeMode::kCompensateOnly:
        return "compensate-only";
      case DegradeMode::kSkipRecovery:
        return "skip-recovery";
      case DegradeMode::kSkipCheck:
        return "skip-check";
    }
    return "unknown";
}

InvocationReport
RumbaRuntime::ProcessInvocation(const BatchView& raw_inputs,
                                double* outputs, AuditCapture* capture,
                                DegradeMode degrade)
{
    RUMBA_CHECK(outputs != nullptr);
    RUMBA_CHECK(!raw_inputs.empty());
    RUMBA_CHECK(raw_inputs.width() == pipeline_.Bench().NumInputs());
    // The overload rungs (serve/admission.h): compensate-only keeps
    // the checker and the cheap compensate tier but never re-executes
    // (degenerates to skip-recovery without a deployed compensator);
    // skip-recovery keeps the checker but never queues its verdicts;
    // skip-check bypasses the detector entirely. All of them skip the
    // verify pass (the auditor owns degraded ground truth) and give
    // no tuner/drift/breaker feedback.
    const bool degraded = degrade != DegradeMode::kNone;
    const bool run_check = degrade != DegradeMode::kSkipCheck;
    const bool compensate_only =
        degrade == DegradeMode::kCompensateOnly &&
        recovery_.HasCompensator();
    const bool run_recovery =
        degrade == DegradeMode::kNone || compensate_only;
    const obs::ScopedTimer invocation_timer(obs_invocation_ns_);
    const obs::Span invocation_span("runtime.invocation");
    const apps::Benchmark& app = pipeline_.Bench();
    const size_t n = raw_inputs.count();
    const size_t out_w = app.NumOutputs();

    if (capture != nullptr) {
        capture->count = n;
        capture->out_width = out_w;
        capture->approx_outputs.assign(n * out_w, 0.0);
        capture->predicted_error.assign(n, 0.0);
        capture->fired.assign(n, 0);
        capture->fixed.assign(n, 0);
        capture->exact_path.assign(n, 0);
    }

    detector_.SetThreshold(tuner_.Threshold());
    detector_.Reset();

    InvocationReport report;
    report.elements = n;
    report.threshold_used = detector_.Threshold();

    // The breaker decides how much of the batch may ride the
    // accelerator: all of it while closed, a canary slice while
    // half-open, none while open (exact-only degradation).
    const BreakerState state_before = breaker_.State();
    const size_t approx_n = breaker_.ApproxBudget(n);

    fault::FaultInjector& injector = fault::FaultInjector::Default();
    const bool inject_mispredict =
        injector.Armed() &&
        injector.Enabled(fault::FaultClass::kCheckerMispredict);
    const bool inject_stall =
        injector.Armed() &&
        injector.Enabled(fault::FaultClass::kQueueStall);

    std::vector<char>& fixed = scratch_fixed_;
    fixed.assign(n, 0);
    DrainStats drain_stats;
    double unfixed_predicted_sum = 0.0;
    size_t unfixed_count = 0;
    size_t fires = 0;
    size_t queue_full_stalls = 0;
    size_t queue_drops = 0;
    size_t non_finite_seen = 0;
    // CPU attribution rides on the wall-clock stage timings: the
    // check/stream wall ratio apportions the stream's thread-CPU
    // between device and checker (see InvocationCpuTimings).
    const bool cpu_timed = config_.cpu_attribution;
    const bool timed = config_.stage_timings || cpu_timed;
    uint64_t stage_start = 0;
    uint64_t check_ns = 0;
    size_t checks_timed = 0;
    int64_t stream_cpu_total = 0;   ///< whole stream loop, drains incl.
    int64_t in_loop_recover_cpu = 0;  ///< backpressure drains in-loop.

    {
        const obs::Span stream_span("runtime.accel_stream");
        const obs::StageScope device_scope(
            obs::ProfileStage::kDevice, cpu_timed, &stream_cpu_total);
        if (timed)
            stage_start = obs::NowNs();
        std::vector<double>& norm_in = scratch_norm_in_;
        std::vector<double>& norm_out = scratch_norm_out_;
        std::vector<double>& raw_out = scratch_raw_out_;
        for (size_t i = 0; i < approx_n; ++i) {
            pipeline_.NormalizeInput(raw_inputs[i].data(), &norm_in);
            accel_.Invoke(norm_in, &norm_out);
            pipeline_.DenormalizeOutput(norm_out, &raw_out);
            std::copy(raw_out.begin(), raw_out.end(),
                      outputs + i * out_w);
            if (capture != nullptr) {
                std::copy(raw_out.begin(), raw_out.end(),
                          capture->approx_outputs.begin() +
                              static_cast<ptrdiff_t>(i * out_w));
            }

            if (!run_check)
                continue;  // skip-check rung: raw approximate output.

            // Strided check timing: clocking every element doubles
            // the clock-read traffic of the hot loop, so time one
            // check in eight and scale below. The estimate is for
            // trace spans, not for gating.
            const uint64_t check_start =
                timed && (i & 7u) == 0 ? obs::NowNs() : 0;
            const CheckResult check = [&] {
                const obs::StageScope check_tag(
                    obs::ProfileStage::kPredictCheck);
                return detector_.Check(norm_in, raw_out);
            }();
            if (check_start != 0) {
                check_ns += obs::NowNs() - check_start;
                ++checks_timed;
            }
            if (check.non_finite)
                ++non_finite_seen;
            bool fired = check.fired;
            // Checker-mispredict fault: flip the verdict. Non-finite
            // fires are never flipped — that guard is unconditional.
            if (inject_mispredict && !check.non_finite &&
                injector.ShouldInject(
                    fault::FaultClass::kCheckerMispredict)) {
                fired = !fired;
            }
            if (capture != nullptr) {
                capture->predicted_error[i] = check.predicted_error;
                capture->fired[i] = fired ? 1 : 0;
            }
            if (fired)
                ++fires;
            if (fired && run_recovery) {
                // Tier the fired check. On the compensate-only
                // shedding rung, finite re-execute verdicts are
                // demoted to the cheap tier — that is the rung's
                // point; non-finite garbage still re-executes (no
                // mode may deliver NaN/Inf).
                RecoveryDecision decision = policy_.Decide(
                    i, check.predicted_error, check.non_finite,
                    report.threshold_used);
                if (compensate_only && !check.non_finite &&
                    std::isfinite(check.predicted_error) &&
                    decision.tier == RecoveryTier::kReexecute) {
                    decision.tier = RecoveryTier::kCompensate;
                }
                if (recovery_.Queue().Full()) {
                    // Queue-stall fault: the CPU side is unavailable,
                    // so no backpressure drain can happen and the
                    // push below overflows into drop-and-count.
                    if (inject_stall &&
                        injector.ShouldInject(
                            fault::FaultClass::kQueueStall)) {
                        // stalled: fall through to the failing Push.
                    } else {
                        // Backpressure: drain the queue when full, as
                        // the pipelined CPU side would.
                        const obs::Span stall_span(
                            "recovery.queue_backpressure");
                        const obs::StageScope recover_scope(
                            obs::ProfileStage::kRecover, cpu_timed,
                            &in_loop_recover_cpu);
                        ++queue_full_stalls;
                        recovery_.RecordQueueFullStall();
                        recovery_.Drain(raw_inputs, outputs, out_w,
                                        &fixed, &drain_stats);
                    }
                }
                if (!recovery_.Queue().Push(decision)) {
                    recovery_.RecordQueueDrop();
                    ++queue_drops;
                }
            } else {
                // Unfired — or fired on the skip-recovery rung, where
                // the verdict is recorded but the element stays
                // approximate and its predicted error stays in the
                // estimate.
                unfixed_predicted_sum +=
                    std::max(0.0, check.predicted_error);
                ++unfixed_count;
            }
        }
        if (timed) {
            report.timings.accel_stream_ns =
                obs::NowNs() - stage_start;
            // Scale the 1-in-8 sample up to the full stream, clamped
            // so the check slice never exceeds its containing stage.
            report.timings.check_ns =
                checks_timed == 0
                    ? 0
                    : std::min(check_ns * approx_n / checks_timed,
                               report.timings.accel_stream_ns);
        }
    }
    if (cpu_timed) {
        // Split the stream's CPU: backpressure drains re-execute on
        // the CPU and belong to recover; the checker's slice is
        // apportioned by the wall-clock check/stream ratio.
        report.cpu.stream_cpu_ns =
            std::max<int64_t>(0, stream_cpu_total - in_loop_recover_cpu);
        report.cpu.recover_cpu_ns += in_loop_recover_cpu;
        if (report.timings.accel_stream_ns > 0) {
            const double check_ratio =
                static_cast<double>(report.timings.check_ns) /
                static_cast<double>(report.timings.accel_stream_ns);
            report.cpu.check_cpu_ns = static_cast<int64_t>(
                static_cast<double>(report.cpu.stream_cpu_ns) *
                std::min(1.0, check_ratio));
        }
    }
    if (approx_n < n) {
        // Breaker-degraded tail: exact CPU execution (paper-faithful
        // recovery of everything), bypassing accelerator and checker.
        const obs::Span exact_span("runtime.breaker_exact");
        const obs::StageScope exact_scope(obs::ProfileStage::kRecover,
                                          cpu_timed,
                                          &report.cpu.exact_cpu_ns);
        if (timed)
            stage_start = obs::NowNs();
        for (size_t i = approx_n; i < n; ++i) {
            app.RunExact(raw_inputs[i].data(), outputs + i * out_w);
            fixed[i] = 1;
            if (capture != nullptr) {
                std::copy(outputs + i * out_w,
                          outputs + (i + 1) * out_w,
                          capture->approx_outputs.begin() +
                              static_cast<ptrdiff_t>(i * out_w));
                capture->exact_path[i] = 1;
            }
        }
        if (timed)
            report.timings.exact_ns = obs::NowNs() - stage_start;
        obs_breaker_exact_elements_->Increment(n - approx_n);
    }
    {
        const obs::Span merge_span("runtime.merge");
        const obs::StageScope recover_scope(
            obs::ProfileStage::kRecover, cpu_timed,
            &report.cpu.recover_cpu_ns);
        if (timed)
            stage_start = obs::NowNs();
        if (run_recovery) {
            recovery_.Drain(raw_inputs, outputs, out_w, &fixed,
                            &drain_stats);
        }
        if (timed)
            report.timings.recover_ns = obs::NowNs() - stage_start;
    }
    // Non-finite salvage: a NaN/Inf approximate output must never be
    // delivered. The detector's guard queues them, but an overflowed
    // (dropped) entry could still slip through — recover it here,
    // unconditionally.
    size_t salvaged = 0;
    {
        const obs::StageScope salvage_scope(
            obs::ProfileStage::kRecover, cpu_timed,
            &report.cpu.recover_cpu_ns);
        for (size_t i = 0; i < approx_n; ++i) {
            if (fixed[i])
                continue;
            bool finite = true;
            for (size_t o = 0; o < out_w; ++o) {
                if (!std::isfinite(outputs[i * out_w + o])) {
                    finite = false;
                    break;
                }
            }
            if (finite)
                continue;
            app.RunExact(raw_inputs[i].data(), outputs + i * out_w);
            fixed[i] = 1;
            ++salvaged;
        }
    }
    if (salvaged > 0)
        obs_non_finite_salvaged_->Increment(salvaged);
    for (const char f : fixed) {
        if (f == kFixedExact)
            ++report.tier_reexecuted;
        else if (f == kFixedCompensated)
            ++report.tier_compensated;
    }
    report.tier_accepted =
        n - report.tier_reexecuted - report.tier_compensated;
    report.fixes = report.tier_reexecuted + report.tier_compensated;
    if (capture != nullptr)
        capture->fixed.assign(fixed.begin(), fixed.end());
    if (timed)
        report.timings.compensate_ns = drain_stats.compensate_ns;
    if (cpu_timed && drain_stats.compensate_ns > 0) {
        // The drains' CPU was all attributed to recover; carve the
        // compensate tier's share out by the measured per-tier wall
        // ratio (the thread clock is not read per queue entry).
        const double frac =
            static_cast<double>(drain_stats.compensate_ns) /
            static_cast<double>(drain_stats.compensate_ns +
                                drain_stats.reexec_ns);
        const int64_t comp_cpu = static_cast<int64_t>(
            static_cast<double>(report.cpu.recover_cpu_ns) * frac);
        report.cpu.compensate_cpu_ns = comp_cpu;
        report.cpu.recover_cpu_ns -= comp_cpu;
    }

    // True residual error (the runtime can verify because the exact
    // kernel is available; a production deployment would not).
    std::vector<double>& residual = scratch_residual_;
    residual.assign(n, 0.0);
    {
        const obs::ScopedTimer verify_timer(obs_verify_ns_);
        const obs::Span verify_span("runtime.verify");
        const obs::StageScope verify_scope(
            obs::ProfileStage::kVerify, cpu_timed,
            &report.cpu.verify_cpu_ns);
        if (timed)
            stage_start = obs::NowNs();
        std::vector<double>& exact = scratch_raw_out_;
        std::vector<double>& approx = scratch_norm_out_;
        exact.assign(out_w, 0.0);
        // Degraded invocations skip verification entirely — it is the
        // single most expensive stage (exact re-execution per unfixed
        // element), and shedding it is the point of the rung. Their
        // ground truth comes from the auditor's forced samples.
        // Exactly re-executed elements have zero residual by
        // construction; *compensated* elements do not — their true
        // residual is measured here, so compensation shows up in the
        // verified output error and feeds the policy's boundary
        // tuning below.
        for (size_t i = 0; !degraded && i < n; ++i) {
            if (fixed[i] == kFixedExact)
                continue;
            app.RunExact(raw_inputs[i].data(), exact.data());
            approx.assign(outputs + i * out_w,
                          outputs + (i + 1) * out_w);
            residual[i] = app.ElementError(exact, approx);
        }
        if (timed)
            report.timings.verify_ns = obs::NowNs() - stage_start;
    }
    report.output_error_pct = app.AggregateError(residual);
    if (!degraded && report.tier_compensated > 0) {
        // Verified ground truth for the compensate tier: its mean
        // true residual drives the policy's re-execute boundary (the
        // audit path feeds the same loop for degraded invocations).
        double comp_sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            if (fixed[i] == kFixedCompensated)
                comp_sum += residual[i];
        }
        policy_.OnCompensatedGroundTruth(
            100.0 * comp_sum /
                static_cast<double>(report.tier_compensated),
            report.tier_compensated);
    }
    report.estimated_error_pct =
        unfixed_count == 0
            ? 0.0
            : 100.0 * unfixed_predicted_sum /
                  static_cast<double>(n);

    // ---- Modeled costs and tuner feedback ----------------------------
    sim::RegionProfile region;
    region.cpu_ops_per_iter = kernel_ops_;
    region.iterations = n;
    region.region_fraction = app.RegionFraction();

    sim::AcceleratorProfile accel_profile;
    accel_profile.cycles_per_invocation = accel_.CyclesPerInvocation();
    accel_profile.frequency_ghz = config_.pipeline.npu.frequency_ghz;
    const auto topo_macs =
        pipeline_.RumbaMlp().GetTopology().MacsPerInvocation();
    accel_profile.macs_per_invocation = static_cast<double>(topo_macs);
    accel_profile.luts_per_invocation = static_cast<double>(
        pipeline_.RumbaMlp().GetTopology().NumNeurons());
    accel_profile.queue_words_per_invocation =
        static_cast<double>(app.NumInputs() + app.NumOutputs()) + 1.0;

    const sim::CheckerCost checker = detector_.CostPerCheck();
    // The system model charges exact CPU re-execution per fix;
    // compensated iterations cost a handful of MACs, not a kernel
    // re-run, so only the re-execute tier counts here.
    report.costs = system_.Evaluate(region, accel_profile,
                                    run_check ? &checker : nullptr,
                                    report.tier_reexecuted);

    const size_t adjustments_before = tuner_.Adjustments();
    if (!degraded && approx_n == n) {
        // Only full-approximate invocations feed the tuner: a
        // breaker-degraded batch would read as an artificially low
        // error and pull the threshold the wrong way.
        InvocationFeedback feedback;
        feedback.elements = n;
        // Energy mode budgets *re-executions* (the expensive tier).
        feedback.fixes = report.tier_reexecuted;
        feedback.estimated_error_pct = report.estimated_error_pct;
        feedback.cpu_busy_ratio =
            report.costs.npu_ns > 0.0
                ? report.costs.recovery_ns / report.costs.npu_ns
                : 0.0;
        tuner_.EndInvocation(feedback);
    }

    if (!degraded) {
        // Fire rate over the accelerator-served slice only (Observe
        // ignores zero-element rounds, i.e. an open breaker).
        drift_.Observe(fires, approx_n);
        report.drift_detected = drift_.DriftDetected();
        if (report.drift_detected)
            obs_drift_alarms_->Increment();

        // Breaker health covers only the accelerator-served slice;
        // the exact tail is correct by construction. Degraded
        // invocations feed neither drift nor breaker: their reduced
        // service is deliberate, not accelerator sickness.
        BreakerHealth health;
        health.approx_elements = approx_n;
        health.fires = fires;
        health.non_finite = non_finite_seen;
        health.queue_drops = queue_drops;
        health.drift = report.drift_detected;
        if (approx_n > 0) {
            const std::vector<double> approx_residual(
                residual.begin(),
                residual.begin() + static_cast<ptrdiff_t>(approx_n));
            health.output_error_pct =
                app.AggregateError(approx_residual);
        }
        health.target_error_pct = config_.tuner.target_error_pct;
        breaker_.OnInvocation(health);
        if (state_before == BreakerState::kHalfOpen &&
            breaker_.State() == BreakerState::kClosed) {
            // Quality recovered: the drift baseline restarts from the
            // calibrated expectation instead of the outage's fire
            // storm.
            drift_.ReArm();
        }
    }
    report.queue_drops = queue_drops;
    report.non_finite_outputs = non_finite_seen;
    report.exact_elements = n - approx_n;
    report.breaker_state = breaker_.State();
    report.degrade = degrade;

    ++invocations_;
    ++summary_.invocations;
    summary_.elements += n;
    summary_.fixes += report.fixes;
    summary_.error_weighted_sum +=
        report.output_error_pct * static_cast<double>(n);
    summary_.baseline_app_ns += report.costs.baseline_app_ns;
    summary_.baseline_app_nj += report.costs.baseline_app_nj;
    summary_.scheme_app_ns += report.costs.scheme_app_ns;
    summary_.scheme_app_nj += report.costs.scheme_app_nj;

    obs_invocations_->Increment();
    obs_elements_->Increment(n);
    obs_fixes_->Increment(report.fixes);
    obs_tier_accept_->Increment(report.tier_accepted);
    obs_tier_compensate_->Increment(report.tier_compensated);
    obs_tier_reexecute_->Increment(report.tier_reexecuted);
    if (!degraded)  // degraded rounds skip verify: no true error.
        obs_output_error_->Set(report.output_error_pct);

    obs::TraceEvent event;
    event.invocation = invocations_ - 1;
    event.elements = n;
    event.threshold = report.threshold_used;
    event.fires = fires;
    event.fixes = report.fixes;
    event.queue_full_stalls = queue_full_stalls;
    event.queue_drops = queue_drops;
    event.non_finite = non_finite_seen;
    event.exact_elements = report.exact_elements;
    event.tuner_adjustments = tuner_.Adjustments() - adjustments_before;
    event.output_error_pct = report.output_error_pct;
    event.estimated_error_pct = report.estimated_error_pct;
    event.drift = report.drift_detected;
    event.breaker_state =
        static_cast<uint32_t>(report.breaker_state);
    obs::TraceRing::Default().Record(event);
    return report;
}

InvocationReport
RumbaRuntime::ProcessInvocation(
    const std::vector<std::vector<double>>& raw_inputs,
    std::vector<std::vector<double>>* outputs)
{
    RUMBA_CHECK(outputs != nullptr);
    const std::vector<double> flat = FlattenBatch(raw_inputs);
    const size_t in_w = pipeline_.Bench().NumInputs();
    const size_t out_w = pipeline_.Bench().NumOutputs();
    std::vector<double> flat_out(raw_inputs.size() * out_w, 0.0);
    const InvocationReport report = ProcessInvocation(
        BatchView(flat, in_w), flat_out.data());
    outputs->assign(raw_inputs.size(), {});
    for (size_t i = 0; i < raw_inputs.size(); ++i) {
        (*outputs)[i].assign(
            flat_out.begin() + static_cast<ptrdiff_t>(i * out_w),
            flat_out.begin() + static_cast<ptrdiff_t>((i + 1) * out_w));
    }
    return report;
}

}  // namespace rumba::core
