#ifndef RUMBA_NPU_NPU_H_
#define RUMBA_NPU_NPU_H_

/**
 * @file
 * The approximate accelerator: an 8-PE NPU-style neural unit. It is
 * configured once per kernel with a trained MLP's weights (quantized
 * into PE weight buffers) and then invoked once per loop iteration of
 * the approximated region, consuming inputs from the input queue and
 * producing approximate outputs into the output queue.
 */

#include <cstddef>
#include <vector>

#include "nn/mlp.h"
#include "npu/fixed_point.h"
#include "npu/schedule.h"
#include "npu/sigmoid_lut.h"

namespace rumba::obs {
class Counter;
class Histogram;
}  // namespace rumba::obs

namespace rumba::npu {

/** Structural configuration of the accelerator. */
struct NpuConfig {
    size_t num_pes = 8;          ///< processing elements.
    FixedFormat format;          ///< datapath fixed-point format.
    size_t lut_entries = 2048;   ///< activation table size.
    double lut_range = 8.0;      ///< activation table input coverage.
    double frequency_ghz = 2.0;  ///< accelerator clock; the NPU sits
                                 ///< on-chip and clocks with the core.
};

/** Event counters exposed to the energy/timing model. */
struct NpuStats {
    size_t invocations = 0;   ///< network evaluations performed.
    size_t macs = 0;          ///< fixed-point multiply-accumulates.
    size_t lut_lookups = 0;   ///< activation-table reads.
    size_t cycles = 0;        ///< busy cycles (schedule-derived).
    size_t input_words = 0;   ///< words consumed from the input queue.
    size_t output_words = 0;  ///< words pushed to the output queue.
    size_t config_words = 0;  ///< words streamed via the config queue.
};

/** The accelerator model. */
class Npu {
  public:
    /** Build an unconfigured accelerator. */
    explicit Npu(const NpuConfig& config = NpuConfig());

    /**
     * Load a trained network: quantizes weights into the PE weight
     * buffers and compiles the static schedule. Counts config-queue
     * traffic. May be called again to re-target the accelerator.
     */
    void Configure(const nn::Mlp& mlp);

    /** True once Configure() has run. */
    bool Configured() const { return !layers_.empty(); }

    /**
     * Evaluate the network on one iteration's inputs using the
     * fixed-point datapath. Input values are expected in the
     * normalized domain the network was trained on.
     */
    std::vector<double> Invoke(const std::vector<double>& input);

    /**
     * Invoke() into a caller-owned output vector (hot-path form: the
     * datapath reuses internal scratch and @p output keeps its
     * capacity across calls, so a steady-state invocation performs no
     * heap allocation).
     */
    void Invoke(const std::vector<double>& input,
                std::vector<double>* output);

    /** Latency of one invocation in accelerator cycles. */
    size_t CyclesPerInvocation() const { return schedule_.total_cycles; }

    /** Latency of one invocation in nanoseconds. */
    double InvocationLatencyNs() const;

    /** The compiled schedule (inspection/tests). */
    const Schedule& GetSchedule() const { return schedule_; }

    /** Event counters accumulated since construction/ResetStats(). */
    const NpuStats& Stats() const { return stats_; }

    /** Clear the event counters (configuration traffic included). */
    void ResetStats() { stats_ = NpuStats(); }

    /** Structural configuration. */
    const NpuConfig& Config() const { return config_; }

    /** Input arity of the loaded network. */
    size_t NumInputs() const;

    /** Output arity of the loaded network. */
    size_t NumOutputs() const;

  private:
    /** Quantized mirror of one nn::Layer. */
    struct QuantLayer {
        size_t in = 0;
        size_t out = 0;
        nn::Activation act = nn::Activation::kSigmoid;
        std::vector<int16_t> weights;  ///< [out][in + 1], bias last.
    };

    NpuConfig config_;
    std::vector<QuantLayer> layers_;
    nn::Topology topology_;
    Schedule schedule_;
    SigmoidLut sigmoid_lut_;
    SigmoidLut tanh_lut_;
    NpuStats stats_;
    /** Datapath scratch reused across invocations (see Invoke). */
    std::vector<int16_t> scratch_current_;
    std::vector<int16_t> scratch_next_;
    /** Process-wide telemetry (obs/metrics.h): invocation count and
     *  per-invoke wall-clock latency. */
    obs::Counter* obs_invocations_;
    obs::Histogram* obs_invoke_ns_;
};

}  // namespace rumba::npu

#endif  // RUMBA_NPU_NPU_H_
