#include "npu/npu.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::npu {

Npu::Npu(const NpuConfig& config)
    : config_(config),
      sigmoid_lut_(nn::Activation::kSigmoid, config.lut_entries,
                   config.lut_range, config.format),
      tanh_lut_(nn::Activation::kTanh, config.lut_entries, config.lut_range,
                config.format),
      obs_invocations_(
          obs::Registry::Default().GetCounter("npu.invocations")),
      obs_invoke_ns_(
          obs::Registry::Default().GetHistogram("npu.invoke_ns"))
{
    RUMBA_CHECK(config.num_pes > 0);
}

void
Npu::Configure(const nn::Mlp& mlp)
{
    layers_.clear();
    topology_ = mlp.GetTopology();
    for (const auto& layer : mlp.Layers()) {
        QuantLayer q;
        q.in = layer.in;
        q.out = layer.out;
        q.act = layer.act;
        q.weights.reserve(layer.weights.size());
        for (double w : layer.weights)
            q.weights.push_back(config_.format.Quantize(w));
        stats_.config_words += q.weights.size();
        layers_.push_back(std::move(q));
    }
    schedule_ = BuildSchedule(topology_, config_.num_pes);
}

std::vector<double>
Npu::Invoke(const std::vector<double>& input)
{
    RUMBA_CHECK(Configured());
    RUMBA_CHECK(input.size() == topology_.NumInputs());
    const obs::ScopedTimer timer(obs_invoke_ns_);
    const obs::Span span("npu.invoke");
    obs_invocations_->Increment();

    // Stream inputs in through the input queue, quantizing at the
    // interface.
    std::vector<int16_t> current;
    current.reserve(input.size());
    for (double v : input)
        current.push_back(config_.format.Quantize(v));
    stats_.input_words += input.size();

    const int16_t one = config_.format.Quantize(1.0);
    std::vector<int16_t> next;
    for (const auto& layer : layers_) {
        next.assign(layer.out, 0);
        for (size_t n = 0; n < layer.out; ++n) {
            MacAccumulator acc;
            const size_t row = n * (layer.in + 1);
            for (size_t i = 0; i < layer.in; ++i)
                acc.Mac(layer.weights[row + i], current[i]);
            acc.Mac(layer.weights[row + layer.in], one);
            stats_.macs += layer.in + 1;
            const int16_t pre = acc.Reduce(config_.format);
            switch (layer.act) {
              case nn::Activation::kSigmoid:
                next[n] = sigmoid_lut_.Lookup(pre);
                ++stats_.lut_lookups;
                break;
              case nn::Activation::kTanh:
                next[n] = tanh_lut_.Lookup(pre);
                ++stats_.lut_lookups;
                break;
              case nn::Activation::kLinear:
                next[n] = pre;
                break;
            }
        }
        current.swap(next);
    }

    stats_.output_words += current.size();
    stats_.cycles += schedule_.total_cycles;
    ++stats_.invocations;

    std::vector<double> out;
    out.reserve(current.size());
    for (int16_t q : current)
        out.push_back(config_.format.Dequantize(q));
    return out;
}

double
Npu::InvocationLatencyNs() const
{
    RUMBA_CHECK(Configured());
    return static_cast<double>(schedule_.total_cycles) /
           config_.frequency_ghz;
}

size_t
Npu::NumInputs() const
{
    RUMBA_CHECK(Configured());
    return topology_.NumInputs();
}

size_t
Npu::NumOutputs() const
{
    RUMBA_CHECK(Configured());
    return topology_.NumOutputs();
}

}  // namespace rumba::npu
