#include "npu/npu.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "fault/injector.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace rumba::npu {

namespace {

/**
 * Flip one injector-chosen bit in every armed entry of @p lut —
 * models single-event upsets in the activation-table SRAM. Runs at
 * Configure() time; the corruption persists for the accelerator's
 * lifetime, exactly like a real stuck SRAM cell.
 */
size_t
CorruptLut(SigmoidLut* lut, fault::FaultInjector* injector)
{
    size_t corrupted = 0;
    for (size_t i = 0; i < lut->Entries(); ++i) {
        if (!injector->ShouldInject(fault::FaultClass::kNpuLutCorrupt))
            continue;
        const int16_t word = lut->RawEntry(i);
        lut->SetRawEntry(
            i, static_cast<int16_t>(
                   word ^ static_cast<int16_t>(
                              1 << (injector->Draw(
                                        fault::FaultClass::kNpuLutCorrupt) &
                                    15))));
        ++corrupted;
    }
    return corrupted;
}

}  // namespace

Npu::Npu(const NpuConfig& config)
    : config_(config),
      sigmoid_lut_(nn::Activation::kSigmoid, config.lut_entries,
                   config.lut_range, config.format),
      tanh_lut_(nn::Activation::kTanh, config.lut_entries, config.lut_range,
                config.format),
      obs_invocations_(
          obs::Registry::Default().GetCounter("npu.invocations")),
      obs_invoke_ns_(
          obs::Registry::Default().GetHistogram("npu.invoke_ns"))
{
    RUMBA_CHECK(config.num_pes > 0);
}

void
Npu::Configure(const nn::Mlp& mlp)
{
    layers_.clear();
    topology_ = mlp.GetTopology();
    for (const auto& layer : mlp.Layers()) {
        QuantLayer q;
        q.in = layer.in;
        q.out = layer.out;
        q.act = layer.act;
        q.weights.reserve(layer.weights.size());
        for (double w : layer.weights)
            q.weights.push_back(config_.format.Quantize(w));
        stats_.config_words += q.weights.size();
        layers_.push_back(std::move(q));
    }
    schedule_ = BuildSchedule(topology_, config_.num_pes);

    auto& injector = fault::FaultInjector::Default();
    if (injector.Enabled(fault::FaultClass::kNpuLutCorrupt)) {
        const size_t upsets = CorruptLut(&sigmoid_lut_, &injector) +
                              CorruptLut(&tanh_lut_, &injector);
        if (upsets > 0)
            Debug("npu: %zu activation-LUT words corrupted by fault plan",
                  upsets);
    }
}

std::vector<double>
Npu::Invoke(const std::vector<double>& input)
{
    std::vector<double> out;
    Invoke(input, &out);
    return out;
}

void
Npu::Invoke(const std::vector<double>& input,
            std::vector<double>* output)
{
    RUMBA_CHECK(Configured());
    RUMBA_CHECK(input.size() == topology_.NumInputs());
    RUMBA_CHECK(output != nullptr);
    const obs::ScopedTimer timer(obs_invoke_ns_);
    const obs::Span span("npu.invoke");
    // Sampling-profiler tag (obs/profiler.h): any caller — the
    // runtime's stream loop, calibration replay, the trainer — shows
    // as "device" in folded stacks. Elided when the caller already
    // tagged device, so no "device;device" frames.
    const obs::StageScope device_tag(obs::ProfileStage::kDevice);
    obs_invocations_->Increment();

    // Stream inputs in through the input queue, quantizing at the
    // interface.
    std::vector<int16_t>& current = scratch_current_;
    current.clear();
    current.reserve(input.size());
    for (double v : input)
        current.push_back(config_.format.Quantize(v));
    stats_.input_words += input.size();

    // Hoist the per-invocation fault gates: a disarmed injector costs
    // one relaxed load; armed classes pay their per-opportunity draw.
    auto& injector = fault::FaultInjector::Default();
    const bool armed = injector.Armed();
    const bool flip_bits =
        armed && injector.Enabled(fault::FaultClass::kNpuBitFlip);

    const int16_t one = config_.format.Quantize(1.0);
    std::vector<int16_t>& next = scratch_next_;
    for (const auto& layer : layers_) {
        next.assign(layer.out, 0);
        for (size_t n = 0; n < layer.out; ++n) {
            MacAccumulator acc;
            const size_t row = n * (layer.in + 1);
            for (size_t i = 0; i < layer.in; ++i)
                acc.Mac(layer.weights[row + i], current[i]);
            acc.Mac(layer.weights[row + layer.in], one);
            stats_.macs += layer.in + 1;
            const int16_t pre = acc.Reduce(config_.format);
            switch (layer.act) {
              case nn::Activation::kSigmoid:
                next[n] = sigmoid_lut_.Lookup(pre);
                ++stats_.lut_lookups;
                break;
              case nn::Activation::kTanh:
                next[n] = tanh_lut_.Lookup(pre);
                ++stats_.lut_lookups;
                break;
              case nn::Activation::kLinear:
                next[n] = pre;
                break;
            }
            // Datapath upset: one bit of the PE's activation word
            // flips before it is forwarded to the next layer, so the
            // corruption propagates through the rest of the network.
            if (flip_bits &&
                injector.ShouldInject(fault::FaultClass::kNpuBitFlip)) {
                next[n] = static_cast<int16_t>(
                    next[n] ^
                    static_cast<int16_t>(
                        1 << (injector.Draw(
                                  fault::FaultClass::kNpuBitFlip) &
                              15)));
            }
        }
        current.swap(next);
    }

    stats_.output_words += current.size();
    stats_.cycles += schedule_.total_cycles;
    ++stats_.invocations;

    std::vector<double>& out = *output;
    out.clear();
    out.reserve(current.size());
    for (int16_t q : current)
        out.push_back(config_.format.Dequantize(q));

    // Output-interface corruption: a misbehaving accelerator can hand
    // the host NaN, Inf, or a stuck constant instead of its result.
    // These leave the fixed-point datapath's value domain entirely,
    // which is exactly what the runtime's non-finite guards and the
    // circuit breaker must contain.
    if (armed) {
        const bool nan_on =
            injector.Enabled(fault::FaultClass::kNpuOutputNan);
        const bool inf_on =
            injector.Enabled(fault::FaultClass::kNpuOutputInf);
        const bool stuck_on =
            injector.Enabled(fault::FaultClass::kNpuOutputStuck);
        for (double& v : out) {
            if (nan_on &&
                injector.ShouldInject(fault::FaultClass::kNpuOutputNan)) {
                v = std::numeric_limits<double>::quiet_NaN();
            } else if (inf_on &&
                       injector.ShouldInject(
                           fault::FaultClass::kNpuOutputInf)) {
                v = (injector.Draw(fault::FaultClass::kNpuOutputInf) & 1)
                        ? std::numeric_limits<double>::infinity()
                        : -std::numeric_limits<double>::infinity();
            } else if (stuck_on &&
                       injector.ShouldInject(
                           fault::FaultClass::kNpuOutputStuck)) {
                v = injector.Param(fault::FaultClass::kNpuOutputStuck);
            }
        }
    }
}

double
Npu::InvocationLatencyNs() const
{
    RUMBA_CHECK(Configured());
    return static_cast<double>(schedule_.total_cycles) /
           config_.frequency_ghz;
}

size_t
Npu::NumInputs() const
{
    RUMBA_CHECK(Configured());
    return topology_.NumInputs();
}

size_t
Npu::NumOutputs() const
{
    RUMBA_CHECK(Configured());
    return topology_.NumOutputs();
}

}  // namespace rumba::npu
