#ifndef RUMBA_NPU_FIFO_H_
#define RUMBA_NPU_FIFO_H_

/**
 * @file
 * Bounded FIFO queues modeling the CPU <-> accelerator interface of
 * the NPU design: the config queue, input queue, output queue, and —
 * added by Rumba — the recovery queue that carries recovery bits back
 * to the host (Figure 4 of the paper).
 */

#include <cstddef>
#include <deque>

#include "common/logging.h"

namespace rumba::npu {

/**
 * Fixed-capacity FIFO with occupancy/traffic accounting.
 *
 * Push on a full queue is *rejected* and counted — the hardware
 * applies backpressure, so an unserviced producer loses the write and
 * the loss must be observable (RejectedPushes()), never silent.
 * Callers that can stall check Full() first and account stall cycles;
 * callers that cannot (a stalled drain side) treat a false return as
 * a drop. Pop on an empty queue remains a modeling bug and panics.
 */
template <typename T>
class Fifo {
  public:
    /** Create a queue holding at most @p capacity entries. */
    explicit Fifo(size_t capacity) : capacity_(capacity)
    {
        RUMBA_CHECK(capacity > 0);
    }

    /** True when another Push() would overflow. */
    bool Full() const { return items_.size() >= capacity_; }

    /** True when there is nothing to Pop(). */
    bool Empty() const { return items_.empty(); }

    /** Current occupancy. */
    size_t Size() const { return items_.size(); }

    /** Capacity the queue was built with. */
    size_t Capacity() const { return capacity_; }

    /**
     * Enqueue one entry. Returns false — and counts the rejection —
     * when the queue is full; the entry is dropped.
     */
    [[nodiscard]] bool
    Push(T item)
    {
        if (Full()) {
            ++rejected_pushes_;
            return false;
        }
        items_.push_back(std::move(item));
        ++total_pushes_;
        high_water_ = std::max(high_water_, items_.size());
        return true;
    }

    /** Dequeue the oldest entry; panics when empty. */
    T
    Pop()
    {
        RUMBA_CHECK(!Empty());
        T item = std::move(items_.front());
        items_.pop_front();
        return item;
    }

    /** Entries ever pushed (bus-traffic proxy for the energy model). */
    size_t TotalPushes() const { return total_pushes_; }

    /** Pushes rejected because the queue was full. */
    size_t RejectedPushes() const { return rejected_pushes_; }

    /** Maximum occupancy observed. */
    size_t HighWater() const { return high_water_; }

    /** Drop all entries (between invocations in tests). */
    void
    Clear()
    {
        items_.clear();
    }

  private:
    size_t capacity_;
    std::deque<T> items_;
    size_t total_pushes_ = 0;
    size_t rejected_pushes_ = 0;
    size_t high_water_ = 0;
};

}  // namespace rumba::npu

#endif  // RUMBA_NPU_FIFO_H_
