#include "npu/schedule.h"

#include "common/logging.h"

namespace rumba::npu {

Schedule
BuildSchedule(const nn::Topology& topology, size_t num_pes)
{
    RUMBA_CHECK(num_pes > 0);
    Schedule sched;
    sched.input_cycles = topology.NumInputs();
    sched.output_cycles = topology.NumOutputs();

    size_t compute = 0;
    for (size_t li = 1; li < topology.layers.size(); ++li) {
        LayerSchedule layer;
        layer.neurons = topology.layers[li];
        layer.inputs = topology.layers[li - 1];
        layer.waves = (layer.neurons + num_pes - 1) / num_pes;
        layer.mac_cycles = layer.waves * (layer.inputs + 1);
        // The activation lookup is pipelined behind the MAC chain:
        // one drain cycle per wave, not per neuron.
        layer.act_cycles = layer.waves;
        compute += layer.mac_cycles + layer.act_cycles;
        sched.layers.push_back(layer);
    }
    sched.total_cycles = sched.input_cycles + compute + sched.output_cycles;
    return sched;
}

}  // namespace rumba::npu
