#ifndef RUMBA_NPU_FIXED_POINT_H_
#define RUMBA_NPU_FIXED_POINT_H_

/**
 * @file
 * Fixed-point arithmetic of the NPU datapath. Weights and activations
 * are 16-bit signed values; multiply-accumulate runs in a 48-bit
 * accumulator, as in the NPU-style processing element. The quantizer
 * is the main source of the accelerator's numeric deviation from the
 * float software network (on top of the network's own model error).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace rumba::npu {

/** Signed 16-bit fixed point format with a configurable binary point. */
struct FixedFormat {
    int fractional_bits = 10;  ///< Q5.10: range ~[-32, 32), step 1/1024.

    /** Scale factor 2^fractional_bits. */
    double Scale() const { return static_cast<double>(1 << fractional_bits); }

    /** Smallest representable step. */
    double Resolution() const { return 1.0 / Scale(); }

    /** Quantize a double to the nearest representable value, saturating. */
    int16_t
    Quantize(double v) const
    {
        const double scaled = v * Scale();
        const double clamped = std::clamp(scaled, -32768.0, 32767.0);
        return static_cast<int16_t>(std::lround(clamped));
    }

    /** Convert a quantized value back to double. */
    double
    Dequantize(int16_t q) const
    {
        return static_cast<double>(q) / Scale();
    }

    /** Round-trip a double through the format. */
    double
    RoundTrip(double v) const
    {
        return Dequantize(Quantize(v));
    }
};

/**
 * 48-bit multiply-accumulate register. Products of two Q-format
 * values carry 2x fractional bits; Reduce() shifts back down and
 * saturates into 16 bits.
 */
class MacAccumulator {
  public:
    /** Reset to zero. */
    void Clear() { acc_ = 0; }

    /** Accumulate @p a * @p b (raw quantized operands). */
    void
    Mac(int16_t a, int16_t b)
    {
        acc_ += static_cast<int64_t>(a) * static_cast<int64_t>(b);
    }

    /** Add a raw pre-shifted value (e.g. a bias already in 2x format). */
    void
    AddRaw(int64_t v)
    {
        acc_ += v;
    }

    /**
     * Shift back into single-precision fixed point and saturate to
     * int16 range.
     */
    int16_t
    Reduce(const FixedFormat& fmt) const
    {
        const int64_t shifted = acc_ >> fmt.fractional_bits;
        const int64_t sat =
            std::clamp<int64_t>(shifted, INT16_MIN, INT16_MAX);
        return static_cast<int16_t>(sat);
    }

    /** Raw accumulator contents (tests). */
    int64_t Raw() const { return acc_; }

  private:
    int64_t acc_ = 0;
};

}  // namespace rumba::npu

#endif  // RUMBA_NPU_FIXED_POINT_H_
