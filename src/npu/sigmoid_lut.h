#ifndef RUMBA_NPU_SIGMOID_LUT_H_
#define RUMBA_NPU_SIGMOID_LUT_H_

/**
 * @file
 * The processing elements evaluate their activation function with a
 * lookup table rather than a transcendental unit (as in the NPU
 * design). The table covers [-range, range] and clamps outside.
 */

#include <cstddef>
#include <vector>

#include "nn/activation.h"
#include "npu/fixed_point.h"

namespace rumba::npu {

/** Quantized activation lookup table. */
class SigmoidLut {
  public:
    /**
     * Build a table for @p act with @p entries samples over
     * [-range, range], quantized to @p fmt.
     */
    SigmoidLut(nn::Activation act, size_t entries, double range,
               const FixedFormat& fmt);

    /** Look up the activation of quantized pre-activation @p x. */
    int16_t Lookup(int16_t x) const;

    /** Number of table entries (hardware SRAM words). */
    size_t Entries() const { return table_.size(); }

    /** Raw quantized table word at @p index (fault injection/tests). */
    int16_t RawEntry(size_t index) const { return table_[index]; }

    /**
     * Overwrite the raw table word at @p index — models an SRAM upset
     * in the activation table (fault/plan.h `npu.lut`).
     */
    void SetRawEntry(size_t index, int16_t value) { table_[index] = value; }

    /** Input magnitude covered before clamping. */
    double Range() const { return range_; }

    /**
     * Worst-case table error vs. the exact activation over the
     * covered range (useful for tests and the design docs).
     */
    double MaxError() const;

  private:
    nn::Activation act_;
    double range_;
    FixedFormat fmt_;
    std::vector<int16_t> table_;
};

}  // namespace rumba::npu

#endif  // RUMBA_NPU_SIGMOID_LUT_H_
