#include "npu/sigmoid_lut.h"

#include <cmath>

#include "common/logging.h"

namespace rumba::npu {

SigmoidLut::SigmoidLut(nn::Activation act, size_t entries, double range,
                       const FixedFormat& fmt)
    : act_(act), range_(range), fmt_(fmt)
{
    RUMBA_CHECK(entries >= 2);
    RUMBA_CHECK(range > 0.0);
    table_.resize(entries);
    for (size_t i = 0; i < entries; ++i) {
        const double x =
            -range + 2.0 * range * static_cast<double>(i) /
                         static_cast<double>(entries - 1);
        table_[i] = fmt.Quantize(nn::Evaluate(act, x));
    }
}

int16_t
SigmoidLut::Lookup(int16_t x) const
{
    const double xd = fmt_.Dequantize(x);
    if (xd <= -range_)
        return table_.front();
    if (xd >= range_)
        return table_.back();
    const double pos = (xd + range_) / (2.0 * range_) *
                       static_cast<double>(table_.size() - 1);
    const size_t idx = static_cast<size_t>(std::lround(pos));
    return table_[std::min(idx, table_.size() - 1)];
}

double
SigmoidLut::MaxError() const
{
    double worst = 0.0;
    const size_t probes = table_.size() * 4;
    for (size_t i = 0; i <= probes; ++i) {
        const double x =
            -range_ + 2.0 * range_ * static_cast<double>(i) /
                          static_cast<double>(probes);
        const double exact = nn::Evaluate(act_, x);
        const double approx =
            fmt_.Dequantize(Lookup(fmt_.Quantize(x)));
        worst = std::max(worst, std::fabs(exact - approx));
    }
    return worst;
}

}  // namespace rumba::npu
