#ifndef RUMBA_NPU_SCHEDULE_H_
#define RUMBA_NPU_SCHEDULE_H_

/**
 * @file
 * Static neuron-to-PE schedule. The NPU compiles a network once: each
 * layer's neurons are assigned round-robin to the processing elements,
 * PE weight buffers are preloaded via the config queue, and inputs are
 * broadcast to all PEs one word per cycle while every PE accumulates
 * its neuron's dot product in lockstep.
 */

#include <cstddef>
#include <vector>

#include "nn/topology.h"

namespace rumba::npu {

/** Cycle accounting for one layer of the static schedule. */
struct LayerSchedule {
    size_t neurons = 0;      ///< neurons in the layer.
    size_t inputs = 0;       ///< inputs per neuron (excl. bias).
    size_t waves = 0;        ///< ceil(neurons / num_pes) sequential waves.
    size_t mac_cycles = 0;   ///< broadcast cycles: waves * (inputs + 1).
    size_t act_cycles = 0;   ///< pipelined activation drain: one per wave.
};

/** Whole-network schedule with derived cycle counts. */
struct Schedule {
    std::vector<LayerSchedule> layers;  ///< per-layer breakdown.
    size_t input_cycles = 0;    ///< streaming inputs from the input queue.
    size_t output_cycles = 0;   ///< draining outputs to the output queue.
    size_t total_cycles = 0;    ///< full invocation latency.

    /** PE assignment for neuron @p n of a layer under @p num_pes. */
    static size_t PeForNeuron(size_t n, size_t num_pes)
    {
        return n % num_pes;
    }
};

/**
 * Build the static schedule of @p topology on @p num_pes processing
 * elements.
 */
Schedule BuildSchedule(const nn::Topology& topology, size_t num_pes);

}  // namespace rumba::npu

#endif  // RUMBA_NPU_SCHEDULE_H_
