#ifndef RUMBA_SIM_OPCOUNT_H_
#define RUMBA_SIM_OPCOUNT_H_

/**
 * @file
 * Instruction-mix extraction.
 *
 * The paper profiles each kernel in gem5 and feeds activity counts to
 * McPAT. We replace that with an exact-by-construction approach: the
 * benchmark kernels are templated on their scalar type, and running
 * them once with CountingScalar tallies every primitive operation the
 * kernel performs. Transcendental calls (exp, log, sin, ...) are
 * expanded into representative primitive-op bundles matching typical
 * libm polynomial implementations, so the timing and energy models
 * only ever see primitive classes.
 */

#include <cstddef>

namespace rumba::sim {

/** Primitive dynamic-operation counts for a code region. */
struct OpCounts {
    double int_op = 0;    ///< integer ALU ops (add/sub/logic/shift).
    double int_mul = 0;   ///< integer multiplies.
    double fp_add = 0;    ///< FP adds/subtracts/compares.
    double fp_mul = 0;    ///< FP multiplies.
    double fp_div = 0;    ///< FP divides.
    double fp_sqrt = 0;   ///< FP square roots.
    double load = 0;      ///< memory reads.
    double store = 0;     ///< memory writes.
    double branch = 0;    ///< conditional branches.

    /** Element-wise sum. */
    OpCounts& operator+=(const OpCounts& o);

    /** Element-wise scale (e.g. averaging over iterations). */
    OpCounts Scaled(double s) const;

    /** Total dynamic micro-operations. */
    double Total() const;

    /** Total floating-point operations. */
    double TotalFp() const { return fp_add + fp_mul + fp_div + fp_sqrt; }
};

/**
 * Scalar that behaves like double while tallying operations into a
 * global accumulator. Not thread-safe; profiling is single-threaded.
 */
class CountingScalar {
  public:
    CountingScalar() = default;

    /* implicit */ CountingScalar(double v) : v_(v) {}  // NOLINT

    /** Wrapped value. */
    double Value() const { return v_; }

    /** Reset the global tally. */
    static void ResetCounts();

    /** Current global tally. */
    static const OpCounts& Counts();

    /** Record extra loads/stores (array traffic the type can't see). */
    static void RecordMemory(size_t loads, size_t stores);

    CountingScalar operator-() const;

    CountingScalar& operator+=(CountingScalar o);
    CountingScalar& operator-=(CountingScalar o);
    CountingScalar& operator*=(CountingScalar o);
    CountingScalar& operator/=(CountingScalar o);

    friend CountingScalar operator+(CountingScalar a, CountingScalar b);
    friend CountingScalar operator-(CountingScalar a, CountingScalar b);
    friend CountingScalar operator*(CountingScalar a, CountingScalar b);
    friend CountingScalar operator/(CountingScalar a, CountingScalar b);

    friend bool operator<(CountingScalar a, CountingScalar b);
    friend bool operator>(CountingScalar a, CountingScalar b);
    friend bool operator<=(CountingScalar a, CountingScalar b);
    friend bool operator>=(CountingScalar a, CountingScalar b);
    friend bool operator==(CountingScalar a, CountingScalar b);
    friend bool operator!=(CountingScalar a, CountingScalar b);

  private:
    double v_ = 0.0;

    static OpCounts counts_;

    friend CountingScalar Sqrt(CountingScalar x);
    friend CountingScalar Exp(CountingScalar x);
    friend CountingScalar Log(CountingScalar x);
    friend CountingScalar Sin(CountingScalar x);
    friend CountingScalar Cos(CountingScalar x);
    friend CountingScalar Atan2(CountingScalar y, CountingScalar x);
    friend CountingScalar Acos(CountingScalar x);
    friend CountingScalar Fabs(CountingScalar x);
    friend CountingScalar Floor(CountingScalar x);
    friend CountingScalar Pow(CountingScalar x, CountingScalar y);
    friend CountingScalar Erf(CountingScalar x);
};

/**
 * Math shims: the kernels call these unqualified so the same source
 * instantiates with double (plain libm) and with CountingScalar
 * (counted bundles).
 * @{
 */
double Sqrt(double x);
double Exp(double x);
double Log(double x);
double Sin(double x);
double Cos(double x);
double Atan2(double y, double x);
double Acos(double x);
double Fabs(double x);
double Floor(double x);
double Pow(double x, double y);
double Erf(double x);

CountingScalar Sqrt(CountingScalar x);
CountingScalar Exp(CountingScalar x);
CountingScalar Log(CountingScalar x);
CountingScalar Sin(CountingScalar x);
CountingScalar Cos(CountingScalar x);
CountingScalar Atan2(CountingScalar y, CountingScalar x);
CountingScalar Acos(CountingScalar x);
CountingScalar Fabs(CountingScalar x);
CountingScalar Floor(CountingScalar x);
CountingScalar Pow(CountingScalar x, CountingScalar y);
CountingScalar Erf(CountingScalar x);
/** @} */

}  // namespace rumba::sim

#endif  // RUMBA_SIM_OPCOUNT_H_
