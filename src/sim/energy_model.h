#ifndef RUMBA_SIM_ENERGY_MODEL_H_
#define RUMBA_SIM_ENERGY_MODEL_H_

/**
 * @file
 * Event-based energy model standing in for McPAT. Dynamic energy is
 * charged per micro-architectural event (at 45 nm-class constants);
 * static energy is charged per nanosecond of the relevant unit being
 * powered. 1 W equals exactly 1 nJ/ns, which keeps the arithmetic
 * transparent.
 *
 * Absolute joules are not the claim — the paper's own numbers come
 * from a different core and library. What matters is that the CPU,
 * accelerator and checker energies are derived from the *same* event
 * streams the timing model uses, so the relative shapes (who wins,
 * crossovers) are internally consistent.
 */

#include "sim/opcount.h"

namespace rumba::sim {

/** Per-event energies (picojoules) and static powers (watts). */
struct EnergyParams {
    // Host core: per-uop front-end/rename/ROB/commit overhead plus
    // per-class execution energy.
    double cpu_uop_overhead_pj = 150.0;
    double cpu_int_pj = 5.0;
    double cpu_int_mul_pj = 10.0;
    double cpu_fp_add_pj = 12.0;
    double cpu_fp_mul_pj = 18.0;
    double cpu_fp_div_pj = 80.0;
    double cpu_fp_sqrt_pj = 90.0;
    double cpu_load_pj = 25.0;
    double cpu_store_pj = 25.0;
    double cpu_branch_pj = 8.0;
    double cpu_busy_static_w = 1.5;  ///< leakage + clock while executing.
    double cpu_idle_static_w = 0.8;  ///< clock-gated, waiting on the NPU.

    // NPU-style accelerator (16-bit fixed-point datapath).
    double npu_mac_pj = 1.2;         ///< MAC incl. weight-buffer read.
    double npu_lut_pj = 2.0;         ///< activation-table read.
    double npu_queue_word_pj = 3.0;  ///< CPU<->NPU queue word transfer.
    double npu_static_w = 0.05;      ///< accelerator leakage + clock.

    // Rumba's checker hardware next to the accelerator.
    double chk_mac_pj = 1.2;        ///< linear-model multiply-add.
    double chk_compare_pj = 0.3;    ///< threshold / tree-node compare.
    double chk_table_pj = 1.0;      ///< coefficient-buffer read.
    double chk_ema_pj = 2.0;        ///< EMA update (2 mul + add).
    double chk_static_w = 0.01;     ///< checker leakage.
};

/** Per-element cost of one dynamic check, in checker-hardware events. */
struct CheckerCost {
    double macs = 0.0;         ///< multiply-accumulates.
    double compares = 0.0;     ///< comparisons.
    double table_reads = 0.0;  ///< coefficient-buffer reads.
    double ema_updates = 0.0;  ///< EMA state updates.
    double cycles = 0.0;       ///< checker latency per element.
};

/** Per-structure CPU dynamic-energy breakdown (nJ), McPAT-style. */
struct CpuEnergyBreakdown {
    double frontend_nj = 0.0;  ///< fetch/decode/rename/ROB/commit.
    double int_exec_nj = 0.0;  ///< integer ALUs and multiplier.
    double fp_exec_nj = 0.0;   ///< FPUs, divider, sqrt.
    double lsu_nj = 0.0;       ///< load/store units + L1d accesses.
    double branch_nj = 0.0;    ///< predictor and BTB.
    double total_nj = 0.0;     ///< sum of the above.
};

/** Converts event counts into nanojoules. */
class EnergyModel {
  public:
    explicit EnergyModel(const EnergyParams& params = EnergyParams());

    /** Dynamic CPU energy for a region's op mix (nJ). */
    double CpuDynamicNj(const OpCounts& ops) const;

    /** Dynamic CPU energy split by microarchitectural structure. */
    CpuEnergyBreakdown CpuBreakdown(const OpCounts& ops) const;

    /** CPU static energy while busy for @p ns nanoseconds (nJ). */
    double CpuBusyStaticNj(double ns) const;

    /** CPU static energy while idle-waiting for @p ns (nJ). */
    double CpuIdleStaticNj(double ns) const;

    /**
     * Dynamic accelerator energy (nJ) given per-run totals of MACs,
     * activation lookups and queue words.
     */
    double NpuDynamicNj(double macs, double luts, double queue_words) const;

    /** Accelerator static energy over @p ns (nJ). */
    double NpuStaticNj(double ns) const;

    /** Dynamic checker energy for @p checks checks of cost @p cost. */
    double CheckerDynamicNj(const CheckerCost& cost, double checks) const;

    /** Checker static energy over @p ns (nJ). */
    double CheckerStaticNj(double ns) const;

    /** Parameters in use. */
    const EnergyParams& Params() const { return params_; }

  private:
    EnergyParams params_;
};

}  // namespace rumba::sim

#endif  // RUMBA_SIM_ENERGY_MODEL_H_
