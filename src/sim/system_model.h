#ifndef RUMBA_SIM_SYSTEM_MODEL_H_
#define RUMBA_SIM_SYSTEM_MODEL_H_

/**
 * @file
 * Whole-application timing/energy composition. Combines the CPU
 * model, the accelerator's static schedule and the checker cost into
 * the numbers Figures 14-17 plot: whole-app energy and speedup versus
 * a CPU-only baseline, for an unchecked accelerator or for Rumba with
 * a given number of re-executed iterations.
 *
 * Timing follows the paper's pipelined-recovery model (Section 3.3):
 * the CPU re-computes flagged iterations while the accelerator keeps
 * executing, so the region's time is max(accelerator time, recovery
 * time). The checker runs concurrently inside the accelerator
 * (placement Configuration 2, Section 3.5) and is validated to be
 * faster than the accelerator (Figure 17), so it adds no latency.
 */

#include <cstddef>
#include <vector>

#include "sim/cpu_model.h"
#include "sim/energy_model.h"

namespace rumba::sim {

/** The approximated region of an application. */
struct RegionProfile {
    OpCounts cpu_ops_per_iter;    ///< exact kernel's per-iteration mix.
    size_t iterations = 0;        ///< data-parallel iterations in the run.
    /** Fraction of whole-application baseline time spent in the
     *  region (Amdahl term for whole-app numbers). */
    double region_fraction = 1.0;
};

/** Accelerator execution profile for the same region. */
struct AcceleratorProfile {
    size_t cycles_per_invocation = 0;  ///< from the static schedule.
    double frequency_ghz = 1.0;        ///< accelerator clock.
    double macs_per_invocation = 0;    ///< fixed-point MACs.
    double luts_per_invocation = 0;    ///< activation lookups.
    double queue_words_per_invocation = 0;  ///< in+out+recovery words.
};

/** Whole-app and region-level costs for one scheme. */
struct SystemCosts {
    double baseline_region_ns = 0.0;
    double baseline_region_nj = 0.0;
    double baseline_app_ns = 0.0;
    double baseline_app_nj = 0.0;
    double scheme_region_ns = 0.0;
    double scheme_region_nj = 0.0;
    double scheme_app_ns = 0.0;
    double scheme_app_nj = 0.0;
    double checker_ns = 0.0;  ///< checker busy time (Figure 17).
    double npu_ns = 0.0;      ///< accelerator busy time.
    double recovery_ns = 0.0; ///< CPU re-execution time.

    /** Whole-application speedup over the CPU baseline. */
    double Speedup() const { return baseline_app_ns / scheme_app_ns; }

    /** Whole-application energy-saving factor over the baseline. */
    double EnergySaving() const { return baseline_app_nj / scheme_app_nj; }

    /** Normalized whole-app energy (scheme / baseline). */
    double NormalizedEnergy() const
    {
        return scheme_app_nj / baseline_app_nj;
    }
};

/** Rolling-window estimate derived from recent SystemCosts. */
struct EfficiencyEstimate {
    /** Whole-app speedup over the CPU baseline (Figure 14/15),
     *  aggregated over the window: sum(baseline) / sum(scheme). */
    double speedup = 0.0;
    /** Normalized whole-app energy, scheme / baseline (Figure 15). */
    double energy_ratio = 0.0;
    size_t window = 0;       ///< invocations currently in the window.
    size_t invocations = 0;  ///< invocations pushed since creation.

    /** True once at least one invocation has been pushed. */
    bool Valid() const { return window > 0; }
};

/**
 * Fixed-capacity ring of per-invocation SystemCosts that turns the
 * offline Figure 14/15 composition into a live rolling estimate:
 * each serving invocation pushes its modeled costs, Estimate()
 * aggregates the window by summing baseline and scheme app totals
 * (so long invocations weigh proportionally, matching how the
 * offline bench composes whole runs).
 *
 * Not thread-safe; callers serialize pushes (the profiler holds a
 * mutex around its window).
 */
class EfficiencyWindow {
  public:
    /** @param capacity rolling-window size in invocations (>= 1). */
    explicit EfficiencyWindow(size_t capacity = 256);

    /** Record one invocation's modeled costs. */
    void Push(const SystemCosts& costs);

    /** Aggregate the current window. */
    EfficiencyEstimate Estimate() const;

    /** Drop all recorded invocations. */
    void Reset();

  private:
    /** The per-invocation sums Estimate() needs. */
    struct Entry {
        double baseline_app_ns = 0.0;
        double baseline_app_nj = 0.0;
        double scheme_app_ns = 0.0;
        double scheme_app_nj = 0.0;
    };

    std::vector<Entry> ring_;
    size_t capacity_;
    size_t next_ = 0;    ///< ring slot the next push lands in.
    size_t pushed_ = 0;  ///< total pushes since creation/reset.
};

/** Combines timing and energy into per-scheme whole-app costs. */
class SystemModel {
  public:
    SystemModel(const CoreParams& core, const EnergyParams& energy);

    /**
     * Cost the region (and whole app) under a scheme.
     *
     * @param region the approximated region.
     * @param accel the accelerator profile (schedule + events).
     * @param checker per-element checker cost, or nullptr when the
     *        scheme runs unchecked (plain NPU).
     * @param fixes number of iterations re-executed exactly on the
     *        host CPU (0 for the unchecked accelerator).
     */
    SystemCosts Evaluate(const RegionProfile& region,
                         const AcceleratorProfile& accel,
                         const CheckerCost* checker, size_t fixes) const;

    /** Baseline-only costs (the whole app on the CPU). */
    SystemCosts Baseline(const RegionProfile& region) const;

    /** The CPU timing model in use. */
    const CpuModel& Cpu() const { return cpu_; }

    /** The energy model in use. */
    const EnergyModel& Energy() const { return energy_; }

  private:
    CpuModel cpu_;
    EnergyModel energy_;
};

}  // namespace rumba::sim

#endif  // RUMBA_SIM_SYSTEM_MODEL_H_
