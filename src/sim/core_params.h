#ifndef RUMBA_SIM_CORE_PARAMS_H_
#define RUMBA_SIM_CORE_PARAMS_H_

/**
 * @file
 * Microarchitectural parameters of the host x86-64 core, matching
 * Table 2 of the paper. These drive the analytical cycle model in
 * cpu_model.h.
 */

#include <cstddef>

namespace rumba::sim {

/** Table 2: the out-of-order x86-64 core used in the experiments. */
struct CoreParams {
    size_t fetch_width = 4;
    size_t issue_width = 6;
    size_t int_alus = 2;
    size_t fpus = 2;
    size_t load_fus = 1;
    size_t store_fus = 1;
    size_t issue_queue_entries = 32;
    size_t rob_entries = 96;
    size_t int_phys_regs = 256;
    size_t fp_phys_regs = 256;
    size_t btb_entries = 2048;
    size_t ras_entries = 16;
    size_t l1_icache_kb = 32;
    size_t l1_dcache_kb = 32;
    size_t l1_hit_cycles = 3;
    size_t l2_hit_cycles = 12;
    size_t l1_assoc = 8;
    size_t l2_assoc = 8;
    size_t itlb_entries = 128;
    size_t dtlb_entries = 256;
    size_t l2_size_mb = 2;
    const char* branch_predictor = "Tournament";

    // Model parameters beyond Table 2 (documented assumptions).
    double frequency_ghz = 2.0;        ///< core clock.
    double branch_misp_rate = 0.04;    ///< tournament predictor miss rate.
    size_t branch_misp_penalty = 14;   ///< pipeline refill cycles.
    double l1d_miss_rate = 0.03;       ///< streaming kernels, modest reuse.
    double l2_miss_rate = 0.01;        ///< of L1 misses that also miss L2.
    size_t mem_latency_cycles = 180;   ///< DRAM round trip.

    // Per-op issue latencies (throughput-relevant, cycles).
    double fp_div_cycles = 12.0;       ///< unpipelined divider occupancy.
    double fp_sqrt_cycles = 14.0;      ///< unpipelined sqrt occupancy.
    double int_mul_cycles = 2.0;       ///< pipelined multiplier occupancy.

    /**
     * Instruction-level-parallelism derating: real kernels cannot
     * sustain the structural peak because of dependence chains; the
     * achieved throughput is peak / ilp_derate.
     */
    double ilp_derate = 1.4;
};

}  // namespace rumba::sim

#endif  // RUMBA_SIM_CORE_PARAMS_H_
