#include "sim/system_model.h"

#include <algorithm>

#include "common/logging.h"

namespace rumba::sim {

SystemModel::SystemModel(const CoreParams& core, const EnergyParams& energy)
    : cpu_(core), energy_(energy)
{
}

EfficiencyWindow::EfficiencyWindow(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity))
{
    ring_.reserve(capacity_);
}

void
EfficiencyWindow::Push(const SystemCosts& costs)
{
    Entry entry;
    entry.baseline_app_ns = costs.baseline_app_ns;
    entry.baseline_app_nj = costs.baseline_app_nj;
    entry.scheme_app_ns = costs.scheme_app_ns;
    entry.scheme_app_nj = costs.scheme_app_nj;
    if (ring_.size() < capacity_)
        ring_.push_back(entry);
    else
        ring_[next_] = entry;
    next_ = (next_ + 1) % capacity_;
    ++pushed_;
}

EfficiencyEstimate
EfficiencyWindow::Estimate() const
{
    EfficiencyEstimate est;
    est.window = ring_.size();
    est.invocations = pushed_;
    if (ring_.empty())
        return est;
    double base_ns = 0.0, base_nj = 0.0, scheme_ns = 0.0, scheme_nj = 0.0;
    for (const Entry& e : ring_) {
        base_ns += e.baseline_app_ns;
        base_nj += e.baseline_app_nj;
        scheme_ns += e.scheme_app_ns;
        scheme_nj += e.scheme_app_nj;
    }
    est.speedup = scheme_ns > 0.0 ? base_ns / scheme_ns : 0.0;
    est.energy_ratio = base_nj > 0.0 ? scheme_nj / base_nj : 0.0;
    return est;
}

void
EfficiencyWindow::Reset()
{
    ring_.clear();
    next_ = 0;
    pushed_ = 0;
}

SystemCosts
SystemModel::Baseline(const RegionProfile& region) const
{
    RUMBA_CHECK(region.iterations > 0);
    RUMBA_CHECK(region.region_fraction > 0.0 &&
                region.region_fraction <= 1.0);

    SystemCosts costs;
    const double iters = static_cast<double>(region.iterations);
    const double iter_ns = cpu_.Nanoseconds(region.cpu_ops_per_iter);
    const double iter_nj =
        energy_.CpuDynamicNj(region.cpu_ops_per_iter) +
        energy_.CpuBusyStaticNj(iter_ns);

    costs.baseline_region_ns = iter_ns * iters;
    costs.baseline_region_nj = iter_nj * iters;
    // The rest of the application is modeled with the same
    // energy/time density as the region (documented simplification).
    costs.baseline_app_ns =
        costs.baseline_region_ns / region.region_fraction;
    costs.baseline_app_nj =
        costs.baseline_region_nj / region.region_fraction;
    return costs;
}

SystemCosts
SystemModel::Evaluate(const RegionProfile& region,
                      const AcceleratorProfile& accel,
                      const CheckerCost* checker, size_t fixes) const
{
    RUMBA_CHECK(accel.cycles_per_invocation > 0);
    RUMBA_CHECK(accel.frequency_ghz > 0.0);
    RUMBA_CHECK(fixes <= region.iterations);

    SystemCosts costs = Baseline(region);
    const double iters = static_cast<double>(region.iterations);
    const double fixed = static_cast<double>(fixes);

    // --- Region timing ---------------------------------------------------
    const double accel_ns =
        static_cast<double>(accel.cycles_per_invocation) /
        accel.frequency_ghz * iters;
    const double cpu_iter_ns = cpu_.Nanoseconds(region.cpu_ops_per_iter);
    const double recovery_ns = cpu_iter_ns * fixed;
    // Pipelined recovery: CPU re-computation overlaps accelerator
    // execution; whichever side is longer bounds the region.
    const double region_ns = std::max(accel_ns, recovery_ns);

    costs.npu_ns = accel_ns;
    costs.recovery_ns = recovery_ns;
    costs.scheme_region_ns = region_ns;

    // --- Region energy ---------------------------------------------------
    const double npu_dynamic = energy_.NpuDynamicNj(
        accel.macs_per_invocation * iters,
        accel.luts_per_invocation * iters,
        accel.queue_words_per_invocation * iters);
    const double npu_static = energy_.NpuStaticNj(region_ns);

    // CPU: dynamic work for the re-executed iterations; busy static
    // power while recovering; idle static power while only waiting.
    const double cpu_dynamic =
        energy_.CpuDynamicNj(region.cpu_ops_per_iter) * fixed;
    const double cpu_busy_static = energy_.CpuBusyStaticNj(recovery_ns);
    const double cpu_idle_static =
        energy_.CpuIdleStaticNj(std::max(0.0, region_ns - recovery_ns));

    double checker_nj = 0.0;
    costs.checker_ns = 0.0;
    if (checker != nullptr) {
        checker_nj = energy_.CheckerDynamicNj(*checker, iters) +
                     energy_.CheckerStaticNj(region_ns);
        costs.checker_ns =
            checker->cycles / accel.frequency_ghz * iters;
    }

    costs.scheme_region_nj = npu_dynamic + npu_static + cpu_dynamic +
                             cpu_busy_static + cpu_idle_static + checker_nj;

    // --- Whole application -----------------------------------------------
    const double rest_ns =
        costs.baseline_app_ns - costs.baseline_region_ns;
    const double rest_nj =
        costs.baseline_app_nj - costs.baseline_region_nj;
    costs.scheme_app_ns = rest_ns + costs.scheme_region_ns;
    costs.scheme_app_nj = rest_nj + costs.scheme_region_nj;
    return costs;
}

}  // namespace rumba::sim
