#include "sim/energy_model.h"

namespace rumba::sim {

namespace {
constexpr double kPjToNj = 1e-3;
}  // namespace

EnergyModel::EnergyModel(const EnergyParams& params) : params_(params) {}

double
EnergyModel::CpuDynamicNj(const OpCounts& ops) const
{
    return CpuBreakdown(ops).total_nj;
}

CpuEnergyBreakdown
EnergyModel::CpuBreakdown(const OpCounts& ops) const
{
    const EnergyParams& p = params_;
    CpuEnergyBreakdown b;
    b.frontend_nj = ops.Total() * p.cpu_uop_overhead_pj * kPjToNj;
    b.int_exec_nj = (ops.int_op * p.cpu_int_pj +
                     ops.int_mul * p.cpu_int_mul_pj) *
                    kPjToNj;
    b.fp_exec_nj = (ops.fp_add * p.cpu_fp_add_pj +
                    ops.fp_mul * p.cpu_fp_mul_pj +
                    ops.fp_div * p.cpu_fp_div_pj +
                    ops.fp_sqrt * p.cpu_fp_sqrt_pj) *
                   kPjToNj;
    b.lsu_nj =
        (ops.load * p.cpu_load_pj + ops.store * p.cpu_store_pj) *
        kPjToNj;
    b.branch_nj = ops.branch * p.cpu_branch_pj * kPjToNj;
    b.total_nj = b.frontend_nj + b.int_exec_nj + b.fp_exec_nj +
                 b.lsu_nj + b.branch_nj;
    return b;
}

double
EnergyModel::CpuBusyStaticNj(double ns) const
{
    return ns * params_.cpu_busy_static_w;
}

double
EnergyModel::CpuIdleStaticNj(double ns) const
{
    return ns * params_.cpu_idle_static_w;
}

double
EnergyModel::NpuDynamicNj(double macs, double luts, double queue_words) const
{
    return (macs * params_.npu_mac_pj + luts * params_.npu_lut_pj +
            queue_words * params_.npu_queue_word_pj) *
           kPjToNj;
}

double
EnergyModel::NpuStaticNj(double ns) const
{
    return ns * params_.npu_static_w;
}

double
EnergyModel::CheckerDynamicNj(const CheckerCost& cost, double checks) const
{
    const double per_check_pj = cost.macs * params_.chk_mac_pj +
                                cost.compares * params_.chk_compare_pj +
                                cost.table_reads * params_.chk_table_pj +
                                cost.ema_updates * params_.chk_ema_pj;
    return per_check_pj * checks * kPjToNj;
}

double
EnergyModel::CheckerStaticNj(double ns) const
{
    return ns * params_.chk_static_w;
}

}  // namespace rumba::sim
