#ifndef RUMBA_SIM_CPU_MODEL_H_
#define RUMBA_SIM_CPU_MODEL_H_

/**
 * @file
 * Analytical out-of-order CPU timing model. Replaces the paper's gem5
 * runs: given a region's dynamic instruction mix (from opcount.h) it
 * estimates execution cycles as the binding structural bottleneck
 * (issue bandwidth, ALU/FPU/memory-port throughput, divider
 * occupancy) inflated by a dependence derate, plus branch-misprediction
 * and cache-miss penalties.
 */

#include "sim/core_params.h"
#include "sim/opcount.h"

namespace rumba::sim {

/** Cycle breakdown returned by CpuModel::Cycles(). */
struct CycleBreakdown {
    double issue_bound = 0.0;    ///< total uops / issue width.
    double int_bound = 0.0;      ///< integer ops / ALUs.
    double fp_bound = 0.0;       ///< FP ops (with occupancies) / FPUs.
    double mem_bound = 0.0;      ///< loads+stores over the LSU ports.
    double branch_penalty = 0.0; ///< misprediction refill cycles.
    double cache_penalty = 0.0;  ///< L1/L2 miss stall cycles.
    double total = 0.0;          ///< modeled cycles.
};

/** The host-core timing model. */
class CpuModel {
  public:
    /** Build a model over the given core configuration. */
    explicit CpuModel(const CoreParams& params = CoreParams());

    /** Modeled cycles to execute a region with the given op mix. */
    CycleBreakdown Cycles(const OpCounts& ops) const;

    /** Convenience: modeled wall-clock nanoseconds for the op mix. */
    double Nanoseconds(const OpCounts& ops) const;

    /** Core configuration in use. */
    const CoreParams& Params() const { return params_; }

  private:
    CoreParams params_;
};

}  // namespace rumba::sim

#endif  // RUMBA_SIM_CPU_MODEL_H_
