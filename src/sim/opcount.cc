#include "sim/opcount.h"

#include <cmath>

namespace rumba::sim {

OpCounts CountingScalar::counts_;

OpCounts&
OpCounts::operator+=(const OpCounts& o)
{
    int_op += o.int_op;
    int_mul += o.int_mul;
    fp_add += o.fp_add;
    fp_mul += o.fp_mul;
    fp_div += o.fp_div;
    fp_sqrt += o.fp_sqrt;
    load += o.load;
    store += o.store;
    branch += o.branch;
    return *this;
}

OpCounts
OpCounts::Scaled(double s) const
{
    OpCounts out = *this;
    out.int_op *= s;
    out.int_mul *= s;
    out.fp_add *= s;
    out.fp_mul *= s;
    out.fp_div *= s;
    out.fp_sqrt *= s;
    out.load *= s;
    out.store *= s;
    out.branch *= s;
    return out;
}

double
OpCounts::Total() const
{
    return int_op + int_mul + fp_add + fp_mul + fp_div + fp_sqrt + load +
           store + branch;
}

void
CountingScalar::ResetCounts()
{
    counts_ = OpCounts();
}

const OpCounts&
CountingScalar::Counts()
{
    return counts_;
}

void
CountingScalar::RecordMemory(size_t loads, size_t stores)
{
    counts_.load += static_cast<double>(loads);
    counts_.store += static_cast<double>(stores);
}

CountingScalar
CountingScalar::operator-() const
{
    counts_.fp_add += 1;
    return CountingScalar(-v_);
}

CountingScalar&
CountingScalar::operator+=(CountingScalar o)
{
    counts_.fp_add += 1;
    v_ += o.v_;
    return *this;
}

CountingScalar&
CountingScalar::operator-=(CountingScalar o)
{
    counts_.fp_add += 1;
    v_ -= o.v_;
    return *this;
}

CountingScalar&
CountingScalar::operator*=(CountingScalar o)
{
    counts_.fp_mul += 1;
    v_ *= o.v_;
    return *this;
}

CountingScalar&
CountingScalar::operator/=(CountingScalar o)
{
    counts_.fp_div += 1;
    v_ /= o.v_;
    return *this;
}

CountingScalar
operator+(CountingScalar a, CountingScalar b)
{
    CountingScalar::counts_.fp_add += 1;
    return CountingScalar(a.v_ + b.v_);
}

CountingScalar
operator-(CountingScalar a, CountingScalar b)
{
    CountingScalar::counts_.fp_add += 1;
    return CountingScalar(a.v_ - b.v_);
}

CountingScalar
operator*(CountingScalar a, CountingScalar b)
{
    CountingScalar::counts_.fp_mul += 1;
    return CountingScalar(a.v_ * b.v_);
}

CountingScalar
operator/(CountingScalar a, CountingScalar b)
{
    CountingScalar::counts_.fp_div += 1;
    return CountingScalar(a.v_ / b.v_);
}

namespace {

/** A comparison plus the conditional branch consuming it. */
void
TallyCompare(OpCounts* c)
{
    c->fp_add += 1;
    c->branch += 1;
}

/** Tally a transcendental's typical polynomial-expansion cost. */
void
AddBundle(OpCounts* c, double adds, double muls, double divs)
{
    c->fp_add += adds;
    c->fp_mul += muls;
    c->fp_div += divs;
    // Range reduction and table indexing run on the integer side.
    c->int_op += 4;
    c->load += 1;
}

}  // namespace

bool
operator<(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ < b.v_;
}

bool
operator>(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ > b.v_;
}

bool
operator<=(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ <= b.v_;
}

bool
operator>=(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ >= b.v_;
}

bool
operator==(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ == b.v_;
}

bool
operator!=(CountingScalar a, CountingScalar b)
{
    TallyCompare(&CountingScalar::counts_);
    return a.v_ != b.v_;
}

double Sqrt(double x) { return std::sqrt(x); }
double Exp(double x) { return std::exp(x); }
double Log(double x) { return std::log(x); }
double Sin(double x) { return std::sin(x); }
double Cos(double x) { return std::cos(x); }
double Atan2(double y, double x) { return std::atan2(y, x); }
double Acos(double x) { return std::acos(x); }
double Fabs(double x) { return std::fabs(x); }
double Floor(double x) { return std::floor(x); }
double Pow(double x, double y) { return std::pow(x, y); }
double Erf(double x) { return std::erf(x); }

CountingScalar
Sqrt(CountingScalar x)
{
    CountingScalar::counts_.fp_sqrt += 1;
    return CountingScalar(std::sqrt(x.v_));
}

CountingScalar
Exp(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 20, 22, 0);
    return CountingScalar(std::exp(x.v_));
}

CountingScalar
Log(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 22, 24, 1);
    return CountingScalar(std::log(x.v_));
}

CountingScalar
Sin(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 22, 24, 0);
    return CountingScalar(std::sin(x.v_));
}

CountingScalar
Cos(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 22, 24, 0);
    return CountingScalar(std::cos(x.v_));
}

CountingScalar
Atan2(CountingScalar y, CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 28, 30, 1);
    return CountingScalar(std::atan2(y.v_, x.v_));
}

CountingScalar
Acos(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 26, 28, 0);
    CountingScalar::counts_.fp_sqrt += 1;
    return CountingScalar(std::acos(x.v_));
}

CountingScalar
Fabs(CountingScalar x)
{
    CountingScalar::counts_.int_op += 1;  // sign-bit clear
    return CountingScalar(std::fabs(x.v_));
}

CountingScalar
Floor(CountingScalar x)
{
    CountingScalar::counts_.fp_add += 1;
    return CountingScalar(std::floor(x.v_));
}

CountingScalar
Pow(CountingScalar x, CountingScalar y)
{
    // exp(y * log(x)).
    AddBundle(&CountingScalar::counts_, 45, 50, 1);
    return CountingScalar(std::pow(x.v_, y.v_));
}

CountingScalar
Erf(CountingScalar x)
{
    AddBundle(&CountingScalar::counts_, 30, 34, 1);
    return CountingScalar(std::erf(x.v_));
}

}  // namespace rumba::sim
