#include "sim/cpu_model.h"

#include <algorithm>

namespace rumba::sim {

CpuModel::CpuModel(const CoreParams& params) : params_(params) {}

CycleBreakdown
CpuModel::Cycles(const OpCounts& ops) const
{
    CycleBreakdown b;

    const double total_uops = ops.Total();
    b.issue_bound = total_uops / static_cast<double>(params_.issue_width);

    const double int_work =
        ops.int_op + ops.int_mul * params_.int_mul_cycles + ops.branch;
    b.int_bound = int_work / static_cast<double>(params_.int_alus);

    const double fp_work = ops.fp_add + ops.fp_mul +
                           ops.fp_div * params_.fp_div_cycles +
                           ops.fp_sqrt * params_.fp_sqrt_cycles;
    b.fp_bound = fp_work / static_cast<double>(params_.fpus);

    b.mem_bound = ops.load / static_cast<double>(params_.load_fus) +
                  ops.store / static_cast<double>(params_.store_fus);

    b.branch_penalty = ops.branch * params_.branch_misp_rate *
                       static_cast<double>(params_.branch_misp_penalty);

    const double l1_misses = ops.load * params_.l1d_miss_rate;
    const double l2_misses = l1_misses * params_.l2_miss_rate;
    b.cache_penalty =
        l1_misses * static_cast<double>(params_.l2_hit_cycles) +
        l2_misses * static_cast<double>(params_.mem_latency_cycles);

    const double throughput_bound = std::max(
        {b.issue_bound, b.int_bound, b.fp_bound, b.mem_bound});
    b.total = throughput_bound * params_.ilp_derate + b.branch_penalty +
              b.cache_penalty;
    return b;
}

double
CpuModel::Nanoseconds(const OpCounts& ops) const
{
    return Cycles(ops).total / params_.frequency_ghz;
}

}  // namespace rumba::sim
