#include "nn/mlp.h"

#include <sstream>

#include "common/dataset.h"
#include "common/logging.h"
#include "common/random.h"

namespace rumba::nn {

Mlp::Mlp(const Topology& topology, Activation hidden_act,
         Activation output_act)
    : topology_(topology)
{
    RUMBA_CHECK(topology.layers.size() >= 2);
    for (size_t i = 1; i < topology.layers.size(); ++i) {
        Layer layer;
        layer.in = topology.layers[i - 1];
        layer.out = topology.layers[i];
        layer.act = (i + 1 == topology.layers.size()) ? output_act
                                                      : hidden_act;
        layer.weights.assign(layer.out * (layer.in + 1), 0.0);
        layers_.push_back(std::move(layer));
    }
}

void
Mlp::RandomizeWeights(Rng* rng, double scale)
{
    RUMBA_CHECK(rng != nullptr);
    for (auto& layer : layers_)
        for (auto& w : layer.weights)
            w = rng->Uniform(-scale, scale);
}

std::vector<double>
Mlp::Forward(const std::vector<double>& input) const
{
    RUMBA_CHECK(input.size() == topology_.NumInputs());
    std::vector<double> current = input;
    std::vector<double> next;
    for (const auto& layer : layers_) {
        next.assign(layer.out, 0.0);
        for (size_t n = 0; n < layer.out; ++n) {
            double sum = layer.Bias(n);
            for (size_t i = 0; i < layer.in; ++i)
                sum += layer.W(n, i) * current[i];
            next[n] = Evaluate(layer.act, sum);
        }
        current.swap(next);
    }
    return current;
}

ForwardTrace
Mlp::ForwardWithTrace(const std::vector<double>& input) const
{
    RUMBA_CHECK(input.size() == topology_.NumInputs());
    ForwardTrace trace;
    trace.activations.reserve(layers_.size() + 1);
    trace.activations.push_back(input);
    for (const auto& layer : layers_) {
        const auto& prev = trace.activations.back();
        std::vector<double> act(layer.out, 0.0);
        for (size_t n = 0; n < layer.out; ++n) {
            double sum = layer.Bias(n);
            for (size_t i = 0; i < layer.in; ++i)
                sum += layer.W(n, i) * prev[i];
            act[n] = Evaluate(layer.act, sum);
        }
        trace.activations.push_back(std::move(act));
    }
    return trace;
}

double
Mlp::MeanSquaredError(const Dataset& data) const
{
    RUMBA_CHECK(!data.Empty());
    RUMBA_CHECK(data.NumInputs() == topology_.NumInputs());
    RUMBA_CHECK(data.NumTargets() == topology_.NumOutputs());
    double total = 0.0;
    for (size_t s = 0; s < data.Size(); ++s) {
        const auto out = Forward(data.Input(s));
        const auto& target = data.Target(s);
        for (size_t o = 0; o < out.size(); ++o) {
            const double d = out[o] - target[o];
            total += d * d;
        }
    }
    return total /
           (static_cast<double>(data.Size()) *
            static_cast<double>(topology_.NumOutputs()));
}

size_t
Mlp::NumParameters() const
{
    size_t n = 0;
    for (const auto& layer : layers_)
        n += layer.weights.size();
    return n;
}

std::string
Mlp::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "mlp " << topology_.ToString() << "\n";
    for (const auto& layer : layers_) {
        out << "layer " << Name(layer.act);
        for (double w : layer.weights)
            out << " " << w;
        out << "\n";
    }
    return out.str();
}

Mlp
Mlp::Deserialize(const std::string& blob)
{
    std::optional<Mlp> mlp = TryDeserialize(blob);
    if (!mlp.has_value())
        Fatal("malformed MLP blob");
    return *std::move(mlp);
}

std::optional<Mlp>
Mlp::TryDeserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag, topo_text;
    in >> tag >> topo_text;
    if (tag != "mlp" || in.fail())
        return std::nullopt;
    const std::optional<Topology> topo = Topology::TryParse(topo_text);
    if (!topo.has_value())
        return std::nullopt;
    Mlp mlp(*topo);
    for (auto& layer : mlp.layers_) {
        std::string act_name;
        in >> tag >> act_name;
        if (tag != "layer" || in.fail())
            return std::nullopt;
        if (act_name == "sigmoid") {
            layer.act = Activation::kSigmoid;
        } else if (act_name == "tanh") {
            layer.act = Activation::kTanh;
        } else if (act_name == "linear") {
            layer.act = Activation::kLinear;
        } else {
            return std::nullopt;
        }
        for (auto& w : layer.weights) {
            if (!(in >> w))
                return std::nullopt;
        }
    }
    return mlp;
}

}  // namespace rumba::nn
