#include "nn/trainer.h"

#include <algorithm>
#include <vector>

#include "common/dataset.h"
#include "common/logging.h"
#include "common/random.h"

namespace rumba::nn {

namespace {

/** Per-layer gradient / velocity buffers matching an Mlp's shape. */
std::vector<std::vector<double>>
ZeroLike(const Mlp& mlp)
{
    std::vector<std::vector<double>> buf;
    buf.reserve(mlp.Layers().size());
    for (const auto& layer : mlp.Layers())
        buf.emplace_back(layer.weights.size(), 0.0);
    return buf;
}

/**
 * Backpropagate one sample and accumulate weight gradients.
 * @return the sample's squared error.
 */
double
BackpropSample(Mlp* mlp, const std::vector<double>& input,
               const std::vector<double>& target,
               std::vector<std::vector<double>>* grads)
{
    const ForwardTrace trace = mlp->ForwardWithTrace(input);
    const auto& layers = mlp->Layers();
    const auto& output = trace.activations.back();

    double sq_err = 0.0;
    // delta[n] = dE/d(pre-activation of neuron n) for the current layer.
    std::vector<double> delta(output.size());
    for (size_t o = 0; o < output.size(); ++o) {
        const double err = output[o] - target[o];
        sq_err += err * err;
        delta[o] =
            err * DerivativeFromOutput(layers.back().act, output[o]);
    }

    for (size_t li = layers.size(); li-- > 0;) {
        const Layer& layer = layers[li];
        const auto& prev_act = trace.activations[li];
        auto& grad = (*grads)[li];
        for (size_t n = 0; n < layer.out; ++n) {
            const double d = delta[n];
            const size_t row = n * (layer.in + 1);
            for (size_t i = 0; i < layer.in; ++i)
                grad[row + i] += d * prev_act[i];
            grad[row + layer.in] += d;  // bias
        }
        if (li == 0)
            break;
        // Propagate delta to the previous layer.
        std::vector<double> prev_delta(layer.in, 0.0);
        for (size_t i = 0; i < layer.in; ++i) {
            double sum = 0.0;
            for (size_t n = 0; n < layer.out; ++n)
                sum += layer.W(n, i) * delta[n];
            prev_delta[i] =
                sum * DerivativeFromOutput(layers[li - 1].act, prev_act[i]);
        }
        delta.swap(prev_delta);
    }
    return sq_err;
}

}  // namespace

TrainResult
Train(Mlp* mlp, const Dataset& data, const TrainConfig& config)
{
    RUMBA_CHECK(mlp != nullptr);
    RUMBA_CHECK(!data.Empty());
    RUMBA_CHECK(data.NumInputs() == mlp->GetTopology().NumInputs());
    RUMBA_CHECK(data.NumTargets() == mlp->GetTopology().NumOutputs());

    Rng rng(config.seed);
    mlp->RandomizeWeights(&rng);

    // Split out a validation set (copy; datasets are modest in size).
    Dataset shuffled = data;
    shuffled.Shuffle(&rng);
    Dataset validation = shuffled.TakeFront(config.validation_fraction);
    const Dataset& train = shuffled;
    const bool has_validation = !validation.Empty();

    std::vector<size_t> order(train.Size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    auto velocity = ZeroLike(*mlp);
    auto grads = ZeroLike(*mlp);

    TrainResult result;
    double best_val = 1.0 / 0.0;
    std::string best_weights;
    size_t since_best = 0;
    double lr = config.learning_rate;

    for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
        rng.Shuffle(order);
        double epoch_sq = 0.0;
        const size_t batch = 16;
        for (size_t start = 0; start < order.size(); start += batch) {
            const size_t end = std::min(order.size(), start + batch);
            for (auto& g : grads)
                std::fill(g.begin(), g.end(), 0.0);
            for (size_t s = start; s < end; ++s)
                epoch_sq += BackpropSample(mlp, train.Input(order[s]),
                                           train.Target(order[s]), &grads);
            const double scale = lr / static_cast<double>(end - start);
            auto& layers = mlp->MutableLayers();
            for (size_t li = 0; li < layers.size(); ++li) {
                auto& w = layers[li].weights;
                auto& v = velocity[li];
                const auto& g = grads[li];
                for (size_t k = 0; k < w.size(); ++k) {
                    v[k] = config.momentum * v[k] - scale * g[k];
                    w[k] += v[k];
                }
            }
        }
        result.train_mse =
            epoch_sq / (static_cast<double>(train.Size()) *
                        static_cast<double>(data.NumTargets()));
        result.epochs_run = epoch + 1;
        lr *= config.lr_decay;

        if (has_validation) {
            const double val = mlp->MeanSquaredError(validation);
            if (val < best_val) {
                best_val = val;
                best_weights = mlp->Serialize();
                since_best = 0;
            } else if (++since_best >= config.patience) {
                break;
            }
        }
    }

    if (has_validation && !best_weights.empty()) {
        *mlp = Mlp::Deserialize(best_weights);
        result.validation_mse = best_val;
    } else {
        result.validation_mse = result.train_mse;
    }
    return result;
}

}  // namespace rumba::nn
