#ifndef RUMBA_NN_TOPOLOGY_H_
#define RUMBA_NN_TOPOLOGY_H_

/**
 * @file
 * MLP topology descriptor in the paper's "6->8->4->1" notation
 * (Table 1).
 */

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace rumba::nn {

/** Layer widths of an MLP, input first, output last. */
struct Topology {
    std::vector<size_t> layers;

    /** "a->b->c" rendering matching Table 1 of the paper. */
    std::string ToString() const;

    /** Parse the "a->b->c" notation; fatal on malformed input. */
    static Topology Parse(const std::string& text);

    /** Parse() that reports malformed input instead of dying — for
     *  blobs that arrive as external data (deployment artifacts). */
    static std::optional<Topology> TryParse(const std::string& text);

    /** Number of inputs. */
    size_t NumInputs() const { return layers.front(); }

    /** Number of outputs. */
    size_t NumOutputs() const { return layers.back(); }

    /** Hidden layer count. */
    size_t NumHiddenLayers() const { return layers.size() - 2; }

    /** Total non-input neurons (what the NPU must schedule). */
    size_t NumNeurons() const;

    /** Multiply-accumulate operations per forward pass (incl. bias). */
    size_t MacsPerInvocation() const;

    bool operator==(const Topology& other) const = default;
};

}  // namespace rumba::nn

#endif  // RUMBA_NN_TOPOLOGY_H_
