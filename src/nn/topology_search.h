#ifndef RUMBA_NN_TOPOLOGY_SEARCH_H_
#define RUMBA_NN_TOPOLOGY_SEARCH_H_

/**
 * @file
 * Offline topology search (the paper's "accelerator trainer"): pick
 * the smallest network, bounded to at most two hidden layers of at
 * most 32 neurons (the NPU paper's restriction, kept by Rumba), whose
 * validation error stays within a tolerance of the best candidate's.
 */

#include <cstdint>
#include <vector>

#include "nn/mlp.h"
#include "nn/trainer.h"

namespace rumba {
class Dataset;
}

namespace rumba::nn {

/** Search space and selection policy. */
struct SearchConfig {
    /** Candidate hidden-layer shapes; an empty entry means no hidden. */
    std::vector<std::vector<size_t>> hidden_candidates = {
        {4}, {8}, {16}, {32}, {4, 4}, {8, 4}, {8, 8}, {16, 8}, {32, 8},
    };
    /** A candidate qualifies when its validation MSE is within this
     *  multiple of the best validation MSE seen... */
    double slack = 1.25;
    /** ...or within this absolute MSE of the best (relative slack is
     *  meaningless once every candidate is near-perfect). */
    double absolute_slack = 1e-4;
    /** Trainer settings applied to each candidate. */
    TrainConfig train;
};

/** One explored candidate. */
struct SearchEntry {
    Topology topology;        ///< candidate shape.
    double validation_mse;    ///< its trained validation error.
    size_t macs;              ///< forward-pass cost (selection key).
};

/** Search outcome: selected network plus the full exploration log. */
struct SearchResult {
    Mlp best;                          ///< retrained winning network.
    std::vector<SearchEntry> entries;  ///< everything explored.
};

/**
 * Train each candidate topology on @p data and return the cheapest
 * (fewest MACs) candidate whose validation error is within
 * config.slack of the best error; ties broken toward fewer MACs.
 */
SearchResult SearchTopology(const rumba::Dataset& data,
                            const SearchConfig& config);

}  // namespace rumba::nn

#endif  // RUMBA_NN_TOPOLOGY_SEARCH_H_
