#ifndef RUMBA_NN_TRAINER_H_
#define RUMBA_NN_TRAINER_H_

/**
 * @file
 * Offline backpropagation trainer — the "accelerator trainer" box in
 * Figure 4 of the paper. Mini-batch SGD with momentum on mean squared
 * error, with a held-out validation split and best-weights restore.
 */

#include <cstdint>

#include "nn/mlp.h"

namespace rumba {
class Dataset;
}

namespace rumba::nn {

/** Hyper-parameters for Train(). */
struct TrainConfig {
    size_t epochs = 120;          ///< full passes over the data.
    double learning_rate = 0.25;  ///< SGD step size.
    double momentum = 0.9;        ///< classical momentum.
    double lr_decay = 0.99;       ///< multiplicative decay per epoch.
    double validation_fraction = 0.15;  ///< held out for early scoring.
    uint64_t seed = 1;            ///< weight init + shuffling.
    size_t patience = 25;         ///< epochs without improvement before stop.
};

/** Outcome of a training run. */
struct TrainResult {
    double train_mse = 0.0;       ///< final MSE on the training split.
    double validation_mse = 0.0;  ///< best MSE on the validation split.
    size_t epochs_run = 0;        ///< epochs actually executed.
};

/**
 * Train @p mlp on @p data in place.
 *
 * Inputs and targets are expected to be normalized to roughly [0, 1]
 * (see rumba::Normalizer); sigmoid outputs cannot reach values far
 * outside that range.
 */
TrainResult Train(Mlp* mlp, const rumba::Dataset& data,
                  const TrainConfig& config);

}  // namespace rumba::nn

#endif  // RUMBA_NN_TRAINER_H_
