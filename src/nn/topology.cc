#include "nn/topology.h"

#include <sstream>

#include "common/logging.h"

namespace rumba::nn {

std::string
Topology::ToString() const
{
    std::ostringstream out;
    for (size_t i = 0; i < layers.size(); ++i) {
        if (i)
            out << "->";
        out << layers[i];
    }
    return out.str();
}

Topology
Topology::Parse(const std::string& text)
{
    std::optional<Topology> topo = TryParse(text);
    if (!topo.has_value())
        Fatal("malformed topology '%s'", text.c_str());
    return *std::move(topo);
}

std::optional<Topology>
Topology::TryParse(const std::string& text)
{
    Topology topo;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t next = text.find("->", pos);
        const std::string token = text.substr(
            pos, next == std::string::npos ? std::string::npos : next - pos);
        char* end = nullptr;
        const long v = std::strtol(token.c_str(), &end, 10);
        if (end == token.c_str() || v <= 0)
            return std::nullopt;
        topo.layers.push_back(static_cast<size_t>(v));
        if (next == std::string::npos)
            break;
        pos = next + 2;
    }
    if (topo.layers.size() < 2)
        return std::nullopt;
    return topo;
}

size_t
Topology::NumNeurons() const
{
    size_t n = 0;
    for (size_t i = 1; i < layers.size(); ++i)
        n += layers[i];
    return n;
}

size_t
Topology::MacsPerInvocation() const
{
    size_t macs = 0;
    for (size_t i = 1; i < layers.size(); ++i)
        macs += layers[i] * (layers[i - 1] + 1);
    return macs;
}

}  // namespace rumba::nn
