#ifndef RUMBA_NN_ACTIVATION_H_
#define RUMBA_NN_ACTIVATION_H_

/**
 * @file
 * Neuron activation functions shared by the software MLP and the NPU
 * datapath model. The NPU paper's processing elements implement
 * sigmoid via a lookup table; the software reference uses the exact
 * function, and the NPU model quantizes it (see npu/pe.h).
 */

#include <cmath>

#include "common/logging.h"

namespace rumba::nn {

/** Supported activation functions. */
enum class Activation {
    kSigmoid,  ///< logistic 1 / (1 + e^-x)
    kTanh,     ///< hyperbolic tangent
    kLinear,   ///< identity (typical for regression output layers)
};

/** Evaluate @p act at @p x. */
inline double
Evaluate(Activation act, double x)
{
    switch (act) {
      case Activation::kSigmoid:
        return 1.0 / (1.0 + std::exp(-x));
      case Activation::kTanh:
        return std::tanh(x);
      case Activation::kLinear:
        return x;
    }
    Panic("unknown activation");
}

/**
 * Derivative of @p act expressed in terms of the *output* value @p y
 * (the form backpropagation wants).
 */
inline double
DerivativeFromOutput(Activation act, double y)
{
    switch (act) {
      case Activation::kSigmoid:
        return y * (1.0 - y);
      case Activation::kTanh:
        return 1.0 - y * y;
      case Activation::kLinear:
        return 1.0;
    }
    Panic("unknown activation");
}

/** Short name used in serialized models. */
inline const char*
Name(Activation act)
{
    switch (act) {
      case Activation::kSigmoid:
        return "sigmoid";
      case Activation::kTanh:
        return "tanh";
      case Activation::kLinear:
        return "linear";
    }
    Panic("unknown activation");
}

}  // namespace rumba::nn

#endif  // RUMBA_NN_ACTIVATION_H_
