#include "nn/topology_search.h"

#include <algorithm>
#include <limits>

#include "common/dataset.h"
#include "common/logging.h"

namespace rumba::nn {

SearchResult
SearchTopology(const Dataset& data, const SearchConfig& config)
{
    RUMBA_CHECK(!config.hidden_candidates.empty());

    std::vector<SearchEntry> entries;
    double best_mse = std::numeric_limits<double>::infinity();

    std::vector<Mlp> trained;
    trained.reserve(config.hidden_candidates.size());

    for (const auto& hidden : config.hidden_candidates) {
        Topology topo;
        topo.layers.push_back(data.NumInputs());
        for (size_t h : hidden) {
            RUMBA_CHECK(h >= 1 && h <= 32);
            topo.layers.push_back(h);
        }
        topo.layers.push_back(data.NumTargets());

        Mlp mlp(topo);
        const TrainResult tr = Train(&mlp, data, config.train);
        entries.push_back(
            {topo, tr.validation_mse, topo.MacsPerInvocation()});
        trained.push_back(std::move(mlp));
        best_mse = std::min(best_mse, tr.validation_mse);
    }

    // Smallest qualifying network.
    size_t chosen = 0;
    size_t chosen_macs = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < entries.size(); ++i) {
        const bool qualifies =
            entries[i].validation_mse <= best_mse * config.slack ||
            entries[i].validation_mse <= best_mse + config.absolute_slack;
        if (qualifies && entries[i].macs < chosen_macs) {
            chosen = i;
            chosen_macs = entries[i].macs;
        }
    }

    return SearchResult{std::move(trained[chosen]), std::move(entries)};
}

}  // namespace rumba::nn
