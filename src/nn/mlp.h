#ifndef RUMBA_NN_MLP_H_
#define RUMBA_NN_MLP_H_

/**
 * @file
 * A feed-forward multi-layer perceptron. This is the software model
 * of the network the approximate accelerator executes; the NPU model
 * (src/npu) consumes its weights and replays the same computation on
 * a fixed-point datapath.
 */

#include <optional>
#include <string>
#include <vector>

#include "nn/activation.h"
#include "nn/topology.h"

namespace rumba {
class Dataset;
class Rng;
}

namespace rumba::nn {

/** One fully connected layer: out x (in + 1) weights, bias last. */
struct Layer {
    size_t in = 0;                 ///< inputs to the layer.
    size_t out = 0;                ///< neurons in the layer.
    Activation act = Activation::kSigmoid;  ///< activation applied.
    std::vector<double> weights;   ///< row-major [out][in + 1].

    /** Weight of neuron @p n for input @p i. */
    double& W(size_t n, size_t i) { return weights[n * (in + 1) + i]; }

    /** Const weight of neuron @p n for input @p i. */
    double W(size_t n, size_t i) const { return weights[n * (in + 1) + i]; }

    /** Bias of neuron @p n. */
    double& Bias(size_t n) { return weights[n * (in + 1) + in]; }

    /** Const bias of neuron @p n. */
    double Bias(size_t n) const { return weights[n * (in + 1) + in]; }
};

/** Per-layer activations captured during a forward pass. */
struct ForwardTrace {
    /** activations[0] is the input; activations.back() the output. */
    std::vector<std::vector<double>> activations;
};

/** Feed-forward MLP with per-layer activations. */
class Mlp {
  public:
    /**
     * Build an MLP with @p hidden_act on hidden layers and
     * @p output_act on the last layer. Weights start at zero; call
     * RandomizeWeights() or deserialize before use.
     */
    explicit Mlp(const Topology& topology,
                 Activation hidden_act = Activation::kSigmoid,
                 Activation output_act = Activation::kSigmoid);

    /** The layer widths. */
    const Topology& GetTopology() const { return topology_; }

    /** Layers, input-side first. */
    const std::vector<Layer>& Layers() const { return layers_; }

    /** Mutable layers (the trainer updates weights in place). */
    std::vector<Layer>& MutableLayers() { return layers_; }

    /** Initialize weights uniformly in [-scale, scale]. */
    void RandomizeWeights(Rng* rng, double scale = 0.5);

    /** Run one forward pass. @p input size must match the topology. */
    std::vector<double> Forward(const std::vector<double>& input) const;

    /** Forward pass retaining every layer's activations (for training). */
    ForwardTrace ForwardWithTrace(const std::vector<double>& input) const;

    /** Mean squared error over a whole dataset. */
    double MeanSquaredError(const rumba::Dataset& data) const;

    /** Total trainable parameters. */
    size_t NumParameters() const;

    /** Serialize topology + weights to a line-oriented text blob. */
    std::string Serialize() const;

    /**
     * Recreate an MLP from Serialize() output. Fatal on malformed
     * input (serialized models ship inside the binary, so corruption
     * is a build bug, not user error).
     */
    static Mlp Deserialize(const std::string& blob);

    /** Deserialize() that reports a malformed blob instead of dying —
     *  for model text that arrives as external data (deployment
     *  artifacts), where corruption is an input error. */
    static std::optional<Mlp> TryDeserialize(const std::string& blob);

  private:
    Topology topology_;
    std::vector<Layer> layers_;
};

}  // namespace rumba::nn

#endif  // RUMBA_NN_MLP_H_
