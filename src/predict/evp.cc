#include "predict/evp.h"

#include <cmath>

#include "common/dataset.h"
#include "common/logging.h"
#include "common/matrix.h"

#include <sstream>

namespace rumba::predict {

ValuePredictionError::ValuePredictionError(double ridge) : ridge_(ridge) {}

void
ValuePredictionError::Train(const Dataset& data)
{
    RUMBA_CHECK(!data.Empty());
    const size_t n = data.NumInputs();
    const size_t dim = n + 1;
    num_outputs_ = data.NumTargets();

    // Shared Gram matrix, one right-hand side per output.
    Matrix xtx(dim, dim);
    std::vector<std::vector<double>> xty(num_outputs_,
                                         std::vector<double>(dim, 0.0));
    std::vector<double> row(dim, 1.0);
    for (size_t s = 0; s < data.Size(); ++s) {
        const auto& x = data.Input(s);
        for (size_t i = 0; i < n; ++i)
            row[i] = x[i];
        row[n] = 1.0;
        for (size_t i = 0; i < dim; ++i) {
            for (size_t j = i; j < dim; ++j)
                xtx.At(i, j) += row[i] * row[j];
            for (size_t o = 0; o < num_outputs_; ++o)
                xty[o][i] += row[i] * data.Target(s)[o];
        }
    }
    for (size_t i = 0; i < dim; ++i) {
        for (size_t j = 0; j < i; ++j)
            xtx.At(i, j) = xtx.At(j, i);
        xtx.At(i, i) += ridge_;
    }

    weights_.assign(num_outputs_, {});
    for (size_t o = 0; o < num_outputs_; ++o) {
        if (!xtx.Solve(xty[o], &weights_[o]))
            Fatal("EVP predictor: singular normal equations");
    }
}

double
ValuePredictionError::PredictError(
    const std::vector<double>& inputs,
    const std::vector<double>& approx_outputs)
{
    RUMBA_CHECK(!weights_.empty());
    RUMBA_CHECK(approx_outputs.size() == num_outputs_);
    double err = 0.0;
    for (size_t o = 0; o < num_outputs_; ++o) {
        const auto& w = weights_[o];
        RUMBA_CHECK(inputs.size() + 1 == w.size());
        double predicted = w.back();
        for (size_t i = 0; i < inputs.size(); ++i)
            predicted += w[i] * inputs[i];
        err += std::fabs(predicted - approx_outputs[o]);
    }
    return err / static_cast<double>(num_outputs_);
}

sim::CheckerCost
ValuePredictionError::CostPerCheck() const
{
    sim::CheckerCost cost;
    const double dim =
        weights_.empty() ? 1.0 : static_cast<double>(weights_[0].size());
    const double outs = static_cast<double>(std::max<size_t>(1,
                                                             num_outputs_));
    cost.macs = dim * outs;
    cost.table_reads = dim * outs;
    cost.compares = outs + 1;
    cost.cycles = dim * outs + 1;
    return cost;
}


std::string
ValuePredictionError::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "evp " << ridge_ << " " << num_outputs_ << " "
        << (weights_.empty() ? 0 : weights_[0].size());
    for (const auto& row : weights_)
        for (double w : row)
            out << " " << w;
    out << "\n";
    return out.str();
}

ValuePredictionError
ValuePredictionError::Deserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    double ridge = 0.0;
    size_t outputs = 0, dim = 0;
    in >> tag >> ridge >> outputs >> dim;
    if (tag != "evp")
        Fatal("EVP blob missing 'evp' header");
    ValuePredictionError p(ridge);
    p.num_outputs_ = outputs;
    p.weights_.assign(outputs, std::vector<double>(dim, 0.0));
    for (auto& row : p.weights_) {
        for (auto& w : row) {
            if (!(in >> w))
                Fatal("EVP blob truncated");
        }
    }
    return p;
}

}  // namespace rumba::predict
