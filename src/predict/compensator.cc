#include "predict/compensator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace rumba::predict {

Compensator
Compensator::Train(const rumba::Dataset& data,
                   const nn::TrainConfig& config)
{
    RUMBA_CHECK(!data.Empty());
    const size_t in_w = data.NumInputs();
    const size_t out_w = data.NumTargets();
    // One hidden layer sized to the feature width, and a *linear*
    // output head: the targets are signed normalized residuals, so
    // "predict zero" is exactly the approximate answer and every bit
    // of learned signal is a net error reduction. (A head that
    // predicts the full output instead collapses into copying the
    // approximate-output features — a local optimum that compensates
    // nothing.)
    nn::Topology topology;
    topology.layers = {in_w, std::max<size_t>(8, 2 * in_w), out_w};
    Compensator model;
    model.mlp_.emplace(topology, nn::Activation::kSigmoid,
                       nn::Activation::kLinear);
    nn::Train(&*model.mlp_, data, config);
    return model;
}

bool
Compensator::Predict(const std::vector<double>& features,
                     std::vector<double>* norm_residual) const
{
    RUMBA_CHECK(Trained());
    RUMBA_CHECK(features.size() == InputArity());
    RUMBA_CHECK(norm_residual != nullptr);
    for (double v : features) {
        if (!std::isfinite(v))
            return false;
    }
    *norm_residual = mlp_->Forward(features);
    for (double v : *norm_residual) {
        if (!std::isfinite(v))
            return false;  // leave the whole element approximate.
    }
    return true;
}

std::string
Compensator::Serialize() const
{
    RUMBA_CHECK(Trained());
    return "compensator\n" + mlp_->Serialize();
}

core::Result<Compensator>
Compensator::TryDeserialize(const std::string& blob)
{
    const auto data_loss = [](std::string message) {
        return core::Status(core::StatusCode::kDataLoss,
                            std::move(message));
    };
    const size_t newline = blob.find('\n');
    if (newline == std::string::npos ||
        blob.substr(0, newline) != "compensator")
        return data_loss("compensator blob missing header");
    std::optional<nn::Mlp> mlp =
        nn::Mlp::TryDeserialize(blob.substr(newline + 1));
    if (!mlp.has_value())
        return data_loss("compensator blob has a malformed network");
    Compensator model;
    model.mlp_ = *std::move(mlp);
    return model;
}

}  // namespace rumba::predict
