#ifndef RUMBA_PREDICT_PREDICTOR_H_
#define RUMBA_PREDICT_PREDICTOR_H_

/**
 * @file
 * Light-weight approximation-error predictors (Section 3.2 of the
 * paper). A predictor estimates, for each accelerator invocation, how
 * wrong the approximate output is — without access to the exact
 * result. Input-based predictors (linear model, decision tree) look
 * at the accelerator's inputs; output-based predictors (EMA) look at
 * the stream of approximate outputs.
 *
 * Predictors follow the paper's EEP design: they are trained offline
 * to regress the *error* directly (shown in Section 3.2 to beat
 * predicting the value and differencing, the EVP alternative, which
 * is also implemented for the comparison study).
 */

#include <memory>
#include <string>
#include <vector>

#include "sim/energy_model.h"

namespace rumba {
class Dataset;
}

namespace rumba::predict {

/** Interface of an online error checker. */
class ErrorPredictor {
  public:
    virtual ~ErrorPredictor() = default;

    /** Human-readable scheme name ("linearErrors", "treeErrors", ...). */
    virtual std::string Name() const = 0;

    /** True when the checker reads accelerator inputs (Section 3.5
     *  placement applies); false for output-based checkers. */
    virtual bool IsInputBased() const = 0;

    /**
     * Offline training. @p data pairs accelerator inputs (normalized)
     * with the observed scalar element error of the accelerator on
     * the training inputs. Output-based predictors may ignore it.
     */
    virtual void Train(const rumba::Dataset& data) = 0;

    /**
     * Predict the current invocation's error.
     * @param inputs normalized accelerator inputs.
     * @param approx_outputs the accelerator's (approximate) outputs,
     *        normalized; used by output-based predictors.
     */
    virtual double PredictError(const std::vector<double>& inputs,
                                const std::vector<double>& approx_outputs)
        = 0;

    /** Clear any sequential state (EMA history) between runs. */
    virtual void Reset() {}

    /** Hardware cost of one check, for the energy/timing models. */
    virtual sim::CheckerCost CostPerCheck() const = 0;

    /**
     * Serialize the trained configuration to a text blob — the
     * "configuration parameters ... embedded in the binary" of
     * Figure 4. Rebuild with DeserializePredictor().
     */
    virtual std::string Serialize() const = 0;
};

/**
 * Rebuild a trained checker from ErrorPredictor::Serialize() output.
 * Dispatches on the blob's leading tag; fatal on malformed input.
 */
std::unique_ptr<ErrorPredictor> DeserializePredictor(
    const std::string& blob);

/**
 * Rebuild a trained checker without dying: nullptr when the blob's
 * leading tag names no known scheme (fallible artifact loaders check
 * this before committing to a runtime). The blob is read through a
 * const reference only — shards of a serving engine deserialize their
 * replicas from one shared artifact.
 */
std::unique_ptr<ErrorPredictor> TryDeserializePredictor(
    const std::string& blob);

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_PREDICTOR_H_
