#ifndef RUMBA_PREDICT_EMA_H_
#define RUMBA_PREDICT_EMA_H_

/**
 * @file
 * EMA: the output-based checker (Section 3.2.3, Equation 2). It keeps
 * an exponential moving average of each output dimension and flags an
 * element whose output deviates from the running average. Requires no
 * training and no access to inputs, but only works when neighbouring
 * outputs are correlated.
 */

#include <vector>

#include "predict/predictor.h"

namespace rumba::predict {

/** Exponential-moving-average output deviation detector. */
class EmaDetector : public ErrorPredictor {
  public:
    /**
     * @p history is N in alpha = 2/(1+N) — the effective window of
     * the moving average.
     */
    explicit EmaDetector(size_t history = 8);

    std::string Name() const override { return "EMA"; }

    bool IsInputBased() const override { return false; }

    /** EMA needs no offline training; this is a no-op. */
    void Train(const rumba::Dataset& data) override;

    double PredictError(const std::vector<double>& inputs,
                        const std::vector<double>& approx_outputs) override;

    void Reset() override;

    sim::CheckerCost CostPerCheck() const override;

    std::string Serialize() const override;

    /** Rebuild from Serialize() output. */
    static EmaDetector Deserialize(const std::string& blob);

    /** Smoothing factor alpha = 2/(1+N). */
    double Alpha() const { return alpha_; }

  private:
    double alpha_;
    std::vector<double> ema_;  ///< per-output running average.
    bool primed_ = false;
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_EMA_H_
