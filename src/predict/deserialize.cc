#include "predict/predictor.h"

#include <sstream>

#include "common/logging.h"
#include "predict/ema.h"
#include "predict/evp.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba::predict {

std::unique_ptr<ErrorPredictor>
DeserializePredictor(const std::string& blob)
{
    auto predictor = TryDeserializePredictor(blob);
    if (predictor == nullptr) {
        std::istringstream in(blob);
        std::string tag;
        in >> tag;
        Fatal("unknown predictor blob tag '%s'", tag.c_str());
    }
    return predictor;
}

std::unique_ptr<ErrorPredictor>
TryDeserializePredictor(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    in >> tag;
    if (tag == "linear") {
        return std::make_unique<LinearErrorPredictor>(
            LinearErrorPredictor::Deserialize(blob));
    }
    if (tag == "tree") {
        return std::make_unique<TreeErrorPredictor>(
            TreeErrorPredictor::Deserialize(blob));
    }
    if (tag == "ema") {
        return std::make_unique<EmaDetector>(
            EmaDetector::Deserialize(blob));
    }
    if (tag == "evp") {
        return std::make_unique<ValuePredictionError>(
            ValuePredictionError::Deserialize(blob));
    }
    return nullptr;
}

}  // namespace rumba::predict
