#include "predict/ema.h"

#include <cmath>

#include "common/logging.h"

#include <sstream>

namespace rumba::predict {

EmaDetector::EmaDetector(size_t history)
    : alpha_(2.0 / (1.0 + static_cast<double>(history)))
{
    RUMBA_CHECK(history >= 1);
}

void
EmaDetector::Train(const Dataset& /*data*/)
{
    // Output-based: no offline model.
}

double
EmaDetector::PredictError(const std::vector<double>& /*inputs*/,
                          const std::vector<double>& approx_outputs)
{
    RUMBA_CHECK(!approx_outputs.empty());
    if (!primed_ || ema_.size() != approx_outputs.size()) {
        ema_ = approx_outputs;
        primed_ = true;
        return 0.0;
    }
    // Deviation of this element from the running average, then fold
    // the element into the average (Equation 2).
    double deviation = 0.0;
    for (size_t d = 0; d < approx_outputs.size(); ++d) {
        deviation += std::fabs(approx_outputs[d] - ema_[d]);
        ema_[d] = approx_outputs[d] * alpha_ + ema_[d] * (1.0 - alpha_);
    }
    return deviation / static_cast<double>(approx_outputs.size());
}

void
EmaDetector::Reset()
{
    ema_.clear();
    primed_ = false;
}

sim::CheckerCost
EmaDetector::CostPerCheck() const
{
    sim::CheckerCost cost;
    const double dims = ema_.empty() ? 1.0
                                     : static_cast<double>(ema_.size());
    cost.ema_updates = dims;   // 2 multiplies + add per dimension.
    cost.compares = dims + 1;  // |out - ema| + threshold test.
    cost.cycles = 2.0 + dims;
    return cost;
}


std::string
EmaDetector::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "ema " << alpha_ << "\n";
    return out.str();
}

EmaDetector
EmaDetector::Deserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    double alpha = 0.0;
    in >> tag >> alpha;
    if (tag != "ema" || alpha <= 0.0 || alpha > 1.0)
        Fatal("malformed EMA blob");
    EmaDetector d(1);
    d.alpha_ = alpha;
    return d;
}

}  // namespace rumba::predict
