#ifndef RUMBA_PREDICT_COMPENSATOR_H_
#define RUMBA_PREDICT_COMPENSATOR_H_

/**
 * @file
 * Self-compensation model for the recovery middle tier (per
 * "Machine Learning-Based Self-Compensating Approximate Computing").
 * The EEP checkers predict an element's scalar error *magnitude*;
 * actually correcting an output in place needs the signed residual
 * per output instead. This model is a small residual network: it
 * maps an element's feature vector — normalized inputs concatenated
 * with the normalized *approximate outputs* — to the signed
 * NN-domain residual (exact − approximate), trained over the same
 * elements the checker trainer uses. The output half of the
 * features matters: the EEP checkers only ever saw the inputs, so
 * the elements they misjudge are exactly the ones where inputs
 * alone carry no signal — where the accelerator actually landed is
 * fresh evidence about the approximation's residual. Applying it
 * costs one small forward pass — far cheaper than an exact CPU
 * re-execution of the kernel — and the domain conversions stay with
 * the pipeline that owns the normalizers.
 */

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "core/status.h"
#include "nn/mlp.h"
#include "nn/trainer.h"

namespace rumba::predict {

/** Residual network: [norm inputs | norm approx outputs] → the
 *  signed NN-domain residual exact − approximate. */
class Compensator {
  public:
    /** Untrained compensator; Predict() is a checked error until
     *  Train()/TryDeserialize() produce a trained one. */
    Compensator() = default;

    /**
     * Train the residual network: @p data holds normalized element
     * features against signed NN-domain residuals exact − approx.
     * The topology is derived from the data arities (one hidden
     * layer sized to the feature width, linear output head).
     */
    static Compensator Train(const rumba::Dataset& data,
                             const nn::TrainConfig& config);

    /** True once a trained network exists. */
    bool Trained() const { return mlp_.has_value(); }

    /** Input features the model was fit on. */
    size_t InputArity() const
    {
        return Trained() ? mlp_->GetTopology().NumInputs() : 0;
    }

    /** Outputs the model corrects. */
    size_t OutputArity() const
    {
        return Trained() ? mlp_->GetTopology().NumOutputs() : 0;
    }

    /**
     * Predict one element's signed NN-domain residual into
     * @p norm_residual (add it to the normalized approximate outputs
     * to compensate). A non-finite feature or prediction returns
     * false with @p norm_residual unspecified — compensation must
     * never make an output worse than approximate, and the runtime's
     * non-finite salvage owns garbage values.
     */
    bool Predict(const std::vector<double>& features,
                 std::vector<double>* norm_residual) const;

    /** Multi-line text record (header + the network blob). */
    std::string Serialize() const;

    /** Rebuild from Serialize() output; core::kDataLoss on a
     *  malformed blob. */
    static core::Result<Compensator> TryDeserialize(
        const std::string& blob);

  private:
    std::optional<nn::Mlp> mlp_;
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_COMPENSATOR_H_
