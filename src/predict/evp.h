#ifndef RUMBA_PREDICT_EVP_H_
#define RUMBA_PREDICT_EVP_H_

/**
 * @file
 * EVP — Errors by Value Prediction (Section 3.2). Instead of
 * regressing the error directly (EEP), EVP regresses the *output*
 * from the inputs and estimates the error as the distance between its
 * predicted output and the accelerator's output. The paper measures
 * EVP to be ~2.5x less accurate than EEP on the Gaussian study; this
 * implementation exists to reproduce that comparison (fig05 bench).
 */

#include "predict/predictor.h"

namespace rumba::predict {

/** Value-prediction error estimator (the EVP alternative). */
class ValuePredictionError : public ErrorPredictor {
  public:
    explicit ValuePredictionError(double ridge = 1e-6);

    std::string Name() const override { return "linearEVP"; }

    bool IsInputBased() const override { return true; }

    /**
     * Trains the value model. Unlike EEP predictors, @p data must
     * pair accelerator inputs with the *exact outputs* (any arity).
     */
    void Train(const rumba::Dataset& data) override;

    /** Mean |predicted output - accelerator output| across outputs. */
    double PredictError(const std::vector<double>& inputs,
                        const std::vector<double>& approx_outputs) override;

    sim::CheckerCost CostPerCheck() const override;

    std::string Serialize() const override;

    /** Rebuild from Serialize() output. */
    static ValuePredictionError Deserialize(const std::string& blob);

  private:
    double ridge_;
    size_t num_outputs_ = 0;
    /** weights_[o] holds input weights + bias for output o. */
    std::vector<std::vector<double>> weights_;
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_EVP_H_
