#include "predict/linear.h"

#include "common/dataset.h"
#include "common/logging.h"
#include "common/matrix.h"

#include <sstream>

namespace rumba::predict {

LinearErrorPredictor::LinearErrorPredictor(double ridge) : ridge_(ridge)
{
    RUMBA_CHECK(ridge >= 0.0);
}

void
LinearErrorPredictor::Train(const Dataset& data)
{
    RUMBA_CHECK(!data.Empty());
    RUMBA_CHECK(data.NumTargets() == 1);
    const size_t n = data.NumInputs();
    const size_t dim = n + 1;  // + bias

    // Normal equations: (X'X + ridge*I) w = X'y with X rows
    // [x0 .. xn-1 1].
    Matrix xtx(dim, dim);
    std::vector<double> xty(dim, 0.0);
    std::vector<double> row(dim, 1.0);
    for (size_t s = 0; s < data.Size(); ++s) {
        const auto& x = data.Input(s);
        for (size_t i = 0; i < n; ++i)
            row[i] = x[i];
        row[n] = 1.0;
        const double y = data.Target(s)[0];
        for (size_t i = 0; i < dim; ++i) {
            xty[i] += row[i] * y;
            for (size_t j = i; j < dim; ++j)
                xtx.At(i, j) += row[i] * row[j];
        }
    }
    for (size_t i = 0; i < dim; ++i) {
        for (size_t j = 0; j < i; ++j)
            xtx.At(i, j) = xtx.At(j, i);
        xtx.At(i, i) += ridge_;
    }

    if (!xtx.Solve(xty, &weights_)) {
        // Degenerate inputs: retry with a heavier ridge.
        for (size_t i = 0; i < dim; ++i)
            xtx.At(i, i) += 1e-3;
        if (!xtx.Solve(xty, &weights_))
            Fatal("linear predictor: singular normal equations");
    }
}

double
LinearErrorPredictor::PredictError(const std::vector<double>& inputs,
                                   const std::vector<double>& /*outputs*/)
{
    RUMBA_CHECK(!weights_.empty());
    RUMBA_CHECK(inputs.size() + 1 == weights_.size());
    double err = weights_.back();
    for (size_t i = 0; i < inputs.size(); ++i)
        err += weights_[i] * inputs[i];
    return err;
}

sim::CheckerCost
LinearErrorPredictor::CostPerCheck() const
{
    sim::CheckerCost cost;
    const double dim = static_cast<double>(weights_.size());
    cost.macs = dim;            // one MAC per weight (bias included).
    cost.table_reads = dim;     // coefficient-buffer reads.
    cost.compares = 1.0;        // threshold comparison.
    cost.cycles = dim + 1.0;    // serial MAC chain + compare.
    return cost;
}

}  // namespace rumba::predict

std::string
rumba::predict::LinearErrorPredictor::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "linear " << ridge_ << " " << weights_.size();
    for (double w : weights_)
        out << " " << w;
    out << "\n";
    return out.str();
}

rumba::predict::LinearErrorPredictor
rumba::predict::LinearErrorPredictor::Deserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    double ridge = 0.0;
    size_t count = 0;
    in >> tag >> ridge >> count;
    if (tag != "linear")
        Fatal("linear blob missing 'linear' header");
    LinearErrorPredictor p(ridge);
    p.weights_.resize(count);
    for (auto& w : p.weights_) {
        if (!(in >> w))
            Fatal("linear blob truncated");
    }
    return p;
}
