#ifndef RUMBA_PREDICT_TREE_H_
#define RUMBA_PREDICT_TREE_H_

/**
 * @file
 * treeErrors: a CART-style regression tree over the accelerator
 * inputs (Figure 6 of the paper). Decision nodes compare one input
 * against a trained constant; leaves store the predicted error. The
 * paper caps the depth at 7, which we keep as the default; the online
 * check is at most `depth` comparisons on the hardware of
 * Figure 7(b).
 */

#include <cstddef>
#include <vector>

#include "predict/predictor.h"

namespace rumba::predict {

/** Decision-tree (EEP) error predictor. */
class TreeErrorPredictor : public ErrorPredictor {
  public:
    /** Tree-growing parameters. */
    struct Options {
        size_t max_depth = 7;          ///< paper's depth cap.
        size_t min_leaf_samples = 8;   ///< stop splitting below this.
        size_t candidate_quantiles = 16;  ///< split thresholds tried
                                          ///< per feature.
    };

    TreeErrorPredictor();
    explicit TreeErrorPredictor(const Options& options);

    std::string Name() const override { return "treeErrors"; }

    bool IsInputBased() const override { return true; }

    void Train(const rumba::Dataset& data) override;

    double PredictError(const std::vector<double>& inputs,
                        const std::vector<double>& approx_outputs) override;

    sim::CheckerCost CostPerCheck() const override;

    std::string Serialize() const override;

    /** Rebuild from Serialize() output. */
    static TreeErrorPredictor Deserialize(const std::string& blob);

    /** Nodes in the trained tree (tests/inspection). */
    size_t NumNodes() const { return nodes_.size(); }

    /** Depth actually reached by training. */
    size_t Depth() const;

  private:
    /** One tree node; leaves have feature == kLeaf. */
    struct Node {
        static constexpr int kLeaf = -1;
        int feature = kLeaf;      ///< input index tested, or kLeaf.
        double threshold = 0.0;   ///< go left when x[feature] < threshold.
        double value = 0.0;       ///< leaf prediction.
        int left = -1;            ///< left child index.
        int right = -1;           ///< right child index.
    };

    int Grow(const rumba::Dataset& data, std::vector<size_t> samples,
             size_t depth);

    Options options_;
    std::vector<Node> nodes_;
    size_t trained_depth_ = 0;
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_TREE_H_
