#include "predict/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/dataset.h"
#include "common/logging.h"

#include <sstream>

namespace rumba::predict {

namespace {

/** Mean of targets over the sample subset. */
double
SubsetMean(const Dataset& data, const std::vector<size_t>& samples)
{
    double sum = 0.0;
    for (size_t s : samples)
        sum += data.Target(s)[0];
    return samples.empty() ? 0.0
                           : sum / static_cast<double>(samples.size());
}

/** Sum of squared deviations from the subset mean. */
double
SubsetSse(const Dataset& data, const std::vector<size_t>& samples)
{
    const double mean = SubsetMean(data, samples);
    double sse = 0.0;
    for (size_t s : samples) {
        const double d = data.Target(s)[0] - mean;
        sse += d * d;
    }
    return sse;
}

}  // namespace

TreeErrorPredictor::TreeErrorPredictor() : TreeErrorPredictor(Options()) {}

TreeErrorPredictor::TreeErrorPredictor(const Options& options)
    : options_(options)
{
    RUMBA_CHECK(options.max_depth >= 1);
    RUMBA_CHECK(options.min_leaf_samples >= 1);
    RUMBA_CHECK(options.candidate_quantiles >= 2);
}

void
TreeErrorPredictor::Train(const Dataset& data)
{
    RUMBA_CHECK(!data.Empty());
    RUMBA_CHECK(data.NumTargets() == 1);
    nodes_.clear();
    trained_depth_ = 0;
    std::vector<size_t> all(data.Size());
    for (size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    Grow(data, std::move(all), 0);
}

int
TreeErrorPredictor::Grow(const Dataset& data, std::vector<size_t> samples,
                         size_t depth)
{
    trained_depth_ = std::max(trained_depth_, depth);
    const int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    nodes_[static_cast<size_t>(index)].value = SubsetMean(data, samples);

    if (depth >= options_.max_depth ||
        samples.size() < 2 * options_.min_leaf_samples) {
        return index;
    }

    const double parent_sse = SubsetSse(data, samples);
    if (parent_sse < 1e-12)
        return index;

    // Best split over all features and candidate quantile thresholds.
    int best_feature = Node::kLeaf;
    double best_threshold = 0.0;
    double best_sse = parent_sse;
    std::vector<double> values(samples.size());
    for (size_t f = 0; f < data.NumInputs(); ++f) {
        for (size_t i = 0; i < samples.size(); ++i)
            values[i] = data.Input(samples[i])[f];
        std::vector<double> sorted = values;
        std::sort(sorted.begin(), sorted.end());
        for (size_t q = 1; q < options_.candidate_quantiles; ++q) {
            const size_t pos = q * sorted.size() /
                               options_.candidate_quantiles;
            const double threshold = sorted[pos];
            if (threshold <= sorted.front() || threshold > sorted.back())
                continue;
            // Two-pass SSE of the candidate split.
            double lsum = 0.0, rsum = 0.0;
            size_t ln = 0, rn = 0;
            for (size_t i = 0; i < samples.size(); ++i) {
                const double y = data.Target(samples[i])[0];
                if (values[i] < threshold) {
                    lsum += y;
                    ++ln;
                } else {
                    rsum += y;
                    ++rn;
                }
            }
            if (ln < options_.min_leaf_samples ||
                rn < options_.min_leaf_samples) {
                continue;
            }
            const double lmean = lsum / static_cast<double>(ln);
            const double rmean = rsum / static_cast<double>(rn);
            double sse = 0.0;
            for (size_t i = 0; i < samples.size(); ++i) {
                const double y = data.Target(samples[i])[0];
                const double mean = values[i] < threshold ? lmean : rmean;
                const double d = y - mean;
                sse += d * d;
            }
            if (sse < best_sse) {
                best_sse = sse;
                best_feature = static_cast<int>(f);
                best_threshold = threshold;
            }
        }
    }

    if (best_feature == Node::kLeaf || best_sse >= parent_sse * 0.999)
        return index;

    std::vector<size_t> left, right;
    for (size_t s : samples) {
        if (data.Input(s)[static_cast<size_t>(best_feature)] <
            best_threshold) {
            left.push_back(s);
        } else {
            right.push_back(s);
        }
    }
    samples.clear();
    samples.shrink_to_fit();

    const int left_child = Grow(data, std::move(left), depth + 1);
    const int right_child = Grow(data, std::move(right), depth + 1);
    Node& node = nodes_[static_cast<size_t>(index)];
    node.feature = best_feature;
    node.threshold = best_threshold;
    node.left = left_child;
    node.right = right_child;
    return index;
}

double
TreeErrorPredictor::PredictError(const std::vector<double>& inputs,
                                 const std::vector<double>& /*outputs*/)
{
    RUMBA_CHECK(!nodes_.empty());
    size_t node = 0;
    for (;;) {
        const Node& n = nodes_[node];
        if (n.feature == Node::kLeaf)
            return n.value;
        RUMBA_CHECK(static_cast<size_t>(n.feature) < inputs.size());
        node = static_cast<size_t>(
            inputs[static_cast<size_t>(n.feature)] < n.threshold ? n.left
                                                                 : n.right);
    }
}

size_t
TreeErrorPredictor::Depth() const
{
    return trained_depth_;
}

sim::CheckerCost
TreeErrorPredictor::CostPerCheck() const
{
    sim::CheckerCost cost;
    const double depth = static_cast<double>(std::max<size_t>(1, Depth()));
    cost.compares = depth + 1.0;   // node tests + final threshold test.
    cost.table_reads = depth;      // node-constant buffer reads.
    cost.cycles = depth + 1.0;
    return cost;
}


std::string
TreeErrorPredictor::Serialize() const
{
    std::ostringstream out;
    out.precision(17);
    out << "tree " << options_.max_depth << " " << trained_depth_ << " "
        << nodes_.size() << "\n";
    for (const Node& n : nodes_) {
        out << n.feature << " " << n.threshold << " " << n.value << " "
            << n.left << " " << n.right << "\n";
    }
    return out.str();
}

TreeErrorPredictor
TreeErrorPredictor::Deserialize(const std::string& blob)
{
    std::istringstream in(blob);
    std::string tag;
    size_t max_depth = 0, depth = 0, count = 0;
    in >> tag >> max_depth >> depth >> count;
    if (tag != "tree")
        Fatal("tree blob missing 'tree' header");
    Options opt;
    opt.max_depth = std::max<size_t>(1, max_depth);
    TreeErrorPredictor p(opt);
    p.trained_depth_ = depth;
    p.nodes_.resize(count);
    for (Node& n : p.nodes_) {
        if (!(in >> n.feature >> n.threshold >> n.value >> n.left >>
              n.right)) {
            Fatal("tree blob truncated");
        }
    }
    if (p.nodes_.empty())
        Fatal("tree blob has no nodes");
    return p;
}

}  // namespace rumba::predict
