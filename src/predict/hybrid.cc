#include "predict/hybrid.h"

#include <cmath>
#include <limits>

#include "common/dataset.h"
#include "common/logging.h"
#include "common/random.h"
#include "predict/linear.h"
#include "predict/tree.h"

namespace rumba::predict {

HybridErrorPredictor::HybridErrorPredictor()
    : HybridErrorPredictor(Options())
{
}

HybridErrorPredictor::HybridErrorPredictor(const Options& options)
    : options_(options)
{
    RUMBA_CHECK(options.validation_fraction > 0.0 &&
                options.validation_fraction < 1.0);
}

void
HybridErrorPredictor::Train(const Dataset& data)
{
    RUMBA_CHECK(!data.Empty());
    RUMBA_CHECK(data.NumTargets() == 1);

    Rng rng(options_.seed);
    Dataset shuffled = data;
    shuffled.Shuffle(&rng);
    const Dataset validation =
        shuffled.TakeFront(options_.validation_fraction);
    const Dataset& train = shuffled;
    RUMBA_CHECK(!validation.Empty());
    RUMBA_CHECK(!train.Empty());

    auto candidates = []() {
        std::vector<std::unique_ptr<ErrorPredictor>> c;
        c.push_back(std::make_unique<LinearErrorPredictor>());
        c.push_back(std::make_unique<TreeErrorPredictor>());
        return c;
    }();

    scores_.clear();
    double best_mae = std::numeric_limits<double>::infinity();
    size_t best = 0;
    for (size_t i = 0; i < candidates.size(); ++i) {
        candidates[i]->Train(train);
        double mae = 0.0;
        for (size_t s = 0; s < validation.Size(); ++s) {
            mae += std::fabs(
                candidates[i]->PredictError(validation.Input(s), {}) -
                validation.Target(s)[0]);
        }
        mae /= static_cast<double>(validation.Size());
        scores_.emplace_back(candidates[i]->Name(), mae);
        if (mae < best_mae) {
            best_mae = mae;
            best = i;
        }
    }

    selected_ = std::move(candidates[best]);
    // Refit the winner on all the data.
    selected_->Train(data);
}

double
HybridErrorPredictor::PredictError(
    const std::vector<double>& inputs,
    const std::vector<double>& approx_outputs)
{
    RUMBA_CHECK(selected_ != nullptr);
    return selected_->PredictError(inputs, approx_outputs);
}

void
HybridErrorPredictor::Reset()
{
    if (selected_ != nullptr)
        selected_->Reset();
}

sim::CheckerCost
HybridErrorPredictor::CostPerCheck() const
{
    RUMBA_CHECK(selected_ != nullptr);
    return selected_->CostPerCheck();
}

std::string
HybridErrorPredictor::SelectedName() const
{
    return selected_ == nullptr ? "" : selected_->Name();
}


std::string
HybridErrorPredictor::Serialize() const
{
    RUMBA_CHECK(selected_ != nullptr);
    return selected_->Serialize();
}

}  // namespace rumba::predict
