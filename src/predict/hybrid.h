#ifndef RUMBA_PREDICT_HYBRID_H_
#define RUMBA_PREDICT_HYBRID_H_

/**
 * @file
 * hybridErrors — an extension beyond the paper. Section 5.1 observes
 * that "error prediction accuracy of a particular scheme is benchmark
 * dependent": linearErrors wins on some applications, treeErrors on
 * others. Since both models are trained offline anyway, the offline
 * trainer can simply hold out a validation slice, train every
 * candidate checker, and ship whichever predicts the accelerator's
 * errors best for *this* application. The online hardware is then
 * exactly one of the paper's checkers — no new datapath is required,
 * only a configuration choice.
 */

#include <memory>
#include <vector>

#include "predict/predictor.h"

namespace rumba::predict {

/** Offline best-of-N checker selector. */
class HybridErrorPredictor : public ErrorPredictor {
  public:
    /** Selection parameters. */
    struct Options {
        /** Fraction of the training data held out for scoring. */
        double validation_fraction = 0.25;
        /** Seed for the train/validation split. */
        uint64_t seed = 17;
    };

    HybridErrorPredictor();
    explicit HybridErrorPredictor(const Options& options);

    std::string Name() const override { return "hybridErrors"; }

    /** Input-based: both candidate families read accelerator inputs. */
    bool IsInputBased() const override { return true; }

    /**
     * Trains a linear and a tree checker on a split of @p data,
     * scores them on the held-out slice (mean absolute error), keeps
     * the winner and retrains it on the full data.
     */
    void Train(const rumba::Dataset& data) override;

    double PredictError(const std::vector<double>& inputs,
                        const std::vector<double>& approx_outputs) override;

    void Reset() override;

    sim::CheckerCost CostPerCheck() const override;

    /** Serializes the *selected* checker: the deployed configuration
     *  is one of the paper's concrete checkers. */
    std::string Serialize() const override;

    /** The selected underlying checker ("linearErrors"/"treeErrors");
     *  empty before Train(). */
    std::string SelectedName() const;

    /** Validation mean-absolute-error of each candidate (inspection). */
    const std::vector<std::pair<std::string, double>>&
    CandidateScores() const
    {
        return scores_;
    }

  private:
    Options options_;
    std::unique_ptr<ErrorPredictor> selected_;
    std::vector<std::pair<std::string, double>> scores_;
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_HYBRID_H_
