#ifndef RUMBA_PREDICT_LINEAR_H_
#define RUMBA_PREDICT_LINEAR_H_

/**
 * @file
 * linearErrors: err = w0*x0 + w1*x1 + ... + c (Equation 1 of the
 * paper). Weights come from offline ridge regression; the online
 * check is one multiply-add per input on the checker hardware of
 * Figure 7(a).
 */

#include "predict/predictor.h"

namespace rumba::predict {

/** Linear (EEP) error predictor. */
class LinearErrorPredictor : public ErrorPredictor {
  public:
    /** @p ridge is the L2 regularization added to the normal
     *  equations (keeps them well-posed on collinear inputs). */
    explicit LinearErrorPredictor(double ridge = 1e-6);

    std::string Name() const override { return "linearErrors"; }

    bool IsInputBased() const override { return true; }

    void Train(const rumba::Dataset& data) override;

    double PredictError(const std::vector<double>& inputs,
                        const std::vector<double>& approx_outputs) override;

    sim::CheckerCost CostPerCheck() const override;

    std::string Serialize() const override;

    /** Rebuild from Serialize() output. */
    static LinearErrorPredictor Deserialize(const std::string& blob);

    /** Trained weights, bias last; empty before Train(). */
    const std::vector<double>& Weights() const { return weights_; }

  private:
    double ridge_;
    std::vector<double> weights_;  ///< size = num inputs + 1 (bias last).
};

}  // namespace rumba::predict

#endif  // RUMBA_PREDICT_LINEAR_H_
