#include "apps/sobel.h"

#include <cmath>

#include "common/imagegen.h"
#include "common/logging.h"

namespace rumba::apps {

const BenchmarkInfo&
Sobel::Info() const
{
    static const BenchmarkInfo info = {
        "sobel",
        "Image Processing",
        "Relative Pixel Diff",
        "512x512 pixel image",
        "512x512 pixel image",
        nn::Topology::Parse("9->8->1"),
        nn::Topology::Parse("9->8->1"),
    };
    return info;
}

std::vector<std::vector<double>>
Sobel::WindowsFromImage(const GrayImage& image, size_t stride)
{
    RUMBA_CHECK(stride >= 1);
    RUMBA_CHECK(image.Width() >= 3 && image.Height() >= 3);
    std::vector<std::vector<double>> windows;
    for (size_t y = 1; y + 1 < image.Height(); y += stride) {
        for (size_t x = 1; x + 1 < image.Width(); x += stride) {
            std::vector<double> w(kInputs);
            size_t i = 0;
            for (long dy = -1; dy <= 1; ++dy)
                for (long dx = -1; dx <= 1; ++dx)
                    w[i++] = image.AtClamped(static_cast<long>(x) + dx,
                                             static_cast<long>(y) + dy);
            windows.push_back(std::move(w));
        }
    }
    return windows;
}

std::vector<std::vector<double>>
Sobel::Generate(uint64_t seed, size_t width, size_t height, size_t stride)
{
    return WindowsFromImage(GenerateSceneImage(width, height, seed),
                            stride);
}

std::vector<std::vector<double>>
Sobel::TrainInputs() const
{
    // 512x512 source, strided to keep offline training tractable.
    return Generate(0x50BE1u, 512, 512, 5);
}

std::vector<std::vector<double>>
Sobel::TestInputs() const
{
    return Generate(0x50BE2u, 512, 512, 3);
}

}  // namespace rumba::apps
