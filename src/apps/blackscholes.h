#ifndef RUMBA_APPS_BLACKSCHOLES_H_
#define RUMBA_APPS_BLACKSCHOLES_H_

/**
 * @file
 * blackscholes — Financial Analysis (Table 1). One element prices one
 * European option with the Black-Scholes closed form; the kernel is
 * the classic PARSEC formulation with the Abramowitz-Stegun
 * polynomial for the cumulative normal distribution.
 *
 * Element inputs: [spot, strike, rate, volatility, time, type]
 * (type: 0 = call, 1 = put). Element output: option price.
 */

#include "apps/benchmark.h"

namespace rumba::apps {

/** The blackscholes benchmark. */
class BlackScholes : public KernelBenchmark<BlackScholes> {
  public:
    static constexpr size_t kInputs = 6;
    static constexpr size_t kOutputs = 1;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    double RegionFraction() const override { return 0.95; }

    /** Option prices span roughly [0, 100]; deep out-of-the-money
     *  prices near zero would otherwise dominate the metric. */
    double RelativeFloor() const override { return 5.0; }

    /** The pure per-option kernel. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        const T spot = in[0];
        const T strike = in[1];
        const T rate = in[2];
        const T vol = in[3];
        const T time = in[4];
        const T type = in[5];

        const T sqrt_time = Sqrt(time);
        const T log_term = Log(spot / strike);
        const T half = T(0.5);
        const T d1 = (log_term + (rate + half * vol * vol) * time) /
                     (vol * sqrt_time);
        const T d2 = d1 - vol * sqrt_time;
        const T discount = Exp(T(0.0) - rate * time);

        const T nd1 = Cndf(d1);
        const T nd2 = Cndf(d2);
        const T call = spot * nd1 - strike * discount * nd2;

        if (type > T(0.5)) {
            // Put via put-call parity.
            out[0] = call + strike * discount - spot;
        } else {
            out[0] = call;
        }
    }

  private:
    /** Cumulative normal distribution (Abramowitz-Stegun 26.2.17). */
    template <typename T>
    static T
    Cndf(T x)
    {
        const bool negative = x < T(0.0);
        const T ax = negative ? T(0.0) - x : x;
        const T k = T(1.0) / (T(1.0) + T(0.2316419) * ax);
        const T poly =
            k *
            (T(0.319381530) +
             k * (T(-0.356563782) +
                  k * (T(1.781477937) +
                       k * (T(-1.821255978) + k * T(1.330274429)))));
        const T pdf =
            T(0.3989422804014327) * Exp(T(-0.5) * ax * ax);
        const T cnd = T(1.0) - pdf * poly;
        return negative ? T(1.0) - cnd : cnd;
    }

    static std::vector<std::vector<double>> Generate(uint64_t seed,
                                                     size_t count);
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_BLACKSCHOLES_H_
