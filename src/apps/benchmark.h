#ifndef RUMBA_APPS_BENCHMARK_H_
#define RUMBA_APPS_BENCHMARK_H_

/**
 * @file
 * The benchmark abstraction shared by the seven Table 1 applications.
 *
 * Each benchmark exposes the *pure* data-parallel kernel the paper
 * maps to the approximate accelerator: one "element" is one kernel
 * invocation (one option, one pixel window, one triangle pair, one
 * 8x8 block, ...). The kernel is templated on its scalar type so the
 * identical source runs (a) exactly on doubles, (b) instrumented on
 * sim::CountingScalar to extract the instruction mix the CPU
 * timing/energy models consume.
 */

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "nn/topology.h"
#include "sim/opcount.h"

namespace rumba::apps {

/**
 * Math shims from sim/opcount.h, re-exported so kernels templated on
 * their scalar type resolve the same names for double (plain libm)
 * and sim::CountingScalar (counted bundles).
 * @{
 */
using sim::Acos;
using sim::Atan2;
using sim::Cos;
using sim::Erf;
using sim::Exp;
using sim::Fabs;
using sim::Floor;
using sim::Log;
using sim::Pow;
using sim::Sin;
using sim::Sqrt;
/** @} */

/** Table 1 metadata for one application. */
struct BenchmarkInfo {
    std::string name;         ///< e.g. "blackscholes".
    std::string domain;       ///< e.g. "Financial Analysis".
    std::string metric;       ///< e.g. "Mean Relative Error".
    std::string train_desc;   ///< Table 1 train-data description.
    std::string test_desc;    ///< Table 1 test-data description.
    nn::Topology rumba_topology;  ///< hidden shape Rumba selects.
    nn::Topology npu_topology;    ///< hidden shape the unchecked NPU uses.
};

/** One approximable application. */
class Benchmark {
  public:
    virtual ~Benchmark() = default;

    /** Static description (Table 1 row). */
    virtual const BenchmarkInfo& Info() const = 0;

    /** Kernel input arity. */
    virtual size_t NumInputs() const = 0;

    /** Kernel output arity. */
    virtual size_t NumOutputs() const = 0;

    /** Exact kernel on doubles. */
    virtual void RunExact(const double* in, double* out) const = 0;

    /** The same kernel instrumented for instruction-mix profiling. */
    virtual void RunCounted(const sim::CountingScalar* in,
                            sim::CountingScalar* out) const = 0;

    /** Deterministic training inputs (Table 1 "Train Data"). */
    virtual std::vector<std::vector<double>> TrainInputs() const = 0;

    /** Deterministic test inputs (Table 1 "Test Data"). */
    virtual std::vector<std::vector<double>> TestInputs() const = 0;

    /**
     * Scalar error of one element given exact and approximate
     * outputs, in [0, 1]-ish units (1 = completely wrong). Default:
     * mean relative error across outputs, with the denominator
     * floored at RelativeFloor() so near-zero exact outputs do not
     * blow the metric up.
     */
    virtual double ElementError(const std::vector<double>& exact,
                                const std::vector<double>& approx) const;

    /**
     * Relative-error denominator floor for the default ElementError —
     * roughly 10% of the typical output magnitude of the application.
     */
    virtual double RelativeFloor() const { return 1e-2; }

    /**
     * Whole-run output error in percent given all element errors.
     * Default: 100 * mean(element errors). jmeint overrides the
     * element error to a 0/1 mismatch, making this a miss rate.
     */
    virtual double AggregateError(
        const std::vector<double>& element_errors) const;

    /**
     * Fraction of whole-application baseline time spent in this
     * kernel (the Amdahl term for whole-app energy/speedup).
     */
    virtual double RegionFraction() const = 0;

    /** Build a supervised dataset: inputs -> exact kernel outputs. */
    rumba::Dataset MakeDataset(
        const std::vector<std::vector<double>>& inputs) const;

    /**
     * Average per-element instruction mix, profiled by running the
     * counted kernel over (up to) @p sample test elements.
     */
    sim::OpCounts ProfileKernel(size_t sample = 256) const;

    /** Exact outputs for a batch of inputs. */
    std::vector<std::vector<double>> RunExactBatch(
        const std::vector<std::vector<double>>& inputs) const;
};

/**
 * CRTP helper wiring a `template <typename T> static void
 * Kernel(const T* in, T* out)` into RunExact/RunCounted.
 */
template <typename Derived>
class KernelBenchmark : public Benchmark {
  public:
    void
    RunExact(const double* in, double* out) const override
    {
        Derived::Kernel(in, out);
    }

    void
    RunCounted(const sim::CountingScalar* in,
               sim::CountingScalar* out) const override
    {
        Derived::Kernel(in, out);
    }
};

/** All seven Table 1 benchmarks, in the paper's order. */
std::vector<std::unique_ptr<Benchmark>> AllBenchmarks();

/** One benchmark by name; fatal when unknown. */
std::unique_ptr<Benchmark> MakeBenchmark(const std::string& name);

/** One benchmark by name; nullptr when unknown (fallible loaders —
 *  e.g. artifact-driven construction — report instead of dying). */
std::unique_ptr<Benchmark> TryMakeBenchmark(const std::string& name);

/** The seven benchmark names in Table 1 order. */
std::vector<std::string> BenchmarkNames();

}  // namespace rumba::apps

#endif  // RUMBA_APPS_BENCHMARK_H_
