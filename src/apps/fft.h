#ifndef RUMBA_APPS_FFT_H_
#define RUMBA_APPS_FFT_H_

/**
 * @file
 * fft — Signal Processing (Table 1). As in the NPU paper, the
 * approximated kernel is the twiddle-factor computation of a radix-2
 * FFT: one element maps a normalized angle fraction x in [0, 1) to
 * the complex twiddle (cos(-2*pi*x), sin(-2*pi*x)).
 *
 * Element inputs: [x]. Element outputs: [re, im]. examples/ contains
 * a full radix-2 FFT wired through the approximate twiddle path.
 */

#include "apps/benchmark.h"

namespace rumba::apps {

/** The fft (twiddle-factor) benchmark. */
class Fft : public KernelBenchmark<Fft> {
  public:
    static constexpr size_t kInputs = 1;
    static constexpr size_t kOutputs = 2;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    double RegionFraction() const override { return 0.85; }

    /** Twiddle components live in [-1, 1]; floor at 0.5 of the unit
     *  amplitude so zero crossings do not dominate the metric. */
    double RelativeFloor() const override { return 0.5; }

    /** Twiddle-factor kernel: x -> e^{-2 pi i x}. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        const T two_pi = T(6.283185307179586);
        const T angle = T(0.0) - two_pi * in[0];
        out[0] = Cos(angle);
        out[1] = Sin(angle);
    }

  private:
    static std::vector<std::vector<double>> Generate(uint64_t seed,
                                                     size_t count);
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_FFT_H_
