#include "apps/benchmark.h"

#include <algorithm>
#include <cmath>

#include "apps/blackscholes.h"
#include "apps/fft.h"
#include "apps/inversek2j.h"
#include "apps/jmeint.h"
#include "apps/jpeg.h"
#include "apps/kmeans.h"
#include "apps/sobel.h"
#include "common/logging.h"

namespace rumba::apps {

double
Benchmark::ElementError(const std::vector<double>& exact,
                        const std::vector<double>& approx) const
{
    RUMBA_CHECK(exact.size() == approx.size());
    RUMBA_CHECK(!exact.empty());
    double total = 0.0;
    const double floor = RelativeFloor();
    for (size_t o = 0; o < exact.size(); ++o) {
        const double diff = std::fabs(approx[o] - exact[o]);
        const double denom = std::max(std::fabs(exact[o]), floor);
        total += diff / denom;
    }
    return total / static_cast<double>(exact.size());
}

double
Benchmark::AggregateError(const std::vector<double>& element_errors) const
{
    RUMBA_CHECK(!element_errors.empty());
    double total = 0.0;
    for (double e : element_errors)
        total += e;
    return 100.0 * total / static_cast<double>(element_errors.size());
}

Dataset
Benchmark::MakeDataset(
    const std::vector<std::vector<double>>& inputs) const
{
    Dataset data(NumInputs(), NumOutputs());
    std::vector<double> out(NumOutputs());
    for (const auto& in : inputs) {
        RUMBA_CHECK(in.size() == NumInputs());
        RunExact(in.data(), out.data());
        data.Add(in, out);
    }
    return data;
}

sim::OpCounts
Benchmark::ProfileKernel(size_t sample) const
{
    const auto inputs = TestInputs();
    const size_t n = std::min(sample, inputs.size());
    RUMBA_CHECK(n > 0);

    sim::CountingScalar::ResetCounts();
    std::vector<sim::CountingScalar> in(NumInputs());
    std::vector<sim::CountingScalar> out(NumOutputs());
    for (size_t s = 0; s < n; ++s) {
        for (size_t i = 0; i < NumInputs(); ++i)
            in[i] = sim::CountingScalar(inputs[s][i]);
        RunCounted(in.data(), out.data());
        // Array traffic the scalar type cannot observe: the kernel
        // loads its inputs and stores its outputs once each.
        sim::CountingScalar::RecordMemory(NumInputs(), NumOutputs());
    }
    return sim::CountingScalar::Counts().Scaled(
        1.0 / static_cast<double>(n));
}

std::vector<std::vector<double>>
Benchmark::RunExactBatch(
    const std::vector<std::vector<double>>& inputs) const
{
    std::vector<std::vector<double>> outputs;
    outputs.reserve(inputs.size());
    std::vector<double> out(NumOutputs());
    for (const auto& in : inputs) {
        RunExact(in.data(), out.data());
        outputs.push_back(out);
    }
    return outputs;
}

std::vector<std::unique_ptr<Benchmark>>
AllBenchmarks()
{
    std::vector<std::unique_ptr<Benchmark>> all;
    for (const auto& name : BenchmarkNames())
        all.push_back(MakeBenchmark(name));
    return all;
}

std::vector<std::string>
BenchmarkNames()
{
    return {"blackscholes", "fft", "inversek2j", "jmeint",
            "jpeg",         "kmeans", "sobel"};
}

std::unique_ptr<Benchmark>
MakeBenchmark(const std::string& name)
{
    auto bench = TryMakeBenchmark(name);
    if (bench == nullptr)
        Fatal("unknown benchmark '%s'", name.c_str());
    return bench;
}

std::unique_ptr<Benchmark>
TryMakeBenchmark(const std::string& name)
{
    if (name == "blackscholes")
        return std::make_unique<BlackScholes>();
    if (name == "fft")
        return std::make_unique<Fft>();
    if (name == "inversek2j")
        return std::make_unique<InverseK2j>();
    if (name == "jmeint")
        return std::make_unique<Jmeint>();
    if (name == "jpeg")
        return std::make_unique<Jpeg>();
    if (name == "kmeans")
        return std::make_unique<Kmeans>();
    if (name == "sobel")
        return std::make_unique<Sobel>();
    return nullptr;
}

}  // namespace rumba::apps
