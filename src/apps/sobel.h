#ifndef RUMBA_APPS_SOBEL_H_
#define RUMBA_APPS_SOBEL_H_

/**
 * @file
 * sobel — Image Processing (Table 1). One element applies the Sobel
 * edge operator to a 3x3 pixel window, producing the clamped gradient
 * magnitude of the center pixel.
 *
 * Element inputs: the 9 window pixels (row-major). Element output:
 * gradient magnitude in [0, 1]. Quality metric: mean pixel diff.
 */

#include "apps/benchmark.h"
#include "common/image.h"

namespace rumba::apps {

/** The sobel benchmark. */
class Sobel : public KernelBenchmark<Sobel> {
  public:
    static constexpr size_t kInputs = 9;
    static constexpr size_t kOutputs = 1;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    double RegionFraction() const override { return 0.85; }

    /** Gradient magnitudes concentrate around ~0.25; relative error
     *  with this floor reflects visible edge distortion. */
    double RelativeFloor() const override { return 0.25; }

    /** Sobel gradient magnitude of a 3x3 window. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        const T two = T(2.0);
        const T gx = (in[2] + two * in[5] + in[8]) -
                     (in[0] + two * in[3] + in[6]);
        const T gy = (in[6] + two * in[7] + in[8]) -
                     (in[0] + two * in[1] + in[2]);
        // Scale by half so typical magnitudes span [0, 1] without
        // saturating the metric at the clamp.
        T mag = Sqrt(gx * gx + gy * gy) * T(0.5);
        if (mag > T(1.0))
            mag = T(1.0);
        out[0] = mag;
    }

    /** Windows for every interior pixel of an image (element stream). */
    static std::vector<std::vector<double>> WindowsFromImage(
        const rumba::GrayImage& image, size_t stride = 1);

  private:
    static std::vector<std::vector<double>> Generate(uint64_t seed,
                                                     size_t width,
                                                     size_t height,
                                                     size_t stride);
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_SOBEL_H_
