#include "apps/jpeg.h"

#include <cmath>

#include "common/imagegen.h"
#include "common/logging.h"

namespace rumba::apps {

namespace {

/** Build the cos((2x+1) u pi / 16) table once. */
struct CosTableInit {
    double cos_table[Jpeg::kBlock][Jpeg::kBlock];
    double scale[Jpeg::kBlock];

    CosTableInit()
    {
        for (size_t x = 0; x < Jpeg::kBlock; ++x)
            for (size_t u = 0; u < Jpeg::kBlock; ++u)
                cos_table[x][u] = std::cos(
                    (2.0 * static_cast<double>(x) + 1.0) *
                    static_cast<double>(u) * M_PI / 16.0);
        scale[0] = std::sqrt(1.0 / static_cast<double>(Jpeg::kBlock));
        for (size_t u = 1; u < Jpeg::kBlock; ++u)
            scale[u] = std::sqrt(2.0 / static_cast<double>(Jpeg::kBlock));
    }
};

const CosTableInit g_tables;

}  // namespace

// Standard JPEG Annex K luminance table (quality 50).
const int Jpeg::kQuantTable[Jpeg::kInputs] = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99,
};

const double (&Jpeg::CosTable())[Jpeg::kBlock][Jpeg::kBlock]
{
    return g_tables.cos_table;
}

const double (&Jpeg::ScaleTable())[Jpeg::kBlock]
{
    return g_tables.scale;
}

const BenchmarkInfo&
Jpeg::Info() const
{
    static const BenchmarkInfo info = {
        "jpeg",
        "Compression",
        "Mean Pixel Diff",
        "220x200 pixel image",
        "512x512 pixel image",
        nn::Topology::Parse("64->16->64"),
        nn::Topology::Parse("64->16->64"),
    };
    return info;
}

double
Jpeg::ElementError(const std::vector<double>& exact,
                   const std::vector<double>& approx) const
{
    RUMBA_CHECK(exact.size() == approx.size());
    double total = 0.0;
    for (size_t i = 0; i < exact.size(); ++i)
        total += std::fabs(exact[i] - approx[i]);
    return total / static_cast<double>(exact.size());
}

std::vector<std::vector<double>>
Jpeg::BlocksFromImage(const GrayImage& image)
{
    const size_t bw = image.Width() / kBlock;
    const size_t bh = image.Height() / kBlock;
    RUMBA_CHECK(bw > 0 && bh > 0);
    std::vector<std::vector<double>> blocks;
    blocks.reserve(bw * bh);
    for (size_t by = 0; by < bh; ++by) {
        for (size_t bx = 0; bx < bw; ++bx) {
            std::vector<double> block(kInputs);
            for (size_t y = 0; y < kBlock; ++y)
                for (size_t x = 0; x < kBlock; ++x)
                    block[y * kBlock + x] =
                        image.At(bx * kBlock + x, by * kBlock + y);
            blocks.push_back(std::move(block));
        }
    }
    return blocks;
}

std::vector<std::vector<double>>
Jpeg::TrainInputs() const
{
    return BlocksFromImage(GenerateSceneImage(220, 200, 0x09E61u));
}

std::vector<std::vector<double>>
Jpeg::TestInputs() const
{
    return BlocksFromImage(GenerateSceneImage(512, 512, 0x09E62u));
}

}  // namespace rumba::apps
