#ifndef RUMBA_APPS_KMEANS_H_
#define RUMBA_APPS_KMEANS_H_

/**
 * @file
 * kmeans — Machine Learning (Table 1). The approximated kernel is the
 * point-to-centroid Euclidean distance at the heart of k-means
 * clustering of an RGB image: a tiny kernel, which is exactly why the
 * paper observes the NPU gains little here (the accelerator
 * invocation overhead rivals the computation).
 *
 * Element inputs: [r, g, b, cr, cg, cb]. Element output: distance.
 */

#include "apps/benchmark.h"

namespace rumba::apps {

/** The kmeans (distance kernel) benchmark. */
class Kmeans : public KernelBenchmark<Kmeans> {
  public:
    static constexpr size_t kInputs = 6;
    static constexpr size_t kOutputs = 1;
    static constexpr size_t kClusters = 6;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    double RegionFraction() const override { return 0.45; }

    /** Distances concentrate around ~0.3-0.8 in the unit color cube;
     *  the relative metric floors the denominator there. */
    double RelativeFloor() const override { return 0.3; }

    /** Euclidean distance between a pixel and a centroid. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        const T dr = in[0] - in[3];
        const T dg = in[1] - in[4];
        const T db = in[2] - in[5];
        out[0] = Sqrt(dr * dr + dg * dg + db * db);
    }

    /** The fixed centroid palette used for data generation. */
    static const double kCentroids[kClusters][3];

  private:
    static std::vector<std::vector<double>> Generate(uint64_t seed,
                                                     size_t width,
                                                     size_t height,
                                                     size_t sample);
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_KMEANS_H_
