#ifndef RUMBA_APPS_MOSAIC_H_
#define RUMBA_APPS_MOSAIC_H_

/**
 * @file
 * mosaic — the motivating study of Section 2 (Figure 3). The first
 * phase of a photo-mosaic application computes the average brightness
 * of each candidate tile image; the paper approximates it with loop
 * perforation and shows the resulting error is strongly
 * input-dependent across 800 flower photographs.
 *
 * The photographs are replaced by the procedural flower generator
 * (common/imagegen.h), whose blob placement varies how spatially
 * concentrated brightness is — the property that makes perforation
 * error input-dependent.
 */

#include <cstdint>
#include <vector>

#include "common/image.h"

namespace rumba::apps {

/** Loop-perforated brightness averaging over a tile population. */
class MosaicStudy {
  public:
    /** How perforation drops loop iterations. */
    enum class Mode {
        kUniformRows,  ///< keep every stride-th image row.
        kRandomPixels, ///< keep each pixel with probability 1/stride.
    };

    /** Study parameters. */
    struct Options {
        size_t images = 800;        ///< population size (paper: 800).
        size_t width = 128;         ///< tile width.
        size_t height = 128;        ///< tile height.
        size_t stride = 32;         ///< keep 1-in-stride iterations.
        Mode mode = Mode::kUniformRows;
        uint64_t seed = 0xF10E35u;  ///< flower-generator seed base.
    };

    /** Exact mean brightness of a tile. */
    static double ExactBrightness(const rumba::GrayImage& image);

    /**
     * Perforated mean brightness: the average over the retained
     * subset of pixels only.
     */
    static double PerforatedBrightness(const rumba::GrayImage& image,
                                       const Options& options);

    /** Per-tile output error in percent: |approx-exact|/exact*100. */
    static double OutputErrorPercent(const rumba::GrayImage& image,
                                     const Options& options);

    /**
     * The Figure 3 experiment: generate options.images flower tiles
     * and return each tile's perforation output error (percent).
     */
    static std::vector<double> RunStudy(const Options& options);
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_MOSAIC_H_
