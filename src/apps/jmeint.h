#ifndef RUMBA_APPS_JMEINT_H_
#define RUMBA_APPS_JMEINT_H_

/**
 * @file
 * jmeint — 3D Gaming (Table 1). One element decides whether two 3-D
 * triangles intersect, using Moller's interval-overlap test (the jME
 * engine's routine the NPU paper approximates), including the
 * coplanar edge/containment path.
 *
 * Element inputs: 18 coordinates (triangle 1: V0 V1 V2, triangle 2:
 * U0 U1 U2, each x,y,z). Element outputs: one-hot [intersects,
 * disjoint]. The quality metric is the mismatch rate.
 */

#include "apps/benchmark.h"

namespace rumba::apps {

/** The jmeint benchmark. */
class Jmeint : public KernelBenchmark<Jmeint> {
  public:
    static constexpr size_t kInputs = 18;
    static constexpr size_t kOutputs = 2;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    /** 0/1 classification mismatch (argmax of the one-hot pair). */
    double ElementError(const std::vector<double>& exact,
                        const std::vector<double>& approx) const override;

    double RegionFraction() const override { return 0.95; }

    /** Moller tri-tri intersection, one-hot result. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        const bool hit = TriTriIntersect(in);
        out[0] = hit ? T(1.0) : T(0.0);
        out[1] = hit ? T(0.0) : T(1.0);
    }

    /** Boolean form of the kernel (tests and the geometry example). */
    template <typename T>
    static bool TriTriIntersect(const T* in);

  private:
    static std::vector<std::vector<double>> Generate(uint64_t seed,
                                                     size_t count);
};

namespace detail {

/** Cross product c = a x b. */
template <typename T>
void
Cross(const T* a, const T* b, T* c)
{
    c[0] = a[1] * b[2] - a[2] * b[1];
    c[1] = a[2] * b[0] - a[0] * b[2];
    c[2] = a[0] * b[1] - a[1] * b[0];
}

/** Dot product. */
template <typename T>
T
Dot(const T* a, const T* b)
{
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

/** c = a - b. */
template <typename T>
void
Sub(const T* a, const T* b, T* c)
{
    c[0] = a[0] - b[0];
    c[1] = a[1] - b[1];
    c[2] = a[2] - b[2];
}

/**
 * Interval endpoints for one triangle along the intersection line
 * (Moller's compute_intervals). Returns false when the triangle is
 * coplanar with the other's plane.
 */
template <typename T>
bool
ComputeIntervals(T vp0, T vp1, T vp2, T d0, T d1, T d2, T d0d1, T d0d2,
                 T* isect0, T* isect1)
{
    auto isect = [](T vv0, T vv1, T vv2, T dd0, T dd1, T dd2, T* a, T* b) {
        *a = vv0 + (vv1 - vv0) * dd0 / (dd0 - dd1);
        *b = vv0 + (vv2 - vv0) * dd0 / (dd0 - dd2);
    };
    if (d0d1 > T(0.0)) {
        // d0, d1 on the same side; d2 on the other.
        isect(vp2, vp0, vp1, d2, d0, d1, isect0, isect1);
    } else if (d0d2 > T(0.0)) {
        isect(vp1, vp0, vp2, d1, d0, d2, isect0, isect1);
    } else if (d1 * d2 > T(0.0) || d0 != T(0.0)) {
        isect(vp0, vp1, vp2, d0, d1, d2, isect0, isect1);
    } else if (d1 != T(0.0)) {
        isect(vp1, vp0, vp2, d1, d0, d2, isect0, isect1);
    } else if (d2 != T(0.0)) {
        isect(vp2, vp0, vp1, d2, d0, d1, isect0, isect1);
    } else {
        return false;  // coplanar
    }
    return true;
}

/** 2-D edge-against-edge test used by the coplanar path. */
template <typename T>
bool
EdgeEdgeTest(const T* v0, const T* u0, const T* u1, T ax, T ay, int i0,
             int i1)
{
    const T bx = u0[i0] - u1[i0];
    const T by = u0[i1] - u1[i1];
    const T cx = v0[i0] - u0[i0];
    const T cy = v0[i1] - u0[i1];
    const T f = ay * bx - ax * by;
    const T d = by * cx - bx * cy;
    if ((f > T(0.0) && d >= T(0.0) && d <= f) ||
        (f < T(0.0) && d <= T(0.0) && d >= f)) {
        const T e = ax * cy - ay * cx;
        if (f > T(0.0)) {
            if (e >= T(0.0) && e <= f)
                return true;
        } else {
            if (e <= T(0.0) && e >= f)
                return true;
        }
    }
    return false;
}

/** One triangle edge against all edges of the other (coplanar path). */
template <typename T>
bool
EdgeAgainstTriEdges(const T* v0, const T* v1, const T* u0, const T* u1,
                    const T* u2, int i0, int i1)
{
    const T ax = v1[i0] - v0[i0];
    const T ay = v1[i1] - v0[i1];
    return EdgeEdgeTest(v0, u0, u1, ax, ay, i0, i1) ||
           EdgeEdgeTest(v0, u1, u2, ax, ay, i0, i1) ||
           EdgeEdgeTest(v0, u2, u0, ax, ay, i0, i1);
}

/** Point-in-triangle for the coplanar path. */
template <typename T>
bool
PointInTri(const T* v0, const T* u0, const T* u1, const T* u2, int i0,
           int i1)
{
    T a = u1[i1] - u0[i1];
    T b = T(0.0) - (u1[i0] - u0[i0]);
    T c = T(0.0) - a * u0[i0] - b * u0[i1];
    const T d0 = a * v0[i0] + b * v0[i1] + c;

    a = u2[i1] - u1[i1];
    b = T(0.0) - (u2[i0] - u1[i0]);
    c = T(0.0) - a * u1[i0] - b * u1[i1];
    const T d1 = a * v0[i0] + b * v0[i1] + c;

    a = u0[i1] - u2[i1];
    b = T(0.0) - (u0[i0] - u2[i0]);
    c = T(0.0) - a * u2[i0] - b * u2[i1];
    const T d2 = a * v0[i0] + b * v0[i1] + c;

    return d0 * d1 > T(0.0) && d0 * d2 > T(0.0);
}

/** Full coplanar triangle-triangle test. */
template <typename T>
bool
CoplanarTriTri(const T* n, const T* v0, const T* v1, const T* v2,
               const T* u0, const T* u1, const T* u2)
{
    // Project onto the plane's dominant axis pair.
    const T a0 = Fabs(n[0]);
    const T a1 = Fabs(n[1]);
    const T a2 = Fabs(n[2]);
    int i0 = 0, i1 = 1;
    if (a0 > a1) {
        if (a0 > a2) {
            i0 = 1;
            i1 = 2;
        }
    } else {
        if (a2 > a1) {
            i0 = 0;
            i1 = 1;
        } else {
            i0 = 0;
            i1 = 2;
        }
    }
    return EdgeAgainstTriEdges(v0, v1, u0, u1, u2, i0, i1) ||
           EdgeAgainstTriEdges(v1, v2, u0, u1, u2, i0, i1) ||
           EdgeAgainstTriEdges(v2, v0, u0, u1, u2, i0, i1) ||
           PointInTri(v0, u0, u1, u2, i0, i1) ||
           PointInTri(u0, v0, v1, v2, i0, i1);
}

}  // namespace detail

template <typename T>
bool
Jmeint::TriTriIntersect(const T* in)
{
    using detail::ComputeIntervals;
    using detail::CoplanarTriTri;
    using detail::Cross;
    using detail::Dot;
    using detail::Sub;

    const T* v0 = in + 0;
    const T* v1 = in + 3;
    const T* v2 = in + 6;
    const T* u0 = in + 9;
    const T* u1 = in + 12;
    const T* u2 = in + 15;

    // Plane of triangle V.
    T e1[3], e2[3], n1[3];
    Sub(v1, v0, e1);
    Sub(v2, v0, e2);
    Cross(e1, e2, n1);
    const T d1 = T(0.0) - Dot(n1, v0);

    T du0 = Dot(n1, u0) + d1;
    T du1 = Dot(n1, u1) + d1;
    T du2 = Dot(n1, u2) + d1;

    const T epsilon = T(1e-9);
    if (Fabs(du0) < epsilon)
        du0 = T(0.0);
    if (Fabs(du1) < epsilon)
        du1 = T(0.0);
    if (Fabs(du2) < epsilon)
        du2 = T(0.0);

    const T du0du1 = du0 * du1;
    const T du0du2 = du0 * du2;
    if (du0du1 > T(0.0) && du0du2 > T(0.0))
        return false;  // U entirely on one side of V's plane.

    // Plane of triangle U.
    T n2[3];
    Sub(u1, u0, e1);
    Sub(u2, u0, e2);
    Cross(e1, e2, n2);
    const T d2 = T(0.0) - Dot(n2, u0);

    T dv0 = Dot(n2, v0) + d2;
    T dv1 = Dot(n2, v1) + d2;
    T dv2 = Dot(n2, v2) + d2;
    if (Fabs(dv0) < epsilon)
        dv0 = T(0.0);
    if (Fabs(dv1) < epsilon)
        dv1 = T(0.0);
    if (Fabs(dv2) < epsilon)
        dv2 = T(0.0);

    const T dv0dv1 = dv0 * dv1;
    const T dv0dv2 = dv0 * dv2;
    if (dv0dv1 > T(0.0) && dv0dv2 > T(0.0))
        return false;

    // Direction of the intersection line.
    T dir[3];
    Cross(n1, n2, dir);

    // Project onto the largest component of the line direction.
    const T abs_x = Fabs(dir[0]);
    const T abs_y = Fabs(dir[1]);
    const T abs_z = Fabs(dir[2]);
    int index = 0;
    if (abs_y > abs_x)
        index = 1;
    if (abs_z > (index == 1 ? abs_y : abs_x))
        index = 2;

    const T vp0 = v0[index];
    const T vp1 = v1[index];
    const T vp2 = v2[index];
    const T up0 = u0[index];
    const T up1 = u1[index];
    const T up2 = u2[index];

    T isect1[2], isect2[2];
    if (!ComputeIntervals(vp0, vp1, vp2, dv0, dv1, dv2, dv0dv1, dv0dv2,
                          &isect1[0], &isect1[1])) {
        return CoplanarTriTri(n1, v0, v1, v2, u0, u1, u2);
    }
    if (!ComputeIntervals(up0, up1, up2, du0, du1, du2, du0du1, du0du2,
                          &isect2[0], &isect2[1])) {
        return CoplanarTriTri(n1, v0, v1, v2, u0, u1, u2);
    }

    // Sort both intervals and test for overlap.
    if (isect1[0] > isect1[1]) {
        const T tmp = isect1[0];
        isect1[0] = isect1[1];
        isect1[1] = tmp;
    }
    if (isect2[0] > isect2[1]) {
        const T tmp = isect2[0];
        isect2[0] = isect2[1];
        isect2[1] = tmp;
    }
    return !(isect1[1] < isect2[0] || isect2[1] < isect1[0]);
}

}  // namespace rumba::apps

#endif  // RUMBA_APPS_JMEINT_H_
