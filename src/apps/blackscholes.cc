#include "apps/blackscholes.h"

#include "common/random.h"

namespace rumba::apps {

const BenchmarkInfo&
BlackScholes::Info() const
{
    static const BenchmarkInfo info = {
        "blackscholes",
        "Financial Analysis",
        "Mean Relative Error",
        "5K inputs",
        "5K inputs",
        nn::Topology::Parse("6->8->8->1"),
        nn::Topology::Parse("6->8->8->1"),
    };
    return info;
}

std::vector<std::vector<double>>
BlackScholes::Generate(uint64_t seed, size_t count)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    inputs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        const double spot = rng.Uniform(20.0, 120.0);
        const double strike = rng.Uniform(20.0, 120.0);
        const double rate = rng.Uniform(0.01, 0.1);
        const double vol = rng.Uniform(0.05, 0.65);
        const double time = rng.Uniform(0.1, 2.0);
        const double type = rng.Chance(0.5) ? 1.0 : 0.0;
        inputs.push_back({spot, strike, rate, vol, time, type});
    }
    return inputs;
}

std::vector<std::vector<double>>
BlackScholes::TrainInputs() const
{
    return Generate(0xB5C401E5u, 5000);
}

std::vector<std::vector<double>>
BlackScholes::TestInputs() const
{
    return Generate(0xB5C401E5u ^ 0xFFFF, 5000);
}

}  // namespace rumba::apps
