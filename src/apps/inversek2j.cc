#include "apps/inversek2j.h"

#include <cmath>

#include "common/random.h"

namespace rumba::apps {

const BenchmarkInfo&
InverseK2j::Info() const
{
    static const BenchmarkInfo info = {
        "inversek2j",
        "Robotics",
        "Mean Relative Error",
        "10K random (x, y) points",
        "10K random (x, y) points",
        nn::Topology::Parse("2->2->2"),
        nn::Topology::Parse("2->8->2"),
    };
    return info;
}

void
InverseK2j::ForwardKinematics(double theta1, double theta2, double* x,
                              double* y)
{
    *x = kL1 * std::cos(theta1) + kL2 * std::cos(theta1 + theta2);
    *y = kL1 * std::sin(theta1) + kL2 * std::sin(theta1 + theta2);
}

std::vector<std::vector<double>>
InverseK2j::Generate(uint64_t seed, size_t count)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    inputs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        // Sample reachable targets away from the kinematic
        // singularities at theta2 = 0 and theta2 = pi.
        const double theta1 = rng.Uniform(0.1, M_PI / 2.0 - 0.1);
        const double theta2 = rng.Uniform(0.1, M_PI - 0.2);
        double x = 0.0, y = 0.0;
        ForwardKinematics(theta1, theta2, &x, &y);
        inputs.push_back({x, y});
    }
    return inputs;
}

std::vector<std::vector<double>>
InverseK2j::TrainInputs() const
{
    return Generate(0x1427E5EC2u, 10000);
}

std::vector<std::vector<double>>
InverseK2j::TestInputs() const
{
    return Generate(0x1427E5EC2u ^ 0xFFFF, 10000);
}

}  // namespace rumba::apps
