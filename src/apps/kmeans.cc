#include "apps/kmeans.h"

#include <cmath>

#include "common/imagegen.h"
#include "common/logging.h"
#include "common/random.h"

namespace rumba::apps {

const double Kmeans::kCentroids[Kmeans::kClusters][3] = {
    {0.10, 0.12, 0.10},  // dark foliage
    {0.85, 0.85, 0.90},  // sky / highlight
    {0.60, 0.30, 0.20},  // earth
    {0.20, 0.45, 0.75},  // water
    {0.75, 0.65, 0.25},  // sand
    {0.45, 0.50, 0.45},  // mid gray-green
};

const BenchmarkInfo&
Kmeans::Info() const
{
    static const BenchmarkInfo info = {
        "kmeans",
        "Machine Learning",
        "Mean Output Diff",
        "220x200 pixel image",
        "512x512 pixel image",
        nn::Topology::Parse("6->4->4->1"),
        nn::Topology::Parse("6->8->4->1"),
    };
    return info;
}

std::vector<std::vector<double>>
Kmeans::Generate(uint64_t seed, size_t width, size_t height, size_t sample)
{
    // Three noise planes stand in for the R/G/B channels of the
    // photographic inputs used in the paper.
    const GrayImage r = GenerateNoiseImage(width, height, seed + 1, 3);
    const GrayImage g = GenerateNoiseImage(width, height, seed + 2, 3);
    const GrayImage b = GenerateNoiseImage(width, height, seed + 3, 3);

    Rng rng(seed);
    const size_t pixels = width * height;
    const size_t count = std::min(sample, pixels);
    std::vector<std::vector<double>> inputs;
    inputs.reserve(count);
    // The clustering loop pairs every pixel with candidate centroids.
    // Centroids drift across the color cube as k-means iterates, so
    // half the elements use the seed palette and half use centroids
    // sampled anywhere in the cube.
    for (size_t i = 0; i < count; ++i) {
        const size_t p = static_cast<size_t>(rng.Below(pixels));
        const size_t x = p % width;
        const size_t y = p / width;
        double cr, cg, cb;
        if (rng.Chance(0.25)) {
            const size_t c = static_cast<size_t>(rng.Below(kClusters));
            cr = kCentroids[c][0];
            cg = kCentroids[c][1];
            cb = kCentroids[c][2];
        } else {
            cr = rng.Uniform();
            cg = rng.Uniform();
            cb = rng.Uniform();
        }
        inputs.push_back(
            {r.At(x, y), g.At(x, y), b.At(x, y), cr, cg, cb});
    }
    return inputs;
}

std::vector<std::vector<double>>
Kmeans::TrainInputs() const
{
    return Generate(0x5EA15u, 220, 200, 8000);
}

std::vector<std::vector<double>>
Kmeans::TestInputs() const
{
    return Generate(0x5EA16u, 512, 512, 20000);
}

}  // namespace rumba::apps
