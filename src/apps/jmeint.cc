#include "apps/jmeint.h"

#include "common/logging.h"
#include "common/random.h"

namespace rumba::apps {

const BenchmarkInfo&
Jmeint::Info() const
{
    static const BenchmarkInfo info = {
        "jmeint",
        "3D Gaming",
        "# of mismatches",
        "10K pairs of 3D triangles",
        "10K pairs of 3D triangles",
        nn::Topology::Parse("18->32->2->2"),
        nn::Topology::Parse("18->32->8->2"),
    };
    return info;
}

double
Jmeint::ElementError(const std::vector<double>& exact,
                     const std::vector<double>& approx) const
{
    RUMBA_CHECK(exact.size() == 2 && approx.size() == 2);
    const bool exact_hit = exact[0] > exact[1];
    const bool approx_hit = approx[0] > approx[1];
    return exact_hit == approx_hit ? 0.0 : 1.0;
}

std::vector<std::vector<double>>
Jmeint::Generate(uint64_t seed, size_t count)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    inputs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        std::vector<double> pair(kInputs, 0.0);
        // Triangle V around a random center.
        double cx = rng.Uniform(0.2, 0.8);
        double cy = rng.Uniform(0.2, 0.8);
        double cz = rng.Uniform(0.2, 0.8);
        for (int v = 0; v < 3; ++v) {
            pair[static_cast<size_t>(v * 3 + 0)] =
                cx + rng.Uniform(-0.25, 0.25);
            pair[static_cast<size_t>(v * 3 + 1)] =
                cy + rng.Uniform(-0.25, 0.25);
            pair[static_cast<size_t>(v * 3 + 2)] =
                cz + rng.Uniform(-0.25, 0.25);
        }
        // Triangle U near V's center (graded distance keeps the
        // intersecting / disjoint classes both well represented).
        const double spread = rng.Uniform(0.0, 0.4);
        cx += rng.Uniform(-spread, spread);
        cy += rng.Uniform(-spread, spread);
        cz += rng.Uniform(-spread, spread);
        for (int v = 3; v < 6; ++v) {
            pair[static_cast<size_t>(v * 3 + 0)] =
                cx + rng.Uniform(-0.25, 0.25);
            pair[static_cast<size_t>(v * 3 + 1)] =
                cy + rng.Uniform(-0.25, 0.25);
            pair[static_cast<size_t>(v * 3 + 2)] =
                cz + rng.Uniform(-0.25, 0.25);
        }
        inputs.push_back(std::move(pair));
    }
    return inputs;
}

std::vector<std::vector<double>>
Jmeint::TrainInputs() const
{
    return Generate(0x13E147u, 10000);
}

std::vector<std::vector<double>>
Jmeint::TestInputs() const
{
    return Generate(0x13E147u ^ 0xFFFF, 10000);
}

}  // namespace rumba::apps
