#ifndef RUMBA_APPS_JPEG_H_
#define RUMBA_APPS_JPEG_H_

/**
 * @file
 * jpeg — Compression (Table 1). One element pushes an 8x8 pixel block
 * through the lossy core of a JPEG codec: level shift, forward DCT,
 * quantization with the standard luminance table, dequantization and
 * inverse DCT. The approximable kernel is block-pure, exactly the
 * region the NPU paper maps to the accelerator.
 *
 * Element inputs: 64 pixels in [0, 1]. Element outputs: the 64
 * reconstructed pixels. Quality metric: mean pixel difference.
 */

#include "apps/benchmark.h"
#include "common/image.h"

namespace rumba::apps {

/** The jpeg benchmark. */
class Jpeg : public KernelBenchmark<Jpeg> {
  public:
    static constexpr size_t kBlock = 8;
    static constexpr size_t kInputs = kBlock * kBlock;
    static constexpr size_t kOutputs = kBlock * kBlock;

    const BenchmarkInfo& Info() const override;

    size_t NumInputs() const override { return kInputs; }
    size_t NumOutputs() const override { return kOutputs; }

    std::vector<std::vector<double>> TrainInputs() const override;
    std::vector<std::vector<double>> TestInputs() const override;

    /** Mean absolute pixel difference (pixels already span [0, 1]). */
    double ElementError(const std::vector<double>& exact,
                        const std::vector<double>& approx) const override;

    double RegionFraction() const override { return 0.6; }

    /** DCT -> quantize -> dequantize -> IDCT on one block. */
    template <typename T>
    static void
    Kernel(const T* in, T* out)
    {
        // Level shift into [-128, 127].
        T shifted[kInputs];
        for (size_t i = 0; i < kInputs; ++i)
            shifted[i] = in[i] * T(255.0) - T(128.0);

        // Forward 2-D DCT (separable: rows then columns).
        T tmp[kInputs];
        T coeff[kInputs];
        Dct1d(shifted, tmp, /*rows=*/true);
        Dct1d(tmp, coeff, /*rows=*/false);

        // Quantize / dequantize with the luminance table.
        for (size_t i = 0; i < kInputs; ++i) {
            const T q = T(static_cast<double>(kQuantTable[i]));
            const T level = Floor(coeff[i] / q + T(0.5));
            coeff[i] = level * q;
        }

        // Inverse 2-D DCT.
        Idct1d(coeff, tmp, /*rows=*/true);
        Idct1d(tmp, shifted, /*rows=*/false);

        // Undo the level shift; clamp to the pixel range.
        for (size_t i = 0; i < kInputs; ++i) {
            T v = (shifted[i] + T(128.0)) / T(255.0);
            if (v < T(0.0))
                v = T(0.0);
            if (v > T(1.0))
                v = T(1.0);
            out[i] = v;
        }
    }

    /** The standard JPEG luminance quantization table (quality 50). */
    static const int kQuantTable[kInputs];

    /** Extract row-major 8x8 blocks from an image (train/test data). */
    static std::vector<std::vector<double>> BlocksFromImage(
        const rumba::GrayImage& image);

  private:
    /** cos((2x+1) u pi / 16) lookup, indexed [x][u]. */
    static const double (&CosTable())[kBlock][kBlock];

    /** DCT-II basis scale: sqrt(1/8) for u=0 else sqrt(2/8). */
    static const double (&ScaleTable())[kBlock];

    /** One separable DCT pass over rows or columns. */
    template <typename T>
    static void
    Dct1d(const T* in, T* out, bool rows)
    {
        const auto& cos_table = CosTable();
        const auto& scale = ScaleTable();
        for (size_t a = 0; a < kBlock; ++a) {
            for (size_t u = 0; u < kBlock; ++u) {
                T sum = T(0.0);
                for (size_t x = 0; x < kBlock; ++x) {
                    const T v = rows ? in[a * kBlock + x]
                                     : in[x * kBlock + a];
                    sum += v * T(cos_table[x][u]);
                }
                const T scaled = sum * T(scale[u]);
                if (rows)
                    out[a * kBlock + u] = scaled;
                else
                    out[u * kBlock + a] = scaled;
            }
        }
    }

    /** One separable inverse-DCT pass. */
    template <typename T>
    static void
    Idct1d(const T* in, T* out, bool rows)
    {
        const auto& cos_table = CosTable();
        const auto& scale = ScaleTable();
        for (size_t a = 0; a < kBlock; ++a) {
            for (size_t x = 0; x < kBlock; ++x) {
                T sum = T(0.0);
                for (size_t u = 0; u < kBlock; ++u) {
                    const T v = rows ? in[a * kBlock + u]
                                     : in[u * kBlock + a];
                    sum += v * T(scale[u]) * T(cos_table[x][u]);
                }
                if (rows)
                    out[a * kBlock + x] = sum;
                else
                    out[x * kBlock + a] = sum;
            }
        }
    }
};

}  // namespace rumba::apps

#endif  // RUMBA_APPS_JPEG_H_
