#include "apps/mosaic.h"

#include <cmath>

#include "common/imagegen.h"
#include "common/logging.h"
#include "common/random.h"

namespace rumba::apps {

double
MosaicStudy::ExactBrightness(const GrayImage& image)
{
    return image.MeanIntensity();
}

double
MosaicStudy::PerforatedBrightness(const GrayImage& image,
                                  const Options& options)
{
    RUMBA_CHECK(options.stride >= 1);
    double sum = 0.0;
    size_t kept = 0;
    switch (options.mode) {
      case Mode::kUniformRows:
        for (size_t y = 0; y < image.Height(); y += options.stride) {
            for (size_t x = 0; x < image.Width(); ++x) {
                sum += image.At(x, y);
                ++kept;
            }
        }
        break;
      case Mode::kRandomPixels: {
        Rng rng(options.seed ^ 0xD00DF00Du);
        const double keep = 1.0 / static_cast<double>(options.stride);
        for (size_t y = 0; y < image.Height(); ++y) {
            for (size_t x = 0; x < image.Width(); ++x) {
                if (rng.Chance(keep)) {
                    sum += image.At(x, y);
                    ++kept;
                }
            }
        }
        break;
      }
    }
    RUMBA_CHECK(kept > 0);
    return sum / static_cast<double>(kept);
}

double
MosaicStudy::OutputErrorPercent(const GrayImage& image,
                                const Options& options)
{
    const double exact = ExactBrightness(image);
    const double approx = PerforatedBrightness(image, options);
    RUMBA_CHECK(exact > 0.0);
    return std::fabs(approx - exact) / exact * 100.0;
}

std::vector<double>
MosaicStudy::RunStudy(const Options& options)
{
    std::vector<double> errors;
    errors.reserve(options.images);
    for (size_t i = 0; i < options.images; ++i) {
        const GrayImage tile = GenerateFlowerImage(
            options.width, options.height,
            options.seed + static_cast<uint64_t>(i) * 7919);
        errors.push_back(OutputErrorPercent(tile, options));
    }
    return errors;
}

}  // namespace rumba::apps
