#include "apps/fft.h"

#include "common/random.h"

namespace rumba::apps {

const BenchmarkInfo&
Fft::Info() const
{
    static const BenchmarkInfo info = {
        "fft",
        "Signal Processing",
        "Mean Relative Error",
        "5K random fp numbers",
        "5K random fp numbers",
        nn::Topology::Parse("1->2->2->2"),
        nn::Topology::Parse("1->4->4->2"),
    };
    return info;
}

std::vector<std::vector<double>>
Fft::Generate(uint64_t seed, size_t count)
{
    Rng rng(seed);
    std::vector<std::vector<double>> inputs;
    inputs.reserve(count);
    for (size_t i = 0; i < count; ++i)
        inputs.push_back({rng.Uniform()});
    return inputs;
}

std::vector<std::vector<double>>
Fft::TrainInputs() const
{
    return Generate(0xF47A11u, 5000);
}

std::vector<std::vector<double>>
Fft::TestInputs() const
{
    return Generate(0xF47A11u ^ 0xFFFF, 5000);
}

}  // namespace rumba::apps
