#include "fault/corrupt.h"

#include <algorithm>

#include "common/random.h"

namespace rumba::fault {

size_t
TruncateBlob(std::string* blob, double keep_fraction)
{
    const double keep = std::clamp(keep_fraction, 0.0, 1.0);
    const size_t new_size = static_cast<size_t>(
        static_cast<double>(blob->size()) * keep);
    const size_t removed = blob->size() - new_size;
    blob->resize(new_size);
    return removed;
}

size_t
BitrotBlob(std::string* blob, double rate, uint64_t seed)
{
    Rng rng(seed);
    size_t corrupted = 0;
    for (char& byte : *blob) {
        if (!rng.Chance(rate))
            continue;
        byte = static_cast<char>(
            static_cast<unsigned char>(byte) ^
            static_cast<unsigned char>(1u << rng.Below(8)));
        ++corrupted;
    }
    return corrupted;
}

}  // namespace rumba::fault
