#ifndef RUMBA_FAULT_PLAN_H_
#define RUMBA_FAULT_PLAN_H_

/**
 * @file
 * Deterministic fault-injection plans. The paper's premise is an
 * unreliable accelerator whose errors Rumba must contain online; a
 * FaultPlan makes that unreliability a first-class, replayable input.
 * A plan names a set of fault classes with per-opportunity rates and
 * a seed; armed into the process-wide FaultInjector (fault/injector.h)
 * it corrupts the simulated stack at well-defined sites — the NPU
 * fixed-point datapath, the accelerator's output interface, the
 * activation LUT SRAM, artifact blobs, the recovery queue's CPU-side
 * drain, and the checker's verdicts — so any bench, example, or test
 * can replay an identical fault schedule.
 *
 * Plans serialize to a compact spec string, also accepted from the
 * RUMBA_FAULT_PLAN environment variable:
 *
 *   seed=42;npu.output_nan=0.01;npu.bitflip=0.002;queue.stall=0.5
 *
 * Each clause is `class=rate` with an optional `:param` whose meaning
 * is class-specific (e.g. the stuck-at value).
 */

#include <cstdint>
#include <string>
#include <vector>

namespace rumba::fault {

/** Everything the harness knows how to break. */
enum class FaultClass {
    kNpuBitFlip,       ///< flip one bit of a PE's fixed-point result.
    kNpuOutputNan,     ///< output-queue word replaced with quiet NaN.
    kNpuOutputInf,     ///< output-queue word replaced with +/-Inf.
    kNpuOutputStuck,   ///< output-queue word stuck at `param`.
    kNpuLutCorrupt,    ///< activation-LUT SRAM entry bit flipped.
    kArtifactTruncate, ///< artifact blob loses its tail (param = keep fraction).
    kArtifactBitrot,   ///< artifact blob bytes bit-flipped at `rate`.
    kQueueStall,       ///< recovery drain unavailable at a full queue.
    kCheckerMispredict,///< detector verdict inverted.
};

/** Number of fault classes (stream/table sizing). */
inline constexpr size_t kNumFaultClasses = 9;

/** Stable spec-string name of a class ("npu.bitflip", ...). */
const char* FaultClassName(FaultClass fault);

/** One armed fault class. */
struct FaultRule {
    FaultClass fault = FaultClass::kNpuOutputNan;
    /** Probability per opportunity in [0, 1]. */
    double rate = 0.0;
    /** Class-specific parameter (stuck-at value, truncate keep
     *  fraction). Zero when the class takes none. */
    double param = 0.0;
};

/** A complete, replayable fault schedule. */
struct FaultPlan {
    /** Seeds every class's decision stream (deterministic replay). */
    uint64_t seed = 0;
    std::vector<FaultRule> rules;

    /** True when no rule has a positive rate. */
    bool Empty() const;

    /** Render as a spec string Parse() accepts. */
    std::string ToSpec() const;

    /**
     * Parse a spec string. On success fills @p plan and returns true;
     * on failure returns false and, when @p error is non-null, a
     * one-line description of the offending clause. An empty spec
     * parses to an empty plan.
     */
    static bool Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error);
};

}  // namespace rumba::fault

#endif  // RUMBA_FAULT_PLAN_H_
