#include "fault/injector.h"

#include <cstdlib>

#include "common/logging.h"
#include "obs/metrics.h"

namespace rumba::fault {

namespace {

/** Registry counter for one class, fetched once per process. */
obs::Counter*
InjectionCounter(FaultClass fault)
{
    static obs::Counter* counters[kNumFaultClasses] = {};
    const size_t index = static_cast<size_t>(fault);
    if (counters[index] == nullptr) {
        counters[index] = obs::Registry::Default().GetCounter(
            std::string("fault.injected.") + FaultClassName(fault));
    }
    return counters[index];
}

}  // namespace

FaultInjector::FaultInjector() = default;

void
FaultInjector::Arm(const FaultPlan& plan)
{
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = plan;
    for (ClassState& state : classes_)
        state = ClassState();
    for (const FaultRule& rule : plan.rules) {
        ClassState& state = classes_[static_cast<size_t>(rule.fault)];
        state.rate = rule.rate;
        state.param = rule.param;
        state.enabled = rule.rate > 0.0;
        // Each class draws from its own stream, keyed by the plan
        // seed and the class identity: sites never perturb each
        // other's schedules, so adding a rule replays the rest.
        state.rng = Rng::ForStream(
            plan.seed, static_cast<uint64_t>(rule.fault));
    }
    armed_.store(!plan.Empty(), std::memory_order_relaxed);
    obs::Registry::Default().GetGauge("fault.armed")->Set(
        Armed() ? 1.0 : 0.0);
}

void
FaultInjector::Disarm()
{
    std::lock_guard<std::mutex> lock(mu_);
    plan_ = FaultPlan();
    for (ClassState& state : classes_)
        state = ClassState();
    armed_.store(false, std::memory_order_relaxed);
    obs::Registry::Default().GetGauge("fault.armed")->Set(0.0);
}

bool
FaultInjector::Enabled(FaultClass fault) const
{
    if (!Armed())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    return classes_[static_cast<size_t>(fault)].enabled;
}

double
FaultInjector::Rate(FaultClass fault) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return classes_[static_cast<size_t>(fault)].rate;
}

double
FaultInjector::Param(FaultClass fault) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return classes_[static_cast<size_t>(fault)].param;
}

bool
FaultInjector::ShouldInject(FaultClass fault)
{
    if (!Armed())
        return false;
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& state = classes_[static_cast<size_t>(fault)];
    if (!state.enabled)
        return false;
    if (state.rng.Uniform() >= state.rate)
        return false;
    ++state.injections;
    InjectionCounter(fault)->Increment();
    return true;
}

uint64_t
FaultInjector::Draw(FaultClass fault)
{
    std::lock_guard<std::mutex> lock(mu_);
    return classes_[static_cast<size_t>(fault)].rng.Next();
}

uint64_t
FaultInjector::Injections(FaultClass fault) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return classes_[static_cast<size_t>(fault)].injections;
}

uint64_t
FaultInjector::TotalInjections() const
{
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t total = 0;
    for (const ClassState& state : classes_)
        total += state.injections;
    return total;
}

FaultPlan
FaultInjector::Plan() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return plan_;
}

FaultInjector&
FaultInjector::Default()
{
    // Leaked on purpose, like the obs singletons: injection sites may
    // run from static destructors of late-teardown threads.
    static FaultInjector* injector = [] {
        auto* made = new FaultInjector();
        const char* spec = std::getenv("RUMBA_FAULT_PLAN");
        if (spec != nullptr && spec[0] != '\0') {
            FaultPlan plan;
            std::string error;
            if (FaultPlan::Parse(spec, &plan, &error)) {
                made->Arm(plan);
                Inform("RUMBA_FAULT_PLAN armed: %s",
                       plan.ToSpec().c_str());
            } else {
                Warn("RUMBA_FAULT_PLAN ignored: %s", error.c_str());
            }
        }
        return made;
    }();
    return *injector;
}

}  // namespace rumba::fault
