#include "fault/plan.h"

#include <cstdlib>
#include <sstream>

namespace rumba::fault {

namespace {

struct ClassName {
    FaultClass fault;
    const char* name;
};

constexpr ClassName kClassNames[] = {
    {FaultClass::kNpuBitFlip, "npu.bitflip"},
    {FaultClass::kNpuOutputNan, "npu.output_nan"},
    {FaultClass::kNpuOutputInf, "npu.output_inf"},
    {FaultClass::kNpuOutputStuck, "npu.output_stuck"},
    {FaultClass::kNpuLutCorrupt, "npu.lut"},
    {FaultClass::kArtifactTruncate, "artifact.truncate"},
    {FaultClass::kArtifactBitrot, "artifact.bitrot"},
    {FaultClass::kQueueStall, "queue.stall"},
    {FaultClass::kCheckerMispredict, "checker.mispredict"},
};

static_assert(sizeof(kClassNames) / sizeof(kClassNames[0]) ==
              kNumFaultClasses);

bool
LookupClass(const std::string& name, FaultClass* fault)
{
    for (const auto& entry : kClassNames) {
        if (name == entry.name) {
            *fault = entry.fault;
            return true;
        }
    }
    return false;
}

/** Parse a double; returns false on trailing garbage. */
bool
ParseNumber(const std::string& text, double* out)
{
    if (text.empty())
        return false;
    char* end = nullptr;
    *out = std::strtod(text.c_str(), &end);
    return end == text.c_str() + text.size();
}

}  // namespace

const char*
FaultClassName(FaultClass fault)
{
    for (const auto& entry : kClassNames) {
        if (entry.fault == fault)
            return entry.name;
    }
    return "unknown";
}

bool
FaultPlan::Empty() const
{
    for (const FaultRule& rule : rules) {
        if (rule.rate > 0.0)
            return false;
    }
    return true;
}

std::string
FaultPlan::ToSpec() const
{
    std::ostringstream out;
    out.precision(17);
    out << "seed=" << seed;
    for (const FaultRule& rule : rules) {
        out << ";" << FaultClassName(rule.fault) << "=" << rule.rate;
        if (rule.param != 0.0)
            out << ":" << rule.param;
    }
    return out.str();
}

bool
FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                 std::string* error)
{
    FaultPlan parsed;
    std::istringstream in(spec);
    std::string clause;
    auto fail = [&](const std::string& message) {
        if (error != nullptr)
            *error = message + " in clause '" + clause + "'";
        return false;
    };
    while (std::getline(in, clause, ';')) {
        if (clause.empty())
            continue;
        const size_t eq = clause.find('=');
        if (eq == std::string::npos)
            return fail("missing '='");
        const std::string key = clause.substr(0, eq);
        std::string value = clause.substr(eq + 1);
        if (key == "seed") {
            double seed = 0.0;
            if (!ParseNumber(value, &seed) || seed < 0.0)
                return fail("bad seed");
            parsed.seed = static_cast<uint64_t>(seed);
            continue;
        }
        FaultRule rule;
        if (!LookupClass(key, &rule.fault))
            return fail("unknown fault class '" + key + "'");
        const size_t colon = value.find(':');
        if (colon != std::string::npos) {
            if (!ParseNumber(value.substr(colon + 1), &rule.param))
                return fail("bad param");
            value = value.substr(0, colon);
        }
        if (!ParseNumber(value, &rule.rate) || rule.rate < 0.0 ||
            rule.rate > 1.0)
            return fail("rate must be in [0, 1]");
        parsed.rules.push_back(rule);
    }
    *plan = std::move(parsed);
    return true;
}

}  // namespace rumba::fault
