#ifndef RUMBA_FAULT_INJECTOR_H_
#define RUMBA_FAULT_INJECTOR_H_

/**
 * @file
 * The process-wide fault injector. Components with injection sites
 * (npu datapath, recovery path, detector) query it at each fault
 * opportunity; when a FaultPlan is armed the injector answers from a
 * deterministic per-class random stream, so the same plan over the
 * same workload replays bit-identically. Disarmed (the default) every
 * site reduces to a single relaxed atomic load.
 *
 * Every injected fault is counted both internally (Injections()) and
 * in the default metrics registry as `fault.injected.<class>`, so a
 * run's fault schedule shows up next to the quality telemetry it
 * caused.
 */

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/random.h"
#include "fault/plan.h"

namespace rumba::fault {

/** Deterministic, seedable fault source. */
class FaultInjector {
  public:
    FaultInjector();

    /**
     * Arm @p plan: resets every class's decision stream from the
     * plan's seed and zeroes the per-class injection counts. Arming
     * an empty plan is equivalent to Disarm().
     */
    void Arm(const FaultPlan& plan);

    /** Stop injecting; every site becomes a no-op again. */
    void Disarm();

    /** True while a non-empty plan is armed. */
    bool
    Armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** True when @p fault is armed with a positive rate. */
    bool Enabled(FaultClass fault) const;

    /** The armed rate of @p fault (0 when disarmed/absent). */
    double Rate(FaultClass fault) const;

    /** The armed class parameter of @p fault (0 when absent). */
    double Param(FaultClass fault) const;

    /**
     * One fault opportunity for @p fault: consumes one Bernoulli draw
     * from the class's stream and returns true when the fault fires
     * (counted). Always false while disarmed or the class is absent.
     */
    bool ShouldInject(FaultClass fault);

    /**
     * A raw 64-bit draw from @p fault's stream, for site-specific
     * decisions (which bit to flip, which sign to use). Deterministic
     * alongside ShouldInject() for the same call sequence.
     */
    uint64_t Draw(FaultClass fault);

    /** Faults injected for @p fault since the last Arm(). */
    uint64_t Injections(FaultClass fault) const;

    /** Faults injected across all classes since the last Arm(). */
    uint64_t TotalInjections() const;

    /** The armed plan (empty when disarmed). */
    FaultPlan Plan() const;

    /**
     * The process-wide injector every built-in site queries. First
     * use arms it from RUMBA_FAULT_PLAN when that is set (a malformed
     * spec warns and stays disarmed).
     */
    static FaultInjector& Default();

  private:
    struct ClassState {
        double rate = 0.0;
        double param = 0.0;
        bool enabled = false;
        Rng rng;  ///< per-class decision stream (Rng::ForStream).
        uint64_t injections = 0;
    };

    std::atomic<bool> armed_{false};
    mutable std::mutex mu_;
    FaultPlan plan_;
    ClassState classes_[kNumFaultClasses];
};

}  // namespace rumba::fault

#endif  // RUMBA_FAULT_INJECTOR_H_
