#ifndef RUMBA_FAULT_CORRUPT_H_
#define RUMBA_FAULT_CORRUPT_H_

/**
 * @file
 * Artifact-blob corruption: deterministic storage-fault models for
 * the deployable configuration blobs (core/artifact.h). Truncation
 * models an interrupted write or short read; bitrot models media
 * decay. Both are seeded so a corrupted blob — and everything a test
 * asserts about how the loader rejects it — replays exactly.
 */

#include <cstdint>
#include <string>

namespace rumba::fault {

/**
 * Keep only the leading @p keep_fraction of @p blob (clamped to
 * [0, 1]). Returns the number of bytes removed.
 */
size_t TruncateBlob(std::string* blob, double keep_fraction);

/**
 * Flip one random bit in each byte of @p blob with probability
 * @p rate, drawing from a stream seeded by @p seed. Returns the
 * number of bytes corrupted.
 */
size_t BitrotBlob(std::string* blob, double rate, uint64_t seed);

}  // namespace rumba::fault

#endif  // RUMBA_FAULT_CORRUPT_H_
