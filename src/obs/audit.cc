#include "obs/audit.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace rumba::obs {

namespace {

/** The live auditor the at-exit/signal export consults. */
std::mutex g_live_mu;
QualityAuditor* g_live = nullptr;

/** Error-percent histogram bounds (latency defaults are ns-scale). */
std::vector<double>
ErrorPctBounds()
{
    return Histogram::ExponentialBuckets(0.05, 1.6, 24);
}

SloConfig
WithDefaultName(SloConfig slo)
{
    if (slo.name.empty() || slo.name == "objective")
        slo.name = "audited_quality";
    return slo;
}

}  // namespace

QualityAuditor::QualityAuditor(const AuditConfig& config,
                               AuditHooks hooks)
    : config_(config),
      hooks_(std::move(hooks)),
      slo_enabled_(config.slo_enabled),
      slo_(WithDefaultName(config.slo))
{
    RUMBA_CHECK(hooks_.run_exact != nullptr);
    RUMBA_CHECK(hooks_.element_error != nullptr);
    RUMBA_CHECK(hooks_.aggregate_error != nullptr);
    auto& registry = Registry::Default();
    obs_enqueued_ = registry.GetCounter("audit.enqueued");
    obs_forced_ = registry.GetCounter("audit.forced");
    obs_queue_drops_ = registry.GetCounter("audit.queue_drops");
    obs_samples_ = registry.GetCounter("audit.samples");
    obs_elements_ = registry.GetCounter("audit.audited_elements");
    obs_toq_violations_ =
        registry.GetCounter("audit.true_toq_violations");
    obs_true_positives_ =
        registry.GetCounter("audit.true_positive_fires");
    obs_false_positives_ =
        registry.GetCounter("audit.false_positive_recoveries");
    obs_false_negatives_ =
        registry.GetCounter("audit.false_negative_accepts");
    obs_true_negatives_ =
        registry.GetCounter("audit.true_negative_accepts");
    obs_compensated_ =
        registry.GetCounter("audit.compensated_elements");
    obs_compensated_residual_ =
        registry.GetGauge("audit.mean_compensated_residual_pct");
    obs_violation_rate_ =
        registry.GetGauge("audit.true_toq_violation_rate");
    obs_mean_true_error_ =
        registry.GetGauge("audit.mean_true_error_pct");
    obs_predicted_hist_ = registry.GetHistogram(
        "audit.predicted_error_pct", ErrorPctBounds());
    obs_true_hist_ =
        registry.GetHistogram("audit.true_error_pct", ErrorPctBounds());
    obs_gap_hist_ = registry.GetHistogram("audit.calibration_gap_pct",
                                          ErrorPctBounds());
    const uint32_t shards = std::max<uint32_t>(1, config_.shards);
    shard_tp_.assign(shards, 0);
    shard_fp_.assign(shards, 0);
    shard_fn_.assign(shards, 0);
    shard_tn_.assign(shards, 0);
    obs_shard_precision_.reserve(shards);
    obs_shard_recall_.reserve(shards);
    for (uint32_t k = 0; k < shards; ++k) {
        const std::string prefix =
            "audit.shard" + std::to_string(k) + ".";
        obs_shard_precision_.push_back(
            registry.GetGauge(prefix + "precision"));
        obs_shard_recall_.push_back(
            registry.GetGauge(prefix + "recall"));
        obs_shard_precision_.back()->Set(1.0);
        obs_shard_recall_.back()->Set(1.0);
    }
    totals_.toq_bound_pct = config_.toq_bound_pct;
    totals_.precision = 1.0;
    totals_.recall = 1.0;

    if (config_.result_capacity > 0)
        results_.reserve(config_.result_capacity);
    const size_t threads = std::max<size_t>(1, config_.threads);
    pool_.reserve(threads);
    for (size_t t = 0; t < threads; ++t)
        pool_.emplace_back([this] { WorkerLoop(); });

    {
        std::lock_guard<std::mutex> lock(g_live_mu);
        g_live = this;
    }
}

QualityAuditor::~QualityAuditor()
{
    Shutdown();
}

QualityAuditor*
QualityAuditor::Live()
{
    std::lock_guard<std::mutex> lock(g_live_mu);
    return g_live;
}

bool
QualityAuditor::SampleHealthy()
{
    if (config_.sample_every == 0)
        return false;
    const uint64_t seen =
        healthy_seen_.fetch_add(1, std::memory_order_relaxed);
    return seen % config_.sample_every == 0;
}

bool
QualityAuditor::SampleForcedRecovered()
{
    if (config_.forced_sample_every == 0)
        return false;
    const uint64_t seen =
        forced_candidates_seen_.fetch_add(1, std::memory_order_relaxed);
    return seen % config_.forced_sample_every == 0;
}

bool
QualityAuditor::Enqueue(AuditSample&& sample)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_ || queue_.size() >= config_.queue_capacity) {
            obs_queue_drops_->Increment();
            queue_drops_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        obs_enqueued_->Increment();
        enqueued_.fetch_add(1, std::memory_order_relaxed);
        if (sample.forced) {
            obs_forced_->Increment();
            forced_.fetch_add(1, std::memory_order_relaxed);
        }
        queue_.push_back(std::move(sample));
    }
    cv_work_.notify_one();
    return true;
}

void
QualityAuditor::Flush()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_idle_.wait(lock, [this] {
        return queue_.empty() && in_flight_ == 0;
    });
}

void
QualityAuditor::WorkerLoop()
{
    for (;;) {
        AuditSample sample;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_work_.wait(lock, [this] {
                return !queue_.empty() || stopping_;
            });
            if (queue_.empty()) {
                // stopping_ with a drained queue: exit; Shutdown()
                // keeps the pool alive until the backlog is audited.
                return;
            }
            sample = std::move(queue_.front());
            queue_.pop_front();
            ++in_flight_;
        }
        {
            // The shadow exact re-execution is the "audit" stage in
            // the cost profiler: tagged for the sampling profiler and
            // accounted straight into the global stage counters
            // (shard known per sample).
            const StageScope audit_scope(
                ProfileStage::kAudit, /*account=*/true,
                /*sink_ns=*/nullptr,
                static_cast<int>(sample.shard));
            AuditOne(sample);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            --in_flight_;
            if (queue_.empty() && in_flight_ == 0)
                cv_idle_.notify_all();
        }
    }
}

void
QualityAuditor::AuditOne(const AuditSample& s)
{
    const size_t n = s.count;
    const size_t in_w = s.in_width;
    const size_t out_w = s.out_width;
    if (n == 0 || in_w == 0 || out_w == 0 ||
        s.inputs.size() < n * in_w ||
        s.served_outputs.size() < n * out_w) {
        Warn("audit: dropping malformed sample (trace %llu)",
             static_cast<unsigned long long>(s.trace_id));
        return;
    }
    const bool have_approx = s.approx_outputs.size() >= n * out_w;

    AuditResult result;
    result.trace_id = s.trace_id;
    result.shard = s.shard;
    result.forced = s.forced;
    result.forced_reason = s.forced_reason;
    result.elements = n;
    result.threshold_used = s.threshold_used;
    result.estimated_error_pct = s.estimated_error_pct;
    result.reported_error_pct = s.reported_error_pct;
    result.toq_bound_pct = config_.toq_bound_pct;
    result.breaker_state = s.breaker_state;
    result.fixes = s.fixes;

    // Element budget: stride large invocations down so one audit's
    // exact re-execution cost is bounded by config, not by whatever
    // batch size the client chose. The stride is deterministic — the
    // same invocation always audits the same subset.
    const size_t budget = config_.max_elements_per_sample;
    const size_t stride =
        (budget == 0 || n <= budget) ? 1 : (n + budget - 1) / budget;
    result.labeled.reserve((n + stride - 1) / stride);

    std::vector<double> exact(out_w, 0.0);
    std::vector<double> served(out_w, 0.0);
    std::vector<double> approx(out_w, 0.0);
    std::vector<double> served_errors;
    served_errors.reserve((n + stride - 1) / stride);
    uint64_t tp = 0, fp = 0, fn = 0, tn = 0;
    double compensated_sum = 0.0;  ///< unit-fraction residual sum.
    size_t compensated_count = 0;
    for (size_t i = 0; i < n; i += stride) {
        AuditedElement el;
        el.index = i;
        el.inputs.assign(
            s.inputs.begin() + static_cast<ptrdiff_t>(i * in_w),
            s.inputs.begin() + static_cast<ptrdiff_t>((i + 1) * in_w));
        el.predicted_error =
            i < s.predicted_error.size() ? s.predicted_error[i] : 0.0;
        el.fired = i < s.fired.size() && s.fired[i] != 0;
        el.fixed = i < s.fixed.size() && s.fixed[i] == 1;
        el.compensated = i < s.fixed.size() && s.fixed[i] == 2;
        el.exact_path = i < s.exact_path.size() && s.exact_path[i] != 0;

        served.assign(
            s.served_outputs.begin() +
                static_cast<ptrdiff_t>(i * out_w),
            s.served_outputs.begin() +
                static_cast<ptrdiff_t>((i + 1) * out_w));
        if (el.fixed || el.exact_path) {
            // Exact re-execution and the breaker's exact tail run the
            // same exact kernel the auditor would: the served output
            // IS the ground truth, so re-executing it buys nothing.
            // Compensated elements deliberately do NOT take this
            // shortcut — the compensator is a model, and measuring
            // the residual it left behind is the whole point.
            exact = served;
        } else {
            hooks_.run_exact(s.inputs.data() + i * in_w, exact.data());
        }
        const double served_err =
            (el.fixed || el.exact_path)
                ? 0.0
                : hooks_.element_error(exact, served);
        served_errors.push_back(served_err);
        el.served_error = served_err;
        if (el.compensated) {
            compensated_sum += served_err;
            ++compensated_count;
        }
        if (el.exact_path || !have_approx) {
            // The breaker served it exactly: no approximate output
            // existed, so no checker verdict to calibrate.
            el.approx_error = 0.0;
        } else {
            approx.assign(
                s.approx_outputs.begin() +
                    static_cast<ptrdiff_t>(i * out_w),
                s.approx_outputs.begin() +
                    static_cast<ptrdiff_t>((i + 1) * out_w));
            el.approx_error = hooks_.element_error(exact, approx);
            el.needs_fix = el.approx_error >= s.threshold_used;
            if (el.fired && el.needs_fix)
                ++tp;
            else if (el.fired)
                ++fp;
            else if (el.needs_fix)
                ++fn;
            else
                ++tn;
        }
        result.labeled.push_back(std::move(el));
    }
    result.audited_elements = result.labeled.size();
    result.true_error_pct = hooks_.aggregate_error(served_errors);
    result.toq_violation =
        result.true_error_pct > config_.toq_bound_pct;
    result.true_positives = tp;
    result.false_positives = fp;
    result.false_negatives = fn;
    result.true_negatives = tn;
    result.compensated_elements = compensated_count;
    result.mean_compensated_residual_pct =
        compensated_count == 0
            ? 0.0
            : 100.0 * compensated_sum /
                  static_cast<double>(compensated_count);

    obs_samples_->Increment();
    obs_elements_->Increment(result.audited_elements);
    obs_true_positives_->Increment(tp);
    obs_false_positives_->Increment(fp);
    obs_false_negatives_->Increment(fn);
    obs_true_negatives_->Increment(tn);
    if (compensated_count > 0)
        obs_compensated_->Increment(compensated_count);
    if (result.toq_violation)
        obs_toq_violations_->Increment();
    obs_predicted_hist_->Observe(
        std::max(0.0, result.estimated_error_pct));
    obs_true_hist_->Observe(std::max(0.0, result.true_error_pct));
    obs_gap_hist_->Observe(std::fabs(result.true_error_pct -
                                     result.estimated_error_pct));

    // result is moved into the ring below; copy what outlives it.
    const bool toq_violation = result.toq_violation;
    {
        std::lock_guard<std::mutex> lock(results_mu_);
        ++totals_.audited;
        totals_.audited_elements += result.audited_elements;
        totals_.true_positives += tp;
        totals_.false_positives += fp;
        totals_.false_negatives += fn;
        totals_.true_negatives += tn;
        if (result.toq_violation)
            ++totals_.toq_violations;
        totals_.toq_violation_rate =
            static_cast<double>(totals_.toq_violations) /
            static_cast<double>(totals_.audited);
        true_error_sum_ += result.true_error_pct;
        totals_.mean_true_error_pct =
            true_error_sum_ / static_cast<double>(totals_.audited);
        totals_.compensated_elements += compensated_count;
        compensated_residual_sum_ += compensated_sum;
        totals_.mean_compensated_residual_pct =
            totals_.compensated_elements == 0
                ? 0.0
                : 100.0 * compensated_residual_sum_ /
                      static_cast<double>(
                          totals_.compensated_elements);
        obs_compensated_residual_->Set(
            totals_.mean_compensated_residual_pct);
        const uint64_t fires =
            totals_.true_positives + totals_.false_positives;
        const uint64_t needed =
            totals_.true_positives + totals_.false_negatives;
        totals_.precision =
            fires == 0 ? 1.0
                       : static_cast<double>(totals_.true_positives) /
                             static_cast<double>(fires);
        totals_.recall =
            needed == 0 ? 1.0
                        : static_cast<double>(totals_.true_positives) /
                              static_cast<double>(needed);
        obs_violation_rate_->Set(totals_.toq_violation_rate);
        obs_mean_true_error_->Set(totals_.mean_true_error_pct);

        const uint32_t k =
            std::min<uint32_t>(result.shard,
                               static_cast<uint32_t>(
                                   shard_tp_.size() - 1));
        shard_tp_[k] += tp;
        shard_fp_[k] += fp;
        shard_fn_[k] += fn;
        shard_tn_[k] += tn;
        const uint64_t shard_fires = shard_tp_[k] + shard_fp_[k];
        const uint64_t shard_needed = shard_tp_[k] + shard_fn_[k];
        obs_shard_precision_[k]->Set(
            shard_fires == 0
                ? 1.0
                : static_cast<double>(shard_tp_[k]) /
                      static_cast<double>(shard_fires));
        obs_shard_recall_[k]->Set(
            shard_needed == 0
                ? 1.0
                : static_cast<double>(shard_tp_[k]) /
                      static_cast<double>(shard_needed));

        if (config_.result_capacity > 0) {
            if (results_.size() < config_.result_capacity) {
                results_.push_back(std::move(result));
            } else {
                results_[results_head_] = std::move(result);
                results_head_ =
                    (results_head_ + 1) % config_.result_capacity;
            }
        }
    }

    // The audited-truth SLO judges measured violations; recorded
    // outside both locks so a slow sink never blocks the pool.
    if (slo_enabled_)
        slo_.Record(!toq_violation);

    // Ground-truth feedback for the compensate/re-execute boundary:
    // the RecoveryPolicy tunes its upper threshold on measured
    // residuals, never on the compensator's own predictions. Outside
    // the locks — the sink may take the shard runtime's policy mutex.
    if (hooks_.on_compensated && compensated_count > 0) {
        hooks_.on_compensated(
            s.shard,
            100.0 * compensated_sum /
                static_cast<double>(compensated_count),
            compensated_count);
    }
}

AuditorStats
QualityAuditor::Stats() const
{
    AuditorStats stats;
    {
        std::lock_guard<std::mutex> lock(results_mu_);
        stats = totals_;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats.queue_depth = queue_.size() + in_flight_;
    }
    stats.enqueued = enqueued_.load(std::memory_order_relaxed);
    stats.forced = forced_.load(std::memory_order_relaxed);
    stats.queue_drops = queue_drops_.load(std::memory_order_relaxed);
    if (slo_enabled_) {
        stats.slo_alerting = slo_.Alerting();
        stats.slo_fast_burn = slo_.FastBurnRate();
        stats.slo_slow_burn = slo_.SlowBurnRate();
    }
    return stats;
}

std::vector<AuditResult>
QualityAuditor::RecentResults() const
{
    std::lock_guard<std::mutex> lock(results_mu_);
    std::vector<AuditResult> out;
    out.reserve(results_.size());
    for (size_t i = 0; i < results_.size(); ++i)
        out.push_back(results_[(results_head_ + i) % results_.size()]);
    return out;
}

namespace {

std::string
Bool(bool v)
{
    return v ? "true" : "false";
}

}  // namespace

std::string
QualityAuditor::ExportJsonl() const
{
    const std::vector<AuditResult> results = RecentResults();
    std::string body = MetadataJsonLine() + "\n";
    for (const AuditResult& r : results) {
        body += "{\"type\":\"audit\",\"trace_id\":" +
                std::to_string(r.trace_id) +
                ",\"shard\":" + std::to_string(r.shard) +
                ",\"forced\":" + Bool(r.forced) +
                ",\"forced_reason\":" + JsonQuote(r.forced_reason) +
                ",\"elements\":" + std::to_string(r.elements) +
                ",\"audited_elements\":" +
                std::to_string(r.audited_elements) +
                ",\"threshold\":" + JsonNum(r.threshold_used) +
                ",\"estimated_error_pct\":" +
                JsonNum(r.estimated_error_pct) +
                ",\"reported_error_pct\":" +
                JsonNum(r.reported_error_pct) +
                ",\"true_error_pct\":" + JsonNum(r.true_error_pct) +
                ",\"toq_violation\":" + Bool(r.toq_violation) +
                ",\"toq_bound_pct\":" + JsonNum(r.toq_bound_pct) +
                ",\"tp\":" + std::to_string(r.true_positives) +
                ",\"fp\":" + std::to_string(r.false_positives) +
                ",\"fn\":" + std::to_string(r.false_negatives) +
                ",\"tn\":" + std::to_string(r.true_negatives) +
                ",\"breaker_state\":" +
                std::to_string(r.breaker_state) +
                ",\"fixes\":" + std::to_string(r.fixes) +
                ",\"compensated_elements\":" +
                std::to_string(r.compensated_elements) +
                ",\"mean_compensated_residual_pct\":" +
                JsonNum(r.mean_compensated_residual_pct) + "}\n";
        // One labeled line per element; inputs land as flat input_<j>
        // keys so the line stays array-free (rumba-stat's JSON mini
        // parser, and most JSONL tooling, prefers flat objects).
        for (size_t i = 0; i < r.labeled.size(); ++i) {
            const AuditedElement& el = r.labeled[i];
            body += "{\"type\":\"audit_element\",\"trace_id\":" +
                    std::to_string(r.trace_id) +
                    ",\"shard\":" + std::to_string(r.shard) +
                    ",\"index\":" + std::to_string(el.index) +
                    ",\"predicted_error\":" +
                    JsonNum(el.predicted_error) +
                    ",\"approx_error\":" + JsonNum(el.approx_error) +
                    ",\"served_error\":" + JsonNum(el.served_error) +
                    ",\"fired\":" + Bool(el.fired) +
                    ",\"fixed\":" + Bool(el.fixed) +
                    ",\"compensated\":" + Bool(el.compensated) +
                    ",\"exact_path\":" + Bool(el.exact_path) +
                    ",\"needs_fix\":" + Bool(el.needs_fix);
            for (size_t j = 0; j < el.inputs.size(); ++j) {
                body += ",\"input_" + std::to_string(j) +
                        "\":" + JsonNum(el.inputs[j]);
            }
            body += "}\n";
        }
    }
    return body;
}

void
QualityAuditor::Shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shut_down_)
            return;
        stopping_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : pool_) {
        if (t.joinable())
            t.join();
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        shut_down_ = true;
    }
    {
        std::lock_guard<std::mutex> lock(g_live_mu);
        if (g_live == this)
            g_live = nullptr;
    }
    // Final labeled-data export while the results are still alive;
    // the at-exit hook finds no live auditor afterwards and leaves
    // this file untouched.
    const char* path = std::getenv("RUMBA_AUDIT_OUT");
    if (path != nullptr && path[0] != '\0') {
        const std::string body = ExportJsonl();
        std::FILE* f = std::fopen(path, "w");
        if (f == nullptr) {
            Warn("RUMBA_AUDIT_OUT: cannot open %s: %s", path,
                 std::strerror(errno));
            return;
        }
        const size_t written =
            std::fwrite(body.data(), 1, body.size(), f);
        if (std::fclose(f) != 0 || written != body.size())
            Warn("RUMBA_AUDIT_OUT: short write to %s", path);
        else
            Inform("RUMBA_AUDIT_OUT: wrote labeled audits to %s",
                   path);
    }
}

std::string
ExportAuditIfConfigured()
{
    const char* path = std::getenv("RUMBA_AUDIT_OUT");
    if (path == nullptr || path[0] == '\0')
        return "";
    std::string body;
    {
        std::lock_guard<std::mutex> lock(g_live_mu);
        if (g_live == nullptr)
            return "";
        body = g_live->ExportJsonl();
    }
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        Warn("RUMBA_AUDIT_OUT: cannot open %s: %s", path,
             std::strerror(errno));
        return "";
    }
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    if (std::fclose(f) != 0 || written != body.size()) {
        Warn("RUMBA_AUDIT_OUT: short write to %s", path);
        return "";
    }
    return path;
}

}  // namespace rumba::obs
