#include "obs/slo.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/timer.h"

namespace rumba::obs {

SloMonitor::SloMonitor(const SloConfig& config)
    : config_(config),
      ring_(std::max<uint32_t>(config.buckets, 2)),
      fast_gauge_(Registry::Default().GetGauge(
          "slo." + config.name + ".fast_burn_rate")),
      slow_gauge_(Registry::Default().GetGauge(
          "slo." + config.name + ".slow_burn_rate")),
      alert_gauge_(Registry::Default().GetGauge(
          "slo." + config.name + ".alerting")),
      alert_counter_(Registry::Default().GetCounter(
          "slo." + config.name + ".alerts"))
{
    RUMBA_CHECK(config_.objective > 0.0 && config_.objective < 1.0);
    RUMBA_CHECK(config_.fast_window_ns > 0);
    RUMBA_CHECK(config_.slow_window_ns >= config_.fast_window_ns);
}

uint64_t
SloMonitor::BucketWidthNs() const
{
    return std::max<uint64_t>(
        1, config_.slow_window_ns / ring_.size());
}

void
SloMonitor::AdvanceLocked(uint64_t now_ns)
{
    // Lazy expiry: a bucket belongs to epoch now/width; a slot whose
    // tag differs from the epoch about to use it is stale and resets.
    const uint64_t epoch = now_ns / BucketWidthNs();
    Bucket& slot = ring_[epoch % ring_.size()];
    if (slot.epoch != epoch) {
        slot.epoch = epoch;
        slot.good = 0;
        slot.bad = 0;
    }
}

void
SloMonitor::Record(bool good, uint64_t now_ns)
{
    if (now_ns == 0)
        now_ns = NowNs();
    // Deliver any fire/clear edge AFTER releasing mu_: the sink may
    // be slow (it must not stall other recording threads) and may
    // call back into the monitor's accessors without self-deadlocking
    // on the non-recursive mutex.
    SloAlert alert;
    std::function<void(const SloAlert&)> sink;
    bool edge = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        AdvanceLocked(now_ns);
        Bucket& slot =
            ring_[(now_ns / BucketWidthNs()) % ring_.size()];
        if (good)
            ++slot.good;
        else
            ++slot.bad;
        edge = EvaluateLocked(now_ns, &alert);
        if (edge)
            sink = sink_;
    }
    if (edge && sink)
        sink(alert);
}

void
SloMonitor::SumWindowLocked(uint64_t now_ns, uint64_t window_ns,
                            uint64_t* good, uint64_t* bad) const
{
    *good = 0;
    *bad = 0;
    const uint64_t width = BucketWidthNs();
    const uint64_t now_epoch = now_ns / width;
    // Count whole buckets whose epoch lies within the window ending
    // now. The window is quantised to bucket granularity — acceptable
    // slack of one bucket width (slow_window / buckets).
    const uint64_t span =
        std::min<uint64_t>((window_ns + width - 1) / width,
                           ring_.size());
    for (const Bucket& slot : ring_) {
        if (slot.epoch + span > now_epoch && slot.epoch <= now_epoch) {
            *good += slot.good;
            *bad += slot.bad;
        }
    }
}

double
SloMonitor::BurnLocked(uint64_t now_ns, uint64_t window_ns) const
{
    uint64_t good = 0;
    uint64_t bad = 0;
    SumWindowLocked(now_ns, window_ns, &good, &bad);
    const uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double bad_fraction =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_fraction / (1.0 - config_.objective);
}

double
SloMonitor::FastBurnRate(uint64_t now_ns) const
{
    if (now_ns == 0)
        now_ns = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    return BurnLocked(now_ns, config_.fast_window_ns);
}

double
SloMonitor::SlowBurnRate(uint64_t now_ns) const
{
    if (now_ns == 0)
        now_ns = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    return BurnLocked(now_ns, config_.slow_window_ns);
}

bool
SloMonitor::Alerting() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return alerting_;
}

uint64_t
SloMonitor::AlertCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return alerts_;
}

void
SloMonitor::SetAlertSink(std::function<void(const SloAlert&)> sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
}

bool
SloMonitor::EvaluateLocked(uint64_t now_ns, SloAlert* out_alert)
{
    const double fast = BurnLocked(now_ns, config_.fast_window_ns);
    const double slow = BurnLocked(now_ns, config_.slow_window_ns);
    fast_gauge_->Set(fast);
    slow_gauge_->Set(slow);

    uint64_t fast_good = 0;
    uint64_t fast_bad = 0;
    SumWindowLocked(now_ns, config_.fast_window_ns, &fast_good,
                    &fast_bad);
    const bool enough = fast_good + fast_bad >= config_.min_events;

    bool edge = false;
    if (!alerting_) {
        if (enough && fast >= config_.fast_burn_alert &&
            slow >= config_.slow_burn_alert) {
            alerting_ = true;
            ++alerts_;
            alert_counter_->Increment();
            edge = true;
            Warn("slo.%s: burn-rate alert FIRING (fast %.2f >= %.2f, "
                 "slow %.2f >= %.2f)",
                 config_.name.c_str(), fast, config_.fast_burn_alert,
                 slow, config_.slow_burn_alert);
        }
    } else if (fast < config_.fast_burn_alert) {
        // Hysteresis: clear on the fast window alone — the slow
        // window can stay hot long after the incident ends.
        alerting_ = false;
        edge = true;
        Inform("slo.%s: burn-rate alert cleared (fast %.2f, slow %.2f)",
               config_.name.c_str(), fast, slow);
    }
    alert_gauge_->Set(alerting_ ? 1.0 : 0.0);
    if (edge) {
        out_alert->name = config_.name;
        out_alert->firing = alerting_;
        out_alert->fast_burn = fast;
        out_alert->slow_burn = slow;
        out_alert->now_ns = now_ns;
    }
    return edge;
}

}  // namespace rumba::obs
