#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/logging.h"

namespace rumba::obs {

namespace {

/** JSON-safe number: finite values via %.9g, otherwise 0. */
std::string
JsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
JsonStr(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string
ToJsonl(const RegistrySnapshot& snapshot,
        const std::vector<TraceEvent>& trace)
{
    std::string out;
    for (const auto& c : snapshot.counters) {
        out += "{\"type\":\"counter\",\"name\":" + JsonStr(c.name) +
               ",\"value\":" + std::to_string(c.value) + "}\n";
    }
    for (const auto& g : snapshot.gauges) {
        out += "{\"type\":\"gauge\",\"name\":" + JsonStr(g.name) +
               ",\"value\":" + JsonNum(g.value) + "}\n";
    }
    for (const auto& h : snapshot.histograms) {
        out += "{\"type\":\"histogram\",\"name\":" + JsonStr(h.name) +
               ",\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + JsonNum(h.sum) +
               ",\"min\":" + JsonNum(h.min) +
               ",\"max\":" + JsonNum(h.max) +
               ",\"p50\":" + JsonNum(h.p50) +
               ",\"p90\":" + JsonNum(h.p90) +
               ",\"p99\":" + JsonNum(h.p99) + "}\n";
    }
    for (const auto& e : trace) {
        out += "{\"type\":\"trace\",\"seq\":" +
               std::to_string(e.sequence) +
               ",\"invocation\":" + std::to_string(e.invocation) +
               ",\"elements\":" + std::to_string(e.elements) +
               ",\"threshold\":" + JsonNum(e.threshold) +
               ",\"fires\":" + std::to_string(e.fires) +
               ",\"fixes\":" + std::to_string(e.fixes) +
               ",\"queue_full_stalls\":" +
               std::to_string(e.queue_full_stalls) +
               ",\"tuner_adjustments\":" +
               std::to_string(e.tuner_adjustments) +
               ",\"output_error_pct\":" + JsonNum(e.output_error_pct) +
               ",\"estimated_error_pct\":" +
               JsonNum(e.estimated_error_pct) +
               ",\"drift\":" + (e.drift ? "true" : "false") + "}\n";
    }
    return out;
}

namespace {

/** Shared row shape for the CSV and table exporters. */
std::vector<std::vector<std::string>>
SnapshotRows(const RegistrySnapshot& snapshot)
{
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : snapshot.counters) {
        rows.push_back({"counter", c.name, std::to_string(c.value), "",
                        "", "", "", "", "", ""});
    }
    for (const auto& g : snapshot.gauges) {
        rows.push_back({"gauge", g.name, Table::Num(g.value, 6), "", "",
                        "", "", "", "", ""});
    }
    for (const auto& h : snapshot.histograms) {
        rows.push_back({"histogram", h.name, std::to_string(h.count),
                        Table::Num(h.sum, 1), Table::Num(h.min, 1),
                        Table::Num(h.max, 1), Table::Num(h.p50, 1),
                        Table::Num(h.p90, 1), Table::Num(h.p99, 1), ""});
    }
    return rows;
}

const std::vector<std::string> kColumns = {
    "type", "name", "value", "sum", "min",
    "max",  "p50",  "p90",   "p99", "notes"};

}  // namespace

std::string
ToCsv(const RegistrySnapshot& snapshot)
{
    Table table(kColumns);
    for (auto& row : SnapshotRows(snapshot))
        table.AddRow(std::move(row));
    return table.ToCsv();
}

Table
ToTable(const RegistrySnapshot& snapshot)
{
    Table table(kColumns);
    for (auto& row : SnapshotRows(snapshot))
        table.AddRow(std::move(row));
    return table;
}

bool
WriteMetricsFile(const std::string& path)
{
    const RegistrySnapshot snapshot = Registry::Default().Snapshot();
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    const std::string body =
        csv ? ToCsv(snapshot)
            : ToJsonl(snapshot, TraceRing::Default().Dump());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = std::fclose(f) == 0 && written == body.size();
    return ok;
}

std::string
ExportIfConfigured()
{
    const char* path = std::getenv("RUMBA_METRICS_OUT");
    if (path == nullptr || path[0] == '\0')
        return "";
    Debug("RUMBA_METRICS_OUT: exporting registry + trace to %s", path);
    if (!WriteMetricsFile(path)) {
        Warn("RUMBA_METRICS_OUT: could not write %s", path);
        return "";
    }
    return path;
}

namespace {

void
ExportAtExit()
{
    ExportIfConfigured();
}

}  // namespace

void
InstallAtExitExport()
{
    static const bool armed = [] {
        // Touch the singletons so their destructors are registered
        // before this exit hook (hooks run LIFO: export sees live
        // instruments).
        TraceRing::Default();
        std::atexit(ExportAtExit);
        return true;
    }();
    (void)armed;
}

}  // namespace rumba::obs
