#include "obs/export.h"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/reqtrace.h"
#include "obs/span.h"
#include "obs/stream.h"

#ifndef RUMBA_BUILD_TYPE
#define RUMBA_BUILD_TYPE "unknown"
#endif
#ifndef RUMBA_SANITIZE_FLAGS
#define RUMBA_SANITIZE_FLAGS ""
#endif
#ifndef RUMBA_GIT_DESCRIBE
#define RUMBA_GIT_DESCRIBE "unknown"
#endif
#ifndef RUMBA_VERSION_STRING
#define RUMBA_VERSION_STRING "0.0.0"
#endif

namespace rumba::obs {

std::string
JsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

std::string
EscapeJson(const std::string& s)
{
    static const char* kHex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += "\\u00";
                out += kHex[(c >> 4) & 0xF];
                out += kHex[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonQuote(const std::string& s)
{
    return "\"" + EscapeJson(s) + "\"";
}

RunMetadata
CollectRunMetadata()
{
    RunMetadata meta;
    const std::time_t now = std::time(nullptr);
    std::tm utc{};
    gmtime_r(&now, &utc);
    char stamp[32];
    std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
    meta.wall_time_iso8601 = stamp;
    char host[256] = "unknown";
    if (gethostname(host, sizeof(host)) == 0)
        host[sizeof(host) - 1] = '\0';
    meta.hostname = host;
    meta.version = RUMBA_VERSION_STRING;
    meta.git_describe = RUMBA_GIT_DESCRIBE;
    meta.build_type = RUMBA_BUILD_TYPE;
    meta.sanitizers = RUMBA_SANITIZE_FLAGS;
    meta.trace_ring_capacity = TraceRing::Default().Capacity();
    return meta;
}

std::string
MetadataJsonLine()
{
    const RunMetadata meta = CollectRunMetadata();
    return "{\"type\":\"meta\",\"schema_version\":" +
           std::to_string(meta.schema_version) +
           ",\"wall_time\":" + JsonQuote(meta.wall_time_iso8601) +
           ",\"hostname\":" + JsonQuote(meta.hostname) +
           ",\"version\":" + JsonQuote(meta.version) +
           ",\"git_describe\":" + JsonQuote(meta.git_describe) +
           ",\"build_type\":" + JsonQuote(meta.build_type) +
           ",\"sanitizers\":" + JsonQuote(meta.sanitizers) +
           ",\"trace_ring_capacity\":" +
           std::to_string(meta.trace_ring_capacity) + "}";
}

std::string
BuildInfoJson()
{
    const RunMetadata meta = CollectRunMetadata();
    std::string out = "{\"version\":" + JsonQuote(meta.version) +
                      ",\"git_describe\":" + JsonQuote(meta.git_describe) +
                      ",\"build_type\":" + JsonQuote(meta.build_type) +
                      ",\"sanitizers\":" + JsonQuote(meta.sanitizers) +
                      ",\"schema_version\":" +
                      std::to_string(meta.schema_version) + ",\"env\":{";
    // Every feature knob the runtime reads from the environment; only
    // the ones actually set appear, so the scrape shows the effective
    // deployment configuration at a glance.
    static const char* kKnobs[] = {
        "RUMBA_ADMISSION",        "RUMBA_AUDIT_OUT",
        "RUMBA_AUDIT_SAMPLE_N",   "RUMBA_FAULT_PLAN",
        "RUMBA_FLIGHT_DIR",       "RUMBA_LOADGEN_OUT",
        "RUMBA_LOG",
        "RUMBA_METRICS_OUT",      "RUMBA_METRICS_PORT",
        "RUMBA_OBS_LINGER_MS",    "RUMBA_PROFILE_HZ",
        "RUMBA_PROFILE_OUT",      "RUMBA_REQTRACE_OUT",
        "RUMBA_SCENARIO_OUT",     "RUMBA_STREAM_CHANGED_ONLY",
        "RUMBA_STREAM_OUT",       "RUMBA_STREAM_PERIOD_MS",
        "RUMBA_TRACE_OUT",        "RUMBA_TRACE_RING_CAPACITY",
    };
    bool first = true;
    for (const char* knob : kKnobs) {
        const char* value = std::getenv(knob);
        if (value == nullptr)
            continue;
        if (!first)
            out += ",";
        first = false;
        out += JsonQuote(knob) + ":" + JsonQuote(value);
    }
    out += "}";
    // Runtime shape knobs that are fixed at construction but worth a
    // glance on the same scrape: the recovery queue's configured
    // capacity and the RecoveryPolicy's live re-execution multiple
    // (zero until a runtime registers them).
    auto& registry = Registry::Default();
    out += ",\"runtime\":{\"recovery_queue_capacity\":" +
           JsonNum(registry.GetGauge("recovery.queue_capacity")
                       ->Value()) +
           ",\"recovery_reexec_multiple\":" +
           JsonNum(
               registry.GetGauge("recovery.policy.reexec_multiple")
                   ->Value()) +
           "}}";
    return out;
}

namespace {

/** Local alias so exporter bodies read naturally. */
std::string
JsonStr(const std::string& s)
{
    return JsonQuote(s);
}

}  // namespace

std::string
ToJsonl(const RegistrySnapshot& snapshot,
        const std::vector<TraceEvent>& trace)
{
    std::string out;
    for (const auto& c : snapshot.counters) {
        out += "{\"type\":\"counter\",\"name\":" + JsonStr(c.name) +
               ",\"value\":" + std::to_string(c.value) + "}\n";
    }
    for (const auto& c : snapshot.dcounters) {
        out += "{\"type\":\"counter\",\"name\":" + JsonStr(c.name) +
               ",\"value\":" + JsonNum(c.value) + "}\n";
    }
    for (const auto& g : snapshot.gauges) {
        out += "{\"type\":\"gauge\",\"name\":" + JsonStr(g.name) +
               ",\"value\":" + JsonNum(g.value) + "}\n";
    }
    for (const auto& h : snapshot.histograms) {
        out += "{\"type\":\"histogram\",\"name\":" + JsonStr(h.name) +
               ",\"count\":" + std::to_string(h.count) +
               ",\"sum\":" + JsonNum(h.sum) +
               ",\"min\":" + JsonNum(h.min) +
               ",\"max\":" + JsonNum(h.max) +
               ",\"p50\":" + JsonNum(h.p50) +
               ",\"p90\":" + JsonNum(h.p90) +
               ",\"p99\":" + JsonNum(h.p99) + "}\n";
    }
    for (const auto& e : trace) {
        out += "{\"type\":\"trace\",\"seq\":" +
               std::to_string(e.sequence) +
               ",\"invocation\":" + std::to_string(e.invocation) +
               ",\"elements\":" + std::to_string(e.elements) +
               ",\"threshold\":" + JsonNum(e.threshold) +
               ",\"fires\":" + std::to_string(e.fires) +
               ",\"fixes\":" + std::to_string(e.fixes) +
               ",\"queue_full_stalls\":" +
               std::to_string(e.queue_full_stalls) +
               ",\"queue_drops\":" + std::to_string(e.queue_drops) +
               ",\"non_finite\":" + std::to_string(e.non_finite) +
               ",\"exact_elements\":" +
               std::to_string(e.exact_elements) +
               ",\"tuner_adjustments\":" +
               std::to_string(e.tuner_adjustments) +
               ",\"output_error_pct\":" + JsonNum(e.output_error_pct) +
               ",\"estimated_error_pct\":" +
               JsonNum(e.estimated_error_pct) +
               ",\"drift\":" + (e.drift ? "true" : "false") +
               ",\"breaker_state\":" + std::to_string(e.breaker_state) +
               "}\n";
    }
    return out;
}

namespace {

/** Shared row shape for the CSV and table exporters. */
std::vector<std::vector<std::string>>
SnapshotRows(const RegistrySnapshot& snapshot)
{
    std::vector<std::vector<std::string>> rows;
    for (const auto& c : snapshot.counters) {
        rows.push_back({"counter", c.name, std::to_string(c.value), "",
                        "", "", "", "", "", ""});
    }
    for (const auto& c : snapshot.dcounters) {
        rows.push_back({"counter", c.name, Table::Num(c.value, 6), "",
                        "", "", "", "", "", ""});
    }
    for (const auto& g : snapshot.gauges) {
        rows.push_back({"gauge", g.name, Table::Num(g.value, 6), "", "",
                        "", "", "", "", ""});
    }
    for (const auto& h : snapshot.histograms) {
        rows.push_back({"histogram", h.name, std::to_string(h.count),
                        Table::Num(h.sum, 1), Table::Num(h.min, 1),
                        Table::Num(h.max, 1), Table::Num(h.p50, 1),
                        Table::Num(h.p90, 1), Table::Num(h.p99, 1), ""});
    }
    return rows;
}

const std::vector<std::string> kColumns = {
    "type", "name", "value", "sum", "min",
    "max",  "p50",  "p90",   "p99", "notes"};

}  // namespace

std::string
ToCsv(const RegistrySnapshot& snapshot)
{
    Table table(kColumns);
    for (auto& row : SnapshotRows(snapshot))
        table.AddRow(std::move(row));
    return table.ToCsv();
}

Table
ToTable(const RegistrySnapshot& snapshot)
{
    Table table(kColumns);
    for (auto& row : SnapshotRows(snapshot))
        table.AddRow(std::move(row));
    return table;
}

bool
WriteMetricsFile(const std::string& path)
{
    const RegistrySnapshot snapshot = Registry::Default().Snapshot();
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    // The metadata header leads either format; CSV carries it as a
    // "# " comment so the column grid stays rectangular.
    const std::string body =
        csv ? "# " + MetadataJsonLine() + "\n" + ToCsv(snapshot)
            : MetadataJsonLine() + "\n" +
                  ToJsonl(snapshot, TraceRing::Default().Dump());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    const bool ok = std::fclose(f) == 0 && written == body.size();
    return ok;
}

std::string
ExportIfConfigured()
{
    const char* path = std::getenv("RUMBA_METRICS_OUT");
    if (path == nullptr || path[0] == '\0')
        return "";
    Debug("RUMBA_METRICS_OUT: exporting registry + trace to %s", path);
    if (!WriteMetricsFile(path)) {
        Warn("RUMBA_METRICS_OUT: could not write %s", path);
        return "";
    }
    return path;
}

namespace {

/** Registered flush hooks (serve/loadgen.h, tools/rumba_scenarios):
 *  a fixed lock-free slot array so the signal path can walk it
 *  without taking a mutex or allocating. */
constexpr size_t kMaxFlushHooks = 8;
std::atomic<void (*)()> g_flush_hooks[kMaxFlushHooks]{};
std::atomic<size_t> g_flush_hook_count{0};

/**
 * Rewrite every configured JSONL sink with the current state. Shared
 * by the orderly at-exit hook and the signal path; does not join the
 * streamer thread (unsafe from a handler) — callers that can, stop it
 * first.
 */
void
FlushFilesBestEffort()
{
    ExportIfConfigured();
    ExportTraceIfConfigured();
    ExportRequestTracesIfConfigured();
    ExportAuditIfConfigured();
    const size_t hooks =
        std::min(g_flush_hook_count.load(std::memory_order_acquire),
                 kMaxFlushHooks);
    for (size_t i = 0; i < hooks; ++i) {
        void (*hook)() = g_flush_hooks[i].load(std::memory_order_acquire);
        if (hook != nullptr)
            hook();
    }
}

void
ExportAtExit()
{
    // Stop the sampler first so its final sample lands before the
    // registry is frozen into the metrics/trace dumps. Runs even if
    // a signal flush already fired: the exporters are idempotent
    // rewrites, and the at-exit state is strictly fresher. The
    // profiling sampler gets the same treatment so RUMBA_PROFILE_OUT
    // is written even when an engine never released its ref.
    SnapshotStreamer::Default().Stop();
    SamplingProfiler::StopEnv();
    FlushFilesBestEffort();
}

/** Set once the signal handler has run; guards the signal path only. */
std::atomic<bool> g_signal_flush_done{false};

void
SignalFlushHandler(int signo)
{
    if (!g_signal_flush_done.exchange(true))
        FlushFilesBestEffort();
    // Restore the default disposition and re-raise so the process
    // still terminates with the conventional signal status.
    struct sigaction dfl {};
    dfl.sa_handler = SIG_DFL;
    sigemptyset(&dfl.sa_mask);
    sigaction(signo, &dfl, nullptr);
    raise(signo);
}

bool
AnySinkConfigured()
{
    for (const char* var : {"RUMBA_METRICS_OUT", "RUMBA_TRACE_OUT",
                            "RUMBA_REQTRACE_OUT", "RUMBA_AUDIT_OUT"}) {
        const char* value = std::getenv(var);
        if (value != nullptr && value[0] != '\0')
            return true;
    }
    return false;
}

}  // namespace

bool
RegisterFlushHook(void (*hook)())
{
    if (hook == nullptr)
        return false;
    // Registering the same hook twice is a no-op (callers register
    // eagerly from constructors).
    const size_t seen =
        std::min(g_flush_hook_count.load(std::memory_order_acquire),
                 kMaxFlushHooks);
    for (size_t i = 0; i < seen; ++i)
        if (g_flush_hooks[i].load(std::memory_order_acquire) == hook)
            return true;
    const size_t slot =
        g_flush_hook_count.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= kMaxFlushHooks) {
        g_flush_hook_count.store(kMaxFlushHooks,
                                 std::memory_order_release);
        Warn("RegisterFlushHook: hook table full (%zu)", kMaxFlushHooks);
        return false;
    }
    g_flush_hooks[slot].store(hook, std::memory_order_release);
    return true;
}

void
InstallSignalFlush()
{
    static const bool installed = [] {
        for (int signo : {SIGINT, SIGTERM}) {
            struct sigaction current {};
            if (sigaction(signo, nullptr, &current) != 0)
                continue;
            // Never displace an application's own handler (or an
            // explicit SIG_IGN, e.g. a nohup'd deploy).
            if (current.sa_handler != SIG_DFL)
                continue;
            struct sigaction flush {};
            flush.sa_handler = SignalFlushHandler;
            sigemptyset(&flush.sa_mask);
            flush.sa_flags = 0;
            sigaction(signo, &flush, nullptr);
        }
        return true;
    }();
    (void)installed;
}

void
InstallAtExitExport()
{
    static const bool armed = [] {
        // Touch the singletons so their destructors are registered
        // before this exit hook (hooks run LIFO: export sees live
        // instruments).
        TraceRing::Default();
        SpanCollector::Default();
        SnapshotStreamer::Default();
        RequestTraceCollector::Default();
        std::atexit(ExportAtExit);
        if (AnySinkConfigured())
            InstallSignalFlush();
        return true;
    }();
    (void)armed;
}

}  // namespace rumba::obs
