#ifndef RUMBA_OBS_STREAM_H_
#define RUMBA_OBS_STREAM_H_

/**
 * @file
 * Live metric streaming: a background sampler thread that appends one
 * timestamped JSONL sample per period to a file — counter *deltas*
 * since the previous sample, current gauge values, and the latest
 * invocation TraceEvent's fields (threshold, fire rate, queue
 * backpressure, observed error). A run's tuner-convergence curve
 * (paper Fig. 16's TOQ trajectory) falls out of any binary without
 * per-call-site plumbing:
 *
 *   RUMBA_STREAM_OUT=stream.jsonl RUMBA_STREAM_PERIOD_MS=25 ./deploy
 *
 * The file starts with the run-metadata header of obs/export.h, then
 * holds one {"type":"sample",...} object per line. RumbaRuntime
 * acquires/releases the env-configured default streamer on
 * construction/destruction, so the stream covers exactly the window
 * where a runtime is alive; the at-exit hook flushes it as a backstop.
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace rumba::obs {

/** Default and clamp range for RUMBA_STREAM_PERIOD_MS. */
inline constexpr int kDefaultStreamPeriodMs = 25;
inline constexpr int kMinStreamPeriodMs = 1;
inline constexpr int kMaxStreamPeriodMs = 60000;

/**
 * Parse a RUMBA_STREAM_PERIOD_MS value: nullptr / empty / garbage
 * select the default; numbers are clamped to the sane range.
 */
int ParseStreamPeriodMs(const char* value);

/** The background registry sampler. */
class SnapshotStreamer {
  public:
    SnapshotStreamer() = default;

    /** Stops the sampler if still running (joins the thread). */
    ~SnapshotStreamer();

    SnapshotStreamer(const SnapshotStreamer&) = delete;
    SnapshotStreamer& operator=(const SnapshotStreamer&) = delete;

    /**
     * Start sampling the default registry + trace ring into @p path
     * every @p period_ms milliseconds. Writes the metadata header
     * immediately. Returns false (and starts nothing) when already
     * running or the file cannot be opened.
     */
    bool Start(const std::string& path, int period_ms);

    /**
     * Stop sampling: the thread writes one final sample, the file is
     * flushed and closed, and the thread is joined. Idempotent.
     */
    void Stop();

    /** True between a successful Start() and the matching Stop(). */
    bool Running() const;

    /**
     * When on, samples omit gauges whose value is unchanged since the
     * last sample (counters always stream as deltas). Long quiet
     * stretches then cost a few bytes per line instead of the full
     * gauge set. Settable any time; RUMBA_STREAM_CHANGED_ONLY=1 sets
     * it for the env-configured streamer.
     */
    void SetChangedOnly(bool on);

    /** Current changed-only setting. */
    bool ChangedOnly() const;

    /** Samples written since Start() (final sample included). */
    uint64_t Samples() const;

    /** The process-wide streamer the runtime starts from the env. */
    static SnapshotStreamer& Default();

    /**
     * Runtime-lifetime refcounting: the first acquirer starts the
     * default streamer from RUMBA_STREAM_OUT / RUMBA_STREAM_PERIOD_MS
     * (no-op when unset); the last Release() stops it. Called by
     * RumbaRuntime's constructor/destructor.
     */
    static void AcquireFromEnv();
    static void Release();

  private:
    void Loop();

    /** Append one sample line (sampler thread only). */
    void WriteSample();

    mutable std::mutex mu_;  ///< guards running_/stop_requested_/samples_.
    std::condition_variable cv_;
    std::thread thread_;
    bool running_ = false;
    bool stop_requested_ = false;
    uint64_t samples_ = 0;
    int period_ms_ = kDefaultStreamPeriodMs;
    std::FILE* file_ = nullptr;  ///< sampler thread only, once started.
    std::chrono::steady_clock::time_point start_time_;
    /** Previous sample's counter values (sampler thread only). */
    std::map<std::string, uint64_t> prev_counters_;
    /** Previous sample's fractional-counter values (sampler thread
     *  only; cpu_stage_seconds.* and friends stream as deltas too). */
    std::map<std::string, double> prev_dcounters_;
    /** Previous sample's gauge values, for changed-only suppression
     *  (sampler thread only). */
    std::map<std::string, double> prev_gauges_;
    std::atomic<bool> changed_only_{false};
};

}  // namespace rumba::obs

#endif  // RUMBA_OBS_STREAM_H_
