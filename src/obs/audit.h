#ifndef RUMBA_OBS_AUDIT_H_
#define RUMBA_OBS_AUDIT_H_

/**
 * @file
 * Ground-truth quality auditing: a shadow exact re-execution sampler.
 *
 * Every quality signal the serving engine exposes is derived from the
 * checker's *predicted* error — the system has no production view of
 * how wrong its own checkers are. The QualityAuditor closes that
 * loop: serving workers enqueue a sampled fraction of completed
 * invocations (1-in-N, with forced inclusion of breaker-degraded and
 * non-finite-salvage requests and a boosted 1-in-M gate for the
 * routine recovered ones), and a background audit pool re-executes
 * each one through the exact CPU path to compute
 *
 *   - the true per-invocation output error and true TOQ-violation
 *     rate (`audit.true_error_pct`, `audit.true_toq_violations`,
 *     `audit.true_toq_violation_rate`),
 *   - checker-calibration labels per accelerator-served element:
 *     true-positive fires, false-positive recoveries (fired but the
 *     approximate output was fine), false-negative accepts (did not
 *     fire but the approximate output exceeded the threshold), and
 *     per-shard precision/recall gauges (`audit.shard<k>.precision`),
 *   - an audited-truth SLO (obs/slo.h, default name
 *     "audited_quality") whose burn rate runs on *measured* TOQ
 *     violations rather than the proxy predicted-error stream.
 *
 * Completed audits are retained in a bounded ring and exported as
 * labeled JSONL (`RUMBA_AUDIT_OUT`): one "audit" line per invocation
 * plus one "audit_element" line per element carrying (inputs,
 * predicted error, true error, fired/fixed labels) — exactly the
 * supervised substrate error-predictor retraining needs.
 *
 * Layering: obs cannot see apps::Benchmark, so exact re-execution and
 * the application's error metric arrive as AuditHooks std::functions;
 * the serving engine wires them from core::ExactReexecutor. The hooks
 * must be thread-safe (the Table 1 kernels are pure).
 */

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/slo.h"

namespace rumba::obs {

class Counter;
class Gauge;
class Histogram;

/** One sampled invocation, as enqueued by a serving worker. */
struct AuditSample {
    uint64_t trace_id = 0;   ///< reqtrace id (joins traces + flights).
    uint32_t shard = 0;
    bool forced = false;     ///< bypassed 1-in-N sampling.
    std::string forced_reason;  ///< "recovered" / "breaker" / ...
    size_t count = 0;        ///< elements in the invocation.
    size_t in_width = 0;
    size_t out_width = 0;
    std::vector<double> inputs;          ///< count x in_width.
    std::vector<double> served_outputs;  ///< post-merge, as delivered.
    std::vector<double> approx_outputs;  ///< pre-merge accelerator out.
    std::vector<double> predicted_error; ///< checker estimate / element.
    std::vector<char> fired;             ///< acted-on verdict / element.
    /** Recovery-tier mask per element: 0 = accepted as-is, 1 = exact
     *  re-execution (core::kFixedExact), 2 = compensated in place
     *  (core::kFixedCompensated). Compensated elements are NOT ground
     *  truth — the auditor re-executes them to measure the residual
     *  the compensator left behind. */
    std::vector<char> fixed;
    std::vector<char> exact_path;        ///< breaker exact tail mask.
    double threshold_used = 0.0;
    double reported_error_pct = 0.0;   ///< runtime's verified error.
    double estimated_error_pct = 0.0;  ///< checker invocation estimate.
    uint32_t breaker_state = 0;
    uint64_t fixes = 0;
};

/** One audited element: a labeled (input, true error) pair. */
struct AuditedElement {
    /** Element index within the original invocation (subset indices
     *  are sparse when the per-sample element budget strides). */
    size_t index = 0;
    std::vector<double> inputs;
    double predicted_error = 0.0;
    /** True error of the pre-merge approximate output (what the
     *  checker was judging). */
    double approx_error = 0.0;
    /** True error of the served (post-merge) output. */
    double served_error = 0.0;
    bool fired = false;
    /** Recovered by exact re-execution (served output IS ground
     *  truth; served_error is 0 by construction). */
    bool fixed = false;
    /** Corrected in place by the compensate tier; served_error is the
     *  *measured* residual the compensator left behind. */
    bool compensated = false;
    bool exact_path = false;
    /** Ground truth: the approximate output exceeded the threshold the
     *  checker was enforcing, so a correct checker fires. */
    bool needs_fix = false;
};

/** One completed audit. */
struct AuditResult {
    uint64_t trace_id = 0;
    uint32_t shard = 0;
    bool forced = false;
    std::string forced_reason;
    size_t elements = 0;          ///< invocation size.
    /** Elements actually audited (== elements unless the per-sample
     *  element budget strided the invocation down). */
    size_t audited_elements = 0;
    double threshold_used = 0.0;
    double estimated_error_pct = 0.0;
    double reported_error_pct = 0.0;
    /** Independently re-measured output error of the served batch. */
    double true_error_pct = 0.0;
    bool toq_violation = false;
    double toq_bound_pct = 0.0;
    uint64_t true_positives = 0;
    uint64_t false_positives = 0;   ///< false-positive recoveries.
    uint64_t false_negatives = 0;   ///< false-negative accepts.
    uint64_t true_negatives = 0;
    uint32_t breaker_state = 0;
    uint64_t fixes = 0;
    /** Audited elements the compensate tier corrected in place. */
    size_t compensated_elements = 0;
    /** Mean measured residual of those elements, in percent (same
     *  units as true_error_pct) — the ground-truth feedback the
     *  RecoveryPolicy's upper-threshold tuner consumes. */
    double mean_compensated_residual_pct = 0.0;
    std::vector<AuditedElement> labeled;  ///< per-element labels.
};

/** Exact-path callbacks the auditor re-executes through. All three
 *  must be thread-safe; run_exact maps in_width inputs to out_width
 *  outputs for ONE element. */
struct AuditHooks {
    std::function<void(const double* in, double* out)> run_exact;
    std::function<double(const std::vector<double>& exact,
                         const std::vector<double>& approx)>
        element_error;
    /** Whole-invocation output error in percent. */
    std::function<double(const std::vector<double>& element_errors)>
        aggregate_error;
    /** Optional: invoked once per audited invocation that contained
     *  compensated elements, with the measured mean residual (percent)
     *  and the audited compensated-element count. The serving engine
     *  wires this to the shard runtime's OnAuditedCompensation so the
     *  compensate/re-execute boundary is tuned by measured truth, not
     *  by the compensator's own opinion of itself. Must be
     *  thread-safe; may be null. */
    std::function<void(uint32_t shard, double mean_residual_pct,
                       size_t elements)>
        on_compensated;
};

/** Auditor policy. */
struct AuditConfig {
    /** Healthy invocations sampled 1-in-N (1 = audit everything,
     *  0 = forced samples only). */
    size_t sample_every = 16;
    /** Bounded sample queue; overflow is drop-and-count
     *  (audit.queue_drops), never backpressure on serving. */
    size_t queue_capacity = 64;
    size_t threads = 1;
    /** True-error bound defining an audited TOQ violation (percent);
     *  the engine sets it to the tuner target + SLO margin so proxy
     *  and audited SLOs judge the same objective. */
    double toq_bound_pct = 10.0;
    bool force_recovered = true;   ///< boost-audit fixed>0 requests.
    bool force_breaker = true;     ///< always audit degraded requests.
    /** Recovered requests are *routine* in Rumba — fix rates of
     *  10-25% are the design point — so forcing every one would audit
     *  nearly all traffic. Forced "recovered" candidates therefore
     *  ride their own 1-in-M gate (1 = force every one, 0 = never
     *  force; candidates that lose the gate still enter the healthy
     *  1-in-N draw). Breaker-degraded and fault-touched requests are
     *  genuinely rare and stay unconditional. The serving engine
     *  defaults this to 4 to hold the <5% instrumentation budget. */
    size_t forced_sample_every = 1;
    /** Element budget per audited invocation: invocations larger than
     *  this are strided down to at most this many audited elements
     *  (deterministic stride, no RNG), bounding the exact re-execution
     *  cost of one audit regardless of batch size. True error,
     *  calibration counts, and labeled exports then describe the
     *  audited subset — the auditor is a sampler at both levels.
     *  0 = audit every element. */
    size_t max_elements_per_sample = 0;
    /** Completed audits retained for statusz / JSONL export. */
    size_t result_capacity = 256;
    uint32_t shards = 1;           ///< per-shard calibration gauges.
    bool slo_enabled = true;
    /** Audited-truth SLO (burn rate over measured TOQ violations). */
    SloConfig slo;
};

/** Point-in-time auditor summary (the /statusz quality section). */
struct AuditorStats {
    uint64_t enqueued = 0;
    uint64_t forced = 0;
    uint64_t queue_drops = 0;
    uint64_t audited = 0;          ///< completed audits.
    uint64_t audited_elements = 0;
    uint64_t toq_violations = 0;
    double toq_violation_rate = 0.0;
    double toq_bound_pct = 0.0;
    uint64_t true_positives = 0;
    uint64_t false_positives = 0;
    uint64_t false_negatives = 0;
    uint64_t true_negatives = 0;
    double precision = 0.0;  ///< TP / (TP + FP), 1 when no fires.
    double recall = 0.0;     ///< TP / (TP + FN), 1 when nothing needed.
    double mean_true_error_pct = 0.0;
    /** Audited compensate-tier elements and the mean measured
     *  residual (percent) they carried. */
    uint64_t compensated_elements = 0;
    double mean_compensated_residual_pct = 0.0;
    size_t queue_depth = 0;
    bool slo_alerting = false;
    double slo_fast_burn = 0.0;
    double slo_slow_burn = 0.0;
};

/**
 * Background ground-truth auditor. Thread-safe: serving workers call
 * SampleHealthy()/Enqueue() concurrently with the audit pool and with
 * Shutdown(). Construction registers the instance as the process's
 * live auditor (consulted by the RUMBA_AUDIT_OUT at-exit/signal
 * export); Shutdown() deregisters it and writes the export itself.
 */
class QualityAuditor {
  public:
    QualityAuditor(const AuditConfig& config, AuditHooks hooks);

    /** Calls Shutdown(). */
    ~QualityAuditor();

    QualityAuditor(const QualityAuditor&) = delete;
    QualityAuditor& operator=(const QualityAuditor&) = delete;

    /** 1-in-N decision for a healthy (non-forced) invocation. */
    bool SampleHealthy();

    /** 1-in-M decision for a forced-"recovered" candidate
     *  (AuditConfig::forced_sample_every). */
    bool SampleForcedRecovered();

    /** Queue @p sample for background audit; false (and
     *  audit.queue_drops) when the queue is full or shut down. */
    bool Enqueue(AuditSample&& sample);

    /** Block until every queued sample has been audited. */
    void Flush();

    /** Drain the queue, stop the pool, export RUMBA_AUDIT_OUT, and
     *  deregister the live auditor. Idempotent. */
    void Shutdown();

    AuditorStats Stats() const;

    /** Completed audits retained in the result ring, oldest first. */
    std::vector<AuditResult> RecentResults() const;

    /** The audited-truth SLO monitor (nullptr when disabled). */
    SloMonitor* Slo() { return slo_enabled_ ? &slo_ : nullptr; }

    const AuditConfig& Config() const { return config_; }

    /** Render the retained audits as a labeled JSONL body (metadata
     *  header, "audit" lines, "audit_element" lines). */
    std::string ExportJsonl() const;

    /** The process's live auditor (last constructed, not yet shut
     *  down), or nullptr. */
    static QualityAuditor* Live();

  private:
    void WorkerLoop();
    void AuditOne(const AuditSample& sample);

    const AuditConfig config_;
    const AuditHooks hooks_;
    const bool slo_enabled_;
    SloMonitor slo_;

    std::atomic<uint64_t> healthy_seen_{0};
    std::atomic<uint64_t> forced_candidates_seen_{0};
    /** Per-instance ingress totals (the registry counters are
     *  process-wide and outlive any one auditor). */
    std::atomic<uint64_t> enqueued_{0};
    std::atomic<uint64_t> forced_{0};
    std::atomic<uint64_t> queue_drops_{0};

    mutable std::mutex mu_;
    std::condition_variable cv_work_;   ///< queue became non-empty.
    std::condition_variable cv_idle_;   ///< queue drained + idle.
    std::deque<AuditSample> queue_;
    size_t in_flight_ = 0;
    bool stopping_ = false;
    bool shut_down_ = false;
    std::vector<std::thread> pool_;

    /** Results + aggregate stats (guarded by results_mu_ so audits
     *  never contend with the enqueue path). */
    mutable std::mutex results_mu_;
    std::vector<AuditResult> results_;  ///< bounded ring.
    size_t results_head_ = 0;
    AuditorStats totals_;
    std::vector<uint64_t> shard_tp_, shard_fp_, shard_fn_, shard_tn_;
    double true_error_sum_ = 0.0;
    /** Sum of per-element compensated residuals (unit fraction, not
     *  percent) across all audits, for the running mean. */
    double compensated_residual_sum_ = 0.0;

    Counter* obs_enqueued_;
    Counter* obs_forced_;
    Counter* obs_queue_drops_;
    Counter* obs_samples_;
    Counter* obs_elements_;
    Counter* obs_toq_violations_;
    Counter* obs_true_positives_;
    Counter* obs_false_positives_;
    Counter* obs_false_negatives_;
    Counter* obs_true_negatives_;
    Counter* obs_compensated_;
    Gauge* obs_compensated_residual_;
    Gauge* obs_violation_rate_;
    Gauge* obs_mean_true_error_;
    Histogram* obs_predicted_hist_;
    Histogram* obs_true_hist_;
    Histogram* obs_gap_hist_;
    std::vector<Gauge*> obs_shard_precision_;
    std::vector<Gauge*> obs_shard_recall_;
};

/**
 * Honor RUMBA_AUDIT_OUT: when the variable names a file and a live
 * auditor exists, write its labeled JSONL export there and return the
 * path; otherwise return "". Wired into the at-exit/signal telemetry
 * flush (obs/export.h) and called by QualityAuditor::Shutdown().
 */
std::string ExportAuditIfConfigured();

}  // namespace rumba::obs

#endif  // RUMBA_OBS_AUDIT_H_
