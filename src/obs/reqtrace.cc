#include "obs/reqtrace.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/logging.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace rumba::obs {

const char*
RequestOutcomeName(RequestOutcome outcome)
{
    switch (outcome) {
      case RequestOutcome::kCompleted: return "completed";
      case RequestOutcome::kRejected: return "rejected";
      case RequestOutcome::kCancelled: return "cancelled";
      case RequestOutcome::kShed: return "shed";
      case RequestOutcome::kExpired: return "expired";
    }
    return "unknown";
}

RequestTraceCollector::RequestTraceCollector(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
RequestTraceCollector::Configure(const TailSamplingPolicy& policy)
{
    std::lock_guard<std::mutex> lock(mu_);
    policy_ = policy;
}

TailSamplingPolicy
RequestTraceCollector::Policy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return policy_;
}

uint64_t
RequestTraceCollector::NextTraceId()
{
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
}

void
RequestTraceCollector::Enable()
{
    enabled_.store(true, std::memory_order_relaxed);
}

void
RequestTraceCollector::Disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

bool
RequestTraceCollector::Enabled() const
{
    return enabled_.load(std::memory_order_relaxed);
}

bool
RequestTraceCollector::KeepLocked(const RequestTrace& trace)
{
    // Tail decision: the outcome is known, so flag the interesting
    // traces first, then head-sample the healthy remainder.
    if (policy_.keep_errors &&
        trace.outcome != RequestOutcome::kCompleted)
        return true;
    if (policy_.keep_recovered && trace.fixes > 0)
        return true;
    if (policy_.keep_breaker && trace.breaker_state != 0)
        return true;
    if (policy_.latency_keep_ns > 0 &&
        trace.total_ns >= policy_.latency_keep_ns)
        return true;
    if (policy_.keep_audited && trace.audited)
        return true;
    if (policy_.sample_every == 0)
        return false;
    return ++unflagged_seen_ % policy_.sample_every == 0;
}

void
RequestTraceCollector::Record(RequestTrace trace)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++total_recorded_;  // offered traces count even while disabled.
    if (!Enabled())
        return;
    if (!KeepLocked(trace)) {
        ++sampled_out_;
        return;
    }
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(trace));
        return;
    }
    ring_[head_] = std::move(trace);
    head_ = (head_ + 1) % capacity_;
    ++evicted_;
}

std::vector<RequestTrace>
RequestTraceCollector::Dump() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<RequestTrace> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

uint64_t
RequestTraceCollector::TotalRecorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_recorded_;
}

uint64_t
RequestTraceCollector::Sampled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sampled_out_;
}

uint64_t
RequestTraceCollector::Evicted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_;
}

size_t
RequestTraceCollector::Size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return ring_.size();
}

void
RequestTraceCollector::Clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    ring_.clear();
    head_ = 0;
    total_recorded_ = 0;
    sampled_out_ = 0;
    evicted_ = 0;
    unflagged_seen_ = 0;
}

RequestTraceCollector&
RequestTraceCollector::Default()
{
    static RequestTraceCollector collector;
    return collector;
}

std::string
RequestTraceJson(const RequestTrace& trace)
{
    std::string out = "{\"type\":\"reqtrace\",\"trace_id\":" +
                      std::to_string(trace.trace_id) +
                      ",\"shard\":" + std::to_string(trace.shard) +
                      ",\"outcome\":" +
                      JsonQuote(RequestOutcomeName(trace.outcome)) +
                      ",\"submit_ns\":" +
                      std::to_string(trace.submit_ns) +
                      ",\"total_ns\":" + std::to_string(trace.total_ns) +
                      ",\"elements\":" +
                      std::to_string(trace.elements) +
                      ",\"batch_requests\":" +
                      std::to_string(trace.batch_requests) +
                      ",\"fixes\":" + std::to_string(trace.fixes) +
                      ",\"breaker_state\":" +
                      std::to_string(trace.breaker_state) +
                      ",\"audited\":" +
                      (trace.audited ? "true" : "false") +
                      ",\"spans\":[";
    bool first = true;
    for (const RequestSpan& span : trace.spans) {
        if (!first)
            out += ",";
        first = false;
        out += "{\"name\":" + JsonQuote(span.name) +
               ",\"start_ns\":" + std::to_string(span.start_ns) +
               ",\"duration_ns\":" + std::to_string(span.duration_ns) +
               "}";
    }
    out += "]}";
    return out;
}

std::string
RequestTracesToJsonl(const std::vector<RequestTrace>& traces)
{
    std::string out = MetadataJsonLine() + "\n";
    for (const RequestTrace& trace : traces)
        out += RequestTraceJson(trace) + "\n";
    return out;
}

bool
WriteRequestTraceFile(const std::string& path)
{
    const std::string body =
        RequestTracesToJsonl(RequestTraceCollector::Default().Dump());
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    const size_t written = std::fwrite(body.data(), 1, body.size(), f);
    return std::fclose(f) == 0 && written == body.size();
}

std::string
ExportRequestTracesIfConfigured()
{
    const char* path = std::getenv("RUMBA_REQTRACE_OUT");
    if (path == nullptr || path[0] == '\0')
        return "";
    Debug("RUMBA_REQTRACE_OUT: exporting %zu kept request traces to %s",
          RequestTraceCollector::Default().Size(), path);
    if (!WriteRequestTraceFile(path)) {
        Warn("RUMBA_REQTRACE_OUT: could not write %s", path);
        return "";
    }
    return path;
}

}  // namespace rumba::obs
