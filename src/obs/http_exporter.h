#ifndef RUMBA_OBS_HTTP_EXPORTER_H_
#define RUMBA_OBS_HTTP_EXPORTER_H_

/**
 * @file
 * Live scrape endpoint: a tiny dependency-free blocking HTTP/1.0
 * server that renders the process's metrics registry on demand, so a
 * running serving engine can be watched (Prometheus, curl, rumba-stat
 * scrape) instead of only post-mortem via the at-exit exports of
 * obs/export.h.
 *
 * Routes:
 *   /metrics  Prometheus text exposition format 0.0.4 of the live
 *             Registry::Default() snapshot (see ToPrometheusText for
 *             the name-mangling rules).
 *   /healthz  "ok\n", 200 — liveness only.
 *   /statusz  application-defined JSON (SetStatusProvider); defaults
 *             to {"healthy":true}. The serving engine installs a
 *             provider reporting per-shard queue depth, breaker
 *             state, current threshold, and tuner mode.
 *   /buildz   build-info JSON (BuildInfoJson in obs/export.h):
 *             version, git describe, build type, sanitizers, and the
 *             RUMBA_* env knobs set for this process.
 *   /profilez live cost-profiler JSON (ProfilezJson in
 *             obs/profiler.h): per-stage CPU seconds and shares,
 *             sampling-profiler state, and the rolling
 *             speedup/energy-ratio estimate.
 *   anything else: 404.
 *
 * The server is opt-in: programmatically via Start(port) (port 0
 * binds an ephemeral port, readable via Port()), or from the
 * environment via StartFromEnv() honoring RUMBA_METRICS_PORT. It
 * binds 127.0.0.1 only — this is an operator diagnostic surface, not
 * a public API — and serves one connection at a time with
 * Connection: close; scrape handlers only read atomics and take the
 * short registry snapshot lock, so scraping a saturated engine is
 * safe and cheap.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace rumba::obs {

/**
 * Render @p snapshot in Prometheus text exposition format 0.0.4.
 *
 * Name mangling: dots (and every other non-alphanumeric) become
 * underscores and a "rumba_" prefix is applied, so "serve.submitted"
 * exports as `rumba_serve_submitted_total` (counters get the
 * conventional `_total` suffix). The original dotted name rides along
 * as a `name="..."` label so rumba-stat scrape can map samples back
 * to registry names losslessly. Histograms render the conventional
 * cumulative `le` series from the snapshot's bucket counts, with the
 * `+Inf` bucket equal to `_count`, plus `_sum`/`_count` and min/max
 * gauges (`*_min` / `*_max`), all from one consistent snapshot.
 */
std::string ToPrometheusText(const RegistrySnapshot& snapshot);

/**
 * The blocking scrape server. One background accept thread; requests
 * are served sequentially. All methods are thread-safe.
 */
class ObservabilityServer {
  public:
    ObservabilityServer() = default;
    ~ObservabilityServer();

    ObservabilityServer(const ObservabilityServer&) = delete;
    ObservabilityServer& operator=(const ObservabilityServer&) = delete;

    /**
     * Bind 127.0.0.1:@p port (0 = ephemeral) and start serving on a
     * background thread. Returns false (with a warning) if already
     * running or the bind fails. On success Port() reports the bound
     * port.
     */
    bool Start(uint16_t port);

    /** Stop serving and join the background thread. Idempotent. */
    void Stop();

    /** True between a successful Start() and Stop(). */
    bool Running() const { return running_.load(std::memory_order_acquire); }

    /** Bound port (0 when not running). */
    uint16_t Port() const { return port_.load(std::memory_order_acquire); }

    /**
     * Install the /statusz body producer (called per scrape, must be
     * thread-safe and should only read atomics / registry
     * instruments). Pass nullptr to restore the default.
     *
     * @p owner is an opaque identity token: a later
     * ClearStatusProvider(owner) removes the provider only if it is
     * still the installed one, so two components sharing Default()
     * cannot clear each other's provider on teardown (last installer
     * wins the route; earlier owners' clears become no-ops).
     *
     * The provider is invoked *under* the provider lock, so both
     * SetStatusProvider and ClearStatusProvider synchronize with any
     * in-flight /statusz render: once either returns, the previous
     * provider can no longer be running and the state it captured may
     * be torn down. Consequently the provider must not call back into
     * SetStatusProvider/ClearStatusProvider.
     */
    void SetStatusProvider(std::function<std::string()> provider,
                           const void* owner = nullptr);

    /**
     * Remove the installed provider iff @p owner installed it (see
     * SetStatusProvider). Blocks until any in-flight invocation of
     * that provider finishes.
     */
    void ClearStatusProvider(const void* owner);

    /** Requests served since Start (any route). */
    uint64_t RequestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

    /** The process-wide server StartFromEnv()/the engine manage. */
    static ObservabilityServer& Default();

    /**
     * Honor RUMBA_METRICS_PORT: when set, start Default() on that
     * port (first call wins; later calls and unset/invalid values are
     * no-ops). Returns true if the server is running on return.
     */
    static bool StartFromEnv();

  private:
    void ServeLoop(int listen_fd);
    void HandleConnection(int fd);
    std::string StatusBody();

    std::atomic<bool> running_{false};
    std::atomic<uint16_t> port_{0};
    std::atomic<uint64_t> served_{0};
    int listen_fd_ = -1;
    std::thread thread_;
    std::mutex mu_;  ///< guards start/stop transitions (never held
                     ///< while joining the serve thread).
    std::mutex provider_mu_;  ///< guards provider_/provider_owner_
                              ///< and is held across invocation.
    std::function<std::string()> provider_;
    const void* provider_owner_ = nullptr;
};

/**
 * Minimal blocking HTTP GET against 127.0.0.1:@p port (test helper
 * and the alert-free half of rumba-stat's scrape client). Fills
 * @p body with the response payload and @p status with the HTTP
 * status code. False on connect/transport failure.
 */
bool HttpGet(uint16_t port, const std::string& path, std::string* body,
             int* status);

}  // namespace rumba::obs

#endif  // RUMBA_OBS_HTTP_EXPORTER_H_
